package bistpath

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// benchJobs builds the standard test batch: every built-in benchmark in
// both binding modes, plus a session-minimizing variant.
func benchJobs(t testing.TB) []Job {
	t.Helper()
	var jobs []Job
	for _, name := range BenchmarkNames() {
		d, mods, err := Benchmark(name)
		if err != nil {
			t.Fatal(err)
		}
		cfgT := DefaultConfig()
		cfgR := DefaultConfig()
		cfgR.Mode = TraditionalHLS
		cfgS := DefaultConfig()
		cfgS.MinimizeSessions = true
		jobs = append(jobs,
			Job{Name: name + "/testable", DFG: d, Modules: mods, Config: cfgT},
			Job{Name: name + "/traditional", DFG: d, Modules: mods, Config: cfgR},
			Job{Name: name + "/minsessions", DFG: d, Modules: mods, Config: cfgS},
		)
	}
	return jobs
}

// reportsOf renders every successful result; errors fail the test.
func reportsOf(t testing.TB, rs []BatchResult) []string {
	t.Helper()
	out := make([]string, len(rs))
	for i, r := range rs {
		if r.Err != nil {
			t.Fatalf("job %d (%s): %v", i, r.Name, r.Err)
		}
		out[i] = r.Result.ReportText()
	}
	return out
}

// The batch determinism guarantee: any worker count produces reports that
// are byte-identical to the sequential path, in the same order. Run under
// -race this also proves the pool and the parallel branch and bound are
// race-clean.
func TestSynthesizeAllDeterministicAcrossWorkers(t *testing.T) {
	jobs := benchJobs(t)
	seq := reportsOf(t, SynthesizeAll(context.Background(), jobs, BatchOptions{Workers: 1}))

	// The sequential batch must also match the plain one-at-a-time API.
	for i, j := range jobs {
		res, err := j.DFG.Synthesize(j.Modules, j.Config)
		if err != nil {
			t.Fatal(err)
		}
		if res.ReportText() != seq[i] {
			t.Fatalf("job %s: batch report differs from direct Synthesize", j.Name)
		}
	}

	for _, workers := range []int{2, 3, 8} {
		par := reportsOf(t, SynthesizeAll(context.Background(), jobs, BatchOptions{Workers: workers}))
		for i := range seq {
			if par[i] != seq[i] {
				t.Errorf("workers=%d job %s: report differs from workers=1:\n--- sequential\n%s\n--- parallel\n%s",
					workers, jobs[i].Name, seq[i], par[i])
			}
		}
	}
}

// Inner-search parallelism (Config.Workers) must not change the report
// either: the branch and bound's tie-break is canonical search order.
func TestSynthesizeAllInnerWorkersDeterministic(t *testing.T) {
	jobs := benchJobs(t)
	seq := reportsOf(t, SynthesizeAll(context.Background(), jobs, BatchOptions{Workers: 1}))
	parJobs := make([]Job, len(jobs))
	for i, j := range jobs {
		j.Config.Workers = 8
		parJobs[i] = j
	}
	par := reportsOf(t, SynthesizeAll(context.Background(), parJobs, BatchOptions{Workers: 4}))
	for i := range seq {
		if par[i] != seq[i] {
			t.Errorf("job %s: Config.Workers=8 report differs from sequential", jobs[i].Name)
		}
	}
}

// waitGoroutines polls until the goroutine count drops back to the
// baseline (the scheduler needs a moment to retire exiting goroutines).
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// A batch given an already-cancelled context returns promptly with
// ctx.Err() on every job and leaks no goroutines.
func TestSynthesizeAllCancelledContext(t *testing.T) {
	jobs := benchJobs(t)
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	rs := SynthesizeAll(ctx, jobs, BatchOptions{Workers: 4})
	if el := time.Since(start); el > 2*time.Second {
		t.Errorf("cancelled batch took %v, want prompt return", el)
	}
	if len(rs) != len(jobs) {
		t.Fatalf("got %d results, want %d", len(rs), len(jobs))
	}
	for i, r := range rs {
		if r.Err == nil {
			t.Errorf("job %d (%s): no error from cancelled batch", i, r.Name)
			continue
		}
		if r.Err != context.Canceled {
			t.Errorf("job %d (%s): err = %v, want context.Canceled", i, r.Name, r.Err)
		}
		if r.Name != jobs[i].Name {
			t.Errorf("job %d: name %q, want %q", i, r.Name, jobs[i].Name)
		}
	}
	waitGoroutines(t, base)
}

// Cancelling mid-batch stops the remaining jobs; every result is either
// a complete Result or a context error, never both, and the pool drains.
func TestSynthesizeAllCancelMidBatch(t *testing.T) {
	var jobs []Job
	for i := 0; i < 8; i++ {
		jobs = append(jobs, benchJobs(t)...)
	}
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan []BatchResult, 1)
	go func() { done <- SynthesizeAll(ctx, jobs, BatchOptions{Workers: 2}) }()
	time.Sleep(5 * time.Millisecond)
	cancel()
	rs := <-done
	var completed, cancelled int
	for i, r := range rs {
		switch {
		case r.Err == nil && r.Result != nil:
			completed++
		case r.Err == context.Canceled && r.Result == nil:
			cancelled++
		default:
			t.Errorf("job %d (%s): inconsistent result (res=%v err=%v)", i, r.Name, r.Result != nil, r.Err)
		}
	}
	if completed+cancelled != len(jobs) {
		t.Errorf("completed %d + cancelled %d != %d jobs", completed, cancelled, len(jobs))
	}
	waitGoroutines(t, base)
}

// A panicking job degrades to an error; the rest of the batch completes.
func TestSynthesizeAllPanicRecovery(t *testing.T) {
	good, mods, err := Benchmark("ex1")
	if err != nil {
		t.Fatal(err)
	}
	jobs := []Job{
		{Name: "good-1", DFG: good, Modules: mods, Config: DefaultConfig()},
		// A DFG with no internal graph panics deep inside synthesis.
		{Name: "bad", DFG: &DFG{}, Config: DefaultConfig()},
		{Name: "good-2", DFG: good, Modules: mods, Config: DefaultConfig()},
	}
	rs := SynthesizeAll(context.Background(), jobs, BatchOptions{Workers: 2})
	if rs[0].Err != nil || rs[2].Err != nil {
		t.Fatalf("good jobs failed: %v / %v", rs[0].Err, rs[2].Err)
	}
	if rs[1].Err == nil || !strings.Contains(rs[1].Err.Error(), "panicked") {
		t.Fatalf("bad job: err = %v, want recovered panic", rs[1].Err)
	}
	if rs[1].Result != nil {
		t.Error("bad job: Result and Err both set")
	}
}

// The panic-recovery terminal-event contract: a recovered job's
// observer receives exactly one PanicRecovered event and nothing after
// it, so a streaming subscriber is never left waiting for a conclusion
// that cannot come. (Regression: a panicking job used to end with no
// terminal event at all.)
func TestRunJobPanicTerminalEvent(t *testing.T) {
	var mu sync.Mutex
	var events []Event
	cfg := DefaultConfig()
	cfg.Observer = func(e Event) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	}
	// A DFG with no internal graph panics deep inside synthesis, before
	// any phase event fires.
	br := RunJob(context.Background(), Job{Name: "bad", DFG: &DFG{}, Config: cfg})
	if br.Err == nil || !strings.Contains(br.Err.Error(), "panicked") {
		t.Fatalf("err = %v, want recovered panic", br.Err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) == 0 {
		t.Fatal("observer saw no events; want a terminal PanicRecovered")
	}
	terminals := 0
	for _, e := range events {
		if e.Kind == PanicRecovered {
			terminals++
		}
	}
	if terminals != 1 {
		t.Fatalf("observer saw %d PanicRecovered events, want exactly 1", terminals)
	}
	if last := events[len(events)-1]; last.Kind != PanicRecovered || last.Design != "bad" {
		t.Fatalf("last event = %+v, want terminal PanicRecovered for %q", last, "bad")
	}
}

// An observer that itself panics mid-run is the realistic server-side
// trigger (it runs inline with synthesis). The batch layer must still
// attempt the terminal event — and survive the observer panicking again
// while receiving it.
func TestSynthesizeAllObserverPanicTerminalEvent(t *testing.T) {
	d, mods, err := Benchmark("ex1")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var events []Event
	panicked := false
	cfg := DefaultConfig()
	cfg.Observer = func(e Event) {
		mu.Lock()
		events = append(events, e)
		fire := e.Kind == PhaseEnd && !panicked
		if fire {
			panicked = true
		}
		mu.Unlock()
		if fire {
			panic("observer boom")
		}
	}
	rs := SynthesizeAll(context.Background(),
		[]Job{{DFG: d, Modules: mods, Config: cfg}}, BatchOptions{Workers: 1})
	if rs[0].Err == nil || !strings.Contains(rs[0].Err.Error(), "panicked") {
		t.Fatalf("err = %v, want recovered panic", rs[0].Err)
	}
	mu.Lock()
	defer mu.Unlock()
	if last := events[len(events)-1]; last.Kind != PanicRecovered {
		t.Fatalf("last event kind = %v, want PanicRecovered", last.Kind)
	}
}

// Pool is the persistent form of the batch pool: slots survive panics
// and refuse work only on the caller's own cancellation.
func TestPoolDo(t *testing.T) {
	d, mods, err := Benchmark("ex1")
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(2)
	if p.Workers() != 2 {
		t.Fatalf("Workers() = %d, want 2", p.Workers())
	}
	br := p.Do(context.Background(), Job{DFG: d, Modules: mods, Config: DefaultConfig()})
	if br.Err != nil {
		t.Fatalf("Do: %v", br.Err)
	}
	if br.Name != "ex1" {
		t.Errorf("Name = %q, want ex1 (defaulted from the DFG)", br.Name)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if br := p.Do(ctx, Job{DFG: d, Modules: mods, Config: DefaultConfig()}); !errors.Is(br.Err, context.Canceled) {
		t.Fatalf("cancelled Do: err = %v, want context.Canceled", br.Err)
	}

	// Slots are released even when jobs panic: more panicking jobs than
	// slots, then a good job, must not wedge.
	for i := 0; i < 5; i++ {
		if br := p.Do(context.Background(), Job{Name: "bad", DFG: &DFG{}, Config: DefaultConfig()}); br.Err == nil {
			t.Fatal("panicking job reported success")
		}
	}
	if br := p.Do(context.Background(), Job{DFG: d, Modules: mods, Config: DefaultConfig()}); br.Err != nil {
		t.Fatalf("pool wedged after panics: %v", br.Err)
	}
}

// Nil DFGs fail their own job only; nil Modules selects auto binding.
func TestSynthesizeAllJobShapes(t *testing.T) {
	d, _, err := Benchmark("ex1")
	if err != nil {
		t.Fatal(err)
	}
	jobs := []Job{
		{Name: "missing"},
		{DFG: d, Config: DefaultConfig()}, // auto binding, name from DFG
	}
	rs := SynthesizeAll(context.Background(), jobs, BatchOptions{})
	if rs[0].Err == nil {
		t.Error("nil-DFG job succeeded")
	}
	if rs[1].Err != nil {
		t.Fatalf("auto-binding job failed: %v", rs[1].Err)
	}
	if rs[1].Name != "ex1" {
		t.Errorf("default name = %q, want ex1", rs[1].Name)
	}
	if got := SynthesizeAll(context.Background(), nil, BatchOptions{}); len(got) != 0 {
		t.Errorf("empty batch returned %d results", len(got))
	}
}

// BenchmarkSynthesizeAll measures the batch worker pool over the full
// benchmark suite (all designs, both flows, session tuning) at several
// worker counts; on a multi-core machine the 4-worker run should be at
// least twice as fast as the sequential one while producing byte-
// identical output (asserted by TestSynthesizeAllDeterministicAcrossWorkers).
func BenchmarkSynthesizeAll(b *testing.B) {
	jobs := benchJobs(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rs := SynthesizeAll(context.Background(), jobs, BatchOptions{Workers: workers})
				for _, r := range rs {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		})
	}
}
