package bistpath

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"testing"
)

// stripStatsJSON renders a Result's JSON with the "stats" member
// removed — the one part of the document that is wall-time dependent.
// Everything else is covered by the determinism contract, so two
// Results for the same design must agree on it byte for byte.
func stripStatsJSON(t *testing.T, res *Result) string {
	t.Helper()
	b, err := res.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	delete(m, "stats")
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(out)
}

// assertSameResult asserts the incremental and from-scratch results are
// identical in every deterministic observable: strict ReportText
// equality and stats-stripped JSON equality.
func assertSameResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if g, w := got.ReportText(), want.ReportText(); g != w {
		t.Errorf("%s: ReportText diverges\n--- incremental ---\n%s\n--- from scratch ---\n%s", label, g, w)
	}
	if g, w := stripStatsJSON(t, got), stripStatsJSON(t, want); g != w {
		t.Errorf("%s: stats-stripped JSON diverges\n--- incremental ---\n%s\n--- from scratch ---\n%s", label, g, w)
	}
}

func hasPhase(st Stats, ph Phase) bool {
	for _, p := range st.ReusedPhases {
		if p == ph.String() {
			return true
		}
	}
	return false
}

func TestSessionReplaysUnchangedDesign(t *testing.T) {
	s := New(DefaultConfig())
	defer s.Close()
	d, mods, err := Benchmark("ex1")
	if err != nil {
		t.Fatal(err)
	}
	ss, err := s.NewSession(d, mods)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()

	cold, err := ss.Resynthesize(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(cold.Stats.ReusedPhases) != 0 {
		t.Fatalf("first run reused phases: %v", cold.Stats.ReusedPhases)
	}

	// No edits at all → full replay.
	again, err := ss.Resynthesize(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Stats.ReusedPhases) != len(allPhaseNames()) {
		t.Fatalf("unchanged design reused %v, want all phases", again.Stats.ReusedPhases)
	}
	if again.Stats.IncrementalSpeedup <= 0 {
		t.Errorf("replay run has no IncrementalSpeedup: %v", again.Stats.IncrementalSpeedup)
	}
	assertSameResult(t, "replay", again, cold)

	// A structural edit that is undone before Resynthesize hits the
	// sectioned fingerprint, which sees the net effect, not the edit
	// log — a full replay.
	if err := ss.RetimePort("a", true); err != nil {
		t.Fatal(err)
	}
	if err := ss.RetimePort("a", false); err != nil {
		t.Fatal(err)
	}
	reverted, err := ss.Resynthesize(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(reverted.Stats.ReusedPhases) != len(allPhaseNames()) {
		t.Fatalf("undone structural edit reused %v, want all phases", reverted.Stats.ReusedPhases)
	}
	assertSameResult(t, "undone structural edit", reverted, cold)

	// A step edit that is undone still nets out to the previous design,
	// but takes the reschedule fast path: only validation re-runs;
	// everything downstream is reused.
	step := ss.g.Op("mul2").Step
	if err := ss.SetStep("mul2", step+1); err != nil {
		t.Fatal(err)
	}
	if err := ss.SetStep("mul2", step); err != nil {
		t.Fatal(err)
	}
	undone, err := ss.Resynthesize(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, ph := range []Phase{PhaseRegisterBind, PhaseInterconnect, PhaseDatapath, PhaseBISTSearch} {
		if !hasPhase(undone.Stats, ph) {
			t.Fatalf("undone step edit reused %v, missing %s", undone.Stats.ReusedPhases, ph)
		}
	}
	assertSameResult(t, "undone step edit", undone, cold)
}

func TestSessionConflictPreservingEditReusesBindAndPlan(t *testing.T) {
	s := New(DefaultConfig())
	defer s.Close()
	d, mods, err := Benchmark("ex1")
	if err != nil {
		t.Fatal(err)
	}
	ss, err := s.NewSession(d, mods)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	if _, err := ss.Resynthesize(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Moving mul2 from step 4 to 5 preserves every lifetime overlap and
	// the data-path structure (established by the incremental CI gate's
	// benchmark design), so both expensive phases must be reused.
	if err := ss.SetStep("mul2", 5); err != nil {
		t.Fatal(err)
	}
	warm, err := ss.Resynthesize(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !hasPhase(warm.Stats, PhaseRegisterBind) {
		t.Errorf("register-bind not reused: %v", warm.Stats.ReusedPhases)
	}
	if !hasPhase(warm.Stats, PhaseBISTSearch) {
		t.Errorf("bist-search not spliced: %v", warm.Stats.ReusedPhases)
	}
	if warm.Stats.IncrementalSpeedup <= 0 {
		t.Errorf("no IncrementalSpeedup recorded: %v", warm.Stats.IncrementalSpeedup)
	}

	// The incremental result must match a from-scratch synthesis of the
	// edited design exactly.
	ref := &DFG{g: d.g.Clone()}
	ref.g.Op("mul2").Step = 5
	want, err := ref.SynthesizeCtx(context.Background(), mods, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "mul2@5", warm, want)
}

func TestSessionMutatorValidation(t *testing.T) {
	s := New(DefaultConfig())
	defer s.Close()
	d, mods, err := Benchmark("ex1")
	if err != nil {
		t.Fatal(err)
	}
	ss, err := s.NewSession(d, mods)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()

	if err := ss.SetStep("nosuch", 1); err == nil {
		t.Error("SetStep on unknown op succeeded")
	}
	if err := ss.SetStep("mul2", 0); err == nil {
		t.Error("SetStep to step 0 succeeded")
	}
	if err := ss.ReplaceOp("mul2", "%%"); err == nil {
		t.Error("ReplaceOp with invalid kind succeeded")
	}
	if err := ss.RetimePort("nosuch", true); err == nil {
		t.Error("RetimePort on unknown variable succeeded")
	}
	// Port-marking requires a primary input: op results are not eligible.
	if err := ss.RetimePort(ss.g.Op("mul2").Result, true); err == nil {
		t.Error("RetimePort on a non-input succeeded")
	}
	if len(ss.Deltas()) != 0 {
		t.Errorf("failed edits recorded deltas: %v", ss.Deltas())
	}

	auto, err := s.NewSession(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer auto.Close()
	if err := auto.RemapModule("mul2", "m1"); err == nil {
		t.Error("RemapModule on an automatic-binding session succeeded")
	}
}

func TestSessionDeltasRecordedAndConsumed(t *testing.T) {
	s := New(DefaultConfig())
	defer s.Close()
	d, mods, err := Benchmark("ex1")
	if err != nil {
		t.Fatal(err)
	}
	ss, err := s.NewSession(d, mods)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()

	if err := ss.SetStep("mul2", 5); err != nil {
		t.Fatal(err)
	}
	if err := ss.ReplaceOp("mul2", "*"); err != nil {
		t.Fatal(err)
	}
	ds := ss.Deltas()
	if len(ds) != 2 || ds[0].Kind != DeltaSetStep || ds[1].Kind != DeltaReplaceOp {
		t.Fatalf("deltas = %v", ds)
	}
	if ds[0].String() != "set-step mul2 @5" {
		t.Errorf("Delta.String = %q", ds[0].String())
	}
	if _, err := ss.Resynthesize(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(ss.Deltas()) != 0 {
		t.Errorf("successful Resynthesize left deltas pending: %v", ss.Deltas())
	}
}

func TestSessionClosed(t *testing.T) {
	s := New(DefaultConfig())
	defer s.Close()
	d, mods, err := Benchmark("ex1")
	if err != nil {
		t.Fatal(err)
	}
	ss, err := s.NewSession(d, mods)
	if err != nil {
		t.Fatal(err)
	}
	if err := ss.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ss.SetStep("mul2", 5); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("SetStep after Close: %v", err)
	}
	if _, err := ss.Resynthesize(context.Background()); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("Resynthesize after Close: %v", err)
	}
	if err := ss.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}

	// A closed Synthesizer refuses new sessions ...
	s2 := New(DefaultConfig())
	s2.Close()
	if _, err := s2.NewSession(d, mods); !errors.Is(err, ErrSynthesizerClosed) {
		t.Errorf("NewSession on closed synthesizer: %v", err)
	}
}

func TestSessionIsolatedFromCallerDFG(t *testing.T) {
	s := New(DefaultConfig())
	defer s.Close()
	d, mods, err := Benchmark("ex1")
	if err != nil {
		t.Fatal(err)
	}
	ss, err := s.NewSession(d, mods)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	before := d.g.Op("mul2").Step
	if err := ss.SetStep("mul2", before+1); err != nil {
		t.Fatal(err)
	}
	if d.g.Op("mul2").Step != before {
		t.Error("session edit leaked into the caller's DFG")
	}
	mods["mul2"] = "corrupted"
	if ss.opToModule["mul2"] == "corrupted" {
		t.Error("caller's map edit leaked into the session")
	}
}

// applyRandomEdit drives one random mutator on the session and mirrors
// it on a plain graph + module map, so the mirror can be synthesized
// from scratch as the ground truth. Returns false if the chosen edit
// was rejected (and therefore mirrored nowhere).
func applyRandomEdit(t *testing.T, rng *rand.Rand, ss *Session, mirror *DFG, mirrorMods map[string]string) bool {
	t.Helper()
	ops := mirror.g.Ops()
	op := ops[rng.Intn(len(ops))]
	switch rng.Intn(4) {
	case 0, 1: // reschedule, the common incremental edit
		step := 1 + rng.Intn(mirror.g.NumSteps()+1)
		if err := ss.SetStep(op.Name, step); err != nil {
			t.Fatalf("SetStep(%s, %d): %v", op.Name, step, err)
		}
		mirror.g.Op(op.Name).Step = step
	case 2: // toggle a port mark on a random primary input
		var inputs []string
		for _, v := range mirror.g.Vars() {
			if v.IsInput {
				inputs = append(inputs, v.Name)
			}
		}
		if len(inputs) == 0 {
			return false
		}
		name := inputs[rng.Intn(len(inputs))]
		port := !mirror.g.Var(name).IsPort
		if err := ss.RetimePort(name, port); err != nil {
			t.Fatalf("RetimePort(%s, %t): %v", name, port, err)
		}
		mirror.g.Var(name).IsPort = port
	case 3: // remap to another module of the explicit map
		var pool []string
		seen := map[string]bool{}
		for _, m := range mirrorMods {
			if !seen[m] {
				seen[m] = true
				pool = append(pool, m)
			}
		}
		if len(pool) < 2 {
			return false
		}
		target := pool[rng.Intn(len(pool))]
		if err := ss.RemapModule(op.Name, target); err != nil {
			t.Fatalf("RemapModule(%s, %s): %v", op.Name, target, err)
		}
		mirrorMods[op.Name] = target
	}
	return true
}

// TestSessionDifferentialRandomEdits is the tentpole's property test:
// over random designs and random edit scripts, every Resynthesize must
// be indistinguishable (stats aside) from a from-scratch synthesis of
// the identically edited mirror design — including agreeing on whether
// the edited design is synthesizable at all.
func TestSessionDifferentialRandomEdits(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep skipped in -short mode")
	}
	s := New(DefaultConfig())
	defer s.Close()
	for seed := int64(1); seed <= 6; seed++ {
		d, mods, err := RandomDesign(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ss, err := s.NewSession(d, mods)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		mirror := &DFG{g: d.g.Clone()}
		mirrorMods := make(map[string]string, len(mods))
		for k, v := range mods {
			mirrorMods[k] = v
		}
		rng := rand.New(rand.NewSource(seed * 977))
		for round := 0; round < 6; round++ {
			for n := 1 + rng.Intn(3); n > 0; n-- {
				applyRandomEdit(t, rng, ss, mirror, mirrorMods)
			}
			got, errGot := ss.Resynthesize(context.Background())
			want, errWant := mirror.SynthesizeCtx(context.Background(), mirrorMods, DefaultConfig())
			if (errGot == nil) != (errWant == nil) {
				t.Fatalf("seed %d round %d: incremental err %v, from-scratch err %v\ndesign:\n%s",
					seed, round, errGot, errWant, mirror.Text())
			}
			if errGot != nil {
				continue // both rejected the edited design the same way
			}
			assertSameResult(t, "seed/round", got, want)
			if t.Failed() {
				t.Fatalf("seed %d round %d diverged (reused %v)\ndesign:\n%s",
					seed, round, got.Stats.ReusedPhases, mirror.Text())
			}
		}
		ss.Close()
	}
}
