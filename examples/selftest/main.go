// Selftest: walk through the BIST methodology on the ex2 benchmark —
// the chosen embeddings (which register generates patterns for which
// module, which one compacts signatures), the test session schedule, and
// a behavioral fault-injection run proving the plan detects faults.
package main

import (
	"fmt"
	"log"
	"strings"

	"bistpath"
)

func main() {
	d, mods, err := bistpath.Benchmark("ex2")
	check(err)
	res, err := d.Synthesize(mods, bistpath.DefaultConfig())
	check(err)

	fmt.Println("ex2 (1 divider, 2 multipliers, 2 adders, 1 AND) — BIST plan")
	fmt.Printf("test resources: %s\n\n", res.StyleSummary())

	fmt.Println("register roles:")
	for _, r := range res.Registers {
		fmt.Printf("  %-4s %-7s sharing degree %d  holds {%s}\n",
			r.Name, r.Style, r.SharingDegree, strings.Join(r.Vars, ","))
	}

	fmt.Println("\nBIST embeddings (pattern sources -> module -> signature register):")
	for _, m := range res.Modules {
		note := ""
		if m.ForcedCBILBO {
			note = "   (every embedding of this module needs a CBILBO — Lemma 2)"
		}
		fmt.Printf("  %s%s\n", m.Embedding, note)
	}

	fmt.Printf("\ntest sessions (%d):\n", len(res.Sessions))
	for i, s := range res.Sessions {
		fmt.Printf("  session %d tests %s\n", i+1, strings.Join(s, ", "))
	}

	fmt.Println("\nfault grading with 255 pseudo-random patterns per module:")
	rep, err := res.FaultCoverage(255, 0xC0FFEE)
	check(err)
	for _, mc := range rep.PerModule {
		bar := strings.Repeat("#", int(mc.Pct())/5)
		fmt.Printf("  %-4s %3d/%3d  %-20s %.1f%%\n", mc.Module, mc.Detected, mc.Faults, bar, mc.Pct())
	}
	f, det := rep.Totals()
	fmt.Printf("  overall %d/%d stuck-at faults detected (%.2f%%)\n", det, f, rep.Pct())
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
