// Sweep: explore how the BIST-aware allocation scales — across random
// scheduled DFGs of growing size, compare the BIST area overhead of the
// testable and traditional flows (the design-space exploration use case
// motivating the paper's introduction).
package main

import (
	"fmt"
	"log"

	"bistpath"
	"bistpath/internal/benchdata"
)

func main() {
	fmt.Println("size sweep: mean BIST overhead, testable vs traditional (20 seeds each)")
	fmt.Printf("%-20s %12s %12s %10s\n", "DFG size", "testable", "traditional", "saved")
	for _, size := range []struct {
		steps, ops, inputs int
	}{
		{3, 2, 3}, {4, 2, 4}, {5, 3, 4}, {6, 3, 5}, {7, 4, 5},
	} {
		var test, trad float64
		n := 0
		for seed := int64(0); seed < 20; seed++ {
			g, err := benchdata.Random(benchdata.RandomConfig{
				Seed: seed, Steps: size.steps, OpsPerStep: size.ops, Inputs: size.inputs,
			})
			check(err)
			d, err := bistpath.ParseDFG(g.Text())
			check(err)
			cfg := bistpath.DefaultConfig()
			rt, err := d.SynthesizeAuto(cfg)
			check(err)
			cfg.Mode = bistpath.TraditionalHLS
			rr, err := d.SynthesizeAuto(cfg)
			check(err)
			test += rt.OverheadPct
			trad += rr.OverheadPct
			n++
		}
		test /= float64(n)
		trad /= float64(n)
		fmt.Printf("%2d steps ×%d ops %-4s %11.2f%% %11.2f%% %9.1f%%\n",
			size.steps, size.ops, fmt.Sprintf("(%din)", size.inputs),
			test, trad, (trad-test)/trad*100)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
