// The HAL differential-equation solver (the Paulin benchmark): the data
// path synthesized by the BIST-aware allocator is iterated as the Euler
// integrator it implements, and compared against the traditional
// allocation.
//
// The solver integrates y” + 3xy' + 3y = 0:
//
//	repeat { x1 = x+dx; u1 = u - 3*x*u*dx - 3*y*dx; y1 = y + u*dx }
package main

import (
	"fmt"
	"log"

	"bistpath"
)

func main() {
	d, mods, err := bistpath.Benchmark("paulin")
	check(err)

	cfg := bistpath.DefaultConfig()
	cfg.Width = 16
	testable, err := d.Synthesize(mods, cfg)
	check(err)
	cfg.Mode = bistpath.TraditionalHLS
	traditional, err := d.Synthesize(mods, cfg)
	check(err)

	fmt.Println("differential-equation solver, 16-bit data path")
	for _, r := range []*bistpath.Result{traditional, testable} {
		fmt.Printf("  %-12s %d regs, %2d muxes, BIST %s, overhead %5.2f%%\n",
			r.Mode.String()+":", r.NumRegisters(), r.MuxCount, r.StyleSummary(), r.OverheadPct)
	}
	fmt.Printf("  reduction: %.1f%% of the BIST overhead removed by the testable allocation\n\n",
		(traditional.OverheadPct-testable.OverheadPct)/traditional.OverheadPct*100)

	// Drive the synthesized data path as the Euler integrator it is:
	// feed x1,u1,y1 back into x,u,y each iteration. Fixed-point with
	// dx = 1 in units of 1/8 would need scaling; integers keep it exact
	// for a few steps instead.
	x, u, y := uint64(0), uint64(20), uint64(1)
	const dx = 1
	fmt.Println("iterating the bound data path (x' u' y' per step):")
	for step := 0; step < 4; step++ {
		out, err := testable.Simulate(map[string]uint64{
			"x": x, "u": u, "y": y, "dx": dx, "a": 5, "k3": 3,
		})
		check(err)
		fmt.Printf("  step %d: x=%2d u=%6d y=%6d  (x1<a: c=%d)\n", step, out["x1"], out["u1"], out["y1"], out["c"])
		x, u, y = out["x1"], out["u1"], out["y1"]
	}

	// The BIST plan actually tests the hardware: grade every port
	// stuck-at fault under 255 pseudo-random patterns.
	rep, err := testable.FaultCoverage(255, 42)
	check(err)
	faults, detected := rep.Totals()
	fmt.Printf("\nBIST fault grading: %d/%d stuck-at faults detected (%.2f%%)\n",
		detected, faults, rep.Pct())
	for _, mc := range rep.PerModule {
		fmt.Printf("  %-4s %3d/%3d (%.1f%%)\n", mc.Module, mc.Detected, mc.Faults, mc.Pct())
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
