// Quickstart: describe a small behavior, schedule it, synthesize a
// BIST-ready data path, and verify it against the behavioral model.
package main

import (
	"fmt"
	"log"

	"bistpath"
)

func main() {
	// result = (a+b) * (c+d), diff = (a+b) - c
	d := bistpath.NewDFG("quickstart")
	check(d.AddInput("a", "b", "c", "d"))
	check(d.AddOp("sum1", "+", 0, "s1", "a", "b"))
	check(d.AddOp("sum2", "+", 0, "s2", "c", "d"))
	check(d.AddOp("prod", "*", 0, "result", "s1", "s2"))
	check(d.AddOp("diff", "-", 0, "delta", "s1", "c"))
	check(d.MarkOutput("result", "delta"))

	// Schedule with one adder, one multiplier, one subtractor.
	check(d.AutoSchedule(map[string]int{"+": 1, "*": 1, "-": 1}))
	fmt.Printf("scheduled %q into %d control steps\n\n", d.Name(), d.NumSteps())

	// Synthesize with the paper's BIST-aware allocator.
	res, err := d.SynthesizeAuto(bistpath.DefaultConfig())
	check(err)

	fmt.Printf("registers: %d, muxes: %d\n", res.NumRegisters(), res.MuxCount)
	fmt.Printf("area: %d gates functional, %d with BIST (%.2f%% overhead)\n",
		res.BaseArea, res.BISTArea, res.OverheadPct)
	fmt.Printf("test resources: %s in %d session(s)\n\n", res.StyleSummary(), len(res.Sessions))
	fmt.Print(res.NetlistText())

	// The bound data path computes the same function as the behavior.
	out, err := res.Simulate(map[string]uint64{"a": 3, "b": 4, "c": 5, "d": 6})
	check(err)
	fmt.Printf("\nsimulation: result=%d (want 77), delta=%d (want 2)\n", out["result"], out["delta"])
	check(res.SelfCheck(100, 1))
	fmt.Println("self-check against the DFG passed on 100 random vectors")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
