// Behavioral entry: write the differential-equation solver the way the
// paper writes it, compile it to a DFG, schedule with force-directed
// scheduling, synthesize the BIST-aware data path, and emit Verilog.
package main

import (
	"fmt"
	"log"
	"strings"

	"bistpath"
)

func main() {
	d, err := bistpath.Compile("hal", `
		x1 = x + dx
		u1 = u - 3*x*u*dx - 3*y*dx
		y1 = y + u*dx
		c  = x1 < a
	`, false) // no CSE: the classic benchmark recomputes u*dx
	check(err)

	// Latency-constrained force-directed scheduling: five steps suffice
	// for two multipliers.
	check(d.AutoScheduleForce(5))
	fmt.Printf("compiled %q: %d control steps\n", d.Name(), d.NumSteps())

	res, err := d.SynthesizeAuto(bistpath.DefaultConfig())
	check(err)
	fmt.Printf("registers=%d  BIST=%s  overhead=%.2f%%\n",
		res.NumRegisters(), res.StyleSummary(), res.OverheadPct)
	check(res.SelfCheck(50, 99))

	// Compare against the same source with CSE enabled: sharing the
	// repeated u*dx saves a multiplication.
	dc, err := bistpath.Compile("hal_cse", `
		x1 = x + dx
		u1 = u - 3*x*(u*dx) - 3*y*dx
		y1 = y + u*dx
		c  = x1 < a
	`, true)
	check(err)
	check(dc.AutoScheduleForce(5))
	resc, err := dc.SynthesizeAuto(bistpath.DefaultConfig())
	check(err)
	fmt.Printf("with CSE: base area %d vs %d (saved %d gate equivalents)\n",
		resc.BaseArea, res.BaseArea, res.BaseArea-resc.BaseArea)

	// The design leaves the toolchain as Verilog.
	v := res.VerilogRTL()
	fmt.Printf("\nemitted RTL: %d lines, module %s\n",
		strings.Count(v, "\n"), "dp_hal")
	fmt.Print(firstLines(v, 8))
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return "  " + strings.Join(lines, "\n  ") + "\n"
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
