package bistpath

import (
	"math"
	"testing"
)

// The measured Table I–III quantities of the reproduction, pinned
// exactly. Unlike the golden JSON files (which track the full Result
// serialization), these tests pin the handful of numbers the paper's
// tables are built from, so a regression in any allocation heuristic
// fails with the specific quantity that moved rather than a JSON diff.
var tableNumbers = map[string]struct {
	regs               int
	tradOvh, testOvh   float64
	tradStyle, teStyle string
}{
	"ex1":    {3, 18.80, 10.26, "1 CBILBO, 1 TPG", "2 TPG, 1 SA"},
	"ex2":    {5, 16.08, 8.28, "2 CBILBO, 1 TPG/SA, 2 TPG", "3 TPG/SA, 2 TPG"},
	"tseng1": {5, 18.68, 10.12, "2 CBILBO, 3 TPG", "3 TPG/SA, 2 TPG"},
	"tseng2": {5, 13.98, 11.83, "1 CBILBO, 2 TPG", "3 TPG/SA, 1 TPG"},
	"paulin": {4, 8.84, 3.17, "1 CBILBO, 1 SA", "1 TPG, 1 SA"},
}

func synthMode(t *testing.T, name string, traditional bool) *Result {
	t.Helper()
	d, mods, err := Benchmark(name)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	if traditional {
		cfg.Mode = TraditionalHLS
	}
	res, err := d.Synthesize(mods, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// Table I: register counts and BIST area overhead for both flows, and
// the paper's headline ordering (testable flow always cheaper).
func TestTableIPinned(t *testing.T) {
	for name, want := range tableNumbers {
		test := synthMode(t, name, false)
		trad := synthMode(t, name, true)
		if got := test.NumRegisters(); got != want.regs {
			t.Errorf("%s: %d registers, want %d", name, got, want.regs)
		}
		if got := trad.NumRegisters(); got != want.regs {
			t.Errorf("%s traditional: %d registers, want %d (both flows bind the minimum)", name, got, want.regs)
		}
		if math.Abs(trad.OverheadPct-want.tradOvh) > 0.005 {
			t.Errorf("%s: traditional overhead %.2f%%, want %.2f%%", name, trad.OverheadPct, want.tradOvh)
		}
		if math.Abs(test.OverheadPct-want.testOvh) > 0.005 {
			t.Errorf("%s: testable overhead %.2f%%, want %.2f%%", name, test.OverheadPct, want.testOvh)
		}
		if test.OverheadPct >= trad.OverheadPct {
			t.Errorf("%s: testable overhead %.2f%% not below traditional %.2f%%", name, test.OverheadPct, trad.OverheadPct)
		}
	}
}

// Table II: the minimal-area BIST solutions (style mix) of both flows.
func TestTableIIPinned(t *testing.T) {
	for name, want := range tableNumbers {
		if got := synthMode(t, name, true).StyleSummary(); got != want.tradStyle {
			t.Errorf("%s traditional: styles %q, want %q", name, got, want.tradStyle)
		}
		if got := synthMode(t, name, false).StyleSummary(); got != want.teStyle {
			t.Errorf("%s testable: styles %q, want %q", name, got, want.teStyle)
		}
	}
}

// Table III: the Paulin design comparison row for this system —
// register count and style census, the quantities compared against
// RALLOC and SYNTEST.
func TestTableIIIPinned(t *testing.T) {
	res := synthMode(t, "paulin", false)
	if got := res.NumRegisters(); got != 4 {
		t.Errorf("paulin: %d registers, want 4", got)
	}
	want := map[string]int{"TPG": 1, "SA": 1, "TPG/SA": 0, "CBILBO": 0}
	for style, n := range want {
		if got := res.StyleCounts[style]; got != n {
			t.Errorf("paulin: %d %s registers, want %d", got, style, n)
		}
	}
}
