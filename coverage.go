package bistpath

import "bistpath/internal/bistgen"

// ModuleCoverage is the stuck-at fault coverage one module achieves
// under its BIST embedding.
type ModuleCoverage struct {
	Module   string
	Faults   int
	Detected int
}

// Pct returns the module's coverage percentage.
func (mc ModuleCoverage) Pct() float64 {
	if mc.Faults == 0 {
		return 100
	}
	return float64(mc.Detected) / float64(mc.Faults) * 100
}

// CoverageReport summarizes a pseudo-random BIST run over all modules.
type CoverageReport struct {
	Patterns  int
	PerModule []ModuleCoverage
}

// Totals sums faults and detections over all modules.
func (r *CoverageReport) Totals() (faults, detected int) {
	for _, mc := range r.PerModule {
		faults += mc.Faults
		detected += mc.Detected
	}
	return
}

// Pct returns the overall coverage percentage.
func (r *CoverageReport) Pct() float64 {
	f, d := r.Totals()
	if f == 0 {
		return 100
	}
	return float64(d) / float64(f) * 100
}

// FaultCoverage executes the synthesized BIST plan behaviorally: each
// module is driven with pseudo-random patterns from its embedding's
// generators while its signature register compacts the responses, and
// every single stuck-at fault on the module's ports is graded against
// the fault-free signature. High coverage demonstrates that the
// allocated test resources actually test the data path.
func (r *Result) FaultCoverage(patterns int, seed uint64) (*CoverageReport, error) {
	rep, err := bistgen.Coverage(r.dp, r.plan, patterns, seed)
	if err != nil {
		return nil, err
	}
	out := &CoverageReport{Patterns: rep.Patterns}
	for _, mc := range rep.PerModule {
		out.PerModule = append(out.PerModule, ModuleCoverage{Module: mc.Module, Faults: mc.Faults, Detected: mc.Detected})
	}
	return out, nil
}
