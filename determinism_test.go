package bistpath

import (
	"testing"
)

// Regression test for latent map-iteration nondeterminism: every stage
// feeding the optimizer (style enumeration, embedding enumeration,
// session packing) must iterate in sorted order, so repeated synthesis
// of the same design yields byte-identical reports. Twenty runs per
// configuration gives Go's randomized map iteration ample opportunity
// to expose an unsorted walk.
func TestSynthesizeRepeatedlyDeterministic(t *testing.T) {
	const runs = 20
	for _, name := range BenchmarkNames() {
		for _, mode := range []struct {
			label string
			cfg   func() Config
		}{
			{"testable", DefaultConfig},
			{"traditional", func() Config {
				c := DefaultConfig()
				c.Mode = TraditionalHLS
				return c
			}},
			{"minsessions", func() Config {
				c := DefaultConfig()
				c.MinimizeSessions = true
				return c
			}},
		} {
			var first string
			for run := 0; run < runs; run++ {
				// Rebuild the DFG and binding from scratch each run so
				// construction-order effects are exercised too.
				d, mods, err := Benchmark(name)
				if err != nil {
					t.Fatal(err)
				}
				res, err := d.Synthesize(mods, mode.cfg())
				if err != nil {
					t.Fatalf("%s/%s run %d: %v", name, mode.label, run, err)
				}
				rep := res.ReportText()
				if run == 0 {
					first = rep
					continue
				}
				if rep != first {
					t.Fatalf("%s/%s: run %d report differs from run 0:\n--- run 0\n%s\n--- run %d\n%s",
						name, mode.label, run, first, run, rep)
				}
			}
		}
	}
}
