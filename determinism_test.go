package bistpath

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
)

// The parallel search must be invisible in the output: the full JSON
// serialization (the strongest observable, modulo wall-time *_ns stats
// fields and the search_workers configuration echo) is byte-identical
// whatever the worker count.
func TestResultJSONIdenticalAcrossWorkers(t *testing.T) {
	normalize := func(raw []byte) []byte {
		var doc map[string]any
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatal(err)
		}
		doc["stats"].(map[string]any)["search_workers"] = 0
		out, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		return normalizeResultJSON(t, out)
	}
	for _, name := range BenchmarkNames() {
		var baseline []byte
		for _, workers := range []int{1, 2, 8} {
			d, mods, err := Benchmark(name)
			if err != nil {
				t.Fatal(err)
			}
			cfg := DefaultConfig()
			cfg.Workers = workers
			res, err := d.Synthesize(mods, cfg)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			raw, err := res.JSON()
			if err != nil {
				t.Fatal(err)
			}
			got := normalize(raw)
			if workers == 1 {
				baseline = got
				continue
			}
			if string(got) != string(baseline) {
				t.Errorf("%s: JSON with %d workers differs from sequential run:\n%s\nvs\n%s",
					name, workers, got, baseline)
			}
		}
	}
}

// Cancelling a synthesis mid-search must leave no trace: a fresh run
// afterwards produces exactly the result an undisturbed run would. The
// observer cancels on the first progress event from inside the branch
// and bound, which lands mid-search whenever the design is large enough
// to emit one (paulin's search is; if a future change makes it finish
// below the progress granularity the cancellation part degrades to a
// no-op and only the equality assertion remains).
func TestCancellationRetryDeterministic(t *testing.T) {
	d, mods, err := Benchmark("paulin")
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Synthesize(mods, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	raw, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	baseline := normalizeResultJSON(t, raw)

	for run := 0; run < 3; run++ {
		ctx, cancel := context.WithCancel(context.Background())
		cfg := DefaultConfig()
		cfg.Workers = 2
		cfg.Observer = func(e Event) {
			if e.Kind == SearchProgress {
				cancel()
			}
		}
		_, err := d.SynthesizeCtx(ctx, mods, cfg)
		cancel()
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled run %d: %v", run, err)
		}

		retry, err := d.Synthesize(mods, DefaultConfig())
		if err != nil {
			t.Fatalf("retry %d after cancellation: %v", run, err)
		}
		raw, err := retry.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if got := normalizeResultJSON(t, raw); string(got) != string(baseline) {
			t.Errorf("retry %d after cancellation drifted from baseline:\n%s\nvs\n%s", run, got, baseline)
		}
	}
}

// Regression test for latent map-iteration nondeterminism: every stage
// feeding the optimizer (style enumeration, embedding enumeration,
// session packing) must iterate in sorted order, so repeated synthesis
// of the same design yields byte-identical reports. Twenty runs per
// configuration gives Go's randomized map iteration ample opportunity
// to expose an unsorted walk.
func TestSynthesizeRepeatedlyDeterministic(t *testing.T) {
	const runs = 20
	for _, name := range BenchmarkNames() {
		for _, mode := range []struct {
			label string
			cfg   func() Config
		}{
			{"testable", DefaultConfig},
			{"traditional", func() Config {
				c := DefaultConfig()
				c.Mode = TraditionalHLS
				return c
			}},
			{"minsessions", func() Config {
				c := DefaultConfig()
				c.MinimizeSessions = true
				return c
			}},
		} {
			var first string
			for run := 0; run < runs; run++ {
				// Rebuild the DFG and binding from scratch each run so
				// construction-order effects are exercised too.
				d, mods, err := Benchmark(name)
				if err != nil {
					t.Fatal(err)
				}
				res, err := d.Synthesize(mods, mode.cfg())
				if err != nil {
					t.Fatalf("%s/%s run %d: %v", name, mode.label, run, err)
				}
				rep := res.ReportText()
				if run == 0 {
					first = rep
					continue
				}
				if rep != first {
					t.Fatalf("%s/%s: run %d report differs from run 0:\n--- run 0\n%s\n--- run %d\n%s",
						name, mode.label, run, first, run, rep)
				}
			}
		}
	}
}
