package bistpath

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"bistpath/internal/area"
	"bistpath/internal/bist"
	"bistpath/internal/cache"
	"bistpath/internal/dfg"
	"bistpath/internal/modassign"
)

// cacheKeyVersion is folded into every cache key. It is bumped whenever
// the synthesis pipeline's semantics change in a way that can alter a
// Result for identical inputs, orphaning (never corrupting) entries
// produced by older code.
const cacheKeyVersion = 1

// cacheEntrySchema versions the on-disk entry payload layout. A payload
// with a different schema is a miss.
const cacheEntrySchema = 1

// CacheOptions configures NewCache. The zero value selects an
// in-memory-only cache with the default budget.
type CacheOptions struct {
	// MaxBytes bounds the in-memory layer's accounted footprint in
	// bytes (0 = 256 MiB). When the budget is exceeded, least recently
	// used entries are evicted.
	MaxBytes int64
	// Shards is the in-memory LRU shard count (0 = 16). More shards
	// reduce lock contention for highly concurrent batches.
	Shards int
	// Dir, when non-empty, adds a persistent on-disk layer rooted at
	// this directory. Disk entries are versioned and checksummed; a
	// corrupt or foreign entry is treated as a miss, never an error,
	// and disk write failures never fail a synthesis.
	Dir string
}

// CacheStats is a point-in-time snapshot of a Cache's activity.
type CacheStats struct {
	// Hits counts lookups served without re-running the BIST search:
	// in-memory hits, disk-layer hits and flights coalesced onto a
	// concurrent identical synthesis.
	Hits int64
	// Misses counts lookups that ran a full synthesis.
	Misses int64

	MemoryHits int64 // served straight from the in-memory layer
	DiskHits   int64 // reconstructed from the persistent layer
	Coalesced  int64 // joined a concurrent identical synthesis

	Entries   int   // live in-memory entries
	Bytes     int64 // accounted in-memory bytes
	MaxBytes  int64 // configured in-memory budget
	Evictions int64 // in-memory entries evicted under the byte budget

	DiskWrites int64 // entries persisted to the disk layer
	DiskErrors int64 // corrupt entries discarded + failed disk writes
}

// String renders the snapshot as the cmd tools' one-line summary.
func (s CacheStats) String() string {
	line := fmt.Sprintf("cache: %d hits (%d memory, %d disk, %d coalesced), %d misses, %d evictions, %d bytes",
		s.Hits, s.MemoryHits, s.DiskHits, s.Coalesced, s.Misses, s.Evictions, s.Bytes)
	if s.DiskWrites+s.DiskErrors > 0 {
		line += fmt.Sprintf(", disk: %d writes, %d errors", s.DiskWrites, s.DiskErrors)
	}
	return line
}

// Cache memoizes synthesis results across runs, keyed by a canonical
// fingerprint of the semantic inputs: the canonicalized DFG text
// (including port-input marks, which the text format omits), the
// resolved op-to-module binding, and every Config field that can affect
// the Result. Config.Workers and Config.Observer are excluded — the
// determinism contract guarantees they cannot change the Result — as is
// the Cache field itself.
//
// A hit returns a Result whose JSON() is byte-identical to the run that
// populated the entry: the stored Stats (wall times and search
// counters) are replayed verbatim, and the per-run cache view is kept
// in the Stats fields excluded from JSON. Concurrent lookups of the
// same key coalesce onto one synthesis (singleflight), so a batch full
// of duplicate jobs costs one search.
//
// A Cache is safe for concurrent use by any number of goroutines and
// may be shared across SynthesizeCtx calls, batches and designs. Served
// Results share immutable internal state with the cached master; the
// exported fields are deep-copied per caller.
type Cache struct {
	mem    *cache.Memory
	disk   *cache.Disk
	flight cache.Group

	memHits   atomic.Int64
	diskHits  atomic.Int64
	coalesced atomic.Int64
	misses    atomic.Int64
}

// NewCache creates a synthesis result cache. With CacheOptions.Dir set,
// the persistent layer is opened (and created) under that directory; a
// directory that cannot be created fails with an error wrapping
// ErrCacheDir.
func NewCache(opts CacheOptions) (*Cache, error) {
	c := &Cache{mem: cache.NewMemory(opts.MaxBytes, opts.Shards)}
	if opts.Dir != "" {
		d, err := cache.NewDisk(opts.Dir)
		if err != nil {
			return nil, fmt.Errorf("%w %q: %v", ErrCacheDir, opts.Dir, err)
		}
		c.disk = d
	}
	return c, nil
}

// Stats snapshots the cache's counters and occupancy.
func (c *Cache) Stats() CacheStats {
	ms := c.mem.Stats()
	st := CacheStats{
		MemoryHits: c.memHits.Load(),
		DiskHits:   c.diskHits.Load(),
		Coalesced:  c.coalesced.Load(),
		Misses:     c.misses.Load(),
		Entries:    ms.Entries,
		Bytes:      ms.Bytes,
		MaxBytes:   ms.MaxBytes,
		Evictions:  ms.Evictions,
	}
	st.Hits = st.MemoryHits + st.DiskHits + st.Coalesced
	if c.disk != nil {
		ds := c.disk.Stats()
		st.DiskWrites = ds.Writes
		st.DiskErrors = ds.Errors
	}
	return st
}

// errStaleCacheEntry marks a persisted plan that no longer matches the
// data path the current inputs produce (stale version, key collision or
// undetected corruption). It is internal: the cache falls back to a
// full synthesis, so callers never see it.
var errStaleCacheEntry = errors.New("bistpath: stale cache entry")

// cachedSynthesis carries a reconstructed BIST plan plus the frozen
// Stats of the run that produced it into synthesizeCore, which then
// skips the BIST search.
type cachedSynthesis struct {
	plan  *bist.Plan
	stats Stats
}

// flightOutcome is what one singleflight execution publishes: the
// master Result and whether it was recovered from the disk layer.
type flightOutcome struct {
	res      *Result
	fromDisk bool
}

// synthesize is the cache-enabled synthesis path: memory lookup, then a
// coalesced flight that probes the disk layer before paying for a full
// run. Callers always receive a private copy of the master Result.
func (c *Cache) synthesize(ctx context.Context, g *dfg.Graph, mb *modassign.Binding, cfg Config, sc *synthScratch) (*Result, error) {
	key := cacheKey(g, mb, cfg)
	for {
		if v, ok := c.mem.Get(key); ok {
			c.memHits.Add(1)
			expCacheHits.Add(1)
			return c.serve(v.(*Result), cfg, g.Name, true), nil
		}
		v, err, shared := c.flight.Do(ctx, key, func() (any, error) {
			return c.fill(ctx, g, mb, cfg, key, sc)
		})
		if err != nil {
			if shared && isContextError(err) && ctx.Err() == nil {
				// The flight's leader was cancelled, not us: retry (and
				// possibly lead this time).
				continue
			}
			return nil, err
		}
		out := v.(flightOutcome)
		hit := out.fromDisk
		if shared {
			c.coalesced.Add(1)
			expCacheHits.Add(1)
			hit = true
		}
		return c.serve(out.res, cfg, g.Name, hit), nil
	}
}

// fill runs as a flight leader: disk probe first, full synthesis
// otherwise. Successful results are published to the in-memory layer
// (and, for full runs, the disk layer) before the flight resolves.
func (c *Cache) fill(ctx context.Context, g *dfg.Graph, mb *modassign.Binding, cfg Config, key cache.Key, sc *synthScratch) (any, error) {
	if c.disk != nil {
		if payload, ok := c.disk.Get(key); ok {
			if cached, err := decodeCacheEntry(payload, cfg.Width); err == nil {
				res, err := synthesizeCore(ctx, g, mb, cfg, cached, sc)
				switch {
				case err == nil:
					c.diskHits.Add(1)
					expCacheHits.Add(1)
					expCacheDiskHits.Add(1)
					c.store(key, res)
					return flightOutcome{res: res, fromDisk: true}, nil
				case isContextError(err):
					return nil, err
				}
				// Stale or undetectably corrupt entry: fall through to a
				// full synthesis, which overwrites it.
			}
		}
	}
	c.misses.Add(1)
	expCacheMisses.Add(1)
	res, err := synthesizeCore(ctx, g, mb, cfg, nil, sc)
	if err != nil {
		return nil, err
	}
	c.store(key, res)
	if c.disk != nil {
		if payload, err := encodeCacheEntry(res); err == nil {
			c.disk.Put(key, payload)
		}
	}
	return flightOutcome{res: res}, nil
}

// store publishes a master Result to the in-memory layer and folds the
// eviction and byte-accounting deltas into the expvar gauges.
func (c *Cache) store(key cache.Key, res *Result) {
	evicted, bytesDelta := c.mem.Put(key, res, resultFootprint(res))
	expCacheStores.Add(1)
	expCacheEvictions.Add(int64(evicted))
	expCacheBytes.Add(bytesDelta)
}

// serve hands a caller its private view of a master Result: exported
// fields deep-copied, the frozen Stats of the populating run replayed
// verbatim, and the JSON-excluded cache fields filled with this cache's
// live counters.
func (c *Cache) serve(master *Result, cfg Config, design string, hit bool) *Result {
	if hit && cfg.Observer != nil {
		cfg.Observer(Event{Design: design, Kind: CacheHit})
	}
	cp := master.clone()
	st := c.Stats()
	cp.Stats.CacheHit = hit
	cp.Stats.CacheHits = st.Hits
	cp.Stats.CacheMisses = st.Misses
	cp.Stats.CacheEvictions = st.Evictions
	cp.Stats.CacheBytes = st.Bytes
	return cp
}

func isContextError(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// clone returns a copy of the Result whose exported fields are private
// to the caller. The unexported internals (data path, plan, module
// binding) are shared: they are immutable after synthesis and back the
// read-only query methods only.
func (r *Result) clone() *Result {
	cp := *r
	cp.Registers = make([]RegisterInfo, len(r.Registers))
	for i, reg := range r.Registers {
		reg.Vars = append([]string(nil), reg.Vars...)
		cp.Registers[i] = reg
	}
	cp.Modules = make([]ModuleInfo, len(r.Modules))
	for i, m := range r.Modules {
		m.Ops = append([]string(nil), m.Ops...)
		cp.Modules[i] = m
	}
	cp.Sessions = make([][]string, len(r.Sessions))
	for i, s := range r.Sessions {
		cp.Sessions[i] = append([]string(nil), s...)
	}
	cp.StyleCounts = make(map[string]int, len(r.StyleCounts))
	for k, v := range r.StyleCounts {
		cp.StyleCounts[k] = v
	}
	cp.BindingTrace = append([]string(nil), r.BindingTrace...)
	if r.Cost != nil {
		c := *r.Cost
		cp.Cost = &c
	}
	if r.Pareto != nil {
		cp.Pareto = make([]ParetoPoint, len(r.Pareto))
		for i, pt := range r.Pareto {
			counts := make(map[string]int, len(pt.StyleCounts))
			for k, v := range pt.StyleCounts {
				counts[k] = v
			}
			sessions := make([][]string, len(pt.Sessions))
			for j, s := range pt.Sessions {
				sessions[j] = append([]string(nil), s...)
			}
			pt.StyleCounts = counts
			pt.Sessions = sessions
			cp.Pareto[i] = pt
		}
	}
	return &cp
}

// resultFootprint estimates the bytes a cached Result pins, including
// the shared data path and plan. It only feeds the LRU's byte
// accounting, so a consistent estimate matters more than exactness.
func resultFootprint(r *Result) int64 {
	const (
		entryBase  = 1024
		perItem    = 64
		perString  = 16
		perMicroOp = 96
	)
	n := int64(entryBase)
	size := func(ss []string) {
		for _, s := range ss {
			n += perString + int64(len(s))
		}
	}
	for _, reg := range r.Registers {
		n += perItem + int64(len(reg.Name)+len(reg.Style))
		size(reg.Vars)
	}
	for _, m := range r.Modules {
		n += perItem + int64(len(m.Name)+len(m.Class)+len(m.Embedding))
		size(m.Ops)
	}
	for _, s := range r.Sessions {
		n += perItem
		size(s)
	}
	size(r.BindingTrace)
	if dp := r.dp; dp != nil {
		for _, reg := range dp.Regs {
			n += perItem + int64(len(reg.Name))
			size(reg.Vars)
			size(reg.Sources)
		}
		for _, m := range dp.Modules {
			n += perItem + int64(len(m.Name))
			size(m.Left)
			size(m.Right)
			size(m.Dests)
		}
		for _, st := range dp.Steps {
			n += int64(len(st.Ops))*perMicroOp + int64(len(st.Loads))*perItem
		}
	}
	if r.plan != nil {
		n += int64(len(r.plan.Embeddings)+len(r.plan.Styles)) * perItem
	}
	return n
}

// cacheKey computes the canonical content-addressed key for one
// synthesis request. Everything semantic goes in; Workers, Observer and
// Cache stay out (the determinism tests prove the former two cannot
// change the Result). The DFG contributes its canonical text plus the
// port-input marks the text format omits; the module binding
// contributes a name-sorted inventory with sorted op lists, so the
// explicit map and the automatic binder hit the same entry whenever
// they resolve identically.
// Section names of the canonical fingerprint, in stream order. The
// sectioning is the contract the incremental Session layer diffs
// against: each name groups the semantic inputs that, when changed,
// invalidate a known prefix of the pipeline (see DESIGN.md §11).
const (
	keySectionHeader    = "header"
	keySectionConfig    = "config"
	keySectionObjective = "objective"
	keySectionSearch    = "search"
	keySectionModules   = "modules"
	keySectionPorts     = "ports"
	keySectionDFG       = "dfg"
)

// keySection is one named segment of the canonical cache fingerprint.
type keySection struct {
	name    string
	payload string
}

// keySections itemizes the canonical fingerprint into named sections.
// Concatenating the payloads in stream order reproduces, byte for
// byte, the exact pre-image cacheKey has always hashed (pinned by
// TestCacheKeyPinned), so refactoring the key into sections costs no
// cache invalidation. Sections that contribute nothing to the stream
// (objective at MinArea, search at SearchExact) carry empty payloads
// rather than being omitted, so a diff between two configs always
// compares like-named sections positionally.
func keySections(g *dfg.Graph, mb *modassign.Binding, cfg Config) []keySection {
	out := make([]keySection, 0, 7)
	section := func(name string, fill func(sb *strings.Builder)) {
		var sb strings.Builder
		fill(&sb)
		out = append(out, keySection{name: name, payload: sb.String()})
	}
	section(keySectionHeader, func(sb *strings.Builder) {
		fmt.Fprintf(sb, "bistpath-cache-key v%d schema%d\n", cacheKeyVersion, ResultSchemaVersion)
	})
	section(keySectionConfig, func(sb *strings.Builder) {
		fmt.Fprintf(sb, "width %d\n", cfg.Width)
		fmt.Fprintf(sb, "mode %s\n", cfg.Mode)
		fmt.Fprintf(sb, "allowpadtpg %t\nminimizesessions %t\ntrace %t\n",
			cfg.AllowPadTPG, cfg.MinimizeSessions, cfg.Trace)
		fmt.Fprintf(sb, "sharing %t\ncaseoverrides %t\navoidcbilbo %t\nweightedinterconnect %t\n",
			cfg.Sharing, cfg.CaseOverrides, cfg.AvoidCBILBO, cfg.WeightedInterconnect)
	})
	// Multi-objective configuration joins the key only when it departs
	// from the default MinArea objective, so every key computed for an
	// area-only config is bit-identical to earlier releases — and a
	// weighted run can never be served a cached pure-area result.
	// (MinArea ignores Weights and Power entirely, so they are correctly
	// absent from its keys.)
	section(keySectionObjective, func(sb *strings.Builder) {
		if cfg.Objective == MinArea {
			return
		}
		fmt.Fprintf(sb, "objective %s\nweights %d %d %d\n",
			cfg.Objective, cfg.Weights.Area, cfg.Weights.TestTime, cfg.Weights.PeakPower)
		if len(cfg.Power) > 0 {
			names := make([]string, 0, len(cfg.Power))
			for n := range cfg.Power {
				names = append(names, n)
			}
			sort.Strings(names)
			sb.WriteString("power")
			for _, n := range names {
				fmt.Fprintf(sb, " %s=%d", n, cfg.Power[n])
			}
			sb.WriteByte('\n')
		}
	})
	// The search strategy joins the key the same way: only when it
	// departs from the default SearchExact, keeping every exact-config
	// key bit-identical to earlier releases. Seed and the budgets are
	// semantic for a stochastic run — different seeds legitimately cache
	// different plans. (TimeBudget-truncated runs never reach cacheKey;
	// synthesize routes them around the cache entirely.)
	section(keySectionSearch, func(sb *strings.Builder) {
		if cfg.Search == SearchExact {
			return
		}
		fmt.Fprintf(sb, "search %s\nseed %d\ngenerations %d\nbudget %d\n",
			cfg.Search, cfg.Seed, cfg.MaxGenerations, int64(cfg.TimeBudget))
	})
	section(keySectionModules, func(sb *strings.Builder) {
		sb.WriteString("modules\n")
		mods := append([]*modassign.Module(nil), mb.Modules...)
		sort.Slice(mods, func(i, j int) bool { return mods[i].Name < mods[j].Name })
		for _, m := range mods {
			kinds := make([]string, len(m.Class.Kinds))
			for i, k := range m.Class.Kinds {
				kinds[i] = string(k)
			}
			ops := append([]string(nil), m.Ops...)
			sort.Strings(ops)
			fmt.Fprintf(sb, "%s %s [%s] %s\n", m.Name, m.Class.Name,
				strings.Join(kinds, ""), strings.Join(ops, " "))
		}
	})
	section(keySectionPorts, func(sb *strings.Builder) {
		var ports []string
		for _, v := range g.Vars() {
			if v.IsPort {
				ports = append(ports, v.Name)
			}
		}
		sort.Strings(ports)
		fmt.Fprintf(sb, "ports %s\n", strings.Join(ports, " "))
	})
	section(keySectionDFG, func(sb *strings.Builder) {
		sb.WriteString("dfg\n")
		sb.WriteString(g.Text())
	})
	return out
}

// sectionPayload returns the payload of the named section ("" when the
// section contributed nothing to the stream).
func sectionPayload(secs []keySection, name string) string {
	for _, s := range secs {
		if s.name == name {
			return s.payload
		}
	}
	return ""
}

func cacheKey(g *dfg.Graph, mb *modassign.Binding, cfg Config) cache.Key {
	var sb strings.Builder
	for _, s := range keySections(g, mb, cfg) {
		sb.WriteString(s.payload)
	}
	return cache.Key(sha256.Sum256([]byte(sb.String())))
}

// cacheEntryJSON is the persistent entry payload. Only the winning
// embeddings and the frozen stats are stored: styles, upgrade area and
// the session schedule are derived on load (bist.PlanFromEmbeddings),
// and the whole reconstruction is validated against the freshly rebuilt
// data path, so a stale or colliding entry degrades to a miss.
type cacheEntryJSON struct {
	Schema     int                           `json:"schema"`
	Design     string                        `json:"design"`
	Exact      bool                          `json:"exact"`
	Embeddings map[string]cacheEmbeddingJSON `json:"embeddings"`
	Stats      statsJSON                     `json:"stats"`
}

type cacheEmbeddingJSON struct {
	HeadL string `json:"head_l"`
	HeadR string `json:"head_r,omitempty"`
	Tail  string `json:"tail"`
}

// encodeCacheEntry serializes the parts of a completed Result the disk
// layer needs to reproduce it byte for byte.
func encodeCacheEntry(r *Result) ([]byte, error) {
	e := cacheEntryJSON{
		Schema:     cacheEntrySchema,
		Design:     r.Name,
		Exact:      r.plan.Exact,
		Embeddings: make(map[string]cacheEmbeddingJSON, len(r.plan.Embeddings)),
		Stats:      statsToJSON(r.Stats),
	}
	for name, emb := range r.plan.Embeddings {
		e.Embeddings[name] = cacheEmbeddingJSON{HeadL: emb.HeadL, HeadR: emb.HeadR, Tail: emb.Tail}
	}
	return json.Marshal(e)
}

// decodeCacheEntry parses a disk payload into the cached plan + frozen
// stats that synthesizeCore splices in instead of the BIST search.
func decodeCacheEntry(payload []byte, width int) (*cachedSynthesis, error) {
	var e cacheEntryJSON
	if err := json.Unmarshal(payload, &e); err != nil {
		return nil, err
	}
	if e.Schema != cacheEntrySchema {
		return nil, fmt.Errorf("%w: entry schema %d, want %d", errStaleCacheEntry, e.Schema, cacheEntrySchema)
	}
	embs := make(map[string]bist.Embedding, len(e.Embeddings))
	for name, emb := range e.Embeddings {
		embs[name] = bist.Embedding{Module: name, HeadL: emb.HeadL, HeadR: emb.HeadR, Tail: emb.Tail}
	}
	return &cachedSynthesis{
		plan:  bist.PlanFromEmbeddings(area.Default(width), embs, e.Exact),
		stats: statsFromJSON(e.Stats),
	}, nil
}
