// Package lang compiles small behavioral descriptions — assignment
// statements over arithmetic/logic expressions — into data flow graphs,
// so designs can be written the way the paper presents them
// ("u1 = u - 3*x*u*dx - 3*y*dx") instead of as explicit op lists.
//
// Grammar (expressions are standard precedence-climbing):
//
//	program  := { stmt }
//	stmt     := ident "=" expr
//	expr     := cmp { ("&" | "|" | "^") cmp }
//	cmp      := sum [ ("<" | ">") sum ]
//	sum      := term { ("+" | "-") term }
//	term     := factor { ("*" | "/") factor }
//	factor   := ident | number | "(" expr ")"
//
// Every identifier read before it is assigned becomes a primary input;
// every assigned identifier that is never read becomes a primary output;
// integer literals become port-fed constant inputs (k<value>). Common
// subexpressions are shared unless disabled, and the result is an
// unscheduled DFG ready for the schedulers.
package lang

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"bistpath/internal/dfg"
)

// Options controls compilation.
type Options struct {
	// NoCSE disables common-subexpression sharing (each occurrence of a
	// repeated expression gets its own operation, as in the classic
	// un-optimized HAL benchmark where u*dx is computed twice).
	NoCSE bool
}

// Compile parses the program text and builds the DFG.
func Compile(name, program string, opts Options) (*dfg.Graph, error) {
	c := &compiler{
		g:     dfg.New(name),
		opts:  opts,
		exprs: make(map[string]string),
		vars:  make(map[string]bool),
	}
	for ln, raw := range strings.Split(program, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "//") {
			continue
		}
		if err := c.stmt(line); err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
	}
	if len(c.g.Ops()) == 0 {
		return nil, fmt.Errorf("lang: no statements")
	}
	// Outputs: assigned names never read afterwards.
	var outs []string
	for _, v := range c.g.Vars() {
		if !v.IsInput && len(v.Uses) == 0 {
			outs = append(outs, v.Name)
		}
	}
	if err := c.g.MarkOutput(outs...); err != nil {
		return nil, err
	}
	if err := c.g.Validate(); err != nil {
		return nil, err
	}
	return c.g, nil
}

type compiler struct {
	g     *dfg.Graph
	opts  Options
	exprs map[string]string // canonical expression -> variable holding it
	vars  map[string]bool   // declared variable names
	nTmp  int
	nOp   int

	toks []token
	pos  int
}

type token struct {
	kind string // "ident", "num", "op", "(", ")"
	text string
}

func (c *compiler) stmt(line string) error {
	eq := strings.Index(line, "=")
	if eq < 0 {
		return fmt.Errorf("missing '=' in %q", line)
	}
	lhs := strings.TrimSpace(line[:eq])
	if !isIdent(lhs) {
		return fmt.Errorf("bad assignment target %q", lhs)
	}
	if c.vars[lhs] {
		return fmt.Errorf("%q assigned twice (single-assignment form required)", lhs)
	}
	toks, err := lex(line[eq+1:])
	if err != nil {
		return err
	}
	c.toks, c.pos = toks, 0
	val, err := c.expr()
	if err != nil {
		return err
	}
	if c.pos != len(c.toks) {
		return fmt.Errorf("trailing input after expression: %q", c.toks[c.pos].text)
	}
	// Bind the final value to the target name: a fresh temporary is
	// renamed; a value that is already referenced elsewhere (a CSE hit,
	// or a bare earlier target) gets a duplicate of its defining
	// operation so the new name has its own producer.
	if v := c.g.Var(val); v != nil && v.Def != "" {
		if strings.HasPrefix(val, "%") && len(v.Uses) == 0 {
			return c.rename(val, lhs)
		}
		def := c.g.Op(v.Def)
		c.nOp++
		if err := c.g.AddOp(fmt.Sprintf("op%d", c.nOp), def.Kind, 0, lhs, def.Args...); err != nil {
			return err
		}
		c.vars[lhs] = true
		return nil
	}
	return fmt.Errorf("right-hand side of %q must contain an operator", lhs)
}

// rename rewrites a temporary variable name to its final name.
func (c *compiler) rename(tmp, final string) error {
	if err := c.g.Rename(tmp, final); err != nil {
		return err
	}
	c.vars[final] = true
	// Update the CSE table entry pointing at the temp.
	for k, name := range c.exprs {
		if name == tmp {
			c.exprs[k] = final
		}
	}
	return nil
}

func (c *compiler) expr() (string, error) { // & | ^
	left, err := c.cmp()
	if err != nil {
		return "", err
	}
	for c.peek("&") || c.peek("|") || c.peek("^") {
		op := c.next().text
		right, err := c.cmp()
		if err != nil {
			return "", err
		}
		left, err = c.emit(dfg.Kind(op), left, right)
		if err != nil {
			return "", err
		}
	}
	return left, nil
}

func (c *compiler) cmp() (string, error) {
	left, err := c.sum()
	if err != nil {
		return "", err
	}
	if c.peek("<") || c.peek(">") {
		op := c.next().text
		right, err := c.sum()
		if err != nil {
			return "", err
		}
		return c.emit(dfg.Kind(op), left, right)
	}
	return left, nil
}

func (c *compiler) sum() (string, error) {
	left, err := c.term()
	if err != nil {
		return "", err
	}
	for c.peek("+") || c.peek("-") {
		op := c.next().text
		right, err := c.term()
		if err != nil {
			return "", err
		}
		left, err = c.emit(dfg.Kind(op), left, right)
		if err != nil {
			return "", err
		}
	}
	return left, nil
}

func (c *compiler) term() (string, error) {
	left, err := c.factor()
	if err != nil {
		return "", err
	}
	for c.peek("*") || c.peek("/") {
		op := c.next().text
		right, err := c.factor()
		if err != nil {
			return "", err
		}
		left, err = c.emit(dfg.Kind(op), left, right)
		if err != nil {
			return "", err
		}
	}
	return left, nil
}

func (c *compiler) factor() (string, error) {
	if c.pos >= len(c.toks) {
		return "", fmt.Errorf("unexpected end of expression")
	}
	t := c.next()
	switch t.kind {
	case "ident":
		if !c.vars[t.text] {
			if err := c.g.AddInput(t.text); err != nil {
				return "", err
			}
			c.vars[t.text] = true
		}
		return t.text, nil
	case "num":
		name := "k" + t.text
		if !c.vars[name] {
			if err := c.g.AddInput(name); err != nil {
				return "", err
			}
			if err := c.g.MarkPortInput(name); err != nil {
				return "", err
			}
			c.vars[name] = true
		}
		return name, nil
	case "(":
		v, err := c.expr()
		if err != nil {
			return "", err
		}
		if c.pos >= len(c.toks) || c.toks[c.pos].kind != ")" {
			return "", fmt.Errorf("missing ')'")
		}
		c.pos++
		return v, nil
	}
	return "", fmt.Errorf("unexpected token %q", t.text)
}

// emit creates (or reuses, under CSE) an operation computing left∘right.
func (c *compiler) emit(kind dfg.Kind, left, right string) (string, error) {
	key := string(kind) + "\x00" + left + "\x00" + right
	if kind.Commutative() && right < left {
		key = string(kind) + "\x00" + right + "\x00" + left
	}
	if !c.opts.NoCSE {
		if v, ok := c.exprs[key]; ok {
			return v, nil
		}
	}
	c.nTmp++
	c.nOp++
	res := fmt.Sprintf("%%t%d", c.nTmp)
	opName := fmt.Sprintf("op%d", c.nOp)
	if err := c.g.AddOp(opName, kind, 0, res, left, right); err != nil {
		return "", err
	}
	c.vars[res] = true
	if !c.opts.NoCSE {
		c.exprs[key] = res
	}
	return res, nil
}

func (c *compiler) peek(text string) bool {
	return c.pos < len(c.toks) && c.toks[c.pos].text == text
}

func (c *compiler) next() token {
	t := c.toks[c.pos]
	c.pos++
	return t
}

func lex(s string) ([]token, error) {
	var out []token
	i := 0
	for i < len(s) {
		r := rune(s[i])
		switch {
		case unicode.IsSpace(r):
			i++
		case strings.ContainsRune("+-*/&|^<>", r):
			out = append(out, token{"op", string(r)})
			i++
		case r == '(':
			out = append(out, token{"(", "("})
			i++
		case r == ')':
			out = append(out, token{")", ")"})
			i++
		case unicode.IsDigit(r):
			j := i
			for j < len(s) && unicode.IsDigit(rune(s[j])) {
				j++
			}
			if _, err := strconv.Atoi(s[i:j]); err != nil {
				return nil, fmt.Errorf("bad number %q", s[i:j])
			}
			out = append(out, token{"num", s[i:j]})
			i = j
		case unicode.IsLetter(r) || r == '_':
			j := i
			for j < len(s) && (unicode.IsLetter(rune(s[j])) || unicode.IsDigit(rune(s[j])) || s[j] == '_') {
				j++
			}
			out = append(out, token{"ident", s[i:j]})
			i = j
		default:
			return nil, fmt.Errorf("unexpected character %q", r)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty expression")
	}
	return out, nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		if unicode.IsLetter(r) || r == '_' || (i > 0 && unicode.IsDigit(r)) {
			continue
		}
		return false
	}
	return true
}
