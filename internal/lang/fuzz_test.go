package lang

import (
	"testing"

	"bistpath/internal/dfg"
)

// FuzzLangParse throws arbitrary program text at the compiler. The
// contract under fuzzing: never panic, and every accepted program must
// produce a validated graph whose text form round-trips through the DFG
// parser with the same operation count.
func FuzzLangParse(f *testing.F) {
	f.Add("x = a + b\ny = x * c")
	f.Add("u1 = u - 3*x*u*dx - 3*y*dx")
	f.Add("o = (a + 2) * (a + 2) / (b ^ c)")
	f.Add("# comment\nr = p < q\ns = p & q | r")
	f.Add("x = ((((a))))\nx2 = x - x")
	f.Add("= broken\nx 5\n((")
	f.Fuzz(func(t *testing.T, program string) {
		// The expression grammar recurses through parenthesized factors;
		// bound the input so pathological nesting stays within the stack.
		if len(program) > 4096 {
			t.Skip()
		}
		g, err := Compile("fuzz", program, Options{})
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted program yields invalid graph: %v\nprogram:\n%s", err, program)
		}
		back, err := dfg.ParseString(g.Text())
		if err != nil {
			t.Fatalf("graph text does not round-trip: %v\ntext:\n%s", err, g.Text())
		}
		if len(back.Ops()) != len(g.Ops()) {
			t.Fatalf("round trip changed op count: %d != %d", len(back.Ops()), len(g.Ops()))
		}
	})
}
