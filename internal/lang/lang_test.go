package lang

import (
	"testing"

	"bistpath/internal/dfg"
	"bistpath/internal/sched"
)

func TestCompileSimple(t *testing.T) {
	g, err := Compile("demo", `
		# sum of products
		p = a * b + c * d
	`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(g.Ops()); got != 3 {
		t.Errorf("got %d ops, want 3", got)
	}
	vals, err := g.Eval(map[string]uint64{"a": 2, "b": 3, "c": 4, "d": 5}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if vals["p"] != 26 {
		t.Errorf("p = %d, want 26", vals["p"])
	}
	if outs := g.Outputs(); len(outs) != 1 || outs[0] != "p" {
		t.Errorf("outputs = %v", outs)
	}
}

func TestPrecedenceAndParens(t *testing.T) {
	g, err := Compile("prec", "r = a + b * c - (a + b) / d\n", Options{})
	if err != nil {
		t.Fatal(err)
	}
	in := map[string]uint64{"a": 10, "b": 2, "c": 5, "d": 3}
	vals, err := g.Eval(in, 16)
	if err != nil {
		t.Fatal(err)
	}
	// 10 + 10 - 12/3 = 16
	if vals["r"] != 16 {
		t.Errorf("r = %d, want 16", vals["r"])
	}
}

func TestConstantsBecomePortInputs(t *testing.T) {
	g, err := Compile("c", "y = 3 * x + 7\n", Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"k3", "k7"} {
		v := g.Var(name)
		if v == nil || !v.IsInput || !v.IsPort {
			t.Errorf("constant %s not a port input", name)
		}
	}
	vals, err := g.Eval(map[string]uint64{"x": 5, "k3": 3, "k7": 7}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if vals["y"] != 22 {
		t.Errorf("y = %d, want 22", vals["y"])
	}
}

func TestCSE(t *testing.T) {
	// u*dx appears as a subexpression in both statements (parenthesized
	// in the first so the parse trees match).
	src := `
		u1 = u - (u * dx) * x
		y1 = y + u * dx
	`
	with, err := Compile("cse", src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Compile("nocse", src, Options{NoCSE: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(with.Ops()) >= len(without.Ops()) {
		t.Errorf("CSE did not reduce ops: %d vs %d", len(with.Ops()), len(without.Ops()))
	}
	// Both compute the same function.
	in := map[string]uint64{"u": 20, "x": 1, "y": 2, "dx": 1}
	a, err := with.Eval(in, 16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := without.Eval(in, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range []string{"u1", "y1"} {
		if a[o] != b[o] {
			t.Errorf("%s differs: %d vs %d", o, a[o], b[o])
		}
	}
}

func TestCSECommutativeCanonicalization(t *testing.T) {
	g, err := Compile("comm", "p = a * b + b * a\n", Options{})
	if err != nil {
		t.Fatal(err)
	}
	// a*b and b*a share one multiply under CSE.
	muls := 0
	for _, o := range g.Ops() {
		if o.Kind == dfg.Mul {
			muls++
		}
	}
	if muls != 1 {
		t.Errorf("got %d multiplies, want 1 (commutative CSE)", muls)
	}
}

// The full HAL benchmark statement set compiles and synthesizes end to
// end through scheduling.
func TestCompileDiffEq(t *testing.T) {
	g, err := Compile("hal", `
		x1 = x + dx
		u1 = u - 3 * x * u * dx - 3 * y * dx
		y1 = y + u * dx
		c  = x1 < a
	`, Options{NoCSE: true})
	if err != nil {
		t.Fatal(err)
	}
	steps, err := sched.ListSchedule(g, sched.Limits{dfg.Mul: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Apply(g, steps); err != nil {
		t.Fatal(err)
	}
	vals, err := g.Eval(map[string]uint64{"x": 1, "u": 6, "y": 2, "dx": 1, "a": 9, "k3": 3}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if vals["x1"] != 2 || vals["y1"] != 8 || vals["c"] != 1 {
		t.Errorf("diffeq values wrong: %v %v %v", vals["x1"], vals["y1"], vals["c"])
	}
	if want := uint64(65536 - 18); vals["u1"] != want {
		t.Errorf("u1 = %d, want %d", vals["u1"], want)
	}
	// NoCSE keeps the classic duplicated u*dx: 6 multiplies.
	muls := 0
	for _, o := range g.Ops() {
		if o.Kind == dfg.Mul {
			muls++
		}
	}
	if muls != 6 {
		t.Errorf("got %d multiplies, classic HAL has 6", muls)
	}
}

func TestMultipleOutputsAndChaining(t *testing.T) {
	g, err := Compile("mo", `
		t = a + b
		p = t * c
		q = t - c
	`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	outs := g.Outputs()
	if len(outs) != 2 {
		t.Errorf("outputs = %v, want p and q", outs)
	}
	vals, _ := g.Eval(map[string]uint64{"a": 1, "b": 2, "c": 4}, 8)
	if vals["p"] != 12 || vals["q"] != 255 {
		t.Errorf("p=%d q=%d", vals["p"], vals["q"])
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		"",                      // no statements
		"x + y",                 // missing =
		"1x = a + b",            // bad target
		"x = a + b\nx = a - b",  // double assignment
		"x = a +",               // dangling operator
		"x = (a + b",            // missing paren
		"x = a $ b",             // bad char
		"x = a",                 // no operator
		"x = a + b extra_ident", // hmm: parses as trailing token
	}
	for _, src := range bad {
		if _, err := Compile("bad", src, Options{}); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestLogicalAndComparisonOps(t *testing.T) {
	g, err := Compile("logic", "r = (a & b) | (a ^ b)\ns = a < b\nq = a > b\n", Options{})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := g.Eval(map[string]uint64{"a": 12, "b": 10}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if vals["r"] != (12&10)|(12^10) {
		t.Errorf("r = %d", vals["r"])
	}
	if vals["s"] != 0 || vals["q"] != 1 {
		t.Errorf("s=%d q=%d", vals["s"], vals["q"])
	}
}
