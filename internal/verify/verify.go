// Package verify is the differential-verification layer of the
// reproduction: an independent set of oracles and invariant checks that
// every synthesized plan must pass. The heuristics it guards — the
// PVES/ΔSD register binder with its Case-1/2 overrides, the Lemma-2
// CBILBO detection and the (possibly parallel) BIST branch and bound —
// are exactly the code paths where a subtle bug yields a plausible but
// wrong plan that no golden test notices.
//
// Three layers of defense, in increasing cost:
//
//  1. Invariants — structural validation of a complete allocation:
//     the register binding is a proper coloring of the lifetime
//     conflict graph, every operation executes on a kind-compatible
//     module with interconnect paths for all of its transfers (checked
//     by replaying the control program against register occupancy),
//     every module has a wired BIST embedding, register styles and the
//     plan cost are re-derived from scratch, CBILBO designations agree
//     with both brute-force embedding enumeration and Lemma 2, and the
//     test sessions cover every module exactly once without TPG/SA role
//     conflicts.
//
//  2. Brute-force oracles — exhaustive enumeration of the search spaces
//     the heuristics explore: every combination of per-module BIST
//     embeddings (the optimizer's plan must match the enumerated
//     minimum exactly, and must reproduce identically for any worker
//     count), and every minimum-register binding pushed through the
//     full downstream pipeline (the heuristic binder must never beat
//     the enumerated optimum, which would indicate a broken cost, and
//     must stay within the enumerated cost range).
//
//  3. Functional cross-check — the bound data path is simulated on
//     random input vectors and every primary output compared against
//     direct dfg.Eval, exercising module, register and interconnect
//     bindings end to end.
//
// All re-derivations here are written independently of the packages they
// check (no calls into the binder's sharing machinery, the optimizer's
// incremental role state, or the session scheduler), so a bug on either
// side surfaces as a reported violation instead of cancelling out.
package verify

import (
	"context"
	"fmt"
	"strings"

	"bistpath/internal/area"
	"bistpath/internal/bist"
	"bistpath/internal/datapath"
	"bistpath/internal/dfg"
	"bistpath/internal/modassign"
)

// Options configures a verification run. Zero values select the
// defaults noted on each field.
type Options struct {
	// Model is the area model the plan was optimized under (default:
	// area.Default for the data path's width).
	Model area.Model
	// AllowPadTPG mirrors the synthesis configuration: input pads may
	// act as embedding heads.
	AllowPadTPG bool
	// MinimizeSessions mirrors the synthesis configuration's session
	// tie-break; the parallel-match oracle re-runs the search with it.
	MinimizeSessions bool
	// Vectors is the number of random input vectors for the functional
	// cross-check (default 100; negative disables).
	Vectors int
	// Seed seeds the functional cross-check's vector generator.
	Seed int64
	// Workers lists the search worker counts that must all reproduce
	// the identical plan (default {1, 2, 8}; nil with SkipOracles set
	// disables).
	Workers []int
	// Search, when non-nil, replaces the exact branch and bound in the
	// parallel-match oracle: the plan under test was produced by a
	// different strategy (e.g. the stochastic search), so conformance
	// must re-run that strategy, not the exact one. The function must be
	// deterministic for a fixed worker count — that is exactly the
	// property the oracle checks.
	Search func(ctx context.Context, dp *datapath.Datapath, workers int) (*bist.Plan, error)
	// EmbeddingCap bounds the exhaustive embedding oracle: if the
	// cartesian product of per-module embedding counts exceeds it, the
	// oracle is skipped and reported infeasible (default 4<<20).
	EmbeddingCap int64
	// BindingLimit bounds the exhaustive register-binding oracle: the
	// enumeration of minimum-register bindings stops (and the oracle is
	// reported incomplete) beyond this many partitions (default 20000;
	// negative disables the oracle).
	BindingLimit int
	// SkipOracles runs only the invariants and the functional
	// cross-check — the fast path for large randomized sweeps.
	SkipOracles bool
}

// DefaultOptions returns the standard verification configuration for a
// data path of the given width, mirroring bistpath.DefaultConfig.
func DefaultOptions(width int) Options {
	return Options{
		Model:        area.Default(width),
		AllowPadTPG:  true,
		Vectors:      100,
		Seed:         1,
		Workers:      []int{1, 2, 8},
		EmbeddingCap: 4 << 20,
		BindingLimit: 20000,
	}
}

func (o Options) withDefaults(width int) Options {
	if o.Model.Width == 0 {
		o.Model = area.Default(width)
	}
	if o.Vectors == 0 {
		o.Vectors = 100
	}
	if o.EmbeddingCap == 0 {
		o.EmbeddingCap = 4 << 20
	}
	if o.BindingLimit == 0 {
		o.BindingLimit = 20000
	}
	return o
}

// Report is the outcome of one verification run. Violations is empty iff
// every executed check passed; the remaining fields record how much
// evidence each layer gathered.
type Report struct {
	Design     string   `json:"design"`
	Violations []string `json:"violations"`

	// Functional cross-check.
	Vectors int `json:"vectors"`

	// Embedding oracle.
	PlanCost        int   `json:"plan_cost"`
	PlanExact       bool  `json:"plan_exact"`
	EmbeddingCombos int64 `json:"embedding_combos"`
	EmbeddingMin    int   `json:"embedding_min"`
	EmbeddingRan    bool  `json:"embedding_oracle_ran"`

	// Parallel conformance.
	WorkersChecked []int `json:"workers_checked,omitempty"`

	// Register-binding oracle.
	BindingRan       bool `json:"binding_oracle_ran"`
	BindingRegisters int  `json:"binding_registers,omitempty"`
	BindingCount     int  `json:"binding_count"`
	BindingFeasible  int  `json:"binding_feasible"`
	BindingBest      int  `json:"binding_best"`
	BindingWorst     int  `json:"binding_worst"`
	BindingComplete  bool `json:"binding_complete"`
}

// OK reports whether every executed check passed.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Err returns nil when the report is clean, or an error summarizing the
// violations.
func (r *Report) Err() error {
	if r.OK() {
		return nil
	}
	return fmt.Errorf("verify %s: %d violation(s):\n  %s",
		r.Design, len(r.Violations), strings.Join(r.Violations, "\n  "))
}

// Summary renders the report as an indented human-readable block.
func (r *Report) Summary() string {
	var sb strings.Builder
	status := "PASS"
	if !r.OK() {
		status = "FAIL"
	}
	fmt.Fprintf(&sb, "verify %s: %s\n", r.Design, status)
	if r.Vectors > 0 {
		fmt.Fprintf(&sb, "  functional: %d vectors match dfg.Eval\n", r.Vectors)
	}
	if r.EmbeddingRan {
		fmt.Fprintf(&sb, "  embedding oracle: plan cost %d vs exhaustive minimum %d (%d combinations)\n",
			r.PlanCost, r.EmbeddingMin, r.EmbeddingCombos)
	} else if r.EmbeddingCombos > 0 {
		fmt.Fprintf(&sb, "  embedding oracle: skipped (%d combinations exceed cap)\n", r.EmbeddingCombos)
	}
	if len(r.WorkersChecked) > 0 {
		ws := make([]string, len(r.WorkersChecked))
		for i, w := range r.WorkersChecked {
			ws[i] = fmt.Sprint(w)
		}
		fmt.Fprintf(&sb, "  parallel search: workers {%s} produce identical plans\n", strings.Join(ws, ","))
	}
	if r.BindingRan {
		complete := ""
		if !r.BindingComplete {
			complete = ", enumeration truncated"
		}
		fmt.Fprintf(&sb, "  binding oracle: %d/%d %d-register bindings feasible; best %d <= plan %d <= worst %d%s\n",
			r.BindingFeasible, r.BindingCount, r.BindingRegisters, r.BindingBest, r.PlanCost, r.BindingWorst, complete)
	}
	for _, v := range r.Violations {
		fmt.Fprintf(&sb, "  VIOLATION: %s\n", v)
	}
	return sb.String()
}

// Run executes every verification layer enabled by opts against a
// completed allocation. mb may be nil when no module binding is
// available (the Lemma-2 cross-check and the binding oracle are then
// skipped). The returned error reports infrastructure failures only
// (context cancellation, simulator setup); verification failures are
// collected in Report.Violations.
func Run(ctx context.Context, g *dfg.Graph, mb *modassign.Binding, dp *datapath.Datapath, plan *bist.Plan, opts Options) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts = opts.withDefaults(dp.Width)
	rep := &Report{Design: dp.Name, PlanCost: plan.ExtraArea, PlanExact: plan.Exact}

	rep.Violations = append(rep.Violations, Invariants(g, mb, dp, plan, opts.Model, opts.AllowPadTPG)...)

	if opts.Vectors > 0 {
		n, err := Functional(dp, opts.Vectors, opts.Seed)
		rep.Vectors = n
		if err != nil {
			rep.Violations = append(rep.Violations, fmt.Sprintf("functional: %v", err))
		}
	}
	if err := ctx.Err(); err != nil {
		return rep, err
	}
	if opts.SkipOracles {
		return rep, nil
	}

	emb := EmbeddingOracle(dp, opts.Model, opts.AllowPadTPG, opts.EmbeddingCap)
	rep.EmbeddingCombos = emb.Combos
	rep.EmbeddingRan = emb.Feasible
	if emb.Feasible {
		rep.EmbeddingMin = emb.MinCost
		switch {
		case plan.Exact && plan.ExtraArea != emb.MinCost:
			rep.Violations = append(rep.Violations, fmt.Sprintf(
				"embedding oracle: exact plan cost %d != exhaustive minimum %d over %d combinations",
				plan.ExtraArea, emb.MinCost, emb.Combos))
		case !plan.Exact && plan.ExtraArea < emb.MinCost:
			rep.Violations = append(rep.Violations, fmt.Sprintf(
				"embedding oracle: inexact plan cost %d beats exhaustive minimum %d (impossible cost)",
				plan.ExtraArea, emb.MinCost))
		}
	}
	if err := ctx.Err(); err != nil {
		return rep, err
	}

	if len(opts.Workers) > 0 {
		vs, err := ParallelMatch(ctx, dp, opts, plan)
		if err != nil {
			return rep, err
		}
		rep.Violations = append(rep.Violations, vs...)
		rep.WorkersChecked = append([]int(nil), opts.Workers...)
	}

	if opts.BindingLimit >= 0 && mb != nil {
		bo, err := BindingOracle(ctx, g, mb, dp, opts)
		if err != nil {
			return rep, err
		}
		if bo.Ran {
			rep.BindingRan = true
			rep.BindingRegisters = bo.Registers
			rep.BindingCount = bo.Bindings
			rep.BindingFeasible = bo.Feasible
			rep.BindingBest = bo.Best
			rep.BindingWorst = bo.Worst
			rep.BindingComplete = bo.Complete
			// The oracle enumerated every binding with the plan's own
			// register count (minimal or not), so its cost must lie in
			// the enumerated range; beating the complete optimum means
			// a broken cost computation somewhere.
			if bo.Complete && bo.Feasible > 0 {
				if plan.ExtraArea < bo.Best {
					rep.Violations = append(rep.Violations, fmt.Sprintf(
						"binding oracle: plan cost %d beats the exhaustive optimum %d over %d bindings",
						plan.ExtraArea, bo.Best, bo.Feasible))
				}
				// The upper bound only binds exact plans: the oracle costs
				// each binding with the exact search, so an inexact
				// (stochastic or greedy-fallback) plan may legitimately
				// exceed the worst enumerated exact cost.
				if plan.Exact && plan.ExtraArea > bo.Worst {
					rep.Violations = append(rep.Violations, fmt.Sprintf(
						"binding oracle: plan cost %d exceeds the worst enumerated binding %d",
						plan.ExtraArea, bo.Worst))
				}
			}
		}
	}
	return rep, nil
}
