package verify

import (
	"strings"
	"testing"

	"bistpath/internal/area"
	"bistpath/internal/benchdata"
	"bistpath/internal/bist"
	"bistpath/internal/datapath"
	"bistpath/internal/dfg"
	"bistpath/internal/modassign"
)

// The invariant checker is itself code, so it gets its own adversarial
// tests: each mutation below corrupts one aspect of a known-good
// allocation, and the checker must flag it with a violation of the
// expected family. A checker that stays silent on any of these would
// silently pass broken plans forever.

func freshEx1(t *testing.T, traditional bool) (*dfg.Graph, *modassign.Binding, *datapath.Datapath, *bist.Plan) {
	t.Helper()
	b := benchdata.ByName("ex1")
	if b == nil {
		t.Fatal("ex1 missing")
	}
	mb := benchBinding(t, b)
	dp, plan := mustPipeline(t, b.Graph, mb, traditional)
	return b.Graph, mb, dp, plan
}

func assertCaught(t *testing.T, name, family string, vs []string) {
	t.Helper()
	if len(vs) == 0 {
		t.Fatalf("%s: mutation not caught (no violations)", name)
	}
	for _, v := range vs {
		if strings.HasPrefix(v, family+":") {
			return
		}
	}
	t.Errorf("%s: no %q violation among: %v", name, family, vs)
}

func check(g *dfg.Graph, mb *modassign.Binding, dp *datapath.Datapath, plan *bist.Plan) []string {
	return Invariants(g, mb, dp, plan, area.Default(8), true)
}

// Moving a variable into a register holding a lifetime-conflicting
// variable must break the coloring invariant.
func TestMutationConflictingBinding(t *testing.T) {
	g, mb, dp, plan := freshEx1(t, false)
	conf, err := g.Conflicts()
	if err != nil {
		t.Fatal(err)
	}
	done := false
	for _, r := range dp.Regs {
		for _, other := range dp.Regs {
			if done || r == other {
				continue
			}
			for _, u := range r.Vars {
				for _, w := range other.Vars {
					if conf[u][w] {
						// Move u into other's register alongside w.
						other.Vars = append(other.Vars, u)
						done = true
					}
					if done {
						break
					}
				}
				if done {
					break
				}
			}
		}
	}
	if !done {
		t.Fatal("no conflicting pair found to mutate")
	}
	assertCaught(t, "conflicting binding", "coloring", check(g, mb, dp, plan))
}

// Deleting a variable's binding entirely must be caught as an
// uncovered variable and a dangling control-program write.
func TestMutationUnboundVariable(t *testing.T) {
	g, mb, dp, plan := freshEx1(t, false)
	r := dp.Regs[0]
	r.Vars = r.Vars[1:]
	assertCaught(t, "unbound variable", "coloring", check(g, mb, dp, plan))
}

// Removing a wired port source that the control program uses must be
// caught as a missing interconnect path.
func TestMutationDroppedMuxPath(t *testing.T) {
	g, mb, dp, plan := freshEx1(t, false)
	mo := dp.Steps[1].Ops[0]
	m := dp.Module(mo.Module)
	var kept []string
	for _, s := range m.Left {
		if s != mo.LeftSrc {
			kept = append(kept, s)
		}
	}
	m.Left = kept
	assertCaught(t, "dropped mux path", "interconnect", check(g, mb, dp, plan))
}

// Rebinding an operation to a module that cannot execute its kind must
// be caught by the control replay.
func TestMutationIncompatibleModule(t *testing.T) {
	g, mb, dp, plan := freshEx1(t, false)
	mutated := false
	for si := range dp.Steps {
		for oi := range dp.Steps[si].Ops {
			mo := &dp.Steps[si].Ops[oi]
			for _, m := range dp.Modules {
				if m.Name != mo.Module && !kindIn(m.Kinds, mo.Kind) {
					mo.Module = m.Name
					mutated = true
					break
				}
			}
			if mutated {
				break
			}
		}
		if mutated {
			break
		}
	}
	if !mutated {
		t.Fatal("no kind-incompatible module available")
	}
	assertCaught(t, "incompatible module", "control", check(g, mb, dp, plan))
}

// Downgrading a CBILBO to a plain BILBO must be caught: the register
// still generates and compacts for the same module. The traditional
// ex1 binding is the paper's example of a forced CBILBO.
func TestMutationClearedCBILBO(t *testing.T) {
	g, mb, dp, plan := freshEx1(t, true)
	cleared := false
	for r, s := range plan.Styles {
		if s == area.CBILBO {
			plan.Styles[r] = area.BILBO
			cleared = true
			break
		}
	}
	if !cleared {
		t.Fatal("traditional ex1 plan has no CBILBO to clear")
	}
	assertCaught(t, "cleared CBILBO", "styles", check(g, mb, dp, plan))
}

// An understated plan cost must be caught by the independent recompute.
func TestMutationCostDrift(t *testing.T) {
	g, mb, dp, plan := freshEx1(t, false)
	plan.ExtraArea--
	assertCaught(t, "cost drift", "styles", check(g, mb, dp, plan))
}

// Pointing an embedding tail at a register the module does not drive
// must be caught as an unwired embedding.
func TestMutationUnwiredEmbeddingTail(t *testing.T) {
	g, mb, dp, plan := freshEx1(t, false)
	mutated := false
	for name, e := range plan.Embeddings {
		m := dp.Module(name)
		for _, r := range dp.Regs {
			if !strIn(m.Dests, r.Name) {
				e.Tail = r.Name
				plan.Embeddings[name] = e
				mutated = true
				break
			}
		}
		if mutated {
			break
		}
	}
	if !mutated {
		t.Skip("every register is a destination of every module")
	}
	assertCaught(t, "unwired tail", "embedding", check(g, mb, dp, plan))
}

// Dropping a module from the session schedule must be caught.
func TestMutationUnscheduledModule(t *testing.T) {
	g, mb, dp, plan := freshEx1(t, false)
	if len(plan.Sessions) == 0 || len(plan.Sessions[0]) == 0 {
		t.Fatal("no sessions to mutate")
	}
	plan.Sessions[0] = plan.Sessions[0][1:]
	assertCaught(t, "unscheduled module", "sessions", check(g, mb, dp, plan))
}

// Scheduling a module twice must be caught.
func TestMutationDoubleScheduledModule(t *testing.T) {
	g, mb, dp, plan := freshEx1(t, false)
	m := plan.Sessions[0][0]
	plan.Sessions = append(plan.Sessions, []string{m})
	assertCaught(t, "double-scheduled module", "sessions", check(g, mb, dp, plan))
}

// Forcing two modules that share a signature register into one session
// must be caught by the independent conflict rule.
func TestMutationConflictingSession(t *testing.T) {
	g, mb, dp, plan := freshEx1(t, true)
	// Re-point one module's tail onto another's (keeping it wired if
	// possible), then merge their sessions: a shared tail is always a
	// session conflict.
	names := make([]string, 0, len(plan.Embeddings))
	for n := range plan.Embeddings {
		names = append(names, n)
	}
	if len(names) < 2 {
		t.Skip("need two modules")
	}
	mutated := false
	for _, a := range names {
		for _, b := range names {
			if a == b {
				continue
			}
			ea, eb := plan.Embeddings[a], plan.Embeddings[b]
			if strIn(dp.Module(a).Dests, eb.Tail) {
				ea.Tail = eb.Tail
				plan.Embeddings[a] = ea
				plan.Sessions = [][]string{names}
				mutated = true
				break
			}
		}
		if mutated {
			break
		}
	}
	if !mutated {
		t.Skip("no shared destination register available")
	}
	assertCaught(t, "conflicting session", "sessions", check(g, mb, dp, plan))
}

// A corrupted micro-op operand source (reading a register that holds a
// different variable) must be caught by the occupancy replay.
func TestMutationWrongOperandSource(t *testing.T) {
	g, mb, dp, plan := freshEx1(t, false)
	mutated := false
	for si := range dp.Steps {
		for oi := range dp.Steps[si].Ops {
			mo := &dp.Steps[si].Ops[oi]
			for _, r := range dp.Regs {
				if r.Name != mo.LeftSrc && r.Name != mo.RightSrc {
					mo.LeftSrc = r.Name
					mutated = true
					break
				}
			}
			if mutated {
				break
			}
		}
		if mutated {
			break
		}
	}
	if !mutated {
		t.Fatal("no alternative register to corrupt a source with")
	}
	vs := check(g, mb, dp, plan)
	if len(vs) == 0 {
		t.Fatal("wrong operand source not caught")
	}
}
