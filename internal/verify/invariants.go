package verify

import (
	"fmt"

	"bistpath/internal/area"
	"bistpath/internal/bist"
	"bistpath/internal/datapath"
	"bistpath/internal/dfg"
	"bistpath/internal/interconnect"
	"bistpath/internal/modassign"
	"bistpath/internal/regassign"
)

// Invariants structurally validates a complete allocation and returns
// one violation string per broken property (empty = clean). Each string
// is prefixed with the property family it belongs to: "coloring:",
// "control:", "interconnect:", "embedding:", "styles:", "lemma2:" or
// "sessions:". mb may be nil; the module-binding agreement and Lemma-2
// checks are then skipped.
//
// Every property is re-derived here from the graph and the netlist
// alone — register occupancy is replayed step by step, styles and costs
// are recomputed from raw embedding duties, forced CBILBOs are
// re-enumerated — so agreement with the plan is evidence, not tautology.
func Invariants(g *dfg.Graph, mb *modassign.Binding, dp *datapath.Datapath, plan *bist.Plan, model area.Model, allowPads bool) []string {
	var vs []string
	vs = append(vs, checkColoring(g, dp)...)
	vs = append(vs, checkControl(g, mb, dp)...)
	vs = append(vs, checkInterconnect(dp)...)
	vs = append(vs, checkEmbeddings(dp, plan, allowPads)...)
	styles, sv := checkStyles(dp, plan, model)
	vs = append(vs, sv...)
	vs = append(vs, checkLemma2(g, mb, dp, plan, allowPads)...)
	vs = append(vs, checkSessions(dp, plan, styles)...)
	return vs
}

// checkColoring verifies the register binding is a partition of the
// graph's allocatable variables into lifetime-independent sets — i.e. a
// proper coloring of the conflict graph.
func checkColoring(g *dfg.Graph, dp *datapath.Datapath) []string {
	var vs []string
	conf, err := g.Conflicts()
	if err != nil {
		return []string{fmt.Sprintf("coloring: conflicts unavailable: %v", err)}
	}
	holder := make(map[string]string)
	for _, r := range dp.Regs {
		for i, u := range r.Vars {
			if g.Var(u) == nil {
				vs = append(vs, fmt.Sprintf("coloring: register %s holds unknown variable %q", r.Name, u))
				continue
			}
			if g.Var(u).IsPort {
				vs = append(vs, fmt.Sprintf("coloring: port-fed input %q must not be register-bound (register %s)", u, r.Name))
			}
			if prev, dup := holder[u]; dup {
				vs = append(vs, fmt.Sprintf("coloring: variable %q bound to both %s and %s", u, prev, r.Name))
			}
			holder[u] = r.Name
			for _, w := range r.Vars[i+1:] {
				if conf[u][w] {
					vs = append(vs, fmt.Sprintf("coloring: register %s holds conflicting variables %q and %q (overlapping lifetimes)", r.Name, u, w))
				}
			}
		}
	}
	for _, v := range g.AllocVars() {
		if _, ok := holder[v]; !ok {
			vs = append(vs, fmt.Sprintf("coloring: variable %q bound to no register", v))
		}
	}
	return vs
}

// commutative reports whether operand order is irrelevant for the kind,
// so the interconnect binder may legally swap the port assignment.
func commutative(k dfg.Kind) bool {
	switch k {
	case dfg.Add, dfg.Mul, dfg.And, dfg.Or, dfg.Xor:
		return true
	}
	return false
}

// checkControl replays the control program against simulated register
// occupancy: every DFG operation must execute exactly once at its
// scheduled step on a kind-compatible (and, when mb is given,
// binding-designated) module, reading each operand from the location
// that actually holds it at that step and latching the result into a
// register wired to the module output. Input loads must arrive exactly
// when the variable's lifetime begins.
func checkControl(g *dfg.Graph, mb *modassign.Binding, dp *datapath.Datapath) []string {
	var vs []string
	lts, err := g.Lifetimes()
	if err != nil {
		return []string{fmt.Sprintf("control: lifetimes unavailable: %v", err)}
	}
	// occupant[reg] = variable currently latched in reg.
	occupant := make(map[string]string)
	locate := func(varName string) (string, bool) {
		v := g.Var(varName)
		if v == nil {
			return "", false
		}
		if v.IsPort {
			return interconnect.PadSource + varName, true
		}
		for _, r := range dp.Regs {
			if occupant[r.Name] == varName {
				return r.Name, true
			}
		}
		return "", false
	}
	seen := make(map[string]int)
	for _, st := range dp.Steps {
		written := make(map[string]string) // reg -> writer description
		for _, mo := range st.Ops {
			op := g.Op(mo.Op)
			if op == nil {
				vs = append(vs, fmt.Sprintf("control: step %d executes unknown op %q", st.N, mo.Op))
				continue
			}
			seen[mo.Op]++
			if op.Step != st.N {
				vs = append(vs, fmt.Sprintf("control: op %s scheduled at step %d, DFG says step %d", mo.Op, st.N, op.Step))
			}
			if mo.Kind != op.Kind {
				vs = append(vs, fmt.Sprintf("control: op %s executes kind %q, DFG says %q", mo.Op, mo.Kind, op.Kind))
			}
			m := dp.Module(mo.Module)
			if m == nil {
				vs = append(vs, fmt.Sprintf("control: op %s runs on unknown module %q", mo.Op, mo.Module))
				continue
			}
			if !kindIn(m.Kinds, op.Kind) {
				vs = append(vs, fmt.Sprintf("control: op %s (kind %q) bound to module %s which executes only %v", mo.Op, op.Kind, m.Name, m.Kinds))
			}
			if mb != nil {
				if want := mb.ModuleOf(mo.Op); want == nil || want.Name != mo.Module {
					vs = append(vs, fmt.Sprintf("control: op %s runs on %s, module binding says %v", mo.Op, mo.Module, moduleName(want)))
				}
			}
			// Operand residency and port assignment.
			locs := make([]string, len(op.Args))
			ok := true
			for i, a := range op.Args {
				loc, found := locate(a)
				if !found {
					vs = append(vs, fmt.Sprintf("control: op %s operand %q not resident in any register or pad at step %d", mo.Op, a, st.N))
					ok = false
				}
				locs[i] = loc
			}
			if ok {
				switch {
				case !op.Binary():
					if mo.LeftSrc != locs[0] || mo.RightSrc != "" {
						vs = append(vs, fmt.Sprintf("control: op %s reads %q from %s, value resides in %s", mo.Op, op.Args[0], mo.LeftSrc, locs[0]))
					}
				case mo.LeftSrc == locs[0] && mo.RightSrc == locs[1]:
				case commutative(op.Kind) && mo.LeftSrc == locs[1] && mo.RightSrc == locs[0]:
				default:
					vs = append(vs, fmt.Sprintf("control: op %s reads (%s,%s), operands %v reside in (%s,%s)",
						mo.Op, mo.LeftSrc, mo.RightSrc, op.Args, locs[0], locs[1]))
				}
			}
			// Wiring of the transfer paths actually used.
			if !strIn(m.Left, mo.LeftSrc) {
				vs = append(vs, fmt.Sprintf("interconnect: op %s needs path %s -> %s.L, not wired", mo.Op, mo.LeftSrc, m.Name))
			}
			if mo.RightSrc != "" && !strIn(m.Right, mo.RightSrc) {
				vs = append(vs, fmt.Sprintf("interconnect: op %s needs path %s -> %s.R, not wired", mo.Op, mo.RightSrc, m.Name))
			}
			if !strIn(m.Dests, mo.DestReg) {
				vs = append(vs, fmt.Sprintf("interconnect: op %s needs path %s -> %s, not wired", mo.Op, m.Name, mo.DestReg))
			}
			// Destination register must be the one bound to the result.
			dr := dp.Register(mo.DestReg)
			switch {
			case dr == nil:
				vs = append(vs, fmt.Sprintf("control: op %s latches into unknown register %q", mo.Op, mo.DestReg))
			case !strIn(dr.Vars, op.Result):
				vs = append(vs, fmt.Sprintf("control: op %s latches %q into %s, which is not bound to it", mo.Op, op.Result, mo.DestReg))
			default:
				if prev, clash := written[mo.DestReg]; clash {
					vs = append(vs, fmt.Sprintf("control: step %d writes register %s twice (%s, %s)", st.N, mo.DestReg, prev, mo.Op))
				}
				written[mo.DestReg] = mo.Op
			}
		}
		for _, ld := range st.Loads {
			v := g.Var(ld.Var)
			switch {
			case v == nil || !v.IsInput || v.IsPort:
				vs = append(vs, fmt.Sprintf("control: load of %q, which is not a register-bound primary input", ld.Var))
				continue
			case ld.Pad != interconnect.PadSource+ld.Var:
				vs = append(vs, fmt.Sprintf("control: load of %q from wrong pad %q", ld.Var, ld.Pad))
			case lts[ld.Var].Born != st.N:
				vs = append(vs, fmt.Sprintf("control: input %q loaded at step %d, lifetime begins at step %d", ld.Var, st.N, lts[ld.Var].Born))
			}
			dr := dp.Register(ld.Reg)
			switch {
			case dr == nil:
				vs = append(vs, fmt.Sprintf("control: load of %q into unknown register %q", ld.Var, ld.Reg))
				continue
			case !strIn(dr.Vars, ld.Var):
				vs = append(vs, fmt.Sprintf("control: load of %q into %s, which is not bound to it", ld.Var, ld.Reg))
			}
			if prev, clash := written[ld.Reg]; clash {
				vs = append(vs, fmt.Sprintf("control: step %d writes register %s twice (%s, load %s)", st.N, ld.Reg, prev, ld.Var))
			}
			written[ld.Reg] = "load:" + ld.Var
		}
		// Clock edge.
		for _, mo := range st.Ops {
			if op := g.Op(mo.Op); op != nil && dp.Register(mo.DestReg) != nil {
				occupant[mo.DestReg] = op.Result
			}
		}
		for _, ld := range st.Loads {
			if dp.Register(ld.Reg) != nil {
				occupant[ld.Reg] = ld.Var
			}
		}
	}
	for _, op := range g.Ops() {
		switch n := seen[op.Name]; {
		case n == 0:
			vs = append(vs, fmt.Sprintf("control: op %s missing from control program", op.Name))
		case n > 1:
			vs = append(vs, fmt.Sprintf("control: op %s executed %d times", op.Name, n))
		}
	}
	return vs
}

// checkInterconnect verifies the declared source lists agree with the
// control program: every writer actually used by a micro-op or load is
// listed among the destination register's sources, and every listed
// source is a known module or pad.
func checkInterconnect(dp *datapath.Datapath) []string {
	var vs []string
	used := make(map[string]map[string]bool) // reg -> sources that actually write it
	note := func(reg, src string) {
		if used[reg] == nil {
			used[reg] = make(map[string]bool)
		}
		used[reg][src] = true
	}
	for _, st := range dp.Steps {
		for _, mo := range st.Ops {
			note(mo.DestReg, mo.Module)
		}
		for _, ld := range st.Loads {
			note(ld.Reg, ld.Pad)
		}
	}
	for _, r := range dp.Regs {
		for src := range used[r.Name] {
			if !strIn(r.Sources, src) {
				vs = append(vs, fmt.Sprintf("interconnect: register %s is written by %s, missing from its source list", r.Name, src))
			}
		}
		for _, src := range r.Sources {
			if !interconnect.IsPad(src) && dp.Module(src) == nil {
				vs = append(vs, fmt.Sprintf("interconnect: register %s lists unknown source %q", r.Name, src))
			}
		}
	}
	return vs
}

// moduleDiagonal re-derives (from the control program alone) whether
// every instance of the module reads one source on both ports.
func moduleDiagonal(dp *datapath.Datapath, module string) bool {
	found := false
	for _, st := range dp.Steps {
		for _, mo := range st.Ops {
			if mo.Module != module {
				continue
			}
			if mo.RightSrc == "" || mo.LeftSrc != mo.RightSrc {
				return false
			}
			found = true
		}
	}
	return found
}

// checkEmbeddings verifies the plan holds exactly one wired embedding
// per module: heads on wired port sources (registers, or pads only when
// the methodology allows), tail among the module's destination
// registers, and distinct heads unless the module is diagonal.
func checkEmbeddings(dp *datapath.Datapath, plan *bist.Plan, allowPads bool) []string {
	var vs []string
	for name := range plan.Embeddings {
		if dp.Module(name) == nil {
			vs = append(vs, fmt.Sprintf("embedding: plan embeds unknown module %q", name))
		}
	}
	for _, m := range dp.Modules {
		e, ok := plan.Embeddings[m.Name]
		if !ok {
			vs = append(vs, fmt.Sprintf("embedding: module %s has no embedding in plan", m.Name))
			continue
		}
		checkHead := func(port string, h string, wired []string) {
			switch {
			case h == "":
				vs = append(vs, fmt.Sprintf("embedding: %s has empty %s head", m.Name, port))
			case !strIn(wired, h):
				vs = append(vs, fmt.Sprintf("embedding: %s head %s not wired to port %s", m.Name, h, port))
			case interconnect.IsPad(h) && !allowPads:
				vs = append(vs, fmt.Sprintf("embedding: %s uses pad head %s with pad TPGs disallowed", m.Name, h))
			}
		}
		checkHead("L", e.HeadL, m.Left)
		if len(m.Right) == 0 {
			if e.HeadR != "" {
				vs = append(vs, fmt.Sprintf("embedding: unary module %s has a right head %s", m.Name, e.HeadR))
			}
		} else {
			checkHead("R", e.HeadR, m.Right)
			if e.HeadL != "" && e.HeadL == e.HeadR && !moduleDiagonal(dp, m.Name) {
				vs = append(vs, fmt.Sprintf("embedding: %s drives both ports from %s but is not diagonal (correlated patterns cannot test it)", m.Name, e.HeadL))
			}
		}
		switch {
		case e.Tail == "":
			vs = append(vs, fmt.Sprintf("embedding: %s has no tail", m.Name))
		case interconnect.IsPad(e.Tail):
			vs = append(vs, fmt.Sprintf("embedding: %s tail %s is a pad (signatures need a register)", m.Name, e.Tail))
		case !strIn(m.Dests, e.Tail):
			vs = append(vs, fmt.Sprintf("embedding: %s tail %s is not a destination register of the module", m.Name, e.Tail))
		}
	}
	return vs
}

// deriveStyles recomputes register styles from raw embedding duties: a
// register generating patterns and compacting responses for the same
// module is a CBILBO; for different modules, a BILBO; one duty alone
// gives TPG or SA.
func deriveStyles(plan *bist.Plan) map[string]area.Style {
	type duty struct{ tpg, sa, cb bool }
	duties := make(map[string]duty)
	for _, e := range plan.Embeddings {
		for _, h := range []string{e.HeadL, e.HeadR} {
			if h == "" || interconnect.IsPad(h) {
				continue
			}
			d := duties[h]
			d.tpg = true
			if h == e.Tail {
				d.cb = true
			}
			duties[h] = d
		}
		if e.Tail != "" && !interconnect.IsPad(e.Tail) {
			d := duties[e.Tail]
			d.sa = true
			duties[e.Tail] = d
		}
	}
	out := make(map[string]area.Style, len(duties))
	for r, d := range duties {
		switch {
		case d.cb:
			out[r] = area.CBILBO
		case d.tpg && d.sa:
			out[r] = area.BILBO
		case d.tpg:
			out[r] = area.TPG
		default:
			out[r] = area.SA
		}
	}
	return out
}

// checkStyles re-derives every register style and the total upgrade
// cost, and compares both against the plan. The independently derived
// style map is returned for the session check.
func checkStyles(dp *datapath.Datapath, plan *bist.Plan, model area.Model) (map[string]area.Style, []string) {
	var vs []string
	want := deriveStyles(plan)
	for r, s := range want {
		if dp.Register(r) == nil {
			vs = append(vs, fmt.Sprintf("styles: embedding duty on unknown register %q", r))
		}
		if got, ok := plan.Styles[r]; !ok || got != s {
			vs = append(vs, fmt.Sprintf("styles: register %s styled %v, duties require %v", r, plan.Styles[r], s))
		}
	}
	for r, s := range plan.Styles {
		if _, ok := want[r]; !ok && s != area.Normal {
			vs = append(vs, fmt.Sprintf("styles: register %s styled %v with no embedding duty", r, s))
		}
	}
	cost := 0
	for _, s := range want {
		cost += model.StyleExtra(s)
	}
	if cost != plan.ExtraArea {
		vs = append(vs, fmt.Sprintf("styles: plan cost %d, recomputed upgrade area %d", plan.ExtraArea, cost))
	}
	return want, vs
}

// checkLemma2 compares three independent views of "this module cannot
// avoid a CBILBO": brute-force enumeration over the netlist's
// embeddings, the chosen embedding, and — where the paper's operator
// model applies — the assignment-level Lemma 2 conditions.
func checkLemma2(g *dfg.Graph, mb *modassign.Binding, dp *datapath.Datapath, plan *bist.Plan, allowPads bool) []string {
	var vs []string
	var lemma map[string]bool
	if mb != nil {
		sets := make([][]string, len(dp.Regs))
		for i, r := range dp.Regs {
			sets[i] = r.Vars
		}
		lemma = make(map[string]bool)
		for _, f := range regassign.ForcedCBILBOs(g, mb, sets) {
			lemma[f.Module] = true
		}
	}
	for _, m := range dp.Modules {
		embs := moduleEmbeddings(dp, m, allowPads)
		if len(embs) == 0 {
			vs = append(vs, fmt.Sprintf("embedding: module %s has no legal embedding at all", m.Name))
			continue
		}
		forcedEnum := true
		for _, e := range embs {
			if !e.NeedsCBILBO() {
				forcedEnum = false
				break
			}
		}
		if forcedEnum {
			if e, ok := plan.Embeddings[m.Name]; ok && !e.NeedsCBILBO() {
				vs = append(vs, fmt.Sprintf("lemma2: every embedding of %s needs a CBILBO, yet the chosen one does not", m.Name))
			}
		}
		// The assignment-level characterization is exact only for the
		// paper's operator model: a single binary instance with distinct
		// register-resident operands. Pads and x-op-x instances open
		// escape hatches Lemma 2 does not see, and on multi-instance
		// modules the other instances' mux inputs can un-force a CBILBO
		// that the register-level conditions predict (each instance may
		// present the case-(i) register on a different port, leaving a
		// head pair that avoids the tail entirely).
		if mb != nil && lemma2Applies(g, mb, m.Name) {
			if forcedEnum != lemma[m.Name] {
				vs = append(vs, fmt.Sprintf("lemma2: module %s enumeration-forced=%v but Lemma 2 predicts %v", m.Name, forcedEnum, lemma[m.Name]))
			}
		}
	}
	return vs
}

// lemma2Applies reports whether the module fits the operator model
// Lemma 2 is exact for: exactly one instance, binary, with distinct
// register-resident operands. With one instance the port muxes are
// fully determined by the assignment (left = the operand registers,
// dests = the result register), so the register-level conditions and
// netlist-level enumeration must agree; with more instances the
// interconnect gains inputs Lemma 2 cannot see.
func lemma2Applies(g *dfg.Graph, mb *modassign.Binding, module string) bool {
	m := mb.Module(module)
	if m == nil || len(m.Ops) != 1 {
		return false
	}
	op := g.Op(m.Ops[0])
	if op == nil || !op.Binary() || op.Args[0] == op.Args[1] {
		return false
	}
	for _, a := range op.Args {
		if v := g.Var(a); v == nil || v.IsPort {
			return false
		}
	}
	return true
}

// checkSessions verifies the test schedule: every module tested exactly
// once, and no session pairs two modules whose test resources clash —
// a shared signature register, or a register generating for one module
// while compacting for another without being a CBILBO. The conflict
// rule is evaluated against the independently derived styles.
func checkSessions(dp *datapath.Datapath, plan *bist.Plan, styles map[string]area.Style) []string {
	var vs []string
	seen := make(map[string]int)
	for _, sess := range plan.Sessions {
		for _, m := range sess {
			seen[m]++
			if _, ok := plan.Embeddings[m]; !ok {
				vs = append(vs, fmt.Sprintf("sessions: scheduled module %q has no embedding", m))
			}
		}
	}
	for _, m := range dp.Modules {
		switch n := seen[m.Name]; {
		case n == 0:
			vs = append(vs, fmt.Sprintf("sessions: module %s never tested", m.Name))
		case n > 1:
			vs = append(vs, fmt.Sprintf("sessions: module %s tested in %d sessions", m.Name, n))
		}
	}
	conflict := func(a, b string) (bool, string) {
		ea, eb := plan.Embeddings[a], plan.Embeddings[b]
		if ea.Tail == eb.Tail && ea.Tail != "" {
			return true, fmt.Sprintf("share signature register %s", ea.Tail)
		}
		crossed := func(x, y bist.Embedding, xn, yn string) (bool, string) {
			for _, h := range []string{x.HeadL, x.HeadR} {
				if h == "" || interconnect.IsPad(h) {
					continue
				}
				if h == y.Tail && styles[h] != area.CBILBO {
					return true, fmt.Sprintf("register %s generates for %s and compacts for %s without being a CBILBO", h, xn, yn)
				}
			}
			return false, ""
		}
		if bad, why := crossed(ea, eb, a, b); bad {
			return true, why
		}
		return crossed(eb, ea, b, a)
	}
	for si, sess := range plan.Sessions {
		for i, a := range sess {
			for _, b := range sess[i+1:] {
				if bad, why := conflict(a, b); bad {
					vs = append(vs, fmt.Sprintf("sessions: session %d tests %s and %s together but they %s", si+1, a, b, why))
				}
			}
		}
	}
	return vs
}

func kindIn(ks []dfg.Kind, k dfg.Kind) bool {
	for _, x := range ks {
		if x == k {
			return true
		}
	}
	return false
}

func strIn(list []string, x string) bool {
	for _, s := range list {
		if s == x {
			return true
		}
	}
	return false
}

func moduleName(m *modassign.Module) string {
	if m == nil {
		return "<none>"
	}
	return m.Name
}
