package verify

import (
	"context"
	"strings"
	"testing"

	"bistpath/internal/benchdata"
	"bistpath/internal/bist"
	"bistpath/internal/datapath"
	"bistpath/internal/dfg"
	"bistpath/internal/interconnect"
	"bistpath/internal/modassign"
	"bistpath/internal/regassign"
)

// pipeline runs the full allocation flow on a graph + module binding.
// The verify package cannot import the root bistpath package (the root
// imports verify), so tests drive the internal stages directly — the
// same sequence Synthesize runs.
func pipeline(g *dfg.Graph, mb *modassign.Binding, traditional bool, width int) (*datapath.Datapath, *bist.Plan, error) {
	var rb *regassign.Binding
	var err error
	if traditional {
		rb, err = regassign.Traditional(g)
	} else {
		rb, err = regassign.Bind(g, mb, regassign.DefaultOptions())
	}
	if err != nil {
		return nil, nil, err
	}
	sh := regassign.NewSharing(g, mb)
	ib, err := interconnect.Bind(g, mb, rb, sh)
	if err != nil {
		return nil, nil, err
	}
	dp, err := datapath.Build(g, mb, rb, ib, width)
	if err != nil {
		return nil, nil, err
	}
	opts := bist.DefaultOptions(width)
	plan, err := bist.Optimize(dp, opts)
	if err != nil {
		return nil, nil, err
	}
	return dp, plan, nil
}

func mustPipeline(t *testing.T, g *dfg.Graph, mb *modassign.Binding, traditional bool) (*datapath.Datapath, *bist.Plan) {
	t.Helper()
	dp, plan, err := pipeline(g, mb, traditional, 8)
	if err != nil {
		t.Fatalf("pipeline(%s, traditional=%v): %v", g.Name, traditional, err)
	}
	return dp, plan
}

func benchBinding(t *testing.T, b *benchdata.Benchmark) *modassign.Binding {
	t.Helper()
	mb, err := modassign.FromMap(b.Graph, b.OpModule)
	if err != nil {
		t.Fatalf("%s: module binding: %v", b.Name, err)
	}
	return mb
}

// Every layer of the harness must come back clean on all five paper
// benchmarks, in both binding modes. This is the same gate the verify
// CLI subcommand applies.
func TestRunCleanOnPaperBenchmarks(t *testing.T) {
	for _, b := range benchdata.All() {
		for _, trad := range []bool{false, true} {
			mb := benchBinding(t, b)
			dp, plan := mustPipeline(t, b.Graph, mb, trad)
			rep, err := Run(context.Background(), b.Graph, mb, dp, plan, DefaultOptions(8))
			if err != nil {
				t.Fatalf("%s traditional=%v: %v", b.Name, trad, err)
			}
			if !rep.OK() {
				t.Errorf("%s traditional=%v:\n%s", b.Name, trad, rep.Summary())
			}
			if rep.Vectors < 100 {
				t.Errorf("%s traditional=%v: only %d vectors checked", b.Name, trad, rep.Vectors)
			}
			if !rep.EmbeddingRan {
				t.Errorf("%s traditional=%v: embedding oracle infeasible (%d combos)", b.Name, trad, rep.EmbeddingCombos)
			}
			if plan.Exact && rep.EmbeddingRan && rep.EmbeddingMin != plan.ExtraArea {
				t.Errorf("%s traditional=%v: oracle min %d != plan %d", b.Name, trad, rep.EmbeddingMin, plan.ExtraArea)
			}
		}
	}
}

// The binding oracle must run on every benchmark whose heuristic
// binding is minimum-register (all five are) and bracket the plan cost.
func TestBindingOracleBracketsHeuristicOnBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("binding oracle sweep is slow")
	}
	for _, b := range benchdata.All() {
		mb := benchBinding(t, b)
		dp, plan := mustPipeline(t, b.Graph, mb, false)
		res, err := BindingOracle(context.Background(), b.Graph, mb, dp, DefaultOptions(8))
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if !res.Ran || !res.Complete || res.Feasible == 0 {
			t.Fatalf("%s: oracle did not complete: %+v", b.Name, res)
		}
		if plan.ExtraArea < res.Best || plan.ExtraArea > res.Worst {
			t.Errorf("%s: plan cost %d outside enumerated range [%d,%d] over %d bindings",
				b.Name, plan.ExtraArea, res.Best, res.Worst, res.Feasible)
		}
	}
}

// Seeded randomized conformance sweep: every random design must pass
// the invariants and the functional cross-check; a slice of the seeds
// additionally runs the full oracle stack (exhaustive embeddings,
// worker-count conformance, bounded binding enumeration). CI runs this
// under the race detector.
func TestVerifyRandomSweep(t *testing.T) {
	const seeds = 60
	skipped := 0
	for seed := int64(1); seed <= seeds; seed++ {
		g, mb, err := benchdata.RandomWithModules(benchdata.SweepConfig(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		dp, plan, err := pipeline(g, mb, false, 8)
		if err != nil {
			// A random allocation can legitimately leave a module with no
			// register I-path; tolerate a bounded number of such designs.
			if strings.Contains(err.Error(), "no BIST embedding") {
				skipped++
				continue
			}
			t.Fatalf("seed %d: %v", seed, err)
		}
		opts := DefaultOptions(8)
		opts.Vectors = 40
		opts.Seed = seed
		if seed%5 != 0 {
			opts.SkipOracles = true
		} else {
			opts.EmbeddingCap = 1 << 16
			opts.BindingLimit = 400
		}
		rep, err := Run(context.Background(), g, mb, dp, plan, opts)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !rep.OK() {
			t.Errorf("seed %d:\n%s", seed, rep.Summary())
		}
	}
	if skipped > seeds/4 {
		t.Errorf("too many unsynthesizable random designs: %d of %d", skipped, seeds)
	}
}

// The traditional binder on ex1 yields a CBILBO (the paper's motivating
// contrast), and the testable binder eliminates it; both plans must
// still satisfy every invariant — the harness is mode-agnostic.
func TestInvariantsModeAgnosticOnEx1(t *testing.T) {
	b := benchdata.ByName("ex1")
	if b == nil {
		t.Fatal("ex1 missing")
	}
	mb := benchBinding(t, b)
	for _, trad := range []bool{false, true} {
		dp, plan := mustPipeline(t, b.Graph, mb, trad)
		opts := DefaultOptions(8)
		if vs := Invariants(b.Graph, mb, dp, plan, opts.Model, opts.AllowPadTPG); len(vs) != 0 {
			t.Errorf("traditional=%v: %v", trad, vs)
		}
	}
}

// Context cancellation must surface as an error, never as violations.
func TestRunHonorsCancellation(t *testing.T) {
	b := benchdata.ByName("paulin")
	if b == nil {
		t.Fatal("paulin missing")
	}
	mb := benchBinding(t, b)
	dp, plan := mustPipeline(t, b.Graph, mb, false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, b.Graph, mb, dp, plan, DefaultOptions(8)); err == nil {
		t.Fatal("cancelled Run returned nil error")
	}
}
