package verify

import (
	"context"
	"fmt"
	"sort"

	"bistpath/internal/area"
	"bistpath/internal/bist"
	"bistpath/internal/datapath"
	"bistpath/internal/dfg"
	"bistpath/internal/interconnect"
	"bistpath/internal/modassign"
)

// The Pareto checks follow the package's independence rule: every cost
// component is re-derived here from the netlist and the raw embedding
// choice alone — styles from first principles (deriveStyles), the test
// schedule from a re-implemented first-fit over the conflict relation,
// peak power from the schedule and the weight map — never by calling
// bist.PlanCost or bist.ScheduleSessions.

// paretoStyles derives register styles from a bare embedding choice,
// without a Plan (the oracle has none while walking combinations).
func paretoStyles(embs map[string]bist.Embedding) map[string]area.Style {
	return deriveStyles(&bist.Plan{Embeddings: embs})
}

// paretoSchedule is an independent re-implementation of the session
// scheduler's specification: first-fit coloring of the conflict relation
// over modules sorted by name. Two modules conflict when they share a
// signature register, or when a register generates for one and compacts
// for the other without being a CBILBO.
func paretoSchedule(embs map[string]bist.Embedding, styles map[string]area.Style) [][]string {
	mods := make([]string, 0, len(embs))
	for m := range embs {
		mods = append(mods, m)
	}
	sort.Strings(mods)
	conflict := func(a, b string) bool {
		ea, eb := embs[a], embs[b]
		if ea.Tail == eb.Tail {
			return true
		}
		crossed := func(x, y bist.Embedding) bool {
			for _, h := range []string{x.HeadL, x.HeadR} {
				if h == "" || interconnect.IsPad(h) {
					continue
				}
				if h == y.Tail && styles[h] != area.CBILBO {
					return true
				}
			}
			return false
		}
		return crossed(ea, eb) || crossed(eb, ea)
	}
	var sessions [][]string
	for _, m := range mods {
		placed := false
		for i, sess := range sessions {
			ok := true
			for _, other := range sess {
				if conflict(m, other) {
					ok = false
					break
				}
			}
			if ok {
				sessions[i] = append(sessions[i], m)
				placed = true
				break
			}
		}
		if !placed {
			sessions = append(sessions, []string{m})
		}
	}
	return sessions
}

// paretoVector recomputes a cost vector from a bare embedding choice:
// upgrade area from derived styles, test time as the independent
// schedule's length, peak power as the largest per-session weight sum.
func paretoVector(embs map[string]bist.Embedding, model area.Model, power map[string]int) bist.CostVector {
	styles := paretoStyles(embs)
	cost := 0
	for _, s := range styles {
		cost += model.StyleExtra(s)
	}
	sessions := paretoSchedule(embs, styles)
	peak := 0
	for _, sess := range sessions {
		sum := 0
		for _, m := range sess {
			sum += power[m]
		}
		if sum > peak {
			peak = sum
		}
	}
	return bist.CostVector{Area: cost, TestTime: len(sessions), PeakPower: peak}
}

// CheckFront validates a Pareto front against a full allocation: every
// member passes the structural invariants, carries the cost vector this
// package independently recomputes for it, the front is mutually
// non-dominated, sorted in strictly increasing lexicographic order, and
// its area-minimal member achieves the best area on the front. One
// violation string per broken property; empty = clean. mb may be nil
// (its invariant families are then skipped, as in Invariants).
func CheckFront(g *dfg.Graph, mb *modassign.Binding, dp *datapath.Datapath, front []*bist.Plan, power map[string]int, model area.Model, allowPads bool) []string {
	var vs []string
	if len(front) == 0 {
		return []string{"pareto: empty front"}
	}
	if model.Width == 0 {
		model = area.Default(dp.Width)
	}
	for i, p := range front {
		for _, v := range Invariants(g, mb, dp, p, model, allowPads) {
			vs = append(vs, fmt.Sprintf("pareto[%d]: %s", i, v))
		}
		if got := paretoVector(p.Embeddings, model, power); got != p.Cost {
			vs = append(vs, fmt.Sprintf("pareto[%d]: plan claims %v, independent recompute says %v", i, p.Cost, got))
		}
		if p.Cost.TestTime != len(p.Sessions) {
			vs = append(vs, fmt.Sprintf("pareto[%d]: TestTime %d but %d sessions", i, p.Cost.TestTime, len(p.Sessions)))
		}
	}
	for i := 1; i < len(front); i++ {
		if !front[i-1].Cost.Less(front[i].Cost) {
			vs = append(vs, fmt.Sprintf("pareto: members %d,%d out of lexicographic order: %v then %v",
				i-1, i, front[i-1].Cost, front[i].Cost))
		}
	}
	for i, p := range front {
		for j, q := range front {
			if i != j && p.Cost.Dominates(q.Cost) {
				vs = append(vs, fmt.Sprintf("pareto: member %v dominates member %v", p.Cost, q.Cost))
			}
		}
		if p.Cost.Area < front[0].Cost.Area {
			vs = append(vs, fmt.Sprintf("pareto: member %d area %d beats the claimed area-minimal member (%d)",
				i, p.Cost.Area, front[0].Cost.Area))
		}
	}
	return vs
}

// ParetoOracleResult reports the exhaustive multi-objective enumeration.
type ParetoOracleResult struct {
	// Front is the true non-dominated vector set over every combination
	// of per-module embeddings, sorted lexicographically.
	Front []bist.CostVector
	// Combos is the cartesian product size (saturated at 2*cap).
	Combos int64
	// Feasible is false when a module has no embedding or the product
	// exceeds the cap; Front is then nil.
	Feasible bool
}

// ParetoOracle exhaustively enumerates every combination of per-module
// BIST embeddings, evaluates the full cost vector of each with this
// package's independent recompute, and returns the exact non-dominated
// set — the ground truth the multi-objective search must match
// vector-for-vector. If the product exceeds maxCombos the oracle
// declines to run.
func ParetoOracle(ctx context.Context, dp *datapath.Datapath, model area.Model, power map[string]int, allowPads bool, maxCombos int64) (ParetoOracleResult, error) {
	if model.Width == 0 {
		model = area.Default(dp.Width)
	}
	lists := make([][]bist.Embedding, 0, len(dp.Modules))
	names := make([]string, 0, len(dp.Modules))
	combos := int64(1)
	for _, m := range dp.Modules {
		embs := moduleEmbeddings(dp, m, allowPads)
		if len(embs) == 0 {
			return ParetoOracleResult{}, nil
		}
		lists = append(lists, embs)
		names = append(names, m.Name)
		if combos <= 2*maxCombos {
			combos *= int64(len(embs))
		}
	}
	res := ParetoOracleResult{Combos: combos}
	if maxCombos > 0 && combos > maxCombos {
		return res, nil
	}
	res.Feasible = true

	var archive []bist.CostVector
	offer := func(v bist.CostVector) {
		for _, a := range archive {
			if a == v || a.Dominates(v) {
				return
			}
		}
		kept := archive[:0]
		for _, a := range archive {
			if !v.Dominates(a) {
				kept = append(kept, a)
			}
		}
		archive = append(kept, v)
	}

	cur := make(map[string]bist.Embedding, len(lists))
	var leafErr error
	var walk func(i int) bool
	walk = func(i int) bool {
		if err := ctx.Err(); err != nil {
			leafErr = err
			return false
		}
		if i == len(lists) {
			offer(paretoVector(cur, model, power))
			return true
		}
		for _, e := range lists[i] {
			cur[names[i]] = e
			if !walk(i + 1) {
				return false
			}
		}
		delete(cur, names[i])
		return true
	}
	if !walk(0) {
		return res, leafErr
	}
	sort.Slice(archive, func(i, j int) bool { return archive[i].Less(archive[j]) })
	res.Front = archive
	return res, nil
}

// CheckFrontAgainstOracle compares a search-produced front against the
// oracle's ground truth: the vector multisets must be identical. It
// returns nothing to check (nil) when the oracle declined.
func CheckFrontAgainstOracle(front []*bist.Plan, oracle ParetoOracleResult) []string {
	if !oracle.Feasible {
		return nil
	}
	var vs []string
	if len(front) != len(oracle.Front) {
		vs = append(vs, fmt.Sprintf("pareto: search front has %d vectors, oracle says %d", len(front), len(oracle.Front)))
	}
	got := make(map[bist.CostVector]bool, len(front))
	for _, p := range front {
		got[p.Cost] = true
	}
	for _, v := range oracle.Front {
		if !got[v] {
			vs = append(vs, fmt.Sprintf("pareto: oracle vector %v missing from the search front", v))
		}
	}
	want := make(map[bist.CostVector]bool, len(oracle.Front))
	for _, v := range oracle.Front {
		want[v] = true
	}
	for _, p := range front {
		if !want[p.Cost] {
			vs = append(vs, fmt.Sprintf("pareto: search vector %v is not on the oracle front (dominated or infeasible)", p.Cost))
		}
	}
	return vs
}
