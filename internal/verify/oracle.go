package verify

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"bistpath/internal/area"
	"bistpath/internal/bist"
	"bistpath/internal/datapath"
	"bistpath/internal/dfg"
	"bistpath/internal/interconnect"
	"bistpath/internal/modassign"
	"bistpath/internal/regassign"
)

// moduleEmbeddings enumerates every legal BIST embedding of one module
// directly from the netlist: any wired left/right source pair (distinct
// unless the module is diagonal; pads only when allowed) feeding any
// destination register. It deliberately re-derives what
// bist.Embeddings computes, so the two enumerations check each other.
func moduleEmbeddings(dp *datapath.Datapath, m *datapath.Module, allowPads bool) []bist.Embedding {
	usable := func(srcs []string) []string {
		var out []string
		for _, s := range srcs {
			if interconnect.IsPad(s) && !allowPads {
				continue
			}
			out = append(out, s)
		}
		return out
	}
	ls := usable(m.Left)
	var out []bist.Embedding
	if len(m.Right) == 0 {
		for _, l := range ls {
			for _, t := range m.Dests {
				out = append(out, bist.Embedding{Module: m.Name, HeadL: l, Tail: t})
			}
		}
		return out
	}
	diagonal := moduleDiagonal(dp, m.Name)
	for _, l := range ls {
		for _, r := range usable(m.Right) {
			if l == r && !diagonal {
				continue
			}
			for _, t := range m.Dests {
				out = append(out, bist.Embedding{Module: m.Name, HeadL: l, HeadR: r, Tail: t})
			}
		}
	}
	return out
}

// dutyCost tracks register duties and the total upgrade cost
// incrementally while the embedding oracle walks its cartesian product.
type dutyCost struct {
	model area.Model
	tpg   map[string]int
	sa    map[string]int
	cb    map[string]int
	cost  int
}

func newDutyCost(m area.Model) *dutyCost {
	return &dutyCost{model: m, tpg: map[string]int{}, sa: map[string]int{}, cb: map[string]int{}}
}

func (d *dutyCost) styleExtra(reg string) int {
	switch {
	case d.cb[reg] > 0:
		return d.model.StyleExtra(area.CBILBO)
	case d.tpg[reg] > 0 && d.sa[reg] > 0:
		return d.model.StyleExtra(area.BILBO)
	case d.tpg[reg] > 0:
		return d.model.StyleExtra(area.TPG)
	case d.sa[reg] > 0:
		return d.model.StyleExtra(area.SA)
	}
	return 0
}

func (d *dutyCost) add(e bist.Embedding, dir int) {
	touched := map[string]bool{}
	before := map[string]int{}
	note := func(reg string) {
		if !touched[reg] {
			touched[reg] = true
			before[reg] = d.styleExtra(reg)
		}
	}
	for _, h := range []string{e.HeadL, e.HeadR} {
		if h == "" || interconnect.IsPad(h) {
			continue
		}
		note(h)
		d.tpg[h] += dir
		if h == e.Tail {
			d.cb[h] += dir
		}
	}
	note(e.Tail)
	d.sa[e.Tail] += dir
	for reg := range touched {
		d.cost += d.styleExtra(reg) - before[reg]
	}
}

// EmbeddingOracleResult reports the exhaustive embedding enumeration.
type EmbeddingOracleResult struct {
	MinCost  int   // minimum upgrade area over all combinations
	Combos   int64 // size of the cartesian product (saturated at 2*cap)
	Feasible bool  // false when a module has no embedding or the product exceeds cap
}

// EmbeddingOracle exhaustively enumerates every combination of
// per-module BIST embeddings and returns the minimum register upgrade
// area — the ground truth the branch-and-bound optimizer must match.
// If the cartesian product exceeds maxCombos the oracle declines to run.
func EmbeddingOracle(dp *datapath.Datapath, model area.Model, allowPads bool, maxCombos int64) EmbeddingOracleResult {
	if model.Width == 0 {
		model = area.Default(dp.Width)
	}
	lists := make([][]bist.Embedding, 0, len(dp.Modules))
	combos := int64(1)
	for _, m := range dp.Modules {
		embs := moduleEmbeddings(dp, m, allowPads)
		if len(embs) == 0 {
			return EmbeddingOracleResult{}
		}
		lists = append(lists, embs)
		if combos <= 2*maxCombos { // saturate: the exact count no longer matters
			combos *= int64(len(embs))
		}
	}
	res := EmbeddingOracleResult{Combos: combos}
	if maxCombos > 0 && combos > maxCombos {
		return res
	}
	res.Feasible = true
	d := newDutyCost(model)
	res.MinCost = -1
	var walk func(i int)
	walk = func(i int) {
		if res.MinCost >= 0 && d.cost >= res.MinCost {
			return // duties only ever add cost deeper down
		}
		if i == len(lists) {
			res.MinCost = d.cost
			return
		}
		for _, e := range lists[i] {
			d.add(e, +1)
			walk(i + 1)
			d.add(e, -1)
		}
	}
	walk(0)
	if res.MinCost < 0 { // no modules at all
		res.MinCost = 0
	}
	return res
}

// planFingerprint canonically serializes a plan's observable content so
// two searches can be compared for exact equality.
func planFingerprint(p *bist.Plan) string {
	var sb strings.Builder
	mods := make([]string, 0, len(p.Embeddings))
	for m := range p.Embeddings {
		mods = append(mods, m)
	}
	sort.Strings(mods)
	for _, m := range mods {
		e := p.Embeddings[m]
		fmt.Fprintf(&sb, "emb %s L=%s R=%s T=%s\n", m, e.HeadL, e.HeadR, e.Tail)
	}
	regs := make([]string, 0, len(p.Styles))
	for r := range p.Styles {
		regs = append(regs, r)
	}
	sort.Strings(regs)
	for _, r := range regs {
		fmt.Fprintf(&sb, "style %s %v\n", r, p.Styles[r])
	}
	fmt.Fprintf(&sb, "cost %d exact %v\n", p.ExtraArea, p.Exact)
	for i, s := range p.Sessions {
		fmt.Fprintf(&sb, "session %d: %s\n", i, strings.Join(s, ","))
	}
	return sb.String()
}

// ParallelMatch re-runs the BIST search once per requested worker count
// and reports a violation for any run whose plan differs from the given
// plan in any observable way — the determinism contract of the parallel
// branch and bound.
func ParallelMatch(ctx context.Context, dp *datapath.Datapath, opts Options, plan *bist.Plan) ([]string, error) {
	var vs []string
	base := planFingerprint(plan)
	search := opts.Search
	if search == nil {
		search = func(ctx context.Context, dp *datapath.Datapath, workers int) (*bist.Plan, error) {
			return bist.OptimizeCtx(ctx, dp, bist.Options{
				Model:            opts.Model,
				AllowPadHeads:    opts.AllowPadTPG,
				MinimizeSessions: opts.MinimizeSessions,
				Workers:          workers,
			})
		}
	}
	for _, w := range opts.Workers {
		p, err := search(ctx, dp, w)
		if err != nil {
			if ctx.Err() != nil {
				return vs, ctx.Err()
			}
			vs = append(vs, fmt.Sprintf("parallel: search with %d workers failed: %v", w, err))
			continue
		}
		if got := planFingerprint(p); got != base {
			vs = append(vs, fmt.Sprintf("parallel: %d-worker search diverges from the plan under test:\n--- plan ---\n%s--- workers=%d ---\n%s", w, base, w, got))
		}
	}
	return vs, nil
}

// BindingOracleResult reports the exhaustive register-binding sweep.
type BindingOracleResult struct {
	Ran       bool // false when enumeration failed
	Registers int  // register count the space was enumerated at
	Bindings  int  // same-register-count bindings enumerated
	Feasible  int  // bindings that survived the full downstream pipeline
	Best      int  // lowest plan cost over feasible bindings
	Worst     int  // highest plan cost over feasible bindings
	Complete  bool // enumeration covered the whole space
}

// BindingOracle enumerates every register binding with the same
// register count as the data path under test (the minimum count when
// dp is nil), pushes each through the interconnect, netlist and BIST
// pipeline, and reports the best and worst achievable plan cost. A
// heuristic binding is always graded against its own register count,
// so non-minimal bindings — e.g. an incremental warm-start landing on
// a k-register plan — are graded against the enumerated k-register
// optimum instead of being declined. The plan under test must land
// inside the reported range; beating Best would prove the cost model
// inconsistent.
func BindingOracle(ctx context.Context, g *dfg.Graph, mb *modassign.Binding, dp *datapath.Datapath, opts Options) (BindingOracleResult, error) {
	var res BindingOracleResult
	k, err := g.MinRegisters()
	if err != nil {
		return res, nil
	}
	if dp != nil {
		k = len(dp.Regs)
	}
	res.Registers = k
	parts, complete, err := regassign.EnumerateBindings(g, k, opts.BindingLimit)
	if err != nil {
		return res, nil
	}
	res.Ran = true
	res.Bindings = len(parts)
	res.Complete = complete
	sh := regassign.NewSharing(g, mb)
	for _, part := range parts {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		rb, err := regassign.BindingFromPartition(g, part)
		if err != nil {
			continue
		}
		ib, err := interconnect.Bind(g, mb, rb, sh)
		if err != nil {
			continue
		}
		cand, err := datapath.Build(g, mb, rb, ib, opts.Model.Width)
		if err != nil {
			continue
		}
		plan, err := bist.OptimizeCtx(ctx, cand, bist.Options{
			Model:            opts.Model,
			AllowPadHeads:    opts.AllowPadTPG,
			MinimizeSessions: opts.MinimizeSessions,
		})
		if err != nil {
			if ctx.Err() != nil {
				return res, ctx.Err()
			}
			continue // e.g. a binding leaving some module with no embedding
		}
		if res.Feasible == 0 || plan.ExtraArea < res.Best {
			res.Best = plan.ExtraArea
		}
		if res.Feasible == 0 || plan.ExtraArea > res.Worst {
			res.Worst = plan.ExtraArea
		}
		res.Feasible++
	}
	return res, nil
}
