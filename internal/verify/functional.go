package verify

import (
	"fmt"
	"math/rand"

	"bistpath/internal/datapath"
)

// Functional simulates the bound data path on `vectors` random input
// vectors and compares every primary output against direct DFG
// evaluation. It returns the number of vectors that passed and, on the
// first mismatch, an error describing it. The vector stream is a pure
// function of seed, so failures replay exactly.
func Functional(dp *datapath.Datapath, vectors int, seed int64) (int, error) {
	rng := rand.New(rand.NewSource(seed))
	g := dp.Graph()
	inputs := g.Inputs()
	for i := 0; i < vectors; i++ {
		in := make(map[string]uint64, len(inputs))
		for _, name := range inputs {
			in[name] = uint64(rng.Int63())
		}
		if err := dp.CheckAgainstDFG(in); err != nil {
			return i, fmt.Errorf("vector %d (seed %d): %w", i, seed, err)
		}
	}
	return vectors, nil
}
