package verify

import (
	"context"
	"testing"

	"bistpath/internal/benchdata"
	"bistpath/internal/bist"
	"bistpath/internal/datapath"
	"bistpath/internal/interconnect"
	"bistpath/internal/regassign"
)

// The oracle must grade a non-minimal binding against the enumerated
// optimum of the SAME register count — not decline it, and not compare
// it to the minimum-register space. This is the case an incremental
// warm-start can land in.
func TestBindingOracleGradesNonMinimalBinding(t *testing.T) {
	b := benchdata.ByName("ex1")
	g := b.Graph
	mb := benchBinding(t, b)
	min, err := g.MinRegisters()
	if err != nil {
		t.Fatal(err)
	}

	// Build a deliberately non-minimal data path: the first enumerated
	// (min+1)-register partition, pushed through the real pipeline.
	parts, _, err := regassign.EnumerateBindings(g, min+1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) == 0 {
		t.Fatalf("no %d-register partition of %s", min+1, g.Name)
	}
	rb, err := regassign.BindingFromPartition(g, parts[0])
	if err != nil {
		t.Fatal(err)
	}
	ib, err := interconnect.Bind(g, mb, rb, regassign.NewSharing(g, mb))
	if err != nil {
		t.Fatal(err)
	}
	dp, err := datapath.Build(g, mb, rb, ib, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(dp.Regs) != min+1 {
		t.Fatalf("test setup: dp has %d registers, want %d", len(dp.Regs), min+1)
	}
	opts := DefaultOptions(8)
	plan, err := bist.OptimizeCtx(context.Background(), dp, bist.Options{
		Model:            opts.Model,
		AllowPadHeads:    opts.AllowPadTPG,
		MinimizeSessions: opts.MinimizeSessions,
	})
	if err != nil {
		t.Fatal(err)
	}

	res, err := BindingOracle(context.Background(), g, mb, dp, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ran {
		t.Fatal("oracle declined the non-minimal binding")
	}
	if res.Registers != min+1 {
		t.Fatalf("oracle enumerated %d-register bindings, want %d", res.Registers, min+1)
	}
	if res.Feasible == 0 {
		t.Fatal("no feasible bindings at the non-minimal count")
	}
	if plan.ExtraArea < res.Best || plan.ExtraArea > res.Worst {
		t.Errorf("plan cost %d outside the %d-register range [%d,%d] over %d bindings",
			plan.ExtraArea, res.Registers, res.Best, res.Worst, res.Feasible)
	}

	// A k below the chromatic number yields no partitions at all.
	none, _, err := regassign.EnumerateBindings(g, min-1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Errorf("EnumerateBindings(min-1) produced %d partitions", len(none))
	}
}
