package server

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"bistpath"
)

// This file implements incremental re-synthesis over the wire:
// PATCH /v1/jobs/{id} applies a batch of typed edits to a completed
// job's design and admits a derived job that re-synthesizes it through
// a bistpath.Session, so conflict-preserving edits reuse the previous
// run's register binding, netlist and BIST plan instead of paying for a
// cold search.

// observerRelay is a retargetable bistpath.Observer: the session's
// Config pins its Observer once at creation, but each derived job wants
// the phase events on its own SSE hub, so the pinned observer forwards
// to whatever hub is installed for the current run.
type observerRelay struct {
	v atomic.Pointer[hub]
}

func (o *observerRelay) observe(e bistpath.Event) {
	if h := o.v.Load(); h != nil {
		h.observe(e)
	}
}

// sessionRef is the shared incremental-synthesis state of one job
// lineage (the originally POSTed job and every job PATCH derived from
// it). It owns the bistpath.Session plus the base design and the log of
// successfully applied edits; a failed batch drops the session, and the
// next PATCH rebuilds it by replaying the log, so one bad edit never
// poisons the lineage.
type sessionRef struct {
	relay *observerRelay

	mu      sync.Mutex
	d       *bistpath.DFG
	mods    map[string]string
	cfg     bistpath.Config // Observer cleared; the relay is installed per session
	ss      *bistpath.Session
	applied []patchEdit // every edit a successful PATCH has applied, in order
}

// patchRequest is the PATCH /v1/jobs/{id} body.
type patchRequest struct {
	// Edits are applied in order to the job's design before the
	// incremental re-synthesis. At least one is required.
	Edits []patchEdit `json:"edits"`
}

// patchEdit is one typed design edit, mirroring the bistpath.Session
// mutators. Kind selects the mutator; the other fields are its
// arguments.
type patchEdit struct {
	// Kind is one of "set_step", "replace_op", "remap_module",
	// "retime_port".
	Kind   string `json:"kind"`
	Op     string `json:"op,omitempty"`      // set_step, replace_op, remap_module
	Step   int    `json:"step,omitempty"`    // set_step
	OpKind string `json:"op_kind,omitempty"` // replace_op: + - * / & | ^ < >
	Module string `json:"module,omitempty"`  // remap_module
	Var    string `json:"var,omitempty"`     // retime_port
	Port   bool   `json:"port,omitempty"`    // retime_port
}

// check validates the edit's shape (not its applicability, which the
// session mutator decides against the live design).
func (e patchEdit) check() error {
	switch e.Kind {
	case "set_step", "replace_op", "remap_module":
		if e.Op == "" {
			return fmt.Errorf("edit %q needs op", e.Kind)
		}
	case "retime_port":
		if e.Var == "" {
			return fmt.Errorf("edit %q needs var", e.Kind)
		}
	default:
		return fmt.Errorf("unknown edit kind %q", e.Kind)
	}
	return nil
}

// apply dispatches the edit to the matching session mutator.
func (e patchEdit) apply(ss *bistpath.Session) error {
	switch e.Kind {
	case "set_step":
		return ss.SetStep(e.Op, e.Step)
	case "replace_op":
		return ss.ReplaceOp(e.Op, e.OpKind)
	case "remap_module":
		return ss.RemapModule(e.Op, e.Module)
	case "retime_port":
		return ss.RetimePort(e.Var, e.Port)
	}
	return fmt.Errorf("unknown edit kind %q", e.Kind)
}

// resynthesize applies one edit batch and re-synthesizes, holding the
// lineage lock so concurrent PATCHes serialize into a deterministic
// edit order. On any failure the session is dropped; the next call
// rebuilds it from the base design plus the applied-edit log (which
// only ever contains edits whose batch fully succeeded).
func (ref *sessionRef) resynthesize(ctx context.Context, synth *bistpath.Synthesizer, h *hub, edits []patchEdit) (*bistpath.Result, error) {
	ref.mu.Lock()
	defer ref.mu.Unlock()
	if ref.ss == nil {
		cfg := ref.cfg
		cfg.Observer = ref.relay.observe
		ss, err := synth.NewSessionConfig(ref.d, ref.mods, cfg)
		if err != nil {
			return nil, err
		}
		for _, e := range ref.applied {
			if err := e.apply(ss); err != nil {
				ss.Close()
				return nil, fmt.Errorf("replaying session edits: %w", err)
			}
		}
		ref.ss = ss
	}
	drop := func() {
		ref.ss.Close()
		ref.ss = nil
	}
	for _, e := range edits {
		if err := e.apply(ref.ss); err != nil {
			drop()
			return nil, err
		}
	}
	ref.relay.v.Store(h)
	defer ref.relay.v.Store(nil)
	res, err := ref.ss.Resynthesize(ctx)
	if err != nil {
		drop()
		return nil, err
	}
	ref.applied = append(ref.applied, edits...)
	return res, nil
}

// clientKey identifies the requester for the per-client job quota: the
// X-Client-ID header when present (so pooled proxies can pass through
// the real principal), otherwise the connection's remote host.
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" && len(id) <= 128 {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func (s *Server) handlePatch(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, r, &apiError{status: http.StatusServiceUnavailable, msg: "server is draining"})
		return
	}
	j := s.job(w, r)
	if j == nil {
		return
	}
	body, err := readBody(r)
	if err != nil {
		writeError(w, r, err)
		return
	}
	var req patchRequest
	if err := unmarshalStrict(body, &req); err != nil {
		writeError(w, r, &apiError{status: http.StatusBadRequest, msg: "bad request body: " + err.Error()})
		return
	}
	if len(req.Edits) == 0 {
		writeError(w, r, validationError("need at least one edit"))
		return
	}
	for _, e := range req.Edits {
		if err := e.check(); err != nil {
			writeError(w, r, validationError(err.Error()))
			return
		}
	}
	nj, err := s.jobs.resubmit(j, req.Edits, clientKey(r))
	if err != nil {
		writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusAccepted, submitResponse{
		jobJSON: nj.view(false),
		Links: map[string]string{
			"self":   "/v1/jobs/" + nj.id,
			"events": "/v1/jobs/" + nj.id + "/events",
			"result": "/v1/jobs/" + nj.id + "/result",
		},
	})
}

// resubmit admits a job derived from parent by an edit batch. The
// parent must have completed successfully (its design seeds the
// session); a derived job is itself PATCHable once done, continuing
// the same session lineage.
func (m *manager) resubmit(parent *job, edits []patchEdit, client string) (*job, error) {
	parent.mu.Lock()
	st := parent.status
	parent.mu.Unlock()
	if st != StatusDone {
		return nil, &apiError{status: http.StatusConflict,
			msg: fmt.Sprintf("job is %s; PATCH needs a completed job", st)}
	}

	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		design:    parent.design,
		clientKey: client,
		created:   time.Now(),
		hub:       newHub(),
		cancel:    cancel,
		done:      make(chan struct{}),
		status:    StatusQueued,
	}

	m.mu.Lock()
	if err := m.admitLocked(j, client); err != nil {
		m.mu.Unlock()
		cancel()
		return nil, err
	}
	// The session lineage root: reuse the parent's, or start one on it.
	if parent.ref == nil {
		parent.ref = &sessionRef{
			relay: &observerRelay{},
			d:     parent.d,
			mods:  parent.mods,
			cfg:   parent.cfg,
		}
	}
	j.ref = parent.ref
	j.root = parent.rootID()
	m.mu.Unlock()

	expJobsSubmitted.Add(1)
	expJobsPatched.Add(1)
	j.hub.publishLifecycle(string(StatusQueued), j.id, j.design, false)
	go m.runPatch(ctx, j, edits)
	return j, nil
}

// runPatch is the derived job's goroutine: pool slot, then the session
// re-synthesis, then the single terminal transition.
func (m *manager) runPatch(ctx context.Context, j *job, edits []patchEdit) {
	defer m.wg.Done()
	if err := m.srv.pool.Acquire(ctx); err != nil {
		m.finish(j, bistpath.BatchResult{Name: j.design, Err: err})
		return
	}
	var br bistpath.BatchResult
	func() {
		defer m.srv.pool.Release()
		j.setStatus(StatusRunning)
		j.hub.publishLifecycle(string(StatusRunning), j.id, j.design, false)
		if hook := m.srv.testHook; hook != nil {
			if err := hook(ctx, j.design); err != nil {
				br = bistpath.BatchResult{Name: j.design, Err: err}
				return
			}
		}
		br = bistpath.BatchResult{Name: j.design}
		br.Result, br.Err = j.ref.resynthesize(ctx, m.srv.synth, j.hub, edits)
	}()
	m.finish(j, br)
}
