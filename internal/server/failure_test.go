package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// decodeError unmarshals a service error response.
func decodeError(t testing.TB, body []byte) errorJSON {
	t.Helper()
	var e errorJSON
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("error body not JSON: %v (%s)", err, body)
	}
	return e
}

// Oversized request bodies are refused with 413 before any parsing.
func TestSubmitOversizedBody(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxBody: 256})
	big := fmt.Sprintf(`{"dfg":%q}`, strings.Repeat("x", 1024))
	resp, body := postJSON(t, ts.URL+"/v1/jobs", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413 (%s)", resp.StatusCode, body)
	}
	e := decodeError(t, body)
	if e.Status != http.StatusRequestEntityTooLarge || e.RequestID == "" {
		t.Errorf("error = %+v, want status 413 with a request ID", e)
	}

	// The limit applies to the wire, not the design: a small valid
	// submission on the same server is fine.
	if resp, _ := postJSON(t, ts.URL+"/v1/jobs", `{"benchmark":"ex1"}`); resp.StatusCode != http.StatusAccepted {
		t.Errorf("small submit after 413: %d", resp.StatusCode)
	}
}

// Malformed and invalid submissions come back as typed errors carrying
// the same validate-phase attribution a pipeline SynthesisError would.
func TestSubmitValidationErrors(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cases := []struct {
		name   string
		body   string
		status int
		phase  string
	}{
		{"not json", `{{{`, http.StatusBadRequest, ""},
		{"unknown field", `{"benchmork":"ex1"}`, http.StatusBadRequest, ""},
		{"neither input", `{}`, http.StatusUnprocessableEntity, "validate"},
		{"both inputs", `{"benchmark":"ex1","dfg":"graph g {}"}`, http.StatusUnprocessableEntity, "validate"},
		{"unknown benchmark", `{"benchmark":"nope"}`, http.StatusUnprocessableEntity, "validate"},
		{"malformed dfg", `{"dfg":"this is not a dfg"}`, http.StatusUnprocessableEntity, "validate"},
		{"width out of range", `{"benchmark":"ex1","config":{"width":0}}`, http.StatusUnprocessableEntity, "validate"},
		{"unknown mode", `{"benchmark":"ex1","config":{"mode":"quantum"}}`, http.StatusUnprocessableEntity, "validate"},
		{"workers out of range", `{"benchmark":"ex1","config":{"workers":999}}`, http.StatusUnprocessableEntity, "validate"},
		{"modules on benchmark", `{"benchmark":"ex1","modules":{"op1":"m1"}}`, http.StatusUnprocessableEntity, "validate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+"/v1/jobs", tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d (%s)", resp.StatusCode, tc.status, body)
			}
			e := decodeError(t, body)
			if e.Phase != tc.phase {
				t.Errorf("phase = %q, want %q", e.Phase, tc.phase)
			}
			if e.Error == "" || e.RequestID == "" {
				t.Errorf("error = %+v, want a message and request ID", e)
			}
		})
	}

	// Invalid submissions never become jobs.
	resp, body := getJSON(t, ts.URL+"/v1/jobs")
	var list struct {
		Jobs []jobJSON `json:"jobs"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || len(list.Jobs) != 0 {
		t.Errorf("jobs list after rejections: %d %s", resp.StatusCode, body)
	}
}

// A panicking handler yields a clean 500 carrying the request ID, the
// panic counter ticks, and the server keeps serving afterwards. The
// panicking route rides the server's own middleware chain.
func TestHandlerPanicRecovery(t *testing.T) {
	s := New(Options{})
	mux := http.NewServeMux()
	mux.Handle("/", s.Handler())
	mux.HandleFunc("GET /boom", func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	})
	chain := withRequestID(withRecover(mux))
	ts := httptest.NewServer(chain)
	t.Cleanup(ts.Close)

	before := expHandlerPanics.Value()
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/boom", nil)
	req.Header.Set("X-Request-ID", "trace-me-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500 (%s)", resp.StatusCode, body)
	}
	e := decodeError(t, body)
	if e.RequestID != "trace-me-1" {
		t.Errorf("request_id = %q, want the client-provided trace ID", e.RequestID)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "trace-me-1" {
		t.Errorf("X-Request-ID header = %q", got)
	}
	if expHandlerPanics.Value() != before+1 {
		t.Errorf("handler_panics = %d, want %d", expHandlerPanics.Value(), before+1)
	}

	// The connection goroutine recovered; the real API is still up.
	if resp, _ := getJSON(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz after panic: %d", resp.StatusCode)
	}
	id := submitBenchmark(t, ts, "ex1")
	if v := waitJob(t, ts, id); v.Status != StatusDone {
		t.Errorf("post-panic job: %s (%s)", v.Status, v.Error)
	}
}

// Cancelling a running job (DELETE) concludes it as canceled — with the
// terminal SSE event — and releases its worker slot: the next job on a
// one-worker pool runs immediately.
func TestCancelRunningJobReleasesPool(t *testing.T) {
	srv := New(Options{Workers: 1, Heartbeat: 20 * time.Millisecond})
	// ex1 jobs park in the hook until their context is cancelled;
	// everything else synthesizes normally.
	srv.testHook = func(ctx context.Context, design string) error {
		if design == "ex1" {
			<-ctx.Done()
			return ctx.Err()
		}
		return nil
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	id := submitBenchmark(t, ts, "ex1")
	waitStatus(t, ts, id, StatusRunning)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}
	if v := waitJob(t, ts, id); v.Status != StatusCanceled {
		t.Fatalf("cancelled job: %s (%s)", v.Status, v.Error)
	}
	events := readSSE(t, ts.URL+"/v1/jobs/"+id+"/events")
	if n := countTerminals(events); n != 1 {
		t.Errorf("cancelled stream: %d terminal events", n)
	}
	if last := events[len(events)-1]; last.name != string(StatusCanceled) {
		t.Errorf("cancelled stream ends with %q", last.name)
	}

	// The single worker slot came back: a normal job completes.
	id2 := submitBenchmark(t, ts, "ex2")
	if v := waitJob(t, ts, id2); v.Status != StatusDone {
		t.Errorf("job after cancel: %s (%s) — pool wedged?", v.Status, v.Error)
	}

	// Results for non-done jobs answer 409 with the status view.
	resp2, body := getJSON(t, ts.URL+"/v1/jobs/"+id+"/result")
	if resp2.StatusCode != http.StatusConflict || !strings.Contains(string(body), string(StatusCanceled)) {
		t.Errorf("result of cancelled job: %d %s", resp2.StatusCode, body)
	}
}

// A drain whose deadline expires cancels the stragglers: they conclude
// as canceled (not wedged, not lost), Drain returns the context error,
// and the pool is fully released.
func TestDrainDeadlineCancelsJobs(t *testing.T) {
	srv := New(Options{Workers: 2, Heartbeat: 20 * time.Millisecond})
	srv.testHook = func(ctx context.Context, design string) error {
		<-ctx.Done() // every job parks until drained away
		return ctx.Err()
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	ids := []string{
		submitBenchmark(t, ts, "ex1"),
		submitBenchmark(t, ts, "ex2"),
		submitBenchmark(t, ts, "tseng1"), // queued behind the 2 workers
	}
	waitStatus(t, ts, ids[0], StatusRunning)

	dctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := srv.Drain(dctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain = %v, want deadline exceeded", err)
	}
	for _, id := range ids {
		v := waitJob(t, ts, id)
		if v.Status != StatusCanceled {
			t.Errorf("job %s: %s, want canceled", id, v.Status)
		}
		events := readSSE(t, ts.URL+"/v1/jobs/"+id+"/events")
		if n := countTerminals(events); n != 1 {
			t.Errorf("job %s: %d terminal events after forced drain", id, n)
		}
	}

	// Draining status is reflected on the control endpoints.
	if !srv.Draining() {
		t.Error("Draining() = false after Drain")
	}
	resp, _ := getJSON(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while drained: %d, want 503", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/jobs", `{"benchmark":"ex1"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while drained: %d, want 503", resp.StatusCode)
	}

	// Drain is idempotent: a second call returns promptly (all jobs are
	// already terminal).
	d2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := srv.Drain(d2); err != nil {
		t.Errorf("second drain: %v", err)
	}
}

// Unknown jobs 404 on every per-job route.
func TestUnknownJobRoutes(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for _, path := range []string{"/v1/jobs/nope", "/v1/jobs/nope/result", "/v1/jobs/nope/events"} {
		resp, body := getJSON(t, ts.URL+path)
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: %d (%s)", path, resp.StatusCode, body)
		}
	}
}

// waitStatus polls until the job reaches the wanted transient status (or
// any terminal state, which fails the test).
func waitStatus(t testing.TB, ts *httptest.Server, id string, want Status) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, body := getJSON(t, ts.URL+"/v1/jobs/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll %s: %d", id, resp.StatusCode)
		}
		var v jobJSON
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		if v.Status == want {
			return
		}
		if v.Status.Terminal() {
			t.Fatalf("job %s reached %s while waiting for %s", id, v.Status, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck at %s waiting for %s", id, v.Status, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
