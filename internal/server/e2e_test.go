package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bistpath"
)

// newTestServer builds a Server and an httptest front end. The hook
// must be set on the returned Server before the first request.
func newTestServer(t testing.TB, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.Heartbeat == 0 {
		opts.Heartbeat = 50 * time.Millisecond
	}
	srv := New(opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJSON(t testing.TB, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	return resp, data
}

func getJSON(t testing.TB, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	return resp, data
}

// submitBenchmark posts a benchmark job and returns its ID.
func submitBenchmark(t testing.TB, ts *httptest.Server, name string) string {
	t.Helper()
	resp, body := postJSON(t, ts.URL+"/v1/jobs", fmt.Sprintf(`{"benchmark":%q}`, name))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit %s: status %d, body %s", name, resp.StatusCode, body)
	}
	var sub submitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatalf("submit response: %v", err)
	}
	if sub.ID == "" || sub.Status != StatusQueued && sub.Status != StatusRunning {
		t.Fatalf("submit view = %+v", sub.jobJSON)
	}
	for _, link := range []string{"self", "events", "result"} {
		if sub.Links[link] == "" {
			t.Fatalf("submit response missing %q link: %+v", link, sub.Links)
		}
	}
	return sub.ID
}

// waitJob polls until the job is terminal and returns its final view.
func waitJob(t testing.TB, ts *httptest.Server, id string) jobJSON {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, body := getJSON(t, ts.URL+"/v1/jobs/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll %s: status %d, body %s", id, resp.StatusCode, body)
		}
		var v jobJSON
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatalf("poll %s: %v", id, err)
		}
		if v.Status.Terminal() {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after 30s", id, v.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// sseEvent is one parsed frame of an SSE stream.
type sseEvent struct {
	name string
	data string
}

// readSSE consumes a job's whole event stream (the server ends it after
// the terminal event) and returns the parsed frames, ignoring comments
// and heartbeats.
func readSSE(t testing.TB, url string) []sseEvent {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("SSE %s: status %d, body %s", url, resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type %q", ct)
	}
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.name != "" {
				events = append(events, cur)
			}
			cur = sseEvent{}
		case strings.HasPrefix(line, ":"): // comment / heartbeat / drop report
		case strings.HasPrefix(line, "event: "):
			cur.name = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			cur.data = line[len("data: "):]
		case strings.HasPrefix(line, "id: "):
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("SSE read: %v", err)
	}
	return events
}

// pipelineSkeleton is the golden event ordering of one cold synthesis:
// the lifecycle pair, the five pipeline phases in execution order as
// start/end pairs, then the terminal event — with the ephemeral
// search-progress ticks filtered out.
var pipelineSkeleton = []string{
	"queued",
	"running",
	"phase-start:validate", "phase-end:validate",
	"phase-start:register-bind", "phase-end:register-bind",
	"phase-start:interconnect", "phase-end:interconnect",
	"phase-start:datapath", "phase-end:datapath",
	"phase-start:bist-search", "phase-end:bist-search",
	"done",
}

// skeletonOf renders events as name (or name:phase) strings with
// search-progress removed, and verifies progress ticks only ever occur
// inside the bist-search phase window.
func skeletonOf(t testing.TB, events []sseEvent) []string {
	t.Helper()
	var out []string
	inSearch := false
	for _, ev := range events {
		var payload struct {
			Phase string `json:"phase"`
		}
		_ = json.Unmarshal([]byte(ev.data), &payload)
		switch ev.name {
		case "search-progress":
			if !inSearch {
				t.Errorf("search-progress outside the bist-search window")
			}
			continue
		case "phase-start":
			inSearch = payload.Phase == "bist-search"
		case "phase-end":
			inSearch = false
		}
		if ev.name == "phase-start" || ev.name == "phase-end" {
			out = append(out, ev.name+":"+payload.Phase)
		} else {
			out = append(out, ev.name)
		}
	}
	return out
}

// countTerminals returns how many terminal events the stream carried.
func countTerminals(events []sseEvent) int {
	n := 0
	for _, ev := range events {
		switch ev.name {
		case string(StatusDone), string(StatusFailed), string(StatusCanceled):
			n++
		}
	}
	return n
}

// The full service lifecycle for every paper benchmark: submit → stream
// SSE → poll terminal → fetch result. The SSE skeleton is pinned to the
// golden pipeline ordering with exactly one terminal event.
func TestServiceLifecycleAllBenchmarks(t *testing.T) {
	cc, err := bistpath.NewCache(bistpath.CacheOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Options{Cache: cc})
	for _, name := range bistpath.BenchmarkNames() {
		id := submitBenchmark(t, ts, name)
		events := readSSE(t, ts.URL+"/v1/jobs/"+id+"/events")
		if got := skeletonOf(t, events); !equalStrings(got, pipelineSkeleton) {
			t.Errorf("%s: SSE skeleton =\n  %v\nwant\n  %v", name, got, pipelineSkeleton)
		}
		if n := countTerminals(events); n != 1 {
			t.Errorf("%s: %d terminal events, want exactly 1", name, n)
		}

		view := waitJob(t, ts, id)
		if view.Status != StatusDone {
			t.Fatalf("%s: status %s (error %q)", name, view.Status, view.Error)
		}
		if view.CacheHit {
			t.Errorf("%s: cold submission reported a cache hit", name)
		}
		if len(view.Result) == 0 {
			t.Errorf("%s: done view carries no result document", name)
		}

		resp, body := getJSON(t, ts.URL+"/v1/jobs/"+id+"/result")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: result status %d", name, resp.StatusCode)
		}
		var doc map[string]any
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatalf("%s: result not JSON: %v", name, err)
		}
		if doc["name"] != name || int(doc["schema"].(float64)) != bistpath.ResultSchemaVersion {
			t.Errorf("%s: result name/schema = %v/%v", name, doc["name"], doc["schema"])
		}
	}

	// A duplicate submission is served from the shared cache: terminal
	// view flags the hit and the stream carries a cache-hit event in
	// place of a BIST search, still ending in exactly one terminal.
	id := submitBenchmark(t, ts, "ex1")
	view := waitJob(t, ts, id)
	if view.Status != StatusDone || !view.CacheHit {
		t.Fatalf("warm resubmission: status %s, cache_hit %t", view.Status, view.CacheHit)
	}
	events := readSSE(t, ts.URL+"/v1/jobs/"+id+"/events")
	if n := countTerminals(events); n != 1 {
		t.Errorf("warm stream: %d terminal events, want 1", n)
	}
	sawHit := false
	for _, ev := range events {
		if ev.name == "cache-hit" {
			sawHit = true
		}
		if ev.name == "phase-start" && strings.Contains(ev.data, "bist-search") {
			t.Errorf("warm stream ran a BIST search")
		}
	}
	if !sawHit {
		t.Errorf("warm stream missing the cache-hit event: %v", skeletonOf(t, events))
	}
}

// The wire byte-identity guarantee: the served result document is
// byte-identical to what `bistpath synth -bench NAME -json -cache-dir
// DIR` prints for the same input, because both sides replay the same
// cache entry. (CI additionally diffs the real binaries end to end.)
func TestServedResultByteIdenticalToCLI(t *testing.T) {
	dir := t.TempDir()
	cc, err := bistpath.NewCache(bistpath.CacheOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Options{Cache: cc})
	for _, name := range bistpath.BenchmarkNames() {
		id := submitBenchmark(t, ts, name)
		if view := waitJob(t, ts, id); view.Status != StatusDone {
			t.Fatalf("%s: %s (%s)", name, view.Status, view.Error)
		}
		_, served := getJSON(t, ts.URL+"/v1/jobs/"+id+"/result")

		// The CLI path: a fresh cache over the same directory, default
		// config, Result.JSON() plus fmt.Println's newline.
		cli, err := bistpath.NewCache(bistpath.CacheOptions{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		d, mods, err := bistpath.Benchmark(name)
		if err != nil {
			t.Fatal(err)
		}
		cfg := bistpath.DefaultConfig()
		cfg.Cache = cli
		res, err := d.Synthesize(mods, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Stats.CacheHit {
			t.Fatalf("%s: CLI-side run missed the shared disk cache", name)
		}
		doc, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		want := append(doc, '\n')
		if !bytes.Equal(served, want) {
			t.Errorf("%s: served result differs from CLI output\nserved: %d bytes\ncli:    %d bytes", name, len(served), len(want))
		}
	}
}

// Late subscribers replay the full ordered history: subscribing after
// the job concluded yields the same golden skeleton and single terminal.
func TestSSEReplayAfterCompletion(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	id := submitBenchmark(t, ts, "paulin")
	waitJob(t, ts, id)
	for i := 0; i < 2; i++ { // replay is repeatable, not consumed
		events := readSSE(t, ts.URL+"/v1/jobs/"+id+"/events")
		if got := skeletonOf(t, events); !equalStrings(got, pipelineSkeleton) {
			t.Errorf("replay %d: skeleton = %v", i, got)
		}
		if n := countTerminals(events); n != 1 {
			t.Errorf("replay %d: %d terminal events", i, n)
		}
	}
}

// The service surface around jobs: list, benchmarks, health, metrics.
func TestServiceAncillaryEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	id := submitBenchmark(t, ts, "ex2")
	waitJob(t, ts, id)

	resp, body := getJSON(t, ts.URL+"/v1/jobs")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list: %d", resp.StatusCode)
	}
	var list struct {
		Jobs []jobJSON `json:"jobs"`
	}
	if err := json.Unmarshal(body, &list); err != nil || len(list.Jobs) != 1 || list.Jobs[0].ID != id {
		t.Fatalf("list = %s (err %v)", body, err)
	}

	resp, body = getJSON(t, ts.URL+"/v1/benchmarks")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "tseng1") {
		t.Fatalf("benchmarks: %d %s", resp.StatusCode, body)
	}

	resp, body = getJSON(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}

	resp, body = getJSON(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	var vars map[string]any
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("metrics not JSON: %v", err)
	}
	for _, key := range []string{"bistpathd.jobs_submitted", "bistpathd.jobs_done", "bistpath.syntheses"} {
		if _, ok := vars[key]; !ok {
			t.Errorf("metrics missing %q", key)
		}
	}

	if resp, _ := getJSON(t, ts.URL+"/v1/nope"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown route: %d, want 404", resp.StatusCode)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
