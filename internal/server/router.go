package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"expvar"
	"io"
	"net/http"

	"bistpath"
)

// buildHandler assembles the route table and the middleware stack:
//
//	request-id → recover → body-limit → { timeout(api) | sse }
//
// Request IDs sit outermost so the recovery middleware's 500 response
// can carry the ID of the request that panicked. The SSE endpoint sits
// outside the timeout wrapper (streams live until the job's terminal
// event) but inside recovery and request IDs.
func (s *Server) buildHandler() http.Handler {
	api := http.NewServeMux()
	api.HandleFunc("POST /v1/jobs", s.handleSubmit)
	api.HandleFunc("GET /v1/jobs", s.handleList)
	api.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	api.HandleFunc("PATCH /v1/jobs/{id}", s.handlePatch)
	api.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	api.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	api.HandleFunc("GET /v1/benchmarks", s.handleBenchmarks)
	api.Handle("GET /metrics", expvar.Handler())
	api.HandleFunc("GET /healthz", s.handleHealthz)
	api.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, r, &apiError{status: http.StatusNotFound, msg: "not found"})
	})

	root := http.NewServeMux()
	root.Handle("/", withTimeout(s.opts.Timeout, api))
	root.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	return withRequestID(withRecover(withBodyLimit(s.opts.MaxBody, root)))
}

// submitResponse is the 202 body: the job's initial view plus the
// resource links a client follows next.
type submitResponse struct {
	jobJSON
	Links map[string]string `json:"links"`
}

// readBody drains the (already limit-wrapped) request body, converting
// the limiter's error into the 413 apiError.
func readBody(r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, &apiError{status: http.StatusRequestEntityTooLarge,
				msg: "request body too large"}
		}
		return nil, &apiError{status: http.StatusBadRequest, msg: err.Error()}
	}
	return body, nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, r, &apiError{status: http.StatusServiceUnavailable, msg: "server is draining"})
		return
	}
	body, err := readBody(r)
	if err != nil {
		writeError(w, r, err)
		return
	}
	var req submitRequest
	if err := unmarshalStrict(body, &req); err != nil {
		writeError(w, r, &apiError{status: http.StatusBadRequest, msg: "bad request body: " + err.Error()})
		return
	}
	j, err := s.jobs.submit(req, clientKey(r))
	if err != nil {
		writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusAccepted, submitResponse{
		jobJSON: j.view(false),
		Links: map[string]string{
			"self":   "/v1/jobs/" + j.id,
			"events": "/v1/jobs/" + j.id + "/events",
			"result": "/v1/jobs/" + j.id + "/result",
		},
	})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.jobs.list()})
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) *job {
	j := s.jobs.get(r.PathValue("id"))
	if j == nil {
		writeError(w, r, &apiError{status: http.StatusNotFound, msg: "unknown job"})
	}
	return j
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	writeJSON(w, http.StatusOK, j.view(true))
}

// handleResult serves a completed job's Result.JSON() document plus the
// trailing newline — the exact bytes `bistpath synth -json` prints, so
// the cache's byte-identity guarantee extends to the wire. Jobs not
// (or never) completing answer 409 with their status view.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	doc, done := j.resultBytes()
	if !done {
		writeJSON(w, http.StatusConflict, j.view(false))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(doc)
	w.Write([]byte("\n"))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	j.cancel()
	writeJSON(w, http.StatusAccepted, j.view(false))
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	serveSSE(w, r, j.hub, s.opts.Heartbeat)
}

func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"benchmarks": bistpath.BenchmarkNames()})
}

// handleHealthz doubles as the readiness probe: a draining server
// answers 503 so load balancers stop routing new work to it while the
// in-flight jobs conclude.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// unmarshalStrict rejects unknown fields so a typo'd config key fails
// loudly instead of silently synthesizing with defaults.
func unmarshalStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}
