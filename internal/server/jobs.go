package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"bistpath"
)

// Status is a job's lifecycle state. Queued and Running are transient;
// Done, Failed and Canceled are terminal.
type Status string

// Job states, in lifecycle order.
const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusFailed   Status = "failed"
	StatusCanceled Status = "canceled"
)

// Terminal reports whether s is a final state.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled
}

// job is one submission's server-side record. The exported-ish view is
// jobJSON; result holds the exact Result.JSON() bytes so GET
// /v1/jobs/{id}/result can serve them unmodified.
type job struct {
	id        string
	design    string
	clientKey string // quota accounting key; "" for direct manager use
	root      string // lineage root job id; "" unless derived via PATCH
	created   time.Time
	hub       *hub
	cancel    context.CancelFunc
	done      chan struct{}

	// The resolved submission, retained so PATCH can seed an incremental
	// session from it; ref is the session lineage this job belongs to
	// (created lazily on the first PATCH, shared with every derived job).
	d    *bistpath.DFG
	mods map[string]string
	cfg  bistpath.Config
	ref  *sessionRef

	mu       sync.Mutex
	status   Status
	result   []byte
	errMsg   string
	errPhase string
	cacheHit bool
}

// rootID names the job's session lineage: the originally POSTed job.
func (j *job) rootID() string {
	if j.root != "" {
		return j.root
	}
	return j.id
}

// jobJSON is the wire form of a job's status. Result is the raw
// Result.JSON() document (done jobs only, and only where the handler
// asks for it).
type jobJSON struct {
	ID     string `json:"id"`
	Design string `json:"design"`
	Status Status `json:"status"`
	// Root names the originally POSTed job of this session lineage; set
	// only on jobs derived via PATCH /v1/jobs/{id}.
	Root     string          `json:"root,omitempty"`
	CacheHit bool            `json:"cache_hit,omitempty"`
	Error    string          `json:"error,omitempty"`
	Phase    string          `json:"phase,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
}

// view snapshots the job for serialization.
func (j *job) view(includeResult bool) jobJSON {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := jobJSON{
		ID:       j.id,
		Design:   j.design,
		Status:   j.status,
		Root:     j.root,
		CacheHit: j.cacheHit,
		Error:    j.errMsg,
		Phase:    j.errPhase,
	}
	if includeResult && j.status == StatusDone {
		v.Result = json.RawMessage(j.result)
	}
	return v
}

// resultBytes returns the served result document and whether the job is
// done.
func (j *job) resultBytes() ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusDone {
		return nil, false
	}
	return j.result, true
}

// manager owns every job record and multiplexes submissions onto the
// server's shared pool and cache. One goroutine per job carries it
// queued → running → terminal; drain stops admissions and then waits
// for (or cancels) the in-flight goroutines via wg.
type manager struct {
	srv *Server

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string       // insertion order, for eviction of old terminal jobs
	clients  map[string]int // non-terminal jobs per client key (quota accounting)
	draining bool
	wg       sync.WaitGroup
}

func newManager(s *Server) *manager {
	return &manager{srv: s, jobs: make(map[string]*job), clients: make(map[string]int)}
}

// admitLocked performs the shared admission step under m.mu: refuse
// while draining, enforce the per-client quota, then register the job
// and account it to its client. The caller publishes the queued event
// and starts the job goroutine after unlocking.
func (m *manager) admitLocked(j *job, client string) error {
	if m.draining {
		return &apiError{status: http.StatusServiceUnavailable, msg: "server is draining"}
	}
	if max := m.srv.opts.MaxJobsPerClient; max > 0 && client != "" && m.clients[client] >= max {
		expJobsQuotaRejected.Add(1)
		return &apiError{
			status:     http.StatusTooManyRequests,
			msg:        fmt.Sprintf("client has %d jobs in flight (limit %d); retry when one concludes", m.clients[client], max),
			retryAfter: 1,
		}
	}
	j.id = newID("j")
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	m.evictLocked()
	if client != "" {
		m.clients[client]++
	}
	m.wg.Add(1)
	return nil
}

// releaseClient returns one quota slot when a job goes terminal.
func (m *manager) releaseClient(key string) {
	if key == "" {
		return
	}
	m.mu.Lock()
	if m.clients[key] > 1 {
		m.clients[key]--
	} else {
		delete(m.clients, key)
	}
	m.mu.Unlock()
}

// submitRequest is the POST /v1/jobs body. Exactly one of Benchmark and
// DFG must be set; Modules and Config are optional.
type submitRequest struct {
	// Benchmark names a built-in DAC'95 design (see GET /v1/benchmarks).
	Benchmark string `json:"benchmark,omitempty"`
	// DFG is a design in the textual DFG format accepted by
	// bistpath.ParseDFG. It must already be scheduled.
	DFG string `json:"dfg,omitempty"`
	// Modules maps op names to module names (DFG submissions only; nil
	// selects automatic area-driven binding).
	Modules map[string]string `json:"modules,omitempty"`
	// Config overrides individual synthesis settings; omitted fields
	// take the bistpath.DefaultConfig() values, so a bare benchmark
	// submission matches `bistpath synth -bench NAME -json` exactly.
	Config *configRequest `json:"config,omitempty"`
}

type configRequest struct {
	Width            *int    `json:"width,omitempty"`
	Mode             *string `json:"mode,omitempty"` // "testable" | "traditional"
	Workers          *int    `json:"workers,omitempty"`
	MinimizeSessions *bool   `json:"minimize_sessions,omitempty"`
}

// resolve validates the submission synchronously and returns the design
// plus its config. Validation failures come back as 422 apiErrors
// carrying the validate-phase attribution, exactly as a SynthesisError
// from the pipeline's own validate phase would.
func (r *submitRequest) resolve() (*bistpath.DFG, map[string]string, bistpath.Config, error) {
	cfg := bistpath.DefaultConfig()
	var d *bistpath.DFG
	var mods map[string]string
	switch {
	case r.Benchmark != "" && r.DFG != "":
		return nil, nil, cfg, validationError("use either benchmark or dfg, not both")
	case r.Benchmark != "":
		var err error
		d, mods, err = bistpath.Benchmark(r.Benchmark)
		if err != nil {
			return nil, nil, cfg, validationError(err.Error())
		}
		if r.Modules != nil {
			return nil, nil, cfg, validationError("modules cannot override a benchmark's binding")
		}
	case r.DFG != "":
		var err error
		d, err = bistpath.ParseDFG(r.DFG)
		if err != nil {
			return nil, nil, cfg, validationError(err.Error())
		}
		if err := d.Validate(); err != nil {
			return nil, nil, cfg, validationError(err.Error())
		}
		mods = r.Modules
	default:
		return nil, nil, cfg, validationError("need benchmark or dfg")
	}
	if c := r.Config; c != nil {
		if c.Width != nil {
			if *c.Width < 1 || *c.Width > 64 {
				return nil, nil, cfg, validationError(fmt.Sprintf("width %d out of range [1,64]", *c.Width))
			}
			cfg.Width = *c.Width
		}
		if c.Mode != nil {
			switch *c.Mode {
			case "testable":
			case "traditional":
				cfg.Mode = bistpath.TraditionalHLS
			default:
				return nil, nil, cfg, validationError(fmt.Sprintf("unknown mode %q", *c.Mode))
			}
		}
		if c.Workers != nil {
			if *c.Workers < 0 || *c.Workers > 64 {
				return nil, nil, cfg, validationError(fmt.Sprintf("workers %d out of range [0,64]", *c.Workers))
			}
			cfg.Workers = *c.Workers
		}
		if c.MinimizeSessions != nil {
			cfg.MinimizeSessions = *c.MinimizeSessions
		}
	}
	return d, mods, cfg, nil
}

func validationError(msg string) error {
	return &apiError{status: http.StatusUnprocessableEntity, msg: msg,
		phase: bistpath.PhaseValidate.String()}
}

// submit admits one job: synchronous validation, registration, queued
// event, then a goroutine that carries it to a terminal state. During a
// drain, submissions are refused with 503.
func (m *manager) submit(req submitRequest, client string) (*job, error) {
	d, mods, cfg, err := req.resolve()
	if err != nil {
		return nil, err
	}

	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		design:    d.Name(),
		clientKey: client,
		created:   time.Now(),
		hub:       newHub(),
		cancel:    cancel,
		done:      make(chan struct{}),
		status:    StatusQueued,
		d:         d,
		mods:      mods,
		cfg:       cfg,
	}

	m.mu.Lock()
	if err := m.admitLocked(j, client); err != nil {
		m.mu.Unlock()
		cancel()
		return nil, err
	}
	m.mu.Unlock()

	expJobsSubmitted.Add(1)
	j.hub.publishLifecycle(string(StatusQueued), j.id, j.design, false)
	go m.run(ctx, j, d, mods, cfg)
	return j, nil
}

// run is the per-job goroutine: wait for a pool slot, synthesize with
// the hub as observer and the shared cache attached, then conclude with
// exactly one terminal transition.
func (m *manager) run(ctx context.Context, j *job, d *bistpath.DFG, mods map[string]string, cfg bistpath.Config) {
	defer m.wg.Done()
	if err := m.srv.pool.Acquire(ctx); err != nil {
		m.finish(j, bistpath.BatchResult{Name: j.design, Err: err})
		return
	}
	cfg.Observer = j.hub.observe
	cfg.Cache = m.srv.cache
	var br bistpath.BatchResult
	func() {
		defer m.srv.pool.Release()
		j.setStatus(StatusRunning)
		j.hub.publishLifecycle(string(StatusRunning), j.id, j.design, false)
		if hook := m.srv.testHook; hook != nil {
			if err := hook(ctx, j.design); err != nil {
				br = bistpath.BatchResult{Name: j.design, Err: err}
				return
			}
		}
		br = bistpath.RunJob(ctx, bistpath.Job{Name: j.design, DFG: d, Modules: mods, Config: cfg})
	}()
	m.finish(j, br)
}

func (j *job) setStatus(s Status) {
	j.mu.Lock()
	j.status = s
	j.mu.Unlock()
}

// finish records the outcome and publishes the single terminal event.
// The per-job cancel func is always released here.
func (m *manager) finish(j *job, br bistpath.BatchResult) {
	defer j.cancel()
	j.mu.Lock()
	switch {
	case br.Err == nil:
		doc, err := br.Result.JSON()
		if err != nil {
			j.status = StatusFailed
			j.errMsg = fmt.Sprintf("encoding result: %v", err)
		} else {
			j.status = StatusDone
			j.result = doc
			j.cacheHit = br.Result.Stats.CacheHit
		}
	case errors.Is(br.Err, context.Canceled) || errors.Is(br.Err, context.DeadlineExceeded):
		j.status = StatusCanceled
		j.errMsg = br.Err.Error()
	default:
		j.status = StatusFailed
		j.errMsg = br.Err.Error()
		var se *bistpath.SynthesisError
		if errors.As(br.Err, &se) {
			j.errPhase = se.Phase.String()
		}
	}
	status, cacheHit, errMsg, errPhase := j.status, j.cacheHit, j.errMsg, j.errPhase
	j.mu.Unlock()
	close(j.done)
	m.releaseClient(j.clientKey)

	switch status {
	case StatusDone:
		expJobsDone.Add(1)
	case StatusCanceled:
		expJobsCanceled.Add(1)
	default:
		expJobsFailed.Add(1)
	}
	j.hub.publishTerminal(string(status), terminalJSON{
		ID:       j.id,
		Design:   j.design,
		Status:   status,
		CacheHit: cacheHit,
		Error:    errMsg,
		Phase:    errPhase,
	})
}

// terminalJSON is the data payload of a terminal SSE event.
type terminalJSON struct {
	ID       string `json:"id"`
	Design   string `json:"design"`
	Status   Status `json:"status"`
	CacheHit bool   `json:"cache_hit,omitempty"`
	Error    string `json:"error,omitempty"`
	Phase    string `json:"phase,omitempty"`
}

// get returns a job by ID, or nil.
func (m *manager) get(id string) *job {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.jobs[id]
}

// list snapshots every retained job, oldest first.
func (m *manager) list() []jobJSON {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		if j := m.jobs[id]; j != nil {
			jobs = append(jobs, j)
		}
	}
	m.mu.Unlock()
	out := make([]jobJSON, len(jobs))
	for i, j := range jobs {
		out[i] = j.view(false)
	}
	return out
}

// evictLocked drops the oldest terminal jobs while the retention bound
// is exceeded. Transient jobs are skipped: a running synthesis is never
// evicted, so the map can transiently exceed MaxJobs under load.
func (m *manager) evictLocked() {
	max := m.srv.opts.MaxJobs
	if len(m.jobs) <= max {
		return
	}
	kept := m.order[:0]
	for i, id := range m.order {
		j := m.jobs[id]
		if j == nil {
			continue
		}
		if len(m.jobs) > max && terminalNow(j) {
			delete(m.jobs, id)
			expJobsEvicted.Add(1)
			continue
		}
		kept = append(kept, m.order[i])
	}
	m.order = kept
}

func terminalNow(j *job) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status.Terminal()
}

// startDrain stops admissions; queued and running jobs continue.
func (m *manager) startDrain() {
	m.mu.Lock()
	m.draining = true
	m.mu.Unlock()
}

// wait blocks until every admitted job has reached a terminal state.
func (m *manager) wait() { m.wg.Wait() }

// cancelAll cancels every job context; running syntheses abort at the
// next phase boundary and conclude as canceled.
func (m *manager) cancelAll() {
	m.mu.Lock()
	jobs := make([]*job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	for _, j := range jobs {
		j.cancel()
	}
}
