package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"bistpath"
)

// stormVariants are the distinct synthesis inputs the storm mixes. Every
// submitter cycles through them, so most submissions are duplicates of
// an earlier one — which is exactly what the shared cache's singleflight
// must coalesce.
var stormVariants = []string{
	`{"benchmark":"ex1"}`,
	`{"benchmark":"ex2"}`,
	`{"benchmark":"tseng1"}`,
	`{"benchmark":"tseng2"}`,
	`{"benchmark":"paulin"}`,
	`{"benchmark":"ex1","config":{"width":8}}`,
	`{"benchmark":"ex2","config":{"mode":"traditional"}}`,
	`{"benchmark":"paulin","config":{"minimize_sessions":true}}`,
}

// The race/soak storm: many submitters mixing identical and distinct
// jobs, subscribers attaching and detaching mid-flight, a drain partway
// through, and a goroutine-leak check at the end. Run with -race.
func TestServiceStorm(t *testing.T) {
	settleGoroutines(t, 0) // flush leftovers from earlier tests
	baseline := runtime.NumGoroutine()

	cc, err := bistpath.NewCache(bistpath.CacheOptions{})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Options{Workers: 4, Cache: cc, Heartbeat: 20 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	client := ts.Client()

	const (
		submitters = 12
		rounds     = 3
	)
	var (
		mu       sync.Mutex
		ids      []string
		refused  int
		subWG    sync.WaitGroup
		submitWG sync.WaitGroup
	)

	// subscribe attaches an SSE client to the job. Odd subscribers
	// detach mid-flight by cancelling their request context; even ones
	// read the stream to its terminal event.
	subscribe := func(id string, detach bool) {
		defer subWG.Done()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/jobs/"+id+"/events", nil)
		resp, err := client.Do(req)
		if err != nil {
			return // detached before headers; fine under storm conditions
		}
		defer resp.Body.Close()
		if detach {
			buf := make([]byte, 256)
			resp.Body.Read(buf)
			cancel() // walk away mid-stream
			return
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Errorf("subscriber %s: %v", id, err)
			return
		}
		if n := strings.Count(string(body), "event: done") +
			strings.Count(string(body), "event: failed") +
			strings.Count(string(body), "event: canceled"); n != 1 {
			t.Errorf("subscriber %s: %d terminal events in stream", id, n)
		}
	}

	for i := 0; i < submitters; i++ {
		submitWG.Add(1)
		go func(i int) {
			defer submitWG.Done()
			for k := 0; k < rounds; k++ {
				payload := stormVariants[(i*rounds+k)%len(stormVariants)]
				resp, err := client.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(payload))
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusServiceUnavailable {
					mu.Lock()
					refused++
					mu.Unlock()
					return // the drain has begun; stop submitting
				}
				if resp.StatusCode != http.StatusAccepted {
					t.Errorf("submit: status %d, body %s", resp.StatusCode, body)
					return
				}
				var sub submitResponse
				if err := json.Unmarshal(body, &sub); err != nil {
					t.Errorf("submit response: %v", err)
					return
				}
				mu.Lock()
				ids = append(ids, sub.ID)
				mu.Unlock()
				subWG.Add(2)
				go subscribe(sub.ID, false)
				go subscribe(sub.ID, true)
			}
		}(i)
	}

	// Drain partway: wait until a decent batch is in flight, then pull
	// the plug with a generous deadline so in-flight jobs finish
	// naturally rather than being cancelled.
	for {
		mu.Lock()
		n := len(ids)
		mu.Unlock()
		if n >= submitters {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	dctx, dcancel := context.WithTimeout(context.Background(), 60*time.Second)
	if err := srv.Drain(dctx); err != nil {
		t.Errorf("drain: %v", err)
	}
	dcancel()
	submitWG.Wait()
	subWG.Wait()

	// Everything admitted before the drain reached a terminal state.
	mu.Lock()
	admitted := append([]string(nil), ids...)
	mu.Unlock()
	for _, id := range admitted {
		resp, body := getJSON(t, ts.URL+"/v1/jobs/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll %s: %d", id, resp.StatusCode)
		}
		var v jobJSON
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		if !v.Status.Terminal() {
			t.Errorf("job %s still %s after drain", id, v.Status)
		}
		if v.Status == StatusFailed {
			t.Errorf("job %s failed: %s", id, v.Error)
		}
	}

	// Duplicate submissions coalesced: the cache synthesized each
	// distinct input at most once, no matter how many times it was
	// submitted concurrently.
	if m := cc.Stats().Misses; m > int64(len(stormVariants)) {
		t.Errorf("cache misses = %d, want ≤ %d distinct inputs (stats: %v)",
			m, len(stormVariants), cc.Stats())
	}
	if len(admitted) > len(stormVariants) && cc.Stats().Hits+cc.Stats().Coalesced == 0 {
		t.Errorf("no cache hits across %d submissions of %d distinct inputs",
			len(admitted), len(stormVariants))
	}
	t.Logf("storm: %d admitted, %d refused by drain, cache %v", len(admitted), refused, cc.Stats())

	// A drained server still answers polls but refuses new work.
	resp, _ := client.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{"benchmark":"ex1"}`))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain submit: status %d, want 503", resp.StatusCode)
	}

	// No leaked goroutines: tear the transport down and wait for the
	// count to settle back to the pre-storm baseline.
	client.CloseIdleConnections()
	ts.Close()
	settleGoroutines(t, baseline)
}

// settleGoroutines waits for the goroutine count to drop to the given
// baseline (plus a little slack for runtime helpers). A count that never
// settles is a leak: some job, subscriber or handler goroutine outlived
// the drain.
func settleGoroutines(t testing.TB, baseline int) {
	t.Helper()
	const slack = 3
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines did not settle: %d > baseline %d + %d\n%s",
				n, baseline, slack, buf)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Identical jobs submitted at the same instant coalesce onto one
// synthesis: a tighter, deterministic version of the storm's
// singleflight assertion.
func TestDuplicateSubmissionsCoalesce(t *testing.T) {
	cc, err := bistpath.NewCache(bistpath.CacheOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Options{Workers: 8, Cache: cc})

	const dupes = 8
	var wg sync.WaitGroup
	ids := make([]string, dupes)
	for i := 0; i < dupes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids[i] = submitBenchmark(t, ts, "tseng2")
		}(i)
	}
	wg.Wait()
	for _, id := range ids {
		if v := waitJob(t, ts, id); v.Status != StatusDone {
			t.Fatalf("job %s: %s (%s)", id, v.Status, v.Error)
		}
	}
	if m := cc.Stats().Misses; m != 1 {
		t.Errorf("cache misses = %d, want 1 for %d identical submissions (stats: %v)",
			m, dupes, cc.Stats())
	}

	// Every duplicate serves the same bytes.
	_, first := getJSON(t, ts.URL+"/v1/jobs/"+ids[0]+"/result")
	for _, id := range ids[1:] {
		_, doc := getJSON(t, ts.URL+"/v1/jobs/"+id+"/result")
		if string(doc) != string(first) {
			t.Errorf("job %s served different bytes than its duplicate", id)
		}
	}
}

// A slow SSE consumer loses oldest pending events but the stream stays
// ordered and still ends with the terminal event; the drop count is
// accounted. Exercises the bounded-buffer path directly at the hub layer
// (an HTTP client can't reliably be made slow enough in a unit test).
func TestHubSlowSubscriberDrops(t *testing.T) {
	h := newHub()
	sub := h.subscribe()
	defer h.unsubscribe(sub)
	for i := 0; i < subBufferCap+50; i++ {
		h.publish("search-progress", map[string]int{"n": i}, false, false)
	}
	h.publishTerminal(string(StatusDone), terminalJSON{Status: StatusDone})

	evs, dropped := sub.drain()
	if dropped != 51 { // overflow of cap+50 progress ticks + 1 terminal
		t.Errorf("dropped = %d, want 51", dropped)
	}
	if len(evs) != subBufferCap {
		t.Errorf("queued = %d, want %d", len(evs), subBufferCap)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].seq <= evs[i-1].seq {
			t.Fatalf("stream out of order at %d: %d after %d", i, evs[i].seq, evs[i-1].seq)
		}
	}
	if last := evs[len(evs)-1]; !last.terminal {
		t.Errorf("last surviving event is %q, want the terminal", last.name)
	}

	// The hub is closed: publishing after the terminal is a no-op.
	h.publish("phase-start", nil, true, false)
	if evs, _ := sub.drain(); len(evs) != 0 {
		t.Errorf("%d events accepted after the terminal", len(evs))
	}

	// A post-mortem subscriber replays only the bounded replayable
	// history (progress ticks were never replayable) ending in the
	// terminal.
	late := h.subscribe()
	defer h.unsubscribe(late)
	evs, _ = late.drain()
	if len(evs) != 1 || !evs[0].terminal {
		t.Errorf("late replay = %d events, want just the terminal", len(evs))
	}
}

// Concurrent observers and subscribers under -race: one hub hammered
// from many goroutines while subscribers churn.
func TestHubConcurrency(t *testing.T) {
	h := newHub()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				h.observe(bistpath.Event{Design: "d", Kind: bistpath.SearchProgress,
					Phase: bistpath.PhaseBISTSearch, SearchNodes: int64(w*1000 + i)})
			}
		}(w)
	}
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sub := h.subscribe()
				sub.drain()
				h.unsubscribe(sub)
			}
		}()
	}
	wg.Wait()
	h.publishTerminal(string(StatusDone), terminalJSON{Status: StatusDone})
	sub := h.subscribe()
	defer h.unsubscribe(sub)
	evs, _ := sub.drain()
	if len(evs) != 1 || evs[0].name != string(StatusDone) {
		t.Fatalf("replay after churn = %+v, want one done event", evs)
	}
}
