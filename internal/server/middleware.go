package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// apiError is the service's typed error: an HTTP status, a message, and
// (for synthesis validation failures) the pipeline phase attribution
// carried onto the wire, mirroring bistpath.SynthesisError.
type apiError struct {
	status int
	msg    string
	phase  string
	// retryAfter, when > 0, is sent as a Retry-After header (seconds) —
	// the per-client quota uses it to tell well-behaved clients when to
	// come back.
	retryAfter int
}

func (e *apiError) Error() string { return e.msg }

// errorJSON is the wire form of every error response.
type errorJSON struct {
	Error     string `json:"error"`
	Phase     string `json:"phase,omitempty"`
	RequestID string `json:"request_id,omitempty"`
	Status    int    `json:"status"`
}

// writeJSON renders v with a trailing newline (friendly to curl).
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError renders an apiError (anything else becomes a 500) with the
// request ID, so a failure in a log line is matchable to a response.
func writeError(w http.ResponseWriter, r *http.Request, err error) {
	ae, ok := err.(*apiError)
	if !ok {
		ae = &apiError{status: http.StatusInternalServerError, msg: err.Error()}
	}
	if ae.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(ae.retryAfter))
	}
	writeJSON(w, ae.status, errorJSON{
		Error:     ae.msg,
		Phase:     ae.phase,
		RequestID: RequestID(r),
		Status:    ae.status,
	})
}

type ctxKey int

const requestIDKey ctxKey = iota

// RequestID returns the request's ID (from the middleware), or "".
func RequestID(r *http.Request) string {
	id, _ := r.Context().Value(requestIDKey).(string)
	return id
}

// newID returns a short random identifier with the given prefix.
func newID(prefix string) string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; fall back to a
		// time-derived suffix rather than aborting the request.
		return fmt.Sprintf("%s-%012x", prefix, time.Now().UnixNano())
	}
	return prefix + "-" + hex.EncodeToString(b[:])
}

// withRequestID accepts a sane client-provided X-Request-ID or mints one,
// reflects it in the response header, and stores it in the context.
func withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" || len(id) > 64 {
			id = newID("r")
		}
		w.Header().Set("X-Request-ID", id)
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), requestIDKey, id)))
	})
}

// statusWriter tracks whether the response has started, so the recovery
// middleware knows whether a clean 500 is still possible. It forwards
// Flush so SSE streaming survives the wrapping.
type statusWriter struct {
	http.ResponseWriter
	wrote bool
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.wrote = true
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	sw.wrote = true
	return sw.ResponseWriter.Write(b)
}

func (sw *statusWriter) Flush() {
	if fl, ok := sw.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// withRecover converts a handler panic into a 500 carrying the request
// ID; the connection's goroutine survives, so the server keeps serving.
// http.ErrAbortHandler (client went away mid-stream) passes through as
// the net/http package expects.
func withRecover(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			if p == http.ErrAbortHandler {
				panic(p)
			}
			expHandlerPanics.Add(1)
			if !sw.wrote {
				writeError(sw, r, &apiError{status: http.StatusInternalServerError,
					msg: "internal server error"})
			}
		}()
		next.ServeHTTP(sw, r)
	})
}

// withBodyLimit caps every request body; a handler reading past the cap
// sees *http.MaxBytesError and responds 413.
func withBodyLimit(n int64, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, n)
		}
		next.ServeHTTP(w, r)
	})
}

// withTimeout bounds non-streaming handlers. The timeout body matches
// the service's error JSON shape (http.TimeoutHandler writes it
// verbatim with a 503).
func withTimeout(d time.Duration, next http.Handler) http.Handler {
	body, _ := json.Marshal(errorJSON{Error: "request timed out", Status: http.StatusServiceUnavailable})
	return http.TimeoutHandler(next, d, string(body))
}
