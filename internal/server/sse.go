package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"bistpath"
)

const (
	// subBufferCap bounds each subscriber's pending-event queue. A
	// subscriber that cannot drain fast enough loses the oldest pending
	// events (counted, and reported in-stream as a comment) instead of
	// back-pressuring the synthesis or the other subscribers.
	subBufferCap = 128
	// replayCap bounds the per-job replayable history handed to late
	// subscribers. Lifecycle, phase and terminal events are replayable;
	// a job produces a couple dozen of them at most, so the cap only
	// guards against pathological inputs.
	replayCap = 256
)

// wireEvent is one rendered SSE frame: a monotonically increasing id, an
// event name, and a JSON data payload.
type wireEvent struct {
	seq      int64
	name     string
	data     []byte
	terminal bool
}

// hub fans one job's event stream out to any number of SSE subscribers.
// Publishing never blocks: each subscriber owns a bounded queue with
// drop-oldest overflow. Replayable events (lifecycle, phases, cache-hit,
// terminal) are kept so a subscriber attaching mid-flight — or after the
// job concluded — still sees the ordered history ending in exactly one
// terminal event. SearchProgress ticks are ephemeral: live subscribers
// only.
type hub struct {
	mu     sync.Mutex
	seq    int64
	replay []wireEvent
	subs   map[*subscriber]struct{}
	closed bool // terminal published; all later publishes are dropped
}

func newHub() *hub {
	return &hub{subs: make(map[*subscriber]struct{})}
}

// publish renders and delivers one event. After the terminal event the
// hub is closed: nothing further is accepted, which is what makes the
// "exactly one terminal event" stream contract hold no matter how the
// job concluded.
func (h *hub) publish(name string, payload any, replayable, terminal bool) {
	data, err := json.Marshal(payload)
	if err != nil {
		data = []byte(`{}`)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.seq++
	ev := wireEvent{seq: h.seq, name: name, data: data, terminal: terminal}
	if replayable || terminal {
		if len(h.replay) >= replayCap {
			copy(h.replay, h.replay[1:])
			h.replay = h.replay[:replayCap-1]
		}
		h.replay = append(h.replay, ev)
	}
	for sub := range h.subs {
		sub.enqueue(ev)
	}
	if terminal {
		h.closed = true
	}
}

// lifecycleJSON is the data payload of queued/running events.
type lifecycleJSON struct {
	ID     string `json:"id"`
	Design string `json:"design"`
}

func (h *hub) publishLifecycle(name, id, design string, terminal bool) {
	h.publish(name, lifecycleJSON{ID: id, Design: design}, true, terminal)
}

func (h *hub) publishTerminal(name string, payload terminalJSON) {
	h.publish(name, payload, true, true)
}

// observerJSON is the data payload of forwarded bistpath.Event values.
type observerJSON struct {
	Design      string `json:"design"`
	Phase       string `json:"phase,omitempty"`
	ElapsedNS   int64  `json:"elapsed_ns,omitempty"`
	SearchNodes int64  `json:"search_nodes,omitempty"`
}

// observe is the job's Config.Observer: it forwards synthesis events to
// the stream under the library's own event-kind names. It is called
// concurrently from search workers, which the hub lock absorbs.
func (h *hub) observe(e bistpath.Event) {
	p := observerJSON{Design: e.Design}
	switch e.Kind {
	case bistpath.PhaseStart, bistpath.PhaseEnd:
		p.Phase = e.Phase.String()
		p.ElapsedNS = int64(e.Elapsed)
	case bistpath.SearchProgress:
		p.Phase = e.Phase.String()
		p.SearchNodes = e.SearchNodes
	}
	// SearchProgress ticks can arrive in the thousands for big searches;
	// they are live-only so replay stays a bounded, ordered skeleton.
	replayable := e.Kind != bistpath.SearchProgress
	h.publish(e.Kind.String(), p, replayable, false)
}

// subscriber is one attached SSE client. enqueue is called under the hub
// lock; drain is called by the client's serve loop.
type subscriber struct {
	mu      sync.Mutex
	queue   []wireEvent
	dropped int64
	notify  chan struct{}
}

func (s *subscriber) enqueue(ev wireEvent) {
	s.mu.Lock()
	if len(s.queue) >= subBufferCap {
		copy(s.queue, s.queue[1:])
		s.queue = s.queue[:subBufferCap-1]
		s.dropped++
		expSSEDropped.Add(1)
	}
	s.queue = append(s.queue, ev)
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// drain takes the pending events and the drop count accumulated since
// the last call.
func (s *subscriber) drain() ([]wireEvent, int64) {
	s.mu.Lock()
	evs := s.queue
	s.queue = nil
	d := s.dropped
	s.dropped = 0
	s.mu.Unlock()
	return evs, d
}

// subscribe registers a new client, preloading the replayable history so
// its stream starts with the job's ordered past.
func (h *hub) subscribe() *subscriber {
	sub := &subscriber{notify: make(chan struct{}, 1)}
	h.mu.Lock()
	for _, ev := range h.replay {
		sub.enqueue(ev)
	}
	h.subs[sub] = struct{}{}
	h.mu.Unlock()
	expSSESubscribers.Add(1)
	return sub
}

func (h *hub) unsubscribe(sub *subscriber) {
	h.mu.Lock()
	delete(h.subs, sub)
	h.mu.Unlock()
	expSSESubscribers.Add(-1)
}

// serveSSE streams a job's events until its terminal event has been
// written, the client disconnects, or the response stops accepting
// writes. Slow-consumer drops surface in-stream as a comment frame so a
// client knows its view has gaps.
func serveSSE(w http.ResponseWriter, r *http.Request, h *hub, heartbeat time.Duration) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, r, &apiError{status: http.StatusInternalServerError,
			msg: "streaming unsupported by this connection"})
		return
	}
	hdr := w.Header()
	hdr.Set("Content-Type", "text/event-stream")
	hdr.Set("Cache-Control", "no-cache")
	hdr.Set("Connection", "keep-alive")
	hdr.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	sub := h.subscribe()
	defer h.unsubscribe(sub)
	ticker := time.NewTicker(heartbeat)
	defer ticker.Stop()
	for {
		evs, dropped := sub.drain()
		if dropped > 0 {
			fmt.Fprintf(w, ": dropped %d events (slow consumer)\n\n", dropped)
		}
		terminal := false
		for _, ev := range evs {
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.seq, ev.name, ev.data); err != nil {
				return
			}
			terminal = terminal || ev.terminal
		}
		if len(evs) > 0 || dropped > 0 {
			fl.Flush()
		}
		if terminal {
			return
		}
		select {
		case <-sub.notify:
		case <-ticker.C:
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}
