package server

import "context"

// Drain runs the graceful-shutdown state machine:
//
//	serving ──Drain()──▶ draining ──all jobs terminal──▶ drained
//	                        │
//	                        └──ctx deadline──▶ canceling ──▶ drained
//
// Entering draining: new submissions answer 503 and /healthz flips to
// 503 (readiness off), while polls, result fetches and SSE streams keep
// being served — in-flight jobs run to completion and their subscribers
// receive the full stream.
//
// If ctx expires first, every remaining job context is cancelled; the
// branch and bound polls its context, so each job concludes promptly
// with a `canceled` terminal event rather than being abandoned
// mid-search. Drain still waits for those conclusions: when it returns,
// every admitted job has reached a terminal state and published its
// terminal event, so SSE streams end by themselves and the caller's
// http.Server.Shutdown observes the handlers finishing.
//
// Returns nil when all jobs finished naturally, or ctx.Err() when the
// deadline forced cancellation. Drain is idempotent; concurrent calls
// all wait for the same conclusion.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.jobs.startDrain()
	done := make(chan struct{})
	go func() {
		s.jobs.wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.jobs.cancelAll()
		<-done
		return ctx.Err()
	}
}
