package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// ex1Text is the Table II running example in the textual DFG format,
// parameterized by mul2's control step so tests can submit the edited
// design cold and compare it byte-for-byte against a PATCH result.
func ex1Text(mul2Step int) string {
	return fmt.Sprintf(`dfg ex1
input a b e g
op add1 + a b -> d @1
op mul1 * e g -> c @2
op add2 + c d -> f @3
op mul2 * f g -> h @%d
output h
`, mul2Step)
}

const ex1Modules = `{"add1":"M1","add2":"M1","mul1":"M2","mul2":"M2"}`

// submitDFG posts a raw DFG job and waits for it to complete.
func submitDFG(t *testing.T, ts *httptest.Server, text string) string {
	t.Helper()
	resp, body := postJSON(t, ts.URL+"/v1/jobs",
		fmt.Sprintf(`{"dfg":%q,"modules":%s}`, text, ex1Modules))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", resp.StatusCode, body)
	}
	var sub submitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	if v := waitJob(t, ts, sub.ID); v.Status != StatusDone {
		t.Fatalf("job %s concluded %s: %s", sub.ID, v.Status, v.Error)
	}
	return sub.ID
}

// patchJob PATCHes id with the edit document and returns the response.
func patchJob(t *testing.T, ts *httptest.Server, id, edits string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPatch, ts.URL+"/v1/jobs/"+id, strings.NewReader(edits))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// patchDone PATCHes and waits for the derived job, asserting it lands
// Done with the root lineage recorded. Returns the derived job's id.
func patchDone(t *testing.T, ts *httptest.Server, id, root, edits string) string {
	t.Helper()
	resp, body := patchJob(t, ts, id, edits)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("PATCH %s: status %d, body %s", id, resp.StatusCode, body)
	}
	var sub submitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.Root != root {
		t.Fatalf("derived job root = %q, want %q", sub.Root, root)
	}
	if v := waitJob(t, ts, sub.ID); v.Status != StatusDone {
		t.Fatalf("derived job %s concluded %s: %s", sub.ID, v.Status, v.Error)
	}
	return sub.ID
}

func resultDoc(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, body := getJSON(t, ts.URL+"/v1/jobs/"+id+"/result")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result %s: status %d, body %s", id, resp.StatusCode, body)
	}
	return body
}

// stripStats removes the wall-time stats block: two separately timed
// runs can never agree on *_ns fields, so the wire identity contract —
// like the library's differential tests — is over everything else.
func stripStats(t *testing.T, doc []byte) []byte {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(doc, &m); err != nil {
		t.Fatalf("result document does not parse: %v", err)
	}
	delete(m, "stats")
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestPatchIncrementalByteIdentity is the wire form of the session
// byte-identity contract: a job PATCHed with a step edit must serve the
// exact bytes a cold submission of the identically edited design
// serves, and PATCHing the edit back must reproduce the original job's
// document.
func TestPatchIncrementalByteIdentity(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})

	base := submitDFG(t, ts, ex1Text(4))
	coldEdited := submitDFG(t, ts, ex1Text(5))

	edited := patchDone(t, ts, base, base,
		`{"edits":[{"kind":"set_step","op":"mul2","step":5}]}`)
	if got, want := stripStats(t, resultDoc(t, ts, edited)), stripStats(t, resultDoc(t, ts, coldEdited)); !bytes.Equal(got, want) {
		t.Errorf("PATCH result diverges from cold synthesis of the edited design\n--- patched ---\n%s\n--- cold ---\n%s", got, want)
	}

	// Undo via a second PATCH on the derived job: the session lineage
	// continues, and the document must match the original job's.
	undone := patchDone(t, ts, edited, base,
		`{"edits":[{"kind":"set_step","op":"mul2","step":4}]}`)
	if got, want := stripStats(t, resultDoc(t, ts, undone)), stripStats(t, resultDoc(t, ts, base)); !bytes.Equal(got, want) {
		t.Errorf("PATCH-undo result diverges from the original job's document\n--- undone ---\n%s\n--- original ---\n%s", got, want)
	}

	// The derived job streams its own lifecycle: the SSE stream must end
	// in a done terminal event.
	evs := readSSE(t, ts.URL+"/v1/jobs/"+edited+"/events")
	if len(evs) == 0 || evs[len(evs)-1].name != string(StatusDone) {
		t.Fatalf("derived job SSE stream = %v, want trailing done", evs)
	}
}

// TestPatchValidation covers the PATCH route's failure surface,
// including that a failed edit batch does not poison the session
// lineage for subsequent PATCHes.
func TestPatchValidation(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 2})

	resp, _ := patchJob(t, ts, "j-missing", `{"edits":[{"kind":"set_step","op":"x","step":1}]}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("PATCH unknown job: status %d, want 404", resp.StatusCode)
	}

	base := submitDFG(t, ts, ex1Text(4))
	for _, tc := range []struct {
		name, body string
		status     int
	}{
		{"empty edits", `{"edits":[]}`, http.StatusUnprocessableEntity},
		{"missing edits", `{}`, http.StatusUnprocessableEntity},
		{"unknown kind", `{"edits":[{"kind":"rename","op":"mul2"}]}`, http.StatusUnprocessableEntity},
		{"missing op", `{"edits":[{"kind":"set_step","step":2}]}`, http.StatusUnprocessableEntity},
		{"missing var", `{"edits":[{"kind":"retime_port","port":true}]}`, http.StatusUnprocessableEntity},
		{"unknown field", `{"edits":[{"kind":"set_step","op":"mul2","step":2}],"x":1}`, http.StatusBadRequest},
		{"malformed json", `{"edits":`, http.StatusBadRequest},
	} {
		if resp, body := patchJob(t, ts, base, tc.body); resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (body %s)", tc.name, resp.StatusCode, tc.status, body)
		}
	}

	// A structurally valid edit naming a nonexistent op is admitted but
	// fails the derived job...
	resp, body := patchJob(t, ts, base, `{"edits":[{"kind":"set_step","op":"nosuch","step":2}]}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("bad-op PATCH: status %d, body %s", resp.StatusCode, body)
	}
	var sub submitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	if v := waitJob(t, ts, sub.ID); v.Status != StatusFailed {
		t.Fatalf("bad-op derived job concluded %s, want failed", v.Status)
	}
	// ...and the lineage recovers: the next PATCH rebuilds the session
	// and still matches a cold run of the edited design.
	coldEdited := submitDFG(t, ts, ex1Text(5))
	ok := patchDone(t, ts, base, base, `{"edits":[{"kind":"set_step","op":"mul2","step":5}]}`)
	if got, want := stripStats(t, resultDoc(t, ts, ok)), stripStats(t, resultDoc(t, ts, coldEdited)); !bytes.Equal(got, want) {
		t.Errorf("post-failure PATCH diverges from cold synthesis")
	}

	// PATCH needs a completed parent: a held (running) job answers 409.
	release := make(chan struct{})
	srv.testHook = func(ctx context.Context, design string) error {
		select {
		case <-release:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	respS, bodyS := postJSON(t, ts.URL+"/v1/jobs", `{"benchmark":"ex1"}`)
	if respS.StatusCode != http.StatusAccepted {
		t.Fatalf("submit held job: status %d, body %s", respS.StatusCode, bodyS)
	}
	var held submitResponse
	if err := json.Unmarshal(bodyS, &held); err != nil {
		t.Fatal(err)
	}
	resp, _ = patchJob(t, ts, held.ID, `{"edits":[{"kind":"set_step","op":"mul2","step":5}]}`)
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("PATCH running job: status %d, want 409", resp.StatusCode)
	}
	close(release)
	waitJob(t, ts, held.ID)
}

// TestClientQuotaStorm hammers a quota-limited server with concurrent
// submissions from one client: exactly MaxJobsPerClient are admitted
// while the rest answer 429 with a Retry-After header, and slots free
// as jobs conclude. Run with -race.
func TestClientQuotaStorm(t *testing.T) {
	const quota = 2
	srv, ts := newTestServer(t, Options{Workers: 2, MaxJobsPerClient: quota})
	release := make(chan struct{})
	srv.testHook = func(ctx context.Context, design string) error {
		select {
		case <-release:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}

	submit := func() (*http.Response, []byte) {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(`{"benchmark":"ex1"}`))
		if err != nil {
			t.Error(err)
			return nil, nil
		}
		req.Header.Set("X-Client-ID", "storm-client")
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Error(err)
			return nil, nil
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}

	const attempts = 10
	var (
		mu       sync.Mutex
		admitted []string
		refused  int
		wg       sync.WaitGroup
	)
	for i := 0; i < attempts; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := submit()
			if resp == nil {
				return
			}
			mu.Lock()
			defer mu.Unlock()
			switch resp.StatusCode {
			case http.StatusAccepted:
				var sub submitResponse
				if err := json.Unmarshal(body, &sub); err != nil {
					t.Error(err)
					return
				}
				admitted = append(admitted, sub.ID)
			case http.StatusTooManyRequests:
				refused++
				if resp.Header.Get("Retry-After") == "" {
					t.Error("429 without Retry-After header")
				}
			default:
				t.Errorf("unexpected status %d: %s", resp.StatusCode, body)
			}
		}()
	}
	wg.Wait()
	// The held jobs never conclude during the storm, so admissions are
	// exactly the quota and everything else was refused.
	if len(admitted) != quota || refused != attempts-quota {
		t.Fatalf("admitted %d, refused %d; want %d and %d", len(admitted), refused, quota, attempts-quota)
	}

	// A different client is not starved by the full quota.
	respO, bodyO := postJSON(t, ts.URL+"/v1/jobs", `{"benchmark":"ex2"}`)
	if respO.StatusCode != http.StatusAccepted {
		t.Fatalf("other client refused: status %d, body %s", respO.StatusCode, bodyO)
	}
	var other submitResponse
	if err := json.Unmarshal(bodyO, &other); err != nil {
		t.Fatal(err)
	}

	// Conclude the held jobs; the freed slots admit the client again,
	// and the quota also governs the PATCH route.
	close(release)
	for _, id := range admitted {
		waitJob(t, ts, id)
	}
	waitJob(t, ts, other.ID)

	req, _ := http.NewRequest(http.MethodPatch, ts.URL+"/v1/jobs/"+admitted[0],
		strings.NewReader(`{"edits":[{"kind":"set_step","op":"mul2","step":5}]}`))
	req.Header.Set("X-Client-ID", "storm-client")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("PATCH after drain: status %d, body %s", resp.StatusCode, buf.Bytes())
	}
	var sub submitResponse
	if err := json.Unmarshal(buf.Bytes(), &sub); err != nil {
		t.Fatal(err)
	}
	if v := waitJob(t, ts, sub.ID); v.Status != StatusDone {
		t.Fatalf("patched job concluded %s: %s", v.Status, v.Error)
	}
}

// TestPatchStorm fires concurrent PATCHes at one completed job: the
// session serializes the edit batches, every derived job must conclude
// done, and every served document must be a valid result for the
// design. Run with -race.
func TestPatchStorm(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 4})
	base := submitDFG(t, ts, ex1Text(4))

	const patchers = 8
	var wg sync.WaitGroup
	ids := make([]string, patchers)
	for i := 0; i < patchers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			step := 4 + i%2
			resp, body := patchJob(t, ts, base,
				fmt.Sprintf(`{"edits":[{"kind":"set_step","op":"mul2","step":%d}]}`, step))
			if resp.StatusCode != http.StatusAccepted {
				t.Errorf("patcher %d: status %d, body %s", i, resp.StatusCode, body)
				return
			}
			var sub submitResponse
			if err := json.Unmarshal(body, &sub); err != nil {
				t.Error(err)
				return
			}
			ids[i] = sub.ID
		}(i)
	}
	wg.Wait()
	for i, id := range ids {
		if id == "" {
			continue
		}
		if v := waitJob(t, ts, id); v.Status != StatusDone {
			t.Errorf("patcher %d job concluded %s: %s", i, v.Status, v.Error)
			continue
		}
		var doc struct {
			Design string `json:"name"`
		}
		if err := json.Unmarshal(resultDoc(t, ts, id), &doc); err != nil {
			t.Errorf("patcher %d result: %v", i, err)
		} else if doc.Design != "ex1" {
			t.Errorf("patcher %d result design = %q", i, doc.Design)
		}
	}
}
