// Package server implements the bistpathd synthesis service: an HTTP
// front end that turns the bistpath library into a multi-tenant daemon.
// Clients submit scheduled DFGs (or built-in benchmark names) as jobs,
// poll their status, stream live Config.Observer progress events over
// SSE, and fetch completed results as the exact Result.JSON() bytes the
// bistpath CLI prints — the cache's byte-identity property extends to
// the wire.
//
// Every submission in the process shares one bounded synthesis worker
// pool (bistpath.Pool) and one result cache, so identical concurrent
// submissions coalesce onto a single synthesis via the cache's
// singleflight and warm duplicates are served without re-searching.
//
// The handler stack layers panic recovery, request IDs, per-request
// timeouts and request body limits around a method-routed mux; Drain
// implements graceful shutdown (stop accepting, finish or cancel
// in-flight jobs, flush SSE streams).
package server

import (
	"context"
	"expvar"
	"net/http"
	"sync/atomic"
	"time"

	"bistpath"
)

// Defaults for the zero Options value.
const (
	DefaultMaxBody   = 1 << 20 // 1 MiB request body limit
	DefaultTimeout   = 15 * time.Second
	DefaultMaxJobs   = 1024
	DefaultHeartbeat = 15 * time.Second
)

// Options configures a Server. The zero value is a working server with
// no result cache.
type Options struct {
	// Workers bounds how many jobs synthesize concurrently across the
	// whole process (0 = GOMAXPROCS). Submissions beyond the bound
	// queue; they hold no worker until a slot frees up.
	Workers int
	// Cache, when non-nil, is attached to every job's Config, so
	// duplicate submissions coalesce (singleflight) and warm repeats are
	// served byte-identically to the populating run.
	Cache *bistpath.Cache
	// MaxBody caps the request body size in bytes (0 = DefaultMaxBody).
	// Oversized submissions are rejected with 413.
	MaxBody int64
	// Timeout bounds each non-streaming request (0 = DefaultTimeout).
	// The SSE endpoint is exempt: event streams live until the job's
	// terminal event or client disconnect.
	Timeout time.Duration
	// MaxJobs bounds how many job records are retained in memory
	// (0 = DefaultMaxJobs). When exceeded, the oldest completed jobs are
	// evicted; running jobs are never evicted.
	MaxJobs int
	// Heartbeat is the SSE keepalive comment interval (0 =
	// DefaultHeartbeat). Tests shorten it.
	Heartbeat time.Duration
	// MaxJobsPerClient, when > 0, bounds how many non-terminal jobs one
	// client (X-Client-ID header, falling back to the remote host) may
	// have in flight across POST /v1/jobs and PATCH /v1/jobs/{id}.
	// Submissions beyond the bound answer 429 with a Retry-After header.
	// 0 disables the quota.
	MaxJobsPerClient int
}

// Server is the bistpathd service core: a job manager over the shared
// pool and cache, plus the HTTP handler stack. Create one with New,
// mount Handler on an http.Server, and call Drain on shutdown.
type Server struct {
	opts     Options
	pool     *bistpath.Pool
	cache    *bistpath.Cache
	synth    *bistpath.Synthesizer // hosts the PATCH route's incremental sessions
	jobs     *manager
	handler  http.Handler
	draining atomic.Bool

	// testHook, when non-nil, runs on the job goroutine after the worker
	// slot is acquired and before synthesis; a non-nil return replaces
	// the synthesis outcome. Tests use it to hold jobs in flight.
	testHook func(ctx context.Context, design string) error
}

// New creates a Server. The shared worker pool and job manager are
// process-internal; callers only see the HTTP surface and Drain.
func New(opts Options) *Server {
	if opts.MaxBody <= 0 {
		opts.MaxBody = DefaultMaxBody
	}
	if opts.Timeout <= 0 {
		opts.Timeout = DefaultTimeout
	}
	if opts.MaxJobs <= 0 {
		opts.MaxJobs = DefaultMaxJobs
	}
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = DefaultHeartbeat
	}
	s := &Server{
		opts:  opts,
		pool:  bistpath.NewPool(opts.Workers),
		cache: opts.Cache,
		synth: bistpath.New(bistpath.DefaultConfig()),
	}
	s.jobs = newManager(s)
	s.handler = s.buildHandler()
	return s
}

// Handler returns the fully wrapped HTTP handler (router + middleware).
func (s *Server) Handler() http.Handler { return s.handler }

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Service-level expvar counters, alongside the library's bistpath.*
// set; both are served by GET /metrics. sse_subscribers is a gauge,
// everything else only grows.
var (
	expJobsSubmitted     = expvar.NewInt("bistpathd.jobs_submitted")
	expJobsPatched       = expvar.NewInt("bistpathd.jobs_patched")
	expJobsQuotaRejected = expvar.NewInt("bistpathd.jobs_quota_rejected")
	expJobsDone          = expvar.NewInt("bistpathd.jobs_done")
	expJobsFailed        = expvar.NewInt("bistpathd.jobs_failed")
	expJobsCanceled      = expvar.NewInt("bistpathd.jobs_canceled")
	expJobsEvicted       = expvar.NewInt("bistpathd.jobs_evicted")
	expHandlerPanics     = expvar.NewInt("bistpathd.handler_panics")
	expSSESubscribers    = expvar.NewInt("bistpathd.sse_subscribers")
	expSSEDropped        = expvar.NewInt("bistpathd.sse_dropped_events")
)
