// Package dfg models scheduled data flow graphs (DFGs), the behavioral
// input to the allocation flow.
//
// A DFG is a set of operations connected by variables. Variables are the
// edges of the graph: each is defined by at most one operation (or is a
// primary input) and consumed by zero or more operations (or is a primary
// output). A schedule maps every operation to a control step. Variable
// lifetimes, the conflict relation used for register binding, and the
// module input/output variable sets of the paper all derive from this
// representation.
package dfg

import (
	"fmt"
	"sort"
)

// Kind identifies the function computed by an operation. Kinds correspond
// to the operator inventory of the DAC'95 benchmarks (Table I).
type Kind string

// Operation kinds.
const (
	Add Kind = "+"
	Sub Kind = "-"
	Mul Kind = "*"
	Div Kind = "/"
	And Kind = "&"
	Or  Kind = "|"
	Xor Kind = "^"
	Lt  Kind = "<"
	Gt  Kind = ">"
	// ALU is not an operation kind; it appears only as a module class
	// capable of executing several kinds (see internal/modassign).
)

// Commutative reports whether operand order is irrelevant for the kind.
// The paper assumes binary commutative operators; non-commutative ones are
// handled by extra constraints in interconnect binding.
func (k Kind) Commutative() bool {
	switch k {
	case Add, Mul, And, Or, Xor:
		return true
	}
	return false
}

// Valid reports whether k is one of the recognized operation kinds.
func (k Kind) Valid() bool {
	switch k {
	case Add, Sub, Mul, Div, And, Or, Xor, Lt, Gt:
		return true
	}
	return false
}

// Op is a single operation (a vertex of the DFG).
type Op struct {
	Name   string
	Kind   Kind
	Args   []string // operand variable names (1 for unary, 2 for binary)
	Result string   // variable defined by this op
	Step   int      // control step, 1-based; 0 means unscheduled
}

// Binary reports whether the op has two operands.
func (o *Op) Binary() bool { return len(o.Args) == 2 }

func (o *Op) String() string {
	if len(o.Args) == 2 {
		return fmt.Sprintf("%s: %s = %s %s %s @%d", o.Name, o.Result, o.Args[0], o.Kind, o.Args[1], o.Step)
	}
	return fmt.Sprintf("%s: %s = %s %s @%d", o.Name, o.Result, o.Kind, o.Args[0], o.Step)
}

// Var is a value carrier (an edge of the DFG).
type Var struct {
	Name     string
	IsInput  bool     // primary input: defined by the environment before step 1
	IsOutput bool     // primary output: must survive past the last step
	IsPort   bool     // port-fed input: wired to module ports, never register-allocated
	Def      string   // name of the defining op; empty for primary inputs
	Uses     []string // names of consuming ops, in insertion order
}

// Graph is a (possibly scheduled) data flow graph. Construct with New and
// the Add* methods, then call Validate. The zero value is not usable.
type Graph struct {
	Name string

	ops  []*Op
	vars []*Var

	opIx  map[string]*Op
	varIx map[string]*Var
}

// New returns an empty DFG with the given name.
func New(name string) *Graph {
	return &Graph{
		Name:  name,
		opIx:  make(map[string]*Op),
		varIx: make(map[string]*Var),
	}
}

// AddInput declares primary input variables.
func (g *Graph) AddInput(names ...string) error {
	for _, n := range names {
		if err := g.addVar(n); err != nil {
			return err
		}
		g.varIx[n].IsInput = true
	}
	return nil
}

// MarkPortInput marks primary inputs as port-fed: the value is wired from
// an input pad to the consuming module ports and never occupies a
// register. Constants and environment parameters (e.g. dx, a and the
// literal 3 of the differential-equation benchmark) are modeled this way.
func (g *Graph) MarkPortInput(names ...string) error {
	for _, n := range names {
		v, ok := g.varIx[n]
		if !ok {
			return fmt.Errorf("dfg %s: port input %q: no such variable", g.Name, n)
		}
		if !v.IsInput {
			return fmt.Errorf("dfg %s: port input %q is not a primary input", g.Name, n)
		}
		v.IsPort = true
	}
	return nil
}

// AllocVars returns the names of the variables that must be bound to
// registers (everything except port-fed inputs), sorted.
func (g *Graph) AllocVars() []string {
	var out []string
	for _, v := range g.vars {
		if !v.IsPort {
			out = append(out, v.Name)
		}
	}
	sort.Strings(out)
	return out
}

// MarkOutput marks existing variables as primary outputs.
func (g *Graph) MarkOutput(names ...string) error {
	for _, n := range names {
		v, ok := g.varIx[n]
		if !ok {
			return fmt.Errorf("dfg %s: output %q: no such variable", g.Name, n)
		}
		v.IsOutput = true
	}
	return nil
}

func (g *Graph) addVar(name string) error {
	if name == "" {
		return fmt.Errorf("dfg %s: empty variable name", g.Name)
	}
	if _, dup := g.varIx[name]; dup {
		return fmt.Errorf("dfg %s: duplicate variable %q", g.Name, name)
	}
	v := &Var{Name: name}
	g.vars = append(g.vars, v)
	g.varIx[name] = v
	return nil
}

// AddOp adds an operation computing result from args at the given control
// step. Operand variables must already exist (as inputs or as results of
// previously added ops); the result variable is created. All operator
// kinds are binary (the paper's model; a unary operation is expressed as
// a binary one with a port-fed constant operand, e.g. negation as
// k0 - x).
func (g *Graph) AddOp(name string, kind Kind, step int, result string, args ...string) error {
	if !kind.Valid() {
		return fmt.Errorf("dfg %s: op %q: invalid kind %q", g.Name, name, kind)
	}
	if _, dup := g.opIx[name]; dup {
		return fmt.Errorf("dfg %s: duplicate op %q", g.Name, name)
	}
	if len(args) != 2 {
		return fmt.Errorf("dfg %s: op %q: operators are binary, got %d operands", g.Name, name, len(args))
	}
	for _, a := range args {
		if _, ok := g.varIx[a]; !ok {
			return fmt.Errorf("dfg %s: op %q: operand %q not defined yet", g.Name, name, a)
		}
	}
	if err := g.addVar(result); err != nil {
		return err
	}
	op := &Op{Name: name, Kind: kind, Args: append([]string(nil), args...), Result: result, Step: step}
	g.ops = append(g.ops, op)
	g.opIx[name] = op
	g.varIx[result].Def = name
	for _, a := range args {
		g.varIx[a].Uses = append(g.varIx[a].Uses, name)
	}
	return nil
}

// Ops returns the operations in insertion order. The slice is shared; do
// not modify its structure.
func (g *Graph) Ops() []*Op { return g.ops }

// Vars returns the variables in insertion order. The slice is shared.
func (g *Graph) Vars() []*Var { return g.vars }

// Op returns the named operation, or nil.
func (g *Graph) Op(name string) *Op { return g.opIx[name] }

// Var returns the named variable, or nil.
func (g *Graph) Var(name string) *Var { return g.varIx[name] }

// NumSteps returns the highest control step used by the schedule
// (0 if unscheduled).
func (g *Graph) NumSteps() int {
	max := 0
	for _, o := range g.ops {
		if o.Step > max {
			max = o.Step
		}
	}
	return max
}

// Scheduled reports whether every op has a positive control step.
func (g *Graph) Scheduled() bool {
	for _, o := range g.ops {
		if o.Step <= 0 {
			return false
		}
	}
	return len(g.ops) > 0
}

// OpsAtStep returns the ops scheduled at the given step, in insertion order.
func (g *Graph) OpsAtStep(step int) []*Op {
	var out []*Op
	for _, o := range g.ops {
		if o.Step == step {
			out = append(out, o)
		}
	}
	return out
}

// Inputs returns the primary input variable names, sorted.
func (g *Graph) Inputs() []string {
	var out []string
	for _, v := range g.vars {
		if v.IsInput {
			out = append(out, v.Name)
		}
	}
	sort.Strings(out)
	return out
}

// Outputs returns the primary output variable names, sorted.
func (g *Graph) Outputs() []string {
	var out []string
	for _, v := range g.vars {
		if v.IsOutput {
			out = append(out, v.Name)
		}
	}
	sort.Strings(out)
	return out
}

// Rename changes a variable's name (used by the expression front end to
// bind temporaries to their assignment targets). The variable must not
// yet be referenced as an operand or marked as an input.
func (g *Graph) Rename(oldName, newName string) error {
	v := g.varIx[oldName]
	if v == nil {
		return fmt.Errorf("dfg %s: rename: no variable %q", g.Name, oldName)
	}
	if _, exists := g.varIx[newName]; exists {
		return fmt.Errorf("dfg %s: rename: %q already exists", g.Name, newName)
	}
	if newName == "" {
		return fmt.Errorf("dfg %s: rename: empty name", g.Name)
	}
	if len(v.Uses) > 0 {
		return fmt.Errorf("dfg %s: rename: %q already referenced", g.Name, oldName)
	}
	if v.IsInput {
		return fmt.Errorf("dfg %s: rename: %q is a primary input", g.Name, oldName)
	}
	delete(g.varIx, oldName)
	v.Name = newName
	g.varIx[newName] = v
	if v.Def != "" {
		g.opIx[v.Def].Result = newName
	}
	return nil
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(g.Name)
	for _, v := range g.vars {
		nv := &Var{Name: v.Name, IsInput: v.IsInput, IsOutput: v.IsOutput, IsPort: v.IsPort, Def: v.Def, Uses: append([]string(nil), v.Uses...)}
		c.vars = append(c.vars, nv)
		c.varIx[nv.Name] = nv
	}
	for _, o := range g.ops {
		no := &Op{Name: o.Name, Kind: o.Kind, Args: append([]string(nil), o.Args...), Result: o.Result, Step: o.Step}
		c.ops = append(c.ops, no)
		c.opIx[no.Name] = no
	}
	return c
}

// Validate checks structural and schedule consistency:
// every operand is a primary input or defined by some op; the dependency
// relation is acyclic; and, if scheduled, every consumer runs strictly
// after its producer (values are latched at the end of the producing step).
func (g *Graph) Validate() error {
	if len(g.ops) == 0 {
		return fmt.Errorf("dfg %s: no operations", g.Name)
	}
	for _, v := range g.vars {
		if !v.IsInput && v.Def == "" {
			return fmt.Errorf("dfg %s: variable %q has no definition and is not a primary input", g.Name, v.Name)
		}
		if v.IsInput && v.Def != "" {
			return fmt.Errorf("dfg %s: primary input %q is also defined by op %q", g.Name, v.Name, v.Def)
		}
		if len(v.Uses) == 0 && !v.IsOutput {
			return fmt.Errorf("dfg %s: variable %q is dead (no uses, not an output)", g.Name, v.Name)
		}
	}
	if err := g.checkAcyclic(); err != nil {
		return err
	}
	for _, o := range g.ops {
		if o.Step < 0 {
			return fmt.Errorf("dfg %s: op %q: negative step", g.Name, o.Name)
		}
		if o.Step == 0 {
			continue // unscheduled is legal until a scheduler runs
		}
		for _, a := range o.Args {
			av := g.varIx[a]
			if av.IsInput {
				continue
			}
			def := g.opIx[av.Def]
			if def.Step == 0 {
				return fmt.Errorf("dfg %s: op %q scheduled but producer %q is not", g.Name, o.Name, def.Name)
			}
			if def.Step >= o.Step {
				return fmt.Errorf("dfg %s: op %q at step %d reads %q produced at step %d (must be strictly earlier)",
					g.Name, o.Name, o.Step, a, def.Step)
			}
		}
	}
	return nil
}

func (g *Graph) checkAcyclic() error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	state := make(map[string]int, len(g.ops))
	var visit func(op *Op) error
	visit = func(op *Op) error {
		state[op.Name] = gray
		for _, a := range op.Args {
			v := g.varIx[a]
			if v.Def == "" {
				continue
			}
			dep := g.opIx[v.Def]
			switch state[dep.Name] {
			case gray:
				return fmt.Errorf("dfg %s: dependency cycle through op %q", g.Name, dep.Name)
			case white:
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[op.Name] = black
		return nil
	}
	for _, o := range g.ops {
		if state[o.Name] == white {
			if err := visit(o); err != nil {
				return err
			}
		}
	}
	return nil
}
