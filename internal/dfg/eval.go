package dfg

import "fmt"

// Eval evaluates the DFG on concrete input values with width-bit modular
// arithmetic and returns the value of every variable. It serves as the
// functional oracle against which the bound data path (see
// internal/datapath) is simulated.
//
// Comparison kinds (<, >) produce 0 or 1. Division by zero yields all-ones
// (a common hardware convention) so that random-input testing never traps.
func (g *Graph) Eval(inputs map[string]uint64, width int) (map[string]uint64, error) {
	if width <= 0 || width > 64 {
		return nil, fmt.Errorf("dfg %s: width %d out of range [1,64]", g.Name, width)
	}
	mask := ^uint64(0)
	if width < 64 {
		mask = (uint64(1) << uint(width)) - 1
	}
	vals := make(map[string]uint64, len(g.vars))
	for _, v := range g.vars {
		if v.IsInput {
			x, ok := inputs[v.Name]
			if !ok {
				return nil, fmt.Errorf("dfg %s: missing input %q", g.Name, v.Name)
			}
			vals[v.Name] = x & mask
		}
	}
	// Ops in dependency order: repeatedly evaluate ops whose operands are
	// ready. The graph is validated acyclic, so this terminates.
	done := make(map[string]bool, len(g.ops))
	for n := 0; n < len(g.ops); {
		progressed := false
		for _, o := range g.ops {
			if done[o.Name] {
				continue
			}
			ready := true
			for _, a := range o.Args {
				if _, ok := vals[a]; !ok {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			vals[o.Result] = applyKind(o.Kind, o.Args, vals, mask)
			done[o.Name] = true
			progressed = true
			n++
		}
		if !progressed {
			return nil, fmt.Errorf("dfg %s: evaluation stuck (cycle?)", g.Name)
		}
	}
	return vals, nil
}

func applyKind(k Kind, args []string, vals map[string]uint64, mask uint64) uint64 {
	a := vals[args[0]]
	b := uint64(0)
	if len(args) == 2 {
		b = vals[args[1]]
	}
	var r uint64
	switch k {
	case Add:
		r = a + b
	case Sub:
		r = a - b
	case Mul:
		r = a * b
	case Div:
		if b == 0 {
			r = mask
		} else {
			r = a / b
		}
	case And:
		r = a & b
	case Or:
		r = a | b
	case Xor:
		r = a ^ b
	case Lt:
		if a < b {
			r = 1
		}
	case Gt:
		if a > b {
			r = 1
		}
	}
	return r & mask
}
