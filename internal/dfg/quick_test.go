package dfg

import (
	"testing"
	"testing/quick"
)

// Lifetime overlap is symmetric, irreflexive on nonempty intervals, and
// agrees with the interval-intersection definition.
func TestOverlapQuick(t *testing.T) {
	norm := func(a, b int8) (int, int) {
		lo, hi := int(a), int(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		return lo, hi + 1 // nonempty
	}
	sym := func(a1, b1, a2, b2 int8) bool {
		l1b, l1d := norm(a1, b1)
		l2b, l2d := norm(a2, b2)
		x := Lifetime{"u", l1b, l1d}
		y := Lifetime{"v", l2b, l2d}
		if x.Overlaps(y) != y.Overlaps(x) {
			return false
		}
		// Reference definition: some integer point t occupies both.
		ref := false
		for p := l1b + 1; p <= l1d; p++ {
			if p > l2b && p <= l2d {
				ref = true
			}
		}
		return x.Overlaps(y) == ref
	}
	if err := quick.Check(sym, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Eval is deterministic and width-masking is sound: every value fits the
// width.
func TestEvalMaskQuick(t *testing.T) {
	g := New("q")
	g.AddInput("a", "b")
	g.AddOp("o1", Mul, 1, "x", "a", "b")
	g.AddOp("o2", Add, 2, "y", "x", "a")
	g.MarkOutput("y")
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	prop := func(a, b uint64, w uint8) bool {
		width := int(w%16) + 1
		in := map[string]uint64{"a": a, "b": b}
		v1, err := g.Eval(in, width)
		if err != nil {
			return false
		}
		v2, _ := g.Eval(in, width)
		mask := (uint64(1) << uint(width)) - 1
		for _, val := range v1 {
			if val&^mask != 0 {
				return false
			}
		}
		return v1["y"] == v2["y"]
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
