package dfg

import (
	"strings"
	"testing"
)

// buildDiamond returns a small scheduled DFG:
//
//	step 1: o1: t1 = a + b
//	step 2: o2: t2 = t1 * c
//	step 3: o3: out = t2 - a
func buildDiamond(t *testing.T) *Graph {
	t.Helper()
	g := New("diamond")
	if err := g.AddInput("a", "b", "c"); err != nil {
		t.Fatal(err)
	}
	mustOp := func(name string, k Kind, step int, res string, args ...string) {
		t.Helper()
		if err := g.AddOp(name, k, step, res, args...); err != nil {
			t.Fatal(err)
		}
	}
	mustOp("o1", Add, 1, "t1", "a", "b")
	mustOp("o2", Mul, 2, "t2", "t1", "c")
	mustOp("o3", Sub, 3, "out", "t2", "a")
	if err := g.MarkOutput("out"); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildAndValidate(t *testing.T) {
	g := buildDiamond(t)
	if got := g.NumSteps(); got != 3 {
		t.Errorf("NumSteps = %d, want 3", got)
	}
	if !g.Scheduled() {
		t.Error("Scheduled() = false, want true")
	}
	if got := len(g.Ops()); got != 3 {
		t.Errorf("len(Ops) = %d, want 3", got)
	}
	if got := len(g.Vars()); got != 6 {
		t.Errorf("len(Vars) = %d, want 6", got)
	}
	if g.Op("o2").Kind != Mul {
		t.Errorf("o2 kind = %q, want *", g.Op("o2").Kind)
	}
	if got := g.Inputs(); len(got) != 3 || got[0] != "a" {
		t.Errorf("Inputs = %v", got)
	}
	if got := g.Outputs(); len(got) != 1 || got[0] != "out" {
		t.Errorf("Outputs = %v", got)
	}
}

func TestValidateErrors(t *testing.T) {
	t.Run("duplicate var", func(t *testing.T) {
		g := New("x")
		g.AddInput("a")
		if err := g.AddInput("a"); err == nil {
			t.Error("duplicate input accepted")
		}
	})
	t.Run("unknown operand", func(t *testing.T) {
		g := New("x")
		if err := g.AddOp("o", Add, 1, "r", "nope", "nada"); err == nil {
			t.Error("unknown operand accepted")
		}
	})
	t.Run("bad kind", func(t *testing.T) {
		g := New("x")
		g.AddInput("a", "b")
		if err := g.AddOp("o", Kind("%"), 1, "r", "a", "b"); err == nil {
			t.Error("invalid kind accepted")
		}
	})
	t.Run("dead variable", func(t *testing.T) {
		g := New("x")
		g.AddInput("a", "b")
		g.AddOp("o", Add, 1, "r", "a", "b")
		// r not marked output, never used
		if err := g.Validate(); err == nil {
			t.Error("dead variable accepted")
		}
	})
	t.Run("schedule violates dependency", func(t *testing.T) {
		g := New("x")
		g.AddInput("a", "b")
		g.AddOp("o1", Add, 2, "r", "a", "b")
		g.AddOp("o2", Mul, 2, "s", "r", "a")
		g.MarkOutput("r", "s")
		if err := g.Validate(); err == nil {
			t.Error("same-step producer/consumer accepted")
		}
	})
	t.Run("empty graph", func(t *testing.T) {
		if err := New("x").Validate(); err == nil {
			t.Error("empty graph accepted")
		}
	})
}

func TestLifetimes(t *testing.T) {
	g := buildDiamond(t)
	lts, err := g.Lifetimes()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]Lifetime{
		"a":   {Var: "a", Born: 0, Dies: 3},
		"b":   {Var: "b", Born: 0, Dies: 1},
		"c":   {Var: "c", Born: 1, Dies: 2}, // arrives just in time for o2@2
		"t1":  {Var: "t1", Born: 1, Dies: 2},
		"t2":  {Var: "t2", Born: 2, Dies: 3},
		"out": {Var: "out", Born: 3, Dies: 4},
	}
	for name, w := range want {
		if got := lts[name]; got != w {
			t.Errorf("lifetime[%s] = %v, want %v", name, got, w)
		}
	}
}

func TestOverlaps(t *testing.T) {
	cases := []struct {
		a, b Lifetime
		want bool
	}{
		{Lifetime{"u", 0, 1}, Lifetime{"v", 1, 2}, false}, // chained: u dies when v born
		{Lifetime{"u", 0, 2}, Lifetime{"v", 1, 3}, true},
		{Lifetime{"u", 0, 5}, Lifetime{"v", 2, 3}, true}, // containment
		{Lifetime{"u", 0, 1}, Lifetime{"v", 3, 4}, false},
		{Lifetime{"u", 2, 4}, Lifetime{"v", 2, 4}, true}, // identical
	}
	for _, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.want {
			t.Errorf("%v overlaps %v = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Overlaps(c.a); got != c.want {
			t.Errorf("overlap not symmetric for %v, %v", c.a, c.b)
		}
	}
}

func TestConflictsAndDensity(t *testing.T) {
	g := buildDiamond(t)
	conf, err := g.Conflicts()
	if err != nil {
		t.Fatal(err)
	}
	if !conf["a"]["t1"] || !conf["t1"]["a"] {
		t.Error("a and t1 should conflict (a alive through step 3)")
	}
	if conf["t1"]["t2"] {
		t.Error("t1 and t2 should chain, not conflict")
	}
	if conf["b"]["t1"] {
		t.Error("b dies at step 1, t1 born at step 1: no conflict")
	}
	minR, err := g.MinRegisters()
	if err != nil {
		t.Fatal(err)
	}
	// step1: a,b,c alive; step2: a,c,t1; step3: a,t2; step4: out → max 3
	if minR != 3 {
		t.Errorf("MinRegisters = %d, want 3", minR)
	}
	mcs, err := g.MaxCliqueSize()
	if err != nil {
		t.Fatal(err)
	}
	if mcs["a"] != 3 {
		t.Errorf("MCS(a) = %d, want 3", mcs["a"])
	}
	if mcs["out"] != 1 {
		t.Errorf("MCS(out) = %d, want 1", mcs["out"])
	}
}

func TestParseRoundTrip(t *testing.T) {
	src := `
# a comment
dfg demo
input a b c
op o1 + a b -> t1 @1
op o2 * t1 c -> t2 @2
op o3 - t2 a -> out @3
output out
`
	g, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "demo" {
		t.Errorf("name = %q", g.Name)
	}
	text := g.Text()
	g2, err := ParseString(text)
	if err != nil {
		t.Fatalf("reparse: %v\ntext:\n%s", err, text)
	}
	if g2.Text() != text {
		t.Errorf("round trip not stable:\n%s\nvs\n%s", text, g2.Text())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"bogus directive",
		"op o1 + a b -> r @1", // a,b undeclared
		"input a\nop o1 + a -> ",
		"input a b\nop o1 + a b r @1",
		"input a b\nop o1 + a b -> r @x",
		"input a b\nop o1 + a b -> r extra",
		"input a b\nop o1 + a b -> r @1\noutput r nope",
	}
	for _, src := range bad {
		if _, err := ParseString(src); err == nil {
			t.Errorf("accepted bad input %q", src)
		}
	}
}

func TestEval(t *testing.T) {
	g := buildDiamond(t)
	vals, err := g.Eval(map[string]uint64{"a": 3, "b": 4, "c": 5}, 8)
	if err != nil {
		t.Fatal(err)
	}
	// t1 = 7, t2 = 35, out = 32
	if vals["out"] != 32 {
		t.Errorf("out = %d, want 32", vals["out"])
	}
	// Overflow wraps at width.
	vals, err = g.Eval(map[string]uint64{"a": 200, "b": 100, "c": 2}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if vals["t1"] != (200+100)&0xff {
		t.Errorf("t1 = %d, want %d", vals["t1"], (200+100)&0xff)
	}
}

func TestEvalAllKinds(t *testing.T) {
	g := New("kinds")
	g.AddInput("a", "b")
	kinds := []Kind{Add, Sub, Mul, Div, And, Or, Xor, Lt, Gt}
	for i, k := range kinds {
		name := "o" + string(rune('0'+i))
		if err := g.AddOp(name, k, i+1, "r"+string(rune('0'+i)), "a", "b"); err != nil {
			t.Fatal(err)
		}
		g.MarkOutput("r" + string(rune('0'+i)))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	vals, err := g.Eval(map[string]uint64{"a": 12, "b": 5}, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{17, 7, 60, 2, 4, 13, 9, 0, 1}
	for i, w := range want {
		name := "r" + string(rune('0'+i))
		if vals[name] != w {
			t.Errorf("%s(%s) = %d, want %d", kinds[i], name, vals[name], w)
		}
	}
	// Division by zero: all ones.
	vals, _ = g.Eval(map[string]uint64{"a": 12, "b": 0}, 8)
	if vals["r3"] != 0xff {
		t.Errorf("div by zero = %d, want 255", vals["r3"])
	}
}

func TestEvalErrors(t *testing.T) {
	g := buildDiamond(t)
	if _, err := g.Eval(map[string]uint64{"a": 1}, 8); err == nil {
		t.Error("missing inputs accepted")
	}
	if _, err := g.Eval(map[string]uint64{"a": 1, "b": 2, "c": 3}, 0); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := g.Eval(map[string]uint64{"a": 1, "b": 2, "c": 3}, 65); err == nil {
		t.Error("width 65 accepted")
	}
}

func TestClone(t *testing.T) {
	g := buildDiamond(t)
	c := g.Clone()
	c.Op("o1").Step = 9
	if g.Op("o1").Step == 9 {
		t.Error("clone shares op storage")
	}
	c.Var("a").Uses[0] = "zap"
	if g.Var("a").Uses[0] == "zap" {
		t.Error("clone shares uses storage")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("original damaged by clone mutation: %v", err)
	}
}

func TestWriteDot(t *testing.T) {
	g := buildDiamond(t)
	var sb strings.Builder
	if err := g.WriteDot(&sb); err != nil {
		t.Fatal(err)
	}
	dot := sb.String()
	for _, want := range []string{"digraph", "o1", "cluster_step1", "out:out"} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot output missing %q", want)
		}
	}
}

func TestOpsAtStepAndString(t *testing.T) {
	g := buildDiamond(t)
	if ops := g.OpsAtStep(2); len(ops) != 1 || ops[0].Name != "o2" {
		t.Errorf("OpsAtStep(2) = %v", ops)
	}
	if ops := g.OpsAtStep(7); len(ops) != 0 {
		t.Errorf("OpsAtStep(7) = %v", ops)
	}
	s := g.Op("o1").String()
	if !strings.Contains(s, "t1 = a + b") {
		t.Errorf("Op.String = %q", s)
	}
}

func TestKindProperties(t *testing.T) {
	comm := []Kind{Add, Mul, And, Or, Xor}
	for _, k := range comm {
		if !k.Commutative() {
			t.Errorf("%s should be commutative", k)
		}
	}
	noncomm := []Kind{Sub, Div, Lt, Gt}
	for _, k := range noncomm {
		if k.Commutative() {
			t.Errorf("%s should not be commutative", k)
		}
	}
	if Kind("%").Valid() {
		t.Error("%% should be invalid")
	}
}

func TestRename(t *testing.T) {
	g := New("r")
	g.AddInput("a", "b")
	g.AddOp("o1", Add, 1, "tmp", "a", "b")
	if err := g.Rename("tmp", "out"); err != nil {
		t.Fatal(err)
	}
	if g.Var("tmp") != nil || g.Var("out") == nil {
		t.Error("rename did not move the variable")
	}
	if g.Op("o1").Result != "out" {
		t.Error("op result not updated")
	}
	g.MarkOutput("out")
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	// Error paths.
	if err := g.Rename("nope", "x"); err == nil {
		t.Error("unknown variable renamed")
	}
	if err := g.Rename("out", "a"); err == nil {
		t.Error("rename onto existing name accepted")
	}
	if err := g.Rename("a", "c"); err == nil {
		t.Error("primary input renamed")
	}
	g.AddOp("o2", Mul, 2, "y", "out", "a")
	g.MarkOutput("y")
	if err := g.Rename("out", "z"); err == nil {
		t.Error("referenced variable renamed")
	}
}
