package dfg

import (
	"fmt"
	"sort"
)

// Lifetime is the register-occupancy interval of a variable. A variable is
// born at the control step of its producer (the value is latched into a
// register at the end of that step) and dies at the step of its last
// consumer (the value is read during that step). Primary inputs arrive
// just in time: they are born one step before their first use (loaded from
// an input port). A primary output must survive at least one step past its
// production so the environment can sample it.
//
// The occupancy interval is the half-open (Born, Dies]: the variable holds
// a register from the end of step Born through step Dies.
type Lifetime struct {
	Var  string
	Born int
	Dies int
}

// Overlaps reports whether two occupancy intervals intersect, i.e. whether
// the variables conflict and may not share a register.
func (l Lifetime) Overlaps(m Lifetime) bool {
	return l.Born < m.Dies && m.Born < l.Dies
}

// Length returns the number of steps the variable occupies a register.
func (l Lifetime) Length() int { return l.Dies - l.Born }

func (l Lifetime) String() string {
	return fmt.Sprintf("%s:(%d,%d]", l.Var, l.Born, l.Dies)
}

// Lifetimes computes the lifetime of every variable of a scheduled graph.
// The result is keyed by variable name.
func (g *Graph) Lifetimes() (map[string]Lifetime, error) {
	if !g.Scheduled() {
		return nil, fmt.Errorf("dfg %s: lifetimes require a complete schedule", g.Name)
	}
	out := make(map[string]Lifetime, len(g.vars))
	for _, v := range g.vars {
		if v.IsPort {
			continue // port-fed inputs never occupy a register
		}
		lt := Lifetime{Var: v.Name}
		if v.IsInput {
			first := 0
			for _, u := range v.Uses {
				if s := g.opIx[u].Step; first == 0 || s < first {
					first = s
				}
			}
			if first > 0 {
				lt.Born = first - 1
			}
		} else {
			lt.Born = g.opIx[v.Def].Step
		}
		lt.Dies = lt.Born
		for _, u := range v.Uses {
			if s := g.opIx[u].Step; s > lt.Dies {
				lt.Dies = s
			}
		}
		if lt.Dies == lt.Born {
			// Produced and never read internally (a primary output, or an
			// unused input): the value still occupies a register for one
			// step so the environment can sample it.
			lt.Dies = lt.Born + 1
		}
		out[v.Name] = lt
	}
	return out, nil
}

// Conflicts returns, for each variable, the set of variables whose
// lifetimes overlap with it. The relation is symmetric and irreflexive.
func (g *Graph) Conflicts() (map[string]map[string]bool, error) {
	lts, err := g.Lifetimes()
	if err != nil {
		return nil, err
	}
	out := make(map[string]map[string]bool, len(g.vars))
	names := g.AllocVars()
	for _, v := range names {
		out[v] = make(map[string]bool)
	}
	for i, u := range names {
		for _, v := range names[i+1:] {
			if lts[u].Overlaps(lts[v]) {
				out[u][v] = true
				out[v][u] = true
			}
		}
	}
	return out, nil
}

// Density returns, for each control-step boundary t in [1, NumSteps()+1],
// the number of variables alive across it (occupying a register during
// step t). The maximum density equals the minimum number of registers
// required and the size of the largest clique of the conflict graph.
func (g *Graph) Density() ([]int, error) {
	lts, err := g.Lifetimes()
	if err != nil {
		return nil, err
	}
	last := 0
	for _, lt := range lts {
		if lt.Dies > last {
			last = lt.Dies
		}
	}
	dens := make([]int, last+1) // index = step, 1-based; index 0 unused
	for _, lt := range lts {
		for t := lt.Born + 1; t <= lt.Dies && t <= last; t++ {
			dens[t]++
		}
	}
	return dens[1:], nil
}

// MinRegisters returns the minimum number of registers needed by any valid
// binding, i.e. the maximum lifetime density.
func (g *Graph) MinRegisters() (int, error) {
	dens, err := g.Density()
	if err != nil {
		return 0, err
	}
	max := 0
	for _, d := range dens {
		if d > max {
			max = d
		}
	}
	return max, nil
}

// MaxCliqueSize returns, for each variable v, the size of the largest
// conflict-graph clique containing v. For interval graphs this is the
// maximum lifetime density over v's own occupancy interval. This is the
// MCS(v) measure of the paper (Section III.A.1).
func (g *Graph) MaxCliqueSize() (map[string]int, error) {
	lts, err := g.Lifetimes()
	if err != nil {
		return nil, err
	}
	dens, err := g.Density()
	if err != nil {
		return nil, err
	}
	out := make(map[string]int, len(lts))
	for name, lt := range lts {
		max := 0
		for t := lt.Born + 1; t <= lt.Dies && t <= len(dens); t++ {
			if dens[t-1] > max {
				max = dens[t-1]
			}
		}
		out[name] = max
	}
	return out, nil
}

// SortedVarNames returns all variable names sorted lexicographically.
func (g *Graph) SortedVarNames() []string {
	names := make([]string, 0, len(g.vars))
	for _, v := range g.vars {
		names = append(names, v.Name)
	}
	sort.Strings(names)
	return names
}
