package dfg

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Parse reads the textual DFG format:
//
//	dfg <name>
//	input <var> [<var>...]
//	op <name> <kind> <arg> [<arg>] -> <result> [@<step>]
//	output <var> [<var>...]
//	# comment
//
// Lines may appear in any order as long as operands are declared before
// use. Parse validates the graph before returning it.
func Parse(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	g := New("unnamed")
	ln := 0
	var outputs []string
	for sc.Scan() {
		ln++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "dfg":
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: want 'dfg <name>'", ln)
			}
			g.Name = fields[1]
		case "input":
			if len(fields) < 2 {
				return nil, fmt.Errorf("line %d: 'input' needs at least one variable", ln)
			}
			if err := g.AddInput(fields[1:]...); err != nil {
				return nil, fmt.Errorf("line %d: %v", ln, err)
			}
		case "output":
			if len(fields) < 2 {
				return nil, fmt.Errorf("line %d: 'output' needs at least one variable", ln)
			}
			outputs = append(outputs, fields[1:]...)
		case "op":
			if err := parseOp(g, fields[1:]); err != nil {
				return nil, fmt.Errorf("line %d: %v", ln, err)
			}
		default:
			return nil, fmt.Errorf("line %d: unknown directive %q", ln, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := g.MarkOutput(outputs...); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

func parseOp(g *Graph, f []string) error {
	// <name> <kind> <arg> [<arg>] -> <result> [@<step>]
	if len(f) < 5 {
		return fmt.Errorf("op: want '<name> <kind> <args...> -> <result> [@step]'")
	}
	name, kind := f[0], Kind(f[1])
	arrow := -1
	for i, tok := range f {
		if tok == "->" {
			arrow = i
			break
		}
	}
	if arrow < 3 || arrow > 4 || arrow+1 >= len(f) {
		return fmt.Errorf("op %s: malformed (missing or misplaced '->')", name)
	}
	args := f[2:arrow]
	result := f[arrow+1]
	step := 0
	if arrow+2 < len(f) {
		tok := f[arrow+2]
		if !strings.HasPrefix(tok, "@") {
			return fmt.Errorf("op %s: trailing token %q (want @<step>)", name, tok)
		}
		n, err := strconv.Atoi(tok[1:])
		if err != nil {
			return fmt.Errorf("op %s: bad step %q", name, tok)
		}
		step = n
	}
	return g.AddOp(name, kind, step, result, args...)
}

// ParseString is Parse over a string.
func ParseString(s string) (*Graph, error) { return Parse(strings.NewReader(s)) }

// WriteText emits the graph in the format accepted by Parse.
func (g *Graph) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "dfg %s\n", g.Name)
	if ins := g.Inputs(); len(ins) > 0 {
		fmt.Fprintf(bw, "input %s\n", strings.Join(ins, " "))
	}
	ops := append([]*Op(nil), g.ops...)
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].Step < ops[j].Step })
	for _, o := range ops {
		fmt.Fprintf(bw, "op %s %s %s -> %s", o.Name, o.Kind, strings.Join(o.Args, " "), o.Result)
		if o.Step > 0 {
			fmt.Fprintf(bw, " @%d", o.Step)
		}
		fmt.Fprintln(bw)
	}
	if outs := g.Outputs(); len(outs) > 0 {
		fmt.Fprintf(bw, "output %s\n", strings.Join(outs, " "))
	}
	return bw.Flush()
}

// Text returns the graph in the format accepted by Parse.
func (g *Graph) Text() string {
	var sb strings.Builder
	g.WriteText(&sb)
	return sb.String()
}

// WriteDot emits a Graphviz rendering: operations as boxes grouped by
// control step, variables as edges.
func (g *Graph) WriteDot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n  rankdir=TB;\n  node [shape=box];\n", g.Name)
	for s := 1; s <= g.NumSteps(); s++ {
		ops := g.OpsAtStep(s)
		if len(ops) == 0 {
			continue
		}
		fmt.Fprintf(bw, "  subgraph cluster_step%d {\n    label=\"step %d\";\n", s, s)
		for _, o := range ops {
			fmt.Fprintf(bw, "    %q [label=\"%s\\n%s\"];\n", o.Name, o.Name, o.Kind)
		}
		fmt.Fprintf(bw, "  }\n")
	}
	for _, v := range g.vars {
		if v.IsInput {
			fmt.Fprintf(bw, "  %q [shape=plaintext];\n", "in:"+v.Name)
		}
	}
	for _, v := range g.vars {
		src := "in:" + v.Name
		if v.Def != "" {
			src = v.Def
		}
		for _, u := range v.Uses {
			fmt.Fprintf(bw, "  %q -> %q [label=%q];\n", src, u, v.Name)
		}
		if v.IsOutput {
			fmt.Fprintf(bw, "  %q [shape=plaintext];\n  %q -> %q [label=%q];\n", "out:"+v.Name, src, "out:"+v.Name, v.Name)
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
