package elab

import (
	"fmt"
	"io"
	"strings"

	"bistpath/internal/dfg"
	"bistpath/internal/gates"
	"bistpath/internal/interconnect"
	"bistpath/internal/vcd"
)

// ControlWord is the set of asserted 1-bit control inputs for one cycle,
// keyed by control-input name (the microcode-ROM row).
type ControlWord map[string]bool

// NormalControl derives the per-step control program for functional
// operation: register source selects (loads from pads and modules) and
// module port/op selects.
func (d *Design) NormalControl() []ControlWord {
	steps := d.dp.Steps
	words := make([]ControlWord, len(steps))
	for i, st := range steps {
		w := make(ControlWord)
		for _, ld := range st.Loads {
			w[ld.Reg+".sel."+ld.Pad] = true
		}
		for _, mo := range st.Ops {
			w[mo.DestReg+".sel."+mo.Module] = true
			w[mo.Module+".lsel."+mo.LeftSrc] = true
			if mo.RightSrc != "" {
				w[mo.Module+".rsel."+mo.RightSrc] = true
			}
			if d.Mods[mo.Module].KindSel != nil {
				w[mo.Module+".op."+string(mo.Kind)] = true
			}
		}
		words[i] = w
	}
	return words
}

// applyWord drives every control input: asserted per the word, all
// others deasserted.
func (d *Design) applyWord(sim *gates.Sim, w ControlWord) {
	for _, name := range d.Net.NamedBuses() {
		if !isControlInput(name) {
			continue
		}
		sim.SetBus(d.Net.Named(name), boolTo(w[name]))
	}
}

func isControlInput(name string) bool {
	return strings.Contains(name, ".sel.") || strings.Contains(name, ".lsel.") ||
		strings.Contains(name, ".rsel.") || strings.Contains(name, ".op.") ||
		strings.HasSuffix(name, ".tpg") || strings.HasSuffix(name, ".sa")
}

func boolTo(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// RunNormal executes the control program on the gate-level design and
// returns the primary output values, using the same sampling convention
// as datapath.Simulate (outputs read from their register right after the
// latching edge).
func (d *Design) RunNormal(inputs map[string]uint64) (map[string]uint64, error) {
	sim, err := gates.NewSim(d.Net)
	if err != nil {
		return nil, err
	}
	return d.runNormalOn(sim, inputs)
}

func (d *Design) runNormalOn(sim *gates.Sim, inputs map[string]uint64) (map[string]uint64, error) {
	if d.HasController {
		return d.runSelfTimed(sim, inputs)
	}
	for pad, bus := range d.Pads {
		name := strings.TrimPrefix(pad, interconnect.PadSource)
		v, ok := inputs[name]
		if !ok {
			return nil, fmt.Errorf("elab: missing input %q", name)
		}
		sim.SetBus(bus, v)
	}
	lts, err := d.dp.Graph().Lifetimes()
	if err != nil {
		return nil, err
	}
	words := d.NormalControl()
	outs := make(map[string]uint64)
	for s, w := range words {
		d.applyWord(sim, w)
		sim.Step()
		for _, o := range d.dp.Outputs {
			if lts[o].Born == s {
				bus := d.Net.Named("out:" + o)
				if bus == nil {
					return nil, fmt.Errorf("elab: output %s has no register bus", o)
				}
				outs[o] = sim.ReadBus(bus)
			}
		}
	}
	return outs, nil
}

// runSelfTimed executes a controller-equipped design: only the pads are
// driven; the on-chip controller sequences everything else.
func (d *Design) runSelfTimed(sim *gates.Sim, inputs map[string]uint64) (map[string]uint64, error) {
	for pad, bus := range d.Pads {
		name := strings.TrimPrefix(pad, interconnect.PadSource)
		v, ok := inputs[name]
		if !ok {
			return nil, fmt.Errorf("elab: missing input %q", name)
		}
		sim.SetBus(bus, v)
	}
	lts, err := d.dp.Graph().Lifetimes()
	if err != nil {
		return nil, err
	}
	outs := make(map[string]uint64)
	for s := 0; s < len(d.dp.Steps); s++ {
		sim.Step()
		for _, o := range d.dp.Outputs {
			if lts[o].Born == s {
				outs[o] = sim.ReadBus(d.Net.Named("out:" + o))
			}
		}
	}
	return outs, nil
}

// CheckAgainstDFG runs the gate-level design on the inputs and compares
// every output against direct DFG evaluation.
func (d *Design) CheckAgainstDFG(inputs map[string]uint64) error {
	want, err := d.dp.Graph().Eval(inputs, d.Width)
	if err != nil {
		return err
	}
	got, err := d.RunNormal(inputs)
	if err != nil {
		return err
	}
	for _, o := range d.dp.Outputs {
		if got[o] != want[o] {
			return fmt.Errorf("elab: output %s = %d at gate level, DFG says %d", o, got[o], want[o])
		}
	}
	return nil
}

// testControl builds the control word for testing one module in one
// operation mode under its planned embedding: pattern generators on,
// the signature register selecting and compacting the module output.
func (d *Design) testControl(module string, kind dfg.Kind) (ControlWord, error) {
	if d.plan == nil {
		return nil, fmt.Errorf("elab: design has no BIST plan")
	}
	if d.HasController {
		return nil, fmt.Errorf("elab: gate-level test runs need a controller-free build (normal-mode controls are driven on-chip)")
	}
	emb, ok := d.plan.Embeddings[module]
	if !ok {
		return nil, fmt.Errorf("elab: no embedding for module %s", module)
	}
	w := make(ControlWord)
	w[module+".lsel."+emb.HeadL] = true
	if emb.HeadR != "" {
		w[module+".rsel."+emb.HeadR] = true
	}
	if d.Mods[module].KindSel != nil {
		w[module+".op."+string(kind)] = true
	}
	for _, h := range []string{emb.HeadL, emb.HeadR} {
		if h == "" || interconnect.IsPad(h) {
			continue
		}
		tr := d.Regs[h]
		if tr.TPGEn == gates.Zero {
			return nil, fmt.Errorf("elab: head %s has no TPG mode (style %v)", h, tr.Style)
		}
		w[h+".tpg"] = true
	}
	tail := d.Regs[emb.Tail]
	if tail.SAEn == gates.Zero {
		return nil, fmt.Errorf("elab: tail %s has no SA mode (style %v)", emb.Tail, tail.Style)
	}
	w[emb.Tail+".sa"] = true
	w[emb.Tail+".sel."+module] = true
	return w, nil
}

// TestRun is the result of one gate-level BIST run of a module.
type TestRun struct {
	Module    string
	Patterns  int
	Signature uint64
}

// RunModuleTest drives one module's BIST session on a fresh simulator:
// head registers are scan-seeded, then `patterns` clocks run with the
// test control word per operation mode while the tail compacts. Pad
// heads receive externally generated pseudo-random words (I-paths from
// primary inputs, Definition 1).
//
// Do not use a pattern count that is a multiple of the generator period
// 2^w-1: compacting over whole periods telescopes the MISR sum to a
// fault-independent signature (the session length folklore rule "run
// 2^n-1 patterns" actually means strictly less than a full period per
// mode). 250 is the canonical count for 8-bit data paths.
func (d *Design) RunModuleTest(module string, patterns int, seed uint64, fault *gates.StuckAt) (*TestRun, error) {
	sim, err := gates.NewSim(d.Net)
	if err != nil {
		return nil, err
	}
	sim.SetFault(fault)
	return d.runModuleTestOn(sim, module, patterns, seed)
}

func (d *Design) runModuleTestOn(sim *gates.Sim, module string, patterns int, seed uint64) (*TestRun, error) {
	emb := d.plan.Embeddings[module]
	// Scan-in distinct nonzero seeds into the head registers.
	seedOf := func(name string, salt uint64) uint64 {
		s := (seed ^ hashName(name) ^ salt) & ((1 << uint(d.Width)) - 1)
		if s == 0 {
			s = 1
		}
		return s
	}
	var padGens []func() // external pattern feeders for pad heads
	for i, h := range []string{emb.HeadL, emb.HeadR} {
		if h == "" {
			continue
		}
		salt := uint64(i + 1)
		if interconnect.IsPad(h) {
			bus := d.Pads[h]
			state := seedOf(h, salt)
			padGens = append(padGens, func() {
				state = extLFSRNext(state, d.Width)
				sim.SetBus(bus, state)
			})
			continue
		}
		sim.SetBus(d.Regs[h].Q, seedOf(h, salt))
	}
	// Clear the signature rank.
	sim.SetBus(d.Regs[emb.Tail].SigQ, 0)

	m := d.Mods[module]
	sig := uint64(0)
	// Each mode runs as two sub-sessions with independent scan-in seeds.
	// Because every bit of a Fibonacci LFSR is a time shift of one
	// sequence, the module's output bits are shifts of one error
	// sequence, and a single-phase MISR run can cancel shift-invariant
	// error bulk for some bit offsets; re-seeding changes the phase
	// relation so such structured aliasing cannot survive both halves.
	reseed := func(salt uint64) {
		for i, h := range []string{emb.HeadL, emb.HeadR} {
			if h == "" || interconnect.IsPad(h) {
				continue
			}
			sim.SetBus(d.Regs[h].Q, seedOf(h, salt+uint64(i)+1))
		}
	}
	for _, kind := range m.Kinds {
		w, err := d.testControl(module, kind)
		if err != nil {
			return nil, err
		}
		d.applyWord(sim, w)
		half := patterns / 2
		for phase, count := range []int{half, patterns - half} {
			if phase == 1 {
				reseed(0x5A)
			}
			for p := 0; p < count; p++ {
				for _, g := range padGens {
					g()
				}
				sim.Step()
			}
		}
		sig = sim.ReadBus(d.Regs[emb.Tail].SigQ)
	}
	return &TestRun{Module: module, Patterns: patterns, Signature: sig}, nil
}

// GateCoverage grades every stuck-at fault inside the module's
// functional region against the fault-free signature — true gate-level
// fault simulation of the synthesized BIST plan.
func (d *Design) GateCoverage(module string, patterns int, seed uint64) (faults, detected int, err error) {
	golden, err := d.RunModuleTest(module, patterns, seed, nil)
	if err != nil {
		return 0, 0, err
	}
	region := d.Mods[module].FuncRegion
	sim, err := gates.NewSim(d.Net)
	if err != nil {
		return 0, 0, err
	}
	for gi := region.Lo; gi < region.Hi; gi++ {
		out := d.Net.Gates[gi].Out
		for _, v := range []bool{false, true} {
			faults++
			sim.Reset()
			sim.SetFault(&gates.StuckAt{Sig: out, Value: v})
			run, err := d.runModuleTestOn(sim, module, patterns, seed)
			if err != nil {
				return 0, 0, err
			}
			if run.Signature != golden.Signature {
				detected++
			}
		}
	}
	return faults, detected, nil
}

// extLFSRNext advances an external (software) pattern generator for pad
// heads; any full-period recurrence works since the pads are driven by
// the tester, not by on-chip hardware.
func extLFSRNext(state uint64, width int) uint64 {
	mask := (uint64(1) << uint(width)) - 1
	state = (state*2862933555777941757 + 3037000493)
	state &= mask
	if state == 0 {
		state = 1
	}
	return state
}

func hashName(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// RunNormalVCD executes the control program like RunNormal while dumping
// every named bus of the netlist as a VCD waveform to w.
func (d *Design) RunNormalVCD(inputs map[string]uint64, w io.Writer) (map[string]uint64, error) {
	sim, err := gates.NewSim(d.Net)
	if err != nil {
		return nil, err
	}
	dump, err := vcd.New(w, d.Net, sim, nil)
	if err != nil {
		return nil, err
	}
	for pad, bus := range d.Pads {
		name := strings.TrimPrefix(pad, interconnect.PadSource)
		v, ok := inputs[name]
		if !ok {
			return nil, fmt.Errorf("elab: missing input %q", name)
		}
		sim.SetBus(bus, v)
	}
	lts, err := d.dp.Graph().Lifetimes()
	if err != nil {
		return nil, err
	}
	words := d.NormalControl()
	outs := make(map[string]uint64)
	for s := 0; s < len(words); s++ {
		if !d.HasController {
			d.applyWord(sim, words[s])
		}
		sim.Eval()
		dump.Sample()
		sim.Step()
		for _, o := range d.dp.Outputs {
			if lts[o].Born == s {
				outs[o] = sim.ReadBus(d.Net.Named("out:" + o))
			}
		}
	}
	sim.Eval()
	dump.Sample()
	if err := dump.Close(); err != nil {
		return nil, err
	}
	return outs, nil
}
