// Package elab elaborates a bound data path (with an optional BIST plan)
// into a gate-level netlist: word-level functional modules from the
// gates macro library, one-hot input multiplexers, and test registers
// whose LFSR/MISR structures are bit-identical to internal/bistgen. The
// result makes area a literal gate count and supports true gate-level
// stuck-at fault simulation of the synthesized BIST plan — the role the
// USC BITS system played in the paper's evaluation.
package elab

import (
	"fmt"

	"bistpath/internal/area"
	"bistpath/internal/bistgen"
	"bistpath/internal/gates"
)

// TestRegister is the gate-level realization of one data-path register
// in a given BIST style. Construction is two-phase: NewTestRegister
// allocates the output ranks and control inputs (so the data path can be
// wired from the Q buses), WireInput then builds the next-state logic
// from the register's multiplexed data input.
type TestRegister struct {
	Name  string
	Style area.Style
	// Taps is the LFSR/MISR feedback polynomial this cell implements.
	Taps uint64
	// Q is the data output driving the data path (the TPG rank of a
	// CBILBO).
	Q []gates.Sig
	// SigQ is the signature rank: Q itself for SA/BILBO, the shadow
	// rank for a CBILBO, nil for Normal/TPG.
	SigQ []gates.Sig
	// Control inputs (gates.Zero when the style lacks the mode).
	TPGEn gates.Sig
	SAEn  gates.Sig

	reg    *gates.FeedbackRegisterBus
	shadow *gates.FeedbackRegisterBus
	taps   uint64
	wired  bool
}

// NewTestRegister allocates the register's state and control inputs,
// using the width's primary polynomial.
func NewTestRegister(n *gates.Netlist, name string, style area.Style, width int) (*TestRegister, error) {
	taps, ok := bistgen.PrimitiveTaps(width)
	if !ok && style != area.Normal {
		return nil, fmt.Errorf("elab: no primitive polynomial for width %d", width)
	}
	return NewTestRegisterWithTaps(n, name, style, width, taps)
}

// NewTestRegisterWithTaps allocates the register's state and control
// inputs with an explicit LFSR/MISR tap mask (the elaborator assigns
// different primitive polynomials to registers that generate patterns
// for the same module, avoiding correlated operand streams).
func NewTestRegisterWithTaps(n *gates.Netlist, name string, style area.Style, width int, taps uint64) (*TestRegister, error) {
	tr := &TestRegister{Name: name, Style: style, TPGEn: gates.Zero, SAEn: gates.Zero, Taps: taps, taps: taps}
	tr.reg = n.NewFeedbackRegister(width)
	tr.Q = tr.reg.Q
	n.Name(name+".Q", tr.Q)
	switch style {
	case area.Normal:
	case area.TPG:
		tr.TPGEn = n.InputBus(name+".tpg", 1)[0]
	case area.SA:
		tr.SAEn = n.InputBus(name+".sa", 1)[0]
		tr.SigQ = tr.Q
	case area.BILBO:
		tr.TPGEn = n.InputBus(name+".tpg", 1)[0]
		tr.SAEn = n.InputBus(name+".sa", 1)[0]
		tr.SigQ = tr.Q
	case area.CBILBO:
		tr.TPGEn = n.InputBus(name+".tpg", 1)[0]
		tr.SAEn = n.InputBus(name+".sa", 1)[0]
		tr.shadow = n.NewFeedbackRegister(width)
		tr.SigQ = tr.shadow.Q
		n.Name(name+".SIG", tr.shadow.Q)
	default:
		return nil, fmt.Errorf("elab: unknown style %v", style)
	}
	return tr, nil
}

// lfsrNextBits wires the next-state logic of the shared-polynomial LFSR:
// next[0] = parity(q & taps), next[i] = q[i-1] — bit-identical to
// bistgen.LFSR.Next.
func lfsrNextBits(n *gates.Netlist, q []gates.Sig, taps uint64) []gates.Sig {
	fb := gates.Zero
	for i, s := range q {
		if taps&(1<<uint(i)) != 0 {
			if fb == gates.Zero {
				fb = s
			} else {
				fb = n.Xor2(fb, s)
			}
		}
	}
	next := make([]gates.Sig, len(q))
	next[0] = fb
	for i := 1; i < len(q); i++ {
		next[i] = q[i-1]
	}
	return next
}

// misrNextBits wires MISR next-state logic: lfsrNext(q) XOR d —
// bit-identical to bistgen.MISR.Shift.
func misrNextBits(n *gates.Netlist, q, d []gates.Sig, taps uint64) []gates.Sig {
	nx := lfsrNextBits(n, q, taps)
	out := make([]gates.Sig, len(q))
	for i := range q {
		out[i] = n.Xor2(nx[i], d[i])
	}
	return out
}

// WireInput builds the next-state logic. d is the register's data input
// (after its input multiplexer); loadEn asserts a normal-mode load. Mode
// priority when several are asserted: TPG, then SA, then load, then
// hold; the controller asserts at most one.
func (tr *TestRegister) WireInput(n *gates.Netlist, d []gates.Sig, loadEn gates.Sig) error {
	if tr.wired {
		return fmt.Errorf("elab: register %s wired twice", tr.Name)
	}
	tr.wired = true
	next := n.MuxBus(loadEn, tr.Q, d) // hold vs load
	switch tr.Style {
	case area.Normal:
	case area.TPG:
		next = n.MuxBus(tr.TPGEn, next, lfsrNextBits(n, tr.Q, tr.taps))
	case area.SA:
		next = n.MuxBus(tr.SAEn, next, misrNextBits(n, tr.Q, d, tr.taps))
	case area.BILBO:
		next = n.MuxBus(tr.SAEn, next, misrNextBits(n, tr.Q, d, tr.taps))
		next = n.MuxBus(tr.TPGEn, next, lfsrNextBits(n, tr.Q, tr.taps))
	case area.CBILBO:
		// The data rank generates patterns while the shadow rank
		// concurrently compacts the responses arriving on d.
		next = n.MuxBus(tr.TPGEn, next, lfsrNextBits(n, tr.Q, tr.taps))
		shadowNext := n.MuxBus(tr.SAEn, tr.shadow.Q, misrNextBits(n, tr.shadow.Q, d, tr.taps))
		tr.shadow.WireD(shadowNext, gates.One)
	}
	tr.reg.WireD(next, gates.One)
	return nil
}
