package elab

import (
	"strings"
	"testing"

	"bistpath/internal/benchdata"
	"bistpath/internal/bist"
	"bistpath/internal/datapath"
	"bistpath/internal/gates"
	"bistpath/internal/interconnect"
	"bistpath/internal/regassign"
)

func buildWithController(t testing.TB, b *benchdata.Benchmark, withPlan bool) *Design {
	t.Helper()
	mb, err := b.Modules()
	if err != nil {
		t.Fatal(err)
	}
	rb, err := regassign.Bind(b.Graph, mb, regassign.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ib, err := interconnect.Bind(b.Graph, mb, rb, regassign.NewSharing(b.Graph, mb))
	if err != nil {
		t.Fatal(err)
	}
	dp, err := datapath.Build(b.Graph, mb, rb, ib, 8)
	if err != nil {
		t.Fatal(err)
	}
	var plan *bist.Plan
	if withPlan {
		plan, err = bist.Optimize(dp, bist.DefaultOptions(8))
		if err != nil {
			t.Fatal(err)
		}
	}
	d, err := BuildWithOptions(dp, plan, BuildOptions{Controller: true})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// The self-timed design computes the DFG function from reset with only
// the pads driven.
func TestControllerSelfTimedMatchesDFG(t *testing.T) {
	for _, b := range benchdata.All() {
		d := buildWithController(t, b, false)
		if !d.HasController {
			t.Fatal("controller flag lost")
		}
		for s := uint64(1); s <= 6; s++ {
			in := make(map[string]uint64)
			for i, name := range b.Graph.Inputs() {
				in[name] = (s*57 + uint64(i)*13) % 251
			}
			if err := d.CheckAgainstDFG(in); err != nil {
				t.Fatalf("%s: %v", b.Name, err)
			}
		}
	}
}

// With a BIST plan the controller-equipped design still works in normal
// mode (test modes held off by external zeros).
func TestControllerWithBISTPlanNormalMode(t *testing.T) {
	b := benchdata.Ex1()
	d := buildWithController(t, b, true)
	if err := d.CheckAgainstDFG(map[string]uint64{"a": 9, "b": 8, "e": 7, "g": 6}); err != nil {
		t.Fatal(err)
	}
}

// Normal-mode control signals must not be primary inputs of a
// controller-equipped netlist.
func TestControllerInternalizesControls(t *testing.T) {
	b := benchdata.Ex1()
	withCtl := buildWithController(t, b, false)
	without := buildFor(t, b, false)
	if len(withCtl.Net.Inputs) >= len(without.Net.Inputs) {
		t.Errorf("controller design has %d inputs, controller-free has %d",
			len(withCtl.Net.Inputs), len(without.Net.Inputs))
	}
	// Only pads remain as inputs (no BIST plan, so no tpg/sa pins).
	if want := len(withCtl.Pads) * 8; len(withCtl.Net.Inputs) != want {
		t.Errorf("controller design has %d input bits, want %d (pads only)",
			len(withCtl.Net.Inputs), want)
	}
	if len(withCtl.StepCounter) == 0 {
		t.Error("no step counter bus")
	}
}

// The controller saturates at the final step: extra clocks after the
// schedule keep the registers stable.
func TestControllerSaturates(t *testing.T) {
	b := benchdata.Ex1()
	d := buildWithController(t, b, false)
	in := map[string]uint64{"a": 3, "b": 4, "e": 5, "g": 6}
	want, err := d.dp.Graph().Eval(in, 8)
	if err != nil {
		t.Fatal(err)
	}
	sim := newSim(t, d)
	for pad, bus := range d.Pads {
		sim.SetBus(bus, in[strings.TrimPrefix(pad, "in:")])
	}
	for i := 0; i < len(d.dp.Steps)+10; i++ { // overshoot by 10 clocks
		sim.Step()
	}
	// h lives in some register; after saturation it must still be there.
	got := sim.ReadBus(d.Net.Named("out:h"))
	if got != want["h"] {
		t.Errorf("after overshoot h = %d, want %d", got, want["h"])
	}
}

// Gate-level test runs require the controller-free build.
func TestControllerRejectsTestMode(t *testing.T) {
	b := benchdata.Ex1()
	d := buildWithController(t, b, true)
	if _, err := d.RunModuleTest("M1", 10, 1, nil); err == nil {
		t.Error("test run accepted on controller design")
	}
}

func newSim(t testing.TB, d *Design) *gates.Sim {
	t.Helper()
	sim, err := gates.NewSim(d.Net)
	if err != nil {
		t.Fatal(err)
	}
	return sim
}
