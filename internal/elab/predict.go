package elab

import (
	"fmt"

	"bistpath/internal/gates"
	"bistpath/internal/testability"
)

// PredictCoverage runs COP testability analysis over a module's
// functional cone (observed at its output bus, with the port values
// treated as uniform random — the BIST embedding guarantees
// pseudo-random streams there) and returns the expected stuck-at
// coverage for the pattern budget, plus the list of
// random-pattern-resistant faults (single-pattern detection probability
// below 1/patterns). Orders of magnitude cheaper than GateCoverage, and
// accurate enough to flag resistant modules (see internal/testability).
func (d *Design) PredictCoverage(module string, patterns int) (float64, []gates.StuckAt, error) {
	m, ok := d.Mods[module]
	if !ok {
		return 0, nil, fmt.Errorf("elab: unknown module %s", module)
	}
	an, err := testability.COP(d.Net, m.Out)
	if err != nil {
		return 0, nil, err
	}
	var faults []gates.StuckAt
	for gi := m.FuncRegion.Lo; gi < m.FuncRegion.Hi; gi++ {
		out := d.Net.Gates[gi].Out
		faults = append(faults, gates.StuckAt{Sig: out, Value: false}, gates.StuckAt{Sig: out, Value: true})
	}
	cov := an.ExpectedCoverage(faults, patterns)
	hard := an.HardFaults(faults, 1/float64(patterns))
	return cov, hard, nil
}
