package elab

import (
	"fmt"
	"sort"

	"bistpath/internal/area"
	"bistpath/internal/bist"
	"bistpath/internal/bistgen"
	"bistpath/internal/datapath"
	"bistpath/internal/dfg"
	"bistpath/internal/gates"
	"bistpath/internal/interconnect"
)

// Region is a contiguous gate-index range attributed to one structural
// element, used for per-element area accounting and fault grading.
type Region struct {
	Lo, Hi int // gates index range [Lo, Hi)
}

// Gates returns the number of gates in the region.
func (r Region) Gates() int { return r.Hi - r.Lo }

// Module is the gate-level realization of one functional module with
// its input multiplexers.
type Module struct {
	Name  string
	Kinds []dfg.Kind
	// Select inputs (one-hot), keyed by source identifier.
	LeftSel  map[string]gates.Sig
	RightSel map[string]gates.Sig
	// KindSel selects the operation for multi-kind (ALU) modules; nil
	// for single-kind modules.
	KindSel map[dfg.Kind]gates.Sig
	Out     []gates.Sig
	// FuncRegion covers the functional unit(s); MuxRegion the port
	// multiplexers.
	FuncRegion Region
	MuxRegion  Region
}

// BuildOptions configures elaboration.
type BuildOptions struct {
	// Controller synthesizes an on-chip microcode controller (step
	// counter plus decoded control signals) instead of exposing the
	// normal-mode control signals as primary inputs. The resulting
	// netlist runs its schedule autonomously from reset; BIST mode
	// signals (tpg/sa and port selects during test) remain external, so
	// gate-level test runs require a controller-free build.
	Controller bool
}

// Design is a fully elaborated gate-level data path.
type Design struct {
	Net   *gates.Netlist
	Width int
	Pads  map[string][]gates.Sig
	Regs  map[string]*TestRegister
	// RegSel are the register-input select lines: register -> source ->
	// control input.
	RegSel map[string]map[string]gates.Sig
	// RegMuxRegion covers each register's input multiplexer;
	// RegCellRegion its storage/BIST cell logic.
	RegMuxRegion  map[string]Region
	RegCellRegion map[string]Region
	Mods          map[string]*Module

	// HasController reports whether normal-mode control is generated
	// on-chip; StepCounter is the controller's state bus when so.
	HasController bool
	StepCounter   []gates.Sig

	ctlSigs map[string]gates.Sig // controller-driven control signals
	dp      *datapath.Datapath
	plan    *bist.Plan
}

// ctl allocates a 1-bit control signal: a primary input normally, or a
// placeholder the controller drives later.
func (d *Design) ctl(name string) gates.Sig {
	if !d.HasController {
		return d.Net.InputBus(name, 1)[0]
	}
	s := d.Net.Sig()
	d.Net.Name(name, []gates.Sig{s})
	d.ctlSigs[name] = s
	return s
}

// Datapath returns the bound data path this design implements.
func (d *Design) Datapath() *datapath.Datapath { return d.dp }

// Plan returns the BIST plan (nil if elaborated without one).
func (d *Design) Plan() *bist.Plan { return d.plan }

// Build elaborates the data path. A nil plan produces plain registers
// (the pre-BIST design); with a plan, each register is built in the
// style the plan assigns.
func Build(dp *datapath.Datapath, plan *bist.Plan) (*Design, error) {
	return BuildWithOptions(dp, plan, BuildOptions{})
}

// BuildWithOptions elaborates the data path with explicit options.
func BuildWithOptions(dp *datapath.Datapath, plan *bist.Plan, opts BuildOptions) (*Design, error) {
	n := gates.New()
	d := &Design{
		Net:           n,
		Width:         dp.Width,
		Pads:          make(map[string][]gates.Sig),
		Regs:          make(map[string]*TestRegister),
		RegSel:        make(map[string]map[string]gates.Sig),
		RegMuxRegion:  make(map[string]Region),
		RegCellRegion: make(map[string]Region),
		Mods:          make(map[string]*Module),
		HasController: opts.Controller,
		ctlSigs:       make(map[string]gates.Sig),
		dp:            dp,
		plan:          plan,
	}
	// Pads.
	for _, p := range dp.InPads {
		d.Pads[p] = n.InputBus(p, dp.Width)
	}
	// Registers, phase 1: allocate outputs. Registers that generate
	// patterns for the same module receive different primitive
	// polynomials so their operand streams are uncorrelated.
	tapsFor := assignTaps(dp, plan)
	for _, r := range dp.Regs {
		style := area.Normal
		if plan != nil {
			if s, ok := plan.Styles[r.Name]; ok {
				style = s
			}
		}
		tr, err := NewTestRegisterWithTaps(n, r.Name, style, dp.Width, tapsFor[r.Name])
		if err != nil {
			return nil, err
		}
		d.Regs[r.Name] = tr
	}
	src := func(id string) ([]gates.Sig, error) {
		if interconnect.IsPad(id) {
			bus, ok := d.Pads[id]
			if !ok {
				return nil, fmt.Errorf("elab: unknown pad %s", id)
			}
			return bus, nil
		}
		if tr, ok := d.Regs[id]; ok {
			return tr.Q, nil
		}
		if m, ok := d.Mods[id]; ok {
			return m.Out, nil
		}
		return nil, fmt.Errorf("elab: unknown source %s", id)
	}
	// Modules (depend only on register Qs and pads).
	for _, m := range dp.Modules {
		gm, err := d.buildModule(m, src)
		if err != nil {
			return nil, err
		}
		d.Mods[m.Name] = gm
	}
	// Registers, phase 2: input muxes and next-state logic.
	for _, r := range dp.Regs {
		sels := make(map[string]gates.Sig, len(r.Sources))
		var selList []gates.Sig
		var buses [][]gates.Sig
		muxLo := n.NumGates()
		for _, s := range r.Sources {
			sel := d.ctl(r.Name + ".sel." + s)
			sels[s] = sel
			bus, err := src(s)
			if err != nil {
				return nil, err
			}
			selList = append(selList, sel)
			buses = append(buses, bus)
		}
		din := n.OneHotMux(selList, buses)
		loadEn := gates.Zero
		for _, sel := range selList {
			if loadEn == gates.Zero {
				loadEn = sel
			} else {
				loadEn = n.Or2(loadEn, sel)
			}
		}
		muxHi := n.NumGates()
		cellLo := n.NumGates()
		if err := d.Regs[r.Name].WireInput(n, din, loadEn); err != nil {
			return nil, err
		}
		d.RegSel[r.Name] = sels
		d.RegMuxRegion[r.Name] = Region{muxLo, muxHi}
		d.RegCellRegion[r.Name] = Region{cellLo, n.NumGates()}
	}
	// Primary outputs: the Q buses of the registers holding each output
	// variable (sampled by the harness at the right cycle).
	for _, o := range dp.Outputs {
		for _, r := range dp.Regs {
			for _, v := range r.Vars {
				if v == o {
					n.Name("out:"+o, d.Regs[r.Name].Q)
				}
			}
		}
	}
	if opts.Controller {
		d.buildController()
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// buildController synthesizes the on-chip microcode controller: a
// saturating step counter plus, per control signal, the OR of the
// decoded steps in which the control program asserts it.
func (d *Design) buildController() {
	n := d.Net
	words := d.NormalControl()
	last := len(words) - 1
	cw := 1
	for 1<<uint(cw) < len(words) {
		cw++
	}
	counter := n.NewFeedbackRegister(cw)
	inc, _ := n.AddBus(counter.Q, n.ConstBus(cw, 1), gates.Zero)
	atLast := n.EqConst(counter.Q, uint64(last))
	counter.WireD(n.MuxBus(atLast, inc, counter.Q), gates.One)
	d.StepCounter = counter.Q
	n.Name("ctrl.step", counter.Q)
	// The counter value is the step about to EXECUTE: controls for step
	// s decode counter == s.
	decode := make([]gates.Sig, len(words))
	for s := range words {
		decode[s] = n.EqConst(counter.Q, uint64(s))
	}
	// Collect, per control name, the asserting steps.
	bySig := make(map[string][]int)
	for s, w := range words {
		for name, on := range w {
			if on {
				bySig[name] = append(bySig[name], s)
			}
		}
	}
	var names []string
	for name := range d.ctlSigs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		val := gates.Zero
		for _, s := range bySig[name] {
			val = n.OrF(val, decode[s])
		}
		n.Drive(d.ctlSigs[name], val)
	}
}

// assignTaps colors the "co-head" relation (register pairs that feed
// the two ports of one module under the plan's embeddings) so that
// paired pattern generators use different primitive polynomials:
// same-polynomial TPG pairs would apply only a fixed phase-shifted orbit
// of 2^w-1 operand pairs, leaving many faults unexercised. Greedy
// first-fit coloring over the pair graph, one polynomial per color.
func assignTaps(dp *datapath.Datapath, plan *bist.Plan) map[string]uint64 {
	primary, _ := bistgen.PrimitiveTaps(dp.Width)
	out := make(map[string]uint64, len(dp.Regs))
	for _, r := range dp.Regs {
		out[r.Name] = primary
	}
	if plan == nil {
		return out
	}
	adj := make(map[string]map[string]bool)
	for _, e := range plan.Embeddings {
		if e.HeadR == "" || interconnect.IsPad(e.HeadL) || interconnect.IsPad(e.HeadR) {
			continue
		}
		if adj[e.HeadL] == nil {
			adj[e.HeadL] = make(map[string]bool)
		}
		if adj[e.HeadR] == nil {
			adj[e.HeadR] = make(map[string]bool)
		}
		adj[e.HeadL][e.HeadR] = true
		adj[e.HeadR][e.HeadL] = true
	}
	var names []string
	for n := range adj {
		names = append(names, n)
	}
	sort.Strings(names)
	color := make(map[string]int)
	maxColor := 0
	for _, v := range names {
		used := make(map[int]bool)
		for u := range adj[v] {
			if c, ok := color[u]; ok {
				used[c] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		color[v] = c
		if c > maxColor {
			maxColor = c
		}
	}
	taps := bistgen.DistinctTaps(dp.Width, maxColor+1)
	for name, c := range color {
		out[name] = taps[c%len(taps)]
	}
	return out
}

// buildModule elaborates one functional module: port muxes, one
// functional unit per kind, and (for ALUs) a one-hot kind mux.
func (d *Design) buildModule(m *datapath.Module, src func(string) ([]gates.Sig, error)) (*Module, error) {
	n := d.Net
	w := d.Width
	gm := &Module{
		Name:     m.Name,
		Kinds:    append([]dfg.Kind(nil), m.Kinds...),
		LeftSel:  make(map[string]gates.Sig),
		RightSel: make(map[string]gates.Sig),
	}
	muxLo := n.NumGates()
	port := func(sources []string, side string, selMap map[string]gates.Sig) ([]gates.Sig, error) {
		var sels []gates.Sig
		var buses [][]gates.Sig
		for _, s := range sources {
			sel := d.ctl(m.Name + "." + side + "sel." + s)
			selMap[s] = sel
			bus, err := src(s)
			if err != nil {
				return nil, err
			}
			sels = append(sels, sel)
			buses = append(buses, bus)
		}
		if len(buses) == 1 {
			// Single source: wired directly, no mux gates; the select
			// input still exists for controller uniformity.
			return buses[0], nil
		}
		return n.OneHotMux(sels, buses), nil
	}
	left, err := port(m.Left, "l", gm.LeftSel)
	if err != nil {
		return nil, err
	}
	var right []gates.Sig
	if len(m.Right) > 0 {
		right, err = port(m.Right, "r", gm.RightSel)
		if err != nil {
			return nil, err
		}
	}
	muxHi := n.NumGates()
	gm.MuxRegion = Region{muxLo, muxHi}

	funcLo := n.NumGates()
	results := make([][]gates.Sig, 0, len(m.Kinds))
	for _, k := range m.Kinds {
		r, err := buildKind(n, k, left, right, w)
		if err != nil {
			return nil, err
		}
		results = append(results, r)
	}
	if len(m.Kinds) == 1 {
		gm.Out = results[0]
	} else {
		gm.KindSel = make(map[dfg.Kind]gates.Sig, len(m.Kinds))
		var sels []gates.Sig
		for _, k := range m.Kinds {
			sel := d.ctl(m.Name + ".op." + string(k))
			gm.KindSel[k] = sel
			sels = append(sels, sel)
		}
		gm.Out = n.OneHotMux(sels, results)
	}
	gm.FuncRegion = Region{funcLo, n.NumGates()}
	n.Name(m.Name+".out", gm.Out)
	return gm, nil
}

func buildKind(n *gates.Netlist, k dfg.Kind, a, b []gates.Sig, w int) ([]gates.Sig, error) {
	widen := func(bit gates.Sig) []gates.Sig {
		out := n.ConstBus(w, 0)
		out[0] = bit
		return out
	}
	switch k {
	case dfg.Add:
		return n.AddBusNoCarry(a, b, gates.Zero), nil
	case dfg.Sub:
		return n.SubBusNoBorrow(a, b), nil
	case dfg.Mul:
		return n.MulBus(a, b), nil
	case dfg.Div:
		return n.DivBus(a, b), nil
	case dfg.And:
		return n.BitwiseBus(gates.And, a, b), nil
	case dfg.Or:
		return n.BitwiseBus(gates.Or, a, b), nil
	case dfg.Xor:
		return n.BitwiseBus(gates.Xor, a, b), nil
	case dfg.Lt:
		return widen(n.LtBus(a, b)), nil
	case dfg.Gt:
		return widen(n.LtBus(b, a)), nil
	}
	return nil, fmt.Errorf("elab: unsupported kind %q", k)
}

// AreaReport summarizes literal gate counts per structural class.
type AreaReport struct {
	Functional   int // functional units
	PortMuxes    int // module input muxes
	RegMuxes     int // register input muxes
	RegCells     int // register/BIST cell logic (gates)
	DFFs         int
	TotalGates   int
	TotalSignals int
}

// MeasureArea tallies gate counts by region.
func (d *Design) MeasureArea() AreaReport {
	var r AreaReport
	for _, m := range d.Mods {
		r.Functional += m.FuncRegion.Gates()
		r.PortMuxes += m.MuxRegion.Gates()
	}
	for name := range d.Regs {
		r.RegMuxes += d.RegMuxRegion[name].Gates()
		r.RegCells += d.RegCellRegion[name].Gates()
	}
	r.DFFs = d.Net.NumDFFs()
	r.TotalGates = d.Net.NumGates()
	r.TotalSignals = d.Net.NumSignals()
	return r
}

// SortedRegNames returns the register names in order.
func (d *Design) SortedRegNames() []string {
	var out []string
	for name := range d.Regs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
