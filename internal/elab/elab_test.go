package elab

import (
	"strings"
	"testing"

	"bistpath/internal/area"
	"bistpath/internal/benchdata"
	"bistpath/internal/bist"
	"bistpath/internal/bistgen"
	"bistpath/internal/datapath"
	"bistpath/internal/dfg"
	"bistpath/internal/gates"
	"bistpath/internal/interconnect"
	"bistpath/internal/regassign"
)

// buildFor elaborates a benchmark with or without its BIST plan.
func buildFor(t testing.TB, b *benchdata.Benchmark, withPlan bool) *Design {
	t.Helper()
	mb, err := b.Modules()
	if err != nil {
		t.Fatal(err)
	}
	rb, err := regassign.Bind(b.Graph, mb, regassign.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ib, err := interconnect.Bind(b.Graph, mb, rb, regassign.NewSharing(b.Graph, mb))
	if err != nil {
		t.Fatal(err)
	}
	dp, err := datapath.Build(b.Graph, mb, rb, ib, 8)
	if err != nil {
		t.Fatal(err)
	}
	var plan *bist.Plan
	if withPlan {
		plan, err = bist.Optimize(dp, bist.DefaultOptions(8))
		if err != nil {
			t.Fatal(err)
		}
	}
	d, err := Build(dp, plan)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// The headline equivalence: gate-level simulation of the elaborated
// design matches direct DFG evaluation on every benchmark.
func TestGateLevelMatchesDFG(t *testing.T) {
	for _, b := range benchdata.All() {
		for _, withPlan := range []bool{false, true} {
			d := buildFor(t, b, withPlan)
			for s := uint64(1); s <= 8; s++ {
				in := make(map[string]uint64)
				for i, name := range b.Graph.Inputs() {
					in[name] = (s*131 + uint64(i)*29) % 251
				}
				if err := d.CheckAgainstDFG(in); err != nil {
					t.Fatalf("%s plan=%v: %v", b.Name, withPlan, err)
				}
			}
		}
	}
}

func TestGateLevelMatchesDFGRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for seed := int64(300); seed < 312; seed++ {
		g, mb, err := benchdata.RandomWithModules(benchdata.DefaultRandomConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		rb, err := regassign.Bind(g, mb, regassign.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		ib, err := interconnect.Bind(g, mb, rb, regassign.NewSharing(g, mb))
		if err != nil {
			t.Fatal(err)
		}
		dp, err := datapath.Build(g, mb, rb, ib, 8)
		if err != nil {
			t.Fatal(err)
		}
		d, err := Build(dp, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for s := uint64(0); s < 4; s++ {
			in := make(map[string]uint64)
			for i, name := range g.Inputs() {
				in[name] = s*17 + uint64(i)*71
			}
			if err := d.CheckAgainstDFG(in); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
	}
}

// The gate-level LFSR cell must produce the exact state sequence of
// bistgen.LFSR (same polynomial, same semantics).
func TestTPGCellMatchesBistgen(t *testing.T) {
	n := gates.New()
	tr, err := NewTestRegister(n, "R", area.TPG, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WireInput(n, n.ConstBus(8, 0), gates.Zero); err != nil {
		t.Fatal(err)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	sim, err := gates.NewSim(n)
	if err != nil {
		t.Fatal(err)
	}
	const seed = 0x5A
	sim.SetBus(tr.Q, seed)
	sim.Set(tr.TPGEn, true)
	ref, err := bistgen.NewLFSR(8, seed)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		sim.Step()
		want := ref.Next()
		if got := sim.ReadBus(tr.Q); got != want {
			t.Fatalf("step %d: gate LFSR %#x, bistgen %#x", i, got, want)
		}
	}
}

// The gate-level MISR cell must produce bistgen.MISR signatures for the
// same input stream.
func TestSACellMatchesBistgen(t *testing.T) {
	n := gates.New()
	din := n.InputBus("d", 8)
	tr, err := NewTestRegister(n, "R", area.SA, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WireInput(n, din, gates.Zero); err != nil {
		t.Fatal(err)
	}
	sim, err := gates.NewSim(n)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := bistgen.NewMISR(8)
	if err != nil {
		t.Fatal(err)
	}
	sim.Set(tr.SAEn, true)
	for i := uint64(0); i < 200; i++ {
		word := (i*37 + 11) & 0xFF
		sim.SetBus(din, word)
		sim.Step()
		ref.Shift(word)
		if got := sim.ReadBus(tr.Q); got != ref.Signature() {
			t.Fatalf("step %d: gate MISR %#x, bistgen %#x", i, got, ref.Signature())
		}
	}
}

// A CBILBO cell generates and compacts concurrently.
func TestCBILBOCellConcurrent(t *testing.T) {
	n := gates.New()
	din := n.InputBus("d", 8)
	tr, err := NewTestRegister(n, "R", area.CBILBO, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WireInput(n, din, gates.Zero); err != nil {
		t.Fatal(err)
	}
	sim, err := gates.NewSim(n)
	if err != nil {
		t.Fatal(err)
	}
	sim.SetBus(tr.Q, 0x31)
	sim.Set(tr.TPGEn, true)
	sim.Set(tr.SAEn, true)
	lref, _ := bistgen.NewLFSR(8, 0x31)
	mref, _ := bistgen.NewMISR(8)
	for i := uint64(0); i < 100; i++ {
		word := (i * 73) & 0xFF
		sim.SetBus(din, word)
		sim.Step()
		if got := sim.ReadBus(tr.Q); got != lref.Next() {
			t.Fatalf("step %d: CBILBO TPG rank diverged", i)
		}
		mref.Shift(word)
		if got := sim.ReadBus(tr.SigQ); got != mref.Signature() {
			t.Fatalf("step %d: CBILBO SA rank diverged", i)
		}
	}
}

// BILBO register: normal load works when test modes are off.
func TestBILBONormalMode(t *testing.T) {
	n := gates.New()
	din := n.InputBus("d", 8)
	load := n.InputBus("load", 1)[0]
	tr, err := NewTestRegister(n, "R", area.BILBO, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WireInput(n, din, load); err != nil {
		t.Fatal(err)
	}
	sim, err := gates.NewSim(n)
	if err != nil {
		t.Fatal(err)
	}
	sim.SetBus(din, 0xC3)
	sim.Set(load, true)
	sim.Step()
	if got := sim.ReadBus(tr.Q); got != 0xC3 {
		t.Fatalf("load failed: %#x", got)
	}
	sim.Set(load, false)
	sim.SetBus(din, 0x11)
	sim.Step()
	if got := sim.ReadBus(tr.Q); got != 0xC3 {
		t.Fatalf("hold failed: %#x", got)
	}
}

// Gate-level BIST: on ex1 every module's test run detects a very high
// fraction of internal stuck-at faults.
func TestGateCoverageEx1(t *testing.T) {
	d := buildFor(t, benchdata.Ex1(), true)
	for _, m := range d.Datapath().Modules {
		faults, detected, err := d.GateCoverage(m.Name, 250, 0xF00D)
		if err != nil {
			t.Fatal(err)
		}
		pct := float64(detected) / float64(faults) * 100
		if pct < 90 {
			t.Errorf("module %s: gate coverage %.1f%% (%d/%d)", m.Name, pct, detected, faults)
		}
	}
}

// The BIST run must be deterministic and sensitive: a different seed
// gives a different signature (overwhelmingly likely).
func TestModuleTestDeterministic(t *testing.T) {
	d := buildFor(t, benchdata.Ex1(), true)
	r1, err := d.RunModuleTest("M1", 100, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := d.RunModuleTest("M1", 100, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Signature != r2.Signature {
		t.Error("test run not deterministic")
	}
	r3, err := d.RunModuleTest("M1", 100, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Signature == r1.Signature {
		t.Error("different seeds gave identical signatures")
	}
}

// Area accounting: regions are disjoint and cover all gates.
func TestMeasureArea(t *testing.T) {
	d := buildFor(t, benchdata.Tseng1(), true)
	r := d.MeasureArea()
	sum := r.Functional + r.PortMuxes + r.RegMuxes + r.RegCells
	if sum != r.TotalGates {
		t.Errorf("region gates %d != total %d", sum, r.TotalGates)
	}
	if r.DFFs == 0 || r.Functional == 0 {
		t.Errorf("implausible area report %+v", r)
	}
	// The BIST version must carry more register-cell logic than the
	// plain one.
	plain := buildFor(t, benchdata.Tseng1(), false)
	if plainArea := plain.MeasureArea(); plainArea.RegCells >= r.RegCells {
		t.Errorf("BIST register cells %d not above plain %d", r.RegCells, plainArea.RegCells)
	}
}

// Styles drive gate cost in the right order at the cell level.
func TestCellCostOrdering(t *testing.T) {
	cost := func(style area.Style) int {
		n := gates.New()
		din := n.InputBus("d", 8)
		tr, err := NewTestRegister(n, "R", style, 8)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.WireInput(n, din, gates.Zero); err != nil {
			t.Fatal(err)
		}
		return n.NumGates() + 2*n.NumDFFs() // weight DFFs like small cells
	}
	normal := cost(area.Normal)
	tpg := cost(area.TPG)
	bilbo := cost(area.BILBO)
	cbilbo := cost(area.CBILBO)
	if !(normal < tpg && tpg < bilbo && bilbo < cbilbo) {
		t.Errorf("cell costs out of order: REG=%d TPG=%d BILBO=%d CBILBO=%d", normal, tpg, bilbo, cbilbo)
	}
}

// Gate coverage across all benchmarks: modules without dividers must
// test near-perfectly (comparators observe through a single output bit,
// so ALUs with a compare mode sit slightly lower); divider-bearing
// modules sit at the restoring divider's intrinsic random-pattern
// ceiling (~80%).
func TestGateCoverageAllBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	hasDiv := func(kinds []dfg.Kind) bool {
		for _, k := range kinds {
			if k == dfg.Div {
				return true
			}
		}
		return false
	}
	for _, b := range benchdata.All() {
		d := buildFor(t, b, true)
		for _, m := range d.Datapath().Modules {
			faults, detected, err := d.GateCoverage(m.Name, 250, 0xF00D)
			if err != nil {
				t.Fatalf("%s/%s: %v", b.Name, m.Name, err)
			}
			pct := float64(detected) / float64(faults) * 100
			threshold := 92.0
			if hasDiv(m.Kinds) {
				threshold = 65.0
			}
			if pct < threshold {
				t.Errorf("%s/%s (%v): gate coverage %.1f%% below %.0f%%",
					b.Name, m.Name, m.Kinds, pct, threshold)
			}
		}
	}
}

func TestPadHeadTestRun(t *testing.T) {
	// Paulin has pad-fed module ports; its plan may use pad heads. Every
	// module must still be testable at gate level.
	d := buildFor(t, benchdata.Paulin(), true)
	for _, m := range d.Datapath().Modules {
		run, err := d.RunModuleTest(m.Name, 64, 5, nil)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if run.Signature == 0 {
			t.Logf("%s: zero signature (possible but unlikely)", m.Name)
		}
	}
}

func TestRunNormalVCD(t *testing.T) {
	d := buildFor(t, benchdata.Ex1(), true)
	in := map[string]uint64{"a": 1, "b": 2, "e": 3, "g": 4}
	var sb strings.Builder
	out, err := d.RunNormalVCD(in, &sb)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := d.RunNormal(in)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range plain {
		if out[k] != v {
			t.Errorf("VCD run output %s = %d, plain run %d", k, out[k], v)
		}
	}
	dump := sb.String()
	for _, want := range []string{"$enddefinitions", "R1_Q", "M1_out", "#0"} {
		if !strings.Contains(dump, want) {
			t.Errorf("VCD missing %q", want)
		}
	}
	// One timestamp per control step plus the final sample and close.
	if got := strings.Count(dump, "\n#"); got < len(d.Datapath().Steps) {
		t.Errorf("only %d timestamps for %d steps", got, len(d.Datapath().Steps))
	}
}
