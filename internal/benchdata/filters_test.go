package benchdata

import (
	"testing"

	"bistpath/internal/dfg"
	"bistpath/internal/regassign"
)

func TestFIRStructure(t *testing.T) {
	b, err := FIR(8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	mb, err := b.Modules()
	if err != nil {
		t.Fatal(err)
	}
	if err := mb.Validate(b.Graph); err != nil {
		t.Fatal(err)
	}
	// 8 products, 7 tree adds.
	if got := len(b.Graph.Ops()); got != 15 {
		t.Errorf("fir8 has %d ops, want 15", got)
	}
	// The filter computes a dot product.
	in := map[string]uint64{}
	want := uint64(0)
	for i := 0; i < 8; i++ {
		x, c := uint64(i+1), uint64(2*i+1)
		in[key("x", i)] = x
		in[key("c", i)] = c
		want += x * c
	}
	vals, err := b.Graph.Eval(in, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range b.Graph.Outputs() {
		if vals[o] != want&0xFFFF {
			t.Errorf("fir output %s = %d, want %d", o, vals[o], want)
		}
	}
}

func key(p string, i int) string { return p + string(rune('0'+i)) }

func TestFIRRespectsResourceBudget(t *testing.T) {
	b, err := FIR(8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	perStep := map[int]map[dfg.Kind]int{}
	for _, o := range b.Graph.Ops() {
		if perStep[o.Step] == nil {
			perStep[o.Step] = map[dfg.Kind]int{}
		}
		perStep[o.Step][o.Kind]++
	}
	for s, m := range perStep {
		if m[dfg.Mul] > 2 || m[dfg.Add] > 2 {
			t.Errorf("step %d exceeds budget: %v", s, m)
		}
	}
}

func TestBiquadComputesSections(t *testing.T) {
	b, err := Biquad(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	in := map[string]uint64{"x": 5}
	for s := 0; s < 2; s++ {
		in[sfx("z1", s)] = uint64(s + 1)
		in[sfx("z2", s)] = uint64(s + 2)
		in[sfx("a1", s)] = 1
		in[sfx("a2", s)] = 1
		in[sfx("b0", s)] = 2
		in[sfx("b1", s)] = 1
		in[sfx("b2", s)] = 1
	}
	vals, err := b.Graph.Eval(in, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Section 0: w = 5 + 1*1 + 1*2 = 8; y = 2*8 + 1 + 2 = 19.
	if vals["w_0"] != 8 {
		t.Errorf("w_0 = %d, want 8", vals["w_0"])
	}
	if vals["y_0"] != 19 {
		t.Errorf("y_0 = %d, want 19", vals["y_0"])
	}
	// Section 1 consumes y_0: w = 19 + 2 + 3 = 24; y = 48 + 2 + 3 = 53.
	if vals["y_1"] != 53 {
		t.Errorf("y_1 = %d, want 53", vals["y_1"])
	}
}

func sfx(n string, s int) string { return n + "_" + string(rune('0'+s)) }

func TestLatticeComputes(t *testing.T) {
	b, err := Lattice(2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Stage order: i = stages-1 .. 0.
	in := map[string]uint64{"fin": 10, "b0": 1, "b1": 2, "k0": 3, "k1": 1}
	vals, err := b.Graph.Eval(in, 16)
	if err != nil {
		t.Fatal(err)
	}
	// i=1: f_1 = 10 - 1*2 = 8; bn_1 = 2 + 1*8 = 10.
	// i=0: f_0 = 8 - 3*1 = 5; bn_0 = 1 + 3*5 = 16.
	if vals["f_0"] != 5 || vals["bn_0"] != 16 || vals["bn_1"] != 10 {
		t.Errorf("lattice values wrong: f_0=%d bn_0=%d bn_1=%d", vals["f_0"], vals["bn_0"], vals["bn_1"])
	}
}

// Every filter benchmark must flow through the complete allocation
// pipeline and keep the Table I shape (testable <= traditional forced
// CBILBOs at equal register count).
func TestFiltersSynthesizable(t *testing.T) {
	builds := []func() (*Benchmark, error){
		func() (*Benchmark, error) { return FIR(8, 2, 2) },
		func() (*Benchmark, error) { return FIR(16, 3, 3) },
		func() (*Benchmark, error) { return Biquad(2, 2, 2) },
		func() (*Benchmark, error) { return Lattice(4, 2, 2) },
	}
	for _, build := range builds {
		b, err := build()
		if err != nil {
			t.Fatal(err)
		}
		mb, err := b.Modules()
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		rb, err := regassign.Bind(b.Graph, mb, regassign.DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if err := rb.Validate(b.Graph); err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		trad, err := regassign.Traditional(b.Graph)
		if err != nil {
			t.Fatal(err)
		}
		min, _ := b.Graph.MinRegisters()
		if trad.NumRegisters() != min {
			t.Errorf("%s: traditional %d registers, minimum %d", b.Name, trad.NumRegisters(), min)
		}
		if rb.NumRegisters() > min+1 {
			t.Errorf("%s: testable %d registers, minimum %d", b.Name, rb.NumRegisters(), min)
		}
		nb := len(regassign.ForcedCBILBOs(b.Graph, mb, rb.Sets()))
		nt := len(regassign.ForcedCBILBOs(b.Graph, mb, trad.Sets()))
		if nb > nt {
			t.Errorf("%s: testable forces %d CBILBOs, traditional %d", b.Name, nb, nt)
		}
	}
}

func TestFilterArgumentValidation(t *testing.T) {
	if _, err := FIR(1, 1, 1); err == nil {
		t.Error("1-tap FIR accepted")
	}
	if _, err := Biquad(0, 1, 1); err == nil {
		t.Error("0-section biquad accepted")
	}
	if _, err := Lattice(0, 1, 1); err == nil {
		t.Error("0-stage lattice accepted")
	}
}
