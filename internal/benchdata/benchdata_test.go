package benchdata

import (
	"testing"

	"bistpath/internal/dfg"
)

func TestAllBenchmarksValid(t *testing.T) {
	bs := All()
	if len(bs) != 5 {
		t.Fatalf("got %d benchmarks, want 5", len(bs))
	}
	for _, b := range bs {
		if err := b.Graph.Validate(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
		mb, err := b.Modules()
		if err != nil {
			t.Errorf("%s: %v", b.Name, err)
			continue
		}
		if err := mb.Validate(b.Graph); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
	}
}

func TestPaperRegisterMinimums(t *testing.T) {
	// The reconstructions are built so that the minimum register count
	// equals the count the paper reports in Table I.
	for _, b := range All() {
		min, err := b.Graph.MinRegisters()
		if err != nil {
			t.Fatal(err)
		}
		if min != b.PaperRegisters {
			t.Errorf("%s: minimum %d registers, paper reports %d", b.Name, min, b.PaperRegisters)
		}
	}
}

func TestEx1MatchesPaperStructure(t *testing.T) {
	b := Ex1()
	g := b.Graph
	if len(g.Vars()) != 8 {
		t.Errorf("ex1 has %d variables, want 8 (a..h)", len(g.Vars()))
	}
	if len(g.Ops()) != 4 {
		t.Errorf("ex1 has %d ops, want 4", len(g.Ops()))
	}
	mb, err := b.Modules()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(mb.Modules); got != 2 {
		t.Errorf("ex1 has %d modules, want 2 (M1, M2)", got)
	}
	if mb.TemporalMultiplicity("M1") != 2 || mb.TemporalMultiplicity("M2") != 2 {
		t.Error("ex1 temporal multiplicities should both be 2")
	}
}

func TestTsengVariantsShareStructure(t *testing.T) {
	t1, t2 := Tseng1(), Tseng2()
	if t1.Graph.Text() == t2.Graph.Text() {
		// Same ops, different names: only the dfg name differs.
		t.Log("tseng graphs identical (expected aside from name)")
	}
	if len(t1.Graph.Ops()) != len(t2.Graph.Ops()) {
		t.Error("tseng variants must share the operation structure")
	}
	mb1, _ := t1.Modules()
	mb2, _ := t2.Modules()
	if len(mb1.Modules) != 7 {
		t.Errorf("tseng1 has %d modules, want 7", len(mb1.Modules))
	}
	if len(mb2.Modules) != 4 {
		t.Errorf("tseng2 has %d modules, want 4 (1+ and 3 ALUs)", len(mb2.Modules))
	}
}

func TestPaulinPortInputs(t *testing.T) {
	b := Paulin()
	for _, name := range []string{"dx", "a", "k3"} {
		if v := b.Graph.Var(name); v == nil || !v.IsPort {
			t.Errorf("%s should be a port input", name)
		}
	}
	for _, name := range []string{"x", "u", "y"} {
		if v := b.Graph.Var(name); v == nil || v.IsPort {
			t.Errorf("%s should be register allocated", name)
		}
	}
	// The differential equation solver computes what it should.
	vals, err := b.Graph.Eval(map[string]uint64{"x": 1, "u": 6, "y": 2, "dx": 1, "a": 9, "k3": 3}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if vals["x1"] != 2 {
		t.Errorf("x1 = %d, want 2", vals["x1"])
	}
	if vals["y1"] != 8 { // y + u*dx = 2 + 6
		t.Errorf("y1 = %d, want 8", vals["y1"])
	}
	// u1 = u - 3*x*u*dx - 3*y*dx = 6 - 18 - 6 = -18 mod 2^16
	if want := uint64(65536 - 18); vals["u1"] != want {
		t.Errorf("u1 = %d, want %d", vals["u1"], want)
	}
	if vals["c"] != 1 { // x1=2 < a=9
		t.Errorf("c = %d, want 1", vals["c"])
	}
}

func TestByName(t *testing.T) {
	if ByName("ex1") == nil || ByName("paulin") == nil {
		t.Error("known benchmark not found")
	}
	if ByName("nope") != nil {
		t.Error("unknown benchmark found")
	}
}

func TestRandomDeterministic(t *testing.T) {
	g1, err := Random(DefaultRandomConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Random(DefaultRandomConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	if g1.Text() != g2.Text() {
		t.Error("same seed produced different graphs")
	}
	g3, _ := Random(DefaultRandomConfig(43))
	if g1.Text() == g3.Text() {
		t.Error("different seeds produced the same graph")
	}
}

func TestRandomValid(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		g, err := Random(DefaultRandomConfig(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
		for _, op := range g.Ops() {
			if len(op.Args) == 2 && op.Args[0] == op.Args[1] {
				t.Errorf("seed %d: op %s has duplicate operands", seed, op.Name)
			}
		}
	}
}

func TestRandomConfigValidation(t *testing.T) {
	if _, err := Random(RandomConfig{Steps: 1, OpsPerStep: 1, Inputs: 2}); err == nil {
		t.Error("1-step config accepted")
	}
	if _, err := Random(RandomConfig{Steps: 3, OpsPerStep: 0, Inputs: 2}); err == nil {
		t.Error("0-ops config accepted")
	}
}

func TestRandomWithModules(t *testing.T) {
	g, mb, err := RandomWithModules(RandomConfig{Seed: 7, Steps: 4, OpsPerStep: 2, Inputs: 3,
		Kinds: []dfg.Kind{dfg.Add, dfg.Mul}})
	if err != nil {
		t.Fatal(err)
	}
	if err := mb.Validate(g); err != nil {
		t.Error(err)
	}
}
