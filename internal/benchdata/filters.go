package benchdata

import (
	"fmt"

	"bistpath/internal/dfg"
	"bistpath/internal/sched"
)

// This file provides scalable DSP benchmarks beyond the paper's five
// examples: FIR filters, biquad (IIR second-order-section) cascades and
// lattice filters, one loop iteration unrolled into an acyclic DFG with
// the filter state as registered inputs/outputs. They drive the scale
// experiments (`paperbench` extension) and stress the allocator at sizes
// the 1995 evaluation never reached.

// FIR builds an n-tap finite-impulse-response filter iteration:
//
//	y = c0*x0 + c1*x1 + ... + c(n-1)*x(n-1)
//
// The delay-line samples x_i are registered inputs (the filter state);
// the coefficients are port inputs (constants from ROM). Products are
// accumulated in a balanced tree and the whole graph is list-scheduled
// with the given multiplier/adder budget.
func FIR(taps, muls, adds int) (*Benchmark, error) {
	if taps < 2 {
		return nil, fmt.Errorf("benchdata: FIR needs >= 2 taps")
	}
	g := dfg.New(fmt.Sprintf("fir%d", taps))
	for i := 0; i < taps; i++ {
		if err := g.AddInput(fmt.Sprintf("x%d", i)); err != nil {
			return nil, err
		}
		if err := g.AddInput(fmt.Sprintf("c%d", i)); err != nil {
			return nil, err
		}
		if err := g.MarkPortInput(fmt.Sprintf("c%d", i)); err != nil {
			return nil, err
		}
	}
	// Products.
	level := make([]string, 0, taps)
	for i := 0; i < taps; i++ {
		p := fmt.Sprintf("p%d", i)
		if err := g.AddOp(fmt.Sprintf("m%d", i), dfg.Mul, 0, p,
			fmt.Sprintf("c%d", i), fmt.Sprintf("x%d", i)); err != nil {
			return nil, err
		}
		level = append(level, p)
	}
	// Balanced adder tree.
	an := 0
	for len(level) > 1 {
		var next []string
		for i := 0; i+1 < len(level); i += 2 {
			an++
			res := fmt.Sprintf("s%d", an)
			if err := g.AddOp(fmt.Sprintf("a%d", an), dfg.Add, 0, res, level[i], level[i+1]); err != nil {
				return nil, err
			}
			next = append(next, res)
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	if err := g.MarkOutput(level[0]); err != nil {
		return nil, err
	}
	return scheduleBench(g, fmt.Sprintf("fir%d", taps),
		fmt.Sprintf("%d*, %d+", muls, adds), sched.Limits{dfg.Mul: muls, dfg.Add: adds})
}

// Biquad builds a cascade of k direct-form-I second-order sections:
//
//	w   = x + a1*z1 + a2*z2
//	y   = b0*w + b1*z1 + b2*z2
//	z2' = z1, z1' = w
//
// State variables z are registered inputs (and the next state registered
// outputs); coefficients are port inputs.
func Biquad(sections, muls, adds int) (*Benchmark, error) {
	if sections < 1 {
		return nil, fmt.Errorf("benchdata: need >= 1 section")
	}
	g := dfg.New(fmt.Sprintf("biquad%d", sections))
	if err := g.AddInput("x"); err != nil {
		return nil, err
	}
	cur := "x"
	var outs []string
	for s := 0; s < sections; s++ {
		pre := func(n string) string { return fmt.Sprintf("%s_%d", n, s) }
		for _, st := range []string{"z1", "z2"} {
			if err := g.AddInput(pre(st)); err != nil {
				return nil, err
			}
		}
		for _, c := range []string{"a1", "a2", "b0", "b1", "b2"} {
			if err := g.AddInput(pre(c)); err != nil {
				return nil, err
			}
			if err := g.MarkPortInput(pre(c)); err != nil {
				return nil, err
			}
		}
		add := func(name string, k dfg.Kind, res string, x, y string) error {
			return g.AddOp(pre(name), k, 0, res, x, y)
		}
		if err := add("m1", dfg.Mul, pre("t1"), pre("a1"), pre("z1")); err != nil {
			return nil, err
		}
		if err := add("m2", dfg.Mul, pre("t2"), pre("a2"), pre("z2")); err != nil {
			return nil, err
		}
		if err := add("s1", dfg.Add, pre("t3"), cur, pre("t1")); err != nil {
			return nil, err
		}
		if err := add("s2", dfg.Add, pre("w"), pre("t3"), pre("t2")); err != nil {
			return nil, err
		}
		if err := add("m3", dfg.Mul, pre("t4"), pre("b0"), pre("w")); err != nil {
			return nil, err
		}
		if err := add("m4", dfg.Mul, pre("t5"), pre("b1"), pre("z1")); err != nil {
			return nil, err
		}
		if err := add("m5", dfg.Mul, pre("t6"), pre("b2"), pre("z2")); err != nil {
			return nil, err
		}
		if err := add("s3", dfg.Add, pre("t7"), pre("t4"), pre("t5")); err != nil {
			return nil, err
		}
		if err := add("s4", dfg.Add, pre("y"), pre("t7"), pre("t6")); err != nil {
			return nil, err
		}
		// Next state: z1' = w (already produced), z2' = z1 needs no op;
		// mark w as a primary output (next z1) and keep y flowing on.
		outs = append(outs, pre("w"))
		cur = pre("y")
	}
	outs = append(outs, cur)
	if err := g.MarkOutput(outs...); err != nil {
		return nil, err
	}
	return scheduleBench(g, fmt.Sprintf("biquad%d", sections),
		fmt.Sprintf("%d*, %d+", muls, adds), sched.Limits{dfg.Mul: muls, dfg.Add: adds})
}

// Lattice builds an n-stage all-pole lattice filter iteration:
//
//	f_{i-1} = f_i - k_i * b_{i-1}
//	b'_i    = b_{i-1} + k_i * f_{i-1}
//
// with registered state b and port-fed reflection coefficients k.
func Lattice(stages, muls, adds int) (*Benchmark, error) {
	if stages < 1 {
		return nil, fmt.Errorf("benchdata: need >= 1 stage")
	}
	g := dfg.New(fmt.Sprintf("lattice%d", stages))
	if err := g.AddInput("fin"); err != nil {
		return nil, err
	}
	for i := 0; i < stages; i++ {
		if err := g.AddInput(fmt.Sprintf("b%d", i)); err != nil {
			return nil, err
		}
		if err := g.AddInput(fmt.Sprintf("k%d", i)); err != nil {
			return nil, err
		}
		if err := g.MarkPortInput(fmt.Sprintf("k%d", i)); err != nil {
			return nil, err
		}
	}
	f := "fin"
	var outs []string
	for i := stages - 1; i >= 0; i-- {
		t1 := fmt.Sprintf("t1_%d", i)
		f2 := fmt.Sprintf("f_%d", i)
		t2 := fmt.Sprintf("t2_%d", i)
		bn := fmt.Sprintf("bn_%d", i)
		if err := g.AddOp(fmt.Sprintf("lm1_%d", i), dfg.Mul, 0, t1, fmt.Sprintf("k%d", i), fmt.Sprintf("b%d", i)); err != nil {
			return nil, err
		}
		if err := g.AddOp(fmt.Sprintf("ls1_%d", i), dfg.Sub, 0, f2, f, t1); err != nil {
			return nil, err
		}
		if err := g.AddOp(fmt.Sprintf("lm2_%d", i), dfg.Mul, 0, t2, fmt.Sprintf("k%d", i), f2); err != nil {
			return nil, err
		}
		if err := g.AddOp(fmt.Sprintf("ls2_%d", i), dfg.Add, 0, bn, fmt.Sprintf("b%d", i), t2); err != nil {
			return nil, err
		}
		outs = append(outs, bn)
		f = f2
	}
	outs = append(outs, f)
	if err := g.MarkOutput(outs...); err != nil {
		return nil, err
	}
	return scheduleBench(g, fmt.Sprintf("lattice%d", stages),
		fmt.Sprintf("%d*, %d+/-", muls, adds),
		sched.Limits{dfg.Mul: muls, dfg.Add: adds, dfg.Sub: adds})
}

// scheduleBench list-schedules the graph under the limits and wraps it
// with an automatic module binding map derived from the schedule.
func scheduleBench(g *dfg.Graph, name, inventory string, limits sched.Limits) (*Benchmark, error) {
	steps, err := sched.ListSchedule(g, limits)
	if err != nil {
		return nil, err
	}
	if err := sched.Apply(g, steps); err != nil {
		return nil, err
	}
	// Left-edge module binding per kind (same policy as modassign.Bind),
	// expressed as an explicit map for Benchmark compatibility.
	type slot struct {
		name string
		busy map[int]bool
	}
	slots := make(map[dfg.Kind][]*slot)
	opMod := make(map[string]string)
	counter := 0
	for s := 1; s <= g.NumSteps(); s++ {
		for _, op := range g.OpsAtStep(s) {
			placed := false
			for _, sl := range slots[op.Kind] {
				if !sl.busy[s] {
					sl.busy[s] = true
					opMod[op.Name] = sl.name
					placed = true
					break
				}
			}
			if !placed {
				counter++
				sl := &slot{name: fmt.Sprintf("M%d", counter), busy: map[int]bool{s: true}}
				slots[op.Kind] = append(slots[op.Kind], sl)
				opMod[op.Name] = sl.name
			}
		}
	}
	return &Benchmark{
		Name:            name,
		Graph:           g,
		OpModule:        opMod,
		ModuleInventory: inventory,
	}, nil
}
