package benchdata

import (
	"fmt"
	"math/rand"

	"bistpath/internal/dfg"
	"bistpath/internal/modassign"
)

// RandomConfig parameterizes the random scheduled-DFG generator.
type RandomConfig struct {
	Seed       int64
	Steps      int        // number of control steps (≥2)
	OpsPerStep int        // maximum ops per step (≥1)
	Inputs     int        // number of primary inputs (≥2)
	Kinds      []dfg.Kind // operation kinds to draw from; nil = {+,-,*,&}
}

// DefaultRandomConfig returns a moderate configuration for sweeps.
func DefaultRandomConfig(seed int64) RandomConfig {
	return RandomConfig{Seed: seed, Steps: 5, OpsPerStep: 3, Inputs: 4}
}

// Random generates a valid scheduled DFG: each step runs 1..OpsPerStep
// operations whose operands are drawn from primary inputs and results of
// strictly earlier steps (preferring recent values so lifetimes stay
// realistic). Every dangling value is marked as a primary output. The
// same config always yields the same graph.
func Random(cfg RandomConfig) (*dfg.Graph, error) {
	if cfg.Steps < 2 || cfg.OpsPerStep < 1 || cfg.Inputs < 2 {
		return nil, fmt.Errorf("benchdata: bad random config %+v", cfg)
	}
	kinds := cfg.Kinds
	if len(kinds) == 0 {
		kinds = []dfg.Kind{dfg.Add, dfg.Sub, dfg.Mul, dfg.And}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := dfg.New(fmt.Sprintf("rand%d", cfg.Seed))
	var avail []string // values defined in earlier steps (or inputs)
	for i := 0; i < cfg.Inputs; i++ {
		name := fmt.Sprintf("in%d", i)
		if err := g.AddInput(name); err != nil {
			return nil, err
		}
		avail = append(avail, name)
	}
	opN := 0
	for step := 1; step <= cfg.Steps; step++ {
		n := 1 + rng.Intn(cfg.OpsPerStep)
		var produced []string
		for i := 0; i < n; i++ {
			opN++
			kind := kinds[rng.Intn(len(kinds))]
			// Bias operand choice toward recent values to keep lifetimes
			// short and the conflict graph interval-like but non-trivial.
			pick := func() string {
				if len(avail) == 1 || rng.Intn(3) > 0 {
					lo := len(avail) - 1 - rng.Intn(min(3, len(avail)))
					return avail[lo]
				}
				return avail[rng.Intn(len(avail))]
			}
			// Operands must be distinct variables: the paper's allocation
			// model (and Lemma 2's exactness) assumes a binary operator
			// reads two different variables; x op x would weld both ports
			// to one register.
			a, b := pick(), pick()
			for tries := 0; b == a && tries < 20; tries++ {
				b = pick()
			}
			if b == a {
				for _, alt := range avail {
					if alt != a {
						b = alt
						break
					}
				}
			}
			res := fmt.Sprintf("v%d", opN)
			if err := g.AddOp(fmt.Sprintf("op%d", opN), kind, step, res, a, b); err != nil {
				return nil, err
			}
			produced = append(produced, res)
		}
		avail = append(avail, produced...)
	}
	// Mark every value with no consumer as a primary output so the graph
	// validates (no dead variables).
	var outs []string
	for _, v := range g.Vars() {
		if len(v.Uses) == 0 {
			outs = append(outs, v.Name)
		}
	}
	if err := g.MarkOutput(outs...); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Preset returns the calibrated generator shape for one of the scaling
// suite's size classes (s, m, l, xl) with the given seed, or false for
// an unknown name. The shapes are shared by cmd/dfgen's -preset flag and
// scripts/scalingbench so both tools name the same instances:
//
//	s   ~12 ops  — well inside the exact search's comfort zone
//	m   ~37 ops  — past the Auto exact-feasibility threshold
//	l   ~93 ops  — the exact branch and bound exhausts its node budget
//	xl  ~290 ops — hundreds of operations, stochastic only
//
// XL draws only non-commutative kinds: the interconnect binder caps the
// free instances of a commutative module, and hundreds of commutative
// ops funneled into few modules would exceed that cap.
func Preset(name string, seed int64) (RandomConfig, bool) {
	wide := []dfg.Kind{dfg.Add, dfg.Sub, dfg.Mul, dfg.Div, dfg.And, dfg.Or, dfg.Xor, dfg.Lt, dfg.Gt}
	var cfg RandomConfig
	switch name {
	case "s":
		cfg = RandomConfig{Steps: 6, OpsPerStep: 3, Inputs: 4}
	case "m":
		cfg = RandomConfig{Steps: 14, OpsPerStep: 4, Inputs: 6, Kinds: wide}
	case "l":
		cfg = RandomConfig{Steps: 30, OpsPerStep: 5, Inputs: 8, Kinds: wide}
	case "xl":
		cfg = RandomConfig{Steps: 100, OpsPerStep: 5, Inputs: 10,
			Kinds: []dfg.Kind{dfg.Sub, dfg.Div, dfg.Lt, dfg.Gt}}
	default:
		return RandomConfig{}, false
	}
	cfg.Seed = seed
	return cfg, true
}

// PresetNames lists the scaling presets from smallest to largest.
func PresetNames() []string { return []string{"s", "m", "l", "xl"} }

// SweepConfig derives a varied generator configuration from the seed
// alone, so conformance sweeps cover a range of graph shapes (step
// counts, widths of parallelism, operator mixes) without maintaining a
// separate parameter grid. The mapping is deterministic: one seed, one
// shape.
func SweepConfig(seed int64) RandomConfig {
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	kindSets := [][]dfg.Kind{
		nil, // generator default {+,-,*,&}
		{dfg.Add, dfg.Mul},
		{dfg.Add, dfg.Sub, dfg.Mul, dfg.Div, dfg.And, dfg.Or, dfg.Xor},
		{dfg.Add, dfg.Sub, dfg.Lt, dfg.Gt},
	}
	return RandomConfig{
		Seed:       seed,
		Steps:      3 + rng.Intn(5),
		OpsPerStep: 1 + rng.Intn(3),
		Inputs:     2 + rng.Intn(4),
		Kinds:      kindSets[rng.Intn(len(kindSets))],
	}
}

// RandomWithModules generates a random DFG together with an area-driven
// module binding over unit classes.
func RandomWithModules(cfg RandomConfig) (*dfg.Graph, *modassign.Binding, error) {
	g, err := Random(cfg)
	if err != nil {
		return nil, nil, err
	}
	classes := []modassign.Class{
		modassign.UnitClass(dfg.Add), modassign.UnitClass(dfg.Sub),
		modassign.UnitClass(dfg.Mul), modassign.UnitClass(dfg.Div),
		modassign.UnitClass(dfg.And), modassign.UnitClass(dfg.Or),
		modassign.UnitClass(dfg.Xor), modassign.UnitClass(dfg.Lt),
		modassign.UnitClass(dfg.Gt),
	}
	mb, err := modassign.Bind(g, classes)
	if err != nil {
		return nil, nil, err
	}
	return g, mb, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
