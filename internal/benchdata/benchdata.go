// Package benchdata defines the scheduled DFGs and module assignments of
// the paper's five evaluation benchmarks (Table I) plus a random
// scheduled-DFG generator used by sweeps and property tests.
//
// The paper does not publish machine-readable benchmark netlists; the
// graphs here are reconstructions (documented in DESIGN.md §3): ex1
// matches the structural facts given for Fig. 2 (8 variables a..h, ops
// +1,+2,*1,*2, I_M1={a,b,c,d}, O_M1={d,f}, 3 registers minimum); ex2
// realizes the "1/, 2*, 2+, 1&" module inventory from Papachristou's
// DAC'91 example; Tseng1/Tseng2 realize the two module assignments of the
// Tseng benchmark; Paulin is the standard HAL differential-equation
// solver with the literal 3 and the parameters dx, a wired as port
// inputs, giving the paper's 4-register minimum.
package benchdata

import (
	"fmt"

	"bistpath/internal/dfg"
	"bistpath/internal/modassign"
)

// Benchmark couples a scheduled DFG with its fixed module assignment.
type Benchmark struct {
	Name     string
	Graph    *dfg.Graph
	OpModule map[string]string // op name -> module name
	// ModuleInventory is the human-readable module list as printed in
	// Table I, e.g. "1+, 1*".
	ModuleInventory string
	// PaperRegisters is the register count the paper reports (Table I).
	PaperRegisters int
}

// Modules builds the module binding for the benchmark.
func (b *Benchmark) Modules() (*modassign.Binding, error) {
	return modassign.FromMap(b.Graph, b.OpModule)
}

func must(err error) {
	if err != nil {
		panic(fmt.Sprintf("benchdata: %v", err))
	}
}

// Ex1 is the paper's running example (Fig. 2): two adds on module M1, two
// multiplies on module M2, eight variables a..h, three registers minimum.
func Ex1() *Benchmark {
	g := dfg.New("ex1")
	must(g.AddInput("a", "b", "e", "g"))
	must(g.AddOp("add1", dfg.Add, 1, "d", "a", "b"))
	must(g.AddOp("mul1", dfg.Mul, 2, "c", "e", "g"))
	must(g.AddOp("add2", dfg.Add, 3, "f", "c", "d"))
	must(g.AddOp("mul2", dfg.Mul, 4, "h", "f", "g"))
	must(g.MarkOutput("h"))
	must(g.Validate())
	return &Benchmark{
		Name:  "ex1",
		Graph: g,
		OpModule: map[string]string{
			"add1": "M1", "add2": "M1",
			"mul1": "M2", "mul2": "M2",
		},
		ModuleInventory: "1+, 1*",
		PaperRegisters:  3,
	}
}

// Ex2 realizes the "1/, 2*, 2+, 1&" module inventory of the DFG taken
// from Papachristou et al. (DAC'91): five registers minimum.
func Ex2() *Benchmark {
	g := dfg.New("ex2")
	must(g.AddInput("a", "b", "c", "d", "e"))
	must(g.AddOp("mul1", dfg.Mul, 1, "v1", "a", "b"))
	must(g.AddOp("mul2", dfg.Mul, 1, "v2", "c", "d"))
	must(g.AddOp("add1", dfg.Add, 2, "v3", "v1", "v2"))
	must(g.AddOp("add2", dfg.Add, 2, "v4", "a", "e"))
	must(g.AddOp("div1", dfg.Div, 3, "v5", "v3", "v4"))
	must(g.AddOp("mul3", dfg.Mul, 3, "v6", "v2", "b"))
	must(g.AddOp("and1", dfg.And, 4, "v7", "v5", "v6"))
	must(g.MarkOutput("v7"))
	must(g.Validate())
	return &Benchmark{
		Name:  "ex2",
		Graph: g,
		OpModule: map[string]string{
			"div1": "M1",
			"mul1": "M2", "mul3": "M2",
			"mul2": "M3",
			"add1": "M4",
			"add2": "M5",
			"and1": "M6",
		},
		ModuleInventory: "1/, 2*, 2+, 1&",
		PaperRegisters:  5,
	}
}

// tsengGraph is the operation structure shared by the Tseng1 and Tseng2
// module assignments: eight operations over the kinds +,-,*,/,&,| in four
// control steps, five registers minimum.
func tsengGraph() *dfg.Graph {
	g := dfg.New("tseng")
	must(g.AddInput("a", "b", "c", "d", "e"))
	must(g.AddOp("add1", dfg.Add, 1, "w1", "a", "b"))
	must(g.AddOp("add2", dfg.Add, 1, "w2", "c", "d"))
	must(g.AddOp("mul1", dfg.Mul, 2, "w3", "w1", "w2"))
	must(g.AddOp("or1", dfg.Or, 2, "w4", "a", "e"))
	must(g.AddOp("and1", dfg.And, 3, "w5", "w3", "w4"))
	must(g.AddOp("div1", dfg.Div, 3, "w6", "w3", "e"))
	must(g.AddOp("sub1", dfg.Sub, 4, "w7", "w5", "w6"))
	must(g.AddOp("add3", dfg.Add, 4, "w8", "w5", "b"))
	must(g.MarkOutput("w7", "w8"))
	must(g.Validate())
	return g
}

// Tseng1 is the Tseng benchmark with the "2+, 1*, 1-, 1&, 1|, 1/" module
// assignment (seven dedicated functional units).
func Tseng1() *Benchmark {
	g := tsengGraph()
	g.Name = "tseng1"
	return &Benchmark{
		Name:  "tseng1",
		Graph: g,
		OpModule: map[string]string{
			"add1": "M1", "add3": "M1",
			"add2": "M2",
			"mul1": "M3",
			"sub1": "M4",
			"and1": "M5",
			"or1":  "M6",
			"div1": "M7",
		},
		ModuleInventory: "2+, 1*, 1-, 1&, 1|, 1/",
		PaperRegisters:  5,
	}
}

// Tseng2 is the same operation structure bound to "1+, 3 ALUs".
func Tseng2() *Benchmark {
	g := tsengGraph()
	g.Name = "tseng2"
	return &Benchmark{
		Name:  "tseng2",
		Graph: g,
		OpModule: map[string]string{
			"add1": "M1", "add3": "M1", // the dedicated adder
			"add2": "M2", "or1": "M2", "sub1": "M2", // ALU 1
			"mul1": "M3", "div1": "M3", // ALU 2
			"and1": "M4", // ALU 3
		},
		ModuleInventory: "1+, 3 ALUs",
		PaperRegisters:  5,
	}
}

// Paulin is the HAL differential-equation benchmark (Paulin & Knight):
//
//	x1 = x + dx
//	u1 = u - 3*x*u*dx - 3*y*dx
//	y1 = y + u*dx
//	c  = x1 < a
//
// scheduled in five steps on "1+, 2*, 1-" (the comparison runs on the
// subtractor). The literal 3 (k3) and the parameters dx and a are
// port-fed; the loop state x, u, y and all intermediates are register
// allocated, giving the paper's four-register minimum.
func Paulin() *Benchmark {
	g := dfg.New("paulin")
	must(g.AddInput("x", "u", "y", "dx", "a", "k3"))
	must(g.MarkPortInput("dx", "a", "k3"))
	must(g.AddOp("m1", dfg.Mul, 1, "t1", "k3", "x"))  // 3*x
	must(g.AddOp("m2", dfg.Mul, 1, "t2", "u", "dx"))  // u*dx
	must(g.AddOp("a1", dfg.Add, 1, "x1", "x", "dx"))  // x + dx
	must(g.AddOp("m4", dfg.Mul, 2, "t4", "t1", "t2")) // 3*x*u*dx
	must(g.AddOp("cmp", dfg.Lt, 2, "c", "x1", "a"))   // x1 < a
	must(g.AddOp("m3", dfg.Mul, 3, "t3", "k3", "y"))  // 3*y
	must(g.AddOp("m6", dfg.Mul, 3, "t7", "u", "dx"))  // u*dx (recomputed)
	must(g.AddOp("s1", dfg.Sub, 3, "t6", "u", "t4"))  // u - 3*x*u*dx
	must(g.AddOp("m5", dfg.Mul, 4, "t5", "t3", "dx")) // 3*y*dx
	must(g.AddOp("s2", dfg.Sub, 5, "u1", "t6", "t5")) // u1
	must(g.AddOp("a2", dfg.Add, 5, "y1", "y", "t7"))  // y1
	must(g.MarkOutput("x1", "y1", "u1", "c"))
	must(g.Validate())
	return &Benchmark{
		Name:  "paulin",
		Graph: g,
		OpModule: map[string]string{
			"a1": "M1", "a2": "M1", // adder
			"m1": "M2", "m4": "M2", "m6": "M2", // multiplier 1
			"m2": "M3", "m3": "M3", "m5": "M3", // multiplier 2
			"cmp": "M4", "s1": "M4", "s2": "M4", // subtractor/comparator
		},
		ModuleInventory: "1+, 2*, 1-",
		PaperRegisters:  4,
	}
}

// All returns the five Table I benchmarks in paper order.
func All() []*Benchmark {
	return []*Benchmark{Ex1(), Ex2(), Tseng1(), Tseng2(), Paulin()}
}

// ByName returns the named benchmark or nil.
func ByName(name string) *Benchmark {
	for _, b := range All() {
		if b.Name == name {
			return b
		}
	}
	return nil
}
