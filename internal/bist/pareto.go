package bist

import (
	"context"
	"fmt"
	"sort"

	"bistpath/internal/area"
	"bistpath/internal/datapath"
	"bistpath/internal/interconnect"
)

// CostVector is the multi-objective cost of one complete BIST plan:
// the register upgrade area (the paper's sole objective), the test time
// proxied by the session schedule length, and the peak per-session
// active power under the plan's schedule. All three components are
// minimized; vectors are compared by Pareto dominance.
type CostVector struct {
	Area      int // register upgrade area in gate equivalents
	TestTime  int // test sessions in the schedule (each session = one test run)
	PeakPower int // maximum per-session sum of module power weights
}

// Dominates reports whether c is at least as good as o in every
// component and strictly better in at least one — the standard Pareto
// dominance relation for minimization.
func (c CostVector) Dominates(o CostVector) bool {
	if c.Area > o.Area || c.TestTime > o.TestTime || c.PeakPower > o.PeakPower {
		return false
	}
	return c != o
}

// Less orders vectors lexicographically by (Area, TestTime, PeakPower).
// It is a total order used only for canonical presentation of a front;
// dominance, not Less, decides membership.
func (c CostVector) Less(o CostVector) bool {
	if c.Area != o.Area {
		return c.Area < o.Area
	}
	if c.TestTime != o.TestTime {
		return c.TestTime < o.TestTime
	}
	return c.PeakPower < o.PeakPower
}

func (c CostVector) String() string {
	return fmt.Sprintf("area=%d sessions=%d peak-power=%d", c.Area, c.TestTime, c.PeakPower)
}

// Weighted collapses the vector under non-negative scalar weights.
func (c CostVector) Weighted(wArea, wTime, wPower int) int {
	return wArea*c.Area + wTime*c.TestTime + wPower*c.PeakPower
}

// PowerWeights resolves the per-module active-power weights the
// multi-objective search charges a module for being under test. Modules
// present in override use that weight verbatim; every other module gets
// the documented default, an area-proportional estimate: the module's
// combinational gate area under the model. The rationale is that
// pseudo-random BIST patterns toggle a module's full logic cone every
// cycle, so switching activity — and hence average test-mode power — is
// roughly proportional to gate count. Weights are plain ints, so the
// whole objective stays exactly deterministic.
func PowerWeights(model area.Model, dp *datapath.Datapath, override map[string]int) map[string]int {
	out := make(map[string]int, len(dp.Modules))
	for _, m := range dp.Modules {
		if w, ok := override[m.Name]; ok {
			out[m.Name] = w
			continue
		}
		out[m.Name] = model.ModuleArea(m.Kinds)
	}
	return out
}

// PlanCost evaluates a completed plan's cost vector under the given
// power weights: ExtraArea, the session count, and the peak per-session
// power sum. Modules missing from power weigh zero.
func PlanCost(p *Plan, power map[string]int) CostVector {
	v := CostVector{Area: p.ExtraArea, TestTime: len(p.Sessions)}
	for _, sess := range p.Sessions {
		sum := 0
		for _, m := range sess {
			sum += power[m]
		}
		if sum > v.PeakPower {
			v.PeakPower = sum
		}
	}
	return v
}

// WeightedBest returns the front member minimizing the weighted scalar
// objective. Ties keep the earliest member; with the front in canonical
// lexicographic order that makes the winner deterministic: minimal
// weighted sum, then lexicographically smallest (Area, TestTime,
// PeakPower) vector. For non-negative weights the scalar optimum over
// all feasible plans is always attained on the non-dominated front, so
// enumerating the front once serves every weight profile. A nil or
// empty front returns nil.
func WeightedBest(front []*Plan, wArea, wTime, wPower int) *Plan {
	var best *Plan
	bestScore := 0
	for _, p := range front {
		s := p.Cost.Weighted(wArea, wTime, wPower)
		if best == nil || s < bestScore {
			best, bestScore = p, s
		}
	}
	return best
}

// paretoEntry is one archive member during enumeration: its vector and
// the embedding-index assignment (in search-order module positions) of
// the first leaf in canonical depth-first order that produced it.
type paretoEntry struct {
	vec CostVector
	asg []int32
}

// paretoEnum is the sequential enumeration state. The search walks the
// exact canonical depth-first order of the area-only branch and bound —
// most-constrained modules first, each module's embeddings in stable
// ascending standalone-cost order — so the representative plan kept for
// each distinct vector is a pure function of the data path, and the
// area-minimal front member reproduces the single-objective search's
// deterministic tie-break.
type paretoEnum struct {
	ctx   context.Context
	opts  Options
	mods  []modEmb
	power map[string]int

	// Incremental register-duty counters and upgrade area, exactly the
	// worker's counter scheme but keyed by name (the sequential walk has
	// no need for interning).
	tpg, sa, cb map[string]int
	areaCost    int
	cur         []int32
	embs        map[string]Embedding // leaf-evaluation scratch

	// ppLB is the global peak-power lower bound: every module sits in
	// some session, so any schedule's peak is at least the largest single
	// module weight. cornerArea is the smallest area among archive
	// members that already sit at the (TestTime=1, PeakPower=ppLB) ideal
	// corner, or -1; any partial assignment whose area has reached it can
	// only complete into dominated or duplicate vectors.
	ppLB       int
	cornerArea int

	archive   []paretoEntry
	nodes     int64
	prunes    int64
	incumbent int64
	inexact   bool
	cancelled bool
}

func (e *paretoEnum) styleExtra(r string) int {
	m := e.opts.Model
	switch {
	case e.cb[r] > 0:
		return m.StyleExtra(area.CBILBO)
	case e.tpg[r] > 0 && e.sa[r] > 0:
		return m.StyleExtra(area.BILBO)
	case e.tpg[r] > 0:
		return m.StyleExtra(area.TPG)
	case e.sa[r] > 0:
		return m.StyleExtra(area.SA)
	}
	return 0
}

// bump adjusts one register's duty counters by d, folding the register's
// upgrade-cost change into the running area.
func (e *paretoEnum) bump(emb Embedding, d int) {
	touch := func(h string, isHead bool) {
		before := e.styleExtra(h)
		if isHead {
			e.tpg[h] += d
			if h == emb.Tail {
				e.cb[h] += d
			}
		} else {
			e.sa[h] += d
		}
		e.areaCost += e.styleExtra(h) - before
	}
	for _, h := range []string{emb.HeadL, emb.HeadR} {
		if h == "" || interconnect.IsPad(h) {
			continue
		}
		touch(h, true)
	}
	touch(emb.Tail, false)
}

func (e *paretoEnum) dfs(i int) {
	e.nodes++
	if e.opts.NodeBudget > 0 && e.nodes > int64(e.opts.NodeBudget) {
		e.inexact = true
		return
	}
	if e.nodes&1023 == 0 {
		select {
		case <-e.ctx.Done():
			e.cancelled = true
		default:
		}
		if e.opts.Progress != nil {
			e.opts.Progress(e.nodes)
		}
	}
	if e.cancelled || e.inexact {
		return
	}
	// Ideal-corner dominance prune: adding modules never lowers the
	// area, every completion schedules at least one session, and its
	// peak power is at least ppLB. A corner member with area <= the
	// partial area therefore dominates (or equals, and then canonically
	// precedes) every leaf below this node. See DESIGN.md §9.
	if e.cornerArea >= 0 && e.cornerArea <= e.areaCost {
		e.prunes++
		return
	}
	if i == len(e.mods) {
		e.leaf()
		return
	}
	for j, emb := range e.mods[i].embs {
		e.cur[i] = int32(j)
		e.bump(emb, +1)
		e.dfs(i + 1)
		e.bump(emb, -1)
	}
}

// leaf evaluates the complete assignment's vector and offers it to the
// archive.
func (e *paretoEnum) leaf() {
	clear(e.embs)
	for i, m := range e.mods {
		e.embs[m.name] = m.embs[e.cur[i]]
	}
	p := Plan{Embeddings: e.embs, Styles: stylesOf(e.embs)}
	sessions := ScheduleSessions(&p)
	v := CostVector{Area: e.areaCost, TestTime: len(sessions)}
	for _, sess := range sessions {
		sum := 0
		for _, m := range sess {
			sum += e.power[m]
		}
		if sum > v.PeakPower {
			v.PeakPower = sum
		}
	}
	e.offer(v)
}

// offer inserts a leaf vector into the archive unless it is dominated
// or duplicates an existing vector (the earlier — canonical depth-first
// first — representative wins), and evicts members the newcomer
// dominates.
func (e *paretoEnum) offer(v CostVector) {
	for _, en := range e.archive {
		if en.vec == v || en.vec.Dominates(v) {
			return
		}
	}
	kept := e.archive[:0]
	for _, en := range e.archive {
		if !v.Dominates(en.vec) {
			kept = append(kept, en)
		}
	}
	e.archive = append(kept, paretoEntry{vec: v, asg: append([]int32(nil), e.cur...)})
	e.incumbent++
	if v.TestTime == 1 && v.PeakPower == e.ppLB {
		if e.cornerArea < 0 || v.Area < e.cornerArea {
			e.cornerArea = v.Area
		}
	}
}

// OptimizePareto enumerates the non-dominated set of complete BIST
// plans under the three-component cost vector (upgrade area, session
// count, peak per-session power) and returns one representative plan
// per non-dominated vector, sorted lexicographically by (Area,
// TestTime, PeakPower). Each returned plan carries its vector in
// Plan.Cost and a schedule from ScheduleSessions.
//
// The search is a sequential exhaustive walk in the exact canonical
// order of OptimizeCtx's branch and bound, with dominance pruning at
// the ideal corner (see paretoEnum); within each distinct vector the
// first leaf in that order is the representative, so the result is a
// pure function of the data path and options — in particular, the
// area-minimal front member is the plan the single-objective search
// returns. Options.Workers is ignored: front enumeration runs on the
// calling goroutine (the spaces involved are small; the budget still
// applies). If Options.NodeBudget is exhausted the walk stops and every
// returned plan reports Exact=false; the partial front is still
// mutually non-dominated but may miss vectors.
func OptimizePareto(ctx context.Context, dp *datapath.Datapath, opts Options) ([]*Plan, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if opts.Model.Width == 0 {
		opts.Model = area.Default(dp.Width)
	}
	if opts.NodeBudget == 0 {
		opts.NodeBudget = 2_000_000
	}
	power := PowerWeights(opts.Model, dp, opts.Power)

	mods := make([]modEmb, 0, len(dp.Modules))
	var embTotal int64
	for _, m := range dp.Modules {
		embs := Embeddings(dp, m.Name, opts.AllowPadHeads)
		if len(embs) == 0 {
			return nil, fmt.Errorf("bist: module %s has %w (no register I-paths)", m.Name, ErrNoEmbedding)
		}
		embTotal += int64(len(embs))
		mods = append(mods, modEmb{m.Name, embs})
	}
	if opts.Metrics != nil {
		*opts.Metrics = Metrics{Embeddings: embTotal, Workers: 1}
	}
	if len(mods) == 0 {
		p := &Plan{Embeddings: map[string]Embedding{}, Styles: map[string]area.Style{}, Exact: true}
		p.Sessions = ScheduleSessions(p)
		return []*Plan{p}, nil
	}

	// Canonical search order, replicated from OptimizeCtx: modules with
	// the fewest embeddings first ((len, name) is a total order), then
	// each module's embeddings stably sorted by standalone upgrade cost.
	for i := 1; i < len(mods); i++ {
		m := mods[i]
		j := i - 1
		for j >= 0 && (len(m.embs) < len(mods[j].embs) ||
			(len(m.embs) == len(mods[j].embs) && m.name < mods[j].name)) {
			mods[j+1] = mods[j]
			j--
		}
		mods[j+1] = m
	}
	for _, m := range mods {
		costs := make([]int, len(m.embs))
		for j, emb := range m.embs {
			costs[j] = standaloneCost(opts.Model, emb)
		}
		for i := 1; i < len(costs); i++ {
			c, emb := costs[i], m.embs[i]
			j := i - 1
			for j >= 0 && costs[j] > c {
				costs[j+1], m.embs[j+1] = costs[j], m.embs[j]
				j--
			}
			costs[j+1], m.embs[j+1] = c, emb
		}
	}

	e := &paretoEnum{
		ctx:        ctx,
		opts:       opts,
		mods:       mods,
		power:      power,
		tpg:        make(map[string]int),
		sa:         make(map[string]int),
		cb:         make(map[string]int),
		cur:        make([]int32, len(mods)),
		embs:       make(map[string]Embedding, len(mods)),
		cornerArea: -1,
	}
	for _, m := range dp.Modules {
		if w := power[m.Name]; w > e.ppLB {
			e.ppLB = w
		}
	}
	e.dfs(0)
	if e.cancelled {
		return nil, ctx.Err()
	}
	if opts.Metrics != nil {
		opts.Metrics.Nodes = e.nodes
		opts.Metrics.BoundPrunes = e.prunes
		opts.Metrics.Incumbents = e.incumbent
	}

	sort.Slice(e.archive, func(i, j int) bool { return e.archive[i].vec.Less(e.archive[j].vec) })
	front := make([]*Plan, 0, len(e.archive))
	for _, en := range e.archive {
		embs := make(map[string]Embedding, len(mods))
		for i, m := range mods {
			embs[m.name] = m.embs[en.asg[i]]
		}
		p := PlanFromEmbeddings(opts.Model, embs, !e.inexact)
		p.Cost = PlanCost(p, power)
		if p.Cost != en.vec {
			return nil, fmt.Errorf("bist: pareto plan cost %v diverges from search vector %v", p.Cost, en.vec)
		}
		if err := p.Validate(dp); err != nil {
			return nil, err
		}
		front = append(front, p)
	}
	if len(front) == 0 {
		// The budget expired before the first leaf: fall back to the
		// area search's plan so callers still get a usable (inexact)
		// singleton front.
		p, err := OptimizeCtx(ctx, dp, opts)
		if err != nil {
			return nil, err
		}
		p.Exact = false
		p.Cost = PlanCost(p, power)
		front = append(front, p)
	}
	return front, nil
}
