package bist

import (
	"testing"

	"bistpath/internal/benchdata"
)

// Fig. 1 guard: I-path embedding enumeration through AppendEmbeddings
// must be allocation-free once the destination slice has warmed to the
// data path's full embedding count — this is the form the optimizer's
// scratch arenas enumerate through on every search, so a regression
// here silently reintroduces per-search garbage.
func TestAppendEmbeddingsAllocFree(t *testing.T) {
	dp, _, _ := buildBench(t, benchdata.Ex1(), false)
	var dst []Embedding
	for _, m := range dp.Modules {
		dst = AppendEmbeddings(dst, dp, m.Name, true)
	}
	if len(dst) == 0 {
		t.Fatal("no embeddings enumerated")
	}
	want := len(dst)
	avg := testing.AllocsPerRun(200, func() {
		dst = dst[:0]
		for _, m := range dp.Modules {
			dst = AppendEmbeddings(dst, dp, m.Name, true)
		}
	})
	if len(dst) != want {
		t.Fatalf("re-enumeration found %d embeddings, want %d", len(dst), want)
	}
	if avg != 0 {
		t.Fatalf("AppendEmbeddings into warmed capacity allocates %.1f allocs/run, want 0", avg)
	}
}

// Steady-state guard for the whole search: with a reused Scratch the
// branch and bound on a paper benchmark must stay within a small pinned
// allocation budget (the Plan and its result maps are the only per-call
// allocations left).
func TestOptimizeScratchSteadyStateAllocs(t *testing.T) {
	dp, _, _ := buildBench(t, benchdata.Tseng1(), false)
	opts := DefaultOptions(8)
	opts.Scratch = NewScratch()
	if _, err := Optimize(dp, opts); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(50, func() {
		if _, err := Optimize(dp, opts); err != nil {
			t.Fatal(err)
		}
	})
	// Pinned at the post-arena count with a small headroom: the winning
	// Plan (embedding + style maps, session schedule) is built fresh per
	// call; the search itself must not allocate.
	const budget = 80
	if avg > budget {
		t.Fatalf("Optimize with warm Scratch allocates %.1f allocs/run, want <= %d", avg, budget)
	}
}
