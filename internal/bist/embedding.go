// Package bist allocates test resources for a bound data path: it plays
// the role of the USC BITS system in the paper's evaluation. For every
// module it enumerates the BIST embeddings reachable through the data
// path's I-paths, then chooses one embedding per module so that the
// total area of upgraded registers (TPG/SA/BILBO/CBILBO) is minimal,
// and finally schedules compatible module tests into sessions.
package bist

import (
	"fmt"
	"sort"

	"bistpath/internal/area"
	"bistpath/internal/datapath"
	"bistpath/internal/interconnect"
)

// Embedding is one BIST configuration for a module: pattern sources for
// its input ports and the signature register for its output port
// (Section II of the paper). Heads are registers or — when the
// methodology permits — input pads, which are directly controllable and
// cost nothing (Definition 1 allows I-paths to start at primary inputs).
// The tail is always a register.
type Embedding struct {
	Module string
	HeadL  string
	HeadR  string // empty for unary modules
	Tail   string
}

// NeedsCBILBO reports whether this embedding makes some register generate
// patterns and compact responses for the same module simultaneously.
func (e Embedding) NeedsCBILBO() bool {
	return e.Tail == e.HeadL || (e.HeadR != "" && e.Tail == e.HeadR)
}

// CBILBORegister returns the register that must be a CBILBO under this
// embedding ("" if none).
func (e Embedding) CBILBORegister() string {
	if e.Tail == e.HeadL || e.Tail == e.HeadR {
		return e.Tail
	}
	return ""
}

func (e Embedding) String() string {
	if e.HeadR == "" {
		return fmt.Sprintf("%s: L<=%s out=>%s", e.Module, e.HeadL, e.Tail)
	}
	return fmt.Sprintf("%s: L<=%s R<=%s out=>%s", e.Module, e.HeadL, e.HeadR, e.Tail)
}

// Embeddings enumerates every BIST embedding of a module over the simple
// I-paths of the data path. The two heads must be distinct sources
// (correlated patterns on both ports cannot test the module) — except
// for diagonal modules (squarers: every instance reads one source on
// both ports), whose ports are never independently exercisable and may
// share a single generator. When allowPadHeads is false, only registers
// may act as heads.
func Embeddings(dp *datapath.Datapath, module string, allowPadHeads bool) []Embedding {
	return AppendEmbeddings(nil, dp, module, allowPadHeads)
}

// AppendEmbeddings is Embeddings appending into dst, reusing its
// capacity — the allocation-free form the optimizer's scratch arenas
// enumerate through. The appended run is in the same canonical
// (HeadL, HeadR, Tail) order Embeddings returns.
func AppendEmbeddings(dst []Embedding, dp *datapath.Datapath, module string, allowPadHeads bool) []Embedding {
	m := dp.Module(module)
	if m == nil {
		return dst
	}
	start := len(dst)
	diagonal := dp.ModuleDiagonal(module)
	skip := func(s string) bool { return interconnect.IsPad(s) && !allowPadHeads }
	if len(m.Right) == 0 { // unary module
		for _, l := range m.Left {
			if skip(l) {
				continue
			}
			for _, t := range m.Dests {
				dst = append(dst, Embedding{Module: module, HeadL: l, Tail: t})
			}
		}
	} else {
		for _, l := range m.Left {
			if skip(l) {
				continue
			}
			for _, r := range m.Right {
				if skip(r) || (l == r && !diagonal) {
					continue
				}
				for _, t := range m.Dests {
					dst = append(dst, Embedding{Module: module, HeadL: l, HeadR: r, Tail: t})
				}
			}
		}
	}
	// Canonical order on both arities: the optimizer's deterministic
	// tie-break is defined over this order, so it must be a pure
	// function of the data path, never of construction order. Left,
	// Right and Dests are sorted by construction, so the nested loops
	// emit that order directly; the sort below only fires defensively
	// for a hand-built data path with unsorted source lists.
	if !embeddingsOrdered(dst[start:]) {
		sort.Slice(dst[start:], func(i, j int) bool {
			a, b := dst[start+i], dst[start+j]
			if a.HeadL != b.HeadL {
				return a.HeadL < b.HeadL
			}
			if a.HeadR != b.HeadR {
				return a.HeadR < b.HeadR
			}
			return a.Tail < b.Tail
		})
	}
	return dst
}

// embeddingsOrdered reports whether the run is already in canonical
// (HeadL, HeadR, Tail) order.
func embeddingsOrdered(es []Embedding) bool {
	for i := 1; i < len(es); i++ {
		a, b := es[i-1], es[i]
		if a.HeadL != b.HeadL {
			if a.HeadL > b.HeadL {
				return false
			}
			continue
		}
		if a.HeadR != b.HeadR {
			if a.HeadR > b.HeadR {
				return false
			}
			continue
		}
		if a.Tail > b.Tail {
			return false
		}
	}
	return true
}

// ForcedCBILBOByEnumeration reports whether every embedding of the module
// requires a CBILBO register (the brute-force ground truth for Lemma 2).
// It returns false if the module has no embedding at all.
func ForcedCBILBOByEnumeration(dp *datapath.Datapath, module string, allowPadHeads bool) bool {
	embs := Embeddings(dp, module, allowPadHeads)
	if len(embs) == 0 {
		return false
	}
	for _, e := range embs {
		if !e.NeedsCBILBO() {
			return false
		}
	}
	return true
}

// roles accumulates the duties assigned to a register across modules.
type roles struct {
	tpgFor []string
	saFor  []string
	cbilbo bool // head and tail for the same module
}

// Style derives the register style from its duties.
func (r roles) style() area.Style {
	switch {
	case r.cbilbo:
		return area.CBILBO
	case len(r.tpgFor) > 0 && len(r.saFor) > 0:
		return area.BILBO
	case len(r.tpgFor) > 0:
		return area.TPG
	case len(r.saFor) > 0:
		return area.SA
	}
	return area.Normal
}

// applyEmbedding merges an embedding's duties into a roles map (register
// names only; pad heads carry no cost).
func applyEmbedding(rr map[string]roles, e Embedding) {
	addTPG := func(h string) {
		if h == "" || interconnect.IsPad(h) {
			return
		}
		r := rr[h]
		r.tpgFor = append(r.tpgFor, e.Module)
		if h == e.Tail {
			r.cbilbo = true
		}
		rr[h] = r
	}
	addTPG(e.HeadL)
	addTPG(e.HeadR)
	t := rr[e.Tail]
	t.saFor = append(t.saFor, e.Module)
	rr[e.Tail] = t
}

// stylesOf computes the per-register styles for a set of embeddings.
func stylesOf(embs map[string]Embedding) map[string]area.Style {
	rr := make(map[string]roles)
	for _, e := range embs {
		applyEmbedding(rr, e)
	}
	out := make(map[string]area.Style, len(rr))
	for reg, r := range rr {
		out[reg] = r.style()
	}
	return out
}

// extraArea sums the style upgrade costs.
func extraArea(m area.Model, styles map[string]area.Style) int {
	total := 0
	for _, s := range styles {
		total += m.StyleExtra(s)
	}
	return total
}
