package bist

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"bistpath/internal/area"
	"bistpath/internal/datapath"
)

// Stochastic-search defaults (Options fields left zero resolve to these).
const (
	defaultMaxGenerations   = 250
	defaultStallGenerations = 40
	defaultExactProbeNodes  = 150_000
	defaultAnnealIterFactor = 300 // annealing iterations per module
)

// AutoExactBits is the exact-feasibility threshold used by Search=Auto:
// when the embedding search space exceeds 2^AutoExactBits combinations
// (SearchSpaceBits), the branch and bound is unlikely to close the gap
// within its node budget and the stochastic search is selected instead.
// All five DAC'95 paper benchmarks fall well under the threshold.
const AutoExactBits = 32

// SearchSpaceBits returns log2 of the number of complete embedding
// assignments for the data path — the sum of log2(per-module candidate
// counts). It enumerates candidates per module but materializes nothing
// else, so it is cheap relative to either search.
func SearchSpaceBits(dp *datapath.Datapath, allowPadHeads bool) float64 {
	var buf []Embedding
	bits := 0.0
	for _, m := range dp.Modules {
		buf = AppendEmbeddings(buf[:0], dp, m.Name, allowPadHeads)
		if n := len(buf); n > 1 {
			bits += math.Log2(float64(n))
		}
	}
	return bits
}

// ExactFeasible reports whether the exact branch and bound is expected to
// complete within its default node budget: the embedding search space
// stays under 2^AutoExactBits combinations. Search=Auto uses this to pick
// between OptimizeCtx and OptimizeStochasticCtx.
func ExactFeasible(dp *datapath.Datapath, allowPadHeads bool) bool {
	return SearchSpaceBits(dp, allowPadHeads) <= AutoExactBits
}

// OptimizeStochastic is Optimize's stochastic counterpart for data paths
// too large for exhaustive branch and bound: a genetic search over
// register-embedding assignments with a simulated-annealing polish,
// seeded by the greedy heuristic plan and the incumbent of a
// node-budgeted exact probe. See OptimizeStochasticCtx for the
// determinism contract.
func OptimizeStochastic(dp *datapath.Datapath, opts Options) (*Plan, error) {
	return OptimizeStochasticCtx(context.Background(), dp, opts)
}

// OptimizeStochasticCtx runs the stochastic search with cancellation.
//
// Structure: a sequential exact probe first runs the branch and bound
// under Options.ExactProbeNodes; if it completes, its provably optimal
// plan is returned directly (Exact=true). Otherwise a genetic search
// evolves a population of embedding-index genomes — seeded by the probe's
// incumbent, the greedy heuristic assignment and random genomes — via
// tournament selection, uniform crossover and per-gene mutation, then a
// simulated-annealing pass polishes the best genome with single-module
// moves. Every adopted incumbent is revalidated through Plan.Validate and
// cross-checked against the area model before it can become the answer.
//
// Determinism: all randomness flows from one source seeded by
// Options.Seed, evolution decisions are sequential, and parallel fitness
// evaluation writes results by population index — so identical (data
// path, Options, Seed) yields an identical Plan at any Workers value.
// Options.TimeBudget is the one exception: each generation remains a pure
// function of the seed, but where a wall-clock budget cuts the run off is
// timing-dependent, so only generation-bounded runs are reproducible
// across machines.
func OptimizeStochasticCtx(ctx context.Context, dp *datapath.Datapath, opts Options) (*Plan, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if opts.Model.Width == 0 {
		opts.Model = area.Default(dp.Width)
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	maxGen := opts.MaxGenerations
	if maxGen == 0 {
		maxGen = defaultMaxGenerations
	}
	stallGen := opts.StallGenerations
	if stallGen == 0 {
		stallGen = defaultStallGenerations
	}
	probeNodes := opts.ExactProbeNodes
	if probeNodes == 0 {
		probeNodes = defaultExactProbeNodes
	}
	sc := opts.Scratch
	if sc == nil {
		sc = new(Scratch)
	}

	start := time.Now()
	var deadline time.Time
	if opts.TimeBudget > 0 {
		deadline = start.Add(opts.TimeBudget)
	}
	timedOut := func() bool {
		return !deadline.IsZero() && !time.Now().Before(deadline)
	}

	// Phase 1: node-budgeted exact probe. Always sequential — a parallel
	// probe truncated by a node budget is schedule-dependent, which would
	// leak worker count into the seed genome and break the determinism
	// contract.
	var probeMetrics Metrics
	var seedEmb map[string]Embedding
	if probeNodes > 0 {
		po := opts
		po.Workers = 1
		po.NodeBudget = probeNodes
		po.Metrics = &probeMetrics
		po.Scratch = sc
		plan, err := OptimizeCtx(ctx, dp, po)
		if err != nil {
			return nil, err
		}
		if plan.Exact {
			if opts.Metrics != nil {
				*opts.Metrics = probeMetrics
				opts.Metrics.Curve = []CurvePoint{{Generation: 0, Cost: plan.ExtraArea}}
			}
			return plan, nil
		}
		seedEmb = plan.Embeddings
	}

	sp, err := prepareSpace(dp, opts, sc)
	if err != nil {
		return nil, err
	}
	nm := len(sp.mods)
	if nm == 0 {
		plan := &Plan{
			Embeddings: map[string]Embedding{},
			Styles:     map[string]area.Style{},
			Exact:      true,
		}
		plan.Sessions = ScheduleSessions(plan)
		if opts.Metrics != nil {
			*opts.Metrics = Metrics{Workers: 1}
		}
		return plan, plan.Validate(dp)
	}

	pupSize := opts.Population
	if pupSize <= 0 {
		pupSize = min(max(6*nm, 32), 192)
	}
	if pupSize < 4 {
		pupSize = 4
	}

	nw := opts.Workers
	if nw < 1 {
		nw = 1
	}
	if nw > pupSize {
		nw = pupSize
	}

	// Worker-local cost evaluators over recycled arenas.
	evs := make([]dutyEval, nw)
	arenas := make([]*searchArena, nw)
	for i := range evs {
		a := sc.getArena()
		a.size(sp.nregs, nm)
		arenas[i] = a
		evs[i] = newDutyEval(&sp, a)
	}
	defer func() {
		for _, a := range arenas {
			sc.putArena(a)
		}
	}()

	st := &stochState{sp: &sp, dp: dp, opts: opts, bestCost: -1, bestSessions: -1}
	rng := rand.New(rand.NewSource(seed))

	// Phase 2: seeded initial population.
	pop := make([][]int32, pupSize)
	next := make([][]int32, pupSize)
	fit := make([]int, pupSize)
	nextFit := make([]int, pupSize)
	for i := range pop {
		pop[i] = make([]int32, nm)
		next[i] = make([]int32, nm)
	}
	greedyCost := greedyAssignment(&sp, &evs[0], pop[0])
	for i, g := range pop[0] {
		evs[0].undo(sp.refs[i][g])
	}
	fit[0] = greedyCost
	from := 1
	if seedEmb != nil && sp.genomeOf(seedEmb, pop[1]) {
		fit[1] = evs[0].evalGenome(sp.refs, pop[1])
		from = 2
	}
	for i := from; i < pupSize; i++ {
		for j := range pop[i] {
			pop[i][j] = int32(rng.Intn(len(sp.refs[j])))
		}
		fit[i] = evs[0].evalGenome(sp.refs, pop[i])
	}
	st.evals += int64(pupSize)
	for i := range pop {
		if _, err := st.improve(pop[i], fit[i]); err != nil {
			return nil, err
		}
	}

	evalAll := func(genomes [][]int32, out []int) {
		if nw == 1 {
			for i, g := range genomes {
				out[i] = evs[0].evalGenome(sp.refs, g)
			}
			return
		}
		// Results land by population index, so the worker count cannot
		// change what the sequential scan below observes.
		var wg sync.WaitGroup
		chunk := (len(genomes) + nw - 1) / nw
		for w := 0; w < nw; w++ {
			lo := w * chunk
			hi := min(lo+chunk, len(genomes))
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(ev *dutyEval, lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					out[i] = ev.evalGenome(sp.refs, genomes[i])
				}
			}(&evs[w], lo, hi)
		}
		wg.Wait()
	}

	tournament := func() []int32 {
		bi := rng.Intn(pupSize)
		for k := 1; k < 3; k++ {
			c := rng.Intn(pupSize)
			if fit[c] < fit[bi] || (fit[c] == fit[bi] && c < bi) {
				bi = c
			}
		}
		return pop[bi]
	}

	pm := 1.5 / float64(nm)
	if pm > 0.5 {
		pm = 0.5
	}

	// Phase 3: genetic search. All rng draws happen on this goroutine in
	// a fixed order; fitness evaluation is the only parallel step.
	lastImprove := int64(0)
	cancelled := false
	for gen := int64(1); gen <= int64(maxGen); gen++ {
		if err := ctx.Err(); err != nil {
			cancelled = true
			break
		}
		if timedOut() {
			break
		}
		if stallGen > 0 && gen-lastImprove > int64(stallGen) {
			break
		}
		// Elitism: the global incumbent and the best of the current
		// population survive unchanged.
		copy(next[0], st.best)
		bi := 0
		for i := 1; i < pupSize; i++ {
			if fit[i] < fit[bi] {
				bi = i
			}
		}
		copy(next[1], pop[bi])
		for i := 2; i < pupSize; i++ {
			pa, pb := tournament(), tournament()
			child := next[i]
			if rng.Float64() < 0.9 {
				for j := range child {
					if rng.Intn(2) == 0 {
						child[j] = pa[j]
					} else {
						child[j] = pb[j]
					}
				}
			} else {
				copy(child, pa)
			}
			for j := range child {
				if len(sp.refs[j]) > 1 && rng.Float64() < pm {
					child[j] = int32(rng.Intn(len(sp.refs[j])))
				}
			}
		}
		evalAll(next, nextFit)
		st.evals += int64(pupSize)
		st.gen = gen
		for i := range next {
			took, err := st.improve(next[i], nextFit[i])
			if err != nil {
				return nil, err
			}
			if took {
				lastImprove = gen
			}
		}
		pop, next = next, pop
		fit, nextFit = nextFit, fit
		if opts.Progress != nil {
			opts.Progress(probeMetrics.Nodes + st.evals)
		}
	}

	// Phase 4: simulated-annealing polish of the best genome —
	// single-module moves with incremental cost deltas, geometric
	// cooling. Incumbent updates here are strict improvements only.
	if !cancelled && !timedOut() {
		ev := &evs[0]
		cur := append([]int32(nil), st.best...)
		for i, g := range cur {
			ev.apply(sp.refs[i][g])
		}
		curCost := ev.cost
		iters := min(max(defaultAnnealIterFactor*nm, 2000), 150_000)
		t0 := math.Max(2, 0.05*float64(curCost+1))
		cooling := math.Pow(0.05/t0, 1/float64(iters))
		temp := t0
		for it := 0; it < iters; it++ {
			if it&1023 == 0 {
				if ctx.Err() != nil {
					cancelled = true
					break
				}
				if timedOut() {
					break
				}
			}
			i := rng.Intn(nm)
			if n := len(sp.refs[i]); n > 1 {
				j := int32(rng.Intn(n - 1))
				if j >= cur[i] {
					j++
				}
				old := cur[i]
				ev.undo(sp.refs[i][old])
				ev.apply(sp.refs[i][j])
				st.evals++
				d := ev.cost - curCost
				if d <= 0 || rng.Float64() < math.Exp(-float64(d)/temp) {
					cur[i] = j
					curCost = ev.cost
					if curCost < st.bestCost {
						if _, err := st.improve(cur, curCost); err != nil {
							return nil, err
						}
					}
				} else {
					ev.undo(sp.refs[i][j])
					ev.apply(sp.refs[i][old])
				}
			}
			temp *= cooling
		}
		for i, g := range cur {
			ev.undo(sp.refs[i][g])
		}
	}
	if cancelled {
		return nil, ctx.Err()
	}
	if opts.Progress != nil {
		opts.Progress(probeMetrics.Nodes + st.evals)
	}

	if opts.Metrics != nil {
		*opts.Metrics = Metrics{
			Nodes:       probeMetrics.Nodes,
			BoundPrunes: probeMetrics.BoundPrunes,
			Incumbents:  probeMetrics.Incumbents + st.incumbents,
			Embeddings:  sp.embTotal,
			Workers:     nw,
			Generations: st.gen,
			Evaluations: st.evals,
			Curve:       st.curve,
		}
	}

	plan := PlanFromEmbeddings(opts.Model, sp.embeddingsOf(st.best), false)
	if plan.ExtraArea != st.bestCost {
		return nil, fmt.Errorf("bist: stochastic cost evaluator disagrees with area model (%d vs %d)", st.bestCost, plan.ExtraArea)
	}
	return plan, plan.Validate(dp)
}

// genomeOf fills genome with the embedding indices matching embs (one per
// module position) and reports whether every module resolved. Used to map
// the exact probe's incumbent plan back into the genetic search's genome
// space.
func (sp *searchSpace) genomeOf(embs map[string]Embedding, genome []int32) bool {
	for i, m := range sp.mods {
		e, ok := embs[m.name]
		if !ok {
			return false
		}
		found := int32(-1)
		for j, cand := range m.embs {
			if cand == e {
				found = int32(j)
				break
			}
		}
		if found < 0 {
			return false
		}
		genome[i] = found
	}
	return true
}

// stochState tracks the stochastic search's incumbent and effort. The
// incumbent order is canonical — (cost, [sessions,] lexicographic
// genome) — so the winner is a pure function of the candidates seen, not
// of scan order details.
type stochState struct {
	sp   *searchSpace
	dp   *datapath.Datapath
	opts Options

	best         []int32
	bestCost     int
	bestSessions int // -1 = not yet computed
	curve        []CurvePoint
	incumbents   int64
	evals        int64
	gen          int64
}

// improve considers (g, cost) against the incumbent and adopts it when it
// wins the canonical order. Adopted candidates are materialized as a full
// Plan, cross-checked against the area model and revalidated against the
// data path — a stochastic search must never be able to return an
// assignment the exact search's invariants would reject.
func (st *stochState) improve(g []int32, cost int) (bool, error) {
	switch {
	case st.bestCost < 0 || cost < st.bestCost:
		// Strict improvement.
	case cost > st.bestCost:
		return false, nil
	default: // cost tie
		if int32Equal(g, st.best) {
			return false, nil
		}
		if st.opts.MinimizeSessions {
			s := sessionsOfEmbeddings(st.sp.embeddingsOf(g))
			bs := st.sessionsOfBest()
			if s > bs || (s == bs && !int32Less(g, st.best)) {
				return false, nil
			}
		} else if !int32Less(g, st.best) {
			return false, nil
		}
	}
	p := PlanFromEmbeddings(st.opts.Model, st.sp.embeddingsOf(g), false)
	if p.ExtraArea != cost {
		return false, fmt.Errorf("bist: stochastic cost evaluator disagrees with area model (%d vs %d)", cost, p.ExtraArea)
	}
	if err := p.Validate(st.dp); err != nil {
		return false, fmt.Errorf("bist: stochastic candidate failed validation: %w", err)
	}
	st.best = append(st.best[:0], g...)
	st.bestCost = cost
	st.bestSessions = len(p.Sessions)
	st.curve = append(st.curve, CurvePoint{Generation: st.gen, Cost: cost})
	st.incumbents++
	return true, nil
}

func (st *stochState) sessionsOfBest() int {
	if st.bestSessions < 0 {
		st.bestSessions = sessionsOfEmbeddings(st.sp.embeddingsOf(st.best))
	}
	return st.bestSessions
}

func int32Equal(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// int32Less is the lexicographic order on genomes, the final tie-break of
// the incumbent order.
func int32Less(a, b []int32) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
