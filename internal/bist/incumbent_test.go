package bist

import (
	"context"
	"reflect"
	"testing"

	"bistpath/internal/benchdata"
	"bistpath/internal/interconnect"
)

// TestIncumbentWarmStartIdentity checks the warm-start contract on every
// paper benchmark and worker count: seeding the bound with the cold
// optimum as incumbent must return the identical Plan while expanding no
// more nodes than the cold search.
func TestIncumbentWarmStartIdentity(t *testing.T) {
	for _, b := range benchdata.All() {
		for _, minSess := range []bool{false, true} {
			dp, _, _ := buildBench(t, b, false)
			opts := DefaultOptions(8)
			opts.MinimizeSessions = minSess
			var cold Metrics
			opts.Metrics = &cold
			coldPlan, err := Optimize(dp, opts)
			if err != nil {
				t.Fatalf("%s: cold: %v", b.Name, err)
			}
			for _, workers := range []int{1, 4} {
				var warm Metrics
				wopts := opts
				wopts.Workers = workers
				wopts.Metrics = &warm
				wopts.Incumbent = coldPlan
				warmPlan, err := OptimizeCtx(context.Background(), dp, wopts)
				if err != nil {
					t.Fatalf("%s: warm: %v", b.Name, err)
				}
				if !reflect.DeepEqual(coldPlan.Embeddings, warmPlan.Embeddings) ||
					!reflect.DeepEqual(coldPlan.Sessions, warmPlan.Sessions) ||
					coldPlan.ExtraArea != warmPlan.ExtraArea ||
					coldPlan.Exact != warmPlan.Exact {
					t.Errorf("%s minSess=%v workers=%d: warm plan differs from cold", b.Name, minSess, workers)
				}
				if workers == 1 && warm.Nodes > cold.Nodes {
					t.Errorf("%s minSess=%v: warm search expanded %d nodes, cold %d",
						b.Name, minSess, warm.Nodes, cold.Nodes)
				}
			}
		}
	}
}

// TestIncumbentRejectsStale checks that an incumbent that does not
// validate against the data path — or that rides a pad head while pads
// are forbidden — is ignored rather than corrupting the bound.
func TestIncumbentRejectsStale(t *testing.T) {
	dp, _, _ := buildBench(t, benchdata.Ex1(), false)
	opts := DefaultOptions(8)
	coldPlan, err := Optimize(dp, opts)
	if err != nil {
		t.Fatal(err)
	}

	// A bogus incumbent referencing an unknown module fails Validate.
	bogus := &Plan{Embeddings: map[string]Embedding{"nope": {Module: "nope", HeadL: "x", Tail: "y"}}}
	if _, ok := incumbentBound(dp, Options{Incumbent: bogus, Model: opts.Model}); ok {
		t.Error("stale incumbent accepted")
	}
	wopts := opts
	wopts.Incumbent = bogus
	plan, err := OptimizeCtx(context.Background(), dp, wopts)
	if err != nil {
		t.Fatal(err)
	}
	if plan.ExtraArea != coldPlan.ExtraArea {
		t.Errorf("bogus incumbent changed the optimum: %d != %d", plan.ExtraArea, coldPlan.ExtraArea)
	}

	// A pad-headed incumbent is unusable when pads are forbidden, even
	// if it validates structurally.
	padOpts := DefaultOptions(8)
	padOpts.AllowPadHeads = true
	padPlan, err := Optimize(dp, padOpts)
	if err != nil {
		t.Fatal(err)
	}
	usesPad := false
	for _, e := range padPlan.Embeddings {
		if interconnect.IsPad(e.HeadL) || (e.HeadR != "" && interconnect.IsPad(e.HeadR)) {
			usesPad = true
		}
	}
	if usesPad {
		noPad := padOpts
		noPad.AllowPadHeads = false
		noPad.Incumbent = padPlan
		if _, ok := incumbentBound(dp, noPad); ok {
			t.Error("pad-headed incumbent accepted with pads forbidden")
		}
	}
}
