package bist

import (
	"sync"

	"bistpath/internal/area"
	"bistpath/internal/interconnect"
)

// embRef is an embedding with its registers interned to small ids:
// l/r are the head registers (-1 for pad heads and for the missing right
// head of a unary module), t is the tail register. The branch-and-bound
// workers search over embRefs so that applying and undoing an embedding
// touches three int32 counters instead of three map entries.
type embRef struct{ l, r, t int32 }

// searchArena is one worker's search state: per-register duty counters
// indexed by interned register id, the current partial assignment
// (embedding index per module position) and the worker's incumbent
// assignment. Arenas live on a Scratch freelist and are recycled across
// searches; size re-dimensions one for the current problem.
type searchArena struct {
	tpg, sa, cb []int32 // duty counters per interned register
	cur         []int32 // embedding index per module position
	bestCur     []int32 // incumbent assignment
}

func (a *searchArena) size(nregs, nmods int) {
	a.tpg = growInt32(a.tpg, nregs)
	a.sa = growInt32(a.sa, nregs)
	a.cb = growInt32(a.cb, nregs)
	a.cur = growInt32(a.cur, nmods)
	a.bestCur = growInt32(a.bestCur, nmods)
}

// Scratch owns the optimizer's reusable memory: a freelist of worker
// search arenas plus the enumeration state (embedding slices, interning
// tables, compact refs) one OptimizeCtx call builds before its workers
// start. Passing one Scratch (Options.Scratch) to successive Optimize
// calls makes the whole search essentially allocation-free after the
// first call.
//
// A Scratch serves one Optimize call at a time; within that call the
// freelist hands arenas to the search's worker goroutines (that part is
// mutex-protected). Use one Scratch per synthesis worker.
type Scratch struct {
	mu   sync.Mutex
	free []*searchArena

	// Single-goroutine enumeration state (used before workers spawn).
	regID    map[string]int32
	regNames []string
	mods     []modEmb
	embStore [][]Embedding
	refStore [][]embRef
	costs    []int
}

// NewScratch returns an empty reusable optimizer scratch.
func NewScratch() *Scratch { return &Scratch{} }

func (s *Scratch) getArena() *searchArena {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := len(s.free); n > 0 {
		a := s.free[n-1]
		s.free = s.free[:n-1]
		return a
	}
	return &searchArena{}
}

func (s *Scratch) putArena(a *searchArena) {
	s.mu.Lock()
	s.free = append(s.free, a)
	s.mu.Unlock()
}

// internReg returns the small id of a register name, assigning one on
// first sight; pad heads and the empty right head intern to -1 (they
// carry no upgrade cost).
func (s *Scratch) internReg(name string) int32 {
	if name == "" || interconnect.IsPad(name) {
		return -1
	}
	if id, ok := s.regID[name]; ok {
		return id
	}
	id := int32(len(s.regNames))
	s.regID[name] = id
	s.regNames = append(s.regNames, name)
	return id
}

func (s *Scratch) resetIntern() {
	if s.regID == nil {
		s.regID = make(map[string]int32)
	} else {
		clear(s.regID)
	}
	s.regNames = s.regNames[:0]
}

func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// standaloneCost returns the upgrade area of an embedding considered in
// isolation — extraArea(model, stylesOf({e})) computed directly, without
// materializing the role maps. Used by the per-module pre-sort that
// orders cheap embeddings first.
func standaloneCost(model area.Model, e Embedding) int {
	lReg := e.HeadL != "" && !interconnect.IsPad(e.HeadL)
	rReg := e.HeadR != "" && !interconnect.IsPad(e.HeadR)
	cost := 0
	if (lReg && e.HeadL == e.Tail) || (rReg && e.HeadR == e.Tail) {
		cost += model.StyleExtra(area.CBILBO)
	} else {
		cost += model.StyleExtra(area.SA)
	}
	if lReg && e.HeadL != e.Tail {
		cost += model.StyleExtra(area.TPG)
	}
	// A diagonal module's shared head is one register: count it once.
	if rReg && e.HeadR != e.Tail && !(lReg && e.HeadR == e.HeadL) {
		cost += model.StyleExtra(area.TPG)
	}
	return cost
}
