package bist

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"bistpath/internal/benchdata"
	"bistpath/internal/datapath"
	"bistpath/internal/interconnect"
	"bistpath/internal/regassign"
)

// buildBenchWidth is buildBench at an explicit datapath width.
func buildBenchWidth(t testing.TB, b *benchdata.Benchmark, traditional bool, width int) *datapath.Datapath {
	t.Helper()
	mb, err := b.Modules()
	if err != nil {
		t.Fatal(err)
	}
	var rb *regassign.Binding
	if traditional {
		rb, err = regassign.Traditional(b.Graph)
	} else {
		rb, err = regassign.Bind(b.Graph, mb, regassign.DefaultOptions())
	}
	if err != nil {
		t.Fatal(err)
	}
	ib, err := interconnect.Bind(b.Graph, mb, rb, regassign.NewSharing(b.Graph, mb))
	if err != nil {
		t.Fatal(err)
	}
	dp, err := datapath.Build(b.Graph, mb, rb, ib, width)
	if err != nil {
		t.Fatal(err)
	}
	return dp
}

// planKey renders the full plan for equality comparison.
func planKey(p *Plan) string {
	return fmt.Sprintf("area=%d exact=%v embs=%v styles=%v sessions=%v",
		p.ExtraArea, p.Exact, p.Embeddings, p.Styles, p.Sessions)
}

// The core parallel-search property: for every benchmark design, both
// binders, and widths 4/8/16, the parallel optimizer returns a plan that
// (a) never has higher ExtraArea than the sequential one, (b) validates
// against the data path, and (c) is in fact the identical Plan — the
// deterministic tie-break makes worker count unobservable.
func TestParallelOptimizeMatchesSequential(t *testing.T) {
	for _, b := range benchdata.All() {
		for _, trad := range []bool{false, true} {
			for _, width := range []int{4, 8, 16} {
				dp := buildBenchWidth(t, b, trad, width)
				seq, err := Optimize(dp, DefaultOptions(width))
				if err != nil {
					t.Fatalf("%s trad=%v w=%d: %v", b.Name, trad, width, err)
				}
				for _, workers := range []int{2, 3, 8} {
					opts := DefaultOptions(width)
					opts.Workers = workers
					par, err := Optimize(dp, opts)
					if err != nil {
						t.Fatalf("%s trad=%v w=%d workers=%d: %v", b.Name, trad, width, workers, err)
					}
					if par.ExtraArea > seq.ExtraArea {
						t.Errorf("%s trad=%v w=%d workers=%d: parallel area %d > sequential %d",
							b.Name, trad, width, workers, par.ExtraArea, seq.ExtraArea)
					}
					if err := par.Validate(dp); err != nil {
						t.Errorf("%s trad=%v w=%d workers=%d: %v", b.Name, trad, width, workers, err)
					}
					if !reflect.DeepEqual(par.Embeddings, seq.Embeddings) ||
						!reflect.DeepEqual(par.Styles, seq.Styles) ||
						!reflect.DeepEqual(par.Sessions, seq.Sessions) {
						t.Errorf("%s trad=%v w=%d workers=%d: plan differs:\npar: %s\nseq: %s",
							b.Name, trad, width, workers, planKey(par), planKey(seq))
					}
				}
			}
		}
	}
}

// The same equality must hold under the session-minimizing tie-break,
// where equal-cost subtrees cannot be pruned and the leaves race.
func TestParallelOptimizeMinimizeSessionsDeterministic(t *testing.T) {
	for _, b := range benchdata.All() {
		dp := buildBenchWidth(t, b, false, 8)
		opts := DefaultOptions(8)
		opts.MinimizeSessions = true
		seq, err := Optimize(dp, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 8} {
			popts := opts
			popts.Workers = workers
			par, err := Optimize(dp, popts)
			if err != nil {
				t.Fatal(err)
			}
			if planKey(par) != planKey(seq) {
				t.Errorf("%s workers=%d:\npar: %s\nseq: %s", b.Name, workers, planKey(par), planKey(seq))
			}
		}
	}
}

// Property sweep over random DFGs: parallel and sequential plans agree
// on freshly generated data paths, not just the five paper designs.
func TestParallelOptimizeRandomProperty(t *testing.T) {
	for seed := int64(700); seed < 720; seed++ {
		g, mb, err := benchdata.RandomWithModules(benchdata.DefaultRandomConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		rb, err := regassign.Bind(g, mb, regassign.DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ib, err := interconnect.Bind(g, mb, rb, regassign.NewSharing(g, mb))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		dp, err := datapath.Build(g, mb, rb, ib, 8)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		seq, err := Optimize(dp, DefaultOptions(8))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		opts := DefaultOptions(8)
		opts.Workers = 4
		par, err := Optimize(dp, opts)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if par.ExtraArea > seq.ExtraArea {
			t.Errorf("seed %d: parallel area %d > sequential %d", seed, par.ExtraArea, seq.ExtraArea)
		}
		if planKey(par) != planKey(seq) {
			t.Errorf("seed %d: plan differs:\npar: %s\nseq: %s", seed, planKey(par), planKey(seq))
		}
	}
}

// OptimizeCtx honors cancellation in both sequential and parallel modes.
func TestOptimizeCtxCancelled(t *testing.T) {
	dp := buildBenchWidth(t, benchdata.Ex1(), false, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		opts := DefaultOptions(8)
		opts.Workers = workers
		if _, err := OptimizeCtx(ctx, dp, opts); err != context.Canceled {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

// The greedy fallback stays deterministic across worker counts when the
// node budget truncates the exact search.
func TestParallelOptimizeTinyBudgetDeterministic(t *testing.T) {
	dp := buildBenchWidth(t, benchdata.Tseng1(), false, 8)
	plans := make([]*Plan, 0, 3)
	for _, workers := range []int{1, 2, 8} {
		opts := DefaultOptions(8)
		opts.Workers = workers
		opts.NodeBudget = 1 // force the fallback everywhere
		p, err := Optimize(dp, opts)
		if err != nil {
			t.Fatal(err)
		}
		if p.Exact {
			t.Fatal("budget of 1 node reported exact")
		}
		if err := p.Validate(dp); err != nil {
			t.Fatal(err)
		}
		plans = append(plans, p)
	}
	for i := 1; i < len(plans); i++ {
		if planKey(plans[i]) != planKey(plans[0]) {
			t.Errorf("fallback plan %d differs:\n%s\nvs\n%s", i, planKey(plans[i]), planKey(plans[0]))
		}
	}
}

// BenchmarkOptimizeParallel compares the branch and bound at several
// inner worker counts on the densest paper design.
func BenchmarkOptimizeParallel(b *testing.B) {
	bench := benchdata.ByName("tseng1")
	mb, err := bench.Modules()
	if err != nil {
		b.Fatal(err)
	}
	rb, err := regassign.Bind(bench.Graph, mb, regassign.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	ib, err := interconnect.Bind(bench.Graph, mb, rb, regassign.NewSharing(bench.Graph, mb))
	if err != nil {
		b.Fatal(err)
	}
	dp, err := datapath.Build(bench.Graph, mb, rb, ib, 8)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := DefaultOptions(8)
			opts.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := Optimize(dp, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
