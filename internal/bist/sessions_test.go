package bist

import (
	"reflect"
	"testing"

	"bistpath/internal/area"
)

// planOf builds a Plan directly from embeddings, deriving styles the
// way the optimizer does, without scheduling (tests call
// ScheduleSessions themselves).
func planOf(embs ...Embedding) *Plan {
	m := make(map[string]Embedding, len(embs))
	for _, e := range embs {
		m[e.Module] = e
	}
	return &Plan{Embeddings: m, Styles: stylesOf(m)}
}

func TestScheduleSessionsEmptyPlan(t *testing.T) {
	p := &Plan{Embeddings: map[string]Embedding{}, Styles: map[string]area.Style{}}
	if s := ScheduleSessions(p); len(s) != 0 {
		t.Fatalf("empty plan scheduled into %d sessions, want 0", len(s))
	}
	p.Sessions = ScheduleSessions(p)
	if p.NumSessions() != 0 {
		t.Fatalf("NumSessions = %d, want 0", p.NumSessions())
	}
	if err := p.checkSession(nil); err != nil {
		t.Fatalf("empty session rejected: %v", err)
	}
}

func TestScheduleSessionsSingleModule(t *testing.T) {
	p := planOf(Embedding{Module: "m1", HeadL: "r1", HeadR: "r2", Tail: "r3"})
	s := ScheduleSessions(p)
	if len(s) != 1 || len(s[0]) != 1 || s[0][0] != "m1" {
		t.Fatalf("single-module plan scheduled as %v, want [[m1]]", s)
	}
}

func TestScheduleSessionsAllModulesOneSession(t *testing.T) {
	// Disjoint tails and no head-of-one == tail-of-another: every module
	// fits in the first session. Sharing a TPG head (r1 for m1 and m2)
	// is explicitly fine — both receive the same pseudo-random stream.
	p := planOf(
		Embedding{Module: "m1", HeadL: "r1", HeadR: "r2", Tail: "r3"},
		Embedding{Module: "m2", HeadL: "r1", HeadR: "r4", Tail: "r5"},
		Embedding{Module: "m3", HeadL: "r6", HeadR: "r7", Tail: "r8"},
	)
	s := ScheduleSessions(p)
	want := [][]string{{"m1", "m2", "m3"}}
	if !reflect.DeepEqual(s, want) {
		t.Fatalf("schedule %v, want %v", s, want)
	}
}

func TestScheduleSessionsSharedTailSplits(t *testing.T) {
	// One signature register cannot compact responses for two modules at
	// once: a shared tail forces separate sessions.
	p := planOf(
		Embedding{Module: "m1", HeadL: "r1", HeadR: "r2", Tail: "r9"},
		Embedding{Module: "m2", HeadL: "r3", HeadR: "r4", Tail: "r9"},
	)
	s := ScheduleSessions(p)
	if len(s) != 2 {
		t.Fatalf("shared-tail modules scheduled into %d sessions, want 2", len(s))
	}
	if !p.sessionConflict("m1", "m2") || !p.sessionConflict("m2", "m1") {
		t.Fatal("sessionConflict not symmetric on a shared tail")
	}
}

func TestScheduleSessionsCrossedHeadTail(t *testing.T) {
	// r2 generates for m2 and compacts for m1. As a plain BILBO it can
	// only do one at a time, so the modules split...
	p := planOf(
		Embedding{Module: "m1", HeadL: "r1", Tail: "r2"},
		Embedding{Module: "m2", HeadL: "r2", Tail: "r3"},
	)
	if got := p.Styles["r2"]; got != area.BILBO {
		t.Fatalf("r2 style %v, want BILBO", got)
	}
	if s := ScheduleSessions(p); len(s) != 2 {
		t.Fatalf("BILBO-crossed modules scheduled into %d sessions, want 2", len(s))
	}

	// ...but when the same register is a CBILBO (head and tail of m1),
	// it generates and compacts concurrently, and one session suffices.
	q := planOf(
		Embedding{Module: "m1", HeadL: "r2", Tail: "r2"},
		Embedding{Module: "m2", HeadL: "r2", Tail: "r3"},
	)
	if got := q.Styles["r2"]; got != area.CBILBO {
		t.Fatalf("r2 style %v, want CBILBO", got)
	}
	if s := ScheduleSessions(q); len(s) != 1 {
		t.Fatalf("CBILBO-crossed modules scheduled into %d sessions, want 1", len(s))
	}
}

func TestScheduleSessionsPadHeadsNeverConflict(t *testing.T) {
	// Pad heads are directly controllable and upgrade no register; a pad
	// "crossing" a tail must not force a split.
	p := planOf(
		Embedding{Module: "m1", HeadL: "in:a", Tail: "r1"},
		Embedding{Module: "m2", HeadL: "r1", HeadR: "in:a", Tail: "r2"},
	)
	// m2's head r1 is m1's tail (r1 is TPG for m2, SA for m1 → BILBO):
	// that crossing is real. But swap so only the pad crosses:
	q := planOf(
		Embedding{Module: "m1", HeadL: "in:a", Tail: "r1"},
		Embedding{Module: "m2", HeadL: "r3", HeadR: "in:a", Tail: "r2"},
	)
	if s := ScheduleSessions(q); len(s) != 1 {
		t.Fatalf("pad-only interaction split the schedule: %v", s)
	}
	if s := ScheduleSessions(p); len(s) != 2 {
		t.Fatalf("real register crossing not split: %v", s)
	}
}

func TestScheduleSessionsDeterministicOrder(t *testing.T) {
	// First-fit walks modules in sorted name order, so the schedule is a
	// pure function of the plan regardless of map iteration order.
	p := planOf(
		Embedding{Module: "m3", HeadL: "r1", Tail: "r2"},
		Embedding{Module: "m1", HeadL: "r1", Tail: "r3"},
		Embedding{Module: "m2", HeadL: "r1", Tail: "r3"}, // shares m1's tail
	)
	want := ScheduleSessions(p)
	for i := 0; i < 20; i++ {
		if got := ScheduleSessions(p); !reflect.DeepEqual(got, want) {
			t.Fatalf("run %d: schedule %v != %v", i, got, want)
		}
	}
	if len(want) != 2 {
		t.Fatalf("schedule %v, want 2 sessions", want)
	}
	if want[0][0] != "m1" {
		t.Fatalf("first session starts with %q, want m1 (sorted first-fit)", want[0][0])
	}
}

func TestCheckSessionRejectsConflict(t *testing.T) {
	p := planOf(
		Embedding{Module: "m1", HeadL: "r1", Tail: "r9"},
		Embedding{Module: "m2", HeadL: "r2", Tail: "r9"},
	)
	if err := p.checkSession([]string{"m1", "m2"}); err == nil {
		t.Fatal("conflicting session accepted")
	}
	if err := p.checkSession([]string{"m1"}); err != nil {
		t.Fatalf("singleton session rejected: %v", err)
	}
}
