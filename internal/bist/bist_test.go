package bist

import (
	"testing"

	"bistpath/internal/area"
	"bistpath/internal/benchdata"
	"bistpath/internal/datapath"
	"bistpath/internal/dfg"
	"bistpath/internal/interconnect"
	"bistpath/internal/modassign"
	"bistpath/internal/regassign"
)

// buildBench returns the datapath for a benchmark with the paper's binder.
func buildBench(t testing.TB, b *benchdata.Benchmark, traditional bool) (*datapath.Datapath, *modassign.Binding, *regassign.Binding) {
	t.Helper()
	mb, err := b.Modules()
	if err != nil {
		t.Fatal(err)
	}
	var rb *regassign.Binding
	if traditional {
		rb, err = regassign.Traditional(b.Graph)
	} else {
		rb, err = regassign.Bind(b.Graph, mb, regassign.DefaultOptions())
	}
	if err != nil {
		t.Fatal(err)
	}
	ib, err := interconnect.Bind(b.Graph, mb, rb, regassign.NewSharing(b.Graph, mb))
	if err != nil {
		t.Fatal(err)
	}
	dp, err := datapath.Build(b.Graph, mb, rb, ib, 8)
	if err != nil {
		t.Fatal(err)
	}
	return dp, mb, rb
}

func TestEmbeddingsBasic(t *testing.T) {
	dp, _, _ := buildBench(t, benchdata.Ex1(), false)
	for _, m := range dp.Modules {
		embs := Embeddings(dp, m.Name, true)
		if len(embs) == 0 {
			t.Fatalf("module %s has no embeddings", m.Name)
		}
		for _, e := range embs {
			if e.HeadL == e.HeadR {
				t.Errorf("embedding with correlated heads: %v", e)
			}
			if interconnect.IsPad(e.Tail) {
				t.Errorf("pad used as tail: %v", e)
			}
		}
	}
	if Embeddings(dp, "nope", true) != nil {
		t.Error("unknown module should yield nil")
	}
}

func TestEmbeddingCBILBODetection(t *testing.T) {
	e := Embedding{Module: "M", HeadL: "R1", HeadR: "R2", Tail: "R1"}
	if !e.NeedsCBILBO() || e.CBILBORegister() != "R1" {
		t.Error("head==tail not detected")
	}
	e = Embedding{Module: "M", HeadL: "R1", HeadR: "R2", Tail: "R3"}
	if e.NeedsCBILBO() || e.CBILBORegister() != "" {
		t.Error("false CBILBO")
	}
}

func TestOptimizeBenchmarks(t *testing.T) {
	for _, b := range benchdata.All() {
		for _, trad := range []bool{false, true} {
			dp, _, _ := buildBench(t, b, trad)
			plan, err := Optimize(dp, DefaultOptions(8))
			if err != nil {
				t.Fatalf("%s trad=%v: %v", b.Name, trad, err)
			}
			if !plan.Exact {
				t.Errorf("%s: expected exact search", b.Name)
			}
			if err := plan.Validate(dp); err != nil {
				t.Errorf("%s: %v", b.Name, err)
			}
			if plan.ExtraArea <= 0 {
				t.Errorf("%s: zero BIST area?", b.Name)
			}
		}
	}
}

// Table I's core claim: the testable binding never costs more BIST area
// than the traditional one, on every benchmark.
func TestTestableNeverWorseThanTraditional(t *testing.T) {
	for _, b := range benchdata.All() {
		dpT, _, _ := buildBench(t, b, false)
		dpR, _, _ := buildBench(t, b, true)
		pT, err := Optimize(dpT, DefaultOptions(8))
		if err != nil {
			t.Fatal(err)
		}
		pR, err := Optimize(dpR, DefaultOptions(8))
		if err != nil {
			t.Fatal(err)
		}
		if pT.ExtraArea > pR.ExtraArea {
			t.Errorf("%s: testable BIST area %d > traditional %d", b.Name, pT.ExtraArea, pR.ExtraArea)
		}
		cb := func(p *Plan) int { return p.StyleCount()[area.CBILBO] }
		if cb(pT) > cb(pR) {
			t.Errorf("%s: testable CBILBOs %d > traditional %d", b.Name, cb(pT), cb(pR))
		}
	}
}

// Lemma 2 cross-check: on pad-free data paths produced by our
// minimum-connectivity binder, the assignment-level Lemma 2 prediction
// must match brute-force enumeration over the netlist's embeddings.
func TestLemma2MatchesEnumeration(t *testing.T) {
	padFree := []*benchdata.Benchmark{benchdata.Ex1(), benchdata.Ex2(), benchdata.Tseng1(), benchdata.Tseng2()}
	for _, b := range padFree {
		for _, trad := range []bool{false, true} {
			dp, mb, rb := buildBench(t, b, trad)
			forced := regassign.ForcedCBILBOs(b.Graph, mb, rb.Sets())
			predicted := make(map[string]bool)
			for _, f := range forced {
				predicted[f.Module] = true
			}
			for _, m := range dp.Modules {
				got := ForcedCBILBOByEnumeration(dp, m.Name, false)
				if got != predicted[m.Name] {
					t.Errorf("%s trad=%v module %s: enumeration=%v lemma2=%v",
						b.Name, trad, m.Name, got, predicted[m.Name])
				}
			}
		}
	}
}

// Same cross-check on random DFGs (no port inputs by construction).
func TestLemma2MatchesEnumerationRandom(t *testing.T) {
	for seed := int64(200); seed < 240; seed++ {
		g, mb, err := benchdata.RandomWithModules(benchdata.DefaultRandomConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		rb, err := regassign.Bind(g, mb, regassign.DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ib, err := interconnect.Bind(g, mb, rb, regassign.NewSharing(g, mb))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		dp, err := datapath.Build(g, mb, rb, ib, 8)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		predicted := make(map[string]bool)
		for _, f := range regassign.ForcedCBILBOs(g, mb, rb.Sets()) {
			predicted[f.Module] = true
		}
		for _, m := range dp.Modules {
			got := ForcedCBILBOByEnumeration(dp, m.Name, false)
			if got != predicted[m.Name] {
				t.Errorf("seed %d module %s: enumeration=%v lemma2=%v", seed, m.Name, got, predicted[m.Name])
			}
		}
	}
}

func TestSessionsRespectConflicts(t *testing.T) {
	for _, b := range benchdata.All() {
		dp, _, _ := buildBench(t, b, false)
		plan, err := Optimize(dp, DefaultOptions(8))
		if err != nil {
			t.Fatal(err)
		}
		for _, sess := range plan.Sessions {
			if err := plan.checkSession(sess); err != nil {
				t.Errorf("%s: %v", b.Name, err)
			}
		}
		total := 0
		for _, s := range plan.Sessions {
			total += len(s)
		}
		if total != len(dp.Modules) {
			t.Errorf("%s: %d modules scheduled, want %d", b.Name, total, len(dp.Modules))
		}
	}
}

func TestSharedSAForcesSeparateSessions(t *testing.T) {
	p := &Plan{
		Embeddings: map[string]Embedding{
			"A": {Module: "A", HeadL: "R1", HeadR: "R2", Tail: "R3"},
			"B": {Module: "B", HeadL: "R1", HeadR: "R2", Tail: "R3"},
		},
		Styles: map[string]area.Style{"R1": area.TPG, "R2": area.TPG, "R3": area.SA},
	}
	if !p.sessionConflict("A", "B") {
		t.Error("shared SA not flagged")
	}
	p.Sessions = ScheduleSessions(p)
	if len(p.Sessions) != 2 {
		t.Errorf("sessions = %v, want 2", p.Sessions)
	}
}

func TestTPGSharingAllowedInOneSession(t *testing.T) {
	p := &Plan{
		Embeddings: map[string]Embedding{
			"A": {Module: "A", HeadL: "R1", HeadR: "R2", Tail: "R3"},
			"B": {Module: "B", HeadL: "R1", HeadR: "R2", Tail: "R4"},
		},
		Styles: map[string]area.Style{"R1": area.TPG, "R2": area.TPG, "R3": area.SA, "R4": area.SA},
	}
	if p.sessionConflict("A", "B") {
		t.Error("pure TPG sharing flagged as conflict")
	}
	p.Sessions = ScheduleSessions(p)
	if len(p.Sessions) != 1 {
		t.Errorf("sessions = %v, want 1", p.Sessions)
	}
}

func TestCrossTPGSANeedsCBILBOOrSeparateSessions(t *testing.T) {
	mk := func(style area.Style) *Plan {
		return &Plan{
			Embeddings: map[string]Embedding{
				"A": {Module: "A", HeadL: "R1", HeadR: "R2", Tail: "R3"},
				"B": {Module: "B", HeadL: "R3", HeadR: "R2", Tail: "R4"},
			},
			Styles: map[string]area.Style{"R1": area.TPG, "R2": area.TPG, "R3": style, "R4": area.SA},
		}
	}
	// R3 is SA for A and TPG for B: BILBO -> conflict, CBILBO -> fine.
	if !mk(area.BILBO).sessionConflict("A", "B") {
		t.Error("BILBO cross use not flagged")
	}
	if mk(area.CBILBO).sessionConflict("A", "B") {
		t.Error("CBILBO cross use wrongly flagged")
	}
}

func TestOptimizeNoEmbeddingError(t *testing.T) {
	// A module whose every port source is a pad and pad heads are
	// disallowed must be rejected.
	g := dfg.New("pads")
	g.AddInput("a", "b")
	g.MarkPortInput("a", "b")
	g.AddOp("m1", dfg.Mul, 1, "x", "a", "b")
	g.MarkOutput("x")
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	mb, err := modassign.FromMap(g, map[string]string{"m1": "M1"})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := regassign.Bind(g, mb, regassign.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ib, err := interconnect.Bind(g, mb, rb, nil)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := datapath.Build(g, mb, rb, ib, 8)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(8)
	opts.AllowPadHeads = false
	if _, err := Optimize(dp, opts); err == nil {
		t.Error("module with pad-only heads accepted without pad TPGs")
	}
	// With pad heads allowed it must succeed at zero register cost for
	// the heads (only the SA tail costs area).
	plan, err := Optimize(dp, DefaultOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.ExtraArea; got != area.Default(8).StyleExtra(area.SA) {
		t.Errorf("extra area = %d, want one SA upgrade", got)
	}
}

func TestOptimizeIsMinimal(t *testing.T) {
	// Exhaustive check on ex1: no embedding choice beats the optimizer.
	dp, _, _ := buildBench(t, benchdata.Ex1(), false)
	plan, err := Optimize(dp, DefaultOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	model := area.Default(8)
	var mods []string
	var embs [][]Embedding
	for _, m := range dp.Modules {
		mods = append(mods, m.Name)
		embs = append(embs, Embeddings(dp, m.Name, true))
	}
	best := -1
	var rec func(i int, cur map[string]Embedding)
	rec = func(i int, cur map[string]Embedding) {
		if i == len(mods) {
			if c := extraArea(model, stylesOf(cur)); best < 0 || c < best {
				best = c
			}
			return
		}
		for _, e := range embs[i] {
			cur[mods[i]] = e
			rec(i+1, cur)
			delete(cur, mods[i])
		}
	}
	rec(0, map[string]Embedding{})
	if plan.ExtraArea != best {
		t.Errorf("optimizer found %d, exhaustive minimum is %d", plan.ExtraArea, best)
	}
}

// MinimizeSessions: same minimal area, never more sessions.
func TestMinimizeSessionsTieBreak(t *testing.T) {
	for _, b := range benchdata.All() {
		dp, _, _ := buildBench(t, b, false)
		base, err := Optimize(dp, DefaultOptions(8))
		if err != nil {
			t.Fatal(err)
		}
		opts := DefaultOptions(8)
		opts.MinimizeSessions = true
		tuned, err := Optimize(dp, opts)
		if err != nil {
			t.Fatal(err)
		}
		if tuned.ExtraArea != base.ExtraArea {
			t.Errorf("%s: session tuning changed area: %d vs %d", b.Name, tuned.ExtraArea, base.ExtraArea)
		}
		if tuned.NumSessions() > base.NumSessions() {
			t.Errorf("%s: tuned sessions %d > base %d", b.Name, tuned.NumSessions(), base.NumSessions())
		}
		if err := tuned.Validate(dp); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
	}
}

// Lemma 1 of the paper: if every BIST embedding of a module requires a
// CBILBO, the module's output variables span at most two registers.
// Verified empirically over every minimum binding of ex1 and random
// DFGs.
func TestLemma1Property(t *testing.T) {
	check := func(g *dfg.Graph, mb *modassign.Binding, rb *regassign.Binding) {
		t.Helper()
		ib, err := interconnect.Bind(g, mb, rb, nil)
		if err != nil {
			t.Fatal(err)
		}
		dp, err := datapath.Build(g, mb, rb, ib, 8)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range dp.Modules {
			if !ForcedCBILBOByEnumeration(dp, m.Name, false) {
				continue
			}
			outRegs := make(map[string]bool)
			for _, opName := range mb.Module(m.Name).Ops {
				outRegs[rb.RegisterOf(g.Op(opName).Result)] = true
			}
			if len(outRegs) > 2 {
				t.Errorf("Lemma 1 violated: forced module %s has %d output registers", m.Name, len(outRegs))
			}
		}
	}
	// Every minimum binding of ex1.
	b := benchdata.Ex1()
	mb, err := b.Modules()
	if err != nil {
		t.Fatal(err)
	}
	parts, complete, err := regassign.EnumerateMinimumBindings(b.Graph, 0)
	if err != nil || !complete {
		t.Fatal(err)
	}
	for _, p := range parts {
		rb, err := regassign.BindingFromPartition(b.Graph, p)
		if err != nil {
			t.Fatal(err)
		}
		check(b.Graph, mb, rb)
	}
	// Random DFGs with both binders.
	for seed := int64(400); seed < 420; seed++ {
		g, rmb, err := benchdata.RandomWithModules(benchdata.DefaultRandomConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		for _, trad := range []bool{false, true} {
			var rb *regassign.Binding
			if trad {
				rb, err = regassign.Traditional(g)
			} else {
				rb, err = regassign.Bind(g, rmb, regassign.DefaultOptions())
			}
			if err != nil {
				t.Fatal(err)
			}
			check(g, rmb, rb)
		}
	}
}
