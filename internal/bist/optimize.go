package bist

import (
	"fmt"
	"sort"

	"bistpath/internal/area"
	"bistpath/internal/datapath"
	"bistpath/internal/interconnect"
)

// Plan is a complete BIST solution for a data path.
type Plan struct {
	Embeddings map[string]Embedding  // chosen embedding per module
	Styles     map[string]area.Style // style per register (Normal omitted)
	Sessions   [][]string            // modules tested concurrently, per session
	ExtraArea  int                   // gate equivalents added by register upgrades
	Exact      bool                  // true if found by exhaustive branch & bound
}

// StyleCount returns how many registers carry each non-normal style.
func (p *Plan) StyleCount() map[area.Style]int {
	out := make(map[area.Style]int)
	for _, s := range p.Styles {
		if s != area.Normal {
			out[s]++
		}
	}
	return out
}

// NumBISTRegisters returns the number of registers modified for test.
func (p *Plan) NumBISTRegisters() int {
	n := 0
	for _, s := range p.Styles {
		if s != area.Normal {
			n++
		}
	}
	return n
}

// Options configures the optimizer.
type Options struct {
	Model         area.Model
	AllowPadHeads bool // pads may source test patterns (Definition 1)
	NodeBudget    int  // branch&bound node cap before greedy fallback (0 = default)
	// MinimizeSessions breaks area ties in favor of plans that schedule
	// into fewer test sessions (shorter total test time). Area remains
	// the primary objective — the paper's; this is the natural secondary
	// one ("it is not necessary to test all the combinational modules at
	// the same time", Section II).
	MinimizeSessions bool
}

// DefaultOptions returns the standard configuration for the given width.
func DefaultOptions(width int) Options {
	return Options{Model: area.Default(width), AllowPadHeads: true}
}

// Optimize chooses one embedding per module minimizing the total register
// upgrade area, then schedules test sessions. The search is exact branch
// and bound for realistic sizes; beyond the node budget it falls back to
// a greedy pass with local improvement (Exact reports which).
func Optimize(dp *datapath.Datapath, opts Options) (*Plan, error) {
	if opts.Model.Width == 0 {
		opts.Model = area.Default(dp.Width)
	}
	if opts.NodeBudget == 0 {
		opts.NodeBudget = 2_000_000
	}
	type modEmb struct {
		name string
		embs []Embedding
	}
	var mods []modEmb
	for _, m := range dp.Modules {
		embs := Embeddings(dp, m.Name, opts.AllowPadHeads)
		if len(embs) == 0 {
			return nil, fmt.Errorf("bist: module %s has no BIST embedding (no register I-paths)", m.Name)
		}
		mods = append(mods, modEmb{m.Name, embs})
	}
	// Most-constrained modules first makes pruning effective.
	sort.Slice(mods, func(i, j int) bool {
		if len(mods[i].embs) != len(mods[j].embs) {
			return len(mods[i].embs) < len(mods[j].embs)
		}
		return mods[i].name < mods[j].name
	})
	for i := range mods {
		mods[i].embs = append([]Embedding(nil), mods[i].embs...)
	}

	// Pre-sort each module's embeddings once by standalone upgrade cost
	// (cheap embeddings first makes the first complete solution strong).
	for _, m := range mods {
		standalone := func(e Embedding) int {
			one := map[string]Embedding{m.name: e}
			return extraArea(opts.Model, stylesOf(one))
		}
		sort.SliceStable(m.embs, func(a, b int) bool { return standalone(m.embs[a]) < standalone(m.embs[b]) })
	}

	best := make(map[string]Embedding, len(mods))
	bestCost := -1
	bestSessions := -1
	nodes := 0
	exact := true
	cur := make(map[string]Embedding, len(mods))
	st := newRoleState(opts.Model)

	sessionsOf := func(embs map[string]Embedding) int {
		p := &Plan{Embeddings: embs, Styles: stylesOf(embs)}
		return len(ScheduleSessions(p))
	}
	var dfs func(i int)
	dfs = func(i int) {
		if nodes > opts.NodeBudget {
			exact = false
			return
		}
		nodes++
		cost := st.cost
		if bestCost >= 0 {
			if cost > bestCost {
				return // adding modules never lowers cost
			}
			if cost == bestCost && i < len(mods) && !opts.MinimizeSessions {
				return // equal-cost completions cannot improve
			}
		}
		if i == len(mods) {
			if bestCost < 0 || cost < bestCost {
				bestCost = cost
				for k, v := range cur {
					best[k] = v
				}
				if opts.MinimizeSessions {
					bestSessions = sessionsOf(best)
				}
				return
			}
			// cost == bestCost: prefer fewer sessions when asked.
			if opts.MinimizeSessions {
				if s := sessionsOf(cur); s < bestSessions {
					bestSessions = s
					for k, v := range cur {
						best[k] = v
					}
				}
			}
			return
		}
		m := mods[i]
		for _, e := range m.embs {
			cur[m.name] = e
			st.apply(e)
			dfs(i + 1)
			st.undo(e)
			delete(cur, m.name)
		}
	}
	dfs(0)

	if bestCost < 0 || !exact {
		// Greedy fallback (also used when the budget ran out before any
		// complete solution, which cannot happen with the default budget
		// but is handled for safety).
		greedy := make(map[string]Embedding, len(mods))
		for _, m := range mods {
			bi, bc := 0, -1
			for idx, e := range m.embs {
				greedy[m.name] = e
				c := extraArea(opts.Model, stylesOf(greedy))
				if bc < 0 || c < bc {
					bi, bc = idx, c
				}
			}
			greedy[m.name] = m.embs[bi]
		}
		// One improvement sweep.
		for _, m := range mods {
			bc := extraArea(opts.Model, stylesOf(greedy))
			for _, e := range m.embs {
				old := greedy[m.name]
				greedy[m.name] = e
				if c := extraArea(opts.Model, stylesOf(greedy)); c < bc {
					bc = c
				} else {
					greedy[m.name] = old
				}
			}
		}
		gc := extraArea(opts.Model, stylesOf(greedy))
		if bestCost < 0 || gc < bestCost {
			best = greedy
			bestCost = gc
		}
	}

	plan := &Plan{
		Embeddings: best,
		Styles:     stylesOf(best),
		ExtraArea:  bestCost,
		Exact:      exact,
	}
	plan.Sessions = ScheduleSessions(plan)
	return plan, plan.Validate(dp)
}

// Validate checks that the plan's embeddings exist in the data path, the
// styles match the embeddings' duties, and the sessions are conflict-free
// and cover every module exactly once.
func (p *Plan) Validate(dp *datapath.Datapath) error {
	for name, e := range p.Embeddings {
		m := dp.Module(name)
		if m == nil {
			return fmt.Errorf("bist: embedding for unknown module %s", name)
		}
		if !containsStr(m.Left, e.HeadL) {
			return fmt.Errorf("bist: %s head %s not on left port", name, e.HeadL)
		}
		if e.HeadR != "" && !containsStr(m.Right, e.HeadR) {
			return fmt.Errorf("bist: %s head %s not on right port", name, e.HeadR)
		}
		if !containsStr(m.Dests, e.Tail) {
			return fmt.Errorf("bist: %s tail %s not a destination", name, e.Tail)
		}
		if e.HeadR != "" && e.HeadL == e.HeadR && !dp.ModuleDiagonal(name) {
			return fmt.Errorf("bist: %s uses one source for both ports", name)
		}
	}
	for _, m := range dp.Modules {
		if _, ok := p.Embeddings[m.Name]; !ok {
			return fmt.Errorf("bist: module %s has no embedding in plan", m.Name)
		}
	}
	if want := stylesOf(p.Embeddings); len(want) != len(p.Styles) {
		return fmt.Errorf("bist: style map inconsistent")
	} else {
		for r, s := range want {
			if p.Styles[r] != s {
				return fmt.Errorf("bist: register %s style %v, duties say %v", r, p.Styles[r], s)
			}
		}
	}
	seen := make(map[string]bool)
	for _, sess := range p.Sessions {
		for _, m := range sess {
			if seen[m] {
				return fmt.Errorf("bist: module %s in two sessions", m)
			}
			seen[m] = true
		}
		if err := p.checkSession(sess); err != nil {
			return err
		}
	}
	for name := range p.Embeddings {
		if !seen[name] {
			return fmt.Errorf("bist: module %s unscheduled", name)
		}
	}
	return nil
}

func containsStr(list []string, x string) bool {
	for _, s := range list {
		if s == x {
			return true
		}
	}
	return false
}

// roleState tracks register duties and the total upgrade cost
// incrementally as embeddings are applied and undone during the branch
// and bound — O(1) per affected register instead of recomputing every
// style from scratch at every node.
type roleState struct {
	model  area.Model
	tpgCnt map[string]int
	saCnt  map[string]int
	cbCnt  map[string]int
	cost   int
}

func newRoleState(m area.Model) *roleState {
	return &roleState{
		model:  m,
		tpgCnt: make(map[string]int),
		saCnt:  make(map[string]int),
		cbCnt:  make(map[string]int),
	}
}

func (s *roleState) styleExtra(reg string) int {
	switch {
	case s.cbCnt[reg] > 0:
		return s.model.StyleExtra(area.CBILBO)
	case s.tpgCnt[reg] > 0 && s.saCnt[reg] > 0:
		return s.model.StyleExtra(area.BILBO)
	case s.tpgCnt[reg] > 0:
		return s.model.StyleExtra(area.TPG)
	case s.saCnt[reg] > 0:
		return s.model.StyleExtra(area.SA)
	}
	return 0
}

func (s *roleState) touch(reg string, f func()) {
	before := s.styleExtra(reg)
	f()
	s.cost += s.styleExtra(reg) - before
}

func (s *roleState) apply(e Embedding) {
	for _, h := range []string{e.HeadL, e.HeadR} {
		if h == "" || interconnect.IsPad(h) {
			continue
		}
		h := h
		s.touch(h, func() {
			s.tpgCnt[h]++
			if h == e.Tail {
				s.cbCnt[h]++
			}
		})
	}
	s.touch(e.Tail, func() { s.saCnt[e.Tail]++ })
}

func (s *roleState) undo(e Embedding) {
	for _, h := range []string{e.HeadL, e.HeadR} {
		if h == "" || interconnect.IsPad(h) {
			continue
		}
		h := h
		s.touch(h, func() {
			s.tpgCnt[h]--
			if h == e.Tail {
				s.cbCnt[h]--
			}
		})
	}
	s.touch(e.Tail, func() { s.saCnt[e.Tail]-- })
}
