package bist

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"bistpath/internal/area"
	"bistpath/internal/datapath"
	"bistpath/internal/interconnect"
)

// ErrNoEmbedding is returned (wrapped with the module name) when some
// module has no BIST embedding at all — no register I-path reaches its
// ports. Match with errors.Is.
var ErrNoEmbedding = errors.New("no BIST embedding")

// Plan is a complete BIST solution for a data path.
type Plan struct {
	Embeddings map[string]Embedding  // chosen embedding per module
	Styles     map[string]area.Style // style per register (Normal omitted)
	Sessions   [][]string            // modules tested concurrently, per session
	ExtraArea  int                   // gate equivalents added by register upgrades
	Exact      bool                  // true if found by exhaustive branch & bound
	// Cost is the plan's multi-objective cost vector. It is populated by
	// OptimizePareto (and recomputable via PlanCost); the pure-area
	// search leaves it zero, keeping that path untouched.
	Cost CostVector
}

// StyleCount returns how many registers carry each non-normal style.
func (p *Plan) StyleCount() map[area.Style]int {
	out := make(map[area.Style]int)
	for _, s := range p.Styles {
		if s != area.Normal {
			out[s]++
		}
	}
	return out
}

// NumBISTRegisters returns the number of registers modified for test.
func (p *Plan) NumBISTRegisters() int {
	n := 0
	for _, s := range p.Styles {
		if s != area.Normal {
			n++
		}
	}
	return n
}

// Options configures the optimizer.
type Options struct {
	Model         area.Model
	AllowPadHeads bool // pads may source test patterns (Definition 1)
	NodeBudget    int  // branch&bound node cap before greedy fallback (0 = default)
	// MinimizeSessions breaks area ties in favor of plans that schedule
	// into fewer test sessions (shorter total test time). Area remains
	// the primary objective — the paper's; this is the natural secondary
	// one ("it is not necessary to test all the combinational modules at
	// the same time", Section II).
	MinimizeSessions bool
	// Workers sets the number of goroutines exploring the branch and
	// bound concurrently (first-level embedding choices are partitioned
	// across them). 0 or 1 runs the search on the calling goroutine.
	// Any worker count returns the identical Plan: ties are broken by the
	// canonical depth-first search order, not by arrival order.
	Workers int
	// Metrics, when non-nil, is filled with search-effort statistics on
	// return (the Plan itself stays deterministic either way).
	Metrics *Metrics
	// Progress, when non-nil, is called from inside the search with the
	// cumulative node count, once per node-budget poll interval. It may
	// be invoked concurrently from several worker goroutines and must
	// not block.
	Progress func(nodes int64)
	// Scratch, when non-nil, supplies the reusable search arenas and
	// enumeration buffers; successive Optimize calls sharing one Scratch
	// run essentially allocation-free. One Optimize call at a time per
	// Scratch.
	Scratch *Scratch
	// Power carries per-module active-power weight overrides for the
	// multi-objective search (see PowerWeights); modules absent from the
	// map use the area-proportional default. The pure-area search
	// ignores it.
	Power map[string]int
	// Incumbent, when non-nil, warm-starts the exact branch and bound
	// with a known-feasible plan (incremental re-synthesis hands over
	// the surviving plan of the previous run). Its cost — recomputed
	// against Model from the embeddings, never trusted from the stale
	// plan — seeds the shared bound before the first node, so subtrees
	// that cannot beat it are pruned immediately. The returned Plan is
	// identical to a cold search's: the bound is seeded with a sentinel
	// branch index that keeps every equal-cost canonical tie-break
	// reachable, so only the effort metrics (Nodes, BoundPrunes) shrink.
	// An incumbent that fails Plan.Validate against the data path, or
	// that uses a pad head while AllowPadHeads is false, is silently
	// ignored. The stochastic search ignores this field entirely.
	Incumbent *Plan

	// The remaining fields configure OptimizeStochastic only; the exact
	// branch and bound ignores them.

	// Seed seeds the stochastic search's deterministic random source.
	// Identical (data path, Options, Seed) yields an identical Plan at
	// any Workers value (0 = seed 1).
	Seed int64
	// TimeBudget caps the stochastic search's wall time (0 = none).
	// Each generation remains a pure function of the seed, but where a
	// wall-clock budget cuts the run off is timing-dependent, so only
	// generation-bounded runs (TimeBudget 0 or unreached) are
	// reproducible across machines.
	TimeBudget time.Duration
	// MaxGenerations caps the genetic search's generations (0 = default
	// 250).
	MaxGenerations int
	// StallGenerations stops the genetic search early after this many
	// generations without an incumbent improvement (0 = default 40;
	// negative disables the early stop).
	StallGenerations int
	// Population is the genetic search's population size (0 = default,
	// scaled with the module count).
	Population int
	// ExactProbeNodes bounds the node-budgeted exact probe that seeds
	// the stochastic search: a sequential branch and bound runs first
	// under this node budget, and if it completes, its provably optimal
	// plan is returned directly. 0 = default 150000; negative disables
	// the probe (pure GA+SA, used by tests that exercise the stochastic
	// operators themselves).
	ExactProbeNodes int
}

// Metrics reports how hard one OptimizeCtx search worked. Every field is
// deterministic for a sequential search (Workers <= 1); under parallel
// search Nodes, BoundPrunes and Incumbents depend on how quickly the
// shared bound propagated, while Embeddings and Workers stay fixed.
type Metrics struct {
	Nodes       int64 // branch-and-bound nodes expanded
	BoundPrunes int64 // subtrees cut by the incumbent bound
	Incumbents  int64 // incumbent improvements taken
	Embeddings  int64 // candidate embeddings enumerated across modules
	Workers     int   // effective worker count after clamping

	// Stochastic-search effort (OptimizeStochastic only; all zero for
	// the exact branch and bound). Every field is deterministic for a
	// generation-bounded run.
	Generations int64        // genetic-search generations executed
	Evaluations int64        // candidate cost evaluations (GA + annealing)
	Curve       []CurvePoint // best-so-far cost after each improvement
}

// CurvePoint is one improvement of the stochastic search's incumbent:
// the best cost known after the given generation. Generation 0 is the
// seeded initial population; annealing improvements report the final
// generation.
type CurvePoint struct {
	Generation int64
	Cost       int
}

// DefaultOptions returns the standard configuration for the given width.
func DefaultOptions(width int) Options {
	return Options{Model: area.Default(width), AllowPadHeads: true}
}

// Optimize chooses one embedding per module minimizing the total register
// upgrade area, then schedules test sessions. The search is exact branch
// and bound for realistic sizes; beyond the node budget it falls back to
// a greedy pass with local improvement (Exact reports which).
func Optimize(dp *datapath.Datapath, opts Options) (*Plan, error) {
	return OptimizeCtx(context.Background(), dp, opts)
}

// modEmb pairs a module with its candidate embeddings in search order.
type modEmb struct {
	name string
	embs []Embedding
}

// noBound marks an empty incumbent in the packed atomic bound.
const noBound = int64(math.MaxInt64)

// packBound encodes (cost, branch) so that the natural int64 order is the
// lexicographic (cost, branch) order: smaller packed value = lower cost,
// then earlier first-level branch. Costs and branch counts are far below
// 2^31 for any realistic data path.
func packBound(cost, branch int) int64 { return int64(cost)<<32 | int64(branch) }

func unpackBound(p int64) (cost, branch int) { return int(p >> 32), int(p & 0xffffffff) }

// searchSpace is the prepared per-call search state shared by the exact
// branch and bound and the stochastic search: modules ordered
// most-constrained first, each module's embeddings cost-sorted, registers
// interned to small ids and the compact refs built, with the style
// upgrade costs pre-resolved from the area model so duty counters
// translate to cost without a Model call per touch. Everything here is a
// pure function of the data path and options, never of construction
// order — both searches' determinism contracts depend on that.
type searchSpace struct {
	mods     []modEmb
	refs     [][]embRef // compact embeddings, parallel to mods
	nregs    int        // interned register count
	embTotal int64      // candidate embeddings across modules

	exTPG, exSA, exBILBO, exCB int
}

// prepareSpace enumerates, orders and interns the embedding search space
// into sc. One prepared space serves one search at a time (it aliases
// the scratch's storage).
func prepareSpace(dp *datapath.Datapath, opts Options, sc *Scratch) (searchSpace, error) {
	sp := searchSpace{
		exTPG:   opts.Model.StyleExtra(area.TPG),
		exSA:    opts.Model.StyleExtra(area.SA),
		exBILBO: opts.Model.StyleExtra(area.BILBO),
		exCB:    opts.Model.StyleExtra(area.CBILBO),
	}
	// Enumerate embeddings into the scratch's per-position slices.
	for len(sc.embStore) < len(dp.Modules) {
		sc.embStore = append(sc.embStore, nil)
	}
	mods := sc.mods[:0]
	for i, m := range dp.Modules {
		embs := AppendEmbeddings(sc.embStore[i][:0], dp, m.Name, opts.AllowPadHeads)
		sc.embStore[i] = embs
		if len(embs) == 0 {
			return sp, fmt.Errorf("bist: module %s has %w (no register I-paths)", m.Name, ErrNoEmbedding)
		}
		sp.embTotal += int64(len(embs))
		mods = append(mods, modEmb{m.Name, embs})
	}
	sc.mods = mods
	// Most-constrained modules first makes pruning effective. (len, name)
	// is a total order, so a stable insertion sort equals sort.Slice here.
	for i := 1; i < len(mods); i++ {
		m := mods[i]
		j := i - 1
		for j >= 0 && (len(m.embs) < len(mods[j].embs) ||
			(len(m.embs) == len(mods[j].embs) && m.name < mods[j].name)) {
			mods[j+1] = mods[j]
			j--
		}
		mods[j+1] = m
	}

	// Pre-sort each module's embeddings once by standalone upgrade cost
	// (cheap embeddings first makes the first complete solution strong).
	// Embeddings enumerate in canonical order and the insertion sort is
	// stable among equal costs, so the search order — and therefore the
	// deterministic tie-break — is a pure function of the data path.
	for _, m := range mods {
		costs := sc.costs
		if cap(costs) < len(m.embs) {
			costs = make([]int, len(m.embs))
			sc.costs = costs
		}
		costs = costs[:len(m.embs)]
		for j, e := range m.embs {
			costs[j] = standaloneCost(opts.Model, e)
		}
		for i := 1; i < len(costs); i++ {
			c, e := costs[i], m.embs[i]
			j := i - 1
			for j >= 0 && costs[j] > c {
				costs[j+1], m.embs[j+1] = costs[j], m.embs[j]
				j--
			}
			costs[j+1], m.embs[j+1] = c, e
		}
	}

	// Intern the registers and build the compact search refs.
	sc.resetIntern()
	for len(sc.refStore) < len(mods) {
		sc.refStore = append(sc.refStore, nil)
	}
	refs := sc.refStore[:len(mods)]
	for i, m := range mods {
		rr := refs[i][:0]
		for _, e := range m.embs {
			rr = append(rr, embRef{sc.internReg(e.HeadL), sc.internReg(e.HeadR), sc.internReg(e.Tail)})
		}
		refs[i] = rr
	}
	sp.mods = mods
	sp.refs = refs
	sp.nregs = len(sc.regNames)
	return sp, nil
}

// embeddingsOf materializes a genome (one embedding index per module
// position) as the embedding map a Plan carries.
func (sp *searchSpace) embeddingsOf(genome []int32) map[string]Embedding {
	out := make(map[string]Embedding, len(sp.mods))
	for i, m := range sp.mods {
		out[m.name] = m.embs[genome[i]]
	}
	return out
}

// search holds the state shared by all branch-and-bound workers. The only
// mutable shared fields are atomics; every worker keeps its own arena with
// duty counters, partial assignment and incumbent so no search state needs
// locking.
type search struct {
	ctx       context.Context
	opts      Options
	mods      []modEmb
	refs      [][]embRef   // compact embeddings, parallel to mods
	bound     atomic.Int64 // packed (cost, branch) of the best complete solution
	nodes     atomic.Int64 // nodes expanded, across all workers
	inexact   atomic.Bool  // node budget exhausted somewhere
	cancelled atomic.Bool  // ctx.Done observed somewhere
}

// solution is a worker-local incumbent. branch is the index of the
// first-level embedding choice it descends from; merging by ascending
// branch (after cost and, optionally, session count) reproduces the
// sequential depth-first tie-break exactly. The assignment itself lives
// in the owning worker's arena (bestCur).
type solution struct {
	ok       bool
	cost     int
	sessions int
	branch   int
}

// dutyEval tracks the upgrade cost of a partial embedding assignment
// incrementally over an arena's interned duty counters: applying or
// undoing one embedding touches three int32 counters and folds the cost
// delta into cost. It is the one cost evaluator both searches share —
// the branch-and-bound workers embed it, and the stochastic search's
// genome evaluations, greedy seeding and annealing moves all run
// through the same apply/undo pair, so a cost bug cannot hide in a
// search-specific reimplementation.
type dutyEval struct {
	a    *searchArena
	cost int
	// Style upgrade costs, pre-resolved from the area model.
	exTPG, exSA, exBILBO, exCB int
}

func newDutyEval(sp *searchSpace, a *searchArena) dutyEval {
	return dutyEval{a: a, exTPG: sp.exTPG, exSA: sp.exSA, exBILBO: sp.exBILBO, exCB: sp.exCB}
}

// styleExtra returns the upgrade cost of register r under its current
// duty counters (the counter form of roles.style).
func (w *dutyEval) styleExtra(r int32) int {
	a := w.a
	switch {
	case a.cb[r] > 0:
		return w.exCB
	case a.tpg[r] > 0 && a.sa[r] > 0:
		return w.exBILBO
	case a.tpg[r] > 0:
		return w.exTPG
	case a.sa[r] > 0:
		return w.exSA
	}
	return 0
}

// bumpHead adds d to head register h's TPG duty (and CBILBO duty when it
// is also the tail t), folding the register's cost change into w.cost.
func (w *dutyEval) bumpHead(h, t, d int32) {
	before := w.styleExtra(h)
	w.a.tpg[h] += d
	if h == t {
		w.a.cb[h] += d
	}
	w.cost += w.styleExtra(h) - before
}

func (w *dutyEval) apply(e embRef) {
	if e.l >= 0 {
		w.bumpHead(e.l, e.t, 1)
	}
	if e.r >= 0 {
		w.bumpHead(e.r, e.t, 1)
	}
	before := w.styleExtra(e.t)
	w.a.sa[e.t]++
	w.cost += w.styleExtra(e.t) - before
}

func (w *dutyEval) undo(e embRef) {
	if e.l >= 0 {
		w.bumpHead(e.l, e.t, -1)
	}
	if e.r >= 0 {
		w.bumpHead(e.r, e.t, -1)
	}
	before := w.styleExtra(e.t)
	w.a.sa[e.t]--
	w.cost += w.styleExtra(e.t) - before
}

// evalGenome returns the total cost of a complete assignment: it applies
// every chosen embedding, reads the cost and undoes them again, leaving
// the evaluator zeroed for the next call.
func (w *dutyEval) evalGenome(refs [][]embRef, genome []int32) int {
	for i, g := range genome {
		w.apply(refs[i][g])
	}
	c := w.cost
	for i, g := range genome {
		w.undo(refs[i][g])
	}
	return c
}

// greedyAssignment fills genome with the greedy-with-one-improvement-pass
// embedding choice and returns its cost: each module in search order
// takes the embedding minimizing the cost of the partial assignment so
// far, then one sweep retries every module against the complete
// assignment. ev must arrive zeroed; it is left holding the chosen
// assignment's duties (callers recycling the arena should undo or zero
// it). Deterministic: pure function of the prepared space.
func greedyAssignment(sp *searchSpace, ev *dutyEval, genome []int32) int {
	for i := range sp.mods {
		bi, bc := 0, -1
		for j, e := range sp.refs[i] {
			ev.apply(e)
			if bc < 0 || ev.cost < bc {
				bi, bc = j, ev.cost
			}
			ev.undo(e)
		}
		genome[i] = int32(bi)
		ev.apply(sp.refs[i][bi])
	}
	// One improvement sweep over the complete assignment.
	for i := range sp.mods {
		cur := genome[i]
		ev.undo(sp.refs[i][cur])
		base := ev.cost
		bi, bc := cur, ev.styleDelta(sp.refs[i][cur])
		for j, e := range sp.refs[i] {
			if int32(j) == cur {
				continue
			}
			ev.apply(e)
			if ev.cost-base < bc {
				bi, bc = int32(j), ev.cost-base
			}
			ev.undo(e)
		}
		genome[i] = bi
		ev.apply(sp.refs[i][bi])
	}
	return ev.cost
}

// styleDelta returns the cost delta applying e would add right now.
func (w *dutyEval) styleDelta(e embRef) int {
	before := w.cost
	w.apply(e)
	d := w.cost - before
	w.undo(e)
	return d
}

// worker explores whole first-level subtrees. Each subtree is owned by
// exactly one worker, so its incumbent update below is single-threaded.
type worker struct {
	dutyEval
	sh     *search
	branch int
	best   solution
	// Effort counters stay worker-local (plain increments on the search
	// hot path, no shared-cache traffic) and are summed after the join.
	prunes     int64
	incumbents int64
}

// curEmbeddings materializes the worker's current assignment as the
// embedding map the session scheduler consumes (MinimizeSessions leaves
// only).
func (w *worker) curEmbeddings() map[string]Embedding {
	out := make(map[string]Embedding, len(w.sh.mods))
	for i, m := range w.sh.mods {
		out[m.name] = m.embs[w.a.cur[i]]
	}
	return out
}

func (w *worker) dfs(i int) {
	sh := w.sh
	n := sh.nodes.Add(1)
	if sh.opts.NodeBudget > 0 && n > int64(sh.opts.NodeBudget) {
		sh.inexact.Store(true)
		return
	}
	if n&1023 == 0 {
		select {
		case <-sh.ctx.Done():
			sh.cancelled.Store(true)
		default:
		}
		if sh.opts.Progress != nil {
			sh.opts.Progress(n)
		}
	}
	if sh.cancelled.Load() || sh.inexact.Load() {
		return
	}
	cost := w.cost
	if packed := sh.bound.Load(); packed != noBound {
		bc, bb := unpackBound(packed)
		if cost > bc {
			w.prunes++
			return // adding modules never lowers cost
		}
		// An equal-cost completion can only win the deterministic
		// tie-break from a strictly earlier first-level branch (unless
		// the session tie-break still needs the leaves enumerated).
		if cost == bc && !sh.opts.MinimizeSessions && w.branch >= bb && i < len(sh.mods) {
			w.prunes++
			return
		}
	}
	if i == len(sh.mods) {
		w.leaf(cost)
		return
	}
	for j, e := range sh.refs[i] {
		w.a.cur[i] = int32(j)
		w.apply(e)
		w.dfs(i + 1)
		w.undo(e)
	}
}

// leaf considers a complete assignment. Within one worker the update is
// strict-improvement only, so the first solution in depth-first order
// wins ties — the same rule the sequential search applies globally.
func (w *worker) leaf(cost int) {
	if w.sh.opts.MinimizeSessions {
		if w.best.ok && cost > w.best.cost {
			return
		}
		s := sessionsOfEmbeddings(w.curEmbeddings())
		if w.best.ok && cost == w.best.cost && s >= w.best.sessions {
			return
		}
		w.take(cost, s)
		return
	}
	if w.best.ok && cost >= w.best.cost {
		return
	}
	w.take(cost, 0)
}

func (w *worker) take(cost, sessions int) {
	copy(w.a.bestCur, w.a.cur)
	w.best = solution{ok: true, cost: cost, sessions: sessions, branch: w.branch}
	w.incumbents++
	packed := packBound(cost, w.branch)
	for {
		old := w.sh.bound.Load()
		if old <= packed || w.sh.bound.CompareAndSwap(old, packed) {
			return
		}
	}
}

// runBranches claims first-level branches off the shared counter and runs
// the canonical depth-first search under each.
func (w *worker) runBranches(next *atomic.Int64) {
	first := w.sh.refs[0]
	for {
		b := int(next.Add(1) - 1)
		if b >= len(first) || w.sh.cancelled.Load() {
			return
		}
		e := first[b]
		w.branch = b
		w.a.cur[0] = int32(b)
		w.apply(e)
		w.dfs(1)
		w.undo(e)
	}
}

// sessionsOfEmbeddings counts the test sessions a set of embeddings packs
// into (used by the MinimizeSessions tie-break).
func sessionsOfEmbeddings(embs map[string]Embedding) int {
	p := &Plan{Embeddings: embs, Styles: stylesOf(embs)}
	return len(ScheduleSessions(p))
}

// better reports whether a beats b under the deterministic total order:
// lower cost, then (when asked) fewer sessions, then the earlier
// first-level branch of the canonical search order.
func (a solution) better(b solution, minimizeSessions bool) bool {
	switch {
	case !a.ok:
		return false
	case !b.ok:
		return true
	case a.cost != b.cost:
		return a.cost < b.cost
	case minimizeSessions && a.sessions != b.sessions:
		return a.sessions < b.sessions
	}
	return a.branch < b.branch
}

// OptimizeCtx is Optimize with cancellation: the search aborts promptly
// with ctx.Err() when the context is cancelled or times out. The result
// is identical for every Options.Workers value — the incumbent merge uses
// the canonical depth-first order of the search tree, never the
// wall-clock order in which workers find solutions.
func OptimizeCtx(ctx context.Context, dp *datapath.Datapath, opts Options) (*Plan, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if opts.Model.Width == 0 {
		opts.Model = area.Default(dp.Width)
	}
	if opts.NodeBudget == 0 {
		opts.NodeBudget = 2_000_000
	}
	sc := opts.Scratch
	if sc == nil {
		sc = new(Scratch)
	}
	sp, err := prepareSpace(dp, opts, sc)
	if err != nil {
		return nil, err
	}
	mods := sp.mods

	best := make(map[string]Embedding, len(mods))
	bestCost := -1
	exact := true

	if opts.Metrics != nil {
		*opts.Metrics = Metrics{Embeddings: sp.embTotal, Workers: 1}
	}
	if len(mods) == 0 {
		bestCost = 0
	} else {
		sh := &search{ctx: ctx, opts: opts, mods: mods, refs: sp.refs}
		sh.bound.Store(noBound)
		if cost, ok := incumbentBound(dp, opts); ok {
			// The sentinel branch index keeps the equal-cost canonical
			// tie-break prunes exactly as permissive as a cold search's,
			// so the warm start cannot change the winning plan.
			sh.bound.Store(packBound(cost, math.MaxInt32))
		}

		nw := opts.Workers
		if nw < 1 {
			nw = 1
		}
		if nw > len(mods[0].embs) {
			nw = len(mods[0].embs)
		}
		newWorker := func() *worker {
			a := sc.getArena()
			a.size(sp.nregs, len(mods))
			return &worker{sh: sh, dutyEval: newDutyEval(&sp, a)}
		}
		var next atomic.Int64
		locals := make([]*worker, nw)
		if nw == 1 {
			locals[0] = newWorker()
			locals[0].runBranches(&next)
		} else {
			var wg sync.WaitGroup
			for i := range locals {
				w := newWorker()
				locals[i] = w
				wg.Add(1)
				go func() {
					defer wg.Done()
					w.runBranches(&next)
				}()
			}
			wg.Wait()
		}
		returnArenas := func() {
			for _, w := range locals {
				sc.putArena(w.a)
			}
		}
		if sh.cancelled.Load() {
			returnArenas()
			return nil, ctx.Err()
		}
		if opts.Metrics != nil {
			opts.Metrics.Nodes = sh.nodes.Load()
			for _, w := range locals {
				opts.Metrics.BoundPrunes += w.prunes
				opts.Metrics.Incumbents += w.incumbents
			}
			opts.Metrics.Workers = nw
		}
		exact = !sh.inexact.Load()

		var final solution
		var finalCur []int32
		for _, w := range locals {
			if w.best.better(final, opts.MinimizeSessions) {
				final = w.best
				finalCur = w.a.bestCur
			}
		}
		if final.ok {
			for i, m := range mods {
				best[m.name] = m.embs[finalCur[i]]
			}
			bestCost = final.cost
		}
		returnArenas()
	}

	if bestCost < 0 || !exact {
		// Greedy fallback (also used when the budget ran out before any
		// complete solution, which cannot happen with the default budget
		// but is handled for safety).
		a := sc.getArena()
		a.size(sp.nregs, len(mods))
		ev := newDutyEval(&sp, a)
		genome := make([]int32, len(mods))
		gc := greedyAssignment(&sp, &ev, genome)
		sc.putArena(a)
		if bestCost < 0 || gc < bestCost {
			best = sp.embeddingsOf(genome)
			bestCost = gc
		}
	}

	plan := &Plan{
		Embeddings: best,
		Styles:     stylesOf(best),
		ExtraArea:  bestCost,
		Exact:      exact,
	}
	plan.Sessions = ScheduleSessions(plan)
	return plan, plan.Validate(dp)
}

// incumbentBound validates opts.Incumbent against the data path and
// returns its extra-area cost recomputed from the embeddings under
// opts.Model. ok is false when there is no usable incumbent: the field
// is nil, the plan fails Validate (stale embeddings from an edited
// design), or it rides a pad head the current options forbid.
func incumbentBound(dp *datapath.Datapath, opts Options) (cost int, ok bool) {
	inc := opts.Incumbent
	if inc == nil || inc.Validate(dp) != nil {
		return 0, false
	}
	if !opts.AllowPadHeads {
		for _, e := range inc.Embeddings {
			if interconnect.IsPad(e.HeadL) || (e.HeadR != "" && interconnect.IsPad(e.HeadR)) {
				return 0, false
			}
		}
	}
	return extraArea(opts.Model, stylesOf(inc.Embeddings)), true
}

// PlanFromEmbeddings reconstructs the complete Plan implied by a chosen
// embedding set: register styles, the upgrade area and the session
// schedule are all derived from the embeddings, exactly as Optimize
// derives them from its winning set. It exists for the result cache,
// which persists only the embeddings; callers must still run
// Plan.Validate against the data path before trusting foreign
// embeddings.
func PlanFromEmbeddings(model area.Model, embs map[string]Embedding, exact bool) *Plan {
	styles := stylesOf(embs)
	p := &Plan{
		Embeddings: embs,
		Styles:     styles,
		ExtraArea:  extraArea(model, styles),
		Exact:      exact,
	}
	p.Sessions = ScheduleSessions(p)
	return p
}

// Validate checks that the plan's embeddings exist in the data path, the
// styles match the embeddings' duties, and the sessions are conflict-free
// and cover every module exactly once.
func (p *Plan) Validate(dp *datapath.Datapath) error {
	for name, e := range p.Embeddings {
		m := dp.Module(name)
		if m == nil {
			return fmt.Errorf("bist: embedding for unknown module %s", name)
		}
		if !containsStr(m.Left, e.HeadL) {
			return fmt.Errorf("bist: %s head %s not on left port", name, e.HeadL)
		}
		if e.HeadR != "" && !containsStr(m.Right, e.HeadR) {
			return fmt.Errorf("bist: %s head %s not on right port", name, e.HeadR)
		}
		if !containsStr(m.Dests, e.Tail) {
			return fmt.Errorf("bist: %s tail %s not a destination", name, e.Tail)
		}
		if e.HeadR != "" && e.HeadL == e.HeadR && !dp.ModuleDiagonal(name) {
			return fmt.Errorf("bist: %s uses one source for both ports", name)
		}
	}
	for _, m := range dp.Modules {
		if _, ok := p.Embeddings[m.Name]; !ok {
			return fmt.Errorf("bist: module %s has no embedding in plan", m.Name)
		}
	}
	if want := stylesOf(p.Embeddings); len(want) != len(p.Styles) {
		return fmt.Errorf("bist: style map inconsistent")
	} else {
		for r, s := range want {
			if p.Styles[r] != s {
				return fmt.Errorf("bist: register %s style %v, duties say %v", r, p.Styles[r], s)
			}
		}
	}
	seen := make(map[string]bool)
	for _, sess := range p.Sessions {
		for _, m := range sess {
			if seen[m] {
				return fmt.Errorf("bist: module %s in two sessions", m)
			}
			seen[m] = true
		}
		if err := p.checkSession(sess); err != nil {
			return err
		}
	}
	for name := range p.Embeddings {
		if !seen[name] {
			return fmt.Errorf("bist: module %s unscheduled", name)
		}
	}
	return nil
}

func containsStr(list []string, x string) bool {
	for _, s := range list {
		if s == x {
			return true
		}
	}
	return false
}
