package bist

import (
	"context"
	"reflect"
	"testing"
	"time"

	"bistpath/internal/benchdata"
	"bistpath/internal/datapath"
	"bistpath/internal/dfg"
	"bistpath/internal/interconnect"
	"bistpath/internal/regassign"
)

// buildRandomDP runs the full allocation pipeline on a generated DFG —
// the stochastic tests need datapaths larger than the paper benchmarks.
func buildRandomDP(t testing.TB, cfg benchdata.RandomConfig) *datapath.Datapath {
	t.Helper()
	g, mb, err := benchdata.RandomWithModules(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := regassign.Bind(g, mb, regassign.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ib, err := interconnect.Bind(g, mb, rb, regassign.NewSharing(g, mb))
	if err != nil {
		t.Fatal(err)
	}
	dp, err := datapath.Build(g, mb, rb, ib, 8)
	if err != nil {
		t.Fatal(err)
	}
	return dp
}

// mediumConfig is a random shape past AutoExactBits but still quick to
// search; largeConfig blows the exact node budget entirely.
func mediumConfig(seed int64) benchdata.RandomConfig {
	return benchdata.RandomConfig{
		Seed: seed, Steps: 14, OpsPerStep: 4, Inputs: 6,
		Kinds: []dfg.Kind{dfg.Add, dfg.Sub, dfg.Mul, dfg.Div, dfg.And, dfg.Or, dfg.Xor, dfg.Lt, dfg.Gt},
	}
}

func largeConfig(seed int64) benchdata.RandomConfig {
	return benchdata.RandomConfig{
		Seed: seed, Steps: 30, OpsPerStep: 5, Inputs: 8,
		Kinds: []dfg.Kind{dfg.Add, dfg.Sub, dfg.Mul, dfg.Div, dfg.And, dfg.Or, dfg.Xor, dfg.Lt, dfg.Gt},
	}
}

// The GA+SA operators alone (probe disabled) must recover the known
// optimum on every paper benchmark — the issue's quality bar for the
// stochastic search.
func TestStochasticRecoversOptimumOnBenchmarks(t *testing.T) {
	for _, b := range benchdata.All() {
		dp, _, _ := buildBench(t, b, false)
		exact, err := Optimize(dp, DefaultOptions(8))
		if err != nil {
			t.Fatalf("%s: exact: %v", b.Name, err)
		}
		if !exact.Exact {
			t.Fatalf("%s: exact search did not complete", b.Name)
		}
		plan, err := OptimizeStochastic(dp, Options{AllowPadHeads: true, ExactProbeNodes: -1, Seed: 1})
		if err != nil {
			t.Fatalf("%s: stochastic: %v", b.Name, err)
		}
		if plan.Exact {
			t.Errorf("%s: probe disabled but plan claims Exact", b.Name)
		}
		if plan.ExtraArea != exact.ExtraArea {
			t.Errorf("%s: stochastic area %d, optimum %d", b.Name, plan.ExtraArea, exact.ExtraArea)
		}
		if err := plan.Validate(dp); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
	}
}

// With the default probe enabled, small designs get the provably optimal
// plan back directly (Exact=true).
func TestStochasticProbeProvesOptimality(t *testing.T) {
	for _, b := range benchdata.All() {
		dp, _, _ := buildBench(t, b, false)
		exact, err := Optimize(dp, DefaultOptions(8))
		if err != nil {
			t.Fatal(err)
		}
		var m Metrics
		plan, err := OptimizeStochastic(dp, Options{AllowPadHeads: true, Metrics: &m})
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if !plan.Exact {
			t.Errorf("%s: probe should prove optimality", b.Name)
		}
		if plan.ExtraArea != exact.ExtraArea {
			t.Errorf("%s: probe area %d, optimum %d", b.Name, plan.ExtraArea, exact.ExtraArea)
		}
		if m.Generations != 0 {
			t.Errorf("%s: probe-exact run reports %d generations", b.Name, m.Generations)
		}
		if len(m.Curve) != 1 || m.Curve[0].Cost != plan.ExtraArea {
			t.Errorf("%s: probe-exact curve %v", b.Name, m.Curve)
		}
	}
}

// The determinism contract: identical (data path, Options, Seed) must
// yield an identical Plan and identical effort metrics at any Workers
// value.
func TestStochasticDeterministicAcrossWorkers(t *testing.T) {
	for _, cfg := range []benchdata.RandomConfig{mediumConfig(11), largeConfig(11)} {
		dp := buildRandomDP(t, cfg)
		type outcome struct {
			plan *Plan
			m    Metrics
		}
		var base *outcome
		for _, workers := range []int{1, 2, 8} {
			var m Metrics
			plan, err := OptimizeStochastic(dp, Options{
				AllowPadHeads:   true,
				Workers:         workers,
				Seed:            7,
				ExactProbeNodes: -1,
				MaxGenerations:  60,
				Metrics:         &m,
			})
			if err != nil {
				t.Fatalf("steps=%d workers=%d: %v", cfg.Steps, workers, err)
			}
			if err := plan.Validate(dp); err != nil {
				t.Fatalf("steps=%d workers=%d: %v", cfg.Steps, workers, err)
			}
			m.Workers = 0 // the one field allowed to differ
			if base == nil {
				base = &outcome{plan, m}
				continue
			}
			if !reflect.DeepEqual(plan.Embeddings, base.plan.Embeddings) || plan.ExtraArea != base.plan.ExtraArea {
				t.Errorf("steps=%d workers=%d: plan diverged (area %d vs %d)",
					cfg.Steps, workers, plan.ExtraArea, base.plan.ExtraArea)
			}
			if !reflect.DeepEqual(m, base.m) {
				t.Errorf("steps=%d workers=%d: metrics diverged\n %+v\n %+v", cfg.Steps, workers, m, base.m)
			}
		}
		base = nil
	}
}

// Same seed twice: identical. Different seed: still a valid plan.
func TestStochasticSeedDeterminism(t *testing.T) {
	dp := buildRandomDP(t, mediumConfig(3))
	run := func(seed int64) *Plan {
		plan, err := OptimizeStochastic(dp, Options{
			AllowPadHeads: true, Seed: seed, ExactProbeNodes: -1, MaxGenerations: 40,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := plan.Validate(dp); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		return plan
	}
	a, b := run(5), run(5)
	if !reflect.DeepEqual(a.Embeddings, b.Embeddings) {
		t.Error("same seed produced different plans")
	}
	run(99) // different seed must still validate
}

// The stochastic answer must never be worse than the greedy heuristic it
// is seeded with (the GA population includes the greedy genome).
func TestStochasticNeverWorseThanGreedy(t *testing.T) {
	dp := buildRandomDP(t, largeConfig(21))
	sc := NewScratch()
	opts := DefaultOptions(8)
	opts.Scratch = sc
	sp, err := prepareSpace(dp, opts, sc)
	if err != nil {
		t.Fatal(err)
	}
	a := sc.getArena()
	a.size(sp.nregs, len(sp.mods))
	ev := newDutyEval(&sp, a)
	genome := make([]int32, len(sp.mods))
	greedyCost := greedyAssignment(&sp, &ev, genome)
	sc.putArena(a)

	plan, err := OptimizeStochastic(dp, Options{AllowPadHeads: true, ExactProbeNodes: -1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if plan.ExtraArea > greedyCost {
		t.Errorf("stochastic area %d worse than greedy %d", plan.ExtraArea, greedyCost)
	}
}

// Budget controls: generation caps are honored, a stall stop fires, and
// a tiny TimeBudget still returns a valid plan.
func TestStochasticBudgetControls(t *testing.T) {
	dp := buildRandomDP(t, mediumConfig(13))
	var m Metrics
	plan, err := OptimizeStochastic(dp, Options{
		AllowPadHeads: true, ExactProbeNodes: -1, MaxGenerations: 3, StallGenerations: -1, Metrics: &m,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Generations > 3 {
		t.Errorf("MaxGenerations 3 but ran %d generations", m.Generations)
	}
	if m.Evaluations == 0 {
		t.Error("no evaluations recorded")
	}
	if err := plan.Validate(dp); err != nil {
		t.Error(err)
	}

	plan, err = OptimizeStochastic(dp, Options{
		AllowPadHeads: true, ExactProbeNodes: -1, TimeBudget: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(dp); err != nil {
		t.Error(err)
	}

	// Stall stop: a stall threshold of 1 must end the run well before the
	// generation cap on a design the seeds already solve.
	dp2, _, _ := buildBench(t, benchdata.Ex2(), false)
	var m2 Metrics
	if _, err := OptimizeStochastic(dp2, Options{
		AllowPadHeads: true, ExactProbeNodes: -1, StallGenerations: 1, Metrics: &m2,
	}); err != nil {
		t.Fatal(err)
	}
	if m2.Generations >= defaultMaxGenerations {
		t.Errorf("stall stop never fired (%d generations)", m2.Generations)
	}
}

// MinimizeSessions remains a tie-break: area still matches the optimum.
func TestStochasticMinimizeSessions(t *testing.T) {
	dp, _, _ := buildBench(t, benchdata.Paulin(), false)
	exact, err := Optimize(dp, Options{AllowPadHeads: true, MinimizeSessions: true})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := OptimizeStochastic(dp, Options{
		AllowPadHeads: true, MinimizeSessions: true, ExactProbeNodes: -1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.ExtraArea != exact.ExtraArea {
		t.Errorf("area %d, optimum %d", plan.ExtraArea, exact.ExtraArea)
	}
	if err := plan.Validate(dp); err != nil {
		t.Error(err)
	}
}

func TestStochasticCancellation(t *testing.T) {
	dp := buildRandomDP(t, largeConfig(5))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := OptimizeStochasticCtx(ctx, dp, Options{AllowPadHeads: true}); err == nil {
		t.Error("cancelled context should error")
	}
}

// Auto's feasibility threshold: every paper benchmark sits under it, the
// large random shapes sit past it.
func TestExactFeasible(t *testing.T) {
	for _, b := range benchdata.All() {
		dp, _, _ := buildBench(t, b, false)
		if !ExactFeasible(dp, true) {
			t.Errorf("%s: paper benchmark should be exact-feasible (%.1f bits)",
				b.Name, SearchSpaceBits(dp, true))
		}
	}
	dp := buildRandomDP(t, largeConfig(11))
	if ExactFeasible(dp, true) {
		t.Errorf("large random design should exceed the threshold (%.1f bits)",
			SearchSpaceBits(dp, true))
	}
	if bits := SearchSpaceBits(dp, true); bits <= AutoExactBits {
		t.Errorf("SearchSpaceBits = %.1f, want > %d", bits, AutoExactBits)
	}
}
