package bist

import (
	"fmt"
	"sort"

	"bistpath/internal/area"
	"bistpath/internal/interconnect"
)

// sessionConflict reports whether two modules cannot be tested in the
// same session under the chosen embeddings:
//
//   - a signature register (tail) can compact responses for only one
//     module at a time;
//   - a register acting as TPG for one module and SA for the other must
//     be a CBILBO to do both concurrently; a plain BILBO forces separate
//     sessions (sharing a TPG between modules is fine: both receive the
//     same pseudo-random stream).
func (p *Plan) sessionConflict(a, b string) bool {
	ea, eb := p.Embeddings[a], p.Embeddings[b]
	if ea.Tail == eb.Tail {
		return true
	}
	crossed := func(x, y Embedding) bool {
		for _, h := range []string{x.HeadL, x.HeadR} {
			if h == "" || interconnect.IsPad(h) {
				continue
			}
			// h would generate for x and compact for y concurrently;
			// only a CBILBO can do both at once.
			if h == y.Tail && p.Styles[h] != area.CBILBO {
				return true
			}
		}
		return false
	}
	return crossed(ea, eb) || crossed(eb, ea)
}

// ScheduleSessions greedily colors the module conflict relation into test
// sessions (first-fit over modules sorted by name), minimizing session
// count heuristically.
func ScheduleSessions(p *Plan) [][]string {
	var mods []string
	for m := range p.Embeddings {
		mods = append(mods, m)
	}
	sort.Strings(mods)
	var sessions [][]string
	for _, m := range mods {
		placed := false
		for i, sess := range sessions {
			ok := true
			for _, other := range sess {
				if p.sessionConflict(m, other) {
					ok = false
					break
				}
			}
			if ok {
				sessions[i] = append(sessions[i], m)
				placed = true
				break
			}
		}
		if !placed {
			sessions = append(sessions, []string{m})
		}
	}
	return sessions
}

// checkSession verifies that a set of modules can run concurrently.
func (p *Plan) checkSession(sess []string) error {
	for i, a := range sess {
		for _, b := range sess[i+1:] {
			if p.sessionConflict(a, b) {
				return fmt.Errorf("bist: modules %s and %s conflict within one session", a, b)
			}
		}
	}
	return nil
}

// NumSessions returns the number of test sessions.
func (p *Plan) NumSessions() int { return len(p.Sessions) }
