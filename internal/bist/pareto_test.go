package bist

import (
	"context"
	"testing"

	"bistpath/internal/area"
	"bistpath/internal/benchdata"
)

func optimizeFront(t *testing.T, b *benchdata.Benchmark) ([]*Plan, *Plan) {
	t.Helper()
	dp, _, _ := buildBench(t, b, false)
	opts := DefaultOptions(8)
	front, err := OptimizePareto(context.Background(), dp, opts)
	if err != nil {
		t.Fatalf("%s: OptimizePareto: %v", b.Name, err)
	}
	single, err := Optimize(dp, DefaultOptions(8))
	if err != nil {
		t.Fatalf("%s: Optimize: %v", b.Name, err)
	}
	return front, single
}

func TestParetoFrontBenchmarks(t *testing.T) {
	for _, b := range benchdata.All() {
		front, single := optimizeFront(t, b)
		if len(front) == 0 {
			t.Fatalf("%s: empty front", b.Name)
		}
		for _, p := range front {
			if !p.Exact {
				t.Errorf("%s: front member %v not exact", b.Name, p.Cost)
			}
		}
		// Canonical order: strictly increasing lexicographically (which
		// also implies all vectors are distinct).
		for i := 1; i < len(front); i++ {
			if !front[i-1].Cost.Less(front[i].Cost) {
				t.Errorf("%s: front not in strict lexicographic order: %v then %v",
					b.Name, front[i-1].Cost, front[i].Cost)
			}
		}
		// Mutual non-domination.
		for i, p := range front {
			for j, q := range front {
				if i != j && p.Cost.Dominates(q.Cost) {
					t.Errorf("%s: front member %v dominates member %v", b.Name, p.Cost, q.Cost)
				}
			}
		}
		// The area-minimal member is the single-objective plan: same
		// area and the same embedding choice (the canonical depth-first
		// tie-break is shared between the two searches).
		if front[0].Cost.Area != single.ExtraArea {
			t.Errorf("%s: area-minimal front member area %d, single-objective %d",
				b.Name, front[0].Cost.Area, single.ExtraArea)
		}
		if len(front[0].Embeddings) != len(single.Embeddings) {
			t.Fatalf("%s: embedding count mismatch", b.Name)
		}
		for m, e := range single.Embeddings {
			if front[0].Embeddings[m] != e {
				t.Errorf("%s: module %s: front plan %v, single-objective plan %v",
					b.Name, m, front[0].Embeddings[m], e)
			}
		}
	}
}

func TestParetoCostConsistency(t *testing.T) {
	for _, b := range benchdata.All() {
		dp, _, _ := buildBench(t, b, false)
		front, err := OptimizePareto(context.Background(), dp, DefaultOptions(8))
		if err != nil {
			t.Fatal(err)
		}
		power := PowerWeights(area.Default(8), dp, nil)
		for _, p := range front {
			if err := p.Validate(dp); err != nil {
				t.Errorf("%s: front member invalid: %v", b.Name, err)
			}
			if got := PlanCost(p, power); got != p.Cost {
				t.Errorf("%s: PlanCost %v != stored Cost %v", b.Name, got, p.Cost)
			}
			if p.Cost.Area != p.ExtraArea {
				t.Errorf("%s: Cost.Area %d != ExtraArea %d", b.Name, p.Cost.Area, p.ExtraArea)
			}
			if p.Cost.TestTime != len(p.Sessions) {
				t.Errorf("%s: Cost.TestTime %d != %d sessions", b.Name, p.Cost.TestTime, len(p.Sessions))
			}
		}
	}
}

func TestWeightedBest(t *testing.T) {
	front, _ := optimizeFront(t, benchdata.Paulin())
	if WeightedBest(nil, 1, 1, 1) != nil {
		t.Fatal("WeightedBest(nil) != nil")
	}
	// Pure area weights select the area-minimal (first) member.
	if got := WeightedBest(front, 1, 0, 0); got != front[0] {
		t.Errorf("area-only weights picked %v, want %v", got.Cost, front[0].Cost)
	}
	// A dominant test-time weight selects a member with the minimal
	// session count on the front.
	minTT := front[0].Cost.TestTime
	for _, p := range front {
		if p.Cost.TestTime < minTT {
			minTT = p.Cost.TestTime
		}
	}
	if got := WeightedBest(front, 1, 1_000_000, 0); got.Cost.TestTime != minTT {
		t.Errorf("time-heavy weights picked %v, want %d sessions", got.Cost, minTT)
	}
	// The winner under any non-negative weights must match a manual
	// argmin over the front.
	for _, w := range [][3]int{{1, 1, 1}, {3, 50, 2}, {0, 1, 0}, {0, 0, 1}} {
		got := WeightedBest(front, w[0], w[1], w[2])
		for _, p := range front {
			if p.Cost.Weighted(w[0], w[1], w[2]) < got.Cost.Weighted(w[0], w[1], w[2]) {
				t.Errorf("weights %v: %v beats reported winner %v", w, p.Cost, got.Cost)
			}
		}
	}
}

func TestPowerWeights(t *testing.T) {
	dp, _, _ := buildBench(t, benchdata.Ex1(), false)
	model := area.Default(8)
	def := PowerWeights(model, dp, nil)
	if len(def) != len(dp.Modules) {
		t.Fatalf("weights for %d modules, want %d", len(def), len(dp.Modules))
	}
	for _, m := range dp.Modules {
		if def[m.Name] != model.ModuleArea(m.Kinds) {
			t.Errorf("module %s default weight %d, want area-proportional %d",
				m.Name, def[m.Name], model.ModuleArea(m.Kinds))
		}
	}
	first := dp.Modules[0].Name
	over := PowerWeights(model, dp, map[string]int{first: 7})
	if over[first] != 7 {
		t.Errorf("override ignored: %d", over[first])
	}
	for _, m := range dp.Modules[1:] {
		if over[m.Name] != def[m.Name] {
			t.Errorf("module %s lost its default under a partial override", m.Name)
		}
	}
}

func TestParetoPowerOverrideChangesObjective(t *testing.T) {
	// With every module weighing the same, peak power is proportional to
	// the largest session, so the front collapses differently than under
	// the default weights; the search must still produce a valid,
	// non-dominated front.
	dp, _, _ := buildBench(t, benchdata.Paulin(), false)
	uniform := make(map[string]int, len(dp.Modules))
	for _, m := range dp.Modules {
		uniform[m.Name] = 1
	}
	opts := DefaultOptions(8)
	opts.Power = uniform
	front, err := OptimizePareto(context.Background(), dp, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range front {
		if err := p.Validate(dp); err != nil {
			t.Fatal(err)
		}
		if got := PlanCost(p, uniform); got != p.Cost {
			t.Errorf("PlanCost %v != Cost %v", got, p.Cost)
		}
		// Peak power under uniform unit weights is the largest session
		// size, bounded by the module count.
		if p.Cost.PeakPower > len(dp.Modules) || p.Cost.PeakPower < 1 {
			t.Errorf("implausible uniform peak power %d", p.Cost.PeakPower)
		}
	}
}

func TestParetoNodeBudgetInexact(t *testing.T) {
	dp, _, _ := buildBench(t, benchdata.Paulin(), false)
	opts := DefaultOptions(8)
	opts.NodeBudget = 50 // far below the full walk
	front, err := OptimizePareto(context.Background(), dp, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(front) == 0 {
		t.Fatal("budget-bounded search returned no plans")
	}
	for _, p := range front {
		if p.Exact {
			t.Error("plan claims exactness despite an exhausted budget")
		}
		if err := p.Validate(dp); err != nil {
			t.Error(err)
		}
	}
	for i, p := range front {
		for j, q := range front {
			if i != j && p.Cost.Dominates(q.Cost) {
				t.Errorf("inexact front member %v dominates %v", p.Cost, q.Cost)
			}
		}
	}
}

func TestParetoCancellation(t *testing.T) {
	dp, _, _ := buildBench(t, benchdata.Paulin(), false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := OptimizePareto(ctx, dp, DefaultOptions(8)); err != context.Canceled {
		t.Fatalf("cancelled search returned %v, want context.Canceled", err)
	}
}

func TestCostVectorDominates(t *testing.T) {
	a := CostVector{10, 2, 5}
	cases := []struct {
		b    CostVector
		want bool
	}{
		{CostVector{10, 2, 5}, false}, // equal: no domination
		{CostVector{11, 2, 5}, true},
		{CostVector{10, 3, 5}, true},
		{CostVector{10, 2, 6}, true},
		{CostVector{11, 3, 6}, true},
		{CostVector{9, 2, 5}, false},  // better area
		{CostVector{11, 1, 5}, false}, // trade-off
	}
	for _, c := range cases {
		if got := a.Dominates(c.b); got != c.want {
			t.Errorf("%v.Dominates(%v) = %v, want %v", a, c.b, got, c.want)
		}
	}
	if a.Less(a) {
		t.Error("Less not irreflexive")
	}
	if !a.Less(CostVector{10, 2, 6}) || (CostVector{10, 2, 6}).Less(a) {
		t.Error("lexicographic order broken on the last component")
	}
}
