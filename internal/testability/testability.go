// Package testability implements COP (controllability/observability
// program) analysis on gate-level netlists: signal-1 controllability and
// fault observability under random patterns, combined into per-fault
// detection probabilities and expected fault coverage for a given
// pattern budget. The flow uses it to predict which modules are
// random-pattern resistant (the restoring divider) before running the
// much more expensive gate-level fault simulation, mirroring how
// testability measures were used alongside BIST in the paper's era.
package testability

import (
	"fmt"
	"math"

	"bistpath/internal/gates"
)

// Analysis holds the COP measures for a combinational cone.
type Analysis struct {
	// C1 is the probability a signal evaluates to 1 under uniform random
	// assignments to the cone inputs.
	C1 map[gates.Sig]float64
	// Obs is the probability a value change on the signal propagates to
	// an observed output (single-path COP approximation).
	Obs map[gates.Sig]float64
}

// COP analyzes the combinational cone spanned by the netlist's gates
// between the given observed outputs and whatever feeds them. Signals not
// driven by any gate (primary inputs, flip-flop outputs, boundary
// signals) are treated as independent uniform random inputs; the
// constant signals keep their values. COP ignores reconvergent fanout —
// it is the standard fast approximation, exact on fanout-free cones.
func COP(n *gates.Netlist, observed []gates.Sig) (*Analysis, error) {
	if len(observed) == 0 {
		return nil, fmt.Errorf("testability: no observed outputs")
	}
	producer := make(map[gates.Sig]int, len(n.Gates))
	for i, g := range n.Gates {
		producer[g.Out] = i
	}
	a := &Analysis{
		C1:  make(map[gates.Sig]float64),
		Obs: make(map[gates.Sig]float64),
	}
	a.C1[gates.Zero] = 0
	a.C1[gates.One] = 1

	// Controllability: depth-first over the cone.
	var ctrl func(s gates.Sig) float64
	visiting := make(map[gates.Sig]bool)
	ctrl = func(s gates.Sig) float64 {
		if v, ok := a.C1[s]; ok {
			return v
		}
		gi, ok := producer[s]
		if !ok {
			a.C1[s] = 0.5 // boundary: uniform random input
			return 0.5
		}
		if visiting[s] {
			// Defensive: validated netlists are acyclic.
			a.C1[s] = 0.5
			return 0.5
		}
		visiting[s] = true
		g := n.Gates[gi]
		pa := ctrl(g.A)
		pb := 0.0
		if g.Kind != gates.Not {
			pb = ctrl(g.B)
		}
		var v float64
		switch g.Kind {
		case gates.And:
			v = pa * pb
		case gates.Or:
			v = 1 - (1-pa)*(1-pb)
		case gates.Xor:
			v = pa*(1-pb) + (1-pa)*pb
		case gates.Not:
			v = 1 - pa
		case gates.Nand:
			v = 1 - pa*pb
		case gates.Nor:
			v = (1 - pa) * (1 - pb)
		case gates.Xnor:
			v = pa*pb + (1-pa)*(1-pb)
		}
		delete(visiting, s)
		a.C1[s] = v
		return v
	}

	// Build the cone: all gates reachable backward from the observed
	// outputs.
	inCone := make(map[int]bool)
	var mark func(s gates.Sig)
	marked := make(map[gates.Sig]bool)
	mark = func(s gates.Sig) {
		if marked[s] {
			return
		}
		marked[s] = true
		gi, ok := producer[s]
		if !ok {
			return
		}
		inCone[gi] = true
		g := n.Gates[gi]
		mark(g.A)
		if g.Kind != gates.Not {
			mark(g.B)
		}
	}
	for _, o := range observed {
		mark(o)
		ctrl(o)
	}

	// Observability: backward from the observed outputs. Propagation
	// through a gate requires the side inputs at non-controlling values.
	for _, o := range observed {
		a.Obs[o] = 1
	}
	// Process gates in reverse topological order: levelize the full
	// netlist once and walk it backwards, restricted to the cone.
	order, err := levelOrder(n)
	if err != nil {
		return nil, err
	}
	bump := func(s gates.Sig, p float64) {
		if p > a.Obs[s] {
			a.Obs[s] = p
		}
	}
	for i := len(order) - 1; i >= 0; i-- {
		gi := order[i]
		if !inCone[gi] {
			continue
		}
		g := n.Gates[gi]
		oo := a.Obs[g.Out]
		if oo == 0 {
			continue
		}
		ca, cb := a.C1[g.A], a.C1[g.B]
		switch g.Kind {
		case gates.And, gates.Nand:
			bump(g.A, oo*cb)
			bump(g.B, oo*ca)
		case gates.Or, gates.Nor:
			bump(g.A, oo*(1-cb))
			bump(g.B, oo*(1-ca))
		case gates.Xor, gates.Xnor:
			bump(g.A, oo)
			bump(g.B, oo)
		case gates.Not:
			bump(g.A, oo)
		}
	}
	return a, nil
}

// levelOrder exposes the netlist's topological gate order (wrapping the
// internal levelizer through a fresh simulator, which validates acyclic
// structure as a side effect).
func levelOrder(n *gates.Netlist) ([]int, error) {
	// Recompute locally: producer-based DFS identical to the simulator's.
	producer := make(map[gates.Sig]int, len(n.Gates))
	for i, g := range n.Gates {
		producer[g.Out] = i
	}
	order := make([]int, 0, len(n.Gates))
	state := make([]int, len(n.Gates))
	var visit func(gi int) error
	visit = func(gi int) error {
		state[gi] = 1
		g := n.Gates[gi]
		ins := []gates.Sig{g.A}
		if g.Kind != gates.Not {
			ins = append(ins, g.B)
		}
		for _, s := range ins {
			pi, ok := producer[s]
			if !ok {
				continue
			}
			switch state[pi] {
			case 1:
				return fmt.Errorf("testability: combinational cycle")
			case 0:
				if err := visit(pi); err != nil {
					return err
				}
			}
		}
		state[gi] = 2
		order = append(order, gi)
		return nil
	}
	for gi := range n.Gates {
		if state[gi] == 0 {
			if err := visit(gi); err != nil {
				return nil, err
			}
		}
	}
	return order, nil
}

// DetectProb returns the single-pattern detection probability of a
// stuck-at fault on the signal: the fault site must carry the opposite
// value (controllability) and the change must reach an output
// (observability).
func (a *Analysis) DetectProb(f gates.StuckAt) float64 {
	c := a.C1[f.Sig]
	if f.Value {
		c = 1 - c
	}
	return c * a.Obs[f.Sig]
}

// ExpectedCoverage returns the expected fraction of the given faults
// detected by `patterns` independent random patterns: mean over faults of
// 1-(1-p)^patterns.
func (a *Analysis) ExpectedCoverage(faults []gates.StuckAt, patterns int) float64 {
	if len(faults) == 0 {
		return 100
	}
	total := 0.0
	for _, f := range faults {
		p := a.DetectProb(f)
		total += 1 - math.Pow(1-p, float64(patterns))
	}
	return total / float64(len(faults)) * 100
}

// HardFaults returns the faults whose single-pattern detection
// probability is below the threshold — the random-pattern-resistant set.
func (a *Analysis) HardFaults(faults []gates.StuckAt, threshold float64) []gates.StuckAt {
	var out []gates.StuckAt
	for _, f := range faults {
		if a.DetectProb(f) < threshold {
			out = append(out, f)
		}
	}
	return out
}
