package testability

import (
	"math"
	"testing"

	"bistpath/internal/gates"
)

func TestCOPBasicGates(t *testing.T) {
	n := gates.New()
	a := n.InputBus("a", 1)[0]
	b := n.InputBus("b", 1)[0]
	and := n.And2(a, b)
	or := n.Or2(a, b)
	xor := n.Xor2(a, b)
	not := n.Not1(a)
	an, err := COP(n, []gates.Sig{and, or, xor, not})
	if err != nil {
		t.Fatal(err)
	}
	approx := func(got, want float64, what string) {
		t.Helper()
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%s = %v, want %v", what, got, want)
		}
	}
	approx(an.C1[a], 0.5, "C1(a)")
	approx(an.C1[and], 0.25, "C1(and)")
	approx(an.C1[or], 0.75, "C1(or)")
	approx(an.C1[xor], 0.5, "C1(xor)")
	approx(an.C1[not], 0.5, "C1(not)")
	// Observability through an AND requires the other input at 1.
	approx(an.Obs[and], 1, "Obs(and out)")
	approx(an.Obs[a], 1, "Obs(a)") // via NOT (and XOR), transparent
}

func TestCOPObservabilityChain(t *testing.T) {
	// a -> AND(b) -> AND(c) -> out: Obs(a) = C1(b)*C1(c) = 0.25.
	n := gates.New()
	a := n.InputBus("a", 1)[0]
	b := n.InputBus("b", 1)[0]
	c := n.InputBus("c", 1)[0]
	x := n.And2(a, b)
	y := n.And2(x, c)
	an, err := COP(n, []gates.Sig{y})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(an.Obs[a]-0.25) > 1e-9 {
		t.Errorf("Obs(a) = %v, want 0.25", an.Obs[a])
	}
	// C1(y) = 0.125; detection of y/sa0 needs y==1.
	p := an.DetectProb(gates.StuckAt{Sig: y, Value: false})
	if math.Abs(p-0.125) > 1e-9 {
		t.Errorf("DetectProb(y sa0) = %v, want 0.125", p)
	}
	p = an.DetectProb(gates.StuckAt{Sig: y, Value: true})
	if math.Abs(p-0.875) > 1e-9 {
		t.Errorf("DetectProb(y sa1) = %v, want 0.875", p)
	}
}

func TestCOPConstants(t *testing.T) {
	n := gates.New()
	a := n.InputBus("a", 1)[0]
	x := n.And2(a, gates.One)
	an, err := COP(n, []gates.Sig{x})
	if err != nil {
		t.Fatal(err)
	}
	if an.C1[gates.One] != 1 || an.C1[gates.Zero] != 0 {
		t.Error("constants mis-analyzed")
	}
	if math.Abs(an.C1[x]-0.5) > 1e-9 {
		t.Errorf("C1(a AND 1) = %v", an.C1[x])
	}
}

func TestExpectedCoverageMonotone(t *testing.T) {
	n := gates.New()
	a := n.InputBus("a", 8)
	b := n.InputBus("b", 8)
	out := n.MulBus(a, b)
	an, err := COP(n, out)
	if err != nil {
		t.Fatal(err)
	}
	faults := n.AllFaultSites()
	c10 := an.ExpectedCoverage(faults, 10)
	c100 := an.ExpectedCoverage(faults, 100)
	c1000 := an.ExpectedCoverage(faults, 1000)
	if !(c10 < c100 && c100 <= c1000) {
		t.Errorf("coverage not monotone in patterns: %v %v %v", c10, c100, c1000)
	}
	if c1000 < 90 {
		t.Errorf("multiplier predicted coverage %v too low", c1000)
	}
}

// COP must predict the restoring divider as markedly harder to test with
// random patterns than the multiplier — the effect measured at gate
// level in internal/elab.
func TestCOPPredictsDividerResistance(t *testing.T) {
	build := func(f func(n *gates.Netlist, a, b []gates.Sig) []gates.Sig) float64 {
		n := gates.New()
		a := n.InputBus("a", 8)
		b := n.InputBus("b", 8)
		out := f(n, a, b)
		an, err := COP(n, out)
		if err != nil {
			t.Fatal(err)
		}
		var faults []gates.StuckAt
		for _, g := range n.Gates {
			faults = append(faults, gates.StuckAt{Sig: g.Out, Value: false}, gates.StuckAt{Sig: g.Out, Value: true})
		}
		return an.ExpectedCoverage(faults, 250)
	}
	mul := build(func(n *gates.Netlist, a, b []gates.Sig) []gates.Sig { return n.MulBus(a, b) })
	div := build(func(n *gates.Netlist, a, b []gates.Sig) []gates.Sig { return n.DivBus(a, b) })
	if div >= mul {
		t.Errorf("COP predicts divider (%.1f%%) at least as testable as multiplier (%.1f%%)", div, mul)
	}
	if mul < 95 {
		t.Errorf("multiplier prediction %.1f%% implausibly low", mul)
	}
	if div > 97 {
		t.Errorf("divider prediction %.1f%% misses its random-pattern resistance", div)
	}
}

func TestHardFaults(t *testing.T) {
	n := gates.New()
	a := n.InputBus("a", 8)
	b := n.InputBus("b", 8)
	out := n.DivBus(a, b)
	an, err := COP(n, out)
	if err != nil {
		t.Fatal(err)
	}
	all := n.AllFaultSites()
	hard := an.HardFaults(all, 0.01)
	if len(hard) == 0 {
		t.Error("divider should have random-pattern-resistant faults")
	}
	if len(hard) >= len(all) {
		t.Error("every fault flagged hard — thresholding broken")
	}
	for _, f := range hard {
		if an.DetectProb(f) >= 0.01 {
			t.Errorf("fault %v not actually hard", f)
		}
	}
}

func TestCOPNoObserved(t *testing.T) {
	n := gates.New()
	if _, err := COP(n, nil); err == nil {
		t.Error("empty observation set accepted")
	}
}

// The COP prediction should land in the same band as real fault
// simulation for the multiplier (where COP's no-reconvergence assumption
// is mild).
func TestCOPVersusFaultSimulation(t *testing.T) {
	n := gates.New()
	a := n.InputBus("a", 8)
	b := n.InputBus("b", 8)
	out := n.MulBus(a, b)
	n.OutputBus("p", out)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	an, err := COP(n, out)
	if err != nil {
		t.Fatal(err)
	}
	var faults []gates.StuckAt
	for _, g := range n.Gates {
		faults = append(faults, gates.StuckAt{Sig: g.Out, Value: false}, gates.StuckAt{Sig: g.Out, Value: true})
	}
	predicted := an.ExpectedCoverage(faults, 200)

	sim, err := gates.NewSim(n)
	if err != nil {
		t.Fatal(err)
	}
	vec := make([][2]uint64, 200)
	for i := range vec {
		vec[i] = [2]uint64{uint64(i*37+11) & 0xFF, uint64(i*101+3) & 0xFF}
	}
	golden := make([]uint64, len(vec))
	for i, v := range vec {
		sim.SetBus(a, v[0])
		sim.SetBus(b, v[1])
		sim.Eval()
		golden[i] = sim.ReadBus(out)
	}
	detected := 0
	for _, f := range faults {
		ff := f
		sim.SetFault(&ff)
		for i, v := range vec {
			sim.SetBus(a, v[0])
			sim.SetBus(b, v[1])
			sim.Eval()
			if sim.ReadBus(out) != golden[i] {
				detected++
				break
			}
		}
		sim.SetFault(nil)
	}
	measured := float64(detected) / float64(len(faults)) * 100
	if math.Abs(predicted-measured) > 8 {
		t.Errorf("COP predicted %.1f%%, fault simulation measured %.1f%% (divergence > 8pp)", predicted, measured)
	}
}
