package sched

import (
	"testing"

	"bistpath/internal/dfg"
)

// wide builds an unscheduled DFG with four independent adds feeding a
// reduction tree:
//
//	t1=a+b t2=c+d t3=e+f t4=g+h  (independent)
//	u1=t1+t2 u2=t3+t4
//	out=u1+u2
func wide(t *testing.T) *dfg.Graph {
	t.Helper()
	g := dfg.New("wide")
	if err := g.AddInput("a", "b", "c", "d", "e", "f", "g", "h"); err != nil {
		t.Fatal(err)
	}
	add := func(name, res string, x, y string) {
		t.Helper()
		if err := g.AddOp(name, dfg.Add, 0, res, x, y); err != nil {
			t.Fatal(err)
		}
	}
	add("t1", "vt1", "a", "b")
	add("t2", "vt2", "c", "d")
	add("t3", "vt3", "e", "f")
	add("t4", "vt4", "g", "h")
	add("u1", "vu1", "vt1", "vt2")
	add("u2", "vu2", "vt3", "vt4")
	add("o", "out", "vu1", "vu2")
	if err := g.MarkOutput("out"); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestASAP(t *testing.T) {
	g := wide(t)
	steps, err := ASAP(g)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"t1": 1, "t2": 1, "t3": 1, "t4": 1, "u1": 2, "u2": 2, "o": 3}
	for op, w := range want {
		if steps[op] != w {
			t.Errorf("ASAP[%s] = %d, want %d", op, steps[op], w)
		}
	}
	if Length(steps) != 3 {
		t.Errorf("Length = %d, want 3", Length(steps))
	}
}

func TestALAP(t *testing.T) {
	g := wide(t)
	steps, err := ALAP(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"o": 5, "u1": 4, "u2": 4, "t1": 3, "t2": 3, "t3": 3, "t4": 3}
	for op, w := range want {
		if steps[op] != w {
			t.Errorf("ALAP[%s] = %d, want %d", op, steps[op], w)
		}
	}
	if _, err := ALAP(g, 2); err == nil {
		t.Error("latency below critical path accepted")
	}
}

func TestMobility(t *testing.T) {
	g := wide(t)
	m, err := Mobility(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m["o"] != 1 {
		t.Errorf("mobility(o) = %d, want 1", m["o"])
	}
	if m["t1"] != 1 {
		t.Errorf("mobility(t1) = %d, want 1", m["t1"])
	}
}

func TestListScheduleUnconstrained(t *testing.T) {
	g := wide(t)
	steps, err := ListSchedule(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if Length(steps) != 3 {
		t.Errorf("unconstrained list schedule length %d, want 3", Length(steps))
	}
	if err := Apply(g, steps); err != nil {
		t.Fatal(err)
	}
}

func TestListScheduleConstrained(t *testing.T) {
	g := wide(t)
	steps, err := ListSchedule(g, Limits{dfg.Add: 2})
	if err != nil {
		t.Fatal(err)
	}
	// 7 adds, ≤2 per step → at least 4 steps; dependencies allow exactly 4.
	if got := Length(steps); got != 4 {
		t.Errorf("constrained length = %d, want 4", got)
	}
	perStep := map[int]int{}
	for _, s := range steps {
		perStep[s]++
	}
	for s, n := range perStep {
		if n > 2 {
			t.Errorf("step %d has %d adds, limit 2", s, n)
		}
	}
	if err := Apply(g, steps); err != nil {
		t.Fatalf("constrained schedule invalid: %v", err)
	}
}

func TestListScheduleOneAdder(t *testing.T) {
	g := wide(t)
	steps, err := ListSchedule(g, Limits{dfg.Add: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := Length(steps); got != 7 {
		t.Errorf("serial schedule length = %d, want 7", got)
	}
	if err := Apply(g, steps); err != nil {
		t.Fatal(err)
	}
}

func TestApplyMissing(t *testing.T) {
	g := wide(t)
	if err := Apply(g, map[string]int{"t1": 1}); err == nil {
		t.Error("partial schedule accepted")
	}
}

func TestMixedKindsLimits(t *testing.T) {
	g := dfg.New("mixed")
	g.AddInput("a", "b", "c", "d")
	g.AddOp("m1", dfg.Mul, 0, "p", "a", "b")
	g.AddOp("m2", dfg.Mul, 0, "q", "c", "d")
	g.AddOp("s1", dfg.Add, 0, "r", "p", "q")
	g.MarkOutput("r")
	steps, err := ListSchedule(g, Limits{dfg.Mul: 1})
	if err != nil {
		t.Fatal(err)
	}
	if Length(steps) != 3 {
		t.Errorf("length = %d, want 3 (serialized muls)", Length(steps))
	}
	if err := Apply(g, steps); err != nil {
		t.Fatal(err)
	}
}
