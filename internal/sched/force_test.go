package sched

import (
	"testing"

	"bistpath/internal/dfg"
)

// paulinUnscheduled builds the differential-equation DFG (the HAL
// benchmark, same operation structure as benchdata.Paulin, which cannot
// be imported here without a cycle) without a schedule; FDS should
// rediscover a two-multiplier solution at the paper's latency.
func paulinUnscheduled(t *testing.T) *dfg.Graph {
	t.Helper()
	g := dfg.New("paulin")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.AddInput("x", "u", "y", "dx", "a", "k3"))
	must(g.MarkPortInput("dx", "a", "k3"))
	must(g.AddOp("m1", dfg.Mul, 0, "t1", "k3", "x"))
	must(g.AddOp("m2", dfg.Mul, 0, "t2", "u", "dx"))
	must(g.AddOp("a1", dfg.Add, 0, "x1", "x", "dx"))
	must(g.AddOp("m4", dfg.Mul, 0, "t4", "t1", "t2"))
	must(g.AddOp("cmp", dfg.Lt, 0, "c", "x1", "a"))
	must(g.AddOp("m3", dfg.Mul, 0, "t3", "k3", "y"))
	must(g.AddOp("m6", dfg.Mul, 0, "t7", "u", "dx"))
	must(g.AddOp("s1", dfg.Sub, 0, "t6", "u", "t4"))
	must(g.AddOp("m5", dfg.Mul, 0, "t5", "t3", "dx"))
	must(g.AddOp("s2", dfg.Sub, 0, "u1", "t6", "t5"))
	must(g.AddOp("a2", dfg.Add, 0, "y1", "y", "t7"))
	must(g.MarkOutput("x1", "y1", "u1", "c"))
	return g
}

func TestForceDirectedValid(t *testing.T) {
	g := paulinUnscheduled(t)
	steps, err := ForceDirected(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := Apply(g, steps); err != nil {
		t.Fatalf("FDS schedule invalid: %v", err)
	}
	if got := Length(steps); got > 5 {
		t.Errorf("latency %d exceeds bound 5", got)
	}
}

func TestForceDirectedMinimizesMultipliers(t *testing.T) {
	// The classic FDS result on the HAL benchmark: with enough latency
	// the six multiplications fit on two multipliers.
	g := paulinUnscheduled(t)
	steps, err := ForceDirected(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	peak := PeakUsage(g, steps)
	if peak[dfg.Mul] > 2 {
		t.Errorf("FDS needs %d multipliers, want <= 2", peak[dfg.Mul])
	}
}

func TestForceDirectedBeatsOrMatchesASAP(t *testing.T) {
	g := paulinUnscheduled(t)
	asap, err := ASAP(g)
	if err != nil {
		t.Fatal(err)
	}
	lat := Length(asap) + 1
	fds, err := ForceDirected(g, lat)
	if err != nil {
		t.Fatal(err)
	}
	pa := PeakUsage(g, asap)
	pf := PeakUsage(g, fds)
	totalA, totalF := 0, 0
	for k, n := range pa {
		totalA += n
		_ = k
	}
	for _, n := range pf {
		totalF += n
	}
	if totalF > totalA {
		t.Errorf("FDS total peak usage %d worse than ASAP %d", totalF, totalA)
	}
}

func TestForceDirectedLatencyTooSmall(t *testing.T) {
	g := paulinUnscheduled(t)
	if _, err := ForceDirected(g, 1); err == nil {
		t.Error("infeasible latency accepted")
	}
}

func TestForceDirectedOnWideGraph(t *testing.T) {
	// A wide reduction tree: FDS at latency cp+2 must spread the adds.
	g := dfg.New("wide")
	if err := g.AddInput("a", "b", "c", "d", "e", "f", "g", "h"); err != nil {
		t.Fatal(err)
	}
	add := func(name, res, x, y string) {
		t.Helper()
		if err := g.AddOp(name, dfg.Add, 0, res, x, y); err != nil {
			t.Fatal(err)
		}
	}
	add("t1", "v1", "a", "b")
	add("t2", "v2", "c", "d")
	add("t3", "v3", "e", "f")
	add("t4", "v4", "g", "h")
	add("u1", "w1", "v1", "v2")
	add("u2", "w2", "v3", "v4")
	add("o", "out", "w1", "w2")
	if err := g.MarkOutput("out"); err != nil {
		t.Fatal(err)
	}
	steps, err := ForceDirected(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := Apply(g, steps); err != nil {
		t.Fatal(err)
	}
	peak := PeakUsage(g, steps)
	// 7 adds over 5 steps: FDS should need at most 2 concurrent adders.
	if peak[dfg.Add] > 2 {
		t.Errorf("FDS peak adders %d, want <= 2", peak[dfg.Add])
	}
}

func TestForceDirectedDeterministic(t *testing.T) {
	g := paulinUnscheduled(t)
	s1, err := ForceDirected(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ForceDirected(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	for op, v := range s1 {
		if s2[op] != v {
			t.Fatalf("nondeterministic: %s at %d vs %d", op, v, s2[op])
		}
	}
}

func TestPeakUsage(t *testing.T) {
	g := paulinUnscheduled(t)
	steps, err := ListSchedule(g, Limits{dfg.Mul: 2})
	if err != nil {
		t.Fatal(err)
	}
	peak := PeakUsage(g, steps)
	if peak[dfg.Mul] > 2 {
		t.Errorf("list schedule violated its own limit: %d", peak[dfg.Mul])
	}
	if peak[dfg.Add] == 0 || peak[dfg.Sub] == 0 {
		t.Error("peak usage missing kinds")
	}
}
