package sched

import (
	"fmt"
	"sort"

	"bistpath/internal/dfg"
)

// ForceDirected schedules the graph into at most `latency` steps with
// Paulin & Knight's force-directed scheduling: operations are fixed one
// at a time at the (op, step) choice with the lowest total force, where
// force measures how much the assignment raises the expected concurrency
// (distribution graph) of the op's kind, including the indirect effect
// on predecessors and successors whose mobility shrinks. FDS minimizes
// peak resource usage under a latency constraint — the classic
// complement to the list scheduler's resource-constrained formulation.
func ForceDirected(g *dfg.Graph, latency int) (map[string]int, error) {
	asap, err := ASAP(g)
	if err != nil {
		return nil, err
	}
	if cp := Length(asap); latency < cp {
		return nil, fmt.Errorf("sched: latency %d below critical path %d", latency, cp)
	}
	alap, err := ALAP(g, latency)
	if err != nil {
		return nil, err
	}
	type window struct{ es, ls int }
	win := make(map[string]window, len(g.Ops()))
	for _, o := range g.Ops() {
		win[o.Name] = window{asap[o.Name], alap[o.Name]}
	}
	// Dependency maps.
	preds := make(map[string][]string)
	succs := make(map[string][]string)
	for _, o := range g.Ops() {
		for _, a := range o.Args {
			v := g.Var(a)
			if v.Def != "" {
				preds[o.Name] = append(preds[o.Name], v.Def)
				succs[v.Def] = append(succs[v.Def], o.Name)
			}
		}
	}
	fixed := make(map[string]int, len(g.Ops()))

	// dg computes the distribution graph for a kind at a step under the
	// current windows.
	dg := func(kind dfg.Kind, t int) float64 {
		sum := 0.0
		for _, o := range g.Ops() {
			if o.Kind != kind {
				continue
			}
			w := win[o.Name]
			if t >= w.es && t <= w.ls {
				sum += 1.0 / float64(w.ls-w.es+1)
			}
		}
		return sum
	}
	avgDG := func(kind dfg.Kind, es, ls int) float64 {
		if ls < es {
			return 0
		}
		sum := 0.0
		for t := es; t <= ls; t++ {
			sum += dg(kind, t)
		}
		return sum / float64(ls-es+1)
	}
	// selfForce: concentrating the op at t versus its spread-out
	// distribution.
	selfForce := func(o *dfg.Op, t int) float64 {
		w := win[o.Name]
		return dg(o.Kind, t) - avgDG(o.Kind, w.es, w.ls)
	}
	// neighborForce: mobility reduction induced on direct predecessors
	// and successors.
	neighborForce := func(o *dfg.Op, t int) float64 {
		total := 0.0
		for _, p := range preds[o.Name] {
			if _, done := fixed[p]; done {
				continue
			}
			po := g.Op(p)
			w := win[p]
			nls := min2(w.ls, t-1)
			total += avgDG(po.Kind, w.es, nls) - avgDG(po.Kind, w.es, w.ls)
		}
		for _, sname := range succs[o.Name] {
			if _, done := fixed[sname]; done {
				continue
			}
			so := g.Op(sname)
			w := win[sname]
			nes := max2(w.es, t+1)
			total += avgDG(so.Kind, nes, w.ls) - avgDG(so.Kind, w.es, w.ls)
		}
		return total
	}

	for len(fixed) < len(g.Ops()) {
		bestOp, bestT, bestF := "", 0, 0.0
		first := true
		// Deterministic iteration order.
		names := make([]string, 0, len(g.Ops()))
		for _, o := range g.Ops() {
			if _, done := fixed[o.Name]; !done {
				names = append(names, o.Name)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			o := g.Op(name)
			w := win[name]
			for t := w.es; t <= w.ls; t++ {
				f := selfForce(o, t) + neighborForce(o, t)
				if first || f < bestF-1e-12 {
					bestOp, bestT, bestF = name, t, f
					first = false
				}
			}
		}
		fixed[bestOp] = bestT
		win[bestOp] = window{bestT, bestT}
		// Propagate the tightened window through the dependency chains.
		changed := true
		for changed {
			changed = false
			for _, o := range g.Ops() {
				w := win[o.Name]
				for _, p := range preds[o.Name] {
					if pw := win[p]; pw.ls > w.ls-1 {
						pw.ls = w.ls - 1
						win[p] = pw
						changed = true
					}
				}
				for _, sname := range succs[o.Name] {
					if sw := win[sname]; sw.es < w.es+1 {
						sw.es = w.es + 1
						win[sname] = sw
						changed = true
					}
				}
			}
		}
		for _, o := range g.Ops() {
			if w := win[o.Name]; w.es > w.ls {
				return nil, fmt.Errorf("sched: FDS produced an infeasible window for %s", o.Name)
			}
		}
	}
	return fixed, nil
}

// PeakUsage returns, per kind, the maximum number of concurrent
// operations the schedule requires (the module count a binder needs).
func PeakUsage(g *dfg.Graph, steps map[string]int) map[dfg.Kind]int {
	perStep := make(map[dfg.Kind]map[int]int)
	for _, o := range g.Ops() {
		if perStep[o.Kind] == nil {
			perStep[o.Kind] = make(map[int]int)
		}
		perStep[o.Kind][steps[o.Name]]++
	}
	out := make(map[dfg.Kind]int, len(perStep))
	for k, m := range perStep {
		max := 0
		for _, n := range m {
			if n > max {
				max = n
			}
		}
		out[k] = max
	}
	return out
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}
