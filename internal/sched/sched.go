// Package sched schedules data flow graphs. The DAC'95 allocation flow
// assumes a scheduled DFG as input; this package supplies the standard
// algorithms (ASAP, ALAP, resource-constrained list scheduling) so the
// library is usable from an unscheduled behavioral description.
package sched

import (
	"fmt"
	"sort"

	"bistpath/internal/dfg"
)

// ASAP returns the as-soon-as-possible schedule: each op runs at
// 1 + max(step of producers of its operands), with primary inputs
// available before step 1.
func ASAP(g *dfg.Graph) (map[string]int, error) {
	steps := make(map[string]int, len(g.Ops()))
	remaining := len(g.Ops())
	for remaining > 0 {
		progressed := false
		for _, o := range g.Ops() {
			if _, done := steps[o.Name]; done {
				continue
			}
			ready := true
			step := 1
			for _, a := range o.Args {
				v := g.Var(a)
				if v.IsInput {
					continue
				}
				ps, ok := steps[v.Def]
				if !ok {
					ready = false
					break
				}
				if ps+1 > step {
					step = ps + 1
				}
			}
			if ready {
				steps[o.Name] = step
				remaining--
				progressed = true
			}
		}
		if !progressed {
			return nil, fmt.Errorf("sched: ASAP stuck on %q (cycle?)", g.Name)
		}
	}
	return steps, nil
}

// Length returns the number of steps used by a schedule.
func Length(steps map[string]int) int {
	max := 0
	for _, s := range steps {
		if s > max {
			max = s
		}
	}
	return max
}

// ALAP returns the as-late-as-possible schedule for the given latency
// bound. It fails if the bound is below the critical path length.
func ALAP(g *dfg.Graph, latency int) (map[string]int, error) {
	asap, err := ASAP(g)
	if err != nil {
		return nil, err
	}
	if cp := Length(asap); latency < cp {
		return nil, fmt.Errorf("sched: latency %d below critical path %d", latency, cp)
	}
	// consumers[op] = ops that read op's result
	consumers := make(map[string][]string)
	for _, o := range g.Ops() {
		v := g.Var(o.Result)
		consumers[o.Name] = append([]string(nil), v.Uses...)
	}
	steps := make(map[string]int, len(g.Ops()))
	remaining := len(g.Ops())
	for remaining > 0 {
		progressed := false
		for _, o := range g.Ops() {
			if _, done := steps[o.Name]; done {
				continue
			}
			ready := true
			step := latency
			for _, c := range consumers[o.Name] {
				cs, ok := steps[c]
				if !ok {
					ready = false
					break
				}
				if cs-1 < step {
					step = cs - 1
				}
			}
			if ready {
				if step < 1 {
					return nil, fmt.Errorf("sched: ALAP infeasible at op %q", o.Name)
				}
				steps[o.Name] = step
				remaining--
				progressed = true
			}
		}
		if !progressed {
			return nil, fmt.Errorf("sched: ALAP stuck on %q (cycle?)", g.Name)
		}
	}
	return steps, nil
}

// Mobility returns ALAP-ASAP slack per op for the given latency.
func Mobility(g *dfg.Graph, latency int) (map[string]int, error) {
	asap, err := ASAP(g)
	if err != nil {
		return nil, err
	}
	alap, err := ALAP(g, latency)
	if err != nil {
		return nil, err
	}
	m := make(map[string]int, len(asap))
	for op, a := range asap {
		m[op] = alap[op] - a
	}
	return m, nil
}

// Limits bounds the number of concurrent operations per kind during list
// scheduling. A missing kind means unlimited.
type Limits map[dfg.Kind]int

// ListSchedule computes a resource-constrained schedule: at each step the
// ready ops are sorted by (mobility, name) and issued while per-kind
// limits allow. The returned schedule is minimal-latency for the greedy
// policy, not necessarily optimal.
func ListSchedule(g *dfg.Graph, limits Limits) (map[string]int, error) {
	asap, err := ASAP(g)
	if err != nil {
		return nil, err
	}
	// Mobility against a generous latency bound to get stable priorities.
	alap, err := ALAP(g, Length(asap)+len(g.Ops()))
	if err != nil {
		return nil, err
	}
	steps := make(map[string]int, len(g.Ops()))
	scheduled := 0
	for step := 1; scheduled < len(g.Ops()); step++ {
		if step > 10*(len(g.Ops())+1) {
			return nil, fmt.Errorf("sched: list scheduling diverged on %q", g.Name)
		}
		var ready []*dfg.Op
		for _, o := range g.Ops() {
			if _, done := steps[o.Name]; done {
				continue
			}
			ok := true
			for _, a := range o.Args {
				v := g.Var(a)
				if v.IsInput {
					continue
				}
				ps, done := steps[v.Def]
				if !done || ps >= step {
					ok = false
					break
				}
			}
			if ok {
				ready = append(ready, o)
			}
		}
		sort.Slice(ready, func(i, j int) bool {
			mi := alap[ready[i].Name] - asap[ready[i].Name]
			mj := alap[ready[j].Name] - asap[ready[j].Name]
			if mi != mj {
				return mi < mj
			}
			return ready[i].Name < ready[j].Name
		})
		used := make(map[dfg.Kind]int)
		for _, o := range ready {
			if lim, bounded := limits[o.Kind]; bounded && used[o.Kind] >= lim {
				continue
			}
			steps[o.Name] = step
			used[o.Kind]++
			scheduled++
		}
	}
	return steps, nil
}

// Apply writes a schedule into the graph and validates it.
func Apply(g *dfg.Graph, steps map[string]int) error {
	for _, o := range g.Ops() {
		s, ok := steps[o.Name]
		if !ok {
			return fmt.Errorf("sched: no step for op %q", o.Name)
		}
		o.Step = s
	}
	return g.Validate()
}
