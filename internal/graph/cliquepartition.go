package graph

import "sort"

// CliquePartition partitions the vertices of a compatibility graph into
// cliques using the classic greedy merging heuristic (Tseng & Siewiorek):
// repeatedly merge the pair of clusters with the highest total
// vertex-pair weight among pairs whose union still induces a clique,
// until no pair can be merged. A nil weight treats all pairs as weight 1
// (minimizing cluster count greedily). Ties are broken deterministically
// by cluster contents.
func (g *Undirected) CliquePartition(weight func(u, v string) int) [][]string {
	if weight == nil {
		weight = func(string, string) int { return 1 }
	}
	clusters := make([][]string, 0, g.NumVertices())
	for _, v := range g.SortedVertices() {
		clusters = append(clusters, []string{v})
	}
	compatible := func(a, b []string) bool {
		for _, u := range a {
			for _, v := range b {
				if !g.HasEdge(u, v) {
					return false
				}
			}
		}
		return true
	}
	pairWeight := func(a, b []string) int {
		w := 0
		for _, u := range a {
			for _, v := range b {
				w += weight(u, v)
			}
		}
		return w
	}
	for {
		bi, bj, bw := -1, -1, 0
		for i := range clusters {
			for j := i + 1; j < len(clusters); j++ {
				if !compatible(clusters[i], clusters[j]) {
					continue
				}
				w := pairWeight(clusters[i], clusters[j])
				if bi == -1 || w > bw {
					bi, bj, bw = i, j, w
				}
			}
		}
		if bi == -1 {
			break
		}
		merged := append(append([]string(nil), clusters[bi]...), clusters[bj]...)
		sort.Strings(merged)
		clusters = append(clusters[:bj], clusters[bj+1:]...)
		clusters[bi] = merged
	}
	sort.Slice(clusters, func(i, j int) bool { return clusters[i][0] < clusters[j][0] })
	return clusters
}

// VerifyCliquePartition checks that the partition covers every vertex
// exactly once and every cluster induces a clique.
func (g *Undirected) VerifyCliquePartition(clusters [][]string) error {
	seen := make(map[string]bool, g.NumVertices())
	for _, c := range clusters {
		if !g.IsClique(c) {
			return errNotClique(c)
		}
		for _, v := range c {
			if seen[v] {
				return errDupVertex(v)
			}
			seen[v] = true
		}
	}
	for _, v := range g.Vertices() {
		if !seen[v] {
			return errMissingVertex(v)
		}
	}
	return nil
}

type errNotClique []string

func (e errNotClique) Error() string { return "cluster is not a clique: " + sjoin(e) }

type errDupVertex string

func (e errDupVertex) Error() string { return "vertex in multiple clusters: " + string(e) }

type errMissingVertex string

func (e errMissingVertex) Error() string { return "vertex missing from partition: " + string(e) }

func sjoin(vs []string) string {
	out := ""
	for i, v := range vs {
		if i > 0 {
			out += ","
		}
		out += v
	}
	return out
}
