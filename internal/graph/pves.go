package graph

import (
	"fmt"
	"sort"
)

// IsSimplicial reports whether v's neighborhood induces a clique.
func (g *Undirected) IsSimplicial(v string) bool {
	return g.IsClique(g.Neighbors(v))
}

// SimplicialVertices returns all simplicial vertices, sorted.
func (g *Undirected) SimplicialVertices() []string {
	var out []string
	for _, v := range g.SortedVertices() {
		if g.IsSimplicial(v) {
			out = append(out, v)
		}
	}
	return out
}

// PVES constructs a perfect vertex elimination scheme: an ordering
// v1..vn such that each vi is simplicial in the subgraph induced by
// {vi..vn}. At every step the simplicial vertex minimizing the supplied
// priority is eliminated (ties broken lexicographically); this is the
// hook the paper's register binder uses to prefer low-SD / low-MCS
// variables early in the scheme (Section III.A.1).
//
// PVES fails (returns an error) iff the graph is not chordal.
func (g *Undirected) PVES(priority func(v string) int) ([]string, error) {
	if priority == nil {
		priority = func(string) int { return 0 }
	}
	work := g.Clone()
	scheme := make([]string, 0, g.NumVertices())
	for work.NumVertices() > 0 {
		simp := work.SimplicialVertices()
		if len(simp) == 0 {
			return nil, fmt.Errorf("graph is not chordal: no simplicial vertex among %d remaining", work.NumVertices())
		}
		best := simp[0]
		for _, v := range simp[1:] {
			if priority(v) < priority(best) {
				best = v
			}
		}
		scheme = append(scheme, best)
		work.RemoveVertex(best)
	}
	return scheme, nil
}

// IsChordal reports whether the graph admits a perfect elimination scheme.
func (g *Undirected) IsChordal() bool {
	_, err := g.PVES(nil)
	return err == nil
}

// VerifyPVES checks that the ordering is a valid perfect vertex
// elimination scheme for g.
func (g *Undirected) VerifyPVES(scheme []string) error {
	if len(scheme) != g.NumVertices() {
		return fmt.Errorf("scheme has %d vertices, graph has %d", len(scheme), g.NumVertices())
	}
	remaining := make(map[string]bool, len(scheme))
	for _, v := range scheme {
		if !g.HasVertex(v) {
			return fmt.Errorf("scheme vertex %q not in graph", v)
		}
		if remaining[v] {
			return fmt.Errorf("scheme repeats vertex %q", v)
		}
		remaining[v] = true
	}
	work := g.Clone()
	for _, v := range scheme {
		if !work.IsSimplicial(v) {
			return fmt.Errorf("vertex %q is not simplicial at its elimination point", v)
		}
		work.RemoveVertex(v)
	}
	return nil
}

// MaximalCliquesChordal enumerates the maximal cliques of a chordal graph
// using a perfect elimination scheme: each vertex v together with its
// later-ordered neighbors forms a clique; the maximal ones among these are
// exactly the maximal cliques of the graph.
func (g *Undirected) MaximalCliquesChordal() ([][]string, error) {
	scheme, err := g.PVES(nil)
	if err != nil {
		return nil, err
	}
	pos := make(map[string]int, len(scheme))
	for i, v := range scheme {
		pos[v] = i
	}
	var cands [][]string
	for i, v := range scheme {
		c := []string{v}
		for _, u := range g.Neighbors(v) {
			if pos[u] > i {
				c = append(c, u)
			}
		}
		sort.Strings(c)
		cands = append(cands, c)
	}
	// Drop candidates strictly contained in another candidate.
	var out [][]string
	for i, c := range cands {
		maximal := true
		for j, d := range cands {
			if i == j || len(c) > len(d) {
				continue
			}
			if len(c) == len(d) && i < j {
				continue // keep first of duplicates
			}
			if subset(c, d) {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return fmt.Sprint(out[i]) < fmt.Sprint(out[j])
	})
	return out, nil
}

func subset(a, b []string) bool {
	in := make(map[string]bool, len(b))
	for _, x := range b {
		in[x] = true
	}
	for _, x := range a {
		if !in[x] {
			return false
		}
	}
	return true
}

// MaxCliquePerVertex returns, for each vertex, the size of the largest
// maximal clique containing it (chordal graphs only).
func (g *Undirected) MaxCliquePerVertex() (map[string]int, error) {
	cliques, err := g.MaximalCliquesChordal()
	if err != nil {
		return nil, err
	}
	out := make(map[string]int, g.NumVertices())
	for _, v := range g.Vertices() {
		out[v] = 1
	}
	for _, c := range cliques {
		for _, v := range c {
			if len(c) > out[v] {
				out[v] = len(c)
			}
		}
	}
	return out, nil
}
