package graph

import (
	"fmt"
	"sort"
)

// GreedyColor colors vertices in the given order, assigning each vertex
// the smallest color not used by an already-colored neighbor. For a
// reverse perfect-elimination order of a chordal graph this is optimal
// (Golumbic); for arbitrary orders it is the standard greedy heuristic.
// Colors are 0-based.
func (g *Undirected) GreedyColor(order []string) (map[string]int, error) {
	if len(order) != g.NumVertices() {
		return nil, fmt.Errorf("order has %d vertices, graph has %d", len(order), g.NumVertices())
	}
	colors := make(map[string]int, len(order))
	for _, v := range order {
		if !g.HasVertex(v) {
			return nil, fmt.Errorf("order vertex %q not in graph", v)
		}
		if _, dup := colors[v]; dup {
			return nil, fmt.Errorf("order repeats vertex %q", v)
		}
		used := make(map[int]bool)
		for u := range g.adj[v] {
			if c, ok := colors[u]; ok {
				used[c] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		colors[v] = c
	}
	return colors, nil
}

// OptimalChordalColor colors a chordal graph with the minimum number of
// colors by greedy coloring in reverse perfect-elimination order.
func (g *Undirected) OptimalChordalColor() (map[string]int, error) {
	scheme, err := g.PVES(nil)
	if err != nil {
		return nil, err
	}
	rev := make([]string, len(scheme))
	for i, v := range scheme {
		rev[len(scheme)-1-i] = v
	}
	return g.GreedyColor(rev)
}

// VerifyColoring checks that the coloring is proper and complete.
func (g *Undirected) VerifyColoring(colors map[string]int) error {
	for _, v := range g.Vertices() {
		if _, ok := colors[v]; !ok {
			return fmt.Errorf("vertex %q uncolored", v)
		}
	}
	for _, v := range g.Vertices() {
		for u := range g.adj[v] {
			if colors[v] == colors[u] {
				return fmt.Errorf("adjacent vertices %q and %q share color %d", v, u, colors[v])
			}
		}
	}
	return nil
}

// NumColors returns the number of distinct colors used.
func NumColors(colors map[string]int) int {
	seen := make(map[int]bool, len(colors))
	for _, c := range colors {
		seen[c] = true
	}
	return len(seen)
}

// ColorClasses groups vertices by color; classes are sorted internally and
// ordered by color index.
func ColorClasses(colors map[string]int) [][]string {
	byColor := make(map[int][]string)
	maxC := -1
	for v, c := range colors {
		byColor[c] = append(byColor[c], v)
		if c > maxC {
			maxC = c
		}
	}
	out := make([][]string, 0, maxC+1)
	for c := 0; c <= maxC; c++ {
		class := byColor[c]
		sort.Strings(class)
		out = append(out, class)
	}
	return out
}
