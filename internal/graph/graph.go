// Package graph provides the undirected-graph machinery used by the
// allocation algorithms: conflict/compatibility graphs over string-named
// vertices, simplicial-vertex detection, perfect vertex elimination
// schemes (PVES) for chordal/interval graphs, greedy coloring, and
// weighted clique partitioning.
package graph

import (
	"fmt"
	"sort"
)

// Undirected is a simple undirected graph with string vertices.
// The zero value is not usable; construct with NewUndirected.
type Undirected struct {
	order []string // insertion order
	adj   map[string]map[string]bool
}

// NewUndirected returns an empty graph.
func NewUndirected() *Undirected {
	return &Undirected{adj: make(map[string]map[string]bool)}
}

// AddVertex adds v if not present.
func (g *Undirected) AddVertex(v string) {
	if _, ok := g.adj[v]; ok {
		return
	}
	g.adj[v] = make(map[string]bool)
	g.order = append(g.order, v)
}

// AddEdge adds the edge {u,v}, creating vertices as needed.
// Self-loops are ignored.
func (g *Undirected) AddEdge(u, v string) {
	if u == v {
		return
	}
	g.AddVertex(u)
	g.AddVertex(v)
	g.adj[u][v] = true
	g.adj[v][u] = true
}

// HasVertex reports whether v is present.
func (g *Undirected) HasVertex(v string) bool { _, ok := g.adj[v]; return ok }

// HasEdge reports whether {u,v} is an edge.
func (g *Undirected) HasEdge(u, v string) bool { return g.adj[u][v] }

// NumVertices returns the vertex count.
func (g *Undirected) NumVertices() int { return len(g.adj) }

// NumEdges returns the edge count.
func (g *Undirected) NumEdges() int {
	n := 0
	for _, nb := range g.adj {
		n += len(nb)
	}
	return n / 2
}

// Vertices returns the vertices in insertion order.
func (g *Undirected) Vertices() []string { return append([]string(nil), g.order...) }

// SortedVertices returns the vertices sorted lexicographically.
func (g *Undirected) SortedVertices() []string {
	vs := g.Vertices()
	sort.Strings(vs)
	return vs
}

// Neighbors returns v's neighbors sorted lexicographically.
func (g *Undirected) Neighbors(v string) []string {
	var out []string
	for u := range g.adj[v] {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// Degree returns the number of neighbors of v.
func (g *Undirected) Degree(v string) int { return len(g.adj[v]) }

// Clone returns a deep copy.
func (g *Undirected) Clone() *Undirected {
	c := NewUndirected()
	for _, v := range g.order {
		c.AddVertex(v)
	}
	for v, nb := range g.adj {
		for u := range nb {
			c.adj[v][u] = true
		}
	}
	return c
}

// RemoveVertex deletes v and all incident edges.
func (g *Undirected) RemoveVertex(v string) {
	for u := range g.adj[v] {
		delete(g.adj[u], v)
	}
	delete(g.adj, v)
	for i, w := range g.order {
		if w == v {
			g.order = append(g.order[:i], g.order[i+1:]...)
			break
		}
	}
}

// Induced returns the subgraph induced by keep.
func (g *Undirected) Induced(keep []string) *Undirected {
	in := make(map[string]bool, len(keep))
	for _, v := range keep {
		in[v] = true
	}
	c := NewUndirected()
	for _, v := range g.order {
		if in[v] {
			c.AddVertex(v)
		}
	}
	for _, v := range keep {
		for u := range g.adj[v] {
			if in[u] {
				c.AddEdge(v, u)
			}
		}
	}
	return c
}

// Complement returns the complement graph on the same vertex set.
func (g *Undirected) Complement() *Undirected {
	c := NewUndirected()
	for _, v := range g.order {
		c.AddVertex(v)
	}
	for i, v := range g.order {
		for _, u := range g.order[i+1:] {
			if !g.adj[v][u] {
				c.AddEdge(v, u)
			}
		}
	}
	return c
}

// IsClique reports whether the given vertices are pairwise adjacent.
func (g *Undirected) IsClique(vs []string) bool {
	for i, v := range vs {
		for _, u := range vs[i+1:] {
			if !g.adj[v][u] {
				return false
			}
		}
	}
	return true
}

// ConnectedComponents returns the vertex sets of the connected components,
// each sorted, in order of smallest member.
func (g *Undirected) ConnectedComponents() [][]string {
	seen := make(map[string]bool, len(g.adj))
	var comps [][]string
	for _, start := range g.SortedVertices() {
		if seen[start] {
			continue
		}
		var comp []string
		stack := []string{start}
		seen[start] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for _, u := range g.Neighbors(v) {
				if !seen[u] {
					seen[u] = true
					stack = append(stack, u)
				}
			}
		}
		sort.Strings(comp)
		comps = append(comps, comp)
	}
	return comps
}

func (g *Undirected) String() string {
	return fmt.Sprintf("graph{%d vertices, %d edges}", g.NumVertices(), g.NumEdges())
}
