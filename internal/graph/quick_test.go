package graph

import (
	"fmt"
	"testing"
	"testing/quick"
)

// fromMask builds a graph on n vertices whose edges are the bits of mask.
func fromMask(n int, mask uint64) *Undirected {
	g := NewUndirected()
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = fmt.Sprintf("v%02d", i)
		g.AddVertex(names[i])
	}
	bit := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if mask&(1<<uint(bit%64)) != 0 {
				g.AddEdge(names[i], names[j])
			}
			bit++
		}
	}
	return g
}

// Complement is an involution on the edge set.
func TestComplementInvolutionQuick(t *testing.T) {
	prop := func(mask uint64, nn uint8) bool {
		n := int(nn%6) + 2
		g := fromMask(n, mask)
		cc := g.Complement().Complement()
		if cc.NumEdges() != g.NumEdges() {
			return false
		}
		for _, u := range g.Vertices() {
			for _, v := range g.Vertices() {
				if u != v && g.HasEdge(u, v) != cc.HasEdge(u, v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Clone produces an equal, independent graph.
func TestCloneEqualQuick(t *testing.T) {
	prop := func(mask uint64, nn uint8) bool {
		n := int(nn%6) + 2
		g := fromMask(n, mask)
		c := g.Clone()
		if c.NumVertices() != g.NumVertices() || c.NumEdges() != g.NumEdges() {
			return false
		}
		for _, u := range g.Vertices() {
			for _, v := range g.Vertices() {
				if u != v && g.HasEdge(u, v) != c.HasEdge(u, v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Greedy coloring in any order is proper, and for chordal graphs the
// optimal chordal coloring never uses more colors than greedy.
func TestGreedyProperQuick(t *testing.T) {
	prop := func(mask uint64, nn uint8) bool {
		n := int(nn%6) + 2
		g := fromMask(n, mask)
		colors, err := g.GreedyColor(g.SortedVertices())
		if err != nil {
			return false
		}
		if err := g.VerifyColoring(colors); err != nil {
			return false
		}
		if g.IsChordal() {
			opt, err := g.OptimalChordalColor()
			if err != nil {
				return false
			}
			if NumColors(opt) > NumColors(colors) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// CliquePartition always yields a valid partition.
func TestCliquePartitionQuick(t *testing.T) {
	prop := func(mask uint64, nn uint8) bool {
		n := int(nn%6) + 2
		g := fromMask(n, mask)
		part := g.CliquePartition(nil)
		return g.VerifyCliquePartition(part) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
