package graph

import (
	"reflect"
	"testing"
)

// path returns the path graph a-b-c-d.
func path() *Undirected {
	g := NewUndirected()
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	g.AddEdge("c", "d")
	return g
}

// k4 returns the complete graph on {a,b,c,d}.
func k4() *Undirected {
	g := NewUndirected()
	vs := []string{"a", "b", "c", "d"}
	for i, u := range vs {
		for _, v := range vs[i+1:] {
			g.AddEdge(u, v)
		}
	}
	return g
}

// c4 returns the 4-cycle a-b-c-d-a (not chordal).
func c4() *Undirected {
	g := NewUndirected()
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	g.AddEdge("c", "d")
	g.AddEdge("d", "a")
	return g
}

func TestBasicOps(t *testing.T) {
	g := path()
	if g.NumVertices() != 4 || g.NumEdges() != 3 {
		t.Fatalf("got %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
	if !g.HasEdge("a", "b") || !g.HasEdge("b", "a") {
		t.Error("edge a-b missing or asymmetric")
	}
	if g.HasEdge("a", "c") {
		t.Error("phantom edge a-c")
	}
	g.AddEdge("a", "a") // self loop ignored
	if g.HasEdge("a", "a") {
		t.Error("self loop stored")
	}
	g.AddEdge("a", "b") // duplicate ignored
	if g.NumEdges() != 3 {
		t.Error("duplicate edge changed count")
	}
	if got := g.Neighbors("b"); !reflect.DeepEqual(got, []string{"a", "c"}) {
		t.Errorf("Neighbors(b) = %v", got)
	}
	if g.Degree("b") != 2 || g.Degree("a") != 1 {
		t.Error("bad degrees")
	}
}

func TestRemoveVertex(t *testing.T) {
	g := path()
	g.RemoveVertex("b")
	if g.HasVertex("b") || g.HasEdge("a", "b") || g.HasEdge("c", "b") {
		t.Error("b not fully removed")
	}
	if g.NumVertices() != 3 || g.NumEdges() != 1 {
		t.Errorf("after removal: %v", g)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := path()
	c := g.Clone()
	c.AddEdge("a", "d")
	if g.HasEdge("a", "d") {
		t.Error("clone shares adjacency")
	}
	c.RemoveVertex("a")
	if !g.HasVertex("a") {
		t.Error("clone shares vertex list")
	}
}

func TestInducedAndComplement(t *testing.T) {
	g := k4()
	sub := g.Induced([]string{"a", "b", "c"})
	if sub.NumVertices() != 3 || sub.NumEdges() != 3 {
		t.Errorf("induced K3: %v", sub)
	}
	comp := path().Complement()
	if !comp.HasEdge("a", "c") || comp.HasEdge("a", "b") {
		t.Error("complement wrong")
	}
}

func TestIsClique(t *testing.T) {
	g := k4()
	if !g.IsClique([]string{"a", "b", "c", "d"}) {
		t.Error("K4 not recognized as clique")
	}
	p := path()
	if p.IsClique([]string{"a", "b", "c"}) {
		t.Error("path accepted as clique")
	}
	if !p.IsClique([]string{"a"}) || !p.IsClique(nil) {
		t.Error("trivial cliques rejected")
	}
}

func TestConnectedComponents(t *testing.T) {
	g := path()
	g.AddEdge("x", "y")
	g.AddVertex("lone")
	comps := g.ConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("got %d components: %v", len(comps), comps)
	}
	if !reflect.DeepEqual(comps[0], []string{"a", "b", "c", "d"}) {
		t.Errorf("comp0 = %v", comps[0])
	}
	if !reflect.DeepEqual(comps[1], []string{"lone"}) {
		t.Errorf("comp1 = %v", comps[1])
	}
}

func TestSimplicial(t *testing.T) {
	g := path()
	if !g.IsSimplicial("a") || !g.IsSimplicial("d") {
		t.Error("path endpoints should be simplicial")
	}
	if g.IsSimplicial("b") {
		t.Error("internal path vertex should not be simplicial")
	}
	if got := g.SimplicialVertices(); !reflect.DeepEqual(got, []string{"a", "d"}) {
		t.Errorf("SimplicialVertices = %v", got)
	}
	// Every vertex of a complete graph is simplicial.
	if got := k4().SimplicialVertices(); len(got) != 4 {
		t.Errorf("K4 simplicial = %v", got)
	}
}

func TestPVES(t *testing.T) {
	g := path()
	scheme, err := g.PVES(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.VerifyPVES(scheme); err != nil {
		t.Errorf("invalid PVES %v: %v", scheme, err)
	}
	// C4 is not chordal.
	if _, err := c4().PVES(nil); err == nil {
		t.Error("PVES succeeded on C4")
	}
	if c4().IsChordal() {
		t.Error("C4 reported chordal")
	}
	if !k4().IsChordal() || !path().IsChordal() {
		t.Error("chordal graphs rejected")
	}
}

func TestPVESPriority(t *testing.T) {
	// Both endpoints of the path are simplicial; priority must pick d first.
	g := path()
	pri := map[string]int{"a": 2, "b": 0, "c": 0, "d": 1}
	scheme, err := g.PVES(func(v string) int { return pri[v] })
	if err != nil {
		t.Fatal(err)
	}
	if scheme[0] != "d" {
		t.Errorf("scheme = %v, want d first", scheme)
	}
	if err := g.VerifyPVES(scheme); err != nil {
		t.Error(err)
	}
}

func TestVerifyPVESErrors(t *testing.T) {
	g := path()
	if err := g.VerifyPVES([]string{"a"}); err == nil {
		t.Error("short scheme accepted")
	}
	if err := g.VerifyPVES([]string{"a", "a", "b", "c"}); err == nil {
		t.Error("repeated vertex accepted")
	}
	if err := g.VerifyPVES([]string{"b", "a", "c", "d"}); err == nil {
		t.Error("non-simplicial elimination accepted")
	}
	if err := g.VerifyPVES([]string{"z", "a", "b", "c"}); err == nil {
		t.Error("foreign vertex accepted")
	}
}

func TestMaximalCliques(t *testing.T) {
	g := path()
	cliques, err := g.MaximalCliquesChordal()
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"a", "b"}, {"b", "c"}, {"c", "d"}}
	if !reflect.DeepEqual(cliques, want) {
		t.Errorf("cliques = %v, want %v", cliques, want)
	}
	k, err := k4().MaximalCliquesChordal()
	if err != nil {
		t.Fatal(err)
	}
	if len(k) != 1 || len(k[0]) != 4 {
		t.Errorf("K4 cliques = %v", k)
	}
}

func TestMaxCliquePerVertex(t *testing.T) {
	// Triangle abc plus pendant d on c.
	g := NewUndirected()
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	g.AddEdge("a", "c")
	g.AddEdge("c", "d")
	mcs, err := g.MaxCliquePerVertex()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"a": 3, "b": 3, "c": 3, "d": 2}
	if !reflect.DeepEqual(mcs, want) {
		t.Errorf("MCS = %v, want %v", mcs, want)
	}
}

func TestGreedyColor(t *testing.T) {
	g := path()
	colors, err := g.GreedyColor([]string{"a", "b", "c", "d"})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.VerifyColoring(colors); err != nil {
		t.Error(err)
	}
	if NumColors(colors) != 2 {
		t.Errorf("path colored with %d colors", NumColors(colors))
	}
}

func TestGreedyColorErrors(t *testing.T) {
	g := path()
	if _, err := g.GreedyColor([]string{"a", "b"}); err == nil {
		t.Error("short order accepted")
	}
	if _, err := g.GreedyColor([]string{"a", "a", "b", "c"}); err == nil {
		t.Error("dup order accepted")
	}
	if _, err := g.GreedyColor([]string{"a", "b", "c", "z"}); err == nil {
		t.Error("foreign vertex accepted")
	}
}

func TestOptimalChordalColor(t *testing.T) {
	g := k4()
	colors, err := g.OptimalChordalColor()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.VerifyColoring(colors); err != nil {
		t.Error(err)
	}
	if NumColors(colors) != 4 {
		t.Errorf("K4 colored with %d colors, want 4", NumColors(colors))
	}
	p, err := path().OptimalChordalColor()
	if err != nil {
		t.Fatal(err)
	}
	if NumColors(p) != 2 {
		t.Errorf("path colored with %d colors, want 2", NumColors(p))
	}
}

func TestVerifyColoring(t *testing.T) {
	g := path()
	bad := map[string]int{"a": 0, "b": 0, "c": 1, "d": 0}
	if err := g.VerifyColoring(bad); err == nil {
		t.Error("improper coloring accepted")
	}
	if err := g.VerifyColoring(map[string]int{"a": 0}); err == nil {
		t.Error("partial coloring accepted")
	}
}

func TestColorClasses(t *testing.T) {
	classes := ColorClasses(map[string]int{"a": 0, "b": 1, "c": 0})
	want := [][]string{{"a", "c"}, {"b"}}
	if !reflect.DeepEqual(classes, want) {
		t.Errorf("classes = %v", classes)
	}
}

func TestCliquePartitionUnweighted(t *testing.T) {
	// Compatibility graph: {a,b,c} mutually compatible, d compatible with
	// nothing → expect 2 cliques.
	g := NewUndirected()
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	g.AddEdge("a", "c")
	g.AddVertex("d")
	part := g.CliquePartition(nil)
	if err := g.VerifyCliquePartition(part); err != nil {
		t.Fatal(err)
	}
	if len(part) != 2 {
		t.Errorf("partition = %v, want 2 cliques", part)
	}
}

func TestCliquePartitionWeighted(t *testing.T) {
	// a compatible with b and c; b,c incompatible. Weight drives a to c.
	g := NewUndirected()
	g.AddEdge("a", "b")
	g.AddEdge("a", "c")
	w := func(u, v string) int {
		if (u == "a" && v == "c") || (u == "c" && v == "a") {
			return 10
		}
		return 1
	}
	part := g.CliquePartition(w)
	if err := g.VerifyCliquePartition(part); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range part {
		if len(c) == 2 && c[0] == "a" && c[1] == "c" {
			found = true
		}
	}
	if !found {
		t.Errorf("weighted partition = %v, want {a,c} together", part)
	}
}

func TestVerifyCliquePartitionErrors(t *testing.T) {
	g := path()
	if err := g.VerifyCliquePartition([][]string{{"a", "c"}, {"b"}, {"d"}}); err == nil {
		t.Error("non-clique cluster accepted")
	}
	if err := g.VerifyCliquePartition([][]string{{"a", "b"}, {"b"}, {"c"}, {"d"}}); err == nil {
		t.Error("duplicated vertex accepted")
	}
	if err := g.VerifyCliquePartition([][]string{{"a", "b"}}); err == nil {
		t.Error("missing vertices accepted")
	}
}

// Property: conflict graphs of random interval sets are chordal, their
// optimal coloring equals the max point density, and PVES verification
// accepts the scheme.
func TestRandomIntervalGraphProperties(t *testing.T) {
	lcg := uint64(12345)
	next := func(n int) int {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		return int(lcg>>33) % n
	}
	for trial := 0; trial < 30; trial++ {
		nIv := 5 + next(12)
		type iv struct{ lo, hi int }
		ivs := make([]iv, nIv)
		for i := range ivs {
			lo := next(20)
			ivs[i] = iv{lo, lo + 1 + next(6)}
		}
		g := NewUndirected()
		names := make([]string, nIv)
		for i := range ivs {
			names[i] = string(rune('A'+i%26)) + string(rune('a'+i/26))
			g.AddVertex(names[i])
		}
		for i := range ivs {
			for j := i + 1; j < nIv; j++ {
				if ivs[i].lo < ivs[j].hi && ivs[j].lo < ivs[i].hi {
					g.AddEdge(names[i], names[j])
				}
			}
		}
		if !g.IsChordal() {
			t.Fatalf("trial %d: interval graph not chordal", trial)
		}
		scheme, err := g.PVES(nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.VerifyPVES(scheme); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		colors, err := g.OptimalChordalColor()
		if err != nil {
			t.Fatal(err)
		}
		if err := g.VerifyColoring(colors); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Max density = chromatic number for interval graphs.
		maxDens := 0
		for p := 0; p < 30; p++ {
			d := 0
			for _, v := range ivs {
				if v.lo <= p && p < v.hi {
					d++
				}
			}
			if d > maxDens {
				maxDens = d
			}
		}
		if NumColors(colors) != maxDens {
			t.Errorf("trial %d: %d colors, density %d", trial, NumColors(colors), maxDens)
		}
	}
}
