// Package baselines models the two prior synthesis-for-BIST systems the
// paper compares against in Table III:
//
//   - RALLOC (Avra, ISCAS'91): register allocation that minimizes the
//     number of self-adjacent registers, spending extra registers to do
//     so; every module-adjacent register becomes a BILBO and every
//     remaining self-adjacent register a CBILBO.
//   - SYNTEST (Papachristou/Harmanani): allocation constrained to a
//     self-testable template in which no register may be both an input
//     and an output register of the same module, so plain TPGs and SAs
//     suffice.
//
// Both are reimplementations in spirit (the original tools are closed);
// see DESIGN.md §3.
package baselines

import (
	"sort"

	"bistpath/internal/area"
	"bistpath/internal/dfg"
	"bistpath/internal/modassign"
	"bistpath/internal/regassign"
)

// Result is a baseline allocation with its BIST register styles.
type Result struct {
	System  string
	Binding *regassign.Binding
	Styles  map[string]area.Style
}

// StyleCount tallies registers per non-normal style.
func (r *Result) StyleCount() map[area.Style]int {
	out := make(map[area.Style]int)
	for _, s := range r.Styles {
		if s != area.Normal {
			out[s]++
		}
	}
	return out
}

// adjacency summarizes a register's relation to the modules.
type adjacency struct {
	input  bool // holds an input variable of some module
	output bool // holds an output variable of some module
	self   bool // holds an input and an output variable of the same module
}

func adjacencyOf(sh *regassign.Sharing, vars []string) adjacency {
	var a adjacency
	for _, m := range sh.Modules {
		in, out := false, false
		for _, v := range vars {
			if sh.In[m][v] {
				in = true
			}
			if sh.Out[m][v] {
				out = true
			}
		}
		a.input = a.input || in
		a.output = a.output || out
		a.self = a.self || (in && out)
	}
	return a
}

// selfAdjCount counts registers self-adjacent to some module.
func selfAdjCount(sh *regassign.Sharing, regs [][]string) int {
	n := 0
	for _, r := range regs {
		if adjacencyOf(sh, r).self {
			n++
		}
	}
	return n
}

// colorAvoiding colors the conflict graph in reverse lexicographic-PVES
// order; for each vertex it picks the first candidate register whose
// extension does not increase `penalty`, opening a new register when all
// candidates do (this is how both baselines trade registers for their
// respective structural constraints).
func colorAvoiding(g *dfg.Graph, penalty func(regs [][]string) int) (*regassign.Binding, error) {
	cg, err := regassign.ConflictGraph(g)
	if err != nil {
		return nil, err
	}
	scheme, err := cg.PVES(nil)
	if err != nil {
		return nil, err
	}
	conf, err := g.Conflicts()
	if err != nil {
		return nil, err
	}
	var regs [][]string
	for i := len(scheme) - 1; i >= 0; i-- {
		v := scheme[i]
		chosen := -1
		base := penalty(regs)
		for ri, r := range regs {
			ok := true
			for _, u := range r {
				if conf[v][u] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			trial := make([][]string, len(regs))
			copy(trial, regs)
			trial[ri] = append(append([]string(nil), r...), v)
			if penalty(trial) <= base {
				chosen = ri
				break
			}
		}
		if chosen >= 0 {
			regs[chosen] = append(regs[chosen], v)
		} else {
			regs = append(regs, []string{v})
		}
	}
	return regassign.FromSets(regs), nil
}

// RALLOC runs the Avra-style flow: minimize self-adjacent registers,
// then map every module-adjacent register to a BILBO and every
// self-adjacent one to a CBILBO.
func RALLOC(g *dfg.Graph, mb *modassign.Binding) (*Result, error) {
	sh := regassign.NewSharing(g, mb)
	rb, err := colorAvoiding(g, func(regs [][]string) int { return selfAdjCount(sh, regs) })
	if err != nil {
		return nil, err
	}
	if err := rb.Validate(g); err != nil {
		return nil, err
	}
	styles := make(map[string]area.Style)
	for _, r := range rb.Registers {
		a := adjacencyOf(sh, r.Vars)
		switch {
		case a.self:
			styles[r.Name] = area.CBILBO
		case a.input && a.output:
			styles[r.Name] = area.BILBO
		case a.input:
			styles[r.Name] = area.TPG
		case a.output:
			styles[r.Name] = area.SA
		}
	}
	return &Result{System: "RALLOC", Binding: rb, Styles: styles}, nil
}

// SYNTEST runs the template-style flow: allocation forbids any register
// from being self-adjacent (spending registers as needed); input
// registers become TPGs, output registers SAs, registers that are both
// (for different modules) TPG/SA BILBOs.
func SYNTEST(g *dfg.Graph, mb *modassign.Binding) (*Result, error) {
	sh := regassign.NewSharing(g, mb)
	rb, err := colorAvoiding(g, func(regs [][]string) int { return selfAdjCount(sh, regs) })
	if err != nil {
		return nil, err
	}
	if err := rb.Validate(g); err != nil {
		return nil, err
	}
	styles := make(map[string]area.Style)
	for _, r := range rb.Registers {
		a := adjacencyOf(sh, r.Vars)
		switch {
		case a.self:
			// The template cannot express self-adjacency; the '93
			// extension handles one configuration with a BILBO pair.
			styles[r.Name] = area.BILBO
		case a.input && a.output:
			styles[r.Name] = area.BILBO
		case a.input:
			styles[r.Name] = area.TPG
		case a.output:
			styles[r.Name] = area.SA
		}
	}
	return &Result{System: "SYNTEST", Binding: rb, Styles: styles}, nil
}

// PaulinSyntestModules is the 3-ALU module allocation (reconstructing
// Table III's "(+*), (>*-), (*+)") used for the SYNTEST comparison row.
func PaulinSyntestModules() map[string]string {
	return map[string]string{
		"a1": "ALU1", "m4": "ALU1", "m6": "ALU1", "s2": "ALU1",
		"m1": "ALU2", "cmp": "ALU2", "s1": "ALU2", "m5": "ALU2",
		"m2": "ALU3", "m3": "ALU3", "a2": "ALU3",
	}
}

// SortedStyleNames renders a style count map deterministically.
func SortedStyleNames(counts map[area.Style]int) []string {
	var out []string
	for s, n := range counts {
		for i := 0; i < n; i++ {
			out = append(out, s.String())
		}
	}
	sort.Strings(out)
	return out
}
