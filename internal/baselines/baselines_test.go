package baselines

import (
	"testing"

	"bistpath/internal/area"
	"bistpath/internal/benchdata"
	"bistpath/internal/modassign"
	"bistpath/internal/regassign"
)

func TestRALLOCOnPaulin(t *testing.T) {
	b := benchdata.Paulin()
	mb, err := b.Modules()
	if err != nil {
		t.Fatal(err)
	}
	r, err := RALLOC(b.Graph, mb)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Binding.Validate(b.Graph); err != nil {
		t.Fatal(err)
	}
	ours, err := regassign.Bind(b.Graph, mb, regassign.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Table III shape: RALLOC spends more registers than our binder and
	// ends BILBO-heavy with at least one CBILBO.
	if r.Binding.NumRegisters() <= ours.NumRegisters() {
		t.Errorf("RALLOC used %d registers, ours %d (paper: 5 vs 4)",
			r.Binding.NumRegisters(), ours.NumRegisters())
	}
	counts := r.StyleCount()
	if counts[area.CBILBO] < 1 {
		t.Errorf("RALLOC should keep >=1 CBILBO (Paulin has intra-module chains): %v", counts)
	}
	if counts[area.BILBO] < counts[area.TPG]+counts[area.SA] {
		t.Errorf("RALLOC should be BILBO-dominated: %v", counts)
	}
}

func TestSYNTESTOnPaulin(t *testing.T) {
	b := benchdata.Paulin()
	smb, err := modassign.FromMap(b.Graph, PaulinSyntestModules())
	if err != nil {
		t.Fatal(err)
	}
	r, err := SYNTEST(b.Graph, smb)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Binding.Validate(b.Graph); err != nil {
		t.Fatal(err)
	}
	// Table III shape: SYNTEST avoids CBILBOs entirely.
	if r.StyleCount()[area.CBILBO] != 0 {
		t.Errorf("SYNTEST produced CBILBOs: %v", r.StyleCount())
	}
}

func TestPaulinSyntestModulesValid(t *testing.T) {
	b := benchdata.Paulin()
	mb, err := modassign.FromMap(b.Graph, PaulinSyntestModules())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(mb.Modules); got != 3 {
		t.Errorf("SYNTEST allocation has %d modules, want 3 ALUs", got)
	}
	// The template requires no intra-module chaining: no variable may be
	// both an input and an output of the same ALU.
	sh := regassign.NewSharing(b.Graph, mb)
	for _, m := range sh.Modules {
		for v := range sh.In[m] {
			if sh.Out[m][v] {
				t.Errorf("variable %s chains within %s (template violated)", v, m)
			}
		}
	}
}

func TestBaselinesOnAllBenchmarks(t *testing.T) {
	for _, b := range benchdata.All() {
		mb, err := b.Modules()
		if err != nil {
			t.Fatal(err)
		}
		r, err := RALLOC(b.Graph, mb)
		if err != nil {
			t.Fatalf("%s RALLOC: %v", b.Name, err)
		}
		if err := r.Binding.Validate(b.Graph); err != nil {
			t.Errorf("%s RALLOC: %v", b.Name, err)
		}
		s, err := SYNTEST(b.Graph, mb)
		if err != nil {
			t.Fatalf("%s SYNTEST: %v", b.Name, err)
		}
		if err := s.Binding.Validate(b.Graph); err != nil {
			t.Errorf("%s SYNTEST: %v", b.Name, err)
		}
		// Styles must only name real registers.
		for _, res := range []*Result{r, s} {
			for reg := range res.Styles {
				if res.Binding.Register(reg) == nil {
					t.Errorf("%s %s: style for unknown register %s", b.Name, res.System, reg)
				}
			}
		}
	}
}

func TestSortedStyleNames(t *testing.T) {
	got := SortedStyleNames(map[area.Style]int{area.CBILBO: 1, area.TPG: 2})
	if len(got) != 3 || got[0] != "CBILBO" || got[1] != "TPG" {
		t.Errorf("SortedStyleNames = %v", got)
	}
}
