package datapath

import (
	"fmt"
	"strings"

	"bistpath/internal/interconnect"
)

// Simulate executes the control program on concrete input values and
// returns the value of every primary output. Values are read from
// registers (or pads) exactly as the netlist is wired, so a successful
// comparison against dfg.Eval exercises the module, register and
// interconnect bindings end to end.
func (dp *Datapath) Simulate(inputs map[string]uint64) (map[string]uint64, error) {
	mask := ^uint64(0)
	if dp.Width < 64 {
		mask = (uint64(1) << uint(dp.Width)) - 1
	}
	pads := make(map[string]uint64)
	for _, p := range dp.InPads {
		name := strings.TrimPrefix(p, interconnect.PadSource)
		v, ok := inputs[name]
		if !ok {
			return nil, fmt.Errorf("datapath %s: missing input %q", dp.Name, name)
		}
		pads[p] = v & mask
	}
	regs := make(map[string]uint64, len(dp.Regs))
	read := func(src string) uint64 {
		if interconnect.IsPad(src) {
			return pads[src]
		}
		return regs[src]
	}
	lts, err := dp.graph.Lifetimes()
	if err != nil {
		return nil, err
	}
	outs := make(map[string]uint64)
	for _, st := range dp.Steps {
		// Combinational phase: evaluate all module operations from the
		// current register/pad values.
		type write struct {
			reg string
			val uint64
		}
		var writes []write
		for _, mo := range st.Ops {
			val := applyMicro(mo, read(mo.LeftSrc), read(mo.RightSrc), mask)
			writes = append(writes, write{mo.DestReg, val})
		}
		for _, ld := range st.Loads {
			writes = append(writes, write{ld.Reg, pads[ld.Pad]})
		}
		// Clock edge: latch.
		for _, w := range writes {
			regs[w.reg] = w.val
		}
		// Sample primary outputs from the registers right after the edge
		// that latched them (the environment reads them next step).
		for _, o := range dp.Outputs {
			if lts[o].Born == st.N {
				reg := dp.registerHolding(o)
				if reg == "" {
					return nil, fmt.Errorf("datapath %s: output %q bound to no register", dp.Name, o)
				}
				outs[o] = regs[reg]
			}
		}
	}
	return outs, nil
}

func (dp *Datapath) registerHolding(varName string) string {
	for _, r := range dp.Regs {
		for _, v := range r.Vars {
			if v == varName {
				return r.Name
			}
		}
	}
	return ""
}

func applyMicro(mo MicroOp, a, b, mask uint64) uint64 {
	var r uint64
	switch mo.Kind {
	case "+":
		r = a + b
	case "-":
		r = a - b
	case "*":
		r = a * b
	case "/":
		if b == 0 {
			r = mask
		} else {
			r = a / b
		}
	case "&":
		r = a & b
	case "|":
		r = a | b
	case "^":
		r = a ^ b
	case "<":
		if a < b {
			r = 1
		}
	case ">":
		if a > b {
			r = 1
		}
	}
	return r & mask
}

// CheckAgainstDFG simulates the data path on the given inputs and
// compares every primary output against direct DFG evaluation, returning
// an error describing the first mismatch.
func (dp *Datapath) CheckAgainstDFG(inputs map[string]uint64) error {
	want, err := dp.graph.Eval(inputs, dp.Width)
	if err != nil {
		return err
	}
	got, err := dp.Simulate(inputs)
	if err != nil {
		return err
	}
	for _, o := range dp.Outputs {
		if got[o] != want[o] {
			return fmt.Errorf("datapath %s: output %s = %d, DFG says %d (inputs %v)",
				dp.Name, o, got[o], want[o], inputs)
		}
	}
	return nil
}
