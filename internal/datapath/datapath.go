// Package datapath materializes an allocation (module + register +
// interconnect bindings) into an RTL data-path netlist: registers,
// functional modules, multiplexers and the per-step control program. It
// also provides structural validation, I-path queries for the BIST
// optimizer, and a cycle simulator that checks the bound data path
// against direct DFG evaluation.
package datapath

import (
	"fmt"
	"sort"
	"strings"

	"bistpath/internal/dfg"
	"bistpath/internal/interconnect"
	"bistpath/internal/modassign"
	"bistpath/internal/regassign"
)

// Module is a functional module with its port connectivity.
type Module struct {
	Name  string
	Kinds []dfg.Kind
	Left  []string // sources wired to the left port (registers or pads), sorted
	Right []string // sources wired to the right port, sorted
	Dests []string // registers latching the module output, sorted
}

// Register is a storage element with its data sources.
type Register struct {
	Name    string
	Vars    []string // variables bound to it, sorted
	Sources []string // modules and pads that load it, sorted
}

// MicroOp is one operation execution in the control program.
type MicroOp struct {
	Op       string
	Kind     dfg.Kind
	Module   string
	LeftSrc  string // register or pad supplying the left operand
	RightSrc string // register or pad supplying the right operand ("" for unary)
	DestReg  string // register latching the result
}

// Load is an input-pad-to-register transfer at the end of a step.
type Load struct {
	Reg string
	Pad string // "in:<var>"
	Var string
}

// Step is the activity of one control step. Step 0 carries only the
// initial input loads.
type Step struct {
	N     int
	Ops   []MicroOp
	Loads []Load
}

// Datapath is the complete netlist plus control program.
type Datapath struct {
	Name    string
	Width   int
	Regs    []*Register
	Modules []*Module
	InPads  []string // pad identifiers ("in:<var>"), sorted
	Outputs []string // primary output variable names, sorted
	Steps   []Step   // index = control step (0..NumSteps)

	graph *dfg.Graph
	regIx map[string]*Register
	modIx map[string]*Module
}

// Register returns the named register, or nil.
func (dp *Datapath) Register(name string) *Register { return dp.regIx[name] }

// Module returns the named module, or nil.
func (dp *Datapath) Module(name string) *Module { return dp.modIx[name] }

// Graph returns the DFG the data path implements.
func (dp *Datapath) Graph() *dfg.Graph { return dp.graph }

// Build constructs the netlist for a complete set of bindings.
func Build(g *dfg.Graph, mb *modassign.Binding, rb *regassign.Binding, ib *interconnect.Binding, width int) (*Datapath, error) {
	if width <= 0 || width > 64 {
		return nil, fmt.Errorf("datapath: width %d out of range [1,64]", width)
	}
	lts, err := g.Lifetimes()
	if err != nil {
		return nil, err
	}
	dp := &Datapath{
		Name:  g.Name,
		Width: width,
		graph: g,
		regIx: make(map[string]*Register),
		modIx: make(map[string]*Module),
	}
	// Registers.
	regSrcs := interconnect.RegisterSources(g, mb, rb)
	for _, r := range rb.Registers {
		nr := &Register{Name: r.Name, Vars: append([]string(nil), r.Vars...), Sources: regSrcs[r.Name]}
		dp.Regs = append(dp.Regs, nr)
		dp.regIx[nr.Name] = nr
	}
	// Modules.
	for _, m := range mb.Modules {
		left, right := interconnect.PortSources(g, mb, rb, ib, m.Name)
		dests := make(map[string]bool)
		for _, opName := range m.Ops {
			dests[rb.RegisterOf(g.Op(opName).Result)] = true
		}
		nm := &Module{
			Name:  m.Name,
			Kinds: append([]dfg.Kind(nil), m.Class.Kinds...),
			Left:  left,
			Right: right,
			Dests: sortedKeys(dests),
		}
		dp.Modules = append(dp.Modules, nm)
		dp.modIx[nm.Name] = nm
	}
	// Pads.
	pads := make(map[string]bool)
	for _, v := range g.Vars() {
		if v.IsInput {
			pads[interconnect.PadSource+v.Name] = true
		}
	}
	dp.InPads = sortedKeys(pads)
	dp.Outputs = g.Outputs()
	// Control program.
	dp.Steps = buildSteps(g, mb, rb, ib, lts)
	return dp, dp.Validate()
}

// buildSteps derives the control program — the one part of the netlist
// that depends on the schedule — from the graph and bindings.
func buildSteps(g *dfg.Graph, mb *modassign.Binding, rb *regassign.Binding, ib *interconnect.Binding, lts map[string]dfg.Lifetime) []Step {
	n := g.NumSteps()
	steps := make([]Step, n+1)
	for s := 0; s <= n; s++ {
		steps[s].N = s
	}
	for _, op := range g.Ops() {
		l, r := ib.OperandSources(g, rb, op)
		mo := MicroOp{
			Op:      op.Name,
			Kind:    op.Kind,
			Module:  mb.ModuleOf(op.Name).Name,
			LeftSrc: l,
			DestReg: rb.RegisterOf(op.Result),
		}
		if op.Binary() {
			mo.RightSrc = r
		}
		steps[op.Step].Ops = append(steps[op.Step].Ops, mo)
	}
	for _, v := range g.Vars() {
		if !v.IsInput || v.IsPort {
			continue
		}
		born := lts[v.Name].Born
		steps[born].Loads = append(steps[born].Loads, Load{
			Reg: rb.RegisterOf(v.Name),
			Pad: interconnect.PadSource + v.Name,
			Var: v.Name,
		})
	}
	for s := range steps {
		ops := steps[s].Ops
		sort.Slice(ops, func(i, j int) bool { return ops[i].Op < ops[j].Op })
		lds := steps[s].Loads
		sort.Slice(lds, func(i, j int) bool { return lds[i].Var < lds[j].Var })
	}
	return steps
}

// WithSchedule returns a copy of dp re-targeted at g: the same netlist
// (registers, modules and pads are shared, not copied) with only the
// control program rebuilt from g's schedule. It is the incremental
// re-synthesis layer's datapath phase for edits that change nothing but
// control steps: the caller must guarantee g is structurally identical
// to the graph dp was built from — same operations, operand wiring,
// port marks and bindings — which the Session proves by fingerprint
// before taking this path.
func (dp *Datapath) WithSchedule(g *dfg.Graph, mb *modassign.Binding, rb *regassign.Binding, ib *interconnect.Binding) (*Datapath, error) {
	lts, err := g.Lifetimes()
	if err != nil {
		return nil, err
	}
	ndp := &Datapath{
		Name:    dp.Name,
		Width:   dp.Width,
		Regs:    dp.Regs,
		Modules: dp.Modules,
		InPads:  dp.InPads,
		Outputs: dp.Outputs,
		Steps:   buildSteps(g, mb, rb, ib, lts),
		graph:   g,
		regIx:   dp.regIx,
		modIx:   dp.modIx,
	}
	return ndp, ndp.Validate()
}

// Validate performs structural checks on the netlist and control program.
func (dp *Datapath) Validate() error {
	for _, m := range dp.Modules {
		if len(m.Left) == 0 {
			return fmt.Errorf("datapath %s: module %s left port has no source", dp.Name, m.Name)
		}
		if len(m.Dests) == 0 {
			return fmt.Errorf("datapath %s: module %s output drives nothing", dp.Name, m.Name)
		}
		for _, d := range m.Dests {
			if dp.regIx[d] == nil {
				return fmt.Errorf("datapath %s: module %s dest %q is not a register", dp.Name, m.Name, d)
			}
		}
		for _, s := range append(append([]string(nil), m.Left...), m.Right...) {
			if !interconnect.IsPad(s) && dp.regIx[s] == nil {
				return fmt.Errorf("datapath %s: module %s port source %q unknown", dp.Name, m.Name, s)
			}
		}
	}
	seenOps := make(map[string]bool)
	for s, st := range dp.Steps {
		written := make(map[string]string)
		for _, mo := range st.Ops {
			if seenOps[mo.Op] {
				return fmt.Errorf("datapath %s: op %s scheduled twice", dp.Name, mo.Op)
			}
			seenOps[mo.Op] = true
			m := dp.modIx[mo.Module]
			if m == nil {
				return fmt.Errorf("datapath %s: op %s on unknown module %s", dp.Name, mo.Op, mo.Module)
			}
			if !contains(m.Left, mo.LeftSrc) {
				return fmt.Errorf("datapath %s: op %s left source %s not wired to %s.L", dp.Name, mo.Op, mo.LeftSrc, m.Name)
			}
			if mo.RightSrc != "" && !contains(m.Right, mo.RightSrc) {
				return fmt.Errorf("datapath %s: op %s right source %s not wired to %s.R", dp.Name, mo.Op, mo.RightSrc, m.Name)
			}
			if !contains(m.Dests, mo.DestReg) {
				return fmt.Errorf("datapath %s: op %s dest %s not wired from %s", dp.Name, mo.Op, mo.DestReg, m.Name)
			}
			if prev, clash := written[mo.DestReg]; clash {
				return fmt.Errorf("datapath %s: step %d writes register %s twice (%s, %s)", dp.Name, s, mo.DestReg, prev, mo.Op)
			}
			written[mo.DestReg] = mo.Op
		}
		for _, ld := range st.Loads {
			if dp.regIx[ld.Reg] == nil {
				return fmt.Errorf("datapath %s: load into unknown register %s", dp.Name, ld.Reg)
			}
			if prev, clash := written[ld.Reg]; clash {
				return fmt.Errorf("datapath %s: step %d writes register %s twice (%s, load %s)", dp.Name, s, ld.Reg, prev, ld.Var)
			}
			written[ld.Reg] = "load:" + ld.Var
		}
	}
	for _, op := range dp.graph.Ops() {
		if !seenOps[op.Name] {
			return fmt.Errorf("datapath %s: op %s missing from control program", dp.Name, op.Name)
		}
	}
	return nil
}

// ModuleDiagonal reports whether every operation executed on the module
// reads the same source on both ports (a squarer-style unit). Such a
// module's ports are never independently exercisable in function mode,
// so a BIST embedding may legitimately drive both ports from one
// pattern generator.
func (dp *Datapath) ModuleDiagonal(name string) bool {
	found := false
	for _, st := range dp.Steps {
		for _, mo := range st.Ops {
			if mo.Module != name {
				continue
			}
			if mo.RightSrc == "" || mo.LeftSrc != mo.RightSrc {
				return false
			}
			found = true
		}
	}
	return found
}

// SelfAdjacent returns the registers that both feed an input port of some
// module and latch that module's output (self-adjacency in the sense of
// Avra's RALLOC), sorted.
func (dp *Datapath) SelfAdjacent() []string {
	set := make(map[string]bool)
	for _, m := range dp.Modules {
		feeds := make(map[string]bool)
		for _, s := range m.Left {
			feeds[s] = true
		}
		for _, s := range m.Right {
			feeds[s] = true
		}
		for _, d := range m.Dests {
			if feeds[d] {
				set[d] = true
			}
		}
	}
	return sortedKeys(set)
}

// MuxStats counts multiplexers: a mux exists at every module port and
// register input with at least two distinct sources.
func (dp *Datapath) MuxStats() (count, extraInputs int) {
	tally := func(n int) {
		if n >= 2 {
			count++
			extraInputs += n - 1
		}
	}
	for _, m := range dp.Modules {
		tally(len(m.Left))
		tally(len(m.Right))
	}
	for _, r := range dp.Regs {
		tally(len(r.Sources))
	}
	return count, extraInputs
}

func contains(list []string, x string) bool {
	for _, s := range list {
		if s == x {
			return true
		}
	}
	return false
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// WriteText emits a human-readable netlist description.
func (dp *Datapath) WriteText(w *strings.Builder) {
	fmt.Fprintf(w, "datapath %s (width %d)\n", dp.Name, dp.Width)
	for _, r := range dp.Regs {
		fmt.Fprintf(w, "  reg %s  vars={%s}  sources={%s}\n", r.Name,
			strings.Join(r.Vars, ","), strings.Join(r.Sources, ","))
	}
	for _, m := range dp.Modules {
		ks := make([]string, len(m.Kinds))
		for i, k := range m.Kinds {
			ks[i] = string(k)
		}
		fmt.Fprintf(w, "  mod %s [%s]  L={%s}  R={%s}  ->{%s}\n", m.Name,
			strings.Join(ks, ""), strings.Join(m.Left, ","),
			strings.Join(m.Right, ","), strings.Join(m.Dests, ","))
	}
	for _, st := range dp.Steps {
		if len(st.Ops) == 0 && len(st.Loads) == 0 {
			continue
		}
		fmt.Fprintf(w, "  step %d:", st.N)
		for _, ld := range st.Loads {
			fmt.Fprintf(w, "  %s<=%s", ld.Reg, ld.Pad)
		}
		for _, mo := range st.Ops {
			if mo.RightSrc != "" {
				fmt.Fprintf(w, "  %s<=%s(%s %s %s)", mo.DestReg, mo.Module, mo.LeftSrc, mo.Kind, mo.RightSrc)
			} else {
				fmt.Fprintf(w, "  %s<=%s(%s %s)", mo.DestReg, mo.Module, mo.Kind, mo.LeftSrc)
			}
		}
		fmt.Fprintln(w)
	}
}

// Text returns the netlist description as a string.
func (dp *Datapath) Text() string {
	var sb strings.Builder
	dp.WriteText(&sb)
	return sb.String()
}

// WriteDot emits a Graphviz structural view: registers as ellipses,
// modules as boxes, pads as plain text, one edge per connection.
func (dp *Datapath) WriteDot(w *strings.Builder) {
	fmt.Fprintf(w, "digraph %q {\n  rankdir=LR;\n", dp.Name)
	for _, r := range dp.Regs {
		fmt.Fprintf(w, "  %q [shape=ellipse,label=\"%s\\n{%s}\"];\n", r.Name, r.Name, strings.Join(r.Vars, ","))
	}
	for _, m := range dp.Modules {
		fmt.Fprintf(w, "  %q [shape=box];\n", m.Name)
		for _, s := range m.Left {
			fmt.Fprintf(w, "  %q -> %q [label=\"L\"];\n", s, m.Name)
		}
		for _, s := range m.Right {
			fmt.Fprintf(w, "  %q -> %q [label=\"R\"];\n", s, m.Name)
		}
		for _, d := range m.Dests {
			fmt.Fprintf(w, "  %q -> %q;\n", m.Name, d)
		}
	}
	for _, p := range dp.InPads {
		fmt.Fprintf(w, "  %q [shape=plaintext];\n", p)
	}
	fmt.Fprintln(w, "}")
}
