package datapath

import (
	"strings"
	"testing"

	"bistpath/internal/benchdata"
	"bistpath/internal/dfg"
	"bistpath/internal/interconnect"
	"bistpath/internal/modassign"
	"bistpath/internal/regassign"
)

// build synthesizes a datapath for a benchmark in the given mode.
func build(t *testing.T, b *benchdata.Benchmark, traditional bool) *Datapath {
	t.Helper()
	mb, err := b.Modules()
	if err != nil {
		t.Fatal(err)
	}
	var rb *regassign.Binding
	if traditional {
		rb, err = regassign.Traditional(b.Graph)
	} else {
		rb, err = regassign.Bind(b.Graph, mb, regassign.DefaultOptions())
	}
	if err != nil {
		t.Fatal(err)
	}
	ib, err := interconnect.Bind(b.Graph, mb, rb, regassign.NewSharing(b.Graph, mb))
	if err != nil {
		t.Fatal(err)
	}
	dp, err := Build(b.Graph, mb, rb, ib, 8)
	if err != nil {
		t.Fatal(err)
	}
	return dp
}

func TestBuildAllBenchmarks(t *testing.T) {
	for _, b := range benchdata.All() {
		for _, trad := range []bool{false, true} {
			dp := build(t, b, trad)
			if err := dp.Validate(); err != nil {
				t.Errorf("%s trad=%v: %v", b.Name, trad, err)
			}
			if len(dp.Regs) == 0 || len(dp.Modules) == 0 {
				t.Errorf("%s: empty netlist", b.Name)
			}
		}
	}
}

func TestBuildWidthRange(t *testing.T) {
	b := benchdata.Ex1()
	mb, _ := b.Modules()
	rb, _ := regassign.Bind(b.Graph, mb, regassign.DefaultOptions())
	ib, _ := interconnect.Bind(b.Graph, mb, rb, nil)
	if _, err := Build(b.Graph, mb, rb, ib, 0); err == nil {
		t.Error("width 0 accepted")
	}
	if _, err := Build(b.Graph, mb, rb, ib, 65); err == nil {
		t.Error("width 65 accepted")
	}
}

func TestSimulateMatchesEvalOnBenchmarks(t *testing.T) {
	for _, b := range benchdata.All() {
		for _, trad := range []bool{false, true} {
			dp := build(t, b, trad)
			vectors := []map[string]uint64{}
			for s := uint64(1); s <= 20; s++ {
				in := make(map[string]uint64)
				for i, name := range b.Graph.Inputs() {
					in[name] = (s*2654435761 + uint64(i)*40503) % 251
				}
				vectors = append(vectors, in)
			}
			for _, in := range vectors {
				if err := dp.CheckAgainstDFG(in); err != nil {
					t.Fatalf("%s trad=%v: %v", b.Name, trad, err)
				}
			}
		}
	}
}

func TestSimulateMatchesEvalOnRandomDFGs(t *testing.T) {
	for seed := int64(100); seed < 130; seed++ {
		g, mb, err := benchdata.RandomWithModules(benchdata.DefaultRandomConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		rb, err := regassign.Bind(g, mb, regassign.DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ib, err := interconnect.Bind(g, mb, rb, regassign.NewSharing(g, mb))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		dp, err := Build(g, mb, rb, ib, 16)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for s := uint64(0); s < 10; s++ {
			in := make(map[string]uint64)
			for i, name := range g.Inputs() {
				in[name] = s*7919 + uint64(i)*104729
			}
			if err := dp.CheckAgainstDFG(in); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
	}
}

func TestSimulateMissingInput(t *testing.T) {
	dp := build(t, benchdata.Ex1(), false)
	if _, err := dp.Simulate(map[string]uint64{"a": 1}); err == nil {
		t.Error("missing inputs accepted")
	}
}

func TestSelfAdjacent(t *testing.T) {
	// t1 = a*b on M, t2 = t1*c on the same M: if t1 and t2 share a
	// register with... construct a guaranteed self-adjacency: t2's
	// result register also feeds M (via t1).
	g := dfg.New("sa")
	g.AddInput("a", "b", "c")
	g.AddOp("m1", dfg.Mul, 1, "t1", "a", "b")
	g.AddOp("m2", dfg.Mul, 2, "t2", "t1", "c")
	g.MarkOutput("t2")
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	mb, err := modassign.FromMap(g, map[string]string{"m1": "M1", "m2": "M1"})
	if err != nil {
		t.Fatal(err)
	}
	// t1 and t2 do not conflict (chained), so they can share a register,
	// which then both feeds M1 (t1 operand) and latches it (both).
	rb := regassign.FromSets([][]string{{"a"}, {"b", "t1", "t2"}, {"c"}})
	if err := rb.Validate(g); err != nil {
		t.Fatal(err)
	}
	ib, err := interconnect.Bind(g, mb, rb, nil)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := Build(g, mb, rb, ib, 8)
	if err != nil {
		t.Fatal(err)
	}
	sa := dp.SelfAdjacent()
	if len(sa) != 1 || sa[0] != "R2" {
		t.Errorf("SelfAdjacent = %v, want [R2]", sa)
	}
}

func TestMuxStats(t *testing.T) {
	dp := build(t, benchdata.Paulin(), false)
	count, extra := dp.MuxStats()
	if count <= 0 || extra < count {
		t.Errorf("MuxStats = %d,%d implausible", count, extra)
	}
}

func TestTextAndDot(t *testing.T) {
	dp := build(t, benchdata.Ex1(), false)
	text := dp.Text()
	for _, want := range []string{"datapath ex1", "reg R1", "mod M1", "step 1:"} {
		if !strings.Contains(text, want) {
			t.Errorf("netlist text missing %q:\n%s", want, text)
		}
	}
	var sb strings.Builder
	dp.WriteDot(&sb)
	if !strings.Contains(sb.String(), "digraph") || !strings.Contains(sb.String(), "M1") {
		t.Error("dot output incomplete")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	dp := build(t, benchdata.Ex1(), false)
	// Corrupt: point a micro-op at a source not wired to the module.
	for si := range dp.Steps {
		if len(dp.Steps[si].Ops) > 0 {
			dp.Steps[si].Ops[0].LeftSrc = "R99"
			break
		}
	}
	if err := dp.Validate(); err == nil {
		t.Error("corrupted control program accepted")
	}
}

func TestPortFedInputsHaveNoLoads(t *testing.T) {
	dp := build(t, benchdata.Paulin(), false)
	for _, st := range dp.Steps {
		for _, ld := range st.Loads {
			if ld.Var == "dx" || ld.Var == "a" || ld.Var == "k3" {
				t.Errorf("port input %s has a register load", ld.Var)
			}
		}
	}
	// But they appear as module port sources.
	found := false
	for _, m := range dp.Modules {
		for _, s := range append(append([]string(nil), m.Left...), m.Right...) {
			if s == "in:dx" {
				found = true
			}
		}
	}
	if !found {
		t.Error("pad in:dx not wired to any module port")
	}
}

func TestModuleDiagonal(t *testing.T) {
	// sq = x*x on M1 (diagonal); m2 = a*b on M2 (not).
	g := dfg.New("diag")
	g.AddInput("x", "a", "b")
	g.AddOp("sq", dfg.Mul, 1, "p", "x", "x")
	g.AddOp("m2", dfg.Mul, 2, "q", "a", "b")
	g.MarkOutput("p", "q")
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	mb, err := modassign.FromMap(g, map[string]string{"sq": "M1", "m2": "M2"})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := regassign.Bind(g, mb, regassign.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ib, err := interconnect.Bind(g, mb, rb, nil)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := Build(g, mb, rb, ib, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !dp.ModuleDiagonal("M1") {
		t.Error("squarer not recognized as diagonal")
	}
	if dp.ModuleDiagonal("M2") {
		t.Error("ordinary multiplier marked diagonal")
	}
	if dp.ModuleDiagonal("nope") {
		t.Error("unknown module marked diagonal")
	}
	// The squarer still computes correctly through the datapath.
	if err := dp.CheckAgainstDFG(map[string]uint64{"x": 13, "a": 5, "b": 7}); err != nil {
		t.Error(err)
	}
}
