package modassign

import (
	"reflect"
	"testing"

	"bistpath/internal/dfg"
)

// twoAdderGraph: two adds in step 1 (need 2 modules), one in step 2.
func twoAdderGraph(t *testing.T) *dfg.Graph {
	t.Helper()
	g := dfg.New("g")
	if err := g.AddInput("a", "b", "c", "d"); err != nil {
		t.Fatal(err)
	}
	g.AddOp("o1", dfg.Add, 1, "x", "a", "b")
	g.AddOp("o2", dfg.Add, 1, "y", "c", "d")
	g.AddOp("o3", dfg.Add, 2, "z", "x", "y")
	if err := g.MarkOutput("z"); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestClassExecutes(t *testing.T) {
	alu := ALUClass(dfg.Add, dfg.Sub, dfg.Or)
	if !alu.Executes(dfg.Sub) || alu.Executes(dfg.Mul) {
		t.Error("ALU kind set wrong")
	}
	u := UnitClass(dfg.Mul)
	if u.Name != "*" || !u.Executes(dfg.Mul) || u.Executes(dfg.Add) {
		t.Error("unit class wrong")
	}
}

func TestBindPacksMinimumModules(t *testing.T) {
	g := twoAdderGraph(t)
	b, err := Bind(g, []Class{UnitClass(dfg.Add)})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Modules) != 2 {
		t.Fatalf("got %d modules, want 2: %v", len(b.Modules), b)
	}
	if err := b.Validate(g); err != nil {
		t.Error(err)
	}
	// o3 must share a module with o1 or o2 (different steps).
	m3 := b.ModuleOf("o3")
	if m3 == nil || len(m3.Ops) != 2 {
		t.Errorf("o3 not packed: %v", b)
	}
}

func TestBindUnscheduled(t *testing.T) {
	g := dfg.New("u")
	g.AddInput("a", "b")
	g.AddOp("o1", dfg.Add, 0, "x", "a", "b")
	g.MarkOutput("x")
	if _, err := Bind(g, []Class{UnitClass(dfg.Add)}); err == nil {
		t.Error("unscheduled graph accepted")
	}
}

func TestBindMissingClass(t *testing.T) {
	g := twoAdderGraph(t)
	if _, err := Bind(g, []Class{UnitClass(dfg.Mul)}); err == nil {
		t.Error("binding without an adder class accepted")
	}
}

func TestBindALU(t *testing.T) {
	g := dfg.New("mix")
	g.AddInput("a", "b")
	g.AddOp("o1", dfg.Add, 1, "x", "a", "b")
	g.AddOp("o2", dfg.Sub, 2, "y", "x", "a")
	g.MarkOutput("y")
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	b, err := Bind(g, []Class{ALUClass(dfg.Add, dfg.Sub)})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Modules) != 1 {
		t.Errorf("ALU should absorb both ops: %v", b)
	}
}

func TestFromMap(t *testing.T) {
	g := twoAdderGraph(t)
	b, err := FromMap(g, map[string]string{"o1": "M1", "o2": "M2", "o3": "M1"})
	if err != nil {
		t.Fatal(err)
	}
	if b.TemporalMultiplicity("M1") != 2 || b.TemporalMultiplicity("M2") != 1 {
		t.Errorf("TM wrong: %v", b)
	}
	if b.Module("M1").Class.Name != "+" {
		t.Errorf("M1 class = %q", b.Module("M1").Class.Name)
	}
}

func TestFromMapErrors(t *testing.T) {
	g := twoAdderGraph(t)
	if _, err := FromMap(g, map[string]string{"o1": "M1"}); err == nil {
		t.Error("partial map accepted")
	}
	// Same-step clash on one module.
	if _, err := FromMap(g, map[string]string{"o1": "M1", "o2": "M1", "o3": "M2"}); err == nil {
		t.Error("same-step clash accepted")
	}
}

func TestVariableSets(t *testing.T) {
	g := twoAdderGraph(t)
	b, err := FromMap(g, map[string]string{"o1": "M1", "o2": "M2", "o3": "M1"})
	if err != nil {
		t.Fatal(err)
	}
	if got := b.InputVarSet(g, "M1"); !reflect.DeepEqual(got, []string{"a", "b", "x", "y"}) {
		t.Errorf("I_M1 = %v", got)
	}
	if got := b.OutputVarSet(g, "M1"); !reflect.DeepEqual(got, []string{"x", "z"}) {
		t.Errorf("O_M1 = %v", got)
	}
	if got := b.InstanceOperands(g, "M1"); !reflect.DeepEqual(got, [][]string{{"a", "b"}, {"x", "y"}}) {
		t.Errorf("instances = %v", got)
	}
	if b.InputVarSet(g, "nope") != nil {
		t.Error("unknown module should yield nil")
	}
}

func TestPaperDefinitions(t *testing.T) {
	// The Fig. 2 running example: I_M1 = {a,b,c,d}, O_M1 = {d,f},
	// TM(M1) = 2 (Definitions 2 and 3 of the paper).
	g := dfg.New("ex1")
	g.AddInput("a", "b", "e", "g")
	g.AddOp("add1", dfg.Add, 1, "d", "a", "b")
	g.AddOp("mul1", dfg.Mul, 2, "c", "e", "g")
	g.AddOp("add2", dfg.Add, 3, "f", "c", "d")
	g.AddOp("mul2", dfg.Mul, 4, "h", "f", "g")
	g.MarkOutput("h")
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	b, err := FromMap(g, map[string]string{"add1": "M1", "add2": "M1", "mul1": "M2", "mul2": "M2"})
	if err != nil {
		t.Fatal(err)
	}
	if tm := b.TemporalMultiplicity("M1"); tm != 2 {
		t.Errorf("TM(M1) = %d, want 2", tm)
	}
	if got := b.InputVarSet(g, "M1"); !reflect.DeepEqual(got, []string{"a", "b", "c", "d"}) {
		t.Errorf("I_M1 = %v, want [a b c d]", got)
	}
	if got := b.OutputVarSet(g, "M1"); !reflect.DeepEqual(got, []string{"d", "f"}) {
		t.Errorf("O_M1 = %v, want [d f]", got)
	}
}
