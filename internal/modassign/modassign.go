// Package modassign binds DFG operations to functional modules. Per the
// paper (Section III), module binding is performed first, without
// testability considerations, using standard area-driven algorithms; the
// register binder then treats the module binding as fixed and derives
// from it the input/output variable sets that drive test-resource
// sharing.
package modassign

import (
	"fmt"
	"sort"
	"strings"

	"bistpath/internal/dfg"
)

// Class describes a kind of functional module: the set of operation kinds
// a module of this class can execute in one control step. A single-kind
// class is an ordinary functional unit ("*", "+"); a multi-kind class is
// an ALU.
type Class struct {
	Name  string
	Kinds []dfg.Kind
}

// Executes reports whether the class can perform kind k.
func (c Class) Executes(k dfg.Kind) bool {
	for _, x := range c.Kinds {
		if x == k {
			return true
		}
	}
	return false
}

// UnitClass returns the single-kind class for k, named after the kind.
func UnitClass(k dfg.Kind) Class { return Class{Name: string(k), Kinds: []dfg.Kind{k}} }

// ALUClass returns a multi-kind class named "ALU".
func ALUClass(kinds ...dfg.Kind) Class { return Class{Name: "ALU", Kinds: kinds} }

// Module is one allocated functional module with its bound operations.
type Module struct {
	Name  string
	Class Class
	Ops   []string // op names, sorted by control step
}

// Binding is a complete operation→module map.
type Binding struct {
	Modules []*Module
	byOp    map[string]*Module
	byName  map[string]*Module
}

// ModuleOf returns the module an op is bound to, or nil.
func (b *Binding) ModuleOf(op string) *Module { return b.byOp[op] }

// Module returns the named module, or nil.
func (b *Binding) Module(name string) *Module { return b.byName[name] }

// ModuleNames returns all module names in allocation order.
func (b *Binding) ModuleNames() []string {
	out := make([]string, len(b.Modules))
	for i, m := range b.Modules {
		out[i] = m.Name
	}
	return out
}

// TemporalMultiplicity returns TM(M), the number of DFG operations bound
// to the module (Definition 2).
func (b *Binding) TemporalMultiplicity(module string) int {
	m := b.byName[module]
	if m == nil {
		return 0
	}
	return len(m.Ops)
}

// InputVarSet returns I_M: all operand variables over the module's
// instances (Definition 3), sorted.
func (b *Binding) InputVarSet(g *dfg.Graph, module string) []string {
	m := b.byName[module]
	if m == nil {
		return nil
	}
	set := make(map[string]bool)
	for _, opName := range m.Ops {
		for _, a := range g.Op(opName).Args {
			set[a] = true
		}
	}
	return sortedKeys(set)
}

// OutputVarSet returns O_M: all result variables over the module's
// instances (Definition 3), sorted.
func (b *Binding) OutputVarSet(g *dfg.Graph, module string) []string {
	m := b.byName[module]
	if m == nil {
		return nil
	}
	set := make(map[string]bool)
	for _, opName := range m.Ops {
		set[g.Op(opName).Result] = true
	}
	return sortedKeys(set)
}

// InstanceOperands returns, per instance (bound op) of the module, the
// operand variable set I^j_M used by Lemma 2's per-instance conditions.
func (b *Binding) InstanceOperands(g *dfg.Graph, module string) [][]string {
	m := b.byName[module]
	if m == nil {
		return nil
	}
	out := make([][]string, 0, len(m.Ops))
	for _, opName := range m.Ops {
		args := append([]string(nil), g.Op(opName).Args...)
		sort.Strings(args)
		out = append(out, args)
	}
	return out
}

// Validate checks that every op is bound exactly once to a class-
// compatible module and no module executes two ops in the same step.
func (b *Binding) Validate(g *dfg.Graph) error {
	bound := make(map[string]bool)
	for _, m := range b.Modules {
		steps := make(map[int]string)
		for _, opName := range m.Ops {
			op := g.Op(opName)
			if op == nil {
				return fmt.Errorf("modassign: module %s binds unknown op %q", m.Name, opName)
			}
			if bound[opName] {
				return fmt.Errorf("modassign: op %q bound twice", opName)
			}
			bound[opName] = true
			if !m.Class.Executes(op.Kind) {
				return fmt.Errorf("modassign: module %s (class %s) cannot execute op %q kind %q",
					m.Name, m.Class.Name, opName, op.Kind)
			}
			if prev, clash := steps[op.Step]; clash {
				return fmt.Errorf("modassign: module %s runs %q and %q both at step %d",
					m.Name, prev, opName, op.Step)
			}
			steps[op.Step] = opName
		}
	}
	for _, op := range g.Ops() {
		if !bound[op.Name] {
			return fmt.Errorf("modassign: op %q unbound", op.Name)
		}
	}
	return nil
}

func (b *Binding) String() string {
	var sb strings.Builder
	for i, m := range b.Modules {
		if i > 0 {
			sb.WriteString("; ")
		}
		fmt.Fprintf(&sb, "%s(%s)={%s}", m.Name, m.Class.Name, strings.Join(m.Ops, ","))
	}
	return sb.String()
}

// Bind performs area-driven module binding: each op is mapped to the
// first listed class executing its kind, and within a class ops are
// packed onto the minimum number of modules by a left-edge pass over
// control steps (two ops share a module iff their steps differ). Module
// names are M1, M2, ... in class order.
func Bind(g *dfg.Graph, classes []Class) (*Binding, error) {
	if !g.Scheduled() {
		return nil, fmt.Errorf("modassign: graph %q is not scheduled", g.Name)
	}
	classOf := func(k dfg.Kind) (Class, error) {
		for _, c := range classes {
			if c.Executes(k) {
				return c, nil
			}
		}
		return Class{}, fmt.Errorf("modassign: no class executes kind %q", k)
	}
	// Group ops per class (by class name), preserving class list order.
	groups := make(map[string][]*dfg.Op)
	var classOrder []Class
	seen := make(map[string]bool)
	for _, op := range g.Ops() {
		c, err := classOf(op.Kind)
		if err != nil {
			return nil, err
		}
		groups[c.Name] = append(groups[c.Name], op)
		if !seen[c.Name] {
			seen[c.Name] = true
			classOrder = append(classOrder, c)
		}
	}
	b := &Binding{byOp: make(map[string]*Module), byName: make(map[string]*Module)}
	n := 0
	for _, c := range classOrder {
		ops := groups[c.Name]
		sort.Slice(ops, func(i, j int) bool {
			if ops[i].Step != ops[j].Step {
				return ops[i].Step < ops[j].Step
			}
			return ops[i].Name < ops[j].Name
		})
		var mods []*Module
		for _, op := range ops {
			placed := false
			for _, m := range mods {
				if !moduleBusyAt(g, m, op.Step) {
					m.Ops = append(m.Ops, op.Name)
					b.byOp[op.Name] = m
					placed = true
					break
				}
			}
			if !placed {
				n++
				m := &Module{Name: fmt.Sprintf("M%d", n), Class: c, Ops: []string{op.Name}}
				mods = append(mods, m)
				b.Modules = append(b.Modules, m)
				b.byName[m.Name] = m
				b.byOp[op.Name] = m
			}
		}
	}
	return b, b.Validate(g)
}

// FromMap builds a binding from an explicit op→module-name map (used by
// the benchmark suite to pin the paper's module assignments). Class is
// inferred per module: the union of bound op kinds; a single kind yields
// a unit class, several kinds an ALU class.
func FromMap(g *dfg.Graph, opToModule map[string]string) (*Binding, error) {
	byName := make(map[string]*Module)
	var order []string
	for _, op := range g.Ops() {
		mn, ok := opToModule[op.Name]
		if !ok {
			return nil, fmt.Errorf("modassign: op %q missing from map", op.Name)
		}
		if _, ok := byName[mn]; !ok {
			byName[mn] = &Module{Name: mn}
			order = append(order, mn)
		}
		byName[mn].Ops = append(byName[mn].Ops, op.Name)
	}
	b := &Binding{byOp: make(map[string]*Module), byName: byName}
	sort.Strings(order)
	for _, mn := range order {
		m := byName[mn]
		kinds := make(map[dfg.Kind]bool)
		for _, opName := range m.Ops {
			kinds[g.Op(opName).Kind] = true
			b.byOp[opName] = m
		}
		var ks []dfg.Kind
		for k := range kinds {
			ks = append(ks, k)
		}
		sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
		if len(ks) == 1 {
			m.Class = UnitClass(ks[0])
		} else {
			m.Class = ALUClass(ks...)
		}
		sort.Slice(m.Ops, func(i, j int) bool {
			oi, oj := g.Op(m.Ops[i]), g.Op(m.Ops[j])
			if oi.Step != oj.Step {
				return oi.Step < oj.Step
			}
			return oi.Name < oj.Name
		})
		b.Modules = append(b.Modules, m)
	}
	return b, b.Validate(g)
}

func moduleBusyAt(g *dfg.Graph, m *Module, step int) bool {
	for _, opName := range m.Ops {
		if g.Op(opName).Step == step {
			return true
		}
	}
	return false
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
