package vcd

import (
	"fmt"
	"strings"
	"testing"

	"bistpath/internal/gates"
)

func TestVCDBasics(t *testing.T) {
	n := gates.New()
	a := n.InputBus("a", 4)
	inc, _ := n.AddBus(a, n.ConstBus(4, 1), gates.Zero)
	q := n.RegisterBus(inc, gates.One)
	n.OutputBus("q", q)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	sim, err := gates.NewSim(n)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	w, err := New(&sb, n, sim, []string{"a", "q"})
	if err != nil {
		t.Fatal(err)
	}
	sim.SetBus(a, 3)
	for i := 0; i < 4; i++ {
		sim.Eval()
		w.Sample()
		sim.Step()
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"$timescale", "$var wire 4 ! a $end", "$var wire 4 \" q $end", "$enddefinitions", "#0", "b11 !", "#4"} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q:\n%s", want, out)
		}
	}
	// q counts 0,4,4+... q latches a+1=4 each cycle: constant after the
	// first change, so exactly one change line for q after time 0.
	if got := strings.Count(out, "\""); got < 2 {
		t.Errorf("q never dumped: %d refs", got)
	}
	// Timestamps strictly increasing.
	last := -1
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "#") {
			var ts int
			if _, err := fmtSscan(line[1:], &ts); err != nil {
				t.Fatalf("bad timestamp line %q", line)
			}
			if ts <= last {
				t.Fatalf("timestamps not increasing: %d after %d", ts, last)
			}
			last = ts
		}
	}
}

func TestVCDUnknownBus(t *testing.T) {
	n := gates.New()
	n.InputBus("a", 1)
	sim, _ := gates.NewSim(n)
	var sb strings.Builder
	if _, err := New(&sb, n, sim, []string{"nope"}); err == nil {
		t.Error("unknown bus accepted")
	}
}

func TestIdent(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		id := ident(i)
		if seen[id] {
			t.Fatalf("duplicate identifier %q at %d", id, i)
		}
		seen[id] = true
	}
}

func TestClean(t *testing.T) {
	if clean("in:dx.sel a") != "in_dx_sel_a" {
		t.Errorf("clean = %q", clean("in:dx.sel a"))
	}
}

// fmtSscan avoids importing fmt at top level twice in examples.
func fmtSscan(s string, v *int) (int, error) {
	return fmt.Sscanf(s, "%d", v)
}
