// Package vcd writes Value Change Dump (IEEE 1364) waveform files from
// gate-level simulations, so synthesized designs can be inspected in any
// standard waveform viewer (GTKWave etc.).
package vcd

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"bistpath/internal/gates"
)

// Writer dumps the named buses of a netlist as VCD.
type Writer struct {
	w     io.Writer
	sim   *gates.Sim
	buses []bus
	time  int
	err   error
}

type bus struct {
	name string
	id   string
	sigs []gates.Sig
	last uint64
	init bool
}

// New writes the VCD header for the given buses (nil = every named bus
// of the netlist) and returns a Writer. Names are sanitized for the VCD
// identifier syntax.
func New(w io.Writer, n *gates.Netlist, sim *gates.Sim, names []string) (*Writer, error) {
	if names == nil {
		names = n.NamedBuses()
	}
	v := &Writer{w: w, sim: sim}
	fmt.Fprintf(w, "$date synthesized by bistpath $end\n")
	fmt.Fprintf(w, "$timescale 1ns $end\n")
	fmt.Fprintf(w, "$scope module dut $end\n")
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	for i, name := range sorted {
		sigs := n.Named(name)
		if len(sigs) == 0 {
			return nil, fmt.Errorf("vcd: unknown bus %q", name)
		}
		id := ident(i)
		fmt.Fprintf(w, "$var wire %d %s %s $end\n", len(sigs), id, clean(name))
		v.buses = append(v.buses, bus{name: name, id: id, sigs: sigs})
	}
	fmt.Fprintf(w, "$upscope $end\n$enddefinitions $end\n")
	return v, nil
}

// ident produces a compact VCD identifier from printable ASCII.
func ident(i int) string {
	const base = 94 // '!'..'~'
	s := ""
	for {
		s = string(rune('!'+i%base)) + s
		i /= base
		if i == 0 {
			return s
		}
		i--
	}
}

// clean maps bus names onto VCD-legal identifiers.
func clean(name string) string {
	r := strings.NewReplacer(":", "_", ".", "_", " ", "_")
	return r.Replace(name)
}

// Sample records the current simulator values at the next timestamp,
// emitting only changes (and everything at time zero).
func (v *Writer) Sample() {
	if v.err != nil {
		return
	}
	var lines []string
	for i := range v.buses {
		b := &v.buses[i]
		val := v.sim.ReadBus(b.sigs)
		if b.init && val == b.last {
			continue
		}
		b.last = val
		b.init = true
		if len(b.sigs) == 1 {
			lines = append(lines, fmt.Sprintf("%d%s", val&1, b.id))
		} else {
			lines = append(lines, fmt.Sprintf("b%b %s", val, b.id))
		}
	}
	if len(lines) > 0 || v.time == 0 {
		if _, err := fmt.Fprintf(v.w, "#%d\n", v.time); err != nil {
			v.err = err
			return
		}
		for _, l := range lines {
			if _, err := fmt.Fprintln(v.w, l); err != nil {
				v.err = err
				return
			}
		}
	}
	v.time++
}

// Close emits the final timestamp and returns any accumulated error.
func (v *Writer) Close() error {
	if v.err == nil {
		_, v.err = fmt.Fprintf(v.w, "#%d\n", v.time)
	}
	return v.err
}
