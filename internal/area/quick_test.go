package area

import (
	"testing"
	"testing/quick"

	"bistpath/internal/dfg"
)

// Register area is monotone in capability and linear in width; mux area
// is monotone in fan-in.
func TestAreaMonotoneQuick(t *testing.T) {
	prop := func(ww uint8, n uint8) bool {
		w := int(ww%32) + 1
		m := Default(w)
		styles := []Style{Normal, TPG, BILBO, CBILBO}
		for i := 1; i < len(styles); i++ {
			if m.RegisterArea(styles[i]) <= m.RegisterArea(styles[i-1]) {
				return false
			}
		}
		if m.RegisterArea(SA) != m.RegisterArea(TPG) {
			return false
		}
		fanin := int(n % 12)
		if m.MuxArea(fanin+1) < m.MuxArea(fanin) {
			return false
		}
		// Linearity in width.
		m2 := Default(2 * w)
		return m2.RegisterArea(CBILBO) == 2*m.RegisterArea(CBILBO)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Module area dominates its largest constituent unit.
func TestALUDominanceQuick(t *testing.T) {
	kinds := []dfg.Kind{dfg.Add, dfg.Sub, dfg.Mul, dfg.Div, dfg.And, dfg.Or, dfg.Lt}
	prop := func(sel uint8, ww uint8) bool {
		w := int(ww%16) + 2
		m := Default(w)
		var ks []dfg.Kind
		for i, k := range kinds {
			if sel&(1<<uint(i)) != 0 {
				ks = append(ks, k)
			}
		}
		if len(ks) == 0 {
			return true
		}
		alu := m.ModuleArea(ks)
		for _, k := range ks {
			if alu < m.ModuleArea([]dfg.Kind{k}) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
