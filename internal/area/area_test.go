package area

import (
	"testing"

	"bistpath/internal/dfg"
)

func TestStyleOrdering(t *testing.T) {
	m := Default(8)
	// Normal < TPG = SA < BILBO < CBILBO, the paper's cost ordering.
	if !(m.RegisterArea(Normal) < m.RegisterArea(TPG)) {
		t.Error("TPG not costlier than a plain register")
	}
	if m.RegisterArea(TPG) != m.RegisterArea(SA) {
		t.Error("TPG and SA should cost the same")
	}
	if !(m.RegisterArea(SA) < m.RegisterArea(BILBO)) {
		t.Error("BILBO not costlier than SA")
	}
	if !(m.RegisterArea(BILBO) < m.RegisterArea(CBILBO)) {
		t.Error("CBILBO not costlier than BILBO")
	}
	// "A CBILBO register has an area approximately twice that of a
	// [BILBO] register".
	if m.RegisterArea(CBILBO) != 2*m.RegisterArea(BILBO) {
		t.Errorf("CBILBO %d != 2x BILBO %d", m.RegisterArea(CBILBO), m.RegisterArea(BILBO))
	}
}

func TestStyleExtra(t *testing.T) {
	m := Default(8)
	if m.StyleExtra(Normal) != 0 {
		t.Error("plain register should add nothing")
	}
	if m.StyleExtra(TPG) != m.RegisterArea(TPG)-m.RegisterArea(Normal) {
		t.Error("StyleExtra inconsistent")
	}
}

func TestStyleString(t *testing.T) {
	want := map[Style]string{Normal: "REG", TPG: "TPG", SA: "SA", BILBO: "TPG/SA", CBILBO: "CBILBO"}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), w)
		}
	}
	if Style(99).String() == "" {
		t.Error("unknown style should still print")
	}
}

func TestMuxArea(t *testing.T) {
	m := Default(8)
	if m.MuxArea(0) != 0 || m.MuxArea(1) != 0 {
		t.Error("degenerate muxes must be free")
	}
	if m.MuxArea(2) <= 0 {
		t.Error("2-input mux must cost area")
	}
	if m.MuxArea(4) != 3*m.MuxArea(2) {
		t.Error("mux area should scale with extra inputs")
	}
}

func TestModuleArea(t *testing.T) {
	m := Default(8)
	mul := m.ModuleArea([]dfg.Kind{dfg.Mul})
	add := m.ModuleArea([]dfg.Kind{dfg.Add})
	if mul <= add {
		t.Error("multiplier must dominate adder")
	}
	// ALU = max constituent + mode premium.
	alu := m.ModuleArea([]dfg.Kind{dfg.Add, dfg.Sub, dfg.Or})
	sub := m.ModuleArea([]dfg.Kind{dfg.Sub})
	if alu <= sub {
		t.Error("ALU must cost more than its largest unit")
	}
	if alu >= sub+3*add {
		t.Error("ALU premium implausibly high")
	}
	if m.ModuleArea(nil) != 0 {
		t.Error("empty module should be free")
	}
}

func TestWidthScaling(t *testing.T) {
	a8, a16 := Default(8), Default(16)
	if a16.RegisterArea(Normal) != 2*a8.RegisterArea(Normal) {
		t.Error("register area should be linear in width")
	}
	// Multiplier is quadratic in width.
	m8 := a8.ModuleArea([]dfg.Kind{dfg.Mul})
	m16 := a16.ModuleArea([]dfg.Kind{dfg.Mul})
	if m16 != 4*m8 {
		t.Errorf("multiplier scaling: %d vs %d (want 4x)", m16, m8)
	}
}

func TestOverhead(t *testing.T) {
	if got := Overhead(100, 118); got != 18.0 {
		t.Errorf("Overhead = %v, want 18", got)
	}
	if got := Overhead(0, 50); got != 0 {
		t.Errorf("Overhead with zero base = %v, want 0", got)
	}
}

func TestAllKindsHaveArea(t *testing.T) {
	m := Default(8)
	for _, k := range []dfg.Kind{dfg.Add, dfg.Sub, dfg.Mul, dfg.Div, dfg.And, dfg.Or, dfg.Xor, dfg.Lt, dfg.Gt} {
		if m.ModuleArea([]dfg.Kind{k}) <= 0 {
			t.Errorf("kind %s has no area", k)
		}
	}
}
