// Package area provides the gate-equivalent cost model used to score
// data paths and BIST solutions. The USC BIST register library the paper
// used is unpublished; this model is calibrated to the same relative
// ordering (normal < TPG ≈ SA < BILBO ≪ CBILBO ≈ 2×BILBO, multipliers
// dominate functional area) so that the percentage comparisons of
// Table I keep their shape. All costs are in gate equivalents.
package area

import (
	"fmt"

	"bistpath/internal/dfg"
)

// Style is the BIST capability of a register.
type Style int

// Register styles, in increasing capability.
const (
	Normal Style = iota // plain register
	TPG                 // test pattern generator (LFSR mode)
	SA                  // signature analyzer (MISR mode)
	BILBO               // TPG and SA in different test sessions ("TPG/SA")
	CBILBO              // concurrent TPG+SA for the same module
)

func (s Style) String() string {
	switch s {
	case Normal:
		return "REG"
	case TPG:
		return "TPG"
	case SA:
		return "SA"
	case BILBO:
		return "TPG/SA"
	case CBILBO:
		return "CBILBO"
	}
	return fmt.Sprintf("Style(%d)", int(s))
}

// Model holds per-bit gate-equivalent costs.
type Model struct {
	Width int

	RegBit    int // plain D-register
	TPGBit    int // LFSR cell: FF + XOR + mode mux
	SABit     int // MISR cell
	BILBOBit  int // combined TPG/SA cell
	CBILBOBit int // concurrent BILBO: two FF ranks

	MuxBitPerInput int // per extra mux input per bit

	AddBit     int // ripple adder
	SubBit     int
	CmpBit     int // magnitude comparator
	LogicBit   int // and/or/xor
	MulBitSq   int // array multiplier: MulBitSq * width per bit
	DivBitSq   int
	ALUModeBit int // premium per extra supported kind on one module
}

// Default returns the calibrated model for the given datapath width.
func Default(width int) Model {
	return Model{
		Width:          width,
		RegBit:         6,
		TPGBit:         10,
		SABit:          10,
		BILBOBit:       12,
		CBILBOBit:      24,
		MuxBitPerInput: 3,
		AddBit:         9,
		SubBit:         10,
		CmpBit:         5,
		LogicBit:       2,
		MulBitSq:       9,
		DivBitSq:       12,
		ALUModeBit:     2,
	}
}

// RegisterArea returns the area of one register in the given style.
func (m Model) RegisterArea(s Style) int {
	per := m.RegBit
	switch s {
	case TPG:
		per = m.TPGBit
	case SA:
		per = m.SABit
	case BILBO:
		per = m.BILBOBit
	case CBILBO:
		per = m.CBILBOBit
	}
	return per * m.Width
}

// StyleExtra returns the area added by upgrading a plain register to the
// given style.
func (m Model) StyleExtra(s Style) int {
	return m.RegisterArea(s) - m.RegisterArea(Normal)
}

// MuxArea returns the area of an n-input multiplexer (0 for n < 2).
func (m Model) MuxArea(inputs int) int {
	if inputs < 2 {
		return 0
	}
	return (inputs - 1) * m.MuxBitPerInput * m.Width
}

// kindArea returns the functional area of a single-kind unit.
func (m Model) kindArea(k dfg.Kind) int {
	switch k {
	case dfg.Add:
		return m.AddBit * m.Width
	case dfg.Sub:
		return m.SubBit * m.Width
	case dfg.Mul:
		return m.MulBitSq * m.Width * m.Width
	case dfg.Div:
		return m.DivBitSq * m.Width * m.Width
	case dfg.And, dfg.Or, dfg.Xor:
		return m.LogicBit * m.Width
	case dfg.Lt, dfg.Gt:
		return m.CmpBit * m.Width
	}
	return 0
}

// ModuleArea returns the area of a module executing the given kinds: the
// largest constituent unit plus a mode premium per extra kind.
func (m Model) ModuleArea(kinds []dfg.Kind) int {
	max := 0
	for _, k := range kinds {
		if a := m.kindArea(k); a > max {
			max = a
		}
	}
	if len(kinds) > 1 {
		max += (len(kinds) - 1) * m.ALUModeBit * m.Width
	}
	return max
}

// Overhead returns the percentage increase of total over base.
func Overhead(base, total int) float64 {
	if base == 0 {
		return 0
	}
	return float64(total-base) / float64(base) * 100
}
