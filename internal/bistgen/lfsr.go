// Package bistgen implements the pseudo-random BIST machinery the
// synthesized data paths rely on: LFSR test pattern generators, MISR
// signature analyzers, a structural stuck-at fault model for module
// ports, and a session runner that measures fault coverage of a BIST
// plan. It demonstrates that the test resources allocated by
// internal/bist actually detect faults.
package bistgen

import "fmt"

// primitiveTaps maps register width to a primitive-polynomial tap mask
// (bit i set means stage i feeds the XOR). With a primitive polynomial an
// n-bit LFSR cycles through all 2^n-1 nonzero states.
var primitiveTaps = map[int]uint64{
	2:  0x3,        // x^2+x+1
	3:  0x6,        // x^3+x^2+1
	4:  0xC,        // x^4+x^3+1
	5:  0x14,       // x^5+x^3+1
	6:  0x30,       // x^6+x^5+1
	7:  0x60,       // x^7+x^6+1
	8:  0xB8,       // x^8+x^6+x^5+x^4+1
	9:  0x110,      // x^9+x^5+1
	10: 0x240,      // x^10+x^7+1
	11: 0x500,      // x^11+x^9+1
	12: 0xE08,      // x^12+x^11+x^10+x^4+1
	13: 0x1C80,     // x^13+x^12+x^11+x^8+1
	14: 0x3802,     // x^14+x^13+x^12+x^2+1
	15: 0x6000,     // x^15+x^14+1
	16: 0xD008,     // x^16+x^15+x^13+x^4+1
	20: 0x90000,    // x^20+x^17+1
	24: 0xE10000,   // x^24+x^23+x^22+x^17+1
	32: 0xC0000401, // x^32+x^31+x^30+x^10+1 (primitive)
}

// SupportedWidths returns the LFSR widths with a built-in primitive
// polynomial.
func SupportedWidths() []int {
	return []int{2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 20, 24, 32}
}

// PrimitiveTaps returns the tap mask for a supported width. The
// gate-level elaboration (internal/elab) uses the same taps so its LFSR
// and MISR cells produce bit-identical sequences to this package.
func PrimitiveTaps(width int) (uint64, bool) {
	t, ok := primitiveTaps[width]
	return t, ok
}

var secondaryTapsCache = map[int]uint64{}
var distinctTapsCache = map[int][]uint64{}

// SecondaryTaps returns a second, different primitive tap mask for the
// width, so that two pattern generators feeding one module can run
// distinct maximal-length recurrences (equal-polynomial TPG pairs apply
// only 2^w-1 of the 2^2w operand pairs — the classic correlation
// weakness of same-polynomial BILBOs). The mask is found by exhaustive
// period search and cached; widths above 16 fall back to the primary
// mask (the search would be too slow) and report false.
func SecondaryTaps(width int) (uint64, bool) {
	if t, ok := secondaryTapsCache[width]; ok {
		return t, true
	}
	primary, ok := primitiveTaps[width]
	if !ok || width > 16 {
		return primary, false
	}
	full := (1 << uint(width)) - 1
	for cand := uint64(1 << uint(width-1)); cand <= uint64(full); cand++ {
		if cand == primary || cand&(1<<uint(width-1)) == 0 {
			continue
		}
		if lfsrPeriod(width, cand) == full {
			secondaryTapsCache[width] = cand
			return cand, true
		}
	}
	return primary, false
}

// lfsrPeriod returns the cycle length of the recurrence from state 1.
func lfsrPeriod(width int, taps uint64) int {
	mask := (uint64(1) << uint(width)) - 1
	state := uint64(1)
	for n := 1; n <= 1<<uint(width); n++ {
		state = ((state << 1) | parity(state&taps)) & mask
		if state == 1 {
			return n
		}
	}
	return -1
}

// DistinctTaps returns up to k distinct primitive tap masks for the
// width, primary first, the rest found by exhaustive period search
// (widths above 16 return only the primary). Registers that pairwise
// feed the same modules receive different masks so their pattern
// streams are uncorrelated; a width-8 LFSR alone has 16 primitive
// polynomials, so small k always succeeds.
func DistinctTaps(width, k int) []uint64 {
	primary, ok := primitiveTaps[width]
	if !ok {
		return nil
	}
	if width > 16 || k <= 1 {
		return []uint64{primary}
	}
	cached := distinctTapsCache[width]
	if len(cached) >= k {
		return append([]uint64(nil), cached[:k]...)
	}
	out := []uint64{primary}
	full := (1 << uint(width)) - 1
	for cand := uint64(1 << uint(width-1)); cand <= uint64(full) && len(out) < k; cand++ {
		if cand == primary {
			continue
		}
		if lfsrPeriod(width, cand) == full {
			out = append(out, cand)
		}
	}
	distinctTapsCache[width] = append([]uint64(nil), out...)
	return out
}

// NewLFSRWithTaps returns an LFSR using an explicit tap mask (caller
// guarantees primitivity when a maximal period matters).
func NewLFSRWithTaps(width int, taps, seed uint64) *LFSR {
	mask := (uint64(1) << uint(width)) - 1
	s := seed & mask
	if s == 0 {
		s = 1
	}
	return &LFSR{width: width, taps: taps, mask: mask, state: s}
}

// NewMISRWithTaps returns a MISR using an explicit tap mask.
func NewMISRWithTaps(width int, taps uint64) *MISR {
	return &MISR{width: width, taps: taps, mask: (uint64(1) << uint(width)) - 1}
}

// LFSR is a Fibonacci linear feedback shift register used as a test
// pattern generator (the TPG mode of a BILBO register).
type LFSR struct {
	width int
	taps  uint64
	mask  uint64
	state uint64
}

// NewLFSR returns an LFSR of the given width seeded with seed (forced
// nonzero: an LFSR locks up at zero).
func NewLFSR(width int, seed uint64) (*LFSR, error) {
	taps, ok := primitiveTaps[width]
	if !ok {
		return nil, fmt.Errorf("bistgen: no primitive polynomial for width %d (supported: %v)", width, SupportedWidths())
	}
	mask := (uint64(1) << uint(width)) - 1
	s := seed & mask
	if s == 0 {
		s = 1
	}
	return &LFSR{width: width, taps: taps, mask: mask, state: s}, nil
}

// State returns the current pattern.
func (l *LFSR) State() uint64 { return l.state }

// Next advances one clock and returns the new pattern.
func (l *LFSR) Next() uint64 {
	fb := parity(l.state & l.taps)
	l.state = ((l.state << 1) | fb) & l.mask
	return l.state
}

// Period counts the cycle length from the current state (intended for
// verifying primitivity at small widths in tests).
func (l *LFSR) Period() int {
	start := l.state
	n := 0
	for {
		l.Next()
		n++
		if l.state == start {
			return n
		}
		if n > 1<<uint(l.width) {
			return -1 // defensive: not a cycle through the start state
		}
	}
}

// MISR is a multiple-input signature register (the SA mode of a BILBO
// register): each clock it shifts with feedback and XORs the parallel
// response word into its state.
type MISR struct {
	width int
	taps  uint64
	mask  uint64
	state uint64
}

// NewMISR returns a zero-initialized MISR of the given width.
func NewMISR(width int) (*MISR, error) {
	taps, ok := primitiveTaps[width]
	if !ok {
		return nil, fmt.Errorf("bistgen: no primitive polynomial for width %d", width)
	}
	return &MISR{width: width, taps: taps, mask: (uint64(1) << uint(width)) - 1}, nil
}

// Shift compacts one response word.
func (m *MISR) Shift(input uint64) {
	fb := parity(m.state & m.taps)
	m.state = (((m.state << 1) | fb) ^ input) & m.mask
}

// Signature returns the accumulated signature.
func (m *MISR) Signature() uint64 { return m.state }

// Reset clears the signature.
func (m *MISR) Reset() { m.state = 0 }

func parity(x uint64) uint64 {
	x ^= x >> 32
	x ^= x >> 16
	x ^= x >> 8
	x ^= x >> 4
	x ^= x >> 2
	x ^= x >> 1
	return x & 1
}
