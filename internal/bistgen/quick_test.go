package bistgen

import (
	"testing"
	"testing/quick"
)

// The LFSR next-state function is a bijection on nonzero states
// (distinct states map to distinct successors), for both the primary and
// the secondary polynomial.
func TestLFSRBijectiveQuick(t *testing.T) {
	tapsP, _ := PrimitiveTaps(8)
	tapsS, ok := SecondaryTaps(8)
	if !ok {
		t.Fatal("no secondary taps for width 8")
	}
	for _, taps := range []uint64{tapsP, tapsS} {
		next := func(s uint64) uint64 {
			l := NewLFSRWithTaps(8, taps, s)
			return l.Next()
		}
		prop := func(a, b uint8) bool {
			x, y := uint64(a), uint64(b)
			if x == 0 || y == 0 || x == y {
				return true
			}
			return next(x) != next(y)
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("taps %#x: %v", taps, err)
		}
	}
}

// MISR compaction is linear: sig(a XOR b stream) = sig(a) XOR sig(b)
// when starting from zero.
func TestMISRLinearityQuick(t *testing.T) {
	prop := func(words [6]uint8) bool {
		ma, _ := NewMISR(8)
		mb, _ := NewMISR(8)
		mx, _ := NewMISR(8)
		for i, w := range words {
			a := uint64(w)
			b := uint64(words[(i+3)%6]) * 37 & 0xFF
			ma.Shift(a)
			mb.Shift(b)
			mx.Shift(a ^ b)
		}
		return mx.Signature() == ma.Signature()^mb.Signature()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// EvalFaulty with no fault equals plain evaluation, and injecting then
// "detecting" is consistent: a fault on an input bit changes the result
// iff flipping that bit changes the function value.
func TestEvalFaultyConsistencyQuick(t *testing.T) {
	prop := func(a, b uint8, bit uint8, stuck1 bool) bool {
		x, y := uint64(a), uint64(b)
		bi := int(bit % 8)
		f := Fault{Site: PortL, Bit: bi, Stuck1: stuck1}
		faulty := EvalFaulty("+", x, y, 8, &f)
		forced := x
		if stuck1 {
			forced |= 1 << uint(bi)
		} else {
			forced &^= 1 << uint(bi)
		}
		want := EvalFaulty("+", forced, y, 8, nil)
		return faulty == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
