package bistgen

import (
	"fmt"

	"bistpath/internal/dfg"
)

// Site identifies where a stuck-at fault is injected on a module.
type Site int

// Fault sites.
const (
	PortL Site = iota
	PortR
	PortOut
)

func (s Site) String() string {
	switch s {
	case PortL:
		return "L"
	case PortR:
		return "R"
	default:
		return "OUT"
	}
}

// Fault is a single stuck-at fault on one bit of a module port.
type Fault struct {
	Module string
	Site   Site
	Bit    int
	Stuck1 bool
}

func (f Fault) String() string {
	v := 0
	if f.Stuck1 {
		v = 1
	}
	return fmt.Sprintf("%s.%s[%d]/sa%d", f.Module, f.Site, f.Bit, v)
}

// EnumerateFaults lists every single stuck-at fault of a binary module of
// the given width (unary modules have no right-port faults).
func EnumerateFaults(module string, binary bool, width int) []Fault {
	var out []Fault
	sites := []Site{PortL, PortOut}
	if binary {
		sites = []Site{PortL, PortR, PortOut}
	}
	for _, s := range sites {
		for bit := 0; bit < width; bit++ {
			out = append(out, Fault{module, s, bit, false}, Fault{module, s, bit, true})
		}
	}
	return out
}

func applyStuck(v uint64, bit int, stuck1 bool) uint64 {
	if stuck1 {
		return v | 1<<uint(bit)
	}
	return v &^ (1 << uint(bit))
}

// EvalFaulty computes a module operation with an optional fault injected
// (nil fault = fault-free). The module executes the given kind on a, b
// with width-bit arithmetic.
func EvalFaulty(kind dfg.Kind, a, b uint64, width int, f *Fault) uint64 {
	mask := ^uint64(0)
	if width < 64 {
		mask = (uint64(1) << uint(width)) - 1
	}
	a &= mask
	b &= mask
	if f != nil {
		switch f.Site {
		case PortL:
			a = applyStuck(a, f.Bit, f.Stuck1)
		case PortR:
			b = applyStuck(b, f.Bit, f.Stuck1)
		}
	}
	var r uint64
	switch kind {
	case dfg.Add:
		r = a + b
	case dfg.Sub:
		r = a - b
	case dfg.Mul:
		r = a * b
	case dfg.Div:
		if b == 0 {
			r = mask
		} else {
			r = a / b
		}
	case dfg.And:
		r = a & b
	case dfg.Or:
		r = a | b
	case dfg.Xor:
		r = a ^ b
	case dfg.Lt:
		if a < b {
			r = 1
		}
	case dfg.Gt:
		if a > b {
			r = 1
		}
	}
	r &= mask
	if f != nil && f.Site == PortOut {
		r = applyStuck(r, f.Bit, f.Stuck1) & mask
	}
	return r
}
