package bistgen

import (
	"fmt"

	"bistpath/internal/bist"
	"bistpath/internal/datapath"
)

// ModuleCoverage is the stuck-at coverage of one module under its BIST
// embedding.
type ModuleCoverage struct {
	Module   string
	Faults   int
	Detected int
}

// Pct returns the coverage percentage.
func (mc ModuleCoverage) Pct() float64 {
	if mc.Faults == 0 {
		return 100
	}
	return float64(mc.Detected) / float64(mc.Faults) * 100
}

// Report is the fault-coverage result of running a BIST plan.
type Report struct {
	Patterns  int
	PerModule []ModuleCoverage
}

// Totals sums faults and detections over all modules.
func (r *Report) Totals() (faults, detected int) {
	for _, mc := range r.PerModule {
		faults += mc.Faults
		detected += mc.Detected
	}
	return
}

// Pct returns the overall coverage percentage.
func (r *Report) Pct() float64 {
	f, d := r.Totals()
	if f == 0 {
		return 100
	}
	return float64(d) / float64(f) * 100
}

// Coverage executes the BIST plan on the data path: for every module,
// pseudo-random patterns from the embedding's head generators drive the
// module in each of its operation modes while the tail register compacts
// the responses; a fault is detected when its signature differs from the
// fault-free one. This is a behavioral equivalent of the paper's BILBO
// test methodology (partial-intrusion pseudo-random BIST).
func Coverage(dp *datapath.Datapath, plan *bist.Plan, patterns int, seed uint64) (*Report, error) {
	if patterns <= 0 {
		return nil, fmt.Errorf("bistgen: need at least one pattern")
	}
	rep := &Report{Patterns: patterns}
	for _, m := range dp.Modules {
		emb, ok := plan.Embeddings[m.Name]
		if !ok {
			return nil, fmt.Errorf("bistgen: module %s has no embedding in plan", m.Name)
		}
		binary := len(m.Right) > 0
		sig := func(f *Fault) (uint64, error) {
			// Distinct seeds per head register keep the two pattern
			// streams independent, as required of a valid embedding.
			gl, err := NewLFSR(dp.Width, seed^hashName(emb.HeadL))
			if err != nil {
				return 0, err
			}
			var gr *LFSR
			if binary {
				gr, err = NewLFSR(dp.Width, (seed^hashName(emb.HeadR))|2)
				if err != nil {
					return 0, err
				}
			}
			misr, err := NewMISR(dp.Width)
			if err != nil {
				return 0, err
			}
			for p := 0; p < patterns; p++ {
				a := gl.Next()
				var b uint64
				if binary {
					// Both generators share the width's primitive
					// polynomial, so their sequences are phase-shifted
					// copies; clocking the right generator twice per
					// pattern advances the relative phase and breaks the
					// fixed correlation between the two operand streams
					// (a standard decorrelation trick for same-polynomial
					// TPG pairs).
					gr.Next()
					b = gr.Next()
				}
				for _, kind := range m.Kinds {
					misr.Shift(EvalFaulty(kind, a, b, dp.Width, f))
				}
			}
			return misr.Signature(), nil
		}
		golden, err := sig(nil)
		if err != nil {
			return nil, err
		}
		mc := ModuleCoverage{Module: m.Name}
		for _, f := range EnumerateFaults(m.Name, binary, dp.Width) {
			mc.Faults++
			s, err := sig(&f)
			if err != nil {
				return nil, err
			}
			if s != golden {
				mc.Detected++
			}
		}
		rep.PerModule = append(rep.PerModule, mc)
	}
	return rep, nil
}

// hashName derives a deterministic seed from a source identifier (FNV-1a).
func hashName(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// CoverageCurve grades the plan at several pattern budgets, returning
// the overall coverage percentage per budget — the data behind the
// classic coverage-vs-test-length curve used to pick session lengths.
func CoverageCurve(dp *datapath.Datapath, plan *bist.Plan, budgets []int, seed uint64) ([]float64, error) {
	out := make([]float64, 0, len(budgets))
	for _, p := range budgets {
		rep, err := Coverage(dp, plan, p, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, rep.Pct())
	}
	return out, nil
}
