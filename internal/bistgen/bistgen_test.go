package bistgen

import (
	"testing"
	"testing/quick"

	"bistpath/internal/benchdata"
	"bistpath/internal/bist"
	"bistpath/internal/datapath"
	"bistpath/internal/dfg"
	"bistpath/internal/interconnect"
	"bistpath/internal/regassign"
)

func TestLFSRPeriodIsMaximal(t *testing.T) {
	// A primitive polynomial gives period 2^n - 1 for every nonzero seed.
	for _, w := range []int{2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12} {
		l, err := NewLFSR(w, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := l.Period(), (1<<uint(w))-1; got != want {
			t.Errorf("width %d: period %d, want %d", w, got, want)
		}
	}
}

func TestLFSRSeedHandling(t *testing.T) {
	if _, err := NewLFSR(17, 1); err == nil {
		t.Error("unsupported width accepted")
	}
	l, err := NewLFSR(8, 0) // zero seed must be coerced
	if err != nil {
		t.Fatal(err)
	}
	if l.State() == 0 {
		t.Error("LFSR locked at zero")
	}
	l2, _ := NewLFSR(8, 0x1FF) // seed masked to width
	if l2.State() > 0xFF {
		t.Error("seed not masked")
	}
}

func TestLFSRNeverZero(t *testing.T) {
	l, _ := NewLFSR(8, 0xAB)
	for i := 0; i < 1000; i++ {
		if l.Next() == 0 {
			t.Fatal("LFSR reached zero state")
		}
	}
}

func TestLFSRCoversAllValues(t *testing.T) {
	l, _ := NewLFSR(6, 7)
	seen := make(map[uint64]bool)
	for i := 0; i < 63; i++ {
		seen[l.Next()] = true
	}
	if len(seen) != 63 {
		t.Errorf("6-bit LFSR produced %d distinct patterns, want 63", len(seen))
	}
}

func TestMISRDistinguishesStreams(t *testing.T) {
	m1, _ := NewMISR(8)
	m2, _ := NewMISR(8)
	for i := uint64(0); i < 100; i++ {
		m1.Shift(i * 37)
		if i == 50 {
			m2.Shift(i*37 ^ 4) // single-bit difference
		} else {
			m2.Shift(i * 37)
		}
	}
	if m1.Signature() == m2.Signature() {
		t.Error("MISR aliased a single-bit error")
	}
	m1.Reset()
	if m1.Signature() != 0 {
		t.Error("Reset failed")
	}
}

func TestMISRDeterministic(t *testing.T) {
	run := func() uint64 {
		m, _ := NewMISR(12)
		for i := uint64(1); i < 50; i++ {
			m.Shift(i)
		}
		return m.Signature()
	}
	if run() != run() {
		t.Error("MISR not deterministic")
	}
}

func TestParityQuick(t *testing.T) {
	slow := func(x uint64) uint64 {
		var p uint64
		for i := 0; i < 64; i++ {
			p ^= (x >> uint(i)) & 1
		}
		return p
	}
	if err := quick.Check(func(x uint64) bool { return parity(x) == slow(x) }, nil); err != nil {
		t.Error(err)
	}
}

func TestEnumerateFaults(t *testing.T) {
	fs := EnumerateFaults("M1", true, 8)
	if len(fs) != 3*8*2 {
		t.Errorf("binary module: %d faults, want 48", len(fs))
	}
	fs = EnumerateFaults("M1", false, 8)
	if len(fs) != 2*8*2 {
		t.Errorf("unary module: %d faults, want 32", len(fs))
	}
}

func TestEvalFaulty(t *testing.T) {
	// Fault-free matches plain arithmetic.
	if got := EvalFaulty(dfg.Add, 3, 4, 8, nil); got != 7 {
		t.Errorf("3+4 = %d", got)
	}
	// Stuck-at-1 on L bit 3 turns 3 into 11.
	f := Fault{Site: PortL, Bit: 3, Stuck1: true}
	if got := EvalFaulty(dfg.Add, 3, 4, 8, &f); got != 15 {
		t.Errorf("faulty add = %d, want 15", got)
	}
	// Stuck-at-0 on OUT bit 0.
	f = Fault{Site: PortOut, Bit: 0, Stuck1: false}
	if got := EvalFaulty(dfg.Add, 3, 4, 8, &f); got != 6 {
		t.Errorf("faulty out = %d, want 6", got)
	}
	if s := f.String(); s != ".OUT[0]/sa0" {
		t.Errorf("fault string = %q", s)
	}
}

// End-to-end: the BIST plan synthesized for ex1 must detect nearly all
// port stuck-at faults with 255 pseudo-random patterns. An 8-bit MISR
// aliases each fault with probability ~2^-8, so a miss or two out of ~100
// faults is within theory; anything below 97%% would indicate a broken
// test structure rather than aliasing.
func TestCoverageEx1(t *testing.T) {
	rep := coverageFor(t, benchdata.Ex1(), 255)
	if pct := rep.Pct(); pct < 97.0 {
		t.Errorf("ex1 coverage = %.2f%%, want >= 97%%", pct)
	}
}

func TestCoverageAllBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, b := range benchdata.All() {
		rep := coverageFor(t, b, 255)
		if pct := rep.Pct(); pct < 95.0 {
			t.Errorf("%s coverage = %.2f%%, want >= 95%%", b.Name, pct)
		}
		f, d := rep.Totals()
		if f == 0 || d > f {
			t.Errorf("%s: implausible totals %d/%d", b.Name, d, f)
		}
	}
}

func TestCoverageNeedsPatterns(t *testing.T) {
	b := benchdata.Ex1()
	dp, plan := planFor(t, b)
	if _, err := Coverage(dp, plan, 0, 1); err == nil {
		t.Error("zero patterns accepted")
	}
}

func planFor(t testing.TB, b *benchdata.Benchmark) (*datapath.Datapath, *bist.Plan) {
	t.Helper()
	mb, err := b.Modules()
	if err != nil {
		t.Fatal(err)
	}
	rb, err := regassign.Bind(b.Graph, mb, regassign.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ib, err := interconnect.Bind(b.Graph, mb, rb, regassign.NewSharing(b.Graph, mb))
	if err != nil {
		t.Fatal(err)
	}
	dp, err := datapath.Build(b.Graph, mb, rb, ib, 8)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := bist.Optimize(dp, bist.DefaultOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	return dp, plan
}

func coverageFor(t testing.TB, b *benchdata.Benchmark, patterns int) *Report {
	t.Helper()
	dp, plan := planFor(t, b)
	rep, err := Coverage(dp, plan, patterns, 0xDEADBEEF)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// Coverage grows (weakly) with test length and saturates high.
func TestCoverageCurveMonotone(t *testing.T) {
	b := benchdata.Ex1()
	dp, plan := planFor(t, b)
	budgets := []int{1, 4, 16, 250}
	curve, err := CoverageCurve(dp, plan, budgets, 99)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1]-2 { // small non-monotonic jitter from aliasing allowed
			t.Errorf("coverage dropped: %v", curve)
		}
	}
	if curve[len(curve)-1] < 95 {
		t.Errorf("saturated coverage %.1f%% too low", curve[len(curve)-1])
	}
	if curve[0] >= curve[len(curve)-1] {
		t.Errorf("curve flat from the start: %v", curve)
	}
}
