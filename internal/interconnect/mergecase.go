package interconnect

import (
	"bistpath/internal/dfg"
	"bistpath/internal/modassign"
)

// MergeCase classifies the effect of merging two variables into one
// register on interconnect and BIST resources (Fig. 6 of the paper).
type MergeCase int

// The five merge situations of Fig. 6.
const (
	// MergeDistinct: different source modules and different destination
	// modules — a mux appears (or grows) at the register input and the
	// register fans out to more module ports, but the register can act
	// as a shared test resource for more modules.
	MergeDistinct MergeCase = iota + 1
	// MergeChained: a source module of one variable is a destination
	// module of the other — the register becomes self-adjacent to that
	// module (a potential CBILBO).
	MergeChained
	// MergeCommonDest: one common destination module, different sources —
	// the shared input port needs no extra mux input.
	MergeCommonDest
	// MergeCommonSource: one common source module, different destinations —
	// the register input needs no extra mux input.
	MergeCommonSource
	// MergeCommonBoth: common source and common destination module — the
	// cheapest merge, no new interconnect at all.
	MergeCommonBoth
)

func (c MergeCase) String() string {
	switch c {
	case MergeDistinct:
		return "case1: distinct sources and destinations"
	case MergeChained:
		return "case2: source of one is destination of the other"
	case MergeCommonDest:
		return "case3: common destination module"
	case MergeCommonSource:
		return "case4: common source module"
	case MergeCommonBoth:
		return "case5: common source and destination"
	}
	return "case?"
}

// MergeEffect quantifies a variable merge.
type MergeEffect struct {
	Case MergeCase
	// NewRegisterSources is the number of extra sources the merged
	// register's input mux acquires (0 or 1 for a two-variable merge).
	NewRegisterSources int
	// NewDestinations is the number of extra module destinations the
	// merged register fans out to.
	NewDestinations int
	// SelfAdjacent reports whether the merged register would feed and
	// latch the same module (the CBILBO hazard of Section III.B).
	SelfAdjacent bool
}

// ClassifyMerge analyzes merging variables u and v into one register
// under a module binding. Sources are producing modules (or input pads),
// destinations are consuming modules.
func ClassifyMerge(g *dfg.Graph, mb *modassign.Binding, u, v string) MergeEffect {
	srcOf := func(name string) string {
		vv := g.Var(name)
		if vv.IsInput {
			return PadSource + name
		}
		return mb.ModuleOf(vv.Def).Name
	}
	dstsOf := func(name string) map[string]bool {
		out := make(map[string]bool)
		for _, use := range g.Var(name).Uses {
			out[mb.ModuleOf(use).Name] = true
		}
		return out
	}
	su, sv := srcOf(u), srcOf(v)
	du, dv := dstsOf(u), dstsOf(v)
	commonDest := false
	for m := range du {
		if dv[m] {
			commonDest = true
		}
	}
	eff := MergeEffect{}
	if su != sv {
		eff.NewRegisterSources = 1
	}
	for m := range dv {
		if !du[m] {
			eff.NewDestinations++
		}
	}
	// Self-adjacency: the merged register holds an operand and the result
	// of the same module.
	eff.SelfAdjacent = dv[su] || du[sv]
	switch {
	case su == sv && commonDest:
		eff.Case = MergeCommonBoth
	case su == sv:
		eff.Case = MergeCommonSource
	case commonDest:
		eff.Case = MergeCommonDest
	case eff.SelfAdjacent:
		eff.Case = MergeChained
	default:
		eff.Case = MergeDistinct
	}
	return eff
}
