package interconnect

import (
	"testing"

	"bistpath/internal/dfg"
	"bistpath/internal/modassign"
)

// fig6Graph builds the demo graph used for the Figure 6 regeneration:
// two adders chained on M1, two multiplies chained on M2.
func fig6Graph(t *testing.T) (*dfg.Graph, *modassign.Binding) {
	t.Helper()
	g := dfg.New("fig6")
	if err := g.AddInput("a", "b", "c", "d", "e", "f"); err != nil {
		t.Fatal(err)
	}
	g.AddOp("o1", dfg.Add, 1, "s", "a", "b") // M1
	g.AddOp("o2", dfg.Mul, 1, "t", "c", "d") // M2
	g.AddOp("o3", dfg.Add, 2, "u", "s", "e") // M1
	g.AddOp("o4", dfg.Mul, 2, "v", "t", "f") // M2
	g.AddOp("o5", dfg.Add, 3, "w", "u", "v") // M1
	g.MarkOutput("w")
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	mb, err := modassign.FromMap(g, map[string]string{
		"o1": "M1", "o3": "M1", "o5": "M1", "o2": "M2", "o4": "M2"})
	if err != nil {
		t.Fatal(err)
	}
	return g, mb
}

func TestClassifyMergeCases(t *testing.T) {
	g, mb := fig6Graph(t)
	cases := []struct {
		u, v     string
		want     MergeCase
		selfAdj  bool
		newSrcs  int
		newDests int
	}{
		// s (M1->M1) + t (M2->M2): nothing shared.
		{"s", "t", MergeDistinct, false, 1, 1},
		// e (pad -> M1) + w (M1 -> nothing): chained through M1.
		{"e", "w", MergeChained, true, 1, 0},
		// a + b: both feed o1 on M1, different pads.
		{"a", "b", MergeCommonDest, false, 1, 0},
		// s + w: both produced by M1, different destinations.
		{"s", "w", MergeCommonSource, true, 0, 0},
		// s + u: both produced by and feeding M1.
		{"s", "u", MergeCommonBoth, true, 0, 0},
	}
	for _, c := range cases {
		eff := ClassifyMerge(g, mb, c.u, c.v)
		if eff.Case != c.want {
			t.Errorf("%s+%s: case %v, want %v", c.u, c.v, eff.Case, c.want)
		}
		if eff.SelfAdjacent != c.selfAdj {
			t.Errorf("%s+%s: selfAdjacent %v, want %v", c.u, c.v, eff.SelfAdjacent, c.selfAdj)
		}
		if eff.NewRegisterSources != c.newSrcs {
			t.Errorf("%s+%s: newSources %d, want %d", c.u, c.v, eff.NewRegisterSources, c.newSrcs)
		}
		if eff.NewDestinations != c.newDests {
			t.Errorf("%s+%s: newDests %d, want %d", c.u, c.v, eff.NewDestinations, c.newDests)
		}
	}
}

func TestMergeCaseStrings(t *testing.T) {
	for _, c := range []MergeCase{MergeDistinct, MergeChained, MergeCommonDest, MergeCommonSource, MergeCommonBoth} {
		if c.String() == "case?" {
			t.Errorf("case %d has no description", int(c))
		}
	}
	if MergeCase(99).String() != "case?" {
		t.Error("unknown case should print case?")
	}
}

func TestClassifyMergeSymmetryOfSharedness(t *testing.T) {
	g, mb := fig6Graph(t)
	// The case classification is symmetric for the paired categories.
	for _, p := range [][2]string{{"s", "t"}, {"a", "b"}, {"s", "u"}} {
		x := ClassifyMerge(g, mb, p[0], p[1])
		y := ClassifyMerge(g, mb, p[1], p[0])
		if x.Case != y.Case || x.SelfAdjacent != y.SelfAdjacent {
			t.Errorf("%s+%s asymmetric: %v vs %v", p[0], p[1], x, y)
		}
	}
}
