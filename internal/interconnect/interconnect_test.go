package interconnect

import (
	"reflect"
	"testing"

	"bistpath/internal/benchdata"
	"bistpath/internal/dfg"
	"bistpath/internal/modassign"
	"bistpath/internal/regassign"
)

// bindEx1 returns the fully bound ex1 benchmark.
func bindEx1(t *testing.T) (*dfg.Graph, *modassign.Binding, *regassign.Binding, *Binding) {
	t.Helper()
	b := benchdata.Ex1()
	mb, err := b.Modules()
	if err != nil {
		t.Fatal(err)
	}
	rb, err := regassign.Bind(b.Graph, mb, regassign.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sh := regassign.NewSharing(b.Graph, mb)
	ib, err := Bind(b.Graph, mb, rb, sh)
	if err != nil {
		t.Fatal(err)
	}
	return b.Graph, mb, rb, ib
}

func TestSourceOf(t *testing.T) {
	b := benchdata.Paulin()
	mb, _ := b.Modules()
	rb, err := regassign.Bind(b.Graph, mb, regassign.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// dx is a port input: source is a pad.
	if s := SourceOf(rb, b.Graph, "dx"); s != "in:dx" {
		t.Errorf("SourceOf(dx) = %q, want in:dx", s)
	}
	if !IsPad("in:dx") || IsPad("R1") {
		t.Error("IsPad misclassifies")
	}
	// x is register allocated.
	if s := SourceOf(rb, b.Graph, "x"); IsPad(s) || s == "" {
		t.Errorf("SourceOf(x) = %q, want a register", s)
	}
}

func TestOperandSourcesRespectCommutativity(t *testing.T) {
	g, mb, rb, ib := bindEx1(t)
	_ = mb
	for _, op := range g.Ops() {
		l, r := ib.OperandSources(g, rb, op)
		a := SourceOf(rb, g, op.Args[0])
		bsrc := SourceOf(rb, g, op.Args[1])
		if ib.Swapped[op.Name] {
			if l != bsrc || r != a {
				t.Errorf("op %s swapped sources wrong: %s,%s", op.Name, l, r)
			}
			if op.Kind.Commutative() == false {
				t.Errorf("non-commutative op %s was swapped", op.Name)
			}
		} else if l != a || r != bsrc {
			t.Errorf("op %s sources wrong: %s,%s", op.Name, l, r)
		}
	}
}

func TestPortSourcesCoverEveryInstance(t *testing.T) {
	g, mb, rb, ib := bindEx1(t)
	for _, m := range mb.Modules {
		left, right := PortSources(g, mb, rb, ib, m.Name)
		if len(left) == 0 || len(right) == 0 {
			t.Fatalf("module %s has empty port: L=%v R=%v", m.Name, left, right)
		}
		for _, opName := range m.Ops {
			l, r := ib.OperandSources(g, rb, g.Op(opName))
			if !containsT(left, l) {
				t.Errorf("op %s left source %s not in %v", opName, l, left)
			}
			if !containsT(right, r) {
				t.Errorf("op %s right source %s not in %v", opName, r, right)
			}
		}
	}
}

func TestIRPartitionDisjointAndComplete(t *testing.T) {
	g, mb, rb, ib := bindEx1(t)
	for _, m := range mb.Modules {
		p := InputRegisterPartition(g, mb, rb, ib, m.Name)
		seen := map[string]int{}
		for _, s := range p.L {
			seen[s]++
		}
		for _, s := range p.R {
			seen[s]++
		}
		for _, s := range p.LR {
			seen[s]++
		}
		for reg, n := range seen {
			if n != 1 {
				t.Errorf("module %s: register %s appears %d times in partition", m.Name, reg, n)
			}
		}
	}
}

func TestNonCommutativeNeverSwapped(t *testing.T) {
	g := dfg.New("nc")
	g.AddInput("a", "b", "c")
	g.AddOp("s1", dfg.Sub, 1, "x", "a", "b")
	g.AddOp("s2", dfg.Sub, 2, "y", "c", "x")
	g.MarkOutput("y")
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	mb, err := modassign.FromMap(g, map[string]string{"s1": "M1", "s2": "M1"})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := regassign.Bind(g, mb, regassign.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ib, err := Bind(g, mb, rb, nil)
	if err != nil {
		t.Fatal(err)
	}
	for op, sw := range ib.Swapped {
		if sw {
			t.Errorf("non-commutative op %s swapped", op)
		}
	}
}

func TestBindMinimizesMuxInputs(t *testing.T) {
	// Two commutative ops on one module sharing registers: the binder
	// must orient them so each port has a single source.
	// op1 = p * q, op2 = q * p (same sources reversed in the DFG).
	g := dfg.New("swap")
	g.AddInput("p", "q", "r", "s")
	g.AddOp("m1", dfg.Mul, 1, "x", "p", "q")
	g.AddOp("m2", dfg.Mul, 2, "y", "r", "s")
	g.MarkOutput("x", "y")
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	mb, err := modassign.FromMap(g, map[string]string{"m1": "M1", "m2": "M1"})
	if err != nil {
		t.Fatal(err)
	}
	// Force p,s into one register and q,r into another so that without
	// swapping, both ports would see both registers.
	rb := regassign.FromSets([][]string{{"p", "s"}, {"q", "r", "y"}, {"x"}})
	if err := rb.Validate(g); err != nil {
		t.Fatal(err)
	}
	ib, err := Bind(g, mb, rb, nil)
	if err != nil {
		t.Fatal(err)
	}
	left, right := PortSources(g, mb, rb, ib, "M1")
	if len(left)+len(right) != 2 {
		t.Errorf("orientation missed: L=%v R=%v (want one source per port)", left, right)
	}
}

func TestRegisterSources(t *testing.T) {
	g, mb, rb, _ := bindEx1(t)
	srcs := RegisterSources(g, mb, rb)
	if len(srcs) != rb.NumRegisters() {
		t.Fatalf("got %d entries", len(srcs))
	}
	// The register holding primary input a must list pad in:a.
	ra := rb.RegisterOf("a")
	if !containsT(srcs[ra], "in:a") {
		t.Errorf("register %s sources %v missing in:a", ra, srcs[ra])
	}
	// The register holding d (result of add1 on M1) must list M1.
	rd := rb.RegisterOf("d")
	if !containsT(srcs[rd], "M1") {
		t.Errorf("register %s sources %v missing M1", rd, srcs[rd])
	}
}

func TestMeasure(t *testing.T) {
	g, mb, rb, ib := bindEx1(t)
	st := Measure(g, mb, rb, ib)
	if st.MuxCount <= 0 || st.MuxInputs < st.MuxCount {
		t.Errorf("implausible stats %+v", st)
	}
}

func TestWeightedPrefersHighSDInLR(t *testing.T) {
	// When mux-input counts tie, the weighted binder must choose the
	// orientation that puts the higher-SD register on both ports.
	for _, b := range benchdata.All() {
		g := b.Graph
		mb, err := b.Modules()
		if err != nil {
			t.Fatal(err)
		}
		rb, err := regassign.Bind(g, mb, regassign.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		sh := regassign.NewSharing(g, mb)
		w, err := Bind(g, mb, rb, sh)
		if err != nil {
			t.Fatal(err)
		}
		u, err := Bind(g, mb, rb, nil)
		if err != nil {
			t.Fatal(err)
		}
		sw, su := Measure(g, mb, rb, w), Measure(g, mb, rb, u)
		if sw.MuxInputs != su.MuxInputs {
			t.Errorf("%s: weighting changed mux inputs: %d vs %d", b.Name, sw.MuxInputs, su.MuxInputs)
		}
		lrSD := func(ib *Binding) int {
			total := 0
			for _, m := range mb.Modules {
				for _, reg := range InputRegisterPartition(g, mb, rb, ib, m.Name).LR {
					total += sh.SDReg(rb.Register(reg).Vars)
				}
			}
			return total
		}
		if lrSD(w) < lrSD(u) {
			t.Errorf("%s: weighted LR sharing degree %d < unweighted %d", b.Name, lrSD(w), lrSD(u))
		}
	}
}

func containsT(list []string, x string) bool {
	for _, s := range list {
		if s == x {
			return true
		}
	}
	return false
}

var _ = reflect.DeepEqual
