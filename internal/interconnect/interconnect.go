// Package interconnect binds data transfers to module ports and
// multiplexers (Section IV of the paper). For every module the input
// registers are partitioned into IR^L, IR^R and IR^LR (connected to the
// left, right or both input ports). Minimum connectivity minimizes
// |IR^LR| (Pangrle); the testability-weighted mode additionally prefers,
// among minimum-mux solutions, those that place registers with high
// sharing degrees on both ports, improving their chances of being chosen
// as TPGs.
package interconnect

import (
	"fmt"
	"sort"
	"strings"

	"bistpath/internal/dfg"
	"bistpath/internal/modassign"
	"bistpath/internal/regassign"
)

// PadSource is the prefix of source identifiers that denote input pads
// (port-fed inputs) rather than registers.
const PadSource = "in:"

// IsPad reports whether a source identifier denotes an input pad.
func IsPad(src string) bool { return strings.HasPrefix(src, PadSource) }

// SourceOf returns the physical source feeding the value of a variable: a
// register name, or an input-pad identifier for port-fed inputs.
func SourceOf(rb *regassign.Binding, g *dfg.Graph, varName string) string {
	if v := g.Var(varName); v != nil && v.IsPort {
		return PadSource + varName
	}
	return rb.RegisterOf(varName)
}

// Binding records, per operation, whether its two operands are swapped
// with respect to the DFG argument order when wired to the module's left
// and right ports.
type Binding struct {
	Swapped map[string]bool
}

// OperandSources returns the (left, right) source identifiers for an op
// under this binding.
func (ib *Binding) OperandSources(g *dfg.Graph, rb *regassign.Binding, op *dfg.Op) (left, right string) {
	a := SourceOf(rb, g, op.Args[0])
	b := a
	if op.Binary() {
		b = SourceOf(rb, g, op.Args[1])
	}
	if ib.Swapped[op.Name] {
		return b, a
	}
	return a, b
}

// Bind chooses operand orientations. For each module the commutative
// instances are oriented by exhaustive search (the per-module instance
// count is small) minimizing, in order: total mux inputs over the two
// ports, |IR^LR|, and — when sh is non-nil — maximizing the summed
// sharing degree of registers connected to both ports. Non-commutative
// instances keep their argument order.
func Bind(g *dfg.Graph, mb *modassign.Binding, rb *regassign.Binding, sh *regassign.Sharing) (*Binding, error) {
	ib := &Binding{Swapped: make(map[string]bool)}
	for _, m := range mb.Modules {
		if err := bindModule(g, m, rb, sh, ib); err != nil {
			return nil, err
		}
	}
	return ib, nil
}

func bindModule(g *dfg.Graph, m *modassign.Module, rb *regassign.Binding, sh *regassign.Sharing, ib *Binding) error {
	type inst struct {
		op   *dfg.Op
		a, b string // source ids
		comm bool
	}
	var insts []inst
	for _, opName := range m.Ops {
		op := g.Op(opName)
		a := SourceOf(rb, g, op.Args[0])
		b := a
		if op.Binary() {
			b = SourceOf(rb, g, op.Args[1])
		}
		if a == "" || b == "" {
			return fmt.Errorf("interconnect: op %s has operand with no register", opName)
		}
		insts = append(insts, inst{op: op, a: a, b: b, comm: op.Kind.Commutative() && op.Binary()})
	}
	var free []int // indices of commutative instances with distinct sources
	for i, in := range insts {
		if in.comm && in.a != in.b {
			free = append(free, i)
		}
	}
	if len(free) > 20 {
		return fmt.Errorf("interconnect: module %s has %d free instances (search cap exceeded)", m.Name, len(free))
	}
	type scoreT struct {
		muxInputs int
		lrCount   int
		lrSD      int // negated preference: higher is better
	}
	better := func(x, y scoreT) bool {
		if x.muxInputs != y.muxInputs {
			return x.muxInputs < y.muxInputs
		}
		if x.lrCount != y.lrCount {
			return x.lrCount < y.lrCount
		}
		return x.lrSD > y.lrSD
	}
	evaluate := func(mask int) scoreT {
		left := make(map[string]bool)
		right := make(map[string]bool)
		for i, in := range insts {
			a, b := in.a, in.b
			for bit, fi := range free {
				if fi == i && mask&(1<<uint(bit)) != 0 {
					a, b = b, a
				}
			}
			left[a] = true
			if in.op.Binary() {
				right[b] = true
			}
		}
		var s scoreT
		s.muxInputs = len(left) + len(right)
		for src := range left {
			if right[src] {
				s.lrCount++
				if sh != nil && !IsPad(src) {
					if r := rb.Register(src); r != nil {
						s.lrSD += sh.SDReg(r.Vars)
					}
				}
			}
		}
		return s
	}
	bestMask, bestScore := 0, evaluate(0)
	for mask := 1; mask < 1<<uint(len(free)); mask++ {
		if s := evaluate(mask); better(s, bestScore) {
			bestMask, bestScore = mask, s
		}
	}
	for bit, fi := range free {
		if bestMask&(1<<uint(bit)) != 0 {
			ib.Swapped[insts[fi].op.Name] = true
		}
	}
	return nil
}

// PortSources returns the distinct sources wired to the left and right
// input ports of a module, sorted.
func PortSources(g *dfg.Graph, mb *modassign.Binding, rb *regassign.Binding, ib *Binding, module string) (left, right []string) {
	m := mb.Module(module)
	if m == nil {
		return nil, nil
	}
	ls := make(map[string]bool)
	rs := make(map[string]bool)
	for _, opName := range m.Ops {
		op := g.Op(opName)
		l, r := ib.OperandSources(g, rb, op)
		ls[l] = true
		if op.Binary() {
			rs[r] = true
		}
	}
	return sortedKeys(ls), sortedKeys(rs)
}

// IRPartition is the partition of a module's input registers into the
// sets connected to the left port only, the right port only, or both.
type IRPartition struct {
	L, R, LR []string
}

// InputRegisterPartition computes IR^L, IR^R and IR^LR for a module
// (pads excluded: only registers participate in the partition).
func InputRegisterPartition(g *dfg.Graph, mb *modassign.Binding, rb *regassign.Binding, ib *Binding, module string) IRPartition {
	left, right := PortSources(g, mb, rb, ib, module)
	inL := make(map[string]bool)
	for _, s := range left {
		if !IsPad(s) {
			inL[s] = true
		}
	}
	inR := make(map[string]bool)
	for _, s := range right {
		if !IsPad(s) {
			inR[s] = true
		}
	}
	var p IRPartition
	for s := range inL {
		if inR[s] {
			p.LR = append(p.LR, s)
		} else {
			p.L = append(p.L, s)
		}
	}
	for s := range inR {
		if !inL[s] {
			p.R = append(p.R, s)
		}
	}
	sort.Strings(p.L)
	sort.Strings(p.R)
	sort.Strings(p.LR)
	return p
}

// RegisterSources returns the distinct sources that load each register:
// producing modules of its variables plus input pads for primary-input
// variables, sorted. Keyed by register name.
func RegisterSources(g *dfg.Graph, mb *modassign.Binding, rb *regassign.Binding) map[string][]string {
	out := make(map[string][]string, len(rb.Registers))
	for _, r := range rb.Registers {
		set := make(map[string]bool)
		for _, vn := range r.Vars {
			v := g.Var(vn)
			if v.IsInput {
				set[PadSource+vn] = true
			} else {
				set[mb.ModuleOf(v.Def).Name] = true
			}
		}
		out[r.Name] = sortedKeys(set)
	}
	return out
}

// Stats summarizes the interconnect of a bound data path.
type Stats struct {
	MuxCount  int // ports (module inputs + register inputs) with ≥2 sources
	MuxInputs int // total extra mux inputs: Σ max(0, sources-1)
	LRTotal   int // Σ over modules of |IR^LR|
}

// Measure computes interconnect statistics.
func Measure(g *dfg.Graph, mb *modassign.Binding, rb *regassign.Binding, ib *Binding) Stats {
	var st Stats
	count := func(n int) {
		if n >= 2 {
			st.MuxCount++
			st.MuxInputs += n - 1
		}
	}
	for _, m := range mb.Modules {
		left, right := PortSources(g, mb, rb, ib, m.Name)
		count(len(left))
		count(len(right))
		st.LRTotal += len(InputRegisterPartition(g, mb, rb, ib, m.Name).LR)
	}
	for _, srcs := range RegisterSources(g, mb, rb) {
		count(len(srcs))
	}
	return st
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
