package opt

import (
	"testing"

	"bistpath/internal/dfg"
	"bistpath/internal/lang"
	"bistpath/internal/sched"
)

func compile(t *testing.T, src string) *dfg.Graph {
	t.Helper()
	g, err := lang.Compile("t", src, lang.Options{NoCSE: true})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// equivalent checks the two graphs compute the same outputs on a few
// vectors.
func equivalent(t *testing.T, a, b *dfg.Graph, inputs []map[string]uint64) {
	t.Helper()
	for _, in := range inputs {
		va, err := a.Eval(in, 16)
		if err != nil {
			t.Fatal(err)
		}
		vb, err := b.Eval(in, 16)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range a.Outputs() {
			if va[o] != vb[o] {
				t.Fatalf("output %s differs: %d vs %d (inputs %v)", o, va[o], vb[o], in)
			}
		}
	}
}

func vecs(names []string) []map[string]uint64 {
	var out []map[string]uint64
	for s := uint64(1); s <= 5; s++ {
		in := make(map[string]uint64)
		for i, n := range names {
			in[n] = s*31 + uint64(i)*7
		}
		out = append(out, in)
	}
	return out
}

// constVecs pins the literal constants to their values.
func constVecs(g *dfg.Graph) []map[string]uint64 {
	base := vecs(g.Inputs())
	for _, in := range base {
		for _, name := range g.Inputs() {
			if v, ok := constValue(g, name); ok {
				in[name] = v
			}
		}
	}
	return base
}

func TestDeadCode(t *testing.T) {
	g := dfg.New("dead")
	g.AddInput("a", "b")
	g.AddOp("live", dfg.Add, 0, "x", "a", "b")
	g.AddOp("dead1", dfg.Mul, 0, "y", "a", "b")
	g.AddOp("dead2", dfg.Sub, 0, "z", "y", "a")
	// z and y unused; mark only x.
	g.MarkOutput("x", "z") // make it valid first
	out, removed, err := DeadCode(g)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 0 {
		t.Errorf("removed %d with everything live", removed)
	}
	// Now a graph with real dead code: rebuild without marking z.
	h := dfg.New("dead2")
	h.AddInput("a", "b")
	h.AddOp("live", dfg.Add, 0, "x", "a", "b")
	h.AddOp("dead1", dfg.Mul, 0, "y", "a", "b")
	h.MarkOutput("x", "y")
	// y is an output here, so nothing is dead; instead exercise via
	// Simplify which generates dead code internally.
	_ = out
	_ = h
}

func TestSimplifyIdentities(t *testing.T) {
	g := compile(t, `
		p = x * 1 + y
		q = (x + 0) * (y - 0)
		r = x / 1 + y * 0
	`)
	opt, n, err := Simplify(g)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no simplifications found")
	}
	if len(opt.Ops()) >= len(g.Ops()) {
		t.Errorf("ops not reduced: %d vs %d", len(opt.Ops()), len(g.Ops()))
	}
	equivalent(t, g, opt, constVecs(g))
}

func TestSimplifyKeepsOutputs(t *testing.T) {
	g := compile(t, "p = x * 1\n")
	opt, _, err := Simplify(g)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Var("p") == nil || !opt.Var("p").IsOutput {
		t.Error("output p lost")
	}
	equivalent(t, g, opt, constVecs(g))
}

func TestSimplifyAndZero(t *testing.T) {
	g := compile(t, "p = (x & 0) | y\n")
	opt, n, err := Simplify(g)
	if err != nil {
		t.Fatal(err)
	}
	// The & folds to the constant; the | survives because it produces
	// the primary output p (an output needs a producing operation).
	if n != 1 {
		t.Errorf("expected exactly the &0 fold, got %d", n)
	}
	for _, op := range opt.Ops() {
		if op.Kind == dfg.And {
			t.Error("x&0 not folded away")
		}
	}
	equivalent(t, g, opt, constVecs(g))
}

func TestBalanceChain(t *testing.T) {
	// A 7-element sum chain: depth 7 unbalanced, 3 balanced.
	g := compile(t, "s = a + b + c + d + e + f + h\n")
	asap, err := sched.ASAP(g)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Length(asap) != 6 {
		t.Fatalf("unbalanced depth = %d, want 6", sched.Length(asap))
	}
	bal, n, err := Balance(g)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("chains rebalanced = %d, want 1", n)
	}
	asap2, err := sched.ASAP(bal)
	if err != nil {
		t.Fatal(err)
	}
	if got := sched.Length(asap2); got != 3 {
		t.Errorf("balanced depth = %d, want 3", got)
	}
	equivalent(t, g, bal, vecs(g.Inputs()))
}

func TestBalancePreservesSharedIntermediates(t *testing.T) {
	// t is used twice: it must not be absorbed into a chain.
	g := compile(t, `
		t = a + b + c
		p = t * d
		q = t - d
	`)
	bal, _, err := Balance(g)
	if err != nil {
		t.Fatal(err)
	}
	if bal.Var("t") == nil {
		t.Fatal("shared intermediate t eliminated")
	}
	equivalent(t, g, bal, vecs(g.Inputs()))
}

func TestBalanceMixedKinds(t *testing.T) {
	g := compile(t, "p = a * b * c * d + e + f + h\n")
	bal, n, err := Balance(g)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("no chains found")
	}
	equivalent(t, g, bal, vecs(g.Inputs()))
}

func TestBalanceNoChains(t *testing.T) {
	g := compile(t, "p = a - b\nq = p / c\n")
	bal, n, err := Balance(g)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("found %d chains in chain-free graph", n)
	}
	equivalent(t, g, bal, vecs(g.Inputs()))
}

// End to end: optimize then synthesize; the balanced FIR-like chain
// schedules shorter.
func TestOptimizeThenSchedule(t *testing.T) {
	g := compile(t, "y = a*k + b*k + c*k + d*k + e*k + f*k\n")
	bal, _, err := Balance(g)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := sched.ListSchedule(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := sched.ListSchedule(bal, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Length(s2) >= sched.Length(s1) {
		t.Errorf("balancing did not shorten schedule: %d vs %d", sched.Length(s2), sched.Length(s1))
	}
}
