// Package opt provides behavioral-level optimization passes over data
// flow graphs, applied before scheduling: dead-code elimination,
// identity simplification against literal constants, and tree-height
// reduction (rebalancing chains of associative operations to shorten the
// critical path). All passes are semantics-preserving rewrites that
// return a fresh unscheduled graph.
package opt

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"bistpath/internal/dfg"
)

// DeadCode removes operations whose results are transitively unused
// (feed neither a primary output nor a live operation) and inputs that
// end up unreferenced. It returns the rewritten graph and the number of
// operations removed.
func DeadCode(g *dfg.Graph) (*dfg.Graph, int, error) {
	live := make(map[string]bool) // live variables
	var mark func(varName string)
	mark = func(varName string) {
		if live[varName] {
			return
		}
		live[varName] = true
		v := g.Var(varName)
		if v.Def == "" {
			return
		}
		for _, a := range g.Op(v.Def).Args {
			mark(a)
		}
	}
	for _, o := range g.Outputs() {
		mark(o)
	}
	out := dfg.New(g.Name)
	for _, v := range g.Vars() {
		if v.IsInput && live[v.Name] {
			if err := out.AddInput(v.Name); err != nil {
				return nil, 0, err
			}
			if v.IsPort {
				if err := out.MarkPortInput(v.Name); err != nil {
					return nil, 0, err
				}
			}
		}
	}
	removed := 0
	for _, op := range g.Ops() {
		if !live[op.Result] {
			removed++
			continue
		}
		if err := out.AddOp(op.Name, op.Kind, op.Step, op.Result, op.Args...); err != nil {
			return nil, 0, err
		}
	}
	if err := out.MarkOutput(g.Outputs()...); err != nil {
		return nil, 0, err
	}
	if err := out.Validate(); err != nil {
		return nil, 0, err
	}
	return out, removed, nil
}

// constValue recognizes the lang convention for literal constants: a
// port input named k<value>.
func constValue(g *dfg.Graph, varName string) (uint64, bool) {
	v := g.Var(varName)
	if v == nil || !v.IsPort || !strings.HasPrefix(varName, "k") {
		return 0, false
	}
	n, err := strconv.ParseUint(varName[1:], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Simplify applies algebraic identities against literal constants:
//
//	x*1 -> x    x+0 -> x    x-0 -> x    x/1 -> x
//	x*0 -> 0    0*x -> 0    x&0 -> 0    x|0 -> x    x^0 -> x
//
// Operations whose results are primary outputs are kept (an output must
// be produced by an operation), and a simplification that would leave
// the graph without any operation is skipped. Dead code exposed by the
// rewrites is eliminated. Returns the rewritten graph and the number of
// operations simplified away.
func Simplify(g *dfg.Graph) (*dfg.Graph, int, error) {
	subst := make(map[string]string) // result var -> replacement var
	resolve := func(name string) string {
		for {
			r, ok := subst[name]
			if !ok {
				return name
			}
			name = r
		}
	}
	isOut := make(map[string]bool)
	for _, o := range g.Outputs() {
		isOut[o] = true
	}
	simplified := 0
	out := dfg.New(g.Name)
	for _, v := range g.Vars() {
		if v.IsInput {
			if err := out.AddInput(v.Name); err != nil {
				return nil, 0, err
			}
			if v.IsPort {
				if err := out.MarkPortInput(v.Name); err != nil {
					return nil, 0, err
				}
			}
		}
	}
	kept := 0
	for _, op := range g.Ops() {
		a := resolve(op.Args[0])
		b := ""
		if op.Binary() {
			b = resolve(op.Args[1])
		}
		if !isOut[op.Result] && op.Binary() {
			if rep, ok := simplifyOp(g, op.Kind, a, b); ok {
				subst[op.Result] = rep
				simplified++
				continue
			}
		}
		args := []string{a}
		if op.Binary() {
			args = append(args, b)
		}
		if err := out.AddOp(op.Name, op.Kind, op.Step, op.Result, args...); err != nil {
			return nil, 0, err
		}
		kept++
	}
	if kept == 0 {
		return nil, 0, fmt.Errorf("opt: simplification would remove every operation")
	}
	if err := out.MarkOutput(g.Outputs()...); err != nil {
		return nil, 0, err
	}
	cleaned, _, err := DeadCode(out)
	if err != nil {
		return nil, 0, err
	}
	return cleaned, simplified, nil
}

// simplifyOp returns the replacement variable for an identity, if any.
func simplifyOp(g *dfg.Graph, kind dfg.Kind, a, b string) (string, bool) {
	av, aConst := constValue(g, a)
	bv, bConst := constValue(g, b)
	switch kind {
	case dfg.Mul:
		if bConst && bv == 1 {
			return a, true
		}
		if aConst && av == 1 {
			return b, true
		}
		if (bConst && bv == 0) || (aConst && av == 0) {
			if aConst && av == 0 {
				return a, true
			}
			return b, true
		}
	case dfg.Add, dfg.Or, dfg.Xor:
		if bConst && bv == 0 {
			return a, true
		}
		if aConst && av == 0 {
			return b, true
		}
	case dfg.Sub:
		if bConst && bv == 0 {
			return a, true
		}
	case dfg.Div:
		if bConst && bv == 1 {
			return a, true
		}
	case dfg.And:
		if bConst && bv == 0 {
			return b, true
		}
		if aConst && av == 0 {
			return a, true
		}
	}
	return "", false
}

// Balance rebalances chains of associative same-kind operations
// (+, *, &, |, ^) into trees, shortening the dependency depth (and hence
// the minimum schedule latency). Only chain links whose intermediate
// results have a single consumer and are not primary outputs are
// restructured. The result is unscheduled. Returns the rewritten graph
// and the number of chains rebalanced.
func Balance(g *dfg.Graph) (*dfg.Graph, int, error) {
	assoc := func(k dfg.Kind) bool {
		switch k {
		case dfg.Add, dfg.Mul, dfg.And, dfg.Or, dfg.Xor:
			return true
		}
		return false
	}
	isOut := make(map[string]bool)
	for _, o := range g.Outputs() {
		isOut[o] = true
	}
	// absorbable: op result feeds exactly one consumer of the same kind
	// and is not an output.
	absorbable := func(varName string, kind dfg.Kind) bool {
		v := g.Var(varName)
		if v == nil || v.Def == "" || isOut[varName] || len(v.Uses) != 1 {
			return false
		}
		return g.Op(v.Def).Kind == kind
	}
	absorbed := make(map[string]bool) // op names folded into a chain
	type chain struct {
		root   *dfg.Op
		leaves []string
	}
	var chains []chain
	// Roots: associative ops not themselves absorbable into a consumer.
	for _, op := range g.Ops() {
		if !assoc(op.Kind) || absorbable(op.Result, op.Kind) {
			continue
		}
		var leaves []string
		size := 0
		var flatten func(varName string)
		flatten = func(varName string) {
			if absorbable(varName, op.Kind) {
				def := g.Op(g.Var(varName).Def)
				absorbed[def.Name] = true
				size++
				flatten(def.Args[0])
				flatten(def.Args[1])
				return
			}
			leaves = append(leaves, varName)
		}
		if !assoc(op.Kind) {
			continue
		}
		flatten(op.Args[0])
		flatten(op.Args[1])
		if size > 0 {
			chains = append(chains, chain{root: op, leaves: leaves})
			absorbed[op.Name] = true
		}
	}
	if len(chains) == 0 {
		return g.Clone(), 0, nil
	}
	out := dfg.New(g.Name)
	for _, v := range g.Vars() {
		if v.IsInput {
			if err := out.AddInput(v.Name); err != nil {
				return nil, 0, err
			}
			if v.IsPort {
				if err := out.MarkPortInput(v.Name); err != nil {
					return nil, 0, err
				}
			}
		}
	}
	// Emit in dependency order: untouched ops as-is, chains as balanced
	// trees once all their leaves exist.
	nTmp := 0
	emitted := make(map[string]bool)
	ready := func(args []string) bool {
		for _, a := range args {
			if out.Var(a) == nil {
				return false
			}
		}
		return true
	}
	pendingOps := []*dfg.Op{}
	for _, op := range g.Ops() {
		if !absorbed[op.Name] {
			pendingOps = append(pendingOps, op)
		}
	}
	pendingChains := append([]chain(nil), chains...)
	for len(pendingOps)+len(pendingChains) > 0 {
		progress := false
		var nextOps []*dfg.Op
		for _, op := range pendingOps {
			if !ready(op.Args) {
				nextOps = append(nextOps, op)
				continue
			}
			if err := out.AddOp(op.Name, op.Kind, 0, op.Result, op.Args...); err != nil {
				return nil, 0, err
			}
			emitted[op.Name] = true
			progress = true
		}
		pendingOps = nextOps
		var nextChains []chain
		for _, ch := range pendingChains {
			if !ready(ch.leaves) {
				nextChains = append(nextChains, ch)
				continue
			}
			// Balanced reduction over the leaves.
			level := append([]string(nil), ch.leaves...)
			sort.Strings(level) // deterministic shape
			for len(level) > 1 {
				var next []string
				for i := 0; i+1 < len(level); i += 2 {
					var res string
					if len(level) == 2 {
						res = ch.root.Result
					} else {
						nTmp++
						res = fmt.Sprintf("%%b%d", nTmp)
					}
					nTmp++
					opName := fmt.Sprintf("bal%d", nTmp)
					if err := out.AddOp(opName, ch.root.Kind, 0, res, level[i], level[i+1]); err != nil {
						return nil, 0, err
					}
					next = append(next, res)
				}
				if len(level)%2 == 1 {
					next = append(next, level[len(level)-1])
				}
				level = next
			}
			progress = true
		}
		pendingChains = nextChains
		if !progress {
			return nil, 0, fmt.Errorf("opt: balance ordering stuck")
		}
	}
	if err := out.MarkOutput(g.Outputs()...); err != nil {
		return nil, 0, err
	}
	if err := out.Validate(); err != nil {
		return nil, 0, err
	}
	return out, len(chains), nil
}
