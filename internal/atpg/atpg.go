// Package atpg generates deterministic tests for the stuck-at faults
// that pseudo-random BIST misses, and proves redundancy for the ones no
// input can detect. For the two-operand combinational cones this flow
// produces (module widths of 4..16 bits), a budgeted exhaustive scan in
// a pseudo-random order is both simple and complete: a fault that
// survives the full operand space is provably untestable, so coverage
// can be reported as fault *efficiency* (detected / testable), the
// metric BIST papers use for random-pattern-resistant structures like
// the restoring divider.
package atpg

import (
	"fmt"

	"bistpath/internal/gates"
)

// Verdict classifies one fault after deterministic search.
type Verdict int

// Fault classifications.
const (
	// Detected: a test vector was found.
	Detected Verdict = iota
	// Redundant: the whole operand space was scanned without a
	// difference — the fault is provably untestable at the cone's ports.
	Redundant
	// Aborted: the search budget ran out before a verdict.
	Aborted
)

func (v Verdict) String() string {
	switch v {
	case Detected:
		return "detected"
	case Redundant:
		return "redundant"
	default:
		return "aborted"
	}
}

// Result is the outcome for one fault.
type Result struct {
	Fault   gates.StuckAt
	Verdict Verdict
	// A and B are the detecting operand values (Detected only).
	A, B uint64
	// Tried is the number of vectors evaluated.
	Tried int
}

// Cone describes the combinational circuit under test: two operand buses
// and the observed output bus, all within one netlist.
type Cone struct {
	Net  *gates.Netlist
	A, B []gates.Sig
	Out  []gates.Sig
}

// Generate searches for a test for the fault: operand pairs are
// enumerated in a full-period pseudo-random order (an LCG permutation of
// the 2^(wa+wb) space), comparing fault-free and faulty responses, until
// a difference is found, the space is exhausted (Redundant), or `budget`
// vectors have been tried (0 = the whole space).
func Generate(c Cone, fault gates.StuckAt, budget int) (Result, error) {
	sim, err := gates.NewSim(c.Net)
	if err != nil {
		return Result{}, err
	}
	wa, wb := uint(len(c.A)), uint(len(c.B))
	space := uint64(1) << (wa + wb)
	if budget <= 0 || uint64(budget) > space {
		budget = int(space)
	}
	res := Result{Fault: fault, Verdict: Aborted}
	// Full-period LCG over 2^k: x' = 5x+1 mod 2^k visits every value.
	x := uint64(0x9E37_79B9) & (space - 1)
	maskA := (uint64(1) << wa) - 1
	eval := func(a, b uint64, f *gates.StuckAt) uint64 {
		sim.SetFault(f)
		sim.SetBus(c.A, a)
		sim.SetBus(c.B, b)
		sim.Eval()
		return sim.ReadBus(c.Out)
	}
	for i := 0; i < budget; i++ {
		a := x & maskA
		b := x >> wa
		good := eval(a, b, nil)
		bad := eval(a, b, &fault)
		res.Tried++
		if good != bad {
			res.Verdict = Detected
			res.A, res.B = a, b
			return res, nil
		}
		x = (5*x + 1) & (space - 1)
	}
	if uint64(res.Tried) == space {
		res.Verdict = Redundant
	}
	return res, nil
}

// Report summarizes a deterministic top-up over a fault set.
type Report struct {
	Total     int
	Detected  int // by the deterministic search
	Redundant int
	Aborted   int
	Vectors   [][2]uint64 // the generated tests
}

// Efficiency returns detected / (total - redundant) * 100: the fault
// efficiency once provably untestable faults are excluded.
func (r Report) Efficiency(alreadyDetected int) float64 {
	testable := r.Total + alreadyDetected - r.Redundant
	if testable <= 0 {
		return 100
	}
	return float64(r.Detected+alreadyDetected) / float64(testable) * 100
}

// TopUp runs Generate for every fault, accumulating the verdicts and the
// detecting vectors.
func TopUp(c Cone, faults []gates.StuckAt, budget int) (Report, error) {
	var rep Report
	for _, f := range faults {
		r, err := Generate(c, f, budget)
		if err != nil {
			return rep, err
		}
		rep.Total++
		switch r.Verdict {
		case Detected:
			rep.Detected++
			rep.Vectors = append(rep.Vectors, [2]uint64{r.A, r.B})
		case Redundant:
			rep.Redundant++
		default:
			rep.Aborted++
		}
	}
	return rep, nil
}

// ConeForKind builds a standalone cone computing one operator, used to
// analyze a functional unit in isolation.
func ConeForKind(build func(n *gates.Netlist, a, b []gates.Sig) []gates.Sig, width int) (Cone, error) {
	if width <= 0 || width > 16 {
		return Cone{}, fmt.Errorf("atpg: width %d out of range [1,16]", width)
	}
	n := gates.New()
	a := n.InputBus("a", width)
	b := n.InputBus("b", width)
	out := build(n, a, b)
	n.OutputBus("out", out)
	if err := n.Validate(); err != nil {
		return Cone{}, err
	}
	return Cone{Net: n, A: a, B: b, Out: out}, nil
}
