package atpg

import (
	"testing"

	"bistpath/internal/gates"
)

func adderCone(t *testing.T, w int) Cone {
	t.Helper()
	c, err := ConeForKind(func(n *gates.Netlist, a, b []gates.Sig) []gates.Sig {
		return n.AddBusNoCarry(a, b, gates.Zero)
	}, w)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func divCone(t *testing.T, w int) Cone {
	t.Helper()
	c, err := ConeForKind(func(n *gates.Netlist, a, b []gates.Sig) []gates.Sig {
		return n.DivBus(a, b)
	}, w)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func allFaults(c Cone) []gates.StuckAt {
	var out []gates.StuckAt
	for _, g := range c.Net.Gates {
		out = append(out, gates.StuckAt{Sig: g.Out, Value: false}, gates.StuckAt{Sig: g.Out, Value: true})
	}
	return out
}

// Every fault of a dead-logic-free adder is testable, and every
// generated vector really detects its fault.
func TestAdderFullyTestable(t *testing.T) {
	c := adderCone(t, 4)
	rep, err := TopUp(c, allFaults(c), 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Redundant != 0 || rep.Aborted != 0 {
		t.Errorf("adder report %+v, want all detected", rep)
	}
	if rep.Detected != rep.Total {
		t.Errorf("detected %d of %d", rep.Detected, rep.Total)
	}
}

func TestGeneratedVectorDetects(t *testing.T) {
	c := adderCone(t, 4)
	f := gates.StuckAt{Sig: c.Net.Gates[0].Out, Value: true}
	r, err := Generate(c, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != Detected {
		t.Fatalf("verdict %v", r.Verdict)
	}
	// Replay the vector.
	sim, err := gates.NewSim(c.Net)
	if err != nil {
		t.Fatal(err)
	}
	sim.SetBus(c.A, r.A)
	sim.SetBus(c.B, r.B)
	sim.Eval()
	good := sim.ReadBus(c.Out)
	sim.SetFault(&f)
	sim.Eval()
	if sim.ReadBus(c.Out) == good {
		t.Error("generated vector does not detect the fault")
	}
}

// A provably redundant fault: stuck-at on logic whose effect a
// reconvergent mask always hides. Build x AND NOT x: the output is
// constant 0, so output stuck-at-0 is redundant.
func TestRedundancyProof(t *testing.T) {
	n := gates.New()
	a := n.InputBus("a", 1)
	nx := n.Not1(a[0])
	y := n.And2(a[0], nx)
	out := []gates.Sig{y}
	n.OutputBus("out", out)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	c := Cone{Net: n, A: a, B: nil, Out: out}
	r, err := Generate(c, gates.StuckAt{Sig: y, Value: false}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != Redundant {
		t.Errorf("constant-0 output sa0: verdict %v, want redundant", r.Verdict)
	}
	// Stuck-at-1 on it IS testable (forces a 1 the good circuit never shows).
	r, err = Generate(c, gates.StuckAt{Sig: y, Value: true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != Detected {
		t.Errorf("constant-0 output sa1: verdict %v, want detected", r.Verdict)
	}
}

// The width-4 divider: exhaustive verdicts for every fault; efficiency
// over testable faults must be 100% by construction.
func TestDividerFaultEfficiency(t *testing.T) {
	c := divCone(t, 4)
	rep, err := TopUp(c, allFaults(c), 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Aborted != 0 {
		t.Fatalf("aborted %d with unlimited budget", rep.Aborted)
	}
	if got := rep.Efficiency(0); got != 100 {
		t.Errorf("efficiency %f, want 100 (everything testable was detected)", got)
	}
	t.Logf("divider w=4: %d faults, %d detected, %d redundant", rep.Total, rep.Detected, rep.Redundant)
}

func TestBudgetAborts(t *testing.T) {
	c := divCone(t, 4)
	// A redundant-ish search with a tiny budget must abort, not lie.
	var target gates.StuckAt
	found := false
	for _, f := range allFaults(c) {
		r, err := Generate(c, f, 0)
		if err != nil {
			t.Fatal(err)
		}
		if r.Verdict == Redundant {
			target = f
			found = true
			break
		}
	}
	if !found {
		t.Skip("no redundant fault in width-4 divider")
	}
	r, err := Generate(c, target, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != Aborted || r.Tried != 3 {
		t.Errorf("got %+v, want aborted after 3", r)
	}
}

func TestLCGCoversSpace(t *testing.T) {
	// The enumeration must visit every operand pair exactly once: a
	// redundancy verdict relies on it.
	space := uint64(1) << 8
	seen := make(map[uint64]bool, space)
	x := uint64(0x9E37_79B9) & (space - 1)
	for i := uint64(0); i < space; i++ {
		if seen[x] {
			t.Fatalf("LCG revisited %d after %d steps", x, i)
		}
		seen[x] = true
		x = (5*x + 1) & (space - 1)
	}
}

func TestConeForKindValidation(t *testing.T) {
	if _, err := ConeForKind(func(n *gates.Netlist, a, b []gates.Sig) []gates.Sig {
		return n.MulBus(a, b)
	}, 0); err == nil {
		t.Error("width 0 accepted")
	}
}

func TestEfficiencyMath(t *testing.T) {
	r := Report{Total: 10, Detected: 6, Redundant: 4}
	// 90 already detected elsewhere, 6 more here, 4 redundant of 100.
	if got := r.Efficiency(90); got != 100 {
		t.Errorf("efficiency = %v, want 100", got)
	}
	r = Report{Total: 10, Detected: 2, Redundant: 4}
	if got := r.Efficiency(90); got < 95.8 || got > 95.9 {
		t.Errorf("efficiency = %v, want ~95.83", got)
	}
}
