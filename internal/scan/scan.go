// Package scan models the full-scan design-for-test alternative the
// paper's introduction positions BIST against: every register gets a
// scan multiplexer and patterns are shifted in serially from a tester.
// The model supports the area/test-time tradeoff experiment — scan is
// cheaper in silicon but orders of magnitude slower per pattern, which
// is the economic argument for spending area on BIST registers.
package scan

import (
	"bistpath/internal/area"
	"bistpath/internal/bist"
	"bistpath/internal/datapath"
)

// Plan is a full-scan test configuration for a data path.
type Plan struct {
	Registers  int // registers converted to scan flip-flops
	ChainBits  int // total scan chain length (registers * width)
	ExtraArea  int // gate equivalents added by scan muxes
	CyclesScan int // test cycles for the pattern budget (serial shifting)
}

// scanMuxBitArea is the per-bit cost of converting a D flip-flop into a
// scan flip-flop (one 2:1 multiplexer in front of D).
func scanMuxBitArea(m area.Model) int { return m.MuxBitPerInput }

// Build converts every register of the data path to scan and costs the
// test: each of `patterns` test patterns requires shifting the full
// chain in (ChainBits cycles), one capture cycle, and shifting the
// response out (overlapped with the next shift-in).
func Build(dp *datapath.Datapath, m area.Model, patterns int) *Plan {
	p := &Plan{Registers: len(dp.Regs)}
	p.ChainBits = p.Registers * dp.Width
	p.ExtraArea = p.Registers * scanMuxBitArea(m) * dp.Width
	p.CyclesScan = patterns*(p.ChainBits+1) + p.ChainBits // final shift-out
	return p
}

// Comparison contrasts full scan with a synthesized BIST plan at the
// same pattern budget.
type Comparison struct {
	Scan Plan
	// BISTExtraArea is the register-upgrade area of the BIST plan.
	BISTExtraArea int
	// BISTCycles is the BIST test time: per session, one seed scan-in of
	// the chain plus one clock per pattern per module operation mode.
	BISTCycles int
	// Sessions is the BIST session count.
	Sessions int
}

// Compare builds the scan alternative and costs the given BIST plan.
func Compare(dp *datapath.Datapath, plan *bist.Plan, m area.Model, patterns int) Comparison {
	c := Comparison{
		Scan:          *Build(dp, m, patterns),
		BISTExtraArea: plan.ExtraArea,
		Sessions:      len(plan.Sessions),
	}
	modes := 0
	for _, mod := range dp.Modules {
		modes += len(mod.Kinds)
	}
	seedIn := len(dp.Regs) * dp.Width // one scan load of seeds per session
	c.BISTCycles = len(plan.Sessions)*seedIn + modes*patterns
	return c
}

// AreaRatio returns BIST extra area / scan extra area.
func (c Comparison) AreaRatio() float64 {
	if c.Scan.ExtraArea == 0 {
		return 0
	}
	return float64(c.BISTExtraArea) / float64(c.Scan.ExtraArea)
}

// SpeedUp returns scan test cycles / BIST test cycles.
func (c Comparison) SpeedUp() float64 {
	if c.BISTCycles == 0 {
		return 0
	}
	return float64(c.Scan.CyclesScan) / float64(c.BISTCycles)
}
