package scan

import (
	"testing"

	"bistpath/internal/area"
	"bistpath/internal/benchdata"
	"bistpath/internal/bist"
	"bistpath/internal/datapath"
	"bistpath/internal/interconnect"
	"bistpath/internal/regassign"
)

func buildPlan(t *testing.T, name string) (*datapath.Datapath, *bist.Plan) {
	t.Helper()
	b := benchdata.ByName(name)
	mb, err := b.Modules()
	if err != nil {
		t.Fatal(err)
	}
	rb, err := regassign.Bind(b.Graph, mb, regassign.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ib, err := interconnect.Bind(b.Graph, mb, rb, regassign.NewSharing(b.Graph, mb))
	if err != nil {
		t.Fatal(err)
	}
	dp, err := datapath.Build(b.Graph, mb, rb, ib, 8)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := bist.Optimize(dp, bist.DefaultOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	return dp, plan
}

func TestBuildScan(t *testing.T) {
	dp, _ := buildPlan(t, "ex1")
	m := area.Default(8)
	p := Build(dp, m, 250)
	if p.Registers != 3 || p.ChainBits != 24 {
		t.Errorf("scan plan %+v", p)
	}
	if p.ExtraArea != 3*8*m.MuxBitPerInput {
		t.Errorf("scan area %d", p.ExtraArea)
	}
	// 250 patterns * (24+1) shift/capture + final shift-out.
	if p.CyclesScan != 250*25+24 {
		t.Errorf("scan cycles %d", p.CyclesScan)
	}
}

func TestCompareTradeoff(t *testing.T) {
	for _, name := range []string{"ex1", "ex2", "tseng1", "tseng2", "paulin"} {
		dp, plan := buildPlan(t, name)
		c := Compare(dp, plan, area.Default(8), 250)
		// The economics the paper's introduction assumes: scan is cheaper
		// in area, BIST is much faster. Paulin is the interesting
		// exception: its port-fed inputs provide free pattern sources
		// (I-paths from primary inputs), so its BIST plan is cheaper
		// than full scan in area too.
		if name != "paulin" && c.BISTExtraArea <= c.Scan.ExtraArea {
			t.Errorf("%s: BIST area %d not above scan %d (model broken)", name, c.BISTExtraArea, c.Scan.ExtraArea)
		}
		if name == "paulin" && c.BISTExtraArea >= c.Scan.ExtraArea {
			t.Errorf("paulin: pad-head BIST (%d) should undercut scan (%d)", c.BISTExtraArea, c.Scan.ExtraArea)
		}
		if c.SpeedUp() < 4 {
			t.Errorf("%s: BIST speedup %.1fx implausibly low", name, c.SpeedUp())
		}
		if c.Sessions < 1 || c.BISTCycles <= 0 {
			t.Errorf("%s: malformed comparison %+v", name, c)
		}
	}
}

func TestRatios(t *testing.T) {
	c := Comparison{Scan: Plan{ExtraArea: 100, CyclesScan: 10000}, BISTExtraArea: 300, BISTCycles: 500}
	if c.AreaRatio() != 3.0 {
		t.Errorf("AreaRatio = %v", c.AreaRatio())
	}
	if c.SpeedUp() != 20.0 {
		t.Errorf("SpeedUp = %v", c.SpeedUp())
	}
	z := Comparison{}
	if z.AreaRatio() != 0 || z.SpeedUp() != 0 {
		t.Error("zero guards failed")
	}
}
