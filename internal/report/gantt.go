package report

import (
	"fmt"
	"sort"
	"strings"

	"bistpath/internal/datapath"
)

// Gantt renders an ASCII occupancy chart of a bound data path: one row
// per register showing which variable it holds at every control step,
// and one row per module showing the operation it executes. The chart
// makes register reuse and module utilization visible at a glance.
func Gantt(dp *datapath.Datapath) (string, error) {
	g := dp.Graph()
	lts, err := g.Lifetimes()
	if err != nil {
		return "", err
	}
	steps := 0
	for _, lt := range lts {
		if lt.Dies > steps {
			steps = lt.Dies
		}
	}
	colW := 1
	for _, v := range g.Vars() {
		if len(v.Name) > colW {
			colW = len(v.Name)
		}
	}
	for _, st := range dp.Steps {
		for _, mo := range st.Ops {
			if len(mo.Op) > colW {
				colW = len(mo.Op)
			}
		}
	}
	cell := func(s string) string { return fmt.Sprintf(" %-*s", colW, s) }

	var sb strings.Builder
	sb.WriteString(fmt.Sprintf("%-6s", ""))
	for t := 1; t <= steps; t++ {
		sb.WriteString(cell(fmt.Sprintf("s%d", t)))
	}
	sb.WriteString("\n")

	// Register rows: the variable occupying the register during step t.
	regNames := make([]string, 0, len(dp.Regs))
	for _, r := range dp.Regs {
		regNames = append(regNames, r.Name)
	}
	sort.Strings(regNames)
	for _, rn := range regNames {
		r := dp.Register(rn)
		sb.WriteString(fmt.Sprintf("%-6s", rn))
		for t := 1; t <= steps; t++ {
			occ := "."
			for _, vn := range r.Vars {
				lt := lts[vn]
				if lt.Born < t && t <= lt.Dies {
					occ = vn
					break
				}
			}
			sb.WriteString(cell(occ))
		}
		sb.WriteString("\n")
	}
	// Module rows: the op running at step t.
	modNames := make([]string, 0, len(dp.Modules))
	for _, m := range dp.Modules {
		modNames = append(modNames, m.Name)
	}
	sort.Strings(modNames)
	for _, mn := range modNames {
		sb.WriteString(fmt.Sprintf("%-6s", mn))
		for t := 1; t <= steps; t++ {
			occ := "."
			if t < len(dp.Steps) {
				for _, mo := range dp.Steps[t].Ops {
					if mo.Module == mn {
						occ = mo.Op
					}
				}
			}
			sb.WriteString(cell(occ))
		}
		sb.WriteString("\n")
	}
	return sb.String(), nil
}
