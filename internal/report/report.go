// Package report renders fixed-width tables and paper-vs-measured
// comparison records for the experiment harness.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple fixed-width text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped,
// missing cells are blank.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddRowf appends a row of formatted values.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.AddRow(row...)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteString("\n")
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return sb.String()
}

// Comparison records one paper-reported value against the measured one.
type Comparison struct {
	Experiment string
	Metric     string
	Paper      string
	Measured   string
	ShapeHolds bool
	Note       string
}

// ComparisonTable renders a set of comparisons.
func ComparisonTable(title string, comps []Comparison) string {
	t := NewTable(title, "experiment", "metric", "paper", "measured", "shape", "note")
	for _, c := range comps {
		shape := "OK"
		if !c.ShapeHolds {
			shape = "DIFFERS"
		}
		t.AddRow(c.Experiment, c.Metric, c.Paper, c.Measured, shape, c.Note)
	}
	return t.String()
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "**%s**\n\n", t.Title)
	}
	row := func(cells []string) {
		sb.WriteString("|")
		for _, c := range cells {
			sb.WriteString(" " + c + " |")
		}
		sb.WriteString("\n")
	}
	row(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	row(sep)
	for _, r := range t.Rows {
		row(r)
	}
	return sb.String()
}
