package report

import (
	"strings"
	"testing"

	"bistpath/internal/benchdata"
	"bistpath/internal/datapath"
	"bistpath/internal/interconnect"
	"bistpath/internal/regassign"
)

func TestTableRendering(t *testing.T) {
	tab := NewTable("Title", "name", "value")
	tab.AddRow("alpha", "1")
	tab.AddRowf("beta", 2.5)
	tab.AddRowf("gamma", 7)
	s := tab.String()
	for _, want := range []string{"Title", "name", "alpha", "2.50", "gamma", "7", "----"} {
		if !strings.Contains(s, want) {
			t.Errorf("table missing %q:\n%s", want, s)
		}
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 6 { // title + header + sep + 3 rows
		t.Errorf("got %d lines:\n%s", len(lines), s)
	}
	// Column alignment: every data line at least as wide as the header.
	hdr := lines[1]
	for _, l := range lines[2:] {
		if len(l) < len(strings.TrimRight(hdr, " ")) {
			t.Errorf("row narrower than header: %q", l)
		}
	}
}

func TestAddRowPadsAndTruncates(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.AddRow("only")
	tab.AddRow("x", "y", "dropped")
	s := tab.String()
	if strings.Contains(s, "dropped") {
		t.Error("extra cell not dropped")
	}
	if !strings.Contains(s, "only") {
		t.Error("short row lost")
	}
}

func TestComparisonTable(t *testing.T) {
	s := ComparisonTable("Tbl", []Comparison{
		{Experiment: "T1/ex1", Metric: "%area", Paper: "18.14", Measured: "18.80", ShapeHolds: true},
		{Experiment: "T1/ex2", Metric: "#reg", Paper: "5", Measured: "6", ShapeHolds: false, Note: "reconstruction"},
	})
	if !strings.Contains(s, "OK") || !strings.Contains(s, "DIFFERS") || !strings.Contains(s, "reconstruction") {
		t.Errorf("comparison table incomplete:\n%s", s)
	}
}

func TestMarkdown(t *testing.T) {
	tab := NewTable("T", "a", "b")
	tab.AddRow("1", "2")
	md := tab.Markdown()
	for _, want := range []string{"**T**", "| a | b |", "| --- | --- |", "| 1 | 2 |"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestGantt(t *testing.T) {
	b := benchdata.Ex1()
	mb, err := b.Modules()
	if err != nil {
		t.Fatal(err)
	}
	rb, err := regassign.Bind(b.Graph, mb, regassign.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ib, err := interconnect.Bind(b.Graph, mb, rb, nil)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := datapath.Build(b.Graph, mb, rb, ib, 8)
	if err != nil {
		t.Fatal(err)
	}
	chart, err := Gantt(dp)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(chart, "\n"), "\n")
	// Header + 3 registers + 2 modules.
	if len(lines) != 6 {
		t.Fatalf("chart has %d lines:\n%s", len(lines), chart)
	}
	for _, want := range []string{"s1", "R1", "M2", "add1", "mul2"} {
		if !strings.Contains(chart, want) {
			t.Errorf("gantt missing %q:\n%s", want, chart)
		}
	}
	// Every variable appears somewhere in a register row.
	for _, v := range b.Graph.AllocVars() {
		if !strings.Contains(chart, " "+v+" ") && !strings.Contains(chart, " "+v+"\n") {
			t.Errorf("variable %s absent from chart:\n%s", v, chart)
		}
	}
}
