package cache

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func key(b byte) Key {
	var k Key
	k[0] = b
	k[31] = b ^ 0xFF
	return k
}

func TestMemoryGetPut(t *testing.T) {
	m := NewMemory(0, 0)
	if _, ok := m.Get(key(1)); ok {
		t.Fatal("hit on empty store")
	}
	m.Put(key(1), "one", 100)
	v, ok := m.Get(key(1))
	if !ok || v.(string) != "one" {
		t.Fatalf("Get = %v, %v; want one, true", v, ok)
	}
	// Update in place replaces the value and re-accounts the size.
	m.Put(key(1), "uno", 250)
	v, _ = m.Get(key(1))
	if v.(string) != "uno" {
		t.Fatalf("after update Get = %v", v)
	}
	st := m.Stats()
	if st.Entries != 1 || st.Bytes != 250 {
		t.Fatalf("stats = %+v; want 1 entry, 250 bytes", st)
	}
}

func TestMemoryEvictionOrder(t *testing.T) {
	// One shard so the LRU order is globally observable.
	m := NewMemory(300, 1)
	m.Put(key(1), 1, 100)
	m.Put(key(2), 2, 100)
	m.Put(key(3), 3, 100)
	// Touch key 1 so key 2 is now the least recently used.
	m.Get(key(1))
	evicted, delta := m.Put(key(4), 4, 100)
	if evicted != 1 {
		t.Fatalf("evicted = %d; want 1", evicted)
	}
	if delta != 0 {
		t.Fatalf("bytesDelta = %d; want 0 (+100 new, -100 evicted)", delta)
	}
	if _, ok := m.Get(key(2)); ok {
		t.Fatal("key 2 should have been evicted (LRU)")
	}
	for _, b := range []byte{1, 3, 4} {
		if _, ok := m.Get(key(b)); !ok {
			t.Fatalf("key %d should have survived", b)
		}
	}
	st := m.Stats()
	if st.Evictions != 1 || st.Bytes != 300 {
		t.Fatalf("stats = %+v; want 1 eviction, 300 bytes", st)
	}
}

func TestMemoryOversizeEntryRejected(t *testing.T) {
	m := NewMemory(100, 1)
	evicted, delta := m.Put(key(1), "huge", 101)
	if evicted != 0 || delta != 0 {
		t.Fatalf("oversize Put = (%d, %d); want (0, 0)", evicted, delta)
	}
	if _, ok := m.Get(key(1)); ok {
		t.Fatal("oversize entry should not be stored")
	}
}

func TestMemoryShardRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, defaultShards}, {1, 1}, {3, 4}, {16, 16}, {300, 256},
	} {
		m := NewMemory(0, tc.in)
		if got := len(m.shards); got != tc.want {
			t.Errorf("NewMemory(shards=%d): %d shards, want %d", tc.in, got, tc.want)
		}
	}
}

func TestMemoryConcurrent(t *testing.T) {
	// A storm of mixed gets/puts across all shards; run under -race this
	// proves the sharded locking. Byte accounting must balance after.
	m := NewMemory(1<<20, 8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := key(byte(i % 64))
				if i%3 == 0 {
					m.Put(k, i, int64(64+i%128))
				} else {
					m.Get(k)
				}
			}
		}(w)
	}
	wg.Wait()
	st := m.Stats()
	if st.Bytes < 0 || st.Bytes > st.MaxBytes {
		t.Fatalf("byte accounting out of range: %+v", st)
	}
}

func TestDiskRoundTrip(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := key(7)
	if _, ok := d.Get(k); ok {
		t.Fatal("hit on empty disk store")
	}
	payload := []byte(`{"hello":"world"}`)
	d.Put(k, payload)
	got, ok := d.Get(k)
	if !ok || string(got) != string(payload) {
		t.Fatalf("Get = %q, %v; want %q, true", got, ok, payload)
	}
	st := d.Stats()
	if st.Writes != 1 || st.Hits != 1 || st.Misses != 1 || st.Errors != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDiskCorruptionIsAMiss(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := key(9)
	d.Put(k, []byte("payload-bytes"))
	p := d.path(k)
	corruptions := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"garbage", []byte("not a cache entry at all")},
		{"wrong-magic", []byte("other-tool 1 00 00\nx")},
		{"flipped-payload", nil}, // filled below
	}
	orig, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), orig...)
	flipped[len(flipped)-1] ^= 0x01
	corruptions[3].data = flipped

	for _, c := range corruptions {
		if err := os.WriteFile(p, c.data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := d.Get(k); ok {
			t.Fatalf("%s: corrupt entry served as a hit", c.name)
		}
		if _, err := os.Stat(p); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("%s: corrupt entry not deleted", c.name)
		}
		// Restore for the next corruption.
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, orig, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if st := d.Stats(); st.Errors != int64(len(corruptions)) {
		t.Fatalf("errors = %d; want %d", st.Errors, len(corruptions))
	}
	// The restored original must still be served.
	if _, ok := d.Get(k); !ok {
		t.Fatal("intact entry no longer served")
	}
}

func TestDiskKeyMismatchIsAMiss(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k1, k2 := key(1), key(2)
	d.Put(k1, []byte("one"))
	// Copy k1's frame to k2's path: the embedded key no longer matches.
	data, err := os.ReadFile(d.path(k1))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(d.path(k2)), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(d.path(k2), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get(k2); ok {
		t.Fatal("frame with foreign key served as a hit")
	}
}

func TestSingleflightCoalesces(t *testing.T) {
	var g Group
	var calls atomic.Int64
	start := make(chan struct{})
	const n = 16
	var wg sync.WaitGroup
	results := make([]any, n)
	shared := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, sh := g.Do(context.Background(), key(5), func() (any, error) {
				<-start // hold the flight open until all joiners arrive
				calls.Add(1)
				return "value", nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			results[i], shared[i] = v, sh
		}(i)
	}
	close(start)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		// Timing may allow a second flight if the first fully resolved
		// before a goroutine entered Do; all that is guaranteed is that
		// concurrent entries coalesce. With the start barrier, the leader
		// blocks until close, so every goroutine has entered.
		t.Logf("calls = %d (joiners raced past the flight)", got)
	}
	for i, v := range results {
		if v.(string) != "value" {
			t.Fatalf("result %d = %v", i, v)
		}
	}
	_ = shared
}

func TestSingleflightJoinerCancellation(t *testing.T) {
	var g Group
	block := make(chan struct{})
	leaderIn := make(chan struct{})
	go func() {
		g.Do(context.Background(), key(6), func() (any, error) {
			close(leaderIn)
			<-block
			return nil, nil
		})
	}()
	<-leaderIn
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err, shared := g.Do(ctx, key(6), func() (any, error) {
		t.Error("joiner must not run the function")
		return nil, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v; want context.Canceled", err)
	}
	// The error is the joiner's own, not the flight's outcome, so shared
	// must be false: the caller's retry logic keys on shared meaning "a
	// leader's result", and a self-cancellation is terminal.
	if shared {
		t.Fatal("self-cancelled joiner should report shared=false")
	}
	close(block)
}

// A panicking leader must not wedge its joiners: the flight resolves
// with ErrLeaderPanicked (regression: the done channel used to stay
// open forever, so a panic inside one cached synthesis would hang every
// concurrent identical request in a server).
func TestSingleflightLeaderPanic(t *testing.T) {
	var g Group
	leaderIn := make(chan struct{})
	joinerIn := make(chan struct{})
	joined := make(chan struct{})
	var joinErr error
	var joinShared bool
	go func() {
		defer close(joined)
		<-leaderIn
		close(joinerIn)
		// If scheduling delays this goroutine past the whole flight it
		// leads a fresh one; that is legal, so the fallback fn is benign.
		_, err, shared := g.Do(context.Background(), key(9), func() (any, error) {
			return "fresh", nil
		})
		joinErr, joinShared = err, shared
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("leader panic did not propagate to its caller")
			}
		}()
		g.Do(context.Background(), key(9), func() (any, error) {
			close(leaderIn)
			<-joinerIn // the joiner is at (or entering) Do; let it block
			time.Sleep(20 * time.Millisecond)
			panic("leader boom")
		})
	}()
	<-joined
	// The joiner either shared the panicked flight's outcome or raced
	// past it and led its own (fresh) flight; only the former is
	// guaranteed an error, but neither may hang — reaching here at all
	// is the regression assertion.
	if joinShared && !errors.Is(joinErr, ErrLeaderPanicked) {
		t.Fatalf("joiner err = %v; want ErrLeaderPanicked", joinErr)
	}
	// The key is free again: a later call runs fresh.
	v, err, _ := g.Do(context.Background(), key(9), func() (any, error) {
		return "ok", nil
	})
	if err != nil || v.(string) != "ok" {
		t.Fatalf("retry after panic = %v, %v", v, err)
	}
}

func TestSingleflightErrorPropagates(t *testing.T) {
	var g Group
	boom := fmt.Errorf("boom")
	_, err, _ := g.Do(context.Background(), key(8), func() (any, error) {
		return nil, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v; want boom", err)
	}
	// The flight is cleared: a later call runs fresh.
	v, err, _ := g.Do(context.Background(), key(8), func() (any, error) {
		return "ok", nil
	})
	if err != nil || v.(string) != "ok" {
		t.Fatalf("retry = %v, %v", v, err)
	}
}
