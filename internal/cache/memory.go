// Package cache provides the storage machinery behind the public
// synthesis result cache: a sharded in-memory LRU with byte-size
// accounting, a versioned corruption-tolerant on-disk store, and a
// context-aware singleflight group that coalesces concurrent identical
// computations. Keys are content hashes computed by the caller; values
// are opaque to this package.
package cache

import (
	"container/list"
	"encoding/hex"
	"sync"
)

// Key is a content-addressed cache key (a SHA-256 of the canonical
// input fingerprint, computed by the caller).
type Key [32]byte

// Hex renders the key as lowercase hex.
func (k Key) Hex() string { return hex.EncodeToString(k[:]) }

// MemoryStats is a point-in-time snapshot of a Memory store.
type MemoryStats struct {
	Entries   int   // live entries across all shards
	Bytes     int64 // accounted bytes across all shards
	MaxBytes  int64 // configured budget
	Evictions int64 // entries evicted to satisfy the budget
}

// Memory is a sharded LRU keyed by Key with per-entry byte-size
// accounting. Each shard holds an independent budget of
// MaxBytes/len(shards), so eviction decisions never take a global lock.
// All methods are safe for concurrent use.
type Memory struct {
	shards   []shard
	maxBytes int64
}

type shard struct {
	mu        sync.Mutex
	budget    int64
	bytes     int64
	evictions int64
	entries   map[Key]*list.Element
	lru       *list.List // front = most recently used
}

type memEntry struct {
	key   Key
	value any
	size  int64
}

// DefaultMaxBytes is the Memory budget when the caller passes 0.
const DefaultMaxBytes = 256 << 20

// defaultShards is the shard count when the caller passes 0. It is a
// power of two so shard selection is a mask of the key's first byte.
const defaultShards = 16

// NewMemory returns a store that holds at most maxBytes of accounted
// entry sizes (0 selects DefaultMaxBytes) across the given number of
// shards (0 selects a default; the count is rounded up to a power of
// two, capped at 256 so one key byte selects the shard).
func NewMemory(maxBytes int64, shards int) *Memory {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	if shards <= 0 {
		shards = defaultShards
	}
	n := 1
	for n < shards && n < 256 {
		n <<= 1
	}
	m := &Memory{shards: make([]shard, n), maxBytes: maxBytes}
	for i := range m.shards {
		m.shards[i] = shard{
			budget:  maxBytes / int64(n),
			entries: make(map[Key]*list.Element),
			lru:     list.New(),
		}
	}
	return m
}

func (m *Memory) shard(k Key) *shard { return &m.shards[int(k[0])&(len(m.shards)-1)] }

// Get returns the value stored under k and marks it most recently used.
func (m *Memory) Get(k Key) (any, bool) {
	s := m.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[k]
	if !ok {
		return nil, false
	}
	s.lru.MoveToFront(el)
	return el.Value.(*memEntry).value, true
}

// Put stores value under k with the given accounted size, evicting
// least-recently-used entries from the shard until the shard budget is
// respected. A value larger than the whole shard budget is not stored
// at all (storing it would immediately evict everything else for a
// single entry that itself cannot stay). It returns how many entries
// were evicted and the net change in accounted bytes, so callers can
// maintain process-wide gauges without re-locking every shard.
func (m *Memory) Put(k Key, value any, size int64) (evicted int, bytesDelta int64) {
	s := m.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if size > s.budget {
		return 0, 0
	}
	before := s.bytes
	if el, ok := s.entries[k]; ok {
		e := el.Value.(*memEntry)
		s.bytes += size - e.size
		e.value, e.size = value, size
		s.lru.MoveToFront(el)
	} else {
		s.entries[k] = s.lru.PushFront(&memEntry{key: k, value: value, size: size})
		s.bytes += size
	}
	for s.bytes > s.budget {
		back := s.lru.Back()
		if back == nil {
			break
		}
		e := back.Value.(*memEntry)
		s.lru.Remove(back)
		delete(s.entries, e.key)
		s.bytes -= e.size
		s.evictions++
		evicted++
	}
	return evicted, s.bytes - before
}

// Stats snapshots the store's occupancy and eviction counters.
func (m *Memory) Stats() MemoryStats {
	st := MemoryStats{MaxBytes: m.maxBytes}
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		st.Entries += len(s.entries)
		st.Bytes += s.bytes
		st.Evictions += s.evictions
		s.mu.Unlock()
	}
	return st
}
