package cache

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
)

// diskMagic is the first token of every on-disk entry. The second token
// is the store format version: bumping it orphans (never breaks) old
// entries, which simply stop matching and are treated as misses.
const (
	diskMagic   = "bistpath-cache"
	diskVersion = 1
)

// DiskStats snapshots a Disk store's activity since creation.
type DiskStats struct {
	Hits   int64 // Get calls that returned a payload
	Misses int64 // Get calls that found nothing usable
	Writes int64 // entries persisted
	Errors int64 // write failures and corrupt entries discarded
}

// Disk is a corruption-tolerant persistent layer: one file per key
// under dir, each framed with a format version and a SHA-256 of the
// payload. Every failure mode on the read path — missing file, foreign
// format, truncation, checksum mismatch — is reported as a miss, never
// as an error; detected corruption is deleted best-effort. Writes are
// atomic (temp file + rename) and best-effort: a failed write counts in
// Stats but does not fail the caller. All methods are safe for
// concurrent use, including by multiple processes sharing the
// directory.
type Disk struct {
	dir    string
	hits   atomic.Int64
	misses atomic.Int64
	writes atomic.Int64
	errors atomic.Int64
}

// NewDisk opens (creating if needed) a persistent store rooted at dir.
func NewDisk(dir string) (*Disk, error) {
	vdir := filepath.Join(dir, fmt.Sprintf("v%d", diskVersion))
	if err := os.MkdirAll(vdir, 0o777); err != nil {
		return nil, err
	}
	return &Disk{dir: vdir}, nil
}

// path spreads entries over 256 subdirectories by the key's first byte
// so huge sweeps do not pile every entry into one directory.
func (d *Disk) path(k Key) string {
	h := k.Hex()
	return filepath.Join(d.dir, h[:2], h+".entry")
}

// Get returns the payload stored under k, or ok=false on any miss —
// including every form of corruption.
func (d *Disk) Get(k Key) ([]byte, bool) {
	p := d.path(k)
	data, err := os.ReadFile(p)
	if err != nil {
		d.misses.Add(1)
		return nil, false
	}
	payload, ok := decodeFrame(k, data)
	if !ok {
		// A bad entry is a miss, never an error; drop it so the slot
		// heals on the next store.
		os.Remove(p)
		d.errors.Add(1)
		d.misses.Add(1)
		return nil, false
	}
	d.hits.Add(1)
	return payload, true
}

// Put persists payload under k, best-effort.
func (d *Disk) Put(k Key, payload []byte) {
	p := d.path(k)
	if err := os.MkdirAll(filepath.Dir(p), 0o777); err != nil {
		d.errors.Add(1)
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), ".tmp-*")
	if err != nil {
		d.errors.Add(1)
		return
	}
	_, werr := tmp.Write(encodeFrame(k, payload))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		d.errors.Add(1)
		return
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		d.errors.Add(1)
		return
	}
	d.writes.Add(1)
}

// Stats snapshots the store's counters.
func (d *Disk) Stats() DiskStats {
	return DiskStats{
		Hits:   d.hits.Load(),
		Misses: d.misses.Load(),
		Writes: d.writes.Load(),
		Errors: d.errors.Load(),
	}
}

// encodeFrame frames a payload as
//
//	bistpath-cache <version> <key> <sha256(payload)>\n<payload>
//
// so a reader can reject truncated, overwritten or foreign files
// without trusting their content.
func encodeFrame(k Key, payload []byte) []byte {
	sum := sha256.Sum256(payload)
	header := fmt.Sprintf("%s %d %s %s\n", diskMagic, diskVersion, k.Hex(), hex.EncodeToString(sum[:]))
	out := make([]byte, 0, len(header)+len(payload))
	out = append(out, header...)
	return append(out, payload...)
}

// decodeFrame validates the frame around a stored payload.
func decodeFrame(k Key, data []byte) ([]byte, bool) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, false
	}
	fields := bytes.Fields(data[:nl])
	if len(fields) != 4 || string(fields[0]) != diskMagic ||
		string(fields[1]) != fmt.Sprint(diskVersion) || string(fields[2]) != k.Hex() {
		return nil, false
	}
	payload := data[nl+1:]
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != string(fields[3]) {
		return nil, false
	}
	return payload, true
}
