package cache

import (
	"context"
	"errors"
	"sync"
)

// ErrLeaderPanicked resolves the flight of a leader whose fn panicked:
// the panic propagates to the leader's caller (which is expected to
// recover it), while joiners receive this error instead of blocking on
// a done channel that would otherwise never close.
var ErrLeaderPanicked = errors.New("cache: singleflight leader panicked")

// flight is one in-progress computation shared by a leader and any
// number of joiners.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// Group coalesces concurrent computations of the same key: the first
// caller (the leader) runs fn, later callers for the same key block
// until the leader finishes and share its outcome. Unlike
// golang.org/x/sync/singleflight, joiners respect their own context —
// a joiner whose context expires stops waiting with ctx.Err() while
// the leader keeps running for the others.
type Group struct {
	mu      sync.Mutex
	flights map[Key]*flight
}

// Do runs fn under the singleflight protocol. shared reports whether
// the outcome came from another caller's execution — callers use it to
// decide whether a context-cancellation error belongs to them (their
// own run) or to a leader whose cancellation they may retry past.
func (g *Group) Do(ctx context.Context, k Key, fn func() (any, error)) (v any, err error, shared bool) {
	g.mu.Lock()
	if g.flights == nil {
		g.flights = make(map[Key]*flight)
	}
	if f, ok := g.flights[k]; ok {
		g.mu.Unlock()
		select {
		case <-f.done:
			return f.val, f.err, true
		case <-ctx.Done():
			return nil, ctx.Err(), false
		}
	}
	f := &flight{done: make(chan struct{})}
	g.flights[k] = f
	g.mu.Unlock()

	// Resolve the flight even if fn panics: the deferred block runs
	// while the panic unwinds, so joiners wake with ErrLeaderPanicked
	// rather than waiting forever, and the key is free for a retry.
	finished := false
	defer func() {
		if !finished {
			f.val, f.err = nil, ErrLeaderPanicked
		}
		g.mu.Lock()
		delete(g.flights, k)
		g.mu.Unlock()
		close(f.done)
	}()
	f.val, f.err = fn()
	finished = true
	return f.val, f.err, false
}
