package verilog

import (
	"regexp"
	"strings"
	"testing"

	"bistpath/internal/benchdata"
	"bistpath/internal/bist"
	"bistpath/internal/datapath"
	"bistpath/internal/elab"
	"bistpath/internal/gates"
	"bistpath/internal/interconnect"
	"bistpath/internal/regassign"
)

func buildDP(t *testing.T, name string) *datapath.Datapath {
	t.Helper()
	b := benchdata.ByName(name)
	mb, err := b.Modules()
	if err != nil {
		t.Fatal(err)
	}
	rb, err := regassign.Bind(b.Graph, mb, regassign.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ib, err := interconnect.Bind(b.Graph, mb, rb, regassign.NewSharing(b.Graph, mb))
	if err != nil {
		t.Fatal(err)
	}
	dp, err := datapath.Build(b.Graph, mb, rb, ib, 8)
	if err != nil {
		t.Fatal(err)
	}
	return dp
}

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"in:dx":    "in_dx",
		"R1.sel.M": "R1_sel_M",
		"3abc":     "_3abc",
		"plain":    "plain",
	}
	for in, want := range cases {
		if got := sanitize(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestGatesEmission(t *testing.T) {
	n := gates.New()
	a := n.InputBus("a", 4)
	b := n.InputBus("b", 4)
	sum, _ := n.AddBus(a, b, gates.Zero)
	q := n.RegisterBus(sum, gates.One)
	n.OutputBus("q", q)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	v := Gates(n, "adder_reg")
	for _, want := range []string{
		"module adder_reg", "input  wire [3:0] a", "output wire [3:0] q",
		"always @(posedge clk)", "endmodule",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("missing %q in:\n%s", want, v)
		}
	}
	// One assign per gate plus one per output bit.
	assigns := strings.Count(v, "assign ")
	if assigns != n.NumGates()+4 {
		t.Errorf("got %d assigns, want %d", assigns, n.NumGates()+4)
	}
	// One nonblocking assignment per DFF.
	if got := strings.Count(v, "<="); got != n.NumDFFs() {
		t.Errorf("got %d DFF assignments, want %d", got, n.NumDFFs())
	}
}

func TestGatesEmissionAllKinds(t *testing.T) {
	n := gates.New()
	a := n.InputBus("a", 1)[0]
	b := n.InputBus("b", 1)[0]
	bus := []gates.Sig{
		n.And2(a, b), n.Or2(a, b), n.Xor2(a, b), n.Not1(a),
		n.Nand2(a, b), n.Nor2(a, b), n.Xnor2(a, b),
	}
	n.OutputBus("o", bus)
	v := Gates(n, "kinds")
	for _, want := range []string{" & ", " | ", " ^ ", "~(", "= ~a[0];"} {
		if !strings.Contains(v, want) {
			t.Errorf("missing operator %q", want)
		}
	}
}

func TestGatesEmissionIdentifiersLegal(t *testing.T) {
	dp := buildDP(t, "paulin")
	plan, err := bist.Optimize(dp, bist.DefaultOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	d, err := elab.Build(dp, plan)
	if err != nil {
		t.Fatal(err)
	}
	v := Gates(d.Net, "paulin_bist")
	// Every declared identifier must be a legal Verilog name.
	ident := regexp.MustCompile(`(?m)^\s*(?:input\s+wire|output\s+wire|wire|reg)\s*(?:\[\d+:0\])?\s*([^;,\s]+)`)
	legal := regexp.MustCompile(`^[A-Za-z_][A-Za-z0-9_]*$`)
	found := 0
	for _, m := range ident.FindAllStringSubmatch(v, -1) {
		found++
		if !legal.MatchString(m[1]) {
			t.Errorf("illegal identifier %q", m[1])
		}
	}
	if found < 10 {
		t.Errorf("only %d declarations found — emission incomplete?", found)
	}
	if !strings.Contains(v, "in_dx") {
		t.Error("pad port in_dx missing")
	}
}

func TestGatesDeterministic(t *testing.T) {
	dp := buildDP(t, "ex1")
	d, err := elab.Build(dp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if Gates(d.Net, "x") != Gates(d.Net, "x") {
		t.Error("emission not deterministic")
	}
}

func TestRTLEmission(t *testing.T) {
	dp := buildDP(t, "ex1")
	v := RTL(dp)
	for _, want := range []string{
		"module dp_ex1", "input wire clk", "input wire rst",
		"reg [7:0] R1", "case (step)", "out_h = ", "endmodule",
		"// add1 on M1", "// load a",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("RTL missing %q in:\n%s", want, v)
		}
	}
}

func TestRTLAllOperators(t *testing.T) {
	dp := buildDP(t, "tseng1")
	v := RTL(dp)
	for _, want := range []string{" + ", " - ", " * ", " / ", " & ", " | "} {
		if !strings.Contains(v, want) {
			t.Errorf("RTL missing operator %q", want)
		}
	}
	// Division guards against zero.
	if !strings.Contains(v, "== 0") {
		t.Error("RTL division lacks zero guard")
	}
}

func TestRTLComparison(t *testing.T) {
	dp := buildDP(t, "paulin")
	v := RTL(dp)
	if !strings.Contains(v, " < ") {
		t.Error("RTL missing comparison")
	}
	if !strings.Contains(v, "in_dx") {
		t.Error("RTL missing pad input")
	}
}

func TestTestbench(t *testing.T) {
	dp := buildDP(t, "ex1")
	in := map[string]uint64{"a": 1, "b": 2, "e": 3, "g": 4}
	want, err := dp.Graph().Eval(in, 8)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := Testbench(dp, in, want)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{
		"module tb_ex1", "dp_ex1 dut(", "always #5 clk",
		"cap_h", "8'd60", `$display("PASS")`, "$finish",
		"in_a = 1;", "in_g = 4;",
	} {
		if !strings.Contains(tb, s) {
			t.Errorf("testbench missing %q:\n%s", s, tb)
		}
	}
	// Sampling happens at the right step: h is born at step 4.
	if !strings.Contains(tb, "if (dut.step == 5) cap_h = out_h;") {
		t.Error("output h not sampled at step 5")
	}
}

func TestTestbenchMultiOutput(t *testing.T) {
	dp := buildDP(t, "paulin")
	in := map[string]uint64{"x": 1, "u": 6, "y": 2, "dx": 1, "a": 9, "k3": 3}
	want, err := dp.Graph().Eval(in, 8)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := Testbench(dp, in, want)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range dp.Outputs {
		if !strings.Contains(tb, "cap_"+o) {
			t.Errorf("output %s not captured", o)
		}
	}
	// Early-born output x1 must be sampled before the end of the run.
	if !strings.Contains(tb, "if (dut.step == 2) cap_x1 = out_x1;") {
		t.Error("x1 not sampled at its production step")
	}
}
