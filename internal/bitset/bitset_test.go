package bitset

import "testing"

func TestSetBasics(t *testing.T) {
	s := Make(130)
	if len(s) != 3 {
		t.Fatalf("Words(130) -> %d words, want 3", len(s))
	}
	for _, i := range []int{0, 63, 64, 129} {
		if s.Has(i) {
			t.Fatalf("fresh set has bit %d", i)
		}
		s.Set(i)
		if !s.Has(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if got := s.Count(); got != 4 {
		t.Fatalf("Count = %d, want 4", got)
	}
	s.Clear(64)
	if s.Has(64) || s.Count() != 3 {
		t.Fatal("Clear(64) failed")
	}
	if !s.Any() {
		t.Fatal("Any = false with bits set")
	}
	s.Reset()
	if s.Any() {
		t.Fatal("Any = true after Reset")
	}
}

func TestSetAlgebra(t *testing.T) {
	a, b := Make(100), Make(100)
	a.Set(1)
	a.Set(70)
	a.Set(99)
	b.Set(70)
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Fatal("Intersects missed shared bit 70")
	}
	if a.ContainsAll(b) != true {
		t.Fatal("ContainsAll({70}) should hold")
	}
	if b.ContainsAll(a) {
		t.Fatal("ContainsAll inverted")
	}
	if got := a.AndNotCount(b); got != 2 {
		t.Fatalf("AndNotCount = %d, want 2", got)
	}
	c := Make(100)
	c.Or(a)
	c.Or(b)
	if c.Count() != 3 {
		t.Fatalf("Or union count = %d, want 3", c.Count())
	}
	d := Make(100)
	d.CopyFrom(a)
	if d.Count() != 3 || !d.Has(99) {
		t.Fatal("CopyFrom mismatch")
	}
	b.Clear(70)
	if a.Intersects(b) {
		t.Fatal("Intersects on disjoint sets")
	}
}

func TestMatrix(t *testing.T) {
	m := NewMatrix(4, 70)
	if m.Rows() != 4 {
		t.Fatalf("Rows = %d, want 4", m.Rows())
	}
	m.Row(2).Set(69)
	if !m.Row(2).Has(69) || m.Row(1).Any() || m.Row(3).Any() {
		t.Fatal("row isolation broken")
	}
	// Shrinking reuse zeroes the active region.
	m.Grow(2, 64)
	if m.Rows() != 2 || m.Row(0).Any() || m.Row(1).Any() {
		t.Fatal("Grow reuse did not zero")
	}
	// Growing past capacity reallocates.
	m.Grow(100, 128)
	if m.Rows() != 100 || m.Row(99).Any() {
		t.Fatal("Grow reallocation broken")
	}
	m.Row(99).Set(127)
	if !m.Row(99).Has(127) {
		t.Fatal("bit lost after Grow")
	}
}
