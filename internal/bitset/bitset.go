// Package bitset provides fixed-capacity bit sets over []uint64 words,
// the memory substrate of the synthesis core's hot paths: conflict
// graphs, module variable sets and register contents are all dense sets
// over a small interned universe, and representing them as bit words
// turns the binder's inner loops (candidate filtering, sharing-degree
// counting, Lemma-2 evaluation) into a handful of AND/POPCNT
// instructions with no per-query allocation.
//
// Sets do not grow: callers size them once per universe (per DFG) with
// Words/Make and reuse the backing arrays across runs via the scratch
// arenas. A Matrix packs n same-width rows into one contiguous backing
// slice so a conflict graph or a module-variable incidence relation is
// a single allocation regardless of the universe size.
package bitset

import "math/bits"

// Set is a fixed-capacity bit set. Index i lives in word i/64.
type Set []uint64

// Words returns the number of 64-bit words needed for n bits.
func Words(n int) int { return (n + 63) / 64 }

// Make returns a zeroed set with capacity for n bits.
func Make(n int) Set { return make(Set, Words(n)) }

// Reset clears every bit, keeping the backing array.
func (s Set) Reset() {
	for i := range s {
		s[i] = 0
	}
}

// Set sets bit i.
func (s Set) Set(i int) { s[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (s Set) Clear(i int) { s[i>>6] &^= 1 << (uint(i) & 63) }

// Has reports whether bit i is set.
func (s Set) Has(i int) bool { return s[i>>6]&(1<<(uint(i)&63)) != 0 }

// Count returns the number of set bits.
func (s Set) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Any reports whether any bit is set.
func (s Set) Any() bool {
	for _, w := range s {
		if w != 0 {
			return true
		}
	}
	return false
}

// CopyFrom overwrites s with t (equal word counts).
func (s Set) CopyFrom(t Set) { copy(s, t) }

// Or folds t into s.
func (s Set) Or(t Set) {
	for i, w := range t {
		s[i] |= w
	}
}

// Intersects reports whether s and t share a set bit.
func (s Set) Intersects(t Set) bool {
	for i, w := range t {
		if s[i]&w != 0 {
			return true
		}
	}
	return false
}

// ContainsAll reports whether every bit of t is set in s (t ⊆ s).
func (s Set) ContainsAll(t Set) bool {
	for i, w := range t {
		if w&^s[i] != 0 {
			return false
		}
	}
	return true
}

// AndNotCount returns the number of bits set in s but not in t.
func (s Set) AndNotCount(t Set) int {
	n := 0
	for i, w := range s {
		n += bits.OnesCount64(w &^ t[i])
	}
	return n
}

// Matrix is n rows of equal-width bit sets in one contiguous backing
// array — one allocation for a whole adjacency or incidence relation.
type Matrix struct {
	words int
	data  []uint64
}

// NewMatrix returns an n-row matrix with capacity for bitsPerRow bits
// per row. A zero-row or zero-bit matrix is valid and allocation-free.
func NewMatrix(n, bitsPerRow int) Matrix {
	w := Words(bitsPerRow)
	return Matrix{words: w, data: make([]uint64, n*w)}
}

// Grow reuses m's backing array for a new shape when it fits, zeroing
// the active region; otherwise it allocates. Use it to recycle one
// scratch matrix across DFGs of different sizes.
func (m *Matrix) Grow(n, bitsPerRow int) {
	w := Words(bitsPerRow)
	need := n * w
	if cap(m.data) < need {
		m.data = make([]uint64, need)
		m.words = w
		return
	}
	m.data = m.data[:need]
	for i := range m.data {
		m.data[i] = 0
	}
	m.words = w
}

// Row returns the i-th row as a Set sharing the backing array.
func (m *Matrix) Row(i int) Set { return Set(m.data[i*m.words : (i+1)*m.words]) }

// Rows returns the number of rows.
func (m *Matrix) Rows() int {
	if m.words == 0 {
		return 0
	}
	return len(m.data) / m.words
}
