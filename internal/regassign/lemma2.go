package regassign

import (
	"fmt"
	"sort"

	"bistpath/internal/dfg"
	"bistpath/internal/modassign"
)

// Forced records a register assignment situation that requires a CBILBO
// in every BIST embedding of a module (Lemma 2).
type Forced struct {
	Module string
	Regs   []int // indices into the register list: 1 entry (case i) or 2 (case ii; either may be the CBILBO)
	CaseII bool
}

func (f Forced) String() string {
	if f.CaseII {
		return fmt.Sprintf("%s: case(ii) regs %v", f.Module, f.Regs)
	}
	return fmt.Sprintf("%s: case(i) reg %v", f.Module, f.Regs)
}

// ForcedCBILBOs evaluates Lemma 2 on a (possibly partial) register
// assignment, given as a list of variable sets. For each module it
// reports whether every BIST embedding requires a CBILBO:
//
//	case (i):  some register holds ALL output variables of the module and
//	           at least one operand of EVERY instance of the module;
//	case (ii): two registers together hold all output variables, each
//	           holds some output variable and at least one operand of
//	           every instance (either may be made the CBILBO).
//
// Variables not yet assigned to any register make the conditions
// unsatisfiable for the sets they belong to, which is the correct
// conservative behaviour during incremental binding.
//
// The characterization is exact for single-instance modules under the
// paper's operator model: binary operators whose two operands are
// distinct variables, followed by a minimum-connectivity interconnect
// binding. Outside that model it errs in both directions, always
// conservatively for the binder's avoidance heuristic: an instance
// reading the same variable on both ports (x op x) welds both ports to
// one register and can force a CBILBO these conditions do not predict,
// while on a module with several instances the other instances' mux
// inputs can open a head pair that avoids the case-(i) register, so a
// predicted CBILBO may be escapable at the netlist level (each instance
// may present that register on a different port).
func ForcedCBILBOs(g *dfg.Graph, mb *modassign.Binding, regs [][]string) []Forced {
	var out []Forced
	for _, m := range mb.Modules {
		f, ok := forcedForModule(g, mb, m.Name, regs)
		if ok {
			out = append(out, f)
		}
	}
	return out
}

// forcedForModule checks Lemma 2 for one module. If both a case-(i)
// register and a case-(ii) pair exist, case (i) is reported (it pins a
// specific register).
func forcedForModule(g *dfg.Graph, mb *modassign.Binding, module string, regs [][]string) (Forced, bool) {
	outVars := mb.OutputVarSet(g, module)
	instOps := mb.InstanceOperands(g, module)
	if len(outVars) == 0 || len(instOps) == 0 {
		return Forced{}, false
	}
	outSet := make(map[string]bool, len(outVars))
	for _, v := range outVars {
		outSet[v] = true
	}
	// Per register: which output vars it holds; whether it hits every
	// instance's operand set.
	type regInfo struct {
		outHeld   map[string]bool
		hitsAll   bool
		holdsSome bool
	}
	infos := make([]regInfo, len(regs))
	for i, r := range regs {
		in := make(map[string]bool, len(r))
		for _, v := range r {
			in[v] = true
		}
		ri := regInfo{outHeld: make(map[string]bool)}
		for _, v := range r {
			if outSet[v] {
				ri.outHeld[v] = true
				ri.holdsSome = true
			}
		}
		ri.hitsAll = true
		for _, inst := range instOps {
			hit := false
			for _, a := range inst {
				if in[a] {
					hit = true
					break
				}
			}
			if !hit {
				ri.hitsAll = false
				break
			}
		}
		infos[i] = ri
	}
	holdsAllOut := func(held map[string]bool) bool {
		for _, v := range outVars {
			if !held[v] {
				return false
			}
		}
		return true
	}
	// Case (i).
	for i, ri := range infos {
		if ri.holdsSome && ri.hitsAll && holdsAllOut(ri.outHeld) {
			return Forced{Module: module, Regs: []int{i}}, true
		}
	}
	// Case (ii): pair of registers, each holding a proper nonempty part of
	// O_M, union covering O_M, both hitting every instance.
	for i := range infos {
		if !infos[i].holdsSome || !infos[i].hitsAll || holdsAllOut(infos[i].outHeld) {
			continue
		}
		for j := i + 1; j < len(infos); j++ {
			if !infos[j].holdsSome || !infos[j].hitsAll || holdsAllOut(infos[j].outHeld) {
				continue
			}
			union := make(map[string]bool, len(outVars))
			for v := range infos[i].outHeld {
				union[v] = true
			}
			for v := range infos[j].outHeld {
				union[v] = true
			}
			if holdsAllOut(union) {
				return Forced{Module: module, Regs: []int{i, j}, CaseII: true}, true
			}
		}
	}
	return Forced{}, false
}

// ForcedCount returns the number of modules whose current assignment
// forces a CBILBO. The incremental binder minimizes this.
func ForcedCount(g *dfg.Graph, mb *modassign.Binding, regs [][]string) int {
	return len(ForcedCBILBOs(g, mb, regs))
}

// ForcedRegisterSet returns a minimal-cardinality set of register indices
// that covers all forced situations: case-(i) registers are mandatory;
// for case-(ii) pairs either member suffices, so a greedy cover choosing
// registers resolving the most remaining pairs is used.
func ForcedRegisterSet(g *dfg.Graph, mb *modassign.Binding, regs [][]string) []int {
	forced := ForcedCBILBOs(g, mb, regs)
	chosen := make(map[int]bool)
	var pairs [][2]int
	for _, f := range forced {
		if !f.CaseII {
			chosen[f.Regs[0]] = true
		} else {
			pairs = append(pairs, [2]int{f.Regs[0], f.Regs[1]})
		}
	}
	for {
		var open [][2]int
		for _, p := range pairs {
			if !chosen[p[0]] && !chosen[p[1]] {
				open = append(open, p)
			}
		}
		if len(open) == 0 {
			break
		}
		count := make(map[int]int)
		for _, p := range open {
			count[p[0]]++
			count[p[1]]++
		}
		best, bestN := -1, -1
		for r, n := range count {
			if n > bestN || (n == bestN && r < best) {
				best, bestN = r, n
			}
		}
		chosen[best] = true
	}
	out := make([]int, 0, len(chosen))
	for r := range chosen {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}
