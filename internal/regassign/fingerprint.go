package regassign

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"strings"

	"bistpath/internal/dfg"
	"bistpath/internal/modassign"
)

// Fingerprint digests exactly the inputs the paper's binder projects the
// design onto — the working set binderState.init interns — so two
// (graph, module binding, options) triples with equal fingerprints are
// guaranteed to produce the identical Binding, decision trace and
// Metrics. The incremental re-synthesis layer diffs it to decide whether
// the register-bind phase of a previous run survives an edit.
//
// The serialized projection, in order:
//
//   - the allocatable variables (g.AllocVars order — which already
//     encodes port-mark edits, since port inputs are never allocatable);
//   - each variable's conflict row (the lifetime-overlap relation is the
//     ONLY way schedule steps reach the binder, so a rescheduling that
//     happens to preserve all overlaps fingerprints identically — that
//     is the reuse the Session exploits);
//   - each variable's interconnect endpoints as the binder scores them:
//     the defining source (its own pad for primary inputs, else the
//     bound module) and the destination module set plus the output pad;
//   - each module (sorted by name) with its class kinds and, per
//     instance in binding order, the allocatable operand set and result;
//   - the option toggles that gate the binder's mechanisms.
//
// Derived quantities (PVES ranks, max clique sizes, sharing degrees,
// Lemma-2 trials) are all pure functions of this projection: the
// conflict graph is an interval graph, so every maximal clique is a set
// of pairwise-overlapping lifetimes and MaxCliqueSize/MinRegisters
// follow from the conflict rows alone.
func Fingerprint(g *dfg.Graph, mb *modassign.Binding, opts Options) ([32]byte, error) {
	// Pairwise lifetime overlaps, exactly as binderState.init builds its
	// conflict rows (g.Conflicts would materialize the same relation as
	// nested maps — too slow for a per-Resynthesize check).
	lts, err := g.Lifetimes()
	if err != nil {
		return [32]byte{}, err
	}
	var sb strings.Builder
	sb.WriteString("regassign-fingerprint v1\n")

	names := g.AllocVars()
	alloc := make(map[string]bool, len(names))
	for _, n := range names {
		alloc[n] = true
	}
	fmt.Fprintf(&sb, "vars %s\n", strings.Join(names, " "))
	for _, n := range names {
		fmt.Fprintf(&sb, "conf %s:", n)
		for _, u := range names {
			if n != u && lts[n].Overlaps(lts[u]) {
				sb.WriteByte(' ')
				sb.WriteString(u)
			}
		}
		sb.WriteByte('\n')

		v := g.Var(n)
		fmt.Fprintf(&sb, "src %s:", n)
		if v.IsInput {
			sb.WriteString(" pad")
		} else {
			sb.WriteString(" " + mb.ModuleOf(v.Def).Name)
		}
		sb.WriteByte('\n')
		fmt.Fprintf(&sb, "dst %s:", n)
		dsts := make(map[string]bool)
		for _, u := range v.Uses {
			dsts[mb.ModuleOf(u).Name] = true
		}
		var dn []string
		for d := range dsts {
			dn = append(dn, d)
		}
		sort.Strings(dn)
		for _, d := range dn {
			sb.WriteByte(' ')
			sb.WriteString(d)
		}
		if v.IsOutput {
			sb.WriteString(" @out")
		}
		sb.WriteByte('\n')
	}

	modNames := make([]string, 0, len(mb.Modules))
	for _, m := range mb.Modules {
		modNames = append(modNames, m.Name)
	}
	sort.Strings(modNames)
	for _, name := range modNames {
		m := mb.Module(name)
		kinds := make([]string, len(m.Class.Kinds))
		for i, k := range m.Class.Kinds {
			kinds[i] = string(k)
		}
		fmt.Fprintf(&sb, "mod %s [%s]\n", name, strings.Join(kinds, ""))
		for _, opName := range m.Ops {
			op := g.Op(opName)
			fmt.Fprintf(&sb, "inst %s:", opName)
			for _, a := range op.Args {
				if alloc[a] {
					sb.WriteByte(' ')
					sb.WriteString(a)
				}
			}
			if alloc[op.Result] {
				sb.WriteString(" -> " + op.Result)
			}
			sb.WriteByte('\n')
		}
	}

	fmt.Fprintf(&sb, "opts %t %t %t %t\n",
		opts.SharingDegree, opts.CaseOverrides, opts.AvoidCBILBO, opts.InterconnectTies)
	return sha256.Sum256([]byte(sb.String())), nil
}
