package regassign

import (
	"fmt"

	"bistpath/internal/dfg"
)

// EnumerateMinimumBindings enumerates every register binding that uses
// the minimum number of registers, as set partitions (each partition
// produced exactly once: a variable may open a new class only when all
// earlier classes have been tried, the standard canonical-order scheme).
// The paper quotes this count for its running example: "There are 108
// distinct assignments of the variables in E to three registers."
//
// Enumeration stops after `limit` partitions (0 = no limit) so callers
// can sample large spaces; the bool result reports whether the
// enumeration was complete.
func EnumerateMinimumBindings(g *dfg.Graph, limit int) ([][][]string, bool, error) {
	min, err := g.MinRegisters()
	if err != nil {
		return nil, false, err
	}
	return EnumerateBindings(g, min, limit)
}

// EnumerateBindings enumerates every register binding that uses exactly
// k registers, as canonical set partitions. It generalizes
// EnumerateMinimumBindings so oracles can grade non-minimal bindings —
// e.g. an incremental warm-start that lands on a k-register plan — by
// enumerating the optimum over the same register count rather than
// declining. k below the chromatic number simply yields no partitions.
func EnumerateBindings(g *dfg.Graph, k, limit int) ([][][]string, bool, error) {
	conf, err := g.Conflicts()
	if err != nil {
		return nil, false, err
	}
	vars := g.AllocVars()
	var out [][][]string
	complete := true
	classes := make([][]string, 0, k)

	var rec func(i int) bool // returns false to abort (limit hit)
	rec = func(i int) bool {
		if i == len(vars) {
			if len(classes) == k {
				snap := make([][]string, len(classes))
				for ci, c := range classes {
					snap[ci] = append([]string(nil), c...)
				}
				out = append(out, snap)
				if limit > 0 && len(out) >= limit {
					return false
				}
			}
			return true
		}
		v := vars[i]
		// Prune: remaining variables cannot open enough new classes.
		if len(classes)+(len(vars)-i) < k {
			return true
		}
		for ci := range classes {
			ok := true
			for _, u := range classes[ci] {
				if conf[v][u] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			classes[ci] = append(classes[ci], v)
			if !rec(i + 1) {
				classes[ci] = classes[ci][:len(classes[ci])-1]
				return false
			}
			classes[ci] = classes[ci][:len(classes[ci])-1]
		}
		if len(classes) < k {
			classes = append(classes, []string{v})
			if !rec(i + 1) {
				classes = classes[:len(classes)-1]
				return false
			}
			classes = classes[:len(classes)-1]
		}
		return true
	}
	if !rec(0) {
		complete = false
	}
	return out, complete, nil
}

// BindingFromPartition wraps a partition as a validated Binding.
func BindingFromPartition(g *dfg.Graph, partition [][]string) (*Binding, error) {
	b := FromSets(partition)
	if err := b.Validate(g); err != nil {
		return nil, fmt.Errorf("regassign: partition invalid: %w", err)
	}
	return b, nil
}
