package regassign

import (
	"fmt"
	"sort"
	"strings"

	"bistpath/internal/dfg"
	"bistpath/internal/graph"
	"bistpath/internal/modassign"
)

// Register is one allocated register and the variables bound to it.
type Register struct {
	Name string
	Vars []string // sorted
}

// Binding is a complete variable→register map (a partition of the
// variables into non-conflicting sets).
type Binding struct {
	Registers []*Register
	byVar     map[string]string
}

// RegisterOf returns the name of the register holding v ("" if unbound).
func (b *Binding) RegisterOf(v string) string { return b.byVar[v] }

// Register returns the named register, or nil.
func (b *Binding) Register(name string) *Register {
	for _, r := range b.Registers {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// Sets returns the variable sets of the registers, in register order.
func (b *Binding) Sets() [][]string {
	out := make([][]string, len(b.Registers))
	for i, r := range b.Registers {
		out[i] = append([]string(nil), r.Vars...)
	}
	return out
}

// NumRegisters returns the register count.
func (b *Binding) NumRegisters() int { return len(b.Registers) }

func (b *Binding) String() string {
	var sb strings.Builder
	for i, r := range b.Registers {
		if i > 0 {
			sb.WriteString(" ")
		}
		fmt.Fprintf(&sb, "%s={%s}", r.Name, strings.Join(r.Vars, ","))
	}
	return sb.String()
}

// Validate checks that the binding is a partition of the graph's
// variables and that no register holds two conflicting variables.
func (b *Binding) Validate(g *dfg.Graph) error {
	conf, err := g.Conflicts()
	if err != nil {
		return err
	}
	seen := make(map[string]bool)
	for _, r := range b.Registers {
		for i, u := range r.Vars {
			if g.Var(u) == nil {
				return fmt.Errorf("regassign: register %s holds unknown variable %q", r.Name, u)
			}
			if seen[u] {
				return fmt.Errorf("regassign: variable %q bound twice", u)
			}
			seen[u] = true
			if b.byVar[u] != r.Name {
				return fmt.Errorf("regassign: index inconsistent for %q", u)
			}
			for _, v := range r.Vars[i+1:] {
				if conf[u][v] {
					return fmt.Errorf("regassign: register %s holds conflicting variables %q and %q", r.Name, u, v)
				}
			}
		}
	}
	for _, v := range g.Vars() {
		if v.IsPort {
			if seen[v.Name] {
				return fmt.Errorf("regassign: port input %q must not be register-bound", v.Name)
			}
			continue
		}
		if !seen[v.Name] {
			return fmt.Errorf("regassign: variable %q unbound", v.Name)
		}
	}
	return nil
}

// FromSets builds a Binding from ordered variable sets, naming the
// registers R1, R2, ... in order. Callers (e.g. the baseline allocators)
// must Validate the result against the graph.
func FromSets(sets [][]string) *Binding {
	b := &Binding{byVar: make(map[string]string)}
	for i, set := range sets {
		r := &Register{Name: fmt.Sprintf("R%d", i+1), Vars: append([]string(nil), set...)}
		sort.Strings(r.Vars)
		b.Registers = append(b.Registers, r)
		for _, v := range r.Vars {
			b.byVar[v] = r.Name
		}
	}
	return b
}

// Options toggle the individual mechanisms of the paper's binder; all
// true reproduces the full algorithm, individual flags support the
// ablation experiments.
type Options struct {
	SharingDegree    bool // SD/MCS-ordered PVES and ΔSD-guided coloring (Section III.A)
	CaseOverrides    bool // Case 1 / Case 2 diversion to consolidating registers
	AvoidCBILBO      bool // Lemma 2 forced-CBILBO avoidance (Section III.B)
	InterconnectTies bool // break remaining ties by estimated mux cost (Section IV)
	// Metrics, when non-nil, counts the binder's testability-guided
	// decisions as it colors (the binding itself is unaffected).
	Metrics *Metrics
	// Scratch, when non-nil, supplies the reusable binder arenas
	// (interning tables, bitset graphs, candidate buffers); successive
	// Bind calls sharing one Scratch run essentially allocation-free.
	// A Scratch must not be used from two goroutines at once.
	Scratch *Scratch
}

// Metrics counts the work the binder's testability mechanisms did. The
// binder is deterministic, so the counts are a pure function of the
// graph, module binding and option toggles.
type Metrics struct {
	Lemma2Checks  int64 // Lemma-2 evaluations of (partial) assignments
	CaseOverrides int64 // Case 1/2 diversions that changed the primary choice
}

// DefaultOptions enables every mechanism (the paper's configuration).
func DefaultOptions() Options {
	return Options{SharingDegree: true, CaseOverrides: true, AvoidCBILBO: true, InterconnectTies: true}
}

// Traditional binds variables to the minimum number of registers with no
// testability consideration: optimal chordal coloring of the conflict
// graph in reverse perfect-elimination order (the "traditional HLS"
// baseline of Table I).
func Traditional(g *dfg.Graph) (*Binding, error) {
	cg, err := conflictGraph(g)
	if err != nil {
		return nil, err
	}
	colors, err := cg.OptimalChordalColor()
	if err != nil {
		return nil, err
	}
	b := FromSets(graph.ColorClasses(colors))
	return b, b.Validate(g)
}

// Bind runs the paper's register binder for the given module binding.
func Bind(g *dfg.Graph, mb *modassign.Binding, opts Options) (*Binding, error) {
	return bindInternal(g, mb, opts, nil)
}

// bindInternal is Bind with an optional decision trace collector. All
// per-variable work runs on the indexed binderState (binderstate.go):
// variables, modules and interconnect endpoints are interned once, and
// the coloring loop queries only bitset rows, so a warm Scratch makes
// the whole bind essentially allocation-free.
func bindInternal(g *dfg.Graph, mb *modassign.Binding, opts Options, trace *[]Decision) (*Binding, error) {
	var local binderState
	bs := &local
	if opts.Scratch != nil {
		bs = &opts.Scratch.bs
	}
	if err := bs.init(g, mb); err != nil {
		return nil, err
	}
	mcs, err := g.MaxCliqueSize()
	if err != nil {
		return nil, err
	}
	for i, n := range bs.names {
		bs.mcs[i] = int32(mcs[n])
	}

	// 1. PVES selection (Section III.A.1): eliminate low-SD, low-MCS
	// variables first so that high-SD variables are colored first (in
	// reverse order) while flexibility is maximal. Variable ids are in
	// name order, so the id tie-break is the lexicographic one.
	nv := len(bs.names)
	ordered := bs.ordered[:0]
	for i := 0; i < nv; i++ {
		ordered = append(ordered, int32(i))
	}
	bs.ordered = ordered
	if opts.SharingDegree {
		insertionSortStable32(ordered, func(a, b int32) bool {
			if bs.sdv[a] != bs.sdv[b] {
				return bs.sdv[a] < bs.sdv[b]
			}
			if bs.mcs[a] != bs.mcs[b] {
				return bs.mcs[a] < bs.mcs[b]
			}
			return a < b
		})
	}
	for i, v := range ordered {
		bs.rank[v] = int32(i)
	}
	if err := bs.pves(); err != nil {
		return nil, fmt.Errorf("regassign: conflict graph of %q is not an interval graph: %v", g.Name, err)
	}

	// 2. Color in reverse PVES order (Section III.A.2).
	minRegs, err := g.MinRegisters()
	if err != nil {
		return nil, err
	}
	for i := nv - 1; i >= 0; i-- {
		v := bs.scheme[i]
		d := Decision{Index: nv - i, Var: bs.names[v], SD: int(bs.sdv[v])}
		cands := bs.candidateRegs(v)
		if trace != nil {
			d.Candidates = append([]int(nil), cands...)
		}
		if len(cands) == 0 {
			d.NewRegister = true
			d.Chosen = bs.numRegs
			if trace != nil {
				describe(&d, nil)
				*trace = append(*trace, d)
			}
			bs.openRegister(v)
			continue
		}
		choice := chooseRegister(bs, cands, v, minRegs, opts, &d)
		if d.Diverted && opts.Metrics != nil {
			opts.Metrics.CaseOverrides++
		}
		if choice < 0 {
			// Every candidate would force a CBILBO (Lemma 2) and the
			// register budget is not yet exhausted: open a fresh register.
			// A singleton register can never itself be forced, and the
			// design needs at least minRegs registers regardless.
			d.NewRegister = true
			d.Chosen = bs.numRegs
			if trace != nil {
				describe(&d, nil)
				*trace = append(*trace, d)
			}
			bs.openRegister(v)
			continue
		}
		d.Chosen = choice
		d.DeltaSD = bs.deltaSD(choice, v)
		if trace != nil {
			describe(&d, bs.varNames(choice))
			*trace = append(*trace, d)
		}
		bs.assign(choice, v)
	}
	b := FromSets(bs.sets())
	return b, b.Validate(g)
}

// chooseRegister implements the coloring decision for one vertex:
// primary ΔSD ranking, Case 1 / Case 2 diversion, and Lemma-2 CBILBO
// avoidance. It returns -1 when every candidate would force a CBILBO and
// allocating a fresh register stays within the minimum register budget.
func chooseRegister(bs *binderState, cands []int, v int32, minRegs int, opts Options, d *Decision) int {
	// Primary ranking: maximize ΔSD, then SD(R), then minimize estimated
	// interconnect cost, then lowest index (the left-edge default).
	ranked := append(bs.ranked[:0], cands...)
	bs.ranked = ranked
	if opts.SharingDegree {
		insertionSortStable(ranked, func(ia, ib int) bool {
			da, db := bs.deltaSD(ia, v), bs.deltaSD(ib, v)
			if da != db {
				return da > db
			}
			sa, sb := bs.sdReg(ia), bs.sdReg(ib)
			if sa != sb {
				return sa > sb
			}
			if opts.InterconnectTies {
				ca, cb := bs.icScore(ia, v), bs.icScore(ib, v)
				if ca != cb {
					return ca < cb
				}
			}
			return ia < ib
		})
	}
	primary := ranked[0]

	// Case 1 / Case 2 diversion (Section III.A.2): prefer a register that
	// already shares the module's output set (Case 1) or one of the two
	// registers already covering its input set (Case 2), when that
	// register's established sharing degree exceeds what the primary
	// choice would reach.
	if opts.SharingDegree && opts.CaseOverrides {
		if div := bs.diversion(cands, v, primary); len(div) > 0 {
			// Reorder in place: the diversion set first (its own order),
			// then the surviving primary ranking. bs.divSeen still holds
			// div's membership bits.
			tmp := append(bs.divTmp[:0], ranked...)
			bs.divTmp = tmp
			ranked = append(ranked[:0], div...)
			for _, r := range tmp {
				if !bs.divSeen.Has(r) {
					ranked = append(ranked, r)
				}
			}
			bs.ranked = ranked
			if ranked[0] != primary {
				d.Diverted = true
			}
		}
	}

	// Lemma-2 avoidance (Section III.B): take the best-ranked candidate
	// that does not increase the number of forced-CBILBO modules; if all
	// do, allow the assignment (paper: avoided only when possible without
	// an extra register).
	if opts.AvoidCBILBO {
		// checks tallies the forcedCount evaluations locally and folds
		// into Metrics once, keeping the loop free of pointer tests.
		checks := int64(1)
		defer func() {
			if opts.Metrics != nil {
				opts.Metrics.Lemma2Checks += checks
			}
		}()
		base := bs.forcedCount()
		for _, r := range ranked {
			checks++
			if bs.forcedCountWith(r, v) <= base {
				return r
			}
			d.Lemma2Skips++
		}
		if bs.numRegs < minRegs {
			return -1 // open a fresh register: free within the budget
		}
	}
	return ranked[0]
}

func conflictGraph(g *dfg.Graph) (*graph.Undirected, error) {
	conf, err := g.Conflicts()
	if err != nil {
		return nil, err
	}
	cg := graph.NewUndirected()
	for _, v := range g.AllocVars() {
		cg.AddVertex(v)
	}
	for u, nbrs := range conf {
		for v := range nbrs {
			cg.AddEdge(u, v)
		}
	}
	return cg, nil
}

// ConflictGraph exposes the variable conflict graph (used by reporting
// and the Fig. 4 regeneration).
func ConflictGraph(g *dfg.Graph) (*graph.Undirected, error) { return conflictGraph(g) }
