package regassign

import (
	"fmt"
	"sort"
	"strings"

	"bistpath/internal/dfg"
	"bistpath/internal/graph"
	"bistpath/internal/modassign"
)

// Register is one allocated register and the variables bound to it.
type Register struct {
	Name string
	Vars []string // sorted
}

// Binding is a complete variable→register map (a partition of the
// variables into non-conflicting sets).
type Binding struct {
	Registers []*Register
	byVar     map[string]string
}

// RegisterOf returns the name of the register holding v ("" if unbound).
func (b *Binding) RegisterOf(v string) string { return b.byVar[v] }

// Register returns the named register, or nil.
func (b *Binding) Register(name string) *Register {
	for _, r := range b.Registers {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// Sets returns the variable sets of the registers, in register order.
func (b *Binding) Sets() [][]string {
	out := make([][]string, len(b.Registers))
	for i, r := range b.Registers {
		out[i] = append([]string(nil), r.Vars...)
	}
	return out
}

// NumRegisters returns the register count.
func (b *Binding) NumRegisters() int { return len(b.Registers) }

func (b *Binding) String() string {
	var sb strings.Builder
	for i, r := range b.Registers {
		if i > 0 {
			sb.WriteString(" ")
		}
		fmt.Fprintf(&sb, "%s={%s}", r.Name, strings.Join(r.Vars, ","))
	}
	return sb.String()
}

// Validate checks that the binding is a partition of the graph's
// variables and that no register holds two conflicting variables.
func (b *Binding) Validate(g *dfg.Graph) error {
	conf, err := g.Conflicts()
	if err != nil {
		return err
	}
	seen := make(map[string]bool)
	for _, r := range b.Registers {
		for i, u := range r.Vars {
			if g.Var(u) == nil {
				return fmt.Errorf("regassign: register %s holds unknown variable %q", r.Name, u)
			}
			if seen[u] {
				return fmt.Errorf("regassign: variable %q bound twice", u)
			}
			seen[u] = true
			if b.byVar[u] != r.Name {
				return fmt.Errorf("regassign: index inconsistent for %q", u)
			}
			for _, v := range r.Vars[i+1:] {
				if conf[u][v] {
					return fmt.Errorf("regassign: register %s holds conflicting variables %q and %q", r.Name, u, v)
				}
			}
		}
	}
	for _, v := range g.Vars() {
		if v.IsPort {
			if seen[v.Name] {
				return fmt.Errorf("regassign: port input %q must not be register-bound", v.Name)
			}
			continue
		}
		if !seen[v.Name] {
			return fmt.Errorf("regassign: variable %q unbound", v.Name)
		}
	}
	return nil
}

// FromSets builds a Binding from ordered variable sets, naming the
// registers R1, R2, ... in order. Callers (e.g. the baseline allocators)
// must Validate the result against the graph.
func FromSets(sets [][]string) *Binding {
	b := &Binding{byVar: make(map[string]string)}
	for i, set := range sets {
		r := &Register{Name: fmt.Sprintf("R%d", i+1), Vars: append([]string(nil), set...)}
		sort.Strings(r.Vars)
		b.Registers = append(b.Registers, r)
		for _, v := range r.Vars {
			b.byVar[v] = r.Name
		}
	}
	return b
}

// Options toggle the individual mechanisms of the paper's binder; all
// true reproduces the full algorithm, individual flags support the
// ablation experiments.
type Options struct {
	SharingDegree    bool // SD/MCS-ordered PVES and ΔSD-guided coloring (Section III.A)
	CaseOverrides    bool // Case 1 / Case 2 diversion to consolidating registers
	AvoidCBILBO      bool // Lemma 2 forced-CBILBO avoidance (Section III.B)
	InterconnectTies bool // break remaining ties by estimated mux cost (Section IV)
	// Metrics, when non-nil, counts the binder's testability-guided
	// decisions as it colors (the binding itself is unaffected).
	Metrics *Metrics
}

// Metrics counts the work the binder's testability mechanisms did. The
// binder is deterministic, so the counts are a pure function of the
// graph, module binding and option toggles.
type Metrics struct {
	Lemma2Checks  int64 // Lemma-2 evaluations of (partial) assignments
	CaseOverrides int64 // Case 1/2 diversions that changed the primary choice
}

// DefaultOptions enables every mechanism (the paper's configuration).
func DefaultOptions() Options {
	return Options{SharingDegree: true, CaseOverrides: true, AvoidCBILBO: true, InterconnectTies: true}
}

// Traditional binds variables to the minimum number of registers with no
// testability consideration: optimal chordal coloring of the conflict
// graph in reverse perfect-elimination order (the "traditional HLS"
// baseline of Table I).
func Traditional(g *dfg.Graph) (*Binding, error) {
	cg, err := conflictGraph(g)
	if err != nil {
		return nil, err
	}
	colors, err := cg.OptimalChordalColor()
	if err != nil {
		return nil, err
	}
	b := FromSets(graph.ColorClasses(colors))
	return b, b.Validate(g)
}

// Bind runs the paper's register binder for the given module binding.
func Bind(g *dfg.Graph, mb *modassign.Binding, opts Options) (*Binding, error) {
	return bindInternal(g, mb, opts, nil)
}

// bindInternal is Bind with an optional decision trace collector.
func bindInternal(g *dfg.Graph, mb *modassign.Binding, opts Options, trace *[]Decision) (*Binding, error) {
	cg, err := conflictGraph(g)
	if err != nil {
		return nil, err
	}
	sh := NewSharing(g, mb)
	mcs, err := g.MaxCliqueSize()
	if err != nil {
		return nil, err
	}

	// 1. PVES selection (Section III.A.1): eliminate low-SD, low-MCS
	// variables first so that high-SD variables are colored first (in
	// reverse order) while flexibility is maximal.
	names := g.AllocVars()
	rank := make(map[string]int, len(names))
	ordered := append([]string(nil), names...)
	if opts.SharingDegree {
		sort.SliceStable(ordered, func(i, j int) bool {
			si, sj := sh.SDVar(ordered[i]), sh.SDVar(ordered[j])
			if si != sj {
				return si < sj
			}
			if mcs[ordered[i]] != mcs[ordered[j]] {
				return mcs[ordered[i]] < mcs[ordered[j]]
			}
			return ordered[i] < ordered[j]
		})
	}
	for i, v := range ordered {
		rank[v] = i
	}
	scheme, err := cg.PVES(func(v string) int { return rank[v] })
	if err != nil {
		return nil, fmt.Errorf("regassign: conflict graph of %q is not an interval graph: %v", g.Name, err)
	}

	// 2. Color in reverse PVES order (Section III.A.2).
	conf, err := g.Conflicts()
	if err != nil {
		return nil, err
	}
	ic := newInterconnectEstimator(g, mb)
	minRegs, err := g.MinRegisters()
	if err != nil {
		return nil, err
	}
	var regs [][]string
	for i := len(scheme) - 1; i >= 0; i-- {
		v := scheme[i]
		d := Decision{Index: len(scheme) - i, Var: v, SD: sh.SDVar(v)}
		cands := candidateRegisters(conf, regs, v)
		d.Candidates = append([]int(nil), cands...)
		if len(cands) == 0 {
			d.NewRegister = true
			d.Chosen = len(regs)
			if trace != nil {
				describe(&d, regs)
				*trace = append(*trace, d)
			}
			regs = append(regs, []string{v})
			continue
		}
		choice := chooseRegister(g, mb, sh, ic, regs, cands, v, minRegs, opts, &d)
		if d.Diverted && opts.Metrics != nil {
			opts.Metrics.CaseOverrides++
		}
		if choice < 0 {
			// Every candidate would force a CBILBO (Lemma 2) and the
			// register budget is not yet exhausted: open a fresh register.
			// A singleton register can never itself be forced, and the
			// design needs at least minRegs registers regardless.
			d.NewRegister = true
			d.Chosen = len(regs)
			if trace != nil {
				describe(&d, regs)
				*trace = append(*trace, d)
			}
			regs = append(regs, []string{v})
			continue
		}
		d.Chosen = choice
		d.DeltaSD = sh.DeltaSD(regs[choice], v)
		if trace != nil {
			describe(&d, regs)
			*trace = append(*trace, d)
		}
		regs[choice] = append(regs[choice], v)
	}
	b := FromSets(regs)
	return b, b.Validate(g)
}

// candidateRegisters returns indices of registers with no variable
// conflicting with v.
func candidateRegisters(conf map[string]map[string]bool, regs [][]string, v string) []int {
	var out []int
	for i, r := range regs {
		ok := true
		for _, u := range r {
			if conf[v][u] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, i)
		}
	}
	return out
}

// chooseRegister implements the coloring decision for one vertex:
// primary ΔSD ranking, Case 1 / Case 2 diversion, and Lemma-2 CBILBO
// avoidance. It returns -1 when every candidate would force a CBILBO and
// allocating a fresh register stays within the minimum register budget.
func chooseRegister(g *dfg.Graph, mb *modassign.Binding, sh *Sharing, ic *interconnectEstimator,
	regs [][]string, cands []int, v string, minRegs int, opts Options, d *Decision) int {

	// Primary ranking: maximize ΔSD, then SD(R), then minimize estimated
	// interconnect cost, then lowest index (the left-edge default).
	ranked := append([]int(nil), cands...)
	if opts.SharingDegree {
		sort.SliceStable(ranked, func(a, b int) bool {
			ia, ib := ranked[a], ranked[b]
			da, db := sh.DeltaSD(regs[ia], v), sh.DeltaSD(regs[ib], v)
			if da != db {
				return da > db
			}
			sa, sb := sh.SDReg(regs[ia]), sh.SDReg(regs[ib])
			if sa != sb {
				return sa > sb
			}
			if opts.InterconnectTies {
				ca, cb := ic.score(regs[ia], v), ic.score(regs[ib], v)
				if ca != cb {
					return ca < cb
				}
			}
			return ia < ib
		})
	}
	primary := ranked[0]

	// Case 1 / Case 2 diversion (Section III.A.2): prefer a register that
	// already shares the module's output set (Case 1) or one of the two
	// registers already covering its input set (Case 2), when that
	// register's established sharing degree exceeds what the primary
	// choice would reach.
	if opts.SharingDegree && opts.CaseOverrides {
		if div := diversionSet(g, sh, ic, regs, cands, v, primary); len(div) > 0 {
			ranked = append(div, removeAll(ranked, div)...)
			if d != nil && ranked[0] != primary {
				d.Diverted = true
			}
		}
	}

	// Lemma-2 avoidance (Section III.B): take the best-ranked candidate
	// that does not increase the number of forced-CBILBO modules; if all
	// do, allow the assignment (paper: avoided only when possible without
	// an extra register).
	if opts.AvoidCBILBO {
		// checks tallies the ForcedCount evaluations locally and folds
		// into Metrics once, keeping the loop free of pointer tests.
		checks := int64(1)
		defer func() {
			if opts.Metrics != nil {
				opts.Metrics.Lemma2Checks += checks
			}
		}()
		base := ForcedCount(g, mb, regs)
		for _, r := range ranked {
			trial := make([][]string, len(regs))
			copy(trial, regs)
			trial[r] = append(append([]string(nil), regs[r]...), v)
			checks++
			if ForcedCount(g, mb, trial) <= base {
				return r
			}
			if d != nil {
				d.Lemma2Skips++
			}
		}
		if len(regs) < minRegs {
			return -1 // open a fresh register: free within the budget
		}
	}
	return ranked[0]
}

// diversionSet computes the Case 1 / Case 2 candidate registers for v,
// ordered by (ΔSD desc, interconnect asc, SD(R,v) desc, index).
func diversionSet(g *dfg.Graph, sh *Sharing, ic *interconnectEstimator,
	regs [][]string, cands []int, v string, primary int) []int {

	sdPrimary := sh.SDRegWith(regs[primary], v)
	isCand := make(map[int]bool, len(cands))
	for _, c := range cands {
		isCand[c] = true
	}
	set := make(map[int]bool)

	// Case 1: v is an output variable of module Mj and some candidate
	// register already holds an output variable of Mj.
	for _, m := range sh.OutputModules(v) {
		for _, r := range sh.RegsTouchingOutput(regs, m) {
			if r != primary && isCand[r] && sh.SDReg(regs[r]) > sdPrimary {
				set[r] = true
			}
		}
	}
	// Case 2: v is an input variable of Mj; because operators are binary
	// the diversion applies only when two registers already hold input
	// variables of Mj (the module's TPG pair already exists).
	for _, m := range sh.InputModules(v) {
		touching := sh.RegsTouchingInput(regs, m)
		if len(touching) < 2 {
			continue
		}
		for _, r := range touching {
			if r != primary && isCand[r] && sh.SDReg(regs[r]) > sdPrimary {
				set[r] = true
			}
		}
	}
	out := make([]int, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.SliceStable(out, func(a, b int) bool {
		ia, ib := out[a], out[b]
		da, db := sh.DeltaSD(regs[ia], v), sh.DeltaSD(regs[ib], v)
		if da != db {
			return da > db
		}
		ca, cb := ic.score(regs[ia], v), ic.score(regs[ib], v)
		if ca != cb {
			return ca < cb
		}
		sa, sb := sh.SDRegWith(regs[ia], v), sh.SDRegWith(regs[ib], v)
		if sa != sb {
			return sa > sb
		}
		return ia < ib
	})
	return out
}

func removeAll(list, drop []int) []int {
	in := make(map[int]bool, len(drop))
	for _, d := range drop {
		in[d] = true
	}
	var out []int
	for _, x := range list {
		if !in[x] {
			out = append(out, x)
		}
	}
	return out
}

// interconnectEstimator scores the mux-cost effect of merging a variable
// into a register: the number of new data sources plus new destinations
// the register's physical port would acquire (the Fig. 6 analysis).
type interconnectEstimator struct {
	srcOf map[string]string   // var -> producing module name or "in:<v>"
	dstOf map[string][]string // var -> consuming module names (+ "out")
}

func newInterconnectEstimator(g *dfg.Graph, mb *modassign.Binding) *interconnectEstimator {
	ic := &interconnectEstimator{
		srcOf: make(map[string]string),
		dstOf: make(map[string][]string),
	}
	for _, v := range g.Vars() {
		if v.IsInput {
			ic.srcOf[v.Name] = "in:" + v.Name
		} else {
			ic.srcOf[v.Name] = mb.ModuleOf(v.Def).Name
		}
		seen := make(map[string]bool)
		for _, u := range v.Uses {
			m := mb.ModuleOf(u).Name
			if !seen[m] {
				seen[m] = true
				ic.dstOf[v.Name] = append(ic.dstOf[v.Name], m)
			}
		}
		if v.IsOutput {
			ic.dstOf[v.Name] = append(ic.dstOf[v.Name], "out")
		}
	}
	return ic
}

// score returns the number of new sources and destinations v adds to the
// register holding vars (0 = Fig. 6 case 5, the cheapest merge).
func (ic *interconnectEstimator) score(vars []string, v string) int {
	srcs := make(map[string]bool)
	dsts := make(map[string]bool)
	for _, u := range vars {
		srcs[ic.srcOf[u]] = true
		for _, d := range ic.dstOf[u] {
			dsts[d] = true
		}
	}
	cost := 0
	if !srcs[ic.srcOf[v]] {
		cost++
	}
	for _, d := range ic.dstOf[v] {
		if !dsts[d] {
			cost++
		}
	}
	return cost
}

func conflictGraph(g *dfg.Graph) (*graph.Undirected, error) {
	conf, err := g.Conflicts()
	if err != nil {
		return nil, err
	}
	cg := graph.NewUndirected()
	for _, v := range g.AllocVars() {
		cg.AddVertex(v)
	}
	for u, nbrs := range conf {
		for v := range nbrs {
			cg.AddEdge(u, v)
		}
	}
	return cg, nil
}

// ConflictGraph exposes the variable conflict graph (used by reporting
// and the Fig. 4 regeneration).
func ConflictGraph(g *dfg.Graph) (*graph.Undirected, error) { return conflictGraph(g) }
