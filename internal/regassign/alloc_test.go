package regassign

import (
	"testing"

	"bistpath/internal/benchdata"
)

// Fig. 3 guard: the binder's sharing-degree check (SD ranking, ΔSD
// candidate scoring and the Case 1/2 diversions — the machinery behind
// the paper's Fig. 3 shared-head/tail discovery) runs over the scratch's
// bitset graphs, so a full Bind with a warm Scratch must stay within a
// small pinned allocation budget: what remains is the returned Binding
// (register sets, Validate bookkeeping), never the per-candidate
// scoring.
func TestBindScratchSteadyStateAllocs(t *testing.T) {
	b := benchdata.Ex1()
	mb, err := b.Modules()
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Scratch = NewScratch()
	warm, err := Bind(b.Graph, mb, opts)
	if err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(100, func() {
		rb, err := Bind(b.Graph, mb, opts)
		if err != nil {
			t.Fatal(err)
		}
		if rb.NumRegisters() != warm.NumRegisters() {
			t.Fatalf("scratch reuse changed the binding: %d registers, want %d",
				rb.NumRegisters(), warm.NumRegisters())
		}
	})
	const budget = 120
	if avg > budget {
		t.Fatalf("Bind with warm Scratch allocates %.1f allocs/run, want <= %d", avg, budget)
	}
}

// Scratch reuse must be invisible in the result: bindings produced with
// a shared warm Scratch are identical to fresh-state bindings.
func TestBindScratchDeterminism(t *testing.T) {
	opts := DefaultOptions()
	opts.Scratch = NewScratch()
	for _, b := range benchdata.All() {
		mb, err := b.Modules()
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := Bind(b.Graph, mb, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		reused, err := Bind(b.Graph, mb, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := reused.String(), fresh.String(); got != want {
			t.Fatalf("%s: scratch binding diverged:\ngot  %s\nwant %s", b.Name, got, want)
		}
	}
}
