package regassign

import (
	"reflect"
	"testing"

	"bistpath/internal/benchdata"
)

func ex1Sharing(t *testing.T) (*Sharing, *benchdata.Benchmark) {
	t.Helper()
	b := benchdata.Ex1()
	mb, err := b.Modules()
	if err != nil {
		t.Fatal(err)
	}
	return NewSharing(b.Graph, mb), b
}

// The paper's worked example (Section III.A.2) fixes SD values on ex1:
// SD({c}) = 2, SD({d}) = 2, SD({c},f) = 4 so ΔSD = 2, SD({d},f) = 3 so
// ΔSD = 1.
func TestSDPaperExample(t *testing.T) {
	sh, _ := ex1Sharing(t)
	if got := sh.SDReg([]string{"c"}); got != 2 {
		t.Errorf("SD({c}) = %d, want 2", got)
	}
	if got := sh.SDReg([]string{"d"}); got != 2 {
		t.Errorf("SD({d}) = %d, want 2", got)
	}
	if got := sh.SDRegWith([]string{"c"}, "f"); got != 4 {
		t.Errorf("SD({c},f) = %d, want 4", got)
	}
	if got := sh.DeltaSD([]string{"c"}, "f"); got != 2 {
		t.Errorf("ΔSD^f({c}) = %d, want 2", got)
	}
	if got := sh.SDRegWith([]string{"d"}, "f"); got != 3 {
		t.Errorf("SD({d},f) = %d, want 3", got)
	}
	if got := sh.DeltaSD([]string{"d"}, "f"); got != 1 {
		t.Errorf("ΔSD^f({d}) = %d, want 1", got)
	}
}

func TestSDVar(t *testing.T) {
	sh, _ := ex1Sharing(t)
	// d is input of M1 (operand of add2) and output of M1 (result of
	// add1): SD = 2. a is only an input of M1: SD = 1. h is only an
	// output of M2: SD = 1.
	want := map[string]int{"a": 1, "b": 1, "c": 2, "d": 2, "e": 1, "f": 2, "g": 1, "h": 1}
	for v, w := range want {
		if got := sh.SDVar(v); got != w {
			t.Errorf("SD(%s) = %d, want %d", v, got, w)
		}
	}
}

func TestSDRegUnionSemantics(t *testing.T) {
	sh, _ := ex1Sharing(t)
	// Definition 5 is an OR, not a sum: two inputs of the same module in
	// one register count once.
	if got := sh.SDReg([]string{"a", "b"}); got != 1 {
		t.Errorf("SD({a,b}) = %d, want 1 (both only inputs of M1)", got)
	}
	// Full register: every flag set = 2 modules × (in+out) = 4 max.
	if got := sh.SDReg([]string{"a", "c", "f", "h"}); got != 4 {
		t.Errorf("SD({a,c,f,h}) = %d, want 4", got)
	}
}

func TestInputOutputModules(t *testing.T) {
	sh, _ := ex1Sharing(t)
	if got := sh.InputModules("d"); !reflect.DeepEqual(got, []string{"M1"}) {
		t.Errorf("InputModules(d) = %v", got)
	}
	if got := sh.OutputModules("d"); !reflect.DeepEqual(got, []string{"M1"}) {
		t.Errorf("OutputModules(d) = %v", got)
	}
	if got := sh.OutputModules("a"); got != nil {
		t.Errorf("OutputModules(a) = %v, want none", got)
	}
	if got := sh.InputModules("g"); !reflect.DeepEqual(got, []string{"M2"}) {
		t.Errorf("InputModules(g) = %v", got)
	}
}

func TestRegsTouching(t *testing.T) {
	sh, _ := ex1Sharing(t)
	regs := [][]string{{"a"}, {"g"}, {"h"}}
	if got := sh.RegsTouchingInput(regs, "M1"); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("RegsTouchingInput(M1) = %v", got)
	}
	if got := sh.RegsTouchingInput(regs, "M2"); !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("RegsTouchingInput(M2) = %v", got)
	}
	if got := sh.RegsTouchingOutput(regs, "M2"); !reflect.DeepEqual(got, []int{2}) {
		t.Errorf("RegsTouchingOutput(M2) = %v", got)
	}
}

// ΔSD is monotone: merging more variables never lowers a register's SD.
func TestSDMonotone(t *testing.T) {
	sh, b := ex1Sharing(t)
	vars := b.Graph.AllocVars()
	for _, v := range vars {
		for _, w := range vars {
			if v == w {
				continue
			}
			if sh.SDRegWith([]string{v}, w) < sh.SDReg([]string{v}) {
				t.Errorf("SD({%s},%s) < SD({%s})", v, w, v)
			}
		}
	}
}
