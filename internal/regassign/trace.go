package regassign

import (
	"fmt"
	"sort"
	"strings"

	"bistpath/internal/dfg"
	"bistpath/internal/modassign"
)

// Decision explains one step of the coloring: which register a variable
// went to and why — the ΔSD ranking, Case 1/2 diversions and Lemma-2
// avoidances of Section III.A.2, made inspectable (the paper walks
// through exactly this trace for its running example).
type Decision struct {
	Index int    // 1-based position in the coloring order
	Var   string // variable colored
	SD    int    // SD(v)

	NewRegister bool   // no candidate existed (or all forced a CBILBO within budget)
	Chosen      int    // register index chosen (0-based; -1 with NewRegister)
	DeltaSD     int    // ΔSD of the chosen register
	Candidates  []int  // non-conflicting register indices
	Diverted    bool   // a Case 1/2 override changed the primary choice
	Lemma2Skips int    // candidates rejected for forcing a CBILBO
	Note        string // human-readable summary
}

func (d Decision) String() string { return d.Note }

// BindTraced runs the paper's binder and records a Decision per
// variable. The binding is identical to Bind's.
func BindTraced(g *dfg.Graph, mb *modassign.Binding, opts Options) (*Binding, []Decision, error) {
	var trace []Decision
	b, err := bindInternal(g, mb, opts, &trace)
	return b, trace, err
}

// FormatTrace renders a trace as numbered lines.
func FormatTrace(trace []Decision) string {
	var sb strings.Builder
	for _, d := range trace {
		fmt.Fprintf(&sb, "%2d. %s\n", d.Index, d.Note)
	}
	return sb.String()
}

// describe builds the Note text for a decision. chosenVars is the
// content of the chosen register before v joins it (nil for a fresh
// register).
func describe(d *Decision, chosenVars []string) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (SD=%d): ", d.Var, d.SD)
	if d.NewRegister {
		if len(d.Candidates) == 0 {
			fmt.Fprintf(&sb, "conflicts with every register -> new register R%d", d.Chosen+1)
		} else {
			fmt.Fprintf(&sb, "every candidate would force a CBILBO (Lemma 2) -> new register R%d", d.Chosen+1)
		}
		d.Note = sb.String()
		return
	}
	cands := make([]string, len(d.Candidates))
	for i, c := range d.Candidates {
		cands[i] = fmt.Sprintf("R%d", c+1)
	}
	sort.Strings(cands)
	fmt.Fprintf(&sb, "-> R%d {%s} (dSD=%+d; candidates %s",
		d.Chosen+1, strings.Join(chosenVars, ","), d.DeltaSD, strings.Join(cands, ","))
	if d.Diverted {
		sb.WriteString("; Case 1/2 diversion")
	}
	if d.Lemma2Skips > 0 {
		fmt.Fprintf(&sb, "; %d candidate(s) rejected by Lemma 2", d.Lemma2Skips)
	}
	sb.WriteString(")")
	d.Note = sb.String()
}
