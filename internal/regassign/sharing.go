// Package regassign binds DFG variables to registers. This is the
// paper's primary contribution (Sections III.A and III.B): a coloring of
// the variable conflict graph that (1) maximizes the sharing of test
// registers between modules, measured by sharing degrees, and (2) avoids
// assignments that force CBILBO registers, characterized exactly by
// Lemma 2. A traditional area-only binder is provided as the baseline the
// paper compares against.
package regassign

import (
	"sort"

	"bistpath/internal/dfg"
	"bistpath/internal/modassign"
)

// Sharing caches, for a fixed module binding, the input and output
// variable sets of every module, and evaluates the paper's sharing-degree
// measures (Definitions 4 and 5).
type Sharing struct {
	Modules []string                   // module names, stable order
	In      map[string]map[string]bool // module -> I_M
	Out     map[string]map[string]bool // module -> O_M
}

// NewSharing builds the sharing index for a graph and module binding.
func NewSharing(g *dfg.Graph, mb *modassign.Binding) *Sharing {
	s := &Sharing{
		In:  make(map[string]map[string]bool),
		Out: make(map[string]map[string]bool),
	}
	for _, m := range mb.Modules {
		s.Modules = append(s.Modules, m.Name)
		in := make(map[string]bool)
		for _, v := range mb.InputVarSet(g, m.Name) {
			in[v] = true
		}
		out := make(map[string]bool)
		for _, v := range mb.OutputVarSet(g, m.Name) {
			out[v] = true
		}
		s.In[m.Name] = in
		s.Out[m.Name] = out
	}
	sort.Strings(s.Modules)
	return s
}

// flags returns X^v_j and Y^v_j for variable v and module j.
func (s *Sharing) flags(v, module string) (x, y bool) {
	return s.In[module][v], s.Out[module][v]
}

// SDVar returns SD(v), Definition 4: the number of modules for which v is
// an input variable plus the number for which it is an output variable.
func (s *Sharing) SDVar(v string) int {
	sd := 0
	for _, m := range s.Modules {
		x, y := s.flags(v, m)
		if x {
			sd++
		}
		if y {
			sd++
		}
	}
	return sd
}

// regFlags returns X^R_j and Y^R_j (Definition 5): the OR over the
// register's variables of the per-variable flags.
func (s *Sharing) regFlags(vars []string, module string) (x, y bool) {
	for _, v := range vars {
		vx, vy := s.flags(v, module)
		x = x || vx
		y = y || vy
	}
	return x, y
}

// SDReg returns SD(R), Definition 5: the number of distinct input
// variable sets plus distinct output variable sets that contain at least
// one variable of the register.
func (s *Sharing) SDReg(vars []string) int {
	sd := 0
	for _, m := range s.Modules {
		x, y := s.regFlags(vars, m)
		if x {
			sd++
		}
		if y {
			sd++
		}
	}
	return sd
}

// SDRegWith returns SD(R, v): the sharing degree of the register after
// variable v is added to it.
func (s *Sharing) SDRegWith(vars []string, v string) int {
	return s.SDReg(append(append([]string(nil), vars...), v))
}

// DeltaSD returns ΔSD^v(R) = SD(R, v) − SD(R): the increase in the
// register's sharing degree caused by assigning v to it.
func (s *Sharing) DeltaSD(vars []string, v string) int {
	return s.SDRegWith(vars, v) - s.SDReg(vars)
}

// InputModules returns the modules whose input variable set contains v,
// sorted.
func (s *Sharing) InputModules(v string) []string {
	var out []string
	for _, m := range s.Modules {
		if s.In[m][v] {
			out = append(out, m)
		}
	}
	return out
}

// OutputModules returns the modules whose output variable set contains v,
// sorted.
func (s *Sharing) OutputModules(v string) []string {
	var out []string
	for _, m := range s.Modules {
		if s.Out[m][v] {
			out = append(out, m)
		}
	}
	return out
}

// RegsTouchingInput returns the registers (by index into regs) holding at
// least one input variable of the module.
func (s *Sharing) RegsTouchingInput(regs [][]string, module string) []int {
	var out []int
	for i, r := range regs {
		for _, v := range r {
			if s.In[module][v] {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

// RegsTouchingOutput returns the registers (by index) holding at least
// one output variable of the module.
func (s *Sharing) RegsTouchingOutput(regs [][]string, module string) []int {
	var out []int
	for i, r := range regs {
		for _, v := range r {
			if s.Out[module][v] {
				out = append(out, i)
				break
			}
		}
	}
	return out
}
