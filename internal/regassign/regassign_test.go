package regassign

import (
	"sort"
	"strings"
	"testing"

	"bistpath/internal/benchdata"
	"bistpath/internal/graph"
)

func TestTraditionalMinimum(t *testing.T) {
	for _, b := range benchdata.All() {
		min, err := b.Graph.MinRegisters()
		if err != nil {
			t.Fatal(err)
		}
		rb, err := Traditional(b.Graph)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if rb.NumRegisters() != min {
			t.Errorf("%s: traditional used %d registers, minimum is %d", b.Name, rb.NumRegisters(), min)
		}
		if err := rb.Validate(b.Graph); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
	}
}

func TestBindMatchesPaperRegisterCounts(t *testing.T) {
	// Table I: the testable binder uses the same (minimum) register
	// count as the traditional one on every benchmark.
	for _, b := range benchdata.All() {
		mb, err := b.Modules()
		if err != nil {
			t.Fatal(err)
		}
		rb, err := Bind(b.Graph, mb, DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if err := rb.Validate(b.Graph); err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if rb.NumRegisters() != b.PaperRegisters {
			t.Errorf("%s: %d registers, paper reports %d", b.Name, rb.NumRegisters(), b.PaperRegisters)
		}
	}
}

func TestBindEx1AvoidsAllForcedCBILBOs(t *testing.T) {
	b := benchdata.Ex1()
	mb, err := b.Modules()
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Bind(b.Graph, mb, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if f := ForcedCBILBOs(b.Graph, mb, rb.Sets()); len(f) != 0 {
		t.Errorf("ex1 testable binding forces CBILBOs: %v (binding %v)", f, rb)
	}
}

func TestBindDeterministic(t *testing.T) {
	b := benchdata.Tseng1()
	mb, _ := b.Modules()
	r1, err := Bind(b.Graph, mb, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Bind(b.Graph, mb, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r1.String() != r2.String() {
		t.Errorf("binder not deterministic:\n%v\n%v", r1, r2)
	}
}

func TestBindAblationsStillValid(t *testing.T) {
	b := benchdata.Paulin()
	mb, _ := b.Modules()
	configs := []Options{
		{},
		{SharingDegree: true},
		{SharingDegree: true, CaseOverrides: true},
		{SharingDegree: true, AvoidCBILBO: true},
		{SharingDegree: true, CaseOverrides: true, AvoidCBILBO: true, InterconnectTies: true},
	}
	for i, o := range configs {
		rb, err := Bind(b.Graph, mb, o)
		if err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
		if err := rb.Validate(b.Graph); err != nil {
			t.Errorf("config %d: %v", i, err)
		}
	}
}

func TestBindingAccessors(t *testing.T) {
	b := benchdata.Ex1()
	mb, _ := b.Modules()
	rb, err := Bind(b.Graph, mb, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rb.Registers {
		if rb.Register(r.Name) != r {
			t.Errorf("Register(%s) lookup failed", r.Name)
		}
		for _, v := range r.Vars {
			if rb.RegisterOf(v) != r.Name {
				t.Errorf("RegisterOf(%s) = %q, want %s", v, rb.RegisterOf(v), r.Name)
			}
		}
	}
	if rb.Register("nope") != nil {
		t.Error("unknown register lookup should be nil")
	}
	if !strings.Contains(rb.String(), "R1={") {
		t.Errorf("String() = %q", rb.String())
	}
}

func TestValidateCatchesBadBindings(t *testing.T) {
	b := benchdata.Ex1()
	g := b.Graph
	// Conflicting variables a and b (both alive in step 1) together.
	bad := FromSets([][]string{{"a", "b"}, {"c", "f"}, {"d", "g", "h"}, {"e"}})
	if err := bad.Validate(g); err == nil {
		t.Error("conflicting variables in one register accepted")
	}
	// Missing variable h.
	bad = FromSets([][]string{{"a", "c", "f"}, {"b", "d", "g"}, {"e"}})
	if err := bad.Validate(g); err == nil {
		t.Error("unbound variable accepted")
	}
	// Unknown variable.
	bad = FromSets([][]string{{"zz"}})
	if err := bad.Validate(g); err == nil {
		t.Error("unknown variable accepted")
	}
}

// Property: on random scheduled DFGs the binder always produces a valid
// partition, stays within one register of the traditional optimum, and
// never forces more CBILBOs than the traditional binding.
func TestBindRandomProperty(t *testing.T) {
	worseCount := 0
	totalTest, totalTrad := 0, 0
	trials := 40
	for seed := int64(0); seed < int64(trials); seed++ {
		g, mb, err := benchdata.RandomWithModules(benchdata.DefaultRandomConfig(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		trad, err := Traditional(g)
		if err != nil {
			t.Fatalf("seed %d traditional: %v", seed, err)
		}
		rb, err := Bind(g, mb, DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d bind: %v", seed, err)
		}
		if err := rb.Validate(g); err != nil {
			t.Errorf("seed %d: invalid binding: %v", seed, err)
		}
		min, _ := g.MinRegisters()
		if trad.NumRegisters() != min {
			t.Errorf("seed %d: traditional %d registers, minimum %d", seed, trad.NumRegisters(), min)
		}
		if rb.NumRegisters() > min+1 {
			t.Errorf("seed %d: testable %d registers, minimum %d", seed, rb.NumRegisters(), min)
		}
		if rb.NumRegisters() > min {
			worseCount++
		}
		nb := len(ForcedCBILBOs(g, mb, rb.Sets()))
		nt := len(ForcedCBILBOs(g, mb, trad.Sets()))
		totalTest += nb
		totalTrad += nt
		// The greedy heuristic carries no per-instance dominance
		// guarantee, but it should never be much worse on one input.
		if nb > nt+1 {
			t.Errorf("seed %d: testable forces %d CBILBOs, traditional %d", seed, nb, nt)
		}
	}
	// In aggregate the testable binder must force fewer CBILBOs (the
	// paper's core claim).
	if totalTest >= totalTrad {
		t.Errorf("aggregate forced CBILBOs: testable %d, traditional %d (want strictly fewer)", totalTest, totalTrad)
	}
	// The heuristic should stay at the optimum almost always (the paper:
	// "in all the examples considered it resulted in the minimum").
	if worseCount > trials/10 {
		t.Errorf("testable binder exceeded minimum registers in %d/%d runs", worseCount, trials)
	}
}

// Property: the SD/MCS elimination order is a valid PVES of the conflict
// graph on every benchmark.
func TestPVESValidOnBenchmarks(t *testing.T) {
	for _, b := range benchdata.All() {
		cg, err := ConflictGraph(b.Graph)
		if err != nil {
			t.Fatal(err)
		}
		scheme, err := cg.PVES(nil)
		if err != nil {
			t.Fatalf("%s: conflict graph not chordal: %v", b.Name, err)
		}
		if err := cg.VerifyPVES(scheme); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
	}
}

// The conflict graph of an interval specification equals the pairwise
// lifetime overlaps.
func TestConflictGraphMatchesLifetimes(t *testing.T) {
	b := benchdata.Tseng1()
	cg, err := ConflictGraph(b.Graph)
	if err != nil {
		t.Fatal(err)
	}
	lts, err := b.Graph.Lifetimes()
	if err != nil {
		t.Fatal(err)
	}
	vars := b.Graph.AllocVars()
	for i, u := range vars {
		for _, v := range vars[i+1:] {
			want := lts[u].Overlaps(lts[v])
			if got := cg.HasEdge(u, v); got != want {
				t.Errorf("edge(%s,%s) = %v, overlap = %v", u, v, got, want)
			}
		}
	}
	// Chromatic number equals max density for interval graphs.
	colors, err := cg.OptimalChordalColor()
	if err != nil {
		t.Fatal(err)
	}
	min, _ := b.Graph.MinRegisters()
	if graph.NumColors(colors) != min {
		t.Errorf("chromatic %d != max density %d", graph.NumColors(colors), min)
	}
}

func TestSetsAreSorted(t *testing.T) {
	b := benchdata.Ex2()
	mb, _ := b.Modules()
	rb, err := Bind(b.Graph, mb, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, set := range rb.Sets() {
		if !sort.StringsAreSorted(set) {
			t.Errorf("register set %v not sorted", set)
		}
	}
}

func TestEnumerateMinimumBindings(t *testing.T) {
	b := benchdata.Ex1()
	parts, complete, err := EnumerateMinimumBindings(b.Graph, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !complete {
		t.Fatal("enumeration truncated")
	}
	// Our ex1 reconstruction has 36 minimum 3-register bindings (the
	// paper's Fig. 2 variant had 108 — a different conflict graph).
	if len(parts) != 36 {
		t.Errorf("got %d minimum bindings, want 36", len(parts))
	}
	seen := make(map[string]bool)
	for _, p := range parts {
		rb, err := BindingFromPartition(b.Graph, p)
		if err != nil {
			t.Fatalf("invalid enumerated binding: %v", err)
		}
		if rb.NumRegisters() != 3 {
			t.Errorf("binding with %d registers enumerated", rb.NumRegisters())
		}
		if key := rb.String(); seen[key] {
			t.Errorf("duplicate binding %s", key)
		} else {
			seen[key] = true
		}
	}
}

func TestEnumerateLimit(t *testing.T) {
	b := benchdata.Ex2()
	parts, complete, err := EnumerateMinimumBindings(b.Graph, 10)
	if err != nil {
		t.Fatal(err)
	}
	if complete || len(parts) != 10 {
		t.Errorf("limit not honored: %d bindings, complete=%v", len(parts), complete)
	}
}

func TestBindingFromPartitionRejectsBad(t *testing.T) {
	b := benchdata.Ex1()
	if _, err := BindingFromPartition(b.Graph, [][]string{{"a", "b"}}); err == nil {
		t.Error("partial/conflicting partition accepted")
	}
}

func TestBindTracedMatchesBind(t *testing.T) {
	for _, b := range benchdata.All() {
		mb, err := b.Modules()
		if err != nil {
			t.Fatal(err)
		}
		plain, err := Bind(b.Graph, mb, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		traced, trace, err := BindTraced(b.Graph, mb, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if plain.String() != traced.String() {
			t.Errorf("%s: traced binding differs:\n%v\n%v", b.Name, plain, traced)
		}
		if len(trace) != len(b.Graph.AllocVars()) {
			t.Errorf("%s: %d decisions for %d variables", b.Name, len(trace), len(b.Graph.AllocVars()))
		}
		for i, d := range trace {
			if d.Index != i+1 || d.Var == "" || d.Note == "" {
				t.Errorf("%s: malformed decision %+v", b.Name, d)
			}
			if !d.NewRegister && d.Chosen < 0 {
				t.Errorf("%s: decision %d has no chosen register", b.Name, i)
			}
		}
	}
}

// The ex1 trace replays the paper's Section III.A.2 structure: the first
// decisions allocate fresh registers, later high-SD variables merge, and
// the formatted trace names every variable.
func TestTraceNarrativeEx1(t *testing.T) {
	b := benchdata.Ex1()
	mb, _ := b.Modules()
	_, trace, err := BindTraced(b.Graph, mb, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !trace[0].NewRegister {
		t.Error("first variable must open a register")
	}
	text := FormatTrace(trace)
	for _, v := range b.Graph.AllocVars() {
		if !strings.Contains(text, v+" (SD=") {
			t.Errorf("trace missing variable %s:\n%s", v, text)
		}
	}
	merges := 0
	for _, d := range trace {
		if !d.NewRegister {
			merges++
		}
	}
	if merges != len(trace)-3 { // 8 variables into 3 registers
		t.Errorf("expected %d merges, got %d", len(trace)-3, merges)
	}
}
