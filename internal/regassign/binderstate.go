package regassign

import (
	"fmt"
	"math/bits"
	"sort"

	"bistpath/internal/bitset"
	"bistpath/internal/dfg"
	"bistpath/internal/modassign"
)

// binderState is the binder's indexed working set: every variable,
// module and interconnect endpoint is interned to a small integer once
// per Bind call, and every relation the coloring loop queries — the
// conflict graph, module input/output incidence, per-instance operand
// sets, register contents and register source/destination footprints —
// is a preallocated bitset row over those integers. The inner loops
// (candidate filtering, sharing degrees, Lemma-2 trials, interconnect
// scoring) then run without allocating, where the previous map-of-maps
// representation allocated on every query.
//
// The decision semantics are exactly those of the paper binder's
// original string/map implementation; regassign_test.go and the
// package-level golden tests pin the outputs byte-for-byte.
//
// A binderState is single-threaded. Reusing one across Bind calls (via
// Scratch) recycles the backing arrays; init re-dimensions everything
// for the new graph.
type binderState struct {
	names []string // var id -> name (lexicographic, so id order = name order)
	varID map[string]int32

	conf bitset.Matrix // var id -> conflicting var ids

	modNames  []string      // sorted module names (Sharing.Modules order)
	modIn     bitset.Matrix // module -> input variable ids (alloc vars only)
	modOut    bitset.Matrix // module -> output variable ids
	instRow   bitset.Matrix // flattened per-instance operand sets
	instStart []int32       // module m's instances are rows [instStart[m], instStart[m+1])

	// Interconnect endpoints: sources are module indices or, for primary
	// inputs, nm+varID (each input pad is its own source); destinations
	// are module indices plus nm = "out".
	srcOf   []int32       // var id -> source id
	dstBits bitset.Matrix // var id -> destination ids

	// Registers, growing as the coloring opens them. Row capacity is
	// len(names) registers — the worst case of one variable per register.
	regVars [][]int32     // register -> var ids in assignment order
	regBits bitset.Matrix // register -> var ids
	regSrc  bitset.Matrix // register -> source ids
	regDst  bitset.Matrix // register -> destination ids
	numRegs int

	rank []int32 // PVES elimination priority per var id
	mcs  []int32 // max clique size per var id
	sdv  []int32 // SD(v) per var id (Definition 4)

	// Reusable buffers for the per-variable decision.
	scheme   []int32
	alive    bitset.Set
	nbr      bitset.Set
	cands    []int
	ranked   []int
	div      []int
	divTmp   []int
	divSeen  bitset.Set
	candBits bitset.Set
	ordered  []int32
}

// Scratch owns a reusable binderState. Passing one Scratch to
// successive Bind calls (Options.Scratch) recycles the bitset graphs
// and interning tables across runs — the zero-allocation discipline the
// batch pool and the daemon rely on. A Scratch is single-threaded; use
// one per worker.
type Scratch struct {
	bs binderState
}

// NewScratch returns an empty reusable binder scratch.
func NewScratch() *Scratch { return &Scratch{} }

// init re-dimensions the state for one graph + module binding,
// recycling backing arrays where capacities allow.
func (bs *binderState) init(g *dfg.Graph, mb *modassign.Binding) error {
	names := g.AllocVars()
	nv := len(names)
	bs.names = names
	if bs.varID == nil {
		bs.varID = make(map[string]int32, nv)
	} else {
		clear(bs.varID)
	}
	for i, n := range names {
		bs.varID[n] = int32(i)
	}

	// Conflict graph straight from the lifetimes (the same relation
	// dfg.Conflicts materializes as nested maps).
	lts, err := g.Lifetimes()
	if err != nil {
		return err
	}
	bs.conf.Grow(nv, nv)
	for i := 0; i < nv; i++ {
		for j := i + 1; j < nv; j++ {
			if lts[names[i]].Overlaps(lts[names[j]]) {
				bs.conf.Row(i).Set(j)
				bs.conf.Row(j).Set(i)
			}
		}
	}

	// Modules in sorted-name order, matching Sharing.Modules.
	bs.modNames = bs.modNames[:0]
	for _, m := range mb.Modules {
		bs.modNames = append(bs.modNames, m.Name)
	}
	sort.Strings(bs.modNames)
	nm := len(bs.modNames)
	bs.modIn.Grow(nm, nv)
	bs.modOut.Grow(nm, nv)
	totalInst := 0
	for _, m := range mb.Modules {
		totalInst += len(m.Ops)
	}
	bs.instRow.Grow(totalInst, nv)
	bs.instStart = growInt32(bs.instStart, nm+1)
	row := int32(0)
	for mi, name := range bs.modNames {
		bs.instStart[mi] = row
		m := mb.Module(name)
		for _, opName := range m.Ops {
			op := g.Op(opName)
			for _, a := range op.Args {
				if id, ok := bs.varID[a]; ok {
					bs.modIn.Row(mi).Set(int(id))
					bs.instRow.Row(int(row)).Set(int(id))
				}
				// Port-fed operands have no register bit: they can never
				// be register-bound, exactly as in the map formulation.
			}
			if id, ok := bs.varID[op.Result]; ok {
				bs.modOut.Row(mi).Set(int(id))
			}
			row++
		}
	}
	bs.instStart[nm] = row

	// Interconnect endpoint interning (the Fig. 6 estimator).
	bs.srcOf = growInt32(bs.srcOf, nv)
	bs.dstBits.Grow(nv, nm+1)
	for i, n := range names {
		v := g.Var(n)
		if v.IsInput {
			bs.srcOf[i] = int32(nm + i) // each input pad is its own source
		} else {
			bs.srcOf[i] = int32(bs.modIndex(mb.ModuleOf(v.Def).Name))
		}
		for _, u := range v.Uses {
			bs.dstBits.Row(i).Set(bs.modIndex(mb.ModuleOf(u).Name))
		}
		if v.IsOutput {
			bs.dstBits.Row(i).Set(nm)
		}
	}

	// Register rows: at most one register per variable.
	bs.regBits.Grow(nv, nv)
	bs.regSrc.Grow(nv, nm+nv)
	bs.regDst.Grow(nv, nm+1)
	if cap(bs.regVars) < nv {
		bs.regVars = make([][]int32, nv)
	}
	bs.regVars = bs.regVars[:nv]
	for i := range bs.regVars {
		bs.regVars[i] = bs.regVars[i][:0]
	}
	bs.numRegs = 0

	bs.rank = growInt32(bs.rank, nv)
	bs.mcs = growInt32(bs.mcs, nv)
	bs.scheme = growInt32(bs.scheme, nv)
	bs.sdv = growInt32(bs.sdv, nv)
	for v := 0; v < nv; v++ {
		bs.sdv[v] = int32(bs.sdVar(int32(v)))
	}
	bs.alive = growSet(bs.alive, nv)
	bs.nbr = growSet(bs.nbr, nv)
	bs.divSeen = growSet(bs.divSeen, nv)
	bs.candBits = growSet(bs.candBits, nv)
	return nil
}

func growSet(s bitset.Set, n int) bitset.Set {
	w := bitset.Words(n)
	if cap(s) < w {
		return bitset.Make(n)
	}
	s = s[:w]
	s.Reset()
	return s
}

func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func (bs *binderState) modIndex(name string) int {
	// Module counts are small; binary search on the sorted names.
	lo, hi := 0, len(bs.modNames)
	for lo < hi {
		mid := (lo + hi) / 2
		if bs.modNames[mid] < name {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// instances returns the instance-operand rows of module mi.
func (bs *binderState) instances(mi int) (lo, hi int32) {
	return bs.instStart[mi], bs.instStart[mi+1]
}

// --- sharing degrees (Definitions 4 and 5) over bits ---

func (bs *binderState) sdVar(v int32) int {
	sd := 0
	for mi := range bs.modNames {
		if bs.modIn.Row(mi).Has(int(v)) {
			sd++
		}
		if bs.modOut.Row(mi).Has(int(v)) {
			sd++
		}
	}
	return sd
}

func (bs *binderState) sdReg(r int) int {
	sd := 0
	rb := bs.regBits.Row(r)
	for mi := range bs.modNames {
		if rb.Intersects(bs.modIn.Row(mi)) {
			sd++
		}
		if rb.Intersects(bs.modOut.Row(mi)) {
			sd++
		}
	}
	return sd
}

// sdRegWith returns SD(R, v): the register's sharing degree with v
// hypothetically added.
func (bs *binderState) sdRegWith(r int, v int32) int {
	sd := 0
	rb := bs.regBits.Row(r)
	for mi := range bs.modNames {
		if rb.Intersects(bs.modIn.Row(mi)) || bs.modIn.Row(mi).Has(int(v)) {
			sd++
		}
		if rb.Intersects(bs.modOut.Row(mi)) || bs.modOut.Row(mi).Has(int(v)) {
			sd++
		}
	}
	return sd
}

func (bs *binderState) deltaSD(r int, v int32) int {
	return bs.sdRegWith(r, v) - bs.sdReg(r)
}

// icScore is the Fig. 6 interconnect estimate: new sources plus new
// destinations the register acquires by absorbing v.
func (bs *binderState) icScore(r int, v int32) int {
	cost := 0
	if !bs.regSrc.Row(r).Has(int(bs.srcOf[v])) {
		cost++
	}
	cost += bs.dstBits.Row(int(v)).AndNotCount(bs.regDst.Row(r))
	return cost
}

// assign commits variable v to register r, maintaining every register
// footprint incrementally.
func (bs *binderState) assign(r int, v int32) {
	bs.regVars[r] = append(bs.regVars[r], v)
	bs.regBits.Row(r).Set(int(v))
	bs.regSrc.Row(r).Set(int(bs.srcOf[v]))
	bs.regDst.Row(r).Or(bs.dstBits.Row(int(v)))
}

// openRegister starts a fresh register holding v and returns its index.
func (bs *binderState) openRegister(v int32) int {
	r := bs.numRegs
	bs.numRegs++
	bs.assign(r, v)
	return r
}

// --- Lemma 2 over bits ---

// forcedCount returns how many modules the current (possibly trial)
// register contents force into a CBILBO, mirroring forcedForModule's
// map formulation exactly: case (i) needs one register holding all
// output variables and an operand of every instance; case (ii) needs a
// pair that partitions the outputs, each member hitting every instance.
func (bs *binderState) forcedCount() int {
	count := 0
	for mi := range bs.modNames {
		if bs.forcedModule(mi) {
			count++
		}
	}
	return count
}

func (bs *binderState) forcedModule(mi int) bool {
	out := bs.modOut.Row(mi)
	lo, hi := bs.instances(mi)
	if !out.Any() || lo == hi {
		return false
	}
	// Case (i): scan every register first, exactly as the original
	// reports case (i) in preference to case (ii).
	for r := 0; r < bs.numRegs; r++ {
		rb := bs.regBits.Row(r)
		if rb.Intersects(out) && rb.ContainsAll(out) && bs.hitsAllInstances(rb, lo, hi) {
			return true
		}
	}
	// Case (ii): a pair of registers, each holding a proper nonempty
	// part of O_M and an operand of every instance, together covering O_M.
	for i := 0; i < bs.numRegs; i++ {
		ri := bs.regBits.Row(i)
		if !ri.Intersects(out) || ri.ContainsAll(out) || !bs.hitsAllInstances(ri, lo, hi) {
			continue
		}
		for j := i + 1; j < bs.numRegs; j++ {
			rj := bs.regBits.Row(j)
			if !rj.Intersects(out) || rj.ContainsAll(out) || !bs.hitsAllInstances(rj, lo, hi) {
				continue
			}
			if bs.pairCoversOut(ri, rj, out) {
				return true
			}
		}
	}
	return false
}

func (bs *binderState) hitsAllInstances(rb bitset.Set, lo, hi int32) bool {
	for k := lo; k < hi; k++ {
		if !rb.Intersects(bs.instRow.Row(int(k))) {
			return false
		}
	}
	return true
}

func (bs *binderState) pairCoversOut(a, b, out bitset.Set) bool {
	for w := range out {
		if out[w]&^(a[w]|b[w]) != 0 {
			return false
		}
	}
	return true
}

// forcedCountWith evaluates forcedCount with v hypothetically added to
// register r — the Lemma-2 trial of the coloring loop, previously a
// full deep copy of the register sets per candidate.
func (bs *binderState) forcedCountWith(r int, v int32) int {
	rb := bs.regBits.Row(r)
	rb.Set(int(v))
	n := bs.forcedCount()
	rb.Clear(int(v))
	return n
}

// --- PVES (Section III.A.1) over bits ---

// pves computes the perfect vertex elimination scheme minimizing rank
// at every elimination step, ties broken by ascending id (= ascending
// name, the same lexicographic tie-break as graph.Undirected.PVES).
func (bs *binderState) pves() error {
	nv := len(bs.names)
	bs.alive.Reset()
	for v := 0; v < nv; v++ {
		bs.alive.Set(v)
	}
	for k := 0; k < nv; k++ {
		best := int32(-1)
		for v := 0; v < nv; v++ {
			if !bs.alive.Has(v) || !bs.simplicial(v) {
				continue
			}
			if best < 0 || bs.rank[v] < bs.rank[best] {
				best = int32(v)
			}
		}
		if best < 0 {
			return fmt.Errorf("graph is not chordal: no simplicial vertex among %d remaining", nv-k)
		}
		bs.scheme[k] = best
		bs.alive.Clear(int(best))
	}
	return nil
}

// simplicial reports whether v's alive neighborhood induces a clique.
func (bs *binderState) simplicial(v int) bool {
	n := bs.nbr
	n.CopyFrom(bs.conf.Row(v))
	for i, w := range bs.alive {
		n[i] &= w
	}
	// Every alive neighbor u must be adjacent to all other alive
	// neighbors: N \ adj(u) must contain only u itself.
	for wi, w := range n {
		for w != 0 {
			u := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			if n.AndNotCount(bs.conf.Row(u)) != 1 {
				return false
			}
		}
	}
	return true
}

// candidateRegs fills bs.cands with the indices of registers holding no
// variable conflicting with v, in ascending register order.
func (bs *binderState) candidateRegs(v int32) []int {
	bs.cands = bs.cands[:0]
	cv := bs.conf.Row(int(v))
	for r := 0; r < bs.numRegs; r++ {
		if !bs.regBits.Row(r).Intersects(cv) {
			bs.cands = append(bs.cands, r)
		}
	}
	return bs.cands
}

// insertionSortStable sorts xs stably in place by less over values —
// the allocation-free replacement for sort.SliceStable on the binder's
// short candidate lists.
func insertionSortStable(xs []int, less func(a, b int) bool) {
	for i := 1; i < len(xs); i++ {
		x := xs[i]
		j := i - 1
		for j >= 0 && less(x, xs[j]) {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = x
	}
}

// insertionSortStable32 is insertionSortStable over int32 ids.
func insertionSortStable32(xs []int32, less func(a, b int32) bool) {
	for i := 1; i < len(xs); i++ {
		x := xs[i]
		j := i - 1
		for j >= 0 && less(x, xs[j]) {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = x
	}
}

// diversion computes the Case 1 / Case 2 candidate registers for v
// (Section III.A.2), ordered by (ΔSD desc, interconnect asc, SD(R,v)
// desc, index) — the indexed equivalent of the map-based diversionSet
// this binder previously used. On return bs.divSeen holds the
// membership bits of the returned set, which chooseRegister uses to
// filter the primary ranking without allocating.
func (bs *binderState) diversion(cands []int, v int32, primary int) []int {
	sdPrimary := bs.sdRegWith(primary, v)
	bs.candBits.Reset()
	for _, c := range cands {
		bs.candBits.Set(c)
	}
	bs.divSeen.Reset()

	// Case 1: v is an output variable of module Mj and some candidate
	// register already holds an output variable of Mj.
	for mi := range bs.modNames {
		if !bs.modOut.Row(mi).Has(int(v)) {
			continue
		}
		for r := 0; r < bs.numRegs; r++ {
			if r == primary || !bs.candBits.Has(r) || !bs.regBits.Row(r).Intersects(bs.modOut.Row(mi)) {
				continue
			}
			if bs.sdReg(r) > sdPrimary {
				bs.divSeen.Set(r)
			}
		}
	}
	// Case 2: v is an input variable of Mj; because operators are binary
	// the diversion applies only when two registers already hold input
	// variables of Mj (the module's TPG pair already exists).
	for mi := range bs.modNames {
		if !bs.modIn.Row(mi).Has(int(v)) {
			continue
		}
		touching := 0
		for r := 0; r < bs.numRegs; r++ {
			if bs.regBits.Row(r).Intersects(bs.modIn.Row(mi)) {
				touching++
			}
		}
		if touching < 2 {
			continue
		}
		for r := 0; r < bs.numRegs; r++ {
			if r == primary || !bs.candBits.Has(r) || !bs.regBits.Row(r).Intersects(bs.modIn.Row(mi)) {
				continue
			}
			if bs.sdReg(r) > sdPrimary {
				bs.divSeen.Set(r)
			}
		}
	}
	out := bs.div[:0]
	for r := 0; r < bs.numRegs; r++ {
		if bs.divSeen.Has(r) {
			out = append(out, r)
		}
	}
	bs.div = out
	insertionSortStable(out, func(ia, ib int) bool {
		da, db := bs.deltaSD(ia, v), bs.deltaSD(ib, v)
		if da != db {
			return da > db
		}
		ca, cb := bs.icScore(ia, v), bs.icScore(ib, v)
		if ca != cb {
			return ca < cb
		}
		sa, sb := bs.sdRegWith(ia, v), bs.sdRegWith(ib, v)
		if sa != sb {
			return sa > sb
		}
		return ia < ib
	})
	return out
}

// varNames materializes a register's variable names (trace path only).
func (bs *binderState) varNames(r int) []string {
	out := make([]string, len(bs.regVars[r]))
	for i, id := range bs.regVars[r] {
		out[i] = bs.names[id]
	}
	return out
}

// sets materializes every register as ordered variable-name sets for
// FromSets — the one point the indexed state converts back to strings.
func (bs *binderState) sets() [][]string {
	out := make([][]string, bs.numRegs)
	for r := 0; r < bs.numRegs; r++ {
		out[r] = bs.varNames(r)
	}
	return out
}
