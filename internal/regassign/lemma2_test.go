package regassign

import (
	"testing"

	"bistpath/internal/benchdata"
	"bistpath/internal/dfg"
	"bistpath/internal/modassign"
)

// chainGraph builds a module with one instance whose output feeds
// nothing else: and1(x,y) -> z.
func chainGraph(t *testing.T) (*dfg.Graph, *modassign.Binding) {
	t.Helper()
	g := dfg.New("chain")
	if err := g.AddInput("x", "y"); err != nil {
		t.Fatal(err)
	}
	g.AddOp("and1", dfg.And, 1, "z", "x", "y")
	g.MarkOutput("z")
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	mb, err := modassign.FromMap(g, map[string]string{"and1": "M1"})
	if err != nil {
		t.Fatal(err)
	}
	return g, mb
}

func TestForcedCaseI(t *testing.T) {
	g, mb := chainGraph(t)
	// z together with operand x: the register holds all of O_M1 = {z}
	// and hits the only instance -> forced CBILBO, case (i).
	forced := ForcedCBILBOs(g, mb, [][]string{{"x", "z"}, {"y"}})
	if len(forced) != 1 || forced[0].CaseII || forced[0].Regs[0] != 0 {
		t.Fatalf("forced = %v, want case(i) on register 0", forced)
	}
	// z alone: no register both holds the output and hits the instance.
	if f := ForcedCBILBOs(g, mb, [][]string{{"x"}, {"y"}, {"z"}}); len(f) != 0 {
		t.Errorf("separate registers reported forced: %v", f)
	}
}

func TestForcedCaseII(t *testing.T) {
	// Module with two instances and two outputs split across two
	// registers, each register hitting every instance.
	g := dfg.New("c2")
	g.AddInput("p", "q", "r", "s")
	g.AddOp("a1", dfg.Add, 1, "u", "p", "q")
	g.AddOp("a2", dfg.Add, 2, "v", "r", "s")
	g.MarkOutput("u", "v")
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	mb, err := modassign.FromMap(g, map[string]string{"a1": "M1", "a2": "M1"})
	if err != nil {
		t.Fatal(err)
	}
	// R0 = {p, r, u}: holds output u, hits a1 (p) and a2 (r).
	// R1 = {q, s, v}: holds output v, hits a1 (q) and a2 (s).
	forced := ForcedCBILBOs(g, mb, [][]string{{"p", "r", "u"}, {"q", "s", "v"}})
	if len(forced) != 1 || !forced[0].CaseII {
		t.Fatalf("forced = %v, want one case(ii)", forced)
	}
	if len(forced[0].Regs) != 2 {
		t.Errorf("case(ii) regs = %v, want a pair", forced[0].Regs)
	}
	// Break the condition: R1 no longer hits instance a1.
	forced = ForcedCBILBOs(g, mb, [][]string{{"p", "r", "u"}, {"s", "v"}, {"q"}})
	if len(forced) != 0 {
		t.Errorf("forced = %v, want none (R1 misses instance a1)", forced)
	}
}

func TestForcedPartialAssignmentConservative(t *testing.T) {
	g, mb := chainGraph(t)
	// Output z not yet assigned anywhere: nothing can be forced.
	if f := ForcedCBILBOs(g, mb, [][]string{{"x"}, {"y"}}); len(f) != 0 {
		t.Errorf("partial assignment reported forced: %v", f)
	}
}

func TestForcedRegisterSet(t *testing.T) {
	g := dfg.New("fr")
	g.AddInput("p", "q", "r", "s")
	g.AddOp("a1", dfg.Add, 1, "u", "p", "q")
	g.AddOp("a2", dfg.Add, 2, "v", "r", "s")
	g.AddOp("n1", dfg.And, 3, "w", "u", "v")
	g.MarkOutput("w")
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	mb, err := modassign.FromMap(g, map[string]string{"a1": "M1", "a2": "M1", "n1": "M2"})
	if err != nil {
		t.Fatal(err)
	}
	// Case (ii) pair for M1 plus case (i) for M2 sharing register 0:
	// R0 = {p,r,u,w} (holds u; hits both adds; holds w=O_M2 and hits n1
	// via u), R1 = {q,s,v}.
	regs := [][]string{{"p", "r", "u", "w"}, {"q", "s", "v"}}
	forced := ForcedCBILBOs(g, mb, regs)
	if len(forced) != 2 {
		t.Fatalf("forced = %v, want 2 situations", forced)
	}
	set := ForcedRegisterSet(g, mb, regs)
	// Register 0 resolves both the case(i) and (as a pair member) the
	// case(ii): minimal cover = {0}.
	if len(set) != 1 || set[0] != 0 {
		t.Errorf("ForcedRegisterSet = %v, want [0]", set)
	}
}

func TestForcedOnBenchmarkBindings(t *testing.T) {
	// The paper's binder must never be worse than the traditional one in
	// forced-CBILBO count on the five benchmarks.
	for _, b := range benchdata.All() {
		mb, err := b.Modules()
		if err != nil {
			t.Fatal(err)
		}
		trad, err := Traditional(b.Graph)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		test, err := Bind(b.Graph, mb, DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		nt := len(ForcedCBILBOs(b.Graph, mb, trad.Sets()))
		nb := len(ForcedCBILBOs(b.Graph, mb, test.Sets()))
		if nb > nt {
			t.Errorf("%s: testable forces %d CBILBOs, traditional %d", b.Name, nb, nt)
		}
	}
}
