package gates

import "fmt"

// StuckAt is a single stuck-at fault on a signal: the signal reads as
// Value regardless of its driver.
type StuckAt struct {
	Sig   Sig
	Value bool
}

func (f StuckAt) String() string {
	v := 0
	if f.Value {
		v = 1
	}
	return fmt.Sprintf("s%d/sa%d", f.Sig, v)
}

// Sim is a two-phase (evaluate, clock) simulator for a netlist,
// optionally with one injected stuck-at fault.
type Sim struct {
	n     *Netlist
	order []int
	vals  []bool
	fault *StuckAt
}

// NewSim levelizes the netlist and returns a simulator with all state
// cleared.
func NewSim(n *Netlist) (*Sim, error) {
	order, err := n.levelize()
	if err != nil {
		return nil, err
	}
	s := &Sim{n: n, order: order, vals: make([]bool, n.nsig)}
	s.Reset()
	return s, nil
}

// Reset clears every flip-flop and input.
func (s *Sim) Reset() {
	for i := range s.vals {
		s.vals[i] = false
	}
	s.vals[One] = true
	s.fix()
}

// SetFault injects a stuck-at fault (nil removes it).
func (s *Sim) SetFault(f *StuckAt) {
	s.fault = f
	s.fix()
}

func (s *Sim) fix() {
	s.vals[One] = true
	s.vals[Zero] = false
	if s.fault != nil {
		s.vals[s.fault.Sig] = s.fault.Value
	}
}

// Set assigns a primary input or state signal.
func (s *Sim) Set(sig Sig, v bool) {
	s.vals[sig] = v
	s.fix()
}

// SetBus assigns a bus from an integer (LSB first).
func (s *Sim) SetBus(bus []Sig, v uint64) {
	for i, sig := range bus {
		s.vals[sig] = v&(1<<uint(i)) != 0
	}
	s.fix()
}

// Get reads a signal's current value.
func (s *Sim) Get(sig Sig) bool { return s.vals[sig] }

// ReadBus reads a bus as an integer.
func (s *Sim) ReadBus(bus []Sig) uint64 {
	var v uint64
	for i, sig := range bus {
		if s.vals[sig] {
			v |= 1 << uint(i)
		}
	}
	return v
}

// Eval settles the combinational logic from the current inputs and
// flip-flop states.
func (s *Sim) Eval() {
	faultSig := Sig(-1)
	var faultVal bool
	if s.fault != nil {
		faultSig = s.fault.Sig
		faultVal = s.fault.Value
	}
	for _, gi := range s.order {
		g := &s.n.Gates[gi]
		a := s.vals[g.A]
		b := s.vals[g.B]
		var out bool
		switch g.Kind {
		case And:
			out = a && b
		case Or:
			out = a || b
		case Xor:
			out = a != b
		case Not:
			out = !a
		case Nand:
			out = !(a && b)
		case Nor:
			out = !(a || b)
		case Xnor:
			out = a == b
		}
		if g.Out == faultSig {
			out = faultVal
		}
		s.vals[g.Out] = out
	}
	// The fault may sit on a signal no gate drives (input, DFF output).
	s.fix()
}

// Step evaluates the combinational logic and then clocks every
// flip-flop simultaneously.
func (s *Sim) Step() {
	s.Eval()
	next := make([]bool, len(s.n.DFFs))
	for i, d := range s.n.DFFs {
		if s.vals[d.EN] {
			next[i] = s.vals[d.D]
		} else {
			next[i] = s.vals[d.Q]
		}
	}
	for i, d := range s.n.DFFs {
		s.vals[d.Q] = next[i]
	}
	s.fix()
}

// AllFaultSites enumerates one stuck-at-0 and one stuck-at-1 fault per
// gate output and flip-flop output (the standard collapsed structural
// fault universe for this netlist style).
func (n *Netlist) AllFaultSites() []StuckAt {
	var out []StuckAt
	for _, g := range n.Gates {
		out = append(out, StuckAt{g.Out, false}, StuckAt{g.Out, true})
	}
	for _, d := range n.DFFs {
		out = append(out, StuckAt{d.Q, false}, StuckAt{d.Q, true})
	}
	return out
}
