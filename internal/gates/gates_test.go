package gates

import (
	"testing"
	"testing/quick"
)

// simFor builds a simulator and fails the test on error.
func simFor(t *testing.T, n *Netlist) *Sim {
	t.Helper()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	s, err := NewSim(n)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPrimitives(t *testing.T) {
	n := New()
	a := n.InputBus("a", 1)[0]
	b := n.InputBus("b", 1)[0]
	outs := map[string]Sig{
		"and":  n.And2(a, b),
		"or":   n.Or2(a, b),
		"xor":  n.Xor2(a, b),
		"not":  n.Not1(a),
		"nand": n.Nand2(a, b),
		"nor":  n.Nor2(a, b),
		"xnor": n.Xnor2(a, b),
		"mux":  n.Mux2(a, b, n.Not1(b)), // a ? !b : b
	}
	s := simFor(t, n)
	for _, av := range []bool{false, true} {
		for _, bv := range []bool{false, true} {
			s.Set(a, av)
			s.Set(b, bv)
			s.Eval()
			want := map[string]bool{
				"and": av && bv, "or": av || bv, "xor": av != bv, "not": !av,
				"nand": !(av && bv), "nor": !(av || bv), "xnor": av == bv,
			}
			want["mux"] = bv != av // a ? !b : b
			for name, sig := range outs {
				if got := s.Get(sig); got != want[name] {
					t.Errorf("%s(%v,%v) = %v, want %v", name, av, bv, got, want[name])
				}
			}
		}
	}
}

func TestConstBusAndReadWrite(t *testing.T) {
	n := New()
	c := n.ConstBus(8, 0xA5)
	in := n.InputBus("in", 8)
	s := simFor(t, n)
	if got := s.ReadBus(c); got != 0xA5 {
		t.Errorf("const bus = %#x", got)
	}
	s.SetBus(in, 0x3C)
	if got := s.ReadBus(in); got != 0x3C {
		t.Errorf("input bus = %#x", got)
	}
}

// arithBench builds one netlist computing several operators on two 8-bit
// inputs.
func arithBench(t *testing.T) (*Sim, map[string][]Sig, []Sig, []Sig) {
	t.Helper()
	n := New()
	a := n.InputBus("a", 8)
	b := n.InputBus("b", 8)
	sum, _ := n.AddBus(a, b, Zero)
	diff, _ := n.SubBus(a, b)
	outs := map[string][]Sig{
		"add": sum,
		"sub": diff,
		"mul": n.MulBus(a, b),
		"div": n.DivBus(a, b),
		"and": n.BitwiseBus(And, a, b),
		"or":  n.BitwiseBus(Or, a, b),
		"xor": n.BitwiseBus(Xor, a, b),
		"lt":  {n.LtBus(a, b)},
	}
	return simFor(t, n), outs, a, b
}

func TestArithmeticQuick(t *testing.T) {
	s, outs, a, b := arithBench(t)
	check := func(av, bv uint8) bool {
		s.SetBus(a, uint64(av))
		s.SetBus(b, uint64(bv))
		s.Eval()
		x, y := uint64(av), uint64(bv)
		div := uint64(0xFF)
		if y != 0 {
			div = x / y
		}
		lt := uint64(0)
		if x < y {
			lt = 1
		}
		want := map[string]uint64{
			"add": (x + y) & 0xFF, "sub": (x - y) & 0xFF, "mul": (x * y) & 0xFF,
			"div": div, "and": x & y, "or": x | y, "xor": x ^ y, "lt": lt,
		}
		for name, bus := range outs {
			if got := s.ReadBus(bus); got != want[name] {
				t.Errorf("%s(%d,%d) = %d, want %d", name, av, bv, got, want[name])
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	// Corner cases quick.Check may miss.
	for _, c := range [][2]uint8{{0, 0}, {255, 255}, {255, 1}, {1, 255}, {128, 2}, {7, 0}} {
		check(c[0], c[1])
	}
}

func TestRegisterBus(t *testing.T) {
	n := New()
	d := n.InputBus("d", 4)
	en := n.InputBus("en", 1)[0]
	q := n.RegisterBus(d, en)
	n.OutputBus("q", q)
	s := simFor(t, n)
	s.SetBus(d, 0x9)
	s.Set(en, true)
	s.Step()
	if got := s.ReadBus(q); got != 9 {
		t.Fatalf("q = %d after load", got)
	}
	s.SetBus(d, 0x3)
	s.Set(en, false)
	s.Step()
	if got := s.ReadBus(q); got != 9 {
		t.Fatalf("q = %d, enable ignored", got)
	}
	s.Set(en, true)
	s.Step()
	if got := s.ReadBus(q); got != 3 {
		t.Fatalf("q = %d after second load", got)
	}
}

func TestFeedbackRegisterCounter(t *testing.T) {
	// A 4-bit counter: q <= q + 1.
	n := New()
	r := n.NewFeedbackRegister(4)
	inc, _ := n.AddBus(r.Q, n.ConstBus(4, 1), Zero)
	r.WireD(inc, One)
	s := simFor(t, n)
	for i := 1; i <= 20; i++ {
		s.Step()
		if got := s.ReadBus(r.Q); got != uint64(i%16) {
			t.Fatalf("counter = %d at step %d", got, i)
		}
	}
}

func TestOneHotMux(t *testing.T) {
	n := New()
	s0 := n.InputBus("s0", 1)[0]
	s1 := n.InputBus("s1", 1)[0]
	a := n.InputBus("a", 4)
	b := n.InputBus("b", 4)
	out := n.OneHotMux([]Sig{s0, s1}, [][]Sig{a, b})
	sim := simFor(t, n)
	sim.SetBus(a, 0xA)
	sim.SetBus(b, 0x5)
	sim.Set(s0, true)
	sim.Eval()
	if got := sim.ReadBus(out); got != 0xA {
		t.Errorf("sel a: %#x", got)
	}
	sim.Set(s0, false)
	sim.Set(s1, true)
	sim.Eval()
	if got := sim.ReadBus(out); got != 0x5 {
		t.Errorf("sel b: %#x", got)
	}
	sim.Set(s1, false)
	sim.Eval()
	if got := sim.ReadBus(out); got != 0 {
		t.Errorf("no sel: %#x", got)
	}
}

func TestEqConst(t *testing.T) {
	n := New()
	in := n.InputBus("in", 5)
	eq := n.EqConst(in, 19)
	s := simFor(t, n)
	for v := uint64(0); v < 32; v++ {
		s.SetBus(in, v)
		s.Eval()
		if got := s.Get(eq); got != (v == 19) {
			t.Errorf("EqConst(%d) = %v", v, got)
		}
	}
}

func TestValidateCatchesDoubleDrive(t *testing.T) {
	n := New()
	a := n.InputBus("a", 1)[0]
	out := n.And2(a, One)
	n.Gates = append(n.Gates, Gate{Kind: Or, A: a, B: One, Out: out}) // second driver
	if err := n.Validate(); err == nil {
		t.Error("double-driven signal accepted")
	}
}

func TestValidateCatchesCycle(t *testing.T) {
	n := New()
	x := n.Sig()
	y := n.Sig()
	n.Gates = append(n.Gates,
		Gate{Kind: And, A: x, B: One, Out: y},
		Gate{Kind: Or, A: y, B: Zero, Out: x})
	if err := n.Validate(); err == nil {
		t.Error("combinational cycle accepted")
	}
}

func TestStuckAtFault(t *testing.T) {
	n := New()
	a := n.InputBus("a", 1)[0]
	b := n.InputBus("b", 1)[0]
	x := n.Xor2(a, b)
	out := n.And2(x, One)
	s := simFor(t, n)
	s.Set(a, true)
	s.Set(b, false)
	s.Eval()
	if !s.Get(out) {
		t.Fatal("fault-free value wrong")
	}
	s.SetFault(&StuckAt{Sig: x, Value: false})
	s.Eval()
	if s.Get(out) {
		t.Fatal("stuck-at-0 on xor output not observed")
	}
	s.SetFault(nil)
	s.Eval()
	if !s.Get(out) {
		t.Fatal("fault removal failed")
	}
	// Fault on a primary input signal.
	s.SetFault(&StuckAt{Sig: a, Value: false})
	s.Eval()
	if s.Get(out) {
		t.Fatal("input fault not applied")
	}
}

func TestAllFaultSites(t *testing.T) {
	n := New()
	a := n.InputBus("a", 2)
	sum, _ := n.AddBus(a, n.ConstBus(2, 1), Zero)
	q := n.RegisterBus(sum, One)
	n.OutputBus("q", q)
	sites := n.AllFaultSites()
	want := 2 * (n.NumGates() + n.NumDFFs())
	if len(sites) != want {
		t.Errorf("got %d fault sites, want %d", len(sites), want)
	}
}

func TestStats(t *testing.T) {
	n := New()
	a := n.InputBus("a", 4)
	b := n.InputBus("b", 4)
	sum, _ := n.AddBus(a, b, Zero)
	n.RegisterBus(sum, One)
	st := n.Stats()
	if st["dff"] != 4 || st["xor"] == 0 || st["and"] == 0 {
		t.Errorf("stats = %v", st)
	}
	if n.StatsString() == "" {
		t.Error("empty stats string")
	}
}
