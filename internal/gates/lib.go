package gates

import "fmt"

// This file is the arithmetic macro library: word-level operators built
// from primitives. Buses are LSB-first slices of signals.

// ConstBus returns a w-bit bus wired to the constant value.
func (n *Netlist) ConstBus(w int, value uint64) []Sig {
	bus := make([]Sig, w)
	for i := 0; i < w; i++ {
		if value&(1<<uint(i)) != 0 {
			bus[i] = One
		} else {
			bus[i] = Zero
		}
	}
	return bus
}

// fullAdder returns (sum, carry) of a+b+c, folding constants (a half
// adder when c is constant zero, wires when two inputs are constant).
func (n *Netlist) fullAdder(a, b, c Sig) (Sig, Sig) {
	axb := n.XorF(a, b)
	sum := n.XorF(axb, c)
	carry := n.OrF(n.AndF(a, b), n.AndF(axb, c))
	return sum, carry
}

// sumOnly returns just the sum bit of a+b+c (used at positions whose
// carry would be discarded, so no dead carry logic is built).
func (n *Netlist) sumOnly(a, b, c Sig) Sig {
	return n.XorF(n.XorF(a, b), c)
}

// carryOnly returns just the carry bit of a+b+c (no sum gate).
func (n *Netlist) carryOnly(a, b, c Sig) Sig {
	return n.OrF(n.AndF(a, b), n.AndF(n.XorF(a, b), c))
}

// AddBus returns a+b+cin as (sum, carryOut); widths must match.
func (n *Netlist) AddBus(a, b []Sig, cin Sig) ([]Sig, Sig) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("gates: AddBus width mismatch %d vs %d", len(a), len(b)))
	}
	sum := make([]Sig, len(a))
	c := cin
	for i := range a {
		sum[i], c = n.fullAdder(a[i], b[i], c)
	}
	return sum, c
}

// AddBusNoCarry returns a+b+cin truncated to the bus width, without
// building the dead top-carry logic.
func (n *Netlist) AddBusNoCarry(a, b []Sig, cin Sig) []Sig {
	if len(a) != len(b) {
		panic("gates: AddBusNoCarry width mismatch")
	}
	sum := make([]Sig, len(a))
	c := cin
	for i := range a {
		if i == len(a)-1 {
			sum[i] = n.sumOnly(a[i], b[i], c)
		} else {
			sum[i], c = n.fullAdder(a[i], b[i], c)
		}
	}
	return sum
}

// SubBus returns a-b as (difference, borrow): a + ~b + 1, with borrow =
// NOT carryOut (borrow set iff a < b, unsigned).
func (n *Netlist) SubBus(a, b []Sig) ([]Sig, Sig) {
	nb := make([]Sig, len(b))
	for i := range b {
		nb[i] = n.NotF(b[i])
	}
	diff, cout := n.AddBus(a, nb, One)
	return diff, n.NotF(cout)
}

// SubBusNoBorrow returns a-b without building the dead borrow logic.
func (n *Netlist) SubBusNoBorrow(a, b []Sig) []Sig {
	nb := make([]Sig, len(b))
	for i := range b {
		nb[i] = n.NotF(b[i])
	}
	return n.AddBusNoCarry(a, nb, One)
}

// LtBus returns the single-bit a < b (unsigned), built as a pure borrow
// chain (no dead difference gates).
func (n *Netlist) LtBus(a, b []Sig) Sig {
	c := One
	for i := range a {
		c = n.carryOnly(a[i], n.NotF(b[i]), c)
	}
	return n.NotF(c)
}

// BitwiseBus applies a two-input kind bitwise.
func (n *Netlist) BitwiseBus(k GateKind, a, b []Sig) []Sig {
	if len(a) != len(b) {
		panic("gates: BitwiseBus width mismatch")
	}
	out := make([]Sig, len(a))
	for i := range a {
		out[i] = n.gate(k, a[i], b[i])
	}
	return out
}

// MulBus returns the low len(a) bits of a*b (truncated array
// multiplier: one partial-product row per multiplier bit, accumulated by
// carry-propagate rows whose topmost carry — which would be discarded —
// is never built).
func (n *Netlist) MulBus(a, b []Sig) []Sig {
	w := len(a)
	acc := make([]Sig, w)
	for j := 0; j < w; j++ {
		acc[j] = n.AndF(a[j], b[0])
	}
	for i := 1; i < w; i++ {
		c := Zero
		for j := i; j < w; j++ {
			pp := n.AndF(a[j-i], b[i])
			if j == w-1 {
				acc[j] = n.sumOnly(acc[j], pp, c)
			} else {
				acc[j], c = n.fullAdder(acc[j], pp, c)
			}
		}
	}
	return acc
}

// DivBus returns floor(a/b) for unsigned buses (restoring array
// divider). Division by zero yields all ones, matching the behavioral
// convention (every restoring step trivially succeeds). The remainder
// invariantly fits the bus width (it is < max(b,1) after every stage),
// so only w remainder bits are kept, and the final stage builds only its
// borrow chain — no functionally dead logic is emitted.
func (n *Netlist) DivBus(a, b []Sig) []Sig {
	w := len(a)
	q := make([]Sig, w)
	r := make([]Sig, w)
	for i := range r {
		r[i] = Zero
	}
	nb := make([]Sig, w+1)
	for i := range b {
		nb[i] = n.NotF(b[i])
	}
	nb[w] = One // ~0 of the zero extension
	for i := w - 1; i >= 0; i-- {
		// shifted = (r << 1) | a[i], w+1 bits.
		shifted := make([]Sig, w+1)
		shifted[0] = a[i]
		copy(shifted[1:], r)
		last := i == 0
		// t = shifted - b via shifted + ~b + 1; the top position needs
		// only its carry, and the final stage needs no sums at all
		// (its remainder is never used).
		t := make([]Sig, w)
		c := One
		for j := 0; j <= w; j++ {
			if j < w && !last {
				t[j], c = n.fullAdder(shifted[j], nb[j], c)
			} else {
				c = n.carryOnly(shifted[j], nb[j], c)
			}
		}
		ok := c // carry out set: no borrow, subtraction succeeded
		q[i] = ok
		if !last {
			for j := 0; j < w; j++ {
				r[j] = n.Mux2(ok, shifted[j], t[j])
			}
		}
	}
	return q
}

// MuxBus returns sel ? b : a, bitwise.
func (n *Netlist) MuxBus(sel Sig, a, b []Sig) []Sig {
	if len(a) != len(b) {
		panic("gates: MuxBus width mismatch")
	}
	out := make([]Sig, len(a))
	for i := range a {
		out[i] = n.Mux2(sel, a[i], b[i])
	}
	return out
}

// OneHotMux selects among buses with one-hot select lines:
// out = OR_i (sels[i] & buses[i]). With no select asserted the output is
// zero; with several asserted the buses are ORed (callers guarantee
// one-hot).
func (n *Netlist) OneHotMux(sels []Sig, buses [][]Sig) []Sig {
	if len(sels) != len(buses) || len(buses) == 0 {
		panic("gates: OneHotMux arity mismatch")
	}
	w := len(buses[0])
	out := n.ConstBus(w, 0)
	for i, sel := range sels {
		if len(buses[i]) != w {
			panic("gates: OneHotMux width mismatch")
		}
		masked := make([]Sig, w)
		for j := 0; j < w; j++ {
			masked[j] = n.AndF(sel, buses[i][j])
		}
		for j := 0; j < w; j++ {
			out[j] = n.OrF(out[j], masked[j])
		}
	}
	return out
}

// EqConst returns a signal that is 1 iff bus == value.
func (n *Netlist) EqConst(bus []Sig, value uint64) Sig {
	acc := One
	for i, s := range bus {
		bit := s
		if value&(1<<uint(i)) == 0 {
			bit = n.NotF(s)
		}
		acc = n.AndF(acc, bit)
	}
	return acc
}

// RegisterBus builds a w-bit register with enable: Q <= EN ? D : Q.
// The D bus may be wired later via the returned placeholder function
// pattern; here D must already exist.
func (n *Netlist) RegisterBus(d []Sig, en Sig) []Sig {
	q := make([]Sig, len(d))
	for i := range d {
		q[i] = n.Dff(d[i], en)
	}
	return q
}

// FeedbackRegisterBus allocates the Q bus first so the caller can use it
// in the logic computing D, then wires the flip-flops with WireD.
type FeedbackRegisterBus struct {
	Q []Sig
	n *Netlist
}

// NewFeedbackRegister allocates a register whose inputs are wired later.
func (n *Netlist) NewFeedbackRegister(w int) *FeedbackRegisterBus {
	return &FeedbackRegisterBus{Q: n.Bus(w), n: n}
}

// WireD connects the register's data inputs and enable.
func (f *FeedbackRegisterBus) WireD(d []Sig, en Sig) {
	if len(d) != len(f.Q) {
		panic("gates: feedback register width mismatch")
	}
	for i := range d {
		f.n.DffAt(f.Q[i], d[i], en)
	}
}
