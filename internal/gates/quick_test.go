package gates

import (
	"testing"
	"testing/quick"
)

// Word-level identities on random operands: (a+b)-b == a,
// a*b == b*a (mod 2^w), comparator trichotomy.
func TestArithmeticIdentitiesQuick(t *testing.T) {
	n := New()
	a := n.InputBus("a", 8)
	b := n.InputBus("b", 8)
	sum, _ := n.AddBus(a, b, Zero)
	back, _ := n.SubBus(sum, b)
	ab := n.MulBus(a, b)
	ba := n.MulBus(b, a)
	lt := n.LtBus(a, b)
	gt := n.LtBus(b, a)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(n)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(x, y uint8) bool {
		sim.SetBus(a, uint64(x))
		sim.SetBus(b, uint64(y))
		sim.Eval()
		if sim.ReadBus(back) != uint64(x) {
			return false // (a+b)-b != a
		}
		if sim.ReadBus(ab) != sim.ReadBus(ba) {
			return false // multiplication not commutative
		}
		l, g := sim.Get(lt), sim.Get(gt)
		if x == y {
			return !l && !g
		}
		return l != g
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Division identity: q = a/b satisfies q*b <= a < (q+1)*b for b != 0
// (checked in full precision), and a/0 = all ones.
func TestDivisionIdentityQuick(t *testing.T) {
	n := New()
	a := n.InputBus("a", 8)
	b := n.InputBus("b", 8)
	q := n.DivBus(a, b)
	sim, err := NewSim(n)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(x, y uint8) bool {
		sim.SetBus(a, uint64(x))
		sim.SetBus(b, uint64(y))
		sim.Eval()
		got := sim.ReadBus(q)
		if y == 0 {
			return got == 0xFF
		}
		return got == uint64(x)/uint64(y)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// A stuck-at fault on a signal never changes outputs while holding the
// signal at its fault-free value (single-fault consistency).
func TestFaultConsistencyQuick(t *testing.T) {
	n := New()
	a := n.InputBus("a", 6)
	b := n.InputBus("b", 6)
	out := n.MulBus(a, b)
	n.OutputBus("p", out)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(n)
	if err != nil {
		t.Fatal(err)
	}
	gatesList := n.Gates
	prop := func(x, y uint8, gi uint16) bool {
		g := gatesList[int(gi)%len(gatesList)]
		sim.SetFault(nil)
		sim.SetBus(a, uint64(x&0x3F))
		sim.SetBus(b, uint64(y&0x3F))
		sim.Eval()
		good := sim.ReadBus(out)
		val := sim.Get(g.Out)
		// Stuck at the value the signal already has: outputs unchanged.
		sim.SetFault(&StuckAt{Sig: g.Out, Value: val})
		sim.Eval()
		same := sim.ReadBus(out) == good
		sim.SetFault(nil)
		return same
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
