// Package gates provides a structural gate-level netlist, a cycle
// simulator, and stuck-at fault injection. The allocation flow elaborates
// its data paths into this representation (internal/elab) so that area is
// a literal gate count and the BIST methodology can be validated by real
// gate-level fault simulation, as the paper's BITS system did.
package gates

import (
	"fmt"
	"sort"
)

// Sig is a signal index within a netlist. Signal 0 is constant zero and
// signal 1 is constant one.
type Sig int

// Reserved signals.
const (
	Zero Sig = 0
	One  Sig = 1
)

// GateKind enumerates the combinational primitives.
type GateKind int

// Primitive kinds.
const (
	And GateKind = iota
	Or
	Xor
	Not
	Nand
	Nor
	Xnor
)

func (k GateKind) String() string {
	switch k {
	case And:
		return "and"
	case Or:
		return "or"
	case Xor:
		return "xor"
	case Not:
		return "not"
	case Nand:
		return "nand"
	case Nor:
		return "nor"
	case Xnor:
		return "xnor"
	}
	return "?"
}

// Gate is one combinational primitive: Out = Kind(A, B). Not uses only A.
type Gate struct {
	Kind GateKind
	A, B Sig
	Out  Sig
}

// DFF is a rising-edge flip-flop with optional enable (One = always
// load): Q <= if EN then D else Q.
type DFF struct {
	D, EN, Q Sig
}

// Netlist is a flat gate-level design. Construct with New and the
// builder methods; names attach debug labels to signals and buses.
type Netlist struct {
	nsig    int
	Gates   []Gate
	DFFs    []DFF
	Inputs  []Sig
	Outputs []Sig

	names map[string][]Sig // named buses (LSB first)
	order []string
}

// New returns a netlist containing only the constant signals.
func New() *Netlist {
	return &Netlist{nsig: 2, names: make(map[string][]Sig)}
}

// NumSignals returns the signal count (including constants).
func (n *Netlist) NumSignals() int { return n.nsig }

// NumGates returns the combinational gate count.
func (n *Netlist) NumGates() int { return len(n.Gates) }

// NumDFFs returns the flip-flop count.
func (n *Netlist) NumDFFs() int { return len(n.DFFs) }

// Sig allocates a fresh signal.
func (n *Netlist) Sig() Sig {
	s := Sig(n.nsig)
	n.nsig++
	return s
}

// Bus allocates w fresh signals (LSB first).
func (n *Netlist) Bus(w int) []Sig {
	out := make([]Sig, w)
	for i := range out {
		out[i] = n.Sig()
	}
	return out
}

// Name labels a bus; re-using a name overwrites the previous label.
func (n *Netlist) Name(name string, bus []Sig) {
	if _, ok := n.names[name]; !ok {
		n.order = append(n.order, name)
	}
	n.names[name] = append([]Sig(nil), bus...)
}

// Named returns the bus labeled name, or nil.
func (n *Netlist) Named(name string) []Sig { return n.names[name] }

// NamedBuses lists labels in definition order.
func (n *Netlist) NamedBuses() []string { return append([]string(nil), n.order...) }

// InputBus allocates a w-bit primary input bus with the given name.
func (n *Netlist) InputBus(name string, w int) []Sig {
	bus := n.Bus(w)
	n.Inputs = append(n.Inputs, bus...)
	n.Name(name, bus)
	return bus
}

// OutputBus marks a bus as primary outputs with the given name.
func (n *Netlist) OutputBus(name string, bus []Sig) {
	n.Outputs = append(n.Outputs, bus...)
	n.Name(name, bus)
}

// gate adds a two-input primitive and returns its output signal.
func (n *Netlist) gate(k GateKind, a, b Sig) Sig {
	out := n.Sig()
	n.Gates = append(n.Gates, Gate{Kind: k, A: a, B: b, Out: out})
	return out
}

// And2 returns a AND b.
func (n *Netlist) And2(a, b Sig) Sig { return n.gate(And, a, b) }

// Or2 returns a OR b.
func (n *Netlist) Or2(a, b Sig) Sig { return n.gate(Or, a, b) }

// Xor2 returns a XOR b.
func (n *Netlist) Xor2(a, b Sig) Sig { return n.gate(Xor, a, b) }

// Not1 returns NOT a.
func (n *Netlist) Not1(a Sig) Sig { return n.gate(Not, a, Zero) }

// Nand2 returns NOT(a AND b).
func (n *Netlist) Nand2(a, b Sig) Sig { return n.gate(Nand, a, b) }

// Nor2 returns NOT(a OR b).
func (n *Netlist) Nor2(a, b Sig) Sig { return n.gate(Nor, a, b) }

// Xnor2 returns NOT(a XOR b).
func (n *Netlist) Xnor2(a, b Sig) Sig { return n.gate(Xnor, a, b) }

// Mux2 returns sel ? b : a (built from primitives: 3 gates + inverter).
func (n *Netlist) Mux2(sel, a, b Sig) Sig {
	if sel == Zero || a == b {
		return a
	}
	if sel == One {
		return b
	}
	ns := n.NotF(sel)
	return n.OrF(n.AndF(ns, a), n.AndF(sel, b))
}

// The *F helpers fold constants so that macro builders never emit gates
// whose outputs are constant or equal to an input — such gates would
// carry structurally untestable stuck-at faults and inflate area.

// AndF returns a AND b with constant folding.
func (n *Netlist) AndF(a, b Sig) Sig {
	switch {
	case a == Zero || b == Zero:
		return Zero
	case a == One:
		return b
	case b == One:
		return a
	case a == b:
		return a
	}
	return n.gate(And, a, b)
}

// OrF returns a OR b with constant folding.
func (n *Netlist) OrF(a, b Sig) Sig {
	switch {
	case a == One || b == One:
		return One
	case a == Zero:
		return b
	case b == Zero:
		return a
	case a == b:
		return a
	}
	return n.gate(Or, a, b)
}

// XorF returns a XOR b with constant folding.
func (n *Netlist) XorF(a, b Sig) Sig {
	switch {
	case a == b:
		return Zero
	case a == Zero:
		return b
	case b == Zero:
		return a
	case a == One:
		return n.NotF(b)
	case b == One:
		return n.NotF(a)
	}
	return n.gate(Xor, a, b)
}

// NotF returns NOT a with constant folding.
func (n *Netlist) NotF(a Sig) Sig {
	switch a {
	case Zero:
		return One
	case One:
		return Zero
	}
	return n.gate(Not, a, Zero)
}

// Dff adds a flip-flop with enable and returns its Q output.
func (n *Netlist) Dff(d, en Sig) Sig {
	q := n.Sig()
	n.DFFs = append(n.DFFs, DFF{D: d, EN: en, Q: q})
	return q
}

// DffAt adds a flip-flop whose Q is a pre-allocated signal (needed for
// feedback loops where Q is used before D exists).
func (n *Netlist) DffAt(q, d, en Sig) {
	n.DFFs = append(n.DFFs, DFF{D: d, EN: en, Q: q})
}

// Drive makes a pre-allocated signal carry the value of src (a buffer
// gate with an explicit output). Used to close forward references, e.g.
// control signals consumed by the data path before the controller that
// computes them is built.
func (n *Netlist) Drive(dst, src Sig) {
	n.Gates = append(n.Gates, Gate{Kind: Or, A: src, B: Zero, Out: dst})
}

// Validate checks structural sanity: every gate/DFF input refers to an
// existing signal, every signal is driven at most once, and the
// combinational part is acyclic (checked by attempting levelization).
func (n *Netlist) Validate() error {
	driven := make([]int, n.nsig)
	driven[Zero]++
	driven[One]++
	check := func(s Sig) error {
		if s < 0 || int(s) >= n.nsig {
			return fmt.Errorf("gates: signal %d out of range", s)
		}
		return nil
	}
	for _, in := range n.Inputs {
		if err := check(in); err != nil {
			return err
		}
		driven[in]++
	}
	for _, g := range n.Gates {
		for _, s := range []Sig{g.A, g.B, g.Out} {
			if err := check(s); err != nil {
				return err
			}
		}
		driven[g.Out]++
	}
	for _, d := range n.DFFs {
		for _, s := range []Sig{d.D, d.EN, d.Q} {
			if err := check(s); err != nil {
				return err
			}
		}
		driven[d.Q]++
	}
	for s, cnt := range driven {
		if cnt > 1 {
			return fmt.Errorf("gates: signal %d driven %d times", s, cnt)
		}
	}
	for _, out := range n.Outputs {
		if err := check(out); err != nil {
			return err
		}
	}
	if _, err := n.levelize(); err != nil {
		return err
	}
	return nil
}

// levelize orders the combinational gates topologically (DFF outputs,
// constants and inputs are level-0 sources).
func (n *Netlist) levelize() ([]int, error) {
	// producer[g.Out] = gate index
	producer := make([]int, n.nsig)
	for i := range producer {
		producer[i] = -1
	}
	for i, g := range n.Gates {
		producer[g.Out] = i
	}
	order := make([]int, 0, len(n.Gates))
	state := make([]int, len(n.Gates)) // 0 white, 1 gray, 2 black
	var visit func(gi int) error
	visit = func(gi int) error {
		state[gi] = 1
		g := n.Gates[gi]
		ins := []Sig{g.A}
		if g.Kind != Not {
			ins = append(ins, g.B)
		}
		for _, s := range ins {
			pi := producer[s]
			if pi < 0 {
				continue
			}
			switch state[pi] {
			case 1:
				return fmt.Errorf("gates: combinational cycle through gate %d", pi)
			case 0:
				if err := visit(pi); err != nil {
					return err
				}
			}
		}
		state[gi] = 2
		order = append(order, gi)
		return nil
	}
	for gi := range n.Gates {
		if state[gi] == 0 {
			if err := visit(gi); err != nil {
				return nil, err
			}
		}
	}
	return order, nil
}

// Stats summarizes the netlist per gate kind.
func (n *Netlist) Stats() map[string]int {
	out := map[string]int{"dff": len(n.DFFs), "signals": n.nsig}
	for _, g := range n.Gates {
		out[g.Kind.String()]++
	}
	return out
}

// StatsString renders Stats deterministically.
func (n *Netlist) StatsString() string {
	st := n.Stats()
	keys := make([]string, 0, len(st))
	for k := range st {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for i, k := range keys {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%d", k, st[k])
	}
	return s
}
