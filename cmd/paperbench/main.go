// Command paperbench regenerates every table and figure of the DAC'95
// paper "Data Path Allocation for Synthesizing RTL Designs with Low BIST
// Area Overhead" from this reproduction, printing measured values next to
// the paper's where applicable.
//
// Usage:
//
//	paperbench            # everything
//	paperbench -table 1   # Table I only (1, 2 or 3)
//	paperbench -fig 4     # Figure 1..6
//	paperbench -ablation  # mechanism ablation sweep on random DFGs
//	paperbench -stats     # observability table (phase times, search counters)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"bistpath"
	"bistpath/internal/area"
	"bistpath/internal/atpg"
	"bistpath/internal/baselines"
	"bistpath/internal/benchdata"
	"bistpath/internal/bist"
	"bistpath/internal/bistgen"
	"bistpath/internal/datapath"
	"bistpath/internal/dfg"
	"bistpath/internal/gates"
	"bistpath/internal/interconnect"
	"bistpath/internal/modassign"
	"bistpath/internal/regassign"
	"bistpath/internal/report"
	"bistpath/internal/scan"
)

func main() {
	table := flag.Int("table", 0, "regenerate one table (1..3)")
	fig := flag.Int("fig", 0, "regenerate one figure (1..6)")
	ablation := flag.Bool("ablation", false, "run the mechanism ablation sweep")
	gate := flag.Bool("gates", false, "run the gate-level extension experiment")
	scale := flag.Bool("scale", false, "run the filter scale study")
	scanCmp := flag.Bool("scan", false, "run the scan-vs-BIST tradeoff study")
	optimality := flag.Bool("optimality", false, "exhaustively grade the register binder against every minimum binding")
	widths := flag.Bool("widths", false, "run the datapath-width sweep")
	atpgFlag := flag.Bool("atpg", false, "run the fault-efficiency study (deterministic top-up + redundancy proofs)")
	sessions := flag.Bool("sessions", false, "run the test-time/session study")
	statsFlag := flag.Bool("stats", false, "run the synthesis observability table (phase times + search counters)")
	verifyFlag := flag.Bool("verify", false, "run the differential verification harness on every benchmark")
	objectiveFlag := flag.Bool("objective", false, "run the multi-objective trade-off study (area x test time x peak power)")
	jflag := flag.Int("j", 0, "parallel synthesis workers for the table sweeps (0 = GOMAXPROCS)")
	cacheFlag := flag.Bool("cache", false, "share a synthesis result cache across the table sweeps")
	cacheDir := flag.String("cache-dir", "", "also persist cached results under this directory (implies -cache)")
	flag.Parse()
	batchWorkers = *jflag
	if *cacheFlag || *cacheDir != "" {
		var err error
		batchCache, err = bistpath.NewCache(bistpath.CacheOptions{Dir: *cacheDir})
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
		defer func() { fmt.Fprintln(os.Stderr, batchCache.Stats()) }()
	}

	all := *table == 0 && *fig == 0 && !*ablation && !*gate && !*scale && !*scanCmp && !*optimality && !*widths && !*atpgFlag && !*sessions && !*statsFlag && !*verifyFlag && !*objectiveFlag
	run := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
	}
	if all || *table == 1 {
		run(tableI())
	}
	if all || *table == 2 {
		run(tableII())
	}
	if all || *table == 3 {
		run(tableIII())
	}
	figs := []func() error{fig1, fig2, fig3, fig4, fig5, fig6}
	for i, f := range figs {
		if all || *fig == i+1 {
			run(f())
		}
	}
	if all || *ablation {
		run(runAblation())
	}
	if all || *gate {
		run(gateLevelTable())
	}
	if all || *scale {
		run(scaleTable())
	}
	if all || *scanCmp {
		run(scanTable())
	}
	if all || *optimality {
		run(optimalityTable())
	}
	if all || *widths {
		run(widthTable())
	}
	if *atpgFlag { // explicit only: exhaustive proofs take a few seconds
		run(atpgTable())
	}
	if all || *sessions {
		run(sessionTable())
	}
	if *statsFlag { // explicit only: wall times are not reproducible output
		run(statsTable())
	}
	if all || *verifyFlag {
		run(verifyTable())
	}
	if all || *objectiveFlag {
		run(objectiveTable())
	}
}

// objectiveTable is an extension: the full Pareto front of every
// benchmark over (extra area, test sessions, peak test power), with the
// area-minimal member cross-checked against the single-objective search
// — the front must start exactly where Table II's minimal-area solution
// sits. Any disagreement, front verification failure, or inexact front
// is a non-zero exit.
func objectiveTable() error {
	t := report.NewTable("Multi-objective trade-off — Pareto fronts over area / test time / peak power",
		"DFG", "front", "extra area", "sessions", "peak power", "overhead", "BIST styles")
	for _, b := range benchdata.All() {
		d, mods, err := bistpath.Benchmark(b.Name)
		if err != nil {
			return err
		}
		res, err := d.SynthesizePareto(mods, bistpath.DefaultConfig())
		if err != nil {
			return err
		}
		rep, err := res.VerifyPareto(context.Background(), bistpath.VerifyOptions{})
		if err != nil {
			return err
		}
		if !rep.OK() {
			return rep.Err()
		}
		single, err := d.Synthesize(mods, bistpath.DefaultConfig())
		if err != nil {
			return err
		}
		if got, want := res.Pareto[0].BISTArea, single.BISTArea; got != want {
			return fmt.Errorf("%s: area-minimal front member has BIST area %d, Table II solution %d", b.Name, got, want)
		}
		if got, want := res.Pareto[0].StyleSummary(), single.StyleSummary(); got != want {
			return fmt.Errorf("%s: area-minimal front member styles %q, Table II solution %q", b.Name, got, want)
		}
		for i, pt := range res.Pareto {
			name := ""
			if i == 0 {
				name = b.Name
			}
			t.AddRowf(name, fmt.Sprintf("%d/%d", i+1, len(res.Pareto)),
				pt.Cost.Area, pt.Cost.TestTime, pt.Cost.PeakPower,
				fmt.Sprintf("%.2f%%", pt.OverheadPct), pt.StyleSummary())
		}
	}
	fmt.Println(t)
	fmt.Println("front 1 is the minimal-area plan of Table II; later members trade area for")
	fmt.Println("fewer sessions or lower peak power (enumeration-verified non-dominated sets).")
	fmt.Println()
	return nil
}

// verifyTable runs the differential verification harness on every
// benchmark in both flows: plan invariants, a functional cross-check
// against dfg.Eval, exhaustive embedding and register-binding oracles,
// and worker-count conformance. It fails (non-zero exit) on any
// violation — the table is evidence that every other number printed by
// this command stands on a verified allocation.
func verifyTable() error {
	t := report.NewTable("Differential verification — invariants, oracles, functional cross-check",
		"DFG", "flow", "status", "vectors", "plan", "oracle min", "combos", "bindings", "best..worst")
	var failures int
	for _, b := range benchdata.All() {
		for _, mode := range []bistpath.Mode{bistpath.Testable, bistpath.TraditionalHLS} {
			d, mods, err := bistpath.Benchmark(b.Name)
			if err != nil {
				return err
			}
			cfg := bistpath.DefaultConfig()
			cfg.Mode = mode
			res, err := d.Synthesize(mods, cfg)
			if err != nil {
				return err
			}
			rep, err := res.Verify(context.Background(), bistpath.VerifyOptions{})
			if err != nil {
				return err
			}
			status := "PASS"
			if !rep.OK() {
				status = "FAIL"
				failures++
			}
			flow := "testable"
			if mode == bistpath.TraditionalHLS {
				flow = "traditional"
			}
			t.AddRowf(b.Name, flow, status, rep.Vectors, rep.PlanCost, rep.EmbeddingMin,
				rep.EmbeddingCombos,
				fmt.Sprintf("%d/%d", rep.BindingFeasible, rep.BindingCount),
				fmt.Sprintf("%d..%d", rep.BindingBest, rep.BindingWorst))
			for _, v := range rep.Violations {
				fmt.Printf("  %s/%s VIOLATION: %s\n", b.Name, flow, v)
			}
		}
	}
	fmt.Println(t)
	if failures > 0 {
		return fmt.Errorf("verification failed for %d flow(s)", failures)
	}
	return nil
}

// statsTable surfaces the observability layer: where each benchmark's
// synthesis spends its time and how hard the search layers work. The
// counters are deterministic (sequential search); the durations are wall
// times and vary run to run, which is why this table is not part of the
// default paper regeneration.
func statsTable() error {
	t := report.NewTable("Synthesis observability — phase times (wall) and search effort",
		"DFG", "total", "bind", "bist", "nodes", "prunes", "incumbents", "embeddings", "L2 checks", "overrides", "pool util")
	var jobs []bistpath.Job
	for _, b := range benchdata.All() {
		d, mods, err := bistpath.Benchmark(b.Name)
		if err != nil {
			return err
		}
		jobs = append(jobs, bistpath.Job{Name: b.Name, DFG: d, Modules: mods, Config: bistpath.DefaultConfig()})
	}
	results, bs := bistpath.SynthesizeAllStats(context.Background(), jobs, bistpath.BatchOptions{Workers: batchWorkers})
	util := fmt.Sprintf("%.0f%% (%d workers)", bs.Utilization()*100, bs.Workers)
	for i, br := range results {
		if br.Err != nil {
			return fmt.Errorf("%s: %w", br.Name, br.Err)
		}
		s := br.Result.Stats
		cell := ""
		if i == 0 {
			cell = util
		}
		t.AddRowf(br.Name,
			s.Total.Round(10*time.Microsecond).String(),
			s.RegisterBind.Round(10*time.Microsecond).String(),
			s.BISTSearch.Round(10*time.Microsecond).String(),
			s.SearchNodes, s.BoundPrunes, s.IncumbentUpdates,
			s.EmbeddingsEnumerated, s.Lemma2Checks, s.CaseOverrides, cell)
	}
	fmt.Println(t)
	return nil
}

// sessionTable is an extension: the paper notes that modules need not be
// tested in one session; this quantifies the session schedule and the
// effect of the session-minimizing tie-break on test time (area held at
// the minimum in both columns).
func sessionTable() error {
	t := report.NewTable("Test sessions — area-minimal plans, with and without the session tie-break",
		"DFG", "sessions (default)", "sessions (tuned)", "test cycles @250", "BIST area")
	var jobs []bistpath.Job
	for _, b := range benchdata.All() {
		d, mods, err := bistpath.Benchmark(b.Name)
		if err != nil {
			return err
		}
		tuned := bistpath.DefaultConfig()
		tuned.MinimizeSessions = true
		jobs = append(jobs,
			bistpath.Job{Name: b.Name + "/default", DFG: d, Modules: mods, Config: bistpath.DefaultConfig()},
			bistpath.Job{Name: b.Name + "/tuned", DFG: d, Modules: mods, Config: tuned})
	}
	results, err := runBatch(jobs)
	if err != nil {
		return err
	}
	for i, b := range benchdata.All() {
		base, tuned := results[2*i], results[2*i+1]
		if tuned.BISTArea != base.BISTArea {
			return fmt.Errorf("%s: session tuning changed area", b.Name)
		}
		t.AddRowf(b.Name, len(base.Sessions), len(tuned.Sessions),
			tuned.TestCycles(250), tuned.BISTArea-tuned.BaseArea)
	}
	fmt.Println(t)
	return nil
}

// atpgTable is an extension: for each functional unit, grade 250
// pseudo-random patterns, then push every missed fault through
// exhaustive deterministic search (width 6 keeps the 2^12 operand space
// exact). Redundant faults are proven untestable, so the last column is
// fault efficiency — the honest quality metric for random-pattern
// resistant units like the restoring divider.
func atpgTable() error {
	const w = 6
	t := report.NewTable(fmt.Sprintf("Fault efficiency — %d-bit units, 250 random patterns + deterministic top-up", w),
		"unit", "faults", "random", "ATPG top-up", "redundant", "raw coverage", "fault efficiency")
	units := []struct {
		name  string
		build func(n *gates.Netlist, a, b []gates.Sig) []gates.Sig
	}{
		{"add", func(n *gates.Netlist, a, b []gates.Sig) []gates.Sig { return n.AddBusNoCarry(a, b, gates.Zero) }},
		{"sub", func(n *gates.Netlist, a, b []gates.Sig) []gates.Sig { return n.SubBusNoBorrow(a, b) }},
		{"mul", func(n *gates.Netlist, a, b []gates.Sig) []gates.Sig { return n.MulBus(a, b) }},
		{"div", func(n *gates.Netlist, a, b []gates.Sig) []gates.Sig { return n.DivBus(a, b) }},
	}
	for _, u := range units {
		cone, err := atpg.ConeForKind(u.build, w)
		if err != nil {
			return err
		}
		var faults []gates.StuckAt
		for _, g := range cone.Net.Gates {
			faults = append(faults, gates.StuckAt{Sig: g.Out, Value: false}, gates.StuckAt{Sig: g.Out, Value: true})
		}
		// Random phase: two uncorrelated LFSR streams.
		sim, err := gates.NewSim(cone.Net)
		if err != nil {
			return err
		}
		tapsA, _ := bistgen.PrimitiveTaps(w)
		taps := bistgen.DistinctTaps(w, 2)
		tapsB := taps[len(taps)-1]
		vec := make([][2]uint64, 250)
		la := bistgen.NewLFSRWithTaps(w, tapsA, 0x2D)
		lb := bistgen.NewLFSRWithTaps(w, tapsB, 0x0B)
		for i := range vec {
			vec[i] = [2]uint64{la.Next(), lb.Next()}
		}
		golden := make([]uint64, len(vec))
		for i, v := range vec {
			sim.SetBus(cone.A, v[0])
			sim.SetBus(cone.B, v[1])
			sim.Eval()
			golden[i] = sim.ReadBus(cone.Out)
		}
		detected := 0
		var missed []gates.StuckAt
		for _, f := range faults {
			ff := f
			sim.SetFault(&ff)
			hit := false
			for i, v := range vec {
				sim.SetBus(cone.A, v[0])
				sim.SetBus(cone.B, v[1])
				sim.Eval()
				if sim.ReadBus(cone.Out) != golden[i] {
					hit = true
					break
				}
			}
			sim.SetFault(nil)
			if hit {
				detected++
			} else {
				missed = append(missed, f)
			}
		}
		rep, err := atpg.TopUp(cone, missed, 0)
		if err != nil {
			return err
		}
		raw := float64(detected) / float64(len(faults)) * 100
		t.AddRowf(u.name, len(faults), detected, rep.Detected, rep.Redundant,
			fmt.Sprintf("%.1f%%", raw),
			fmt.Sprintf("%.1f%%", rep.Efficiency(detected)))
	}
	fmt.Println(t)
	fmt.Println("redundant = proven untestable by exhaustive operand scan; fault efficiency")
	fmt.Println("counts only testable faults, the standard metric for resistant structures.")
	fmt.Println()
	return nil
}

// widthTable is an extension: Table I's comparison re-run at 4, 8 and 16
// bits. BIST register overhead is linear in width while multiplier area
// is quadratic, so the relative overhead shrinks as the data path widens
// — but the testable/traditional ordering is width-invariant.
func widthTable() error {
	t := report.NewTable("Width sweep — BIST overhead vs datapath width (extension)",
		"DFG", "w=4 trad/ours", "w=8 trad/ours", "w=16 trad/ours")
	widths := []int{4, 8, 16}
	// One batch over the full design × width × mode cross product.
	var jobs []bistpath.Job
	for _, b := range benchdata.All() {
		d, mods, err := bistpath.Benchmark(b.Name)
		if err != nil {
			return err
		}
		for _, w := range widths {
			for _, mode := range []bistpath.Mode{bistpath.Testable, bistpath.TraditionalHLS} {
				cfg := bistpath.DefaultConfig()
				cfg.Width = w
				cfg.Mode = mode
				jobs = append(jobs, bistpath.Job{
					Name:    fmt.Sprintf("%s/w%d/%s", b.Name, w, mode),
					DFG:     d,
					Modules: mods,
					Config:  cfg,
				})
			}
		}
	}
	results, err := runBatch(jobs)
	if err != nil {
		return err
	}
	i := 0
	for _, b := range benchdata.All() {
		row := []interface{}{b.Name}
		for _, w := range widths {
			test, trad := results[i], results[i+1]
			i += 2
			if test.OverheadPct >= trad.OverheadPct {
				return fmt.Errorf("width %d: ordering violated on %s", w, b.Name)
			}
			row = append(row, fmt.Sprintf("%.1f%% / %.1f%%", trad.OverheadPct, test.OverheadPct))
		}
		t.AddRowf(row...)
	}
	fmt.Println(t)
	return nil
}

// optimalityTable exhaustively evaluates the BIST area of EVERY
// minimum-register binding of each benchmark (the spaces are small
// enough: 36..8640 bindings) and places the paper's heuristic within
// that spectrum — the strongest possible grading of the register binder.
func optimalityTable() error {
	t := report.NewTable("Binder optimality — exhaustive sweep of all minimum bindings",
		"DFG", "#bindings", "best area", "worst area", "heuristic", "gap", "percentile")
	for _, b := range benchdata.All() {
		mb, err := b.Modules()
		if err != nil {
			return err
		}
		parts, complete, err := regassign.EnumerateMinimumBindings(b.Graph, 0)
		if err != nil {
			return err
		}
		if !complete {
			return fmt.Errorf("enumeration truncated for %s", b.Name)
		}
		cost := func(rb *regassign.Binding) (int, error) {
			sh := regassign.NewSharing(b.Graph, mb)
			ib, err := interconnect.Bind(b.Graph, mb, rb, sh)
			if err != nil {
				return 0, err
			}
			dp, err := datapath.Build(b.Graph, mb, rb, ib, 8)
			if err != nil {
				return 0, err
			}
			plan, err := bist.Optimize(dp, bist.DefaultOptions(8))
			if err != nil {
				return 0, err
			}
			return plan.ExtraArea, nil
		}
		best, worst := -1, -1
		var costs []int
		for _, part := range parts {
			rb, err := regassign.BindingFromPartition(b.Graph, part)
			if err != nil {
				return err
			}
			c, err := cost(rb)
			if err != nil {
				return err
			}
			costs = append(costs, c)
			if best < 0 || c < best {
				best = c
			}
			if c > worst {
				worst = c
			}
		}
		hb, err := regassign.Bind(b.Graph, mb, regassign.DefaultOptions())
		if err != nil {
			return err
		}
		hc := 0
		if hb.NumRegisters() == len(parts[0]) {
			hc, err = cost(hb)
			if err != nil {
				return err
			}
		}
		atOrBelow := 0
		for _, c := range costs {
			if c >= hc {
				atOrBelow++
			}
		}
		t.AddRowf(b.Name, len(parts), best, worst, hc, hc-best,
			fmt.Sprintf("beats %.1f%%", float64(atOrBelow)/float64(len(costs))*100))
	}
	fmt.Println(t)
	return nil
}

// scanTable is an extension: the area/test-time economics of the
// synthesized BIST plans against a full-scan alternative at the same
// pattern budget (the tradeoff the paper's introduction appeals to).
func scanTable() error {
	t := report.NewTable("Scan vs BIST — area/test-time tradeoff at 250 patterns (extension)",
		"DFG", "scan area", "BIST area", "area ratio", "scan cycles", "BIST cycles", "BIST speedup")
	for _, b := range benchdata.All() {
		mb, err := b.Modules()
		if err != nil {
			return err
		}
		rb, err := regassign.Bind(b.Graph, mb, regassign.DefaultOptions())
		if err != nil {
			return err
		}
		sh := regassign.NewSharing(b.Graph, mb)
		ib, err := interconnect.Bind(b.Graph, mb, rb, sh)
		if err != nil {
			return err
		}
		dp, err := datapath.Build(b.Graph, mb, rb, ib, 8)
		if err != nil {
			return err
		}
		plan, err := bist.Optimize(dp, bist.DefaultOptions(8))
		if err != nil {
			return err
		}
		c := scan.Compare(dp, plan, area.Default(8), 250)
		t.AddRowf(b.Name, c.Scan.ExtraArea, c.BISTExtraArea,
			fmt.Sprintf("%.1fx", c.AreaRatio()),
			c.Scan.CyclesScan, c.BISTCycles, fmt.Sprintf("%.0fx", c.SpeedUp()))
	}
	fmt.Println(t)
	return nil
}

// scaleTable is an extension: the two flows on DSP filter benchmarks far
// larger than the paper's five examples, showing that the sharing and
// CBILBO-avoidance gains persist at scale.
func scaleTable() error {
	t := report.NewTable("Scale study — DSP filters (extension beyond the paper)",
		"design", "ops", "steps", "#reg", "%BIST trad", "%BIST ours", "%reduction", "CBILBO t/o")
	builds := []struct {
		make func() (*benchdata.Benchmark, error)
	}{
		{func() (*benchdata.Benchmark, error) { return benchdata.FIR(8, 2, 2) }},
		{func() (*benchdata.Benchmark, error) { return benchdata.FIR(16, 3, 3) }},
		{func() (*benchdata.Benchmark, error) { return benchdata.FIR(32, 4, 4) }},
		{func() (*benchdata.Benchmark, error) { return benchdata.Biquad(2, 2, 2) }},
		{func() (*benchdata.Benchmark, error) { return benchdata.Biquad(4, 3, 3) }},
		{func() (*benchdata.Benchmark, error) { return benchdata.Lattice(4, 2, 2) }},
		{func() (*benchdata.Benchmark, error) { return benchdata.Lattice(8, 3, 3) }},
	}
	for _, bd := range builds {
		bench, err := bd.make()
		if err != nil {
			return err
		}
		d, err := bistpath.ParseDFG(bench.Graph.Text())
		if err != nil {
			return err
		}
		// Re-mark port inputs lost by the text round trip.
		var ports []string
		for _, v := range bench.Graph.Vars() {
			if v.IsPort {
				ports = append(ports, v.Name)
			}
		}
		if err := d.MarkPortInput(ports...); err != nil {
			return err
		}
		cfg := bistpath.DefaultConfig()
		test, err := d.Synthesize(bench.OpModule, cfg)
		if err != nil {
			return err
		}
		cfg.Mode = bistpath.TraditionalHLS
		trad, err := d.Synthesize(bench.OpModule, cfg)
		if err != nil {
			return err
		}
		red := (trad.OverheadPct - test.OverheadPct) / trad.OverheadPct * 100
		t.AddRowf(bench.Name, len(bench.Graph.Ops()), bench.Graph.NumSteps(), test.NumRegisters(),
			trad.OverheadPct, test.OverheadPct, red,
			fmt.Sprintf("%d/%d", trad.StyleCounts["CBILBO"], test.StyleCounts["CBILBO"]))
	}
	fmt.Println(t)
	return nil
}

// gateLevelTable is an extension beyond the paper's evaluation: the
// synthesized BIST plans are fault-simulated on real gate-level netlists
// (the paper's BITS system measured overhead in gate counts; here the
// netlists themselves are built and every module's internal stuck-at
// faults are graded against the BIST signatures).
func gateLevelTable() error {
	t := report.NewTable("Gate-level extension — literal gate counts and BIST stuck-at coverage",
		"DFG", "gates", "DFFs", "func", "muxes", "regcells", "gate faults", "detected", "coverage", "COP predicted")
	for _, name := range []string{"ex1", "ex2", "tseng1", "tseng2", "paulin"} {
		d, mods, err := bistpath.Benchmark(name)
		if err != nil {
			return err
		}
		res, err := d.Synthesize(mods, bistpath.DefaultConfig())
		if err != nil {
			return err
		}
		rep, err := res.GateLevel(250, 0xB157)
		if err != nil {
			return err
		}
		f, det := rep.Totals()
		pred, weight := 0.0, 0
		for _, m := range rep.PerModule {
			pred += m.Predicted * float64(m.Faults)
			weight += m.Faults
		}
		t.AddRowf(name, rep.TotalGates, rep.DFFs, rep.Functional,
			rep.PortMuxes+rep.RegMuxes, rep.RegCells, f, det,
			fmt.Sprintf("%.1f%%", rep.Pct()), fmt.Sprintf("%.1f%%", pred/float64(weight)))
	}
	fmt.Println(t)
	fmt.Println("note: the restoring divider (ex2, tseng1/2) is classically random-pattern")
	fmt.Println("resistant; its coverage sits at the intrinsic ceiling for 250 patterns.")
	fmt.Println()
	return nil
}

// batchWorkers is the -j flag: how many synthesis jobs the table sweeps
// run concurrently (0 = GOMAXPROCS).
var batchWorkers int

// batchCache is the -cache/-cache-dir flags: a result cache shared by
// every batch this process runs. Tables repeatedly re-synthesize the same
// benchmark/config pairs, so a shared cache collapses those to one run
// each; nil (the default) disables caching.
var batchCache *bistpath.Cache

// runBatch fans jobs out over the shared worker pool and unwraps the
// per-job errors; results come back in job order.
func runBatch(jobs []bistpath.Job) ([]*bistpath.Result, error) {
	out := make([]*bistpath.Result, 0, len(jobs))
	for _, br := range bistpath.SynthesizeAll(context.Background(), jobs, bistpath.BatchOptions{Workers: batchWorkers, Cache: batchCache}) {
		if br.Err != nil {
			return nil, fmt.Errorf("%s: %w", br.Name, br.Err)
		}
		out = append(out, br.Result)
	}
	return out, nil
}

// bothFlows builds the (testable, traditional) job pair for one design.
func bothFlows(name string) ([]bistpath.Job, error) {
	d, mods, err := bistpath.Benchmark(name)
	if err != nil {
		return nil, err
	}
	cfgT := bistpath.DefaultConfig()
	cfgR := bistpath.DefaultConfig()
	cfgR.Mode = bistpath.TraditionalHLS
	return []bistpath.Job{
		{Name: name + "/testable", DFG: d, Modules: mods, Config: cfgT},
		{Name: name + "/traditional", DFG: d, Modules: mods, Config: cfgR},
	}, nil
}

// synthAllBoth runs both flows for every benchmark on the worker pool,
// returning per-design (testable, traditional) pairs keyed by name.
func synthAllBoth() (map[string][2]*bistpath.Result, error) {
	var jobs []bistpath.Job
	var names []string
	for _, b := range benchdata.All() {
		pair, err := bothFlows(b.Name)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, pair...)
		names = append(names, b.Name)
	}
	results, err := runBatch(jobs)
	if err != nil {
		return nil, err
	}
	out := make(map[string][2]*bistpath.Result, len(names))
	for i, name := range names {
		out[name] = [2]*bistpath.Result{results[2*i], results[2*i+1]}
	}
	return out, nil
}

// synthBoth runs both flows on one benchmark.
func synthBoth(name string) (testable, traditional *bistpath.Result, err error) {
	jobs, err := bothFlows(name)
	if err != nil {
		return nil, nil, err
	}
	results, err := runBatch(jobs)
	if err != nil {
		return nil, nil, err
	}
	return results[0], results[1], nil
}

// paperTableI holds the paper's Table I values: trad %, testable %,
// reduction %, plus register counts.
var paperTableI = map[string]struct {
	trad, test, red float64
	regs            int
}{
	"ex1":    {18.14, 10.67, 30.00, 3},
	"ex2":    {11.17, 7.56, 32.31, 5},
	"tseng1": {17.65, 11.34, 35.75, 5},
	"tseng2": {10.04, 5.66, 46.62, 5},
	"paulin": {16.34, 9.34, 42.84, 4},
}

func tableI() error {
	t := report.NewTable("Table I — design comparisons with BIST area overhead",
		"DFG", "modules", "#reg", "mux t/o", "%BIST trad", "%BIST ours", "%reduction", "paper t/o/red")
	pairs, err := synthAllBoth()
	if err != nil {
		return err
	}
	for _, b := range benchdata.All() {
		test, trad := pairs[b.Name][0], pairs[b.Name][1]
		red := (trad.OverheadPct - test.OverheadPct) / trad.OverheadPct * 100
		p := paperTableI[b.Name]
		t.AddRowf(b.Name, b.ModuleInventory, test.NumRegisters(),
			fmt.Sprintf("%d/%d", trad.MuxCount, test.MuxCount),
			trad.OverheadPct, test.OverheadPct, red,
			fmt.Sprintf("%.1f/%.1f/%.1f", p.trad, p.test, p.red))
	}
	fmt.Println(t)
	return nil
}

// paperTableII holds the paper's minimal-area BIST solutions.
var paperTableII = map[string][2]string{
	"ex1":    {"2 CBILBO, 1 TPG", "1 CBILBO, 1 TPG"},
	"ex2":    {"2 CBILBO, 1 TPG/SA, 2 TPG", "1 CBILBO, 2 TPG/SA, 1 TPG"},
	"tseng1": {"2 CBILBO, 3 TPG/SA", "1 CBILBO, 3 TPG/SA, 1 TPG"},
	"tseng2": {"2 CBILBO, 1 TPG/SA, 1 TPG", "2 TPG/SA, 1 TPG"},
	"paulin": {"3 CBILBO, 1 TPG/SA", "1 CBILBO, 2 TPG, 1 SA"},
}

func tableII() error {
	t := report.NewTable("Table II — minimal area BIST solutions",
		"DFG", "flow", "measured", "paper")
	pairs, err := synthAllBoth()
	if err != nil {
		return err
	}
	for _, b := range benchdata.All() {
		test, trad := pairs[b.Name][0], pairs[b.Name][1]
		p := paperTableII[b.Name]
		t.AddRow(b.Name, "traditional", trad.StyleSummary(), p[0])
		t.AddRow("", "testable", test.StyleSummary(), p[1])
	}
	fmt.Println(t)
	return nil
}

func tableIII() error {
	b := benchdata.Paulin()
	g := b.Graph
	mb, err := b.Modules()
	if err != nil {
		return err
	}
	t := report.NewTable("Table III — design comparison for the Paulin example",
		"system", "modules", "#reg", "#TPG", "#SA", "#BILBO", "#CBILBO", "paper (reg/T/S/B/C)")

	ral, err := baselines.RALLOC(g, mb)
	if err != nil {
		return err
	}
	addBaseline(t, "RALLOC", b.ModuleInventory, ral, "5/0/0/4/1")

	smb, err := modassign.FromMap(g, baselines.PaulinSyntestModules())
	if err != nil {
		return err
	}
	syn, err := baselines.SYNTEST(g, smb)
	if err != nil {
		return err
	}
	addBaseline(t, "SYNTEST", "(+*-), (>*-), (*+)", syn, "5/4/1/0/0")

	test, _, err := synthBoth("paulin")
	if err != nil {
		return err
	}
	sc := test.StyleCounts
	t.AddRowf("Ours", b.ModuleInventory, test.NumRegisters(),
		sc["TPG"], sc["SA"], sc["TPG/SA"], sc["CBILBO"], "4/2/1/0/1")
	fmt.Println(t)
	return nil
}

func addBaseline(t *report.Table, name, mods string, r *baselines.Result, paper string) {
	c := r.StyleCount()
	t.AddRowf(name, mods, r.Binding.NumRegisters(),
		c[area.TPG], c[area.SA], c[area.BILBO], c[area.CBILBO], paper)
}

// fig1 reproduces the generic I-path configuration of Fig. 1: module M1
// with a multiplexed left port (R1, R2) and a dedicated right port (R3).
func fig1() error {
	fmt.Println("Figure 1 — simple I-paths of a generic configuration")
	d := bistpath.NewDFG("fig1")
	if err := d.AddInput("u", "v", "w"); err != nil {
		return err
	}
	d.AddOp("op1", "+", 1, "x", "u", "w")
	d.AddOp("op2", "+", 2, "y", "v", "w")
	d.MarkOutput("x", "y")
	res, err := d.Synthesize(map[string]string{"op1": "M1", "op2": "M1"}, bistpath.DefaultConfig())
	if err != nil {
		return err
	}
	for _, m := range res.Modules {
		fmt.Printf("  module %s embedding: %s\n", m.Name, m.Embedding)
	}
	fmt.Print(indent(res.NetlistText(), "  "))
	fmt.Println()
	return nil
}

func fig2() error {
	fmt.Println("Figure 2 — the scheduled DFG of the running example (ex1)")
	b := benchdata.Ex1()
	fmt.Print(indent(b.Graph.Text(), "  "))
	lts, err := b.Graph.Lifetimes()
	if err != nil {
		return err
	}
	var names []string
	for n := range lts {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Print("  lifetimes: ")
	for i, n := range names {
		if i > 0 {
			fmt.Print("  ")
		}
		fmt.Print(lts[n])
	}
	fmt.Println()
	fmt.Println()
	return nil
}

// fig3 demonstrates I-path sharing: registers that serve as common heads
// or tails for several modules of ex1's testable data path.
func fig3() error {
	fmt.Println("Figure 3 — sharing of I-paths (common heads and tails, ex1 testable)")
	b := benchdata.Ex1()
	mb, err := b.Modules()
	if err != nil {
		return err
	}
	rb, err := regassign.Bind(b.Graph, mb, regassign.DefaultOptions())
	if err != nil {
		return err
	}
	sh := regassign.NewSharing(b.Graph, mb)
	for _, r := range rb.Registers {
		var heads, tails []string
		for _, m := range sh.Modules {
			for _, v := range r.Vars {
				if sh.In[m][v] {
					heads = append(heads, m)
					break
				}
			}
			for _, v := range r.Vars {
				if sh.Out[m][v] {
					tails = append(tails, m)
					break
				}
			}
		}
		fmt.Printf("  %s {%s}: head for {%s}, tail for {%s}, SD=%d\n",
			r.Name, strings.Join(r.Vars, ","), strings.Join(heads, ","),
			strings.Join(tails, ","), sh.SDReg(r.Vars))
	}
	fmt.Println()
	return nil
}

func fig4() error {
	fmt.Println("Figure 4 — variable conflict graph of ex1 with SD and MCS values")
	b := benchdata.Ex1()
	mb, err := b.Modules()
	if err != nil {
		return err
	}
	sh := regassign.NewSharing(b.Graph, mb)
	mcs, err := b.Graph.MaxCliqueSize()
	if err != nil {
		return err
	}
	cg, err := regassign.ConflictGraph(b.Graph)
	if err != nil {
		return err
	}
	t := report.NewTable("", "variable", "SD", "MCS", "conflicts with")
	for _, v := range b.Graph.AllocVars() {
		t.AddRowf(v, sh.SDVar(v), mcs[v], strings.Join(cg.Neighbors(v), ","))
	}
	fmt.Print(indent(t.String(), "  "))
	fmt.Println()
	return nil
}

func fig5() error {
	fmt.Println("Figure 5 — data paths synthesized from ex1 (a: testable, b: traditional)")
	test, trad, err := synthBoth("ex1")
	if err != nil {
		return err
	}
	fmt.Printf("  (a) testable — minimal BIST solution: %s (overhead %.2f%%)\n", test.StyleSummary(), test.OverheadPct)
	fmt.Print(indent(test.NetlistText(), "      "))
	fmt.Printf("  (b) traditional — minimal BIST solution: %s (overhead %.2f%%)\n", trad.StyleSummary(), trad.OverheadPct)
	fmt.Print(indent(trad.NetlistText(), "      "))
	fmt.Println()
	return nil
}

func fig6() error {
	fmt.Println("Figure 6 — effect of register merges on interconnect")
	// A small graph exhibiting all five merge situations.
	g := dfg.New("fig6")
	if err := g.AddInput("a", "b", "c", "d", "e", "f"); err != nil {
		return err
	}
	g.AddOp("o1", dfg.Add, 1, "s", "a", "b") // M1
	g.AddOp("o2", dfg.Mul, 1, "t", "c", "d") // M2
	g.AddOp("o3", dfg.Add, 2, "u", "s", "e") // M1
	g.AddOp("o4", dfg.Mul, 2, "v", "t", "f") // M2
	g.AddOp("o5", dfg.Add, 3, "w", "u", "v") // M1
	g.MarkOutput("w")
	if err := g.Validate(); err != nil {
		return err
	}
	mb, err := modassign.FromMap(g, map[string]string{"o1": "M1", "o3": "M1", "o5": "M1", "o2": "M2", "o4": "M2"})
	if err != nil {
		return err
	}
	t := report.NewTable("", "merge", "case", "new mux inputs", "new fanouts", "self-adjacent")
	// s+t: distinct sources (M1, M2) and destinations (case 1);
	// e+w: w is produced by M1 which consumes e (case 2, chained);
	// a+b: both feed o1 on M1 (case 3, common destination);
	// s+w: both produced by M1, different destinations (case 4);
	// s+u: produced by and feeding M1 (case 5, common source and dest).
	pairs := [][2]string{{"s", "t"}, {"e", "w"}, {"a", "b"}, {"s", "w"}, {"s", "u"}}
	for _, p := range pairs {
		eff := interconnect.ClassifyMerge(g, mb, p[0], p[1])
		t.AddRowf(p[0]+"+"+p[1], eff.Case.String(), eff.NewRegisterSources, eff.NewDestinations, fmt.Sprint(eff.SelfAdjacent))
	}
	fmt.Print(indent(t.String(), "  "))
	fmt.Println()
	return nil
}

func runAblation() error {
	const trials = 30
	type cfgRow struct {
		name string
		cfg  bistpath.Config
	}
	mk := func(mut func(*bistpath.Config)) bistpath.Config {
		c := bistpath.DefaultConfig()
		mut(&c)
		return c
	}
	rows := []cfgRow{
		{"full (paper)", mk(func(c *bistpath.Config) {})},
		{"no SD guidance", mk(func(c *bistpath.Config) { c.Sharing = false; c.CaseOverrides = false })},
		{"no case overrides", mk(func(c *bistpath.Config) { c.CaseOverrides = false })},
		{"no Lemma-2 avoidance", mk(func(c *bistpath.Config) { c.AvoidCBILBO = false })},
		{"unweighted interconnect", mk(func(c *bistpath.Config) { c.WeightedInterconnect = false })},
		{"traditional", mk(func(c *bistpath.Config) { c.Mode = bistpath.TraditionalHLS })},
	}
	bt := report.NewTable("Ablation — the five paper benchmarks",
		"configuration", "mean %BIST", "total CBILBOs", "total BIST regs")
	for _, row := range rows {
		var ovh float64
		cb, br := 0, 0
		for _, b := range benchdata.All() {
			d, mods, err := bistpath.Benchmark(b.Name)
			if err != nil {
				return err
			}
			res, err := d.Synthesize(mods, row.cfg)
			if err != nil {
				return err
			}
			ovh += res.OverheadPct
			cb += res.StyleCounts["CBILBO"]
			br += res.NumBISTRegisters()
		}
		bt.AddRowf(row.name, ovh/5, cb, br)
	}
	fmt.Println(bt)

	t := report.NewTable(fmt.Sprintf("Ablation — mean over %d random DFGs", trials),
		"configuration", "mean %BIST", "mean CBILBOs", "mean regs")
	for _, row := range rows {
		var ovh, cb, regs float64
		n := 0
		for seed := int64(1000); seed < 1000+trials; seed++ {
			g, _, err := benchdata.RandomWithModules(benchdata.DefaultRandomConfig(seed))
			if err != nil {
				return err
			}
			d, err := bistpath.ParseDFG(g.Text())
			if err != nil {
				return err
			}
			res, err := d.SynthesizeAuto(row.cfg)
			if err != nil {
				return err
			}
			ovh += res.OverheadPct
			cb += float64(res.StyleCounts["CBILBO"])
			regs += float64(res.NumRegisters())
			n++
		}
		t.AddRowf(row.name, ovh/float64(n), cb/float64(n), regs/float64(n))
	}
	fmt.Println(t)
	return nil
}

func indent(s, pre string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = pre + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}
