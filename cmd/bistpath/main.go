// Command bistpath synthesizes low-BIST-overhead RTL data paths from
// scheduled data flow graphs (Parulkar/Gupta/Breuer, DAC'95).
//
// Usage:
//
//	bistpath synth   -bench ex1 | -dfg file.dfg [-mode testable|traditional] [-width 8] [-netlist] [-dot]
//	bistpath sim     -bench ex1 | -dfg file.dfg -inputs a=1,b=2,...
//	bistpath cover   -bench ex1 | -dfg file.dfg [-patterns 255]
//	bistpath list
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"bistpath"
	"bistpath/internal/dfg"
	"bistpath/internal/sched"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "synth":
		err = cmdSynth(os.Args[2:])
	case "sim":
		err = cmdSim(os.Args[2:])
	case "cover":
		err = cmdCover(os.Args[2:])
	case "emit":
		err = cmdEmit(os.Args[2:])
	case "gatesim":
		err = cmdGatesim(os.Args[2:])
	case "schedule":
		err = cmdSchedule(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "list":
		for _, n := range bistpath.BenchmarkNames() {
			fmt.Println(n)
		}
	case "-h", "--help", "help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bistpath:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  bistpath synth -bench <name>[,<name>...]|all | -dfg <file> [-mode testable|traditional] [-width N] [-j N]
                 [-objective area|weighted|pareto] [-weights A,T,P]
                 [-search exact|auto|stochastic] [-seed N] [-budget DUR] [-generations N]
                 [-cache] [-cache-dir DIR] [-stats] [-json] [-netlist] [-dot]
  bistpath sim   -bench <name> | -dfg <file> -inputs a=1,b=2,...
  bistpath cover -bench <name> | -dfg <file> [-patterns N] [-width N]
  bistpath emit  -bench <name> | -dfg <file> [-format rtl|gates] [-module NAME]
  bistpath gatesim -bench <name> | -dfg <file> [-patterns N]
  bistpath schedule -dfg <file> [-latency N]   (compare ASAP/ALAP/list/force-directed)
  bistpath verify -bench <name>[,<name>...]|all | -dfg <file> [-mode testable|traditional] [-width N]
                  [-vectors N] [-seed N] [-workers 1,2,8] [-fast] [-sweep N] [-json]
  bistpath list`)
}

// loadDesign resolves -bench/-dfg flags into a DFG and module map (nil
// map = automatic module binding).
func loadDesign(bench, dfgFile string) (*bistpath.DFG, map[string]string, error) {
	switch {
	case bench != "" && dfgFile != "":
		return nil, nil, fmt.Errorf("use either -bench or -dfg, not both")
	case bench != "":
		return bistpath.Benchmark(bench)
	case dfgFile != "":
		data, err := os.ReadFile(dfgFile)
		if err != nil {
			return nil, nil, err
		}
		d, err := bistpath.ParseDFG(string(data))
		return d, nil, err
	default:
		return nil, nil, fmt.Errorf("need -bench <name> or -dfg <file>")
	}
}

func synthesize(d *bistpath.DFG, mods map[string]string, cfg bistpath.Config) (*bistpath.Result, error) {
	if mods != nil {
		return d.Synthesize(mods, cfg)
	}
	return d.SynthesizeAuto(cfg)
}

func cmdSynth(args []string) error {
	fs := flag.NewFlagSet("synth", flag.ExitOnError)
	bench := fs.String("bench", "", "built-in benchmark name, comma-separated list, or \"all\"")
	dfgFile := fs.String("dfg", "", "DFG file")
	mode := fs.String("mode", "testable", "testable or traditional")
	width := fs.Int("width", 8, "datapath bit width")
	jobs := fs.Int("j", 0, "parallel synthesis workers for multi-design runs (0 = GOMAXPROCS)")
	netlist := fs.Bool("netlist", false, "print the netlist and control program")
	dot := fs.Bool("dot", false, "print a Graphviz rendering of the data path")
	traceFlag := fs.Bool("trace", false, "explain every register-binding decision")
	gantt := fs.Bool("gantt", false, "print the register/module occupancy chart")
	statsFlag := fs.Bool("stats", false, "print per-phase times and search counters after each report")
	jsonFlag := fs.Bool("json", false, "emit the machine-readable JSON result (an array for multi-design runs; includes stats)")
	cacheFlag := fs.Bool("cache", false, "serve duplicate designs from an in-memory result cache")
	cacheDir := fs.String("cache-dir", "", "also persist cached results under this directory (implies -cache)")
	objectiveFlag := fs.String("objective", "", "optimization objective: area (default), weighted, or pareto")
	weightsFlag := fs.String("weights", "", "weighted objective coefficients as area,time,power (e.g. 1,50,2)")
	searchFlag := fs.String("search", "", "BIST search strategy: exact (default), auto, or stochastic")
	seedFlag := fs.Int64("seed", 0, "stochastic search seed (0 means 1; exact search ignores it)")
	budgetFlag := fs.Duration("budget", 0, "stochastic search wall-clock budget, e.g. 2s (truncated runs bypass the cache)")
	generationsFlag := fs.Int("generations", 0, "stochastic search generation cap (0 = default)")
	fs.Parse(args)

	cfg := bistpath.DefaultConfig()
	cfg.Width = *width
	switch *mode {
	case "testable":
	case "traditional":
		cfg.Mode = bistpath.TraditionalHLS
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	cfg.Trace = *traceFlag
	obj, err := bistpath.ParseObjective(*objectiveFlag)
	if err != nil {
		return err
	}
	cfg.Objective = obj
	if *weightsFlag != "" {
		if obj != bistpath.WeightedSum {
			return fmt.Errorf("-weights applies only to -objective weighted")
		}
		w, err := parseWeights(*weightsFlag)
		if err != nil {
			return err
		}
		cfg.Weights = w
	}
	search, err := bistpath.ParseSearch(*searchFlag)
	if err != nil {
		return err
	}
	cfg.Search = search
	cfg.Seed = *seedFlag
	cfg.TimeBudget = *budgetFlag
	cfg.MaxGenerations = *generationsFlag

	var cc *bistpath.Cache
	if *cacheFlag || *cacheDir != "" {
		var err error
		cc, err = bistpath.NewCache(bistpath.CacheOptions{Dir: *cacheDir})
		if err != nil {
			return err
		}
		cfg.Cache = cc
		defer func() { fmt.Fprintln(os.Stderr, cc.Stats()) }()
	}

	// A benchmark list (or "all") fans the designs out over the batch
	// worker pool; output order is the list order regardless of -j.
	if names := benchList(*bench); len(names) > 1 {
		if *dfgFile != "" {
			return fmt.Errorf("use either -bench or -dfg, not both")
		}
		var batch []bistpath.Job
		for _, name := range names {
			d, mods, err := bistpath.Benchmark(name)
			if err != nil {
				return err
			}
			batch = append(batch, bistpath.Job{Name: name, DFG: d, Modules: mods, Config: cfg})
		}
		var docs []json.RawMessage
		for i, br := range bistpath.SynthesizeAll(context.Background(), batch, bistpath.BatchOptions{Workers: *jobs}) {
			if br.Err != nil {
				return fmt.Errorf("%s: %w", br.Name, br.Err)
			}
			if *jsonFlag {
				doc, err := br.Result.JSON()
				if err != nil {
					return err
				}
				docs = append(docs, doc)
				continue
			}
			if i > 0 {
				fmt.Println()
			}
			printResult(br.Result)
			if *statsFlag {
				fmt.Print(br.Result.Stats)
			}
		}
		if *jsonFlag {
			out, err := json.MarshalIndent(docs, "", "  ")
			if err != nil {
				return err
			}
			fmt.Println(string(out))
		}
		return nil
	}

	d, mods, err := loadDesign(*bench, *dfgFile)
	if err != nil {
		return err
	}
	res, err := synthesize(d, mods, cfg)
	if err != nil {
		return err
	}
	if *jsonFlag {
		doc, err := res.JSON()
		if err != nil {
			return err
		}
		fmt.Println(string(doc))
		return nil
	}
	printResult(res)
	if *statsFlag {
		fmt.Print(res.Stats)
	}
	if *traceFlag {
		fmt.Println("  binding decisions:")
		for i, note := range res.BindingTrace {
			fmt.Printf("    %2d. %s\n", i+1, note)
		}
	}
	if *gantt {
		chart, err := res.OccupancyChart()
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(chart)
	}
	if *netlist {
		fmt.Println()
		fmt.Print(res.NetlistText())
	}
	if *dot {
		fmt.Println()
		fmt.Print(res.DatapathDot())
	}
	return nil
}

// parseWeights parses the -weights argument: three comma-separated
// non-negative integers for area, test time and peak power.
func parseWeights(arg string) (bistpath.Weights, error) {
	parts := strings.Split(arg, ",")
	if len(parts) != 3 {
		return bistpath.Weights{}, fmt.Errorf("-weights needs area,time,power (got %q)", arg)
	}
	vals := make([]int, 3)
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return bistpath.Weights{}, fmt.Errorf("bad -weights value %q: %v", p, err)
		}
		vals[i] = n
	}
	return bistpath.Weights{Area: vals[0], TestTime: vals[1], PeakPower: vals[2]}, nil
}

// benchList expands the -bench argument into a list of benchmark names:
// "all" selects every built-in design, commas separate explicit names.
func benchList(arg string) []string {
	if arg == "all" {
		return bistpath.BenchmarkNames()
	}
	if !strings.Contains(arg, ",") {
		return nil
	}
	var names []string
	for _, n := range strings.Split(arg, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names
}

func printResult(res *bistpath.Result) {
	fmt.Print(res.ReportText())
}

func cmdSim(args []string) error {
	fs := flag.NewFlagSet("sim", flag.ExitOnError)
	bench := fs.String("bench", "", "built-in benchmark name")
	dfgFile := fs.String("dfg", "", "DFG file")
	width := fs.Int("width", 8, "datapath bit width")
	inputs := fs.String("inputs", "", "comma-separated name=value input assignments")
	vcdPath := fs.String("vcd", "", "write a gate-level VCD waveform of the run to this file")
	fs.Parse(args)

	d, mods, err := loadDesign(*bench, *dfgFile)
	if err != nil {
		return err
	}
	cfg := bistpath.DefaultConfig()
	cfg.Width = *width
	res, err := synthesize(d, mods, cfg)
	if err != nil {
		return err
	}
	in := make(map[string]uint64)
	if *inputs != "" {
		for _, kv := range strings.Split(*inputs, ",") {
			parts := strings.SplitN(kv, "=", 2)
			if len(parts) != 2 {
				return fmt.Errorf("bad input assignment %q", kv)
			}
			v, err := strconv.ParseUint(parts[1], 0, 64)
			if err != nil {
				return fmt.Errorf("bad value in %q: %v", kv, err)
			}
			in[parts[0]] = v
		}
	}
	var out map[string]uint64
	if *vcdPath != "" {
		f, err := os.Create(*vcdPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out, err = res.DumpVCD(in, f)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *vcdPath)
	} else {
		var err error
		out, err = res.Simulate(in)
		if err != nil {
			return err
		}
	}
	var names []string
	for n := range out {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("%s = %d\n", n, out[n])
	}
	return nil
}

func cmdCover(args []string) error {
	fs := flag.NewFlagSet("cover", flag.ExitOnError)
	bench := fs.String("bench", "", "built-in benchmark name")
	dfgFile := fs.String("dfg", "", "DFG file")
	width := fs.Int("width", 8, "datapath bit width")
	patterns := fs.Int("patterns", 255, "pseudo-random patterns per session")
	fs.Parse(args)

	d, mods, err := loadDesign(*bench, *dfgFile)
	if err != nil {
		return err
	}
	cfg := bistpath.DefaultConfig()
	cfg.Width = *width
	res, err := synthesize(d, mods, cfg)
	if err != nil {
		return err
	}
	rep, err := res.FaultCoverage(*patterns, 0xB157)
	if err != nil {
		return err
	}
	for _, mc := range rep.PerModule {
		fmt.Printf("%-6s %4d/%4d faults detected (%.2f%%)\n", mc.Module, mc.Detected, mc.Faults, mc.Pct())
	}
	f, det := rep.Totals()
	fmt.Printf("total  %4d/%4d (%.2f%%) with %d patterns\n", det, f, rep.Pct(), rep.Patterns)
	return nil
}

func cmdEmit(args []string) error {
	fs := flag.NewFlagSet("emit", flag.ExitOnError)
	bench := fs.String("bench", "", "built-in benchmark name")
	dfgFile := fs.String("dfg", "", "DFG file")
	width := fs.Int("width", 8, "datapath bit width")
	format := fs.String("format", "rtl", "rtl (behavioral), gates (structural, with BIST registers) or tb (self-checking testbench; needs -inputs)")
	module := fs.String("module", "", "Verilog module name (gates format)")
	controller := fs.Bool("controller", false, "gates format: generate the on-chip microcode controller (self-timed netlist)")
	inputs := fs.String("inputs", "", "tb format: comma-separated name=value input assignments")
	fs.Parse(args)

	d, mods, err := loadDesign(*bench, *dfgFile)
	if err != nil {
		return err
	}
	cfg := bistpath.DefaultConfig()
	cfg.Width = *width
	res, err := synthesize(d, mods, cfg)
	if err != nil {
		return err
	}
	switch *format {
	case "rtl":
		fmt.Print(res.VerilogRTL())
	case "tb":
		in := make(map[string]uint64)
		if *inputs != "" {
			for _, kv := range strings.Split(*inputs, ",") {
				parts := strings.SplitN(kv, "=", 2)
				if len(parts) != 2 {
					return fmt.Errorf("bad input assignment %q", kv)
				}
				v, err := strconv.ParseUint(parts[1], 0, 64)
				if err != nil {
					return err
				}
				in[parts[0]] = v
			}
		}
		tb, err := res.VerilogTestbench(in)
		if err != nil {
			return err
		}
		fmt.Print(res.VerilogRTL())
		fmt.Println()
		fmt.Print(tb)
	case "gates":
		name := *module
		if name == "" {
			name = res.Name + "_bist"
		}
		var v string
		if *controller {
			v, err = res.VerilogGatesSelfTimed(name)
		} else {
			v, err = res.VerilogGates(name)
		}
		if err != nil {
			return err
		}
		fmt.Print(v)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	return nil
}

func cmdGatesim(args []string) error {
	fs := flag.NewFlagSet("gatesim", flag.ExitOnError)
	bench := fs.String("bench", "", "built-in benchmark name")
	dfgFile := fs.String("dfg", "", "DFG file")
	width := fs.Int("width", 8, "datapath bit width")
	patterns := fs.Int("patterns", 250, "pseudo-random patterns per module test")
	fs.Parse(args)

	d, mods, err := loadDesign(*bench, *dfgFile)
	if err != nil {
		return err
	}
	cfg := bistpath.DefaultConfig()
	cfg.Width = *width
	res, err := synthesize(d, mods, cfg)
	if err != nil {
		return err
	}
	rep, err := res.GateLevel(*patterns, 0xB157)
	if err != nil {
		return err
	}
	fmt.Printf("gate-level design: %d gates, %d flip-flops\n", rep.TotalGates, rep.DFFs)
	fmt.Printf("  functional %d, port muxes %d, register muxes %d, register cells %d\n",
		rep.Functional, rep.PortMuxes, rep.RegMuxes, rep.RegCells)
	for _, mc := range rep.PerModule {
		fmt.Printf("  %-6s %4d/%4d gate faults detected (%.1f%%)\n", mc.Module, mc.Detected, mc.Faults, mc.Pct())
	}
	f, det := rep.Totals()
	fmt.Printf("  total  %4d/%4d (%.1f%%) with %d patterns per session\n", det, f, rep.Pct(), rep.Patterns)
	return nil
}

func cmdSchedule(args []string) error {
	fs := flag.NewFlagSet("schedule", flag.ExitOnError)
	bench := fs.String("bench", "", "built-in benchmark name")
	dfgFile := fs.String("dfg", "", "DFG file")
	latency := fs.Int("latency", 0, "latency bound for ALAP/force-directed (default: critical path)")
	fs.Parse(args)

	d, _, err := loadDesign(*bench, *dfgFile)
	if err != nil {
		return err
	}
	// Work on the internal graph via the text round trip, unscheduled.
	g, err := dfg.ParseString(d.Text())
	if err != nil {
		return err
	}
	for _, o := range g.Ops() {
		o.Step = 0
	}
	asap, err := sched.ASAP(g)
	if err != nil {
		return err
	}
	cp := sched.Length(asap)
	lat := *latency
	if lat < cp {
		lat = cp
	}
	alap, err := sched.ALAP(g, lat)
	if err != nil {
		return err
	}
	list, err := sched.ListSchedule(g, nil)
	if err != nil {
		return err
	}
	fds, err := sched.ForceDirected(g, lat)
	if err != nil {
		return err
	}
	show := func(name string, steps map[string]int) {
		peak := sched.PeakUsage(g, steps)
		var kinds []string
		for k, n := range peak {
			kinds = append(kinds, fmt.Sprintf("%s:%d", k, n))
		}
		sort.Strings(kinds)
		fmt.Printf("%-15s latency=%d  peak modules: %s\n", name, sched.Length(steps), strings.Join(kinds, " "))
	}
	fmt.Printf("critical path %d steps, bound %d\n", cp, lat)
	show("ASAP", asap)
	show("ALAP", alap)
	show("list (greedy)", list)
	show("force-directed", fds)
	return nil
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	bench := fs.String("bench", "", "built-in benchmark name, comma-separated list, or \"all\"")
	dfgFile := fs.String("dfg", "", "DFG file")
	mode := fs.String("mode", "testable", "testable or traditional")
	width := fs.Int("width", 8, "datapath bit width")
	vectors := fs.Int("vectors", 100, "random input vectors for the functional cross-check")
	seed := fs.Int64("seed", 1, "seed for the functional cross-check vectors")
	workersFlag := fs.String("workers", "", "comma-separated search worker counts to cross-check (default 1,2,8)")
	fast := fs.Bool("fast", false, "skip the brute-force oracles (invariants + functional only)")
	sweep := fs.Int("sweep", 0, "verify N seeded random designs instead of a named one")
	jsonFlag := fs.Bool("json", false, "emit machine-readable JSON reports")
	fs.Parse(args)

	cfg := bistpath.DefaultConfig()
	cfg.Width = *width
	switch *mode {
	case "testable":
	case "traditional":
		cfg.Mode = bistpath.TraditionalHLS
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}

	opts := bistpath.VerifyOptions{Vectors: *vectors, Seed: *seed, SkipOracles: *fast}
	if *workersFlag != "" {
		for _, w := range strings.Split(*workersFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(w))
			if err != nil {
				return fmt.Errorf("bad -workers value %q: %v", w, err)
			}
			opts.Workers = append(opts.Workers, n)
		}
	}

	var reports []*bistpath.VerifyReport
	failed := 0
	verifyOne := func(label string, d *bistpath.DFG, mods map[string]string, vo bistpath.VerifyOptions) error {
		res, err := synthesize(d, mods, cfg)
		if err != nil {
			return err
		}
		rep, err := res.Verify(context.Background(), vo)
		if err != nil {
			return err
		}
		reports = append(reports, rep)
		if !rep.OK() {
			failed++
		}
		if !*jsonFlag {
			fmt.Print(rep.Summary())
		}
		_ = label
		return nil
	}

	if *sweep > 0 {
		if *bench != "" || *dfgFile != "" {
			return fmt.Errorf("-sweep generates its own designs; drop -bench/-dfg")
		}
		// A bounded fraction of random designs legitimately has a module
		// with no register I-path; anything beyond that bound (or any
		// other failure) is a real bug.
		skipBudget := *sweep/4 + 1
		skipped := 0
		for s := int64(1); s <= int64(*sweep); s++ {
			d, mods, err := bistpath.RandomDesign(s)
			if err != nil {
				return fmt.Errorf("sweep seed %d: %v", s, err)
			}
			vo := opts
			vo.Seed = s
			// Full oracles are exponential; sample them on every fifth
			// seed with modest caps and run the fast layers everywhere.
			if !*fast && s%5 == 0 {
				vo.EmbeddingCap = 1 << 16
				vo.BindingLimit = 400
			} else {
				vo.SkipOracles = true
			}
			res, err := synthesize(d, mods, cfg)
			if err != nil {
				if errors.Is(err, bistpath.ErrNoEmbedding) {
					skipped++
					if skipped > skipBudget {
						return fmt.Errorf("sweep: %d designs had no BIST embedding (budget %d): %v", skipped, skipBudget, err)
					}
					continue
				}
				return fmt.Errorf("sweep seed %d: %v", s, err)
			}
			rep, err := res.Verify(context.Background(), vo)
			if err != nil {
				return fmt.Errorf("sweep seed %d: %v", s, err)
			}
			reports = append(reports, rep)
			if !rep.OK() {
				failed++
				if !*jsonFlag {
					fmt.Printf("seed %d:\n%s", s, rep.Summary())
				}
			}
		}
		if !*jsonFlag {
			fmt.Printf("sweep: %d designs verified, %d skipped (no embedding), %d failed\n",
				len(reports), skipped, failed)
		}
	} else if names := benchList(*bench); len(names) > 1 {
		if *dfgFile != "" {
			return fmt.Errorf("use either -bench or -dfg, not both")
		}
		for _, name := range names {
			d, mods, err := bistpath.Benchmark(name)
			if err != nil {
				return err
			}
			if err := verifyOne(name, d, mods, opts); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
	} else {
		d, mods, err := loadDesign(*bench, *dfgFile)
		if err != nil {
			return err
		}
		if err := verifyOne(*bench, d, mods, opts); err != nil {
			return err
		}
	}

	if *jsonFlag {
		out, err := json.MarshalIndent(reports, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
	}
	if failed > 0 {
		return fmt.Errorf("verification failed for %d of %d design(s)", failed, len(reports))
	}
	return nil
}
