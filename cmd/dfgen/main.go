// Command dfgen generates random scheduled data flow graphs in the
// textual format accepted by `bistpath synth -dfg`. The same seed always
// yields the same graph.
//
// The -preset flag selects one of four calibrated design sizes used by
// the scaling benchmark suite (scripts/bench-scaling.sh):
//
//	s   ~12 ops  — well inside the exact search's comfort zone
//	m   ~37 ops  — past the Auto threshold; stochastic territory
//	l   ~93 ops  — the exact branch and bound exhausts its node budget
//	xl  ~290 ops — hundreds of operations, stochastic only
//
// A preset fixes the shape (steps, ops per step, inputs, kinds); -seed
// still varies the instance. Explicit -steps/-ops/-inputs/-kinds flags
// override the preset's values.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"bistpath/internal/benchdata"
	"bistpath/internal/dfg"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dfgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("dfgen", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "generator seed")
	preset := fs.String("preset", "", "design size preset: s, m, l or xl (overridable by the shape flags)")
	steps := fs.Int("steps", 0, "control steps (default 5, or the preset's)")
	ops := fs.Int("ops", 0, "maximum operations per step (default 3, or the preset's)")
	inputs := fs.Int("inputs", 0, "primary inputs (default 4, or the preset's)")
	kinds := fs.String("kinds", "", "operation kinds to draw from (default +-*&, or the preset's)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := benchdata.RandomConfig{Seed: *seed, Steps: 5, OpsPerStep: 3, Inputs: 4}
	if *preset != "" {
		p, ok := benchdata.Preset(*preset, *seed)
		if !ok {
			return fmt.Errorf("unknown preset %q (want s, m, l or xl)", *preset)
		}
		cfg = p
	}
	if *steps > 0 {
		cfg.Steps = *steps
	}
	if *ops > 0 {
		cfg.OpsPerStep = *ops
	}
	if *inputs > 0 {
		cfg.Inputs = *inputs
	}
	if *kinds != "" {
		var ks []dfg.Kind
		for _, r := range *kinds {
			k := dfg.Kind(string(r))
			if !k.Valid() {
				return fmt.Errorf("invalid kind %q", string(r))
			}
			ks = append(ks, k)
		}
		cfg.Kinds = ks
	}

	g, err := benchdata.Random(cfg)
	if err != nil {
		return err
	}
	return g.WriteText(stdout)
}
