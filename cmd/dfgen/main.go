// Command dfgen generates random scheduled data flow graphs in the
// textual format accepted by `bistpath synth -dfg`. The same seed always
// yields the same graph.
package main

import (
	"flag"
	"fmt"
	"os"

	"bistpath/internal/benchdata"
	"bistpath/internal/dfg"
)

func main() {
	seed := flag.Int64("seed", 1, "generator seed")
	steps := flag.Int("steps", 5, "control steps")
	ops := flag.Int("ops", 3, "maximum operations per step")
	inputs := flag.Int("inputs", 4, "primary inputs")
	kinds := flag.String("kinds", "+-*&", "operation kinds to draw from")
	flag.Parse()

	var ks []dfg.Kind
	for _, r := range *kinds {
		k := dfg.Kind(string(r))
		if !k.Valid() {
			fmt.Fprintf(os.Stderr, "dfgen: invalid kind %q\n", string(r))
			os.Exit(2)
		}
		ks = append(ks, k)
	}
	g, err := benchdata.Random(benchdata.RandomConfig{
		Seed:       *seed,
		Steps:      *steps,
		OpsPerStep: *ops,
		Inputs:     *inputs,
		Kinds:      ks,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dfgen:", err)
		os.Exit(1)
	}
	if err := g.WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dfgen:", err)
		os.Exit(1)
	}
}
