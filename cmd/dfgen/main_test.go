package main

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"bistpath/internal/dfg"
)

// generate runs dfgen with the given arguments and parses the textual
// output back into a graph, so the tests check the full round trip.
func generate(t *testing.T, args ...string) (string, *dfg.Graph) {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	g, err := dfg.ParseString(buf.String())
	if err != nil {
		t.Fatalf("run(%v) output does not parse: %v", args, err)
	}
	return buf.String(), g
}

// The same seed must yield byte-identical text: the scaling suite and
// the nightly soak identify instances by (preset, seed) alone.
func TestSeedDeterminism(t *testing.T) {
	for _, preset := range []string{"", "s", "m", "l", "xl"} {
		for seed := int64(1); seed <= 3; seed++ {
			args := []string{"-seed", fmt.Sprint(seed)}
			if preset != "" {
				args = append(args, "-preset", preset)
			}
			a, _ := generate(t, args...)
			b, _ := generate(t, args...)
			if a != b {
				t.Errorf("preset %q seed %d: two runs differ", preset, seed)
			}
		}
		one, _ := generate(t, append([]string{"-seed", "1"}, presetArgs(preset)...)...)
		two, _ := generate(t, append([]string{"-seed", "2"}, presetArgs(preset)...)...)
		if one == two {
			t.Errorf("preset %q: seeds 1 and 2 collide", preset)
		}
	}
}

func presetArgs(p string) []string {
	if p == "" {
		return nil
	}
	return []string{"-preset", p}
}

// Preset shape properties: op counts in the advertised band, schedule
// depth and input count matching the preset, only preset kinds drawn,
// and strictly increasing size from S to XL.
func TestPresetShapes(t *testing.T) {
	want := map[string]struct {
		minOps, maxOps int
		steps, inputs  int
		kinds          string
	}{
		"s":  {6, 18, 6, 4, "+-*&"},
		"m":  {14, 56, 14, 6, "+-*/&|^<>"},
		"l":  {30, 150, 30, 8, "+-*/&|^<>"},
		"xl": {100, 500, 100, 10, "-/<>"},
	}
	prevMax := 0
	for _, preset := range []string{"s", "m", "l", "xl"} {
		w := want[preset]
		maxSeen := 0
		for seed := int64(1); seed <= 5; seed++ {
			_, g := generate(t, "-preset", preset, "-seed", fmt.Sprint(seed))
			ops := g.Ops()
			if len(ops) < w.minOps || len(ops) > w.maxOps {
				t.Errorf("preset %s seed %d: %d ops, want %d..%d", preset, seed, len(ops), w.minOps, w.maxOps)
			}
			if maxSeen < len(ops) {
				maxSeen = len(ops)
			}
			if g.NumSteps() != w.steps {
				t.Errorf("preset %s seed %d: %d steps, want %d", preset, seed, g.NumSteps(), w.steps)
			}
			if got := len(g.Inputs()); got != w.inputs {
				t.Errorf("preset %s seed %d: %d inputs, want %d", preset, seed, got, w.inputs)
			}
			for _, op := range ops {
				if !strings.Contains(w.kinds, string(op.Kind)) {
					t.Errorf("preset %s seed %d: op %s has kind %q outside preset set %q",
						preset, seed, op.Name, op.Kind, w.kinds)
				}
			}
			if !g.Scheduled() {
				t.Errorf("preset %s seed %d: graph not fully scheduled", preset, seed)
			}
		}
		if maxSeen <= prevMax {
			t.Errorf("preset %s: max ops %d not larger than previous preset's %d", preset, maxSeen, prevMax)
		}
		prevMax = maxSeen
	}
}

// Explicit shape flags override the preset's values.
func TestPresetOverride(t *testing.T) {
	_, g := generate(t, "-preset", "s", "-steps", "9", "-seed", "4")
	if g.NumSteps() != 9 {
		t.Errorf("override: %d steps, want 9", g.NumSteps())
	}
	_, g = generate(t, "-preset", "m", "-kinds", "+", "-seed", "4")
	for _, op := range g.Ops() {
		if op.Kind != dfg.Add {
			t.Errorf("override: op %s kind %q, want +", op.Name, op.Kind)
		}
	}
}

func TestBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-preset", "xxl"}, &buf); err == nil {
		t.Error("unknown preset accepted")
	}
	if err := run([]string{"-kinds", "?"}, &buf); err == nil {
		t.Error("invalid kind accepted")
	}
}
