// Command bistpathd serves the bistpath synthesis library as a
// multi-tenant HTTP daemon: submit scheduled DFGs or built-in benchmark
// names as jobs, poll their status, stream live progress events over
// SSE, and fetch completed results as the exact bytes `bistpath synth
// -json` prints.
//
// Usage:
//
//	bistpathd [-addr :8157] [-j N] [-cache] [-cache-dir DIR]
//	          [-body-limit N] [-timeout D] [-drain-timeout D]
//	          [-max-jobs-per-client N]
//
// Endpoints:
//
//	POST   /v1/jobs             submit {"benchmark":"ex1"} or {"dfg":"...","modules":{...},"config":{...}}
//	GET    /v1/jobs             list retained jobs
//	GET    /v1/jobs/{id}        poll status (+ result document once done)
//	PATCH  /v1/jobs/{id}        incremental re-synthesis: {"edits":[{"kind":"set_step","op":"mul2","step":5},...]}
//	                            derives a new job from a completed one, reusing unchanged phases
//	GET    /v1/jobs/{id}/result completed Result.JSON(), byte-identical to the CLI
//	GET    /v1/jobs/{id}/events SSE stream of phase/progress events
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/benchmarks       built-in design names
//	GET    /metrics             expvar counters (bistpath.* and bistpathd.*)
//	GET    /healthz             readiness (503 while draining)
//
// With -max-jobs-per-client N, each client (X-Client-ID header, falling
// back to the remote host) may have at most N jobs in flight; beyond
// that POST and PATCH answer 429 with a Retry-After header.
//
// On SIGTERM or SIGINT the daemon drains: new submissions answer 503,
// in-flight jobs finish (or are cancelled at -drain-timeout), SSE
// streams flush their terminal events, and the listener shuts down.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bistpath"
	"bistpath/internal/server"
)

func main() {
	addr := flag.String("addr", ":8157", "listen address")
	workers := flag.Int("j", 0, "synthesis worker pool size shared by all jobs (0 = GOMAXPROCS)")
	cacheFlag := flag.Bool("cache", true, "share an in-memory result cache across jobs (duplicate submissions coalesce)")
	cacheDir := flag.String("cache-dir", "", "also persist cached results under this directory (implies -cache)")
	cacheBytes := flag.Int64("cache-max-bytes", 0, "in-memory cache budget in bytes (0 = library default)")
	bodyLimit := flag.Int64("body-limit", server.DefaultMaxBody, "request body size limit in bytes")
	timeout := flag.Duration("timeout", server.DefaultTimeout, "per-request timeout for non-streaming endpoints")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long a drain waits for in-flight jobs before cancelling them")
	heartbeat := flag.Duration("sse-heartbeat", server.DefaultHeartbeat, "SSE keepalive comment interval")
	maxPerClient := flag.Int("max-jobs-per-client", 0, "max in-flight jobs per client; beyond it POST/PATCH answer 429 (0 = unlimited)")
	flag.Parse()

	if err := run(*addr, server.Options{
		Workers:          *workers,
		MaxBody:          *bodyLimit,
		Timeout:          *timeout,
		Heartbeat:        *heartbeat,
		MaxJobsPerClient: *maxPerClient,
	}, *cacheFlag, *cacheDir, *cacheBytes, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "bistpathd:", err)
		os.Exit(1)
	}
}

func run(addr string, opts server.Options, useCache bool, cacheDir string, cacheBytes int64, drainTimeout time.Duration) error {
	if useCache || cacheDir != "" {
		cc, err := bistpath.NewCache(bistpath.CacheOptions{Dir: cacheDir, MaxBytes: cacheBytes})
		if err != nil {
			return err
		}
		opts.Cache = cc
	}
	srv := server.New(opts)
	hs := &http.Server{
		Addr:              addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("bistpathd: listening on %s", addr)
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	log.Printf("bistpathd: draining (timeout %v)", drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		log.Printf("bistpathd: drain deadline hit, in-flight jobs cancelled")
	}
	// All jobs are terminal and SSE streams end with their terminal
	// events, so Shutdown observes handlers finishing promptly.
	sctx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("bistpathd: drained cleanly")
	return nil
}
