package bistpath

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// Every benchmark must come back with populated, internally consistent
// stats: phases were timed, the search and binder counters moved, and a
// default (sequential) run reports one worker.
func TestStatsInvariants(t *testing.T) {
	for _, n := range BenchmarkNames() {
		d, mods, _ := Benchmark(n)
		res, err := d.Synthesize(mods, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		s := res.Stats
		if s.Total <= 0 {
			t.Errorf("%s: Total not timed: %v", n, s.Total)
		}
		if ps := s.PhaseSum(); ps <= 0 || ps > s.Total {
			t.Errorf("%s: PhaseSum %v outside (0, Total=%v]", n, ps, s.Total)
		}
		for _, c := range []struct {
			name string
			v    int64
		}{
			{"SearchNodes", s.SearchNodes},
			{"EmbeddingsEnumerated", s.EmbeddingsEnumerated},
			{"IncumbentUpdates", s.IncumbentUpdates},
			{"Lemma2Checks", s.Lemma2Checks},
		} {
			if c.v <= 0 {
				t.Errorf("%s: %s = %d, want > 0", n, c.name, c.v)
			}
		}
		if s.SearchWorkers != 1 {
			t.Errorf("%s: SearchWorkers = %d, want 1 for a default run", n, s.SearchWorkers)
		}
		if s.String() == "" {
			t.Errorf("%s: empty Stats.String()", n)
		}
	}
}

// Sequential runs are pure functions of the input: every counter (not
// the wall times) must repeat exactly.
func TestStatsCounterDeterminism(t *testing.T) {
	for _, n := range BenchmarkNames() {
		d, mods, _ := Benchmark(n)
		counters := func(s Stats) [7]int64 {
			return [7]int64{s.SearchNodes, s.BoundPrunes, s.IncumbentUpdates,
				s.EmbeddingsEnumerated, int64(s.SearchWorkers), s.Lemma2Checks, s.CaseOverrides}
		}
		a, err := d.Synthesize(mods, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		b, err := d.Synthesize(mods, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if counters(a.Stats) != counters(b.Stats) {
			t.Errorf("%s: sequential counters differ:\n  %+v\n  %+v", n, a.Stats, b.Stats)
		}
	}
}

// The determinism contract extends across Config.Workers: reports must
// be byte-identical whether the BIST search runs on 1 or 4 goroutines.
func TestReportTextIdenticalAcrossWorkers(t *testing.T) {
	for _, n := range BenchmarkNames() {
		var reports []string
		for _, w := range []int{1, 4} {
			d, mods, _ := Benchmark(n)
			cfg := DefaultConfig()
			cfg.Workers = w
			res, err := d.Synthesize(mods, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.SearchWorkers < 1 {
				t.Errorf("%s workers=%d: SearchWorkers = %d", n, w, res.Stats.SearchWorkers)
			}
			reports = append(reports, res.ReportText())
		}
		if reports[0] != reports[1] {
			t.Errorf("%s: ReportText differs between 1 and 4 workers", n)
		}
	}
}

// The observer must see each phase open and close in pipeline order,
// with search progress (if any fires — the benchmarks are too small to
// cross the 1024-node reporting stride) confined to the BIST window.
func TestObserverEventOrdering(t *testing.T) {
	d, mods, _ := Benchmark("paulin")
	var mu sync.Mutex
	var events []Event
	cfg := DefaultConfig()
	cfg.Observer = func(e Event) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	}
	res, err := d.Synthesize(mods, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Total <= 0 {
		t.Fatal("stats missing on observed run")
	}

	wantOrder := []Phase{PhaseValidate, PhaseRegisterBind, PhaseInterconnect, PhaseDatapath, PhaseBISTSearch}
	var phasePairs []Event
	open := map[Phase]bool{}
	for _, e := range events {
		if e.Design != "paulin" {
			t.Errorf("event for wrong design %q", e.Design)
		}
		switch e.Kind {
		case PhaseStart:
			if open[e.Phase] {
				t.Errorf("phase %v started twice", e.Phase)
			}
			open[e.Phase] = true
			phasePairs = append(phasePairs, e)
		case PhaseEnd:
			if !open[e.Phase] {
				t.Errorf("phase %v ended without starting", e.Phase)
			}
			open[e.Phase] = false
			if e.Elapsed < 0 {
				t.Errorf("phase %v negative elapsed %v", e.Phase, e.Elapsed)
			}
		case SearchProgress:
			if !open[PhaseBISTSearch] {
				t.Error("SearchProgress outside the BIST search window")
			}
			if e.SearchNodes <= 0 {
				t.Errorf("SearchProgress with nodes %d", e.SearchNodes)
			}
		}
	}
	if len(phasePairs) != len(wantOrder) {
		t.Fatalf("got %d phase starts, want %d (%v)", len(phasePairs), len(wantOrder), phasePairs)
	}
	for i, e := range phasePairs {
		if e.Phase != wantOrder[i] {
			t.Errorf("phase %d = %v, want %v", i, e.Phase, wantOrder[i])
		}
	}
	for p, o := range open {
		if o {
			t.Errorf("phase %v never ended", p)
		}
	}
}

// A failing run must still emit the PhaseEnd event for the phase that
// failed, so observers can bracket every start with an end.
func TestObserverSeesFailingPhase(t *testing.T) {
	// add2 at step 1 reads x produced at step 2: the builder accepts
	// this, the module map resolves, and the graph only fails inside the
	// pipeline's validate phase — after the observer saw it start.
	d := NewDFG("bad")
	for _, err := range []error{
		d.AddInput("a", "b"),
		d.AddOp("add1", "+", 2, "x", "a", "b"),
		d.AddOp("add2", "+", 1, "y", "x", "b"),
		d.MarkOutput("y"),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	var events []Event
	cfg := DefaultConfig()
	cfg.Observer = func(e Event) { events = append(events, e) }
	_, err := d.Synthesize(map[string]string{"add1": "M1", "add2": "M2"}, cfg)
	if err == nil {
		t.Fatal("step-order violation accepted")
	}
	var se *SynthesisError
	if !errors.As(err, &se) || se.Phase != PhaseValidate {
		t.Fatalf("err = %v, want *SynthesisError in validate phase", err)
	}
	if len(events) != 2 || events[0].Kind != PhaseStart || events[1].Kind != PhaseEnd ||
		events[0].Phase != PhaseValidate || events[1].Phase != PhaseValidate {
		t.Fatalf("events = %+v, want validate start+end", events)
	}
}

func TestTypedErrors(t *testing.T) {
	if _, _, err := Benchmark("nope"); !errors.Is(err, ErrUnknownBenchmark) {
		t.Errorf("Benchmark(nope) = %v, want ErrUnknownBenchmark", err)
	}

	unsched := func() *DFG {
		d := NewDFG("u")
		if err := d.AddInput("a", "b"); err != nil {
			t.Fatal(err)
		}
		if err := d.AddOp("add1", "+", 0, "c", "a", "b"); err != nil {
			t.Fatal(err)
		}
		if err := d.MarkOutput("c"); err != nil {
			t.Fatal(err)
		}
		return d
	}
	// Both the automatic and the explicit module-binding paths must
	// report an unscheduled graph as ErrUnscheduled, attributed to the
	// validate phase.
	for name, run := range map[string]func(*DFG) error{
		"auto": func(d *DFG) error { _, err := d.SynthesizeAuto(DefaultConfig()); return err },
		"explicit": func(d *DFG) error {
			_, err := d.Synthesize(map[string]string{"add1": "M1"}, DefaultConfig())
			return err
		},
	} {
		err := run(unsched())
		if !errors.Is(err, ErrUnscheduled) {
			t.Errorf("%s: err = %v, want ErrUnscheduled", name, err)
		}
		var se *SynthesisError
		if !errors.As(err, &se) {
			t.Errorf("%s: err %v is not a *SynthesisError", name, err)
		} else {
			if se.Phase != PhaseValidate {
				t.Errorf("%s: phase = %v, want validate", name, se.Phase)
			}
			if se.Design != "u" {
				t.Errorf("%s: design = %q", name, se.Design)
			}
		}
	}

	// Context errors pass through unwrapped so callers can compare with
	// == as well as errors.Is.
	d, mods, _ := Benchmark("ex1")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := d.SynthesizeCtx(ctx, mods, DefaultConfig()); err != context.Canceled {
		t.Errorf("cancelled ctx: err = %v, want context.Canceled (unwrapped)", err)
	}

	// A nil-DFG job fails with the ErrNoDFG sentinel.
	rs := SynthesizeAll(context.Background(), []Job{{Name: "hole"}}, BatchOptions{})
	if len(rs) != 1 || !errors.Is(rs[0].Err, ErrNoDFG) {
		t.Errorf("nil-DFG job: %+v, want ErrNoDFG", rs)
	}
}

// SynthesizeCtx with a nil map must match SynthesizeAuto exactly.
func TestNilMapIsAutoBinding(t *testing.T) {
	build := func() *DFG {
		d, err := ParseDFG("dfg auto\ninput a b c\nop add1 + a b -> x @1\nop add2 + x c -> y @2\noutput y\n")
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	ra, err := build().SynthesizeAuto(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rb, err := build().SynthesizeCtx(context.Background(), nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if ra.ReportText() != rb.ReportText() {
		t.Error("SynthesizeCtx(nil map) differs from SynthesizeAuto")
	}
}

func TestBatchStats(t *testing.T) {
	var jobs []Job
	for _, n := range BenchmarkNames() {
		d, mods, _ := Benchmark(n)
		jobs = append(jobs, Job{DFG: d, Modules: mods, Config: DefaultConfig()})
	}
	results, bs := SynthesizeAllStats(context.Background(), jobs, BatchOptions{Workers: 2})
	if bs.Workers != 2 {
		t.Errorf("Workers = %d, want 2", bs.Workers)
	}
	if bs.Wall <= 0 || bs.Busy <= 0 {
		t.Errorf("unmeasured batch: wall %v busy %v", bs.Wall, bs.Busy)
	}
	if u := bs.Utilization(); u <= 0 || u > 1 {
		t.Errorf("Utilization = %v, want (0, 1]", u)
	}
	var busy time.Duration
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if r.Duration <= 0 {
			t.Errorf("%s: job Duration not measured", r.Name)
		}
		busy += r.Duration
	}
	if busy != bs.Busy {
		t.Errorf("Busy %v != summed durations %v", bs.Busy, busy)
	}
	if (BatchStats{}).Utilization() != 0 {
		t.Error("zero BatchStats should have zero utilization")
	}
}

// sortSessions must deep-copy (the input aliases the optimizer's plan)
// and survive empty sessions instead of indexing [0].
func TestSortSessions(t *testing.T) {
	in := [][]string{{"M2"}, {}, {"M1", "M3"}}
	out := sortSessions(in)
	want := [][]string{{}, {"M1", "M3"}, {"M2"}}
	if len(out) != len(want) {
		t.Fatalf("got %v", out)
	}
	for i := range want {
		if len(out[i]) != len(want[i]) {
			t.Fatalf("got %v, want %v", out, want)
		}
		for j := range want[i] {
			if out[i][j] != want[i][j] {
				t.Fatalf("got %v, want %v", out, want)
			}
		}
	}
	if in[0][0] != "M2" || len(in[1]) != 0 || in[2][0] != "M1" {
		t.Errorf("input mutated: %v", in)
	}
	out[2][0] = "changed"
	if in[0][0] != "M2" {
		t.Error("output aliases input backing arrays")
	}
}

func TestStatsInReportAbsent(t *testing.T) {
	d, mods, _ := Benchmark("ex1")
	res, err := d.Synthesize(mods, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// ReportText is the determinism anchor; it must never leak the
	// timing-dependent stats.
	if rep := res.ReportText(); res.Stats.Total > 0 && strings.Contains(rep, res.Stats.Total.String()) {
		t.Error("ReportText appears to include timing data")
	}
}
