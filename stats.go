package bistpath

import (
	"expvar"
	"fmt"
	"strings"
	"time"
)

// Phase identifies one stage of the synthesis pipeline, in execution
// order. It labels phase timings in Stats, observer events, and the
// phase attribution of SynthesisError.
type Phase int

// The pipeline phases.
const (
	// PhaseValidate covers input checking: DFG structural validation,
	// schedule completeness and the module-binding consistency check.
	PhaseValidate Phase = iota
	// PhaseRegisterBind is the paper's register binder (or the
	// traditional baseline binder).
	PhaseRegisterBind
	// PhaseInterconnect is the minimum-connectivity interconnect binding.
	PhaseInterconnect
	// PhaseDatapath builds the structural data path from the bindings.
	PhaseDatapath
	// PhaseBISTSearch is the branch-and-bound BIST embedding search plus
	// session scheduling.
	PhaseBISTSearch
)

func (p Phase) String() string {
	switch p {
	case PhaseValidate:
		return "validate"
	case PhaseRegisterBind:
		return "register-bind"
	case PhaseInterconnect:
		return "interconnect"
	case PhaseDatapath:
		return "datapath"
	case PhaseBISTSearch:
		return "bist-search"
	}
	return fmt.Sprintf("phase(%d)", int(p))
}

// Stats records where one synthesis run spent its time and how hard the
// search layers worked. It lives on Result.Stats, deliberately outside
// the determinism contract of ReportText: the durations are wall times
// and vary run to run, while the counters are exact replays of the
// algorithms' work — for a sequential run (Config.Workers <= 1) every
// counter is deterministic, and under parallel search only SearchNodes,
// BoundPrunes and IncumbentUpdates may vary (bound propagation timing
// changes how much of the tree is cut).
type Stats struct {
	// Wall times. Total covers the whole run including result assembly,
	// so the per-phase values sum to slightly less than Total.
	Total        time.Duration
	Validate     time.Duration
	RegisterBind time.Duration
	Interconnect time.Duration
	Datapath     time.Duration
	BISTSearch   time.Duration

	// BIST branch-and-bound effort.
	SearchNodes          int64 // search nodes expanded
	BoundPrunes          int64 // subtrees cut by the incumbent bound
	IncumbentUpdates     int64 // incumbent improvements taken
	EmbeddingsEnumerated int64 // candidate embeddings across all modules
	SearchWorkers        int   // effective worker count after clamping

	// Stochastic-search effort (Config.Search only; all zero/empty under
	// the default SearchExact, so existing Results are unchanged).
	// SearchStrategy records what the configured strategy resolved to —
	// "exact" or "stochastic" — and stays empty for a SearchExact config.
	SearchStrategy string
	Generations    int64              // genetic-search generations executed
	Evaluations    int64              // candidate cost evaluations (GA + annealing)
	BestCurve      []SearchCurvePoint // best-so-far cost after each incumbent improvement

	// Register binder effort (zero in traditional mode).
	Lemma2Checks  int64 // trial Lemma-2 evaluations during coloring
	CaseOverrides int64 // Case 1/2 diversions that changed the choice

	// Result-cache interaction, filled only when Config.Cache was set.
	// These are the one part of Stats deliberately excluded from
	// Result.JSON(): a cache hit replays the populating run's Stats so
	// its JSON stays byte-identical to the cold run, which a live
	// hit-count could never be. The per-run cache view therefore lives
	// on the Go struct only.
	CacheHit       bool  // this Result was served from Config.Cache
	CacheHits      int64 // cache hits observed by Config.Cache so far
	CacheMisses    int64 // cache misses (full syntheses) so far
	CacheEvictions int64 // in-memory entries evicted so far
	CacheBytes     int64 // in-memory bytes held after this run

	// Incremental re-synthesis view, filled only on Session.Resynthesize
	// results. Excluded from Result.JSON() for the same reason as the
	// cache view: an incremental run's JSON is byte-identical (stats
	// normalized) to the cold run's, which live reuse accounting could
	// never be.
	ReusedPhases       []string // phases reused from the previous run, pipeline order
	IncrementalSpeedup float64  // previous cold Total / this run's Total (0 until phases reuse)
}

// SearchCurvePoint is one incumbent improvement of the stochastic
// search: the best cost known after the given generation (generation 0
// is the seeded initial population).
type SearchCurvePoint struct {
	Generation int64 `json:"generation"`
	Cost       int   `json:"cost"`
}

// PhaseSum returns the sum of the per-phase wall times. It is at most
// Total (result assembly is not attributed to any phase).
func (s Stats) PhaseSum() time.Duration {
	return s.Validate + s.RegisterBind + s.Interconnect + s.Datapath + s.BISTSearch
}

// String renders a compact human-readable summary (the cmd tools' -stats
// format).
func (s Stats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "  stats: total %v (validate %v, bind %v, interconnect %v, datapath %v, bist %v)\n",
		s.Total, s.Validate, s.RegisterBind, s.Interconnect, s.Datapath, s.BISTSearch)
	fmt.Fprintf(&sb, "    search: %d nodes, %d prunes, %d incumbents, %d embeddings, %d worker(s)\n",
		s.SearchNodes, s.BoundPrunes, s.IncumbentUpdates, s.EmbeddingsEnumerated, s.SearchWorkers)
	if s.SearchStrategy != "" {
		fmt.Fprintf(&sb, "    strategy: %s; %d generations, %d evaluations, %d curve points\n",
			s.SearchStrategy, s.Generations, s.Evaluations, len(s.BestCurve))
	}
	fmt.Fprintf(&sb, "    binder: %d Lemma-2 checks, %d case overrides\n",
		s.Lemma2Checks, s.CaseOverrides)
	if s.CacheHit || s.CacheHits+s.CacheMisses > 0 {
		served := "synthesized"
		if s.CacheHit {
			served = "served from cache"
		}
		fmt.Fprintf(&sb, "    cache: %s; %d hits, %d misses, %d evictions, %d bytes\n",
			served, s.CacheHits, s.CacheMisses, s.CacheEvictions, s.CacheBytes)
	}
	if len(s.ReusedPhases) > 0 {
		fmt.Fprintf(&sb, "    incremental: reused %s", strings.Join(s.ReusedPhases, ", "))
		if s.IncrementalSpeedup > 0 {
			fmt.Fprintf(&sb, " (%.1fx vs cold)", s.IncrementalSpeedup)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// EventKind distinguishes observer events.
type EventKind int

// Observer event kinds.
const (
	// PhaseStart fires when a pipeline phase begins.
	PhaseStart EventKind = iota
	// PhaseEnd fires when a pipeline phase completes (Elapsed is set).
	PhaseEnd
	// SearchProgress fires periodically from inside the BIST branch and
	// bound (SearchNodes is the cumulative node count so far). These
	// events come from search worker goroutines.
	SearchProgress
	// CacheHit fires once when Config.Cache serves the run instead of a
	// full synthesis. Phase events still precede it for disk-layer hits
	// (the cheap phases re-run), but never a PhaseBISTSearch pair.
	CacheHit
	// PanicRecovered fires once when the batch layer (SynthesizeAll,
	// Pool.Do, RunJob) recovers a panic inside a job's synthesis. It is
	// the terminal event of that run: the panic unwound past the
	// pipeline, so no further phase events can follow, and observers
	// that stream progress (e.g. SSE subscribers) must not be left
	// waiting. Direct SynthesizeCtx calls do not recover panics and
	// never emit it.
	PanicRecovered
)

func (k EventKind) String() string {
	switch k {
	case PhaseStart:
		return "phase-start"
	case PhaseEnd:
		return "phase-end"
	case SearchProgress:
		return "search-progress"
	case CacheHit:
		return "cache-hit"
	case PanicRecovered:
		return "panic-recovered"
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// Event is one structured observation of a synthesis run in flight,
// delivered to Config.Observer.
type Event struct {
	Design  string        // DFG name
	Kind    EventKind     // what happened
	Phase   Phase         // which pipeline phase
	Elapsed time.Duration // PhaseEnd: the phase's wall time
	// SearchNodes is the cumulative branch-and-bound node count
	// (SearchProgress events only).
	SearchNodes int64
}

// Observer receives structured progress events during synthesis. Set it
// on Config to watch a run; leave it nil for the zero-overhead default.
// PhaseStart/PhaseEnd events arrive on the synthesizing goroutine in
// pipeline order; SearchProgress events may arrive concurrently from
// several search workers, so an Observer must be safe for concurrent
// use. Observers must not block: they run inline with synthesis.
type Observer func(Event)

// Package-level cumulative counters, exported through expvar so a
// long-running process embedding the library is scrapeable (import
// net/http and expvar's /debug/vars handler does the rest; see the
// README's Observability section).
var (
	expSyntheses  = expvar.NewInt("bistpath.syntheses")
	expSynthErrs  = expvar.NewInt("bistpath.synthesis_errors")
	expSynthNanos = expvar.NewInt("bistpath.synthesis_nanos")
	expNodes      = expvar.NewInt("bistpath.search_nodes")
	expPrunes     = expvar.NewInt("bistpath.bound_prunes")
	expEmbeddings = expvar.NewInt("bistpath.embeddings_enumerated")
	expBatchJobs  = expvar.NewInt("bistpath.batch_jobs")

	// Result-cache counters, cumulative across every Cache in the
	// process. cache_bytes is a gauge (stores add, evictions subtract);
	// the rest only grow.
	expCacheHits      = expvar.NewInt("bistpath.cache_hits")
	expCacheMisses    = expvar.NewInt("bistpath.cache_misses")
	expCacheDiskHits  = expvar.NewInt("bistpath.cache_disk_hits")
	expCacheStores    = expvar.NewInt("bistpath.cache_stores")
	expCacheEvictions = expvar.NewInt("bistpath.cache_evictions")
	expCacheBytes     = expvar.NewInt("bistpath.cache_bytes")
)

// recordRun folds one completed run into the cumulative expvar counters.
func recordRun(s *Stats) {
	expSyntheses.Add(1)
	expSynthNanos.Add(int64(s.Total))
	expNodes.Add(s.SearchNodes)
	expPrunes.Add(s.BoundPrunes)
	expEmbeddings.Add(s.EmbeddingsEnumerated)
}
