package bistpath_test

import (
	"fmt"

	"bistpath"
)

// Example synthesizes the paper's running example (Fig. 2) with the
// BIST-aware allocator and prints the headline metrics.
func Example() {
	d, mods, _ := bistpath.Benchmark("ex1")
	res, err := d.Synthesize(mods, bistpath.DefaultConfig())
	if err != nil {
		panic(err)
	}
	fmt.Printf("registers: %d\n", res.NumRegisters())
	fmt.Printf("BIST resources: %s\n", res.StyleSummary())
	out, _ := res.Simulate(map[string]uint64{"a": 1, "b": 2, "e": 3, "g": 4})
	fmt.Printf("h = %d\n", out["h"])
	// Output:
	// registers: 3
	// BIST resources: 2 TPG, 1 SA
	// h = 60
}

// ExampleCompile builds a design from a behavioral description.
func ExampleCompile() {
	d, err := bistpath.Compile("mac", "acc = a*b + c\n", true)
	if err != nil {
		panic(err)
	}
	if err := d.AutoSchedule(nil); err != nil {
		panic(err)
	}
	res, err := d.SynthesizeAuto(bistpath.DefaultConfig())
	if err != nil {
		panic(err)
	}
	out, _ := res.Simulate(map[string]uint64{"a": 6, "b": 7, "c": 8})
	fmt.Println(out["acc"])
	// Output:
	// 50
}

// ExampleResult_FaultCoverage grades the synthesized BIST plan by fault
// injection.
func ExampleResult_FaultCoverage() {
	d, mods, _ := bistpath.Benchmark("ex1")
	res, _ := d.Synthesize(mods, bistpath.DefaultConfig())
	rep, err := res.FaultCoverage(250, 1)
	if err != nil {
		panic(err)
	}
	faults, _ := rep.Totals()
	fmt.Printf("%d faults graded across %d modules\n", faults, len(rep.PerModule))
	// Output:
	// 96 faults graded across 2 modules
}
