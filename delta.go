package bistpath

import "fmt"

// DeltaKind identifies which Session mutator produced a Delta.
type DeltaKind int

// The Session edit kinds.
const (
	// DeltaSetStep reschedules one operation to a new control step.
	DeltaSetStep DeltaKind = iota
	// DeltaReplaceOp swaps one operation's operator kind in place,
	// keeping its operands, result and schedule.
	DeltaReplaceOp
	// DeltaRemapModule moves one operation to a different functional
	// module in the session's explicit op→module map.
	DeltaRemapModule
	// DeltaRetimePort toggles the port-fed mark of a primary input
	// (port-fed inputs are wired to module ports and never
	// register-allocated).
	DeltaRetimePort
)

func (k DeltaKind) String() string {
	switch k {
	case DeltaSetStep:
		return "set-step"
	case DeltaReplaceOp:
		return "replace-op"
	case DeltaRemapModule:
		return "remap-module"
	case DeltaRetimePort:
		return "retime-port"
	}
	return fmt.Sprintf("delta(%d)", int(k))
}

// Delta is one recorded Session edit: the typed description of a single
// mutator call, in the order applied. Session.Deltas returns the edits
// still pending (applied to the session's graph but not yet folded into
// a Resynthesize); a successful Resynthesize consumes them.
type Delta struct {
	Kind DeltaKind // which mutator

	Op     string // SetStep, ReplaceOp, RemapModule: the operation edited
	Var    string // RetimePort: the variable edited
	OpKind string // ReplaceOp: the new operator kind
	Module string // RemapModule: the new module name
	Step   int    // SetStep: the new control step
	Port   bool   // RetimePort: the new port-fed mark
}

func (d Delta) String() string {
	switch d.Kind {
	case DeltaSetStep:
		return fmt.Sprintf("set-step %s @%d", d.Op, d.Step)
	case DeltaReplaceOp:
		return fmt.Sprintf("replace-op %s %s", d.Op, d.OpKind)
	case DeltaRemapModule:
		return fmt.Sprintf("remap-module %s -> %s", d.Op, d.Module)
	case DeltaRetimePort:
		return fmt.Sprintf("retime-port %s %t", d.Var, d.Port)
	}
	return d.Kind.String()
}
