// Benchmarks regenerating every table and figure of the paper's
// evaluation (run `go test -bench=. -benchmem`); the printable versions
// live in cmd/paperbench. Component micro-benchmarks for the individual
// allocation phases follow.
package bistpath

import (
	"context"
	"fmt"
	"testing"

	"bistpath/internal/area"
	"bistpath/internal/atpg"
	"bistpath/internal/baselines"
	"bistpath/internal/benchdata"
	"bistpath/internal/bist"
	"bistpath/internal/bistgen"
	"bistpath/internal/datapath"
	"bistpath/internal/elab"
	"bistpath/internal/gates"
	"bistpath/internal/interconnect"
	"bistpath/internal/lang"
	"bistpath/internal/modassign"
	"bistpath/internal/opt"
	"bistpath/internal/regassign"
	"bistpath/internal/scan"
	"bistpath/internal/sched"
	"bistpath/internal/verilog"
)

// benchBoth runs the full Table I measurement for one benchmark: both
// flows end to end, through BIST optimization and area accounting.
func benchBoth(b *testing.B, name string) {
	b.Helper()
	d, mods, err := Benchmark(name)
	if err != nil {
		b.Fatal(err)
	}
	cfgT := DefaultConfig()
	cfgR := DefaultConfig()
	cfgR.Mode = TraditionalHLS
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt, err := d.Synthesize(mods, cfgT)
		if err != nil {
			b.Fatal(err)
		}
		rr, err := d.Synthesize(mods, cfgR)
		if err != nil {
			b.Fatal(err)
		}
		if rt.OverheadPct >= rr.OverheadPct {
			b.Fatalf("%s: Table I shape violated: %.2f >= %.2f", name, rt.OverheadPct, rr.OverheadPct)
		}
	}
}

// Table I — per-benchmark testable-vs-traditional BIST overhead.
func BenchmarkTableI_ex1(b *testing.B)    { benchBoth(b, "ex1") }
func BenchmarkTableI_ex2(b *testing.B)    { benchBoth(b, "ex2") }
func BenchmarkTableI_tseng1(b *testing.B) { benchBoth(b, "tseng1") }
func BenchmarkTableI_tseng2(b *testing.B) { benchBoth(b, "tseng2") }
func BenchmarkTableI_paulin(b *testing.B) { benchBoth(b, "paulin") }

// Table II — minimal-area BIST resource mixes for all five benchmarks.
func BenchmarkTableII(b *testing.B) {
	type pair struct{ name, want string }
	rows := make([]*Result, 0, 10)
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, name := range BenchmarkNames() {
			d, mods, err := Benchmark(name)
			if err != nil {
				b.Fatal(err)
			}
			for _, mode := range []Mode{TraditionalHLS, Testable} {
				cfg := DefaultConfig()
				cfg.Mode = mode
				res, err := d.Synthesize(mods, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if res.StyleSummary() == "none" {
					b.Fatal("no BIST resources")
				}
				rows = append(rows, res)
			}
		}
	}
	_ = rows
}

// Table III — RALLOC, SYNTEST and our flow on the Paulin benchmark.
func BenchmarkTableIII(b *testing.B) {
	bench := benchdata.Paulin()
	g := bench.Graph
	mb, err := bench.Modules()
	if err != nil {
		b.Fatal(err)
	}
	smb, err := modassign.FromMap(g, baselines.PaulinSyntestModules())
	if err != nil {
		b.Fatal(err)
	}
	d, mods, _ := Benchmark("paulin")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ral, err := baselines.RALLOC(g, mb)
		if err != nil {
			b.Fatal(err)
		}
		syn, err := baselines.SYNTEST(g, smb)
		if err != nil {
			b.Fatal(err)
		}
		ours, err := d.Synthesize(mods, DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if ours.NumRegisters() >= ral.Binding.NumRegisters() ||
			ours.NumRegisters() >= syn.Binding.NumRegisters() {
			b.Fatal("Table III shape violated: ours must use fewest registers")
		}
	}
}

// Figure 1 — I-path embedding enumeration on a generic configuration.
func BenchmarkFig1_IPaths(b *testing.B) {
	dp := builtDatapath(b, "ex1", false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range dp.Modules {
			if len(bist.Embeddings(dp, m.Name, true)) == 0 {
				b.Fatal("no embeddings")
			}
		}
	}
}

// Figure 2 — the running example's scheduled DFG and lifetimes.
func BenchmarkFig2_DFG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench := benchdata.Ex1()
		if _, err := bench.Graph.Lifetimes(); err != nil {
			b.Fatal(err)
		}
		if bench.Graph.Text() == "" {
			b.Fatal("empty text")
		}
	}
}

// Figure 3 — shared-head/tail discovery on ex1.
func BenchmarkFig3_Sharing(b *testing.B) {
	bench := benchdata.Ex1()
	mb, err := bench.Modules()
	if err != nil {
		b.Fatal(err)
	}
	rb, err := regassign.Bind(bench.Graph, mb, regassign.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sh := regassign.NewSharing(bench.Graph, mb)
		total := 0
		for _, r := range rb.Registers {
			total += sh.SDReg(r.Vars)
		}
		if total == 0 {
			b.Fatal("no sharing")
		}
	}
}

// Figure 4 — conflict graph with SD and MCS annotations.
func BenchmarkFig4_ConflictGraph(b *testing.B) {
	bench := benchdata.Ex1()
	mb, err := bench.Modules()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cg, err := regassign.ConflictGraph(bench.Graph)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := bench.Graph.MaxCliqueSize(); err != nil {
			b.Fatal(err)
		}
		sh := regassign.NewSharing(bench.Graph, mb)
		for _, v := range bench.Graph.AllocVars() {
			_ = sh.SDVar(v)
		}
		if cg.NumVertices() != 8 {
			b.Fatal("wrong conflict graph")
		}
	}
}

// Figure 5 — both ex1 data paths with their minimal BIST solutions.
func BenchmarkFig5_DataPaths(b *testing.B) {
	d, mods, _ := Benchmark("ex1")
	for i := 0; i < b.N; i++ {
		for _, mode := range []Mode{Testable, TraditionalHLS} {
			cfg := DefaultConfig()
			cfg.Mode = mode
			res, err := d.Synthesize(mods, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if res.NetlistText() == "" {
				b.Fatal("empty netlist")
			}
		}
	}
}

// Figure 6 — merge-case classification.
func BenchmarkFig6_MergeCases(b *testing.B) {
	bench := benchdata.Ex1()
	mb, err := bench.Modules()
	if err != nil {
		b.Fatal(err)
	}
	vars := bench.Graph.AllocVars()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, u := range vars {
			for _, v := range vars[j+1:] {
				_ = interconnect.ClassifyMerge(bench.Graph, mb, u, v)
			}
		}
	}
}

// Ablations — each disabled mechanism over a fixed random set.
func benchAblation(b *testing.B, mut func(*Config)) {
	b.Helper()
	graphs := make([]*DFG, 0, 8)
	for seed := int64(1); seed <= 8; seed++ {
		g, err := benchdata.Random(benchdata.DefaultRandomConfig(seed))
		if err != nil {
			b.Fatal(err)
		}
		d, err := ParseDFG(g.Text())
		if err != nil {
			b.Fatal(err)
		}
		graphs = append(graphs, d)
	}
	cfg := DefaultConfig()
	mut(&cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, d := range graphs {
			if _, err := d.SynthesizeAuto(cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkAblation_Full(b *testing.B) { benchAblation(b, func(*Config) {}) }
func BenchmarkAblation_NoSharing(b *testing.B) {
	benchAblation(b, func(c *Config) { c.Sharing = false; c.CaseOverrides = false })
}
func BenchmarkAblation_NoCases(b *testing.B) {
	benchAblation(b, func(c *Config) { c.CaseOverrides = false })
}
func BenchmarkAblation_NoLemma2(b *testing.B) {
	benchAblation(b, func(c *Config) { c.AvoidCBILBO = false })
}
func BenchmarkAblation_Unweighted(b *testing.B) {
	benchAblation(b, func(c *Config) { c.WeightedInterconnect = false })
}
func BenchmarkAblation_Traditional(b *testing.B) {
	benchAblation(b, func(c *Config) { c.Mode = TraditionalHLS })
}

// --- component micro-benchmarks ---

func builtDatapath(b *testing.B, name string, traditional bool) *datapath.Datapath {
	b.Helper()
	bench := benchdata.ByName(name)
	mb, err := bench.Modules()
	if err != nil {
		b.Fatal(err)
	}
	var rb *regassign.Binding
	if traditional {
		rb, err = regassign.Traditional(bench.Graph)
	} else {
		rb, err = regassign.Bind(bench.Graph, mb, regassign.DefaultOptions())
	}
	if err != nil {
		b.Fatal(err)
	}
	ib, err := interconnect.Bind(bench.Graph, mb, rb, regassign.NewSharing(bench.Graph, mb))
	if err != nil {
		b.Fatal(err)
	}
	dp, err := datapath.Build(bench.Graph, mb, rb, ib, 8)
	if err != nil {
		b.Fatal(err)
	}
	return dp
}

func BenchmarkRegisterBind(b *testing.B) {
	bench := benchdata.Tseng1()
	mb, err := bench.Modules()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := regassign.Bind(bench.Graph, mb, regassign.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBISTOptimize(b *testing.B) {
	dp := builtDatapath(b, "tseng1", false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bist.Optimize(dp, bist.DefaultOptions(8)); err != nil {
			b.Fatal(err)
		}
	}
}

// Multi-objective search — the exhaustive Pareto walk on the largest
// benchmark space (paulin, 41472 embedding combinations), producing the
// full non-dominated front with per-leaf session scheduling.
func BenchmarkOptimizePareto(b *testing.B) {
	dp := builtDatapath(b, "paulin", false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		front, err := bist.OptimizePareto(context.Background(), dp, bist.DefaultOptions(8))
		if err != nil {
			b.Fatal(err)
		}
		if len(front) != 5 {
			b.Fatalf("front has %d members, want 5", len(front))
		}
	}
}

// Full-pipeline Pareto synthesis, including front verification-ready
// Result assembly (points, overheads, sessions).
func BenchmarkSynthesizePareto(b *testing.B) {
	d, mods, err := Benchmark("paulin")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := d.SynthesizePareto(mods, DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Pareto) != 5 {
			b.Fatalf("front has %d points, want 5", len(res.Pareto))
		}
	}
}

func BenchmarkDatapathSimulate(b *testing.B) {
	dp := builtDatapath(b, "paulin", false)
	in := map[string]uint64{"x": 1, "u": 20, "y": 1, "dx": 1, "a": 5, "k3": 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dp.Simulate(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFaultCoverage(b *testing.B) {
	dp := builtDatapath(b, "ex1", false)
	plan, err := bist.Optimize(dp, bist.DefaultOptions(8))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bistgen.Coverage(dp, plan, 63, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLFSR(b *testing.B) {
	l, err := bistgen.NewLFSR(16, 0xACE1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Next()
	}
}

func BenchmarkFullFlowRandom(b *testing.B) {
	for _, size := range []int{5, 8, 12} {
		b.Run(fmt.Sprintf("steps%d", size), func(b *testing.B) {
			g, err := benchdata.Random(benchdata.RandomConfig{Seed: 9, Steps: size, OpsPerStep: 3, Inputs: 4})
			if err != nil {
				b.Fatal(err)
			}
			d, err := ParseDFG(g.Text())
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.SynthesizeAuto(DefaultConfig()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Gate-level extension — elaborate each benchmark's BIST plan to gates
// and fault-simulate one module per iteration.
func BenchmarkGateLevel(b *testing.B) {
	d, mods, _ := Benchmark("ex1")
	res, err := d.Synthesize(mods, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := res.GateLevel(60, 1)
		if err != nil {
			b.Fatal(err)
		}
		if rep.TotalGates == 0 {
			b.Fatal("empty netlist")
		}
	}
}

func BenchmarkGateElaboration(b *testing.B) {
	dp := builtDatapath(b, "paulin", false)
	plan, err := bist.Optimize(dp, bist.DefaultOptions(8))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := elab.Build(dp, plan); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGateSimulateNormal(b *testing.B) {
	dp := builtDatapath(b, "ex1", false)
	d, err := elab.Build(dp, nil)
	if err != nil {
		b.Fatal(err)
	}
	in := map[string]uint64{"a": 1, "b": 2, "e": 3, "g": 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.RunNormal(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerilogEmission(b *testing.B) {
	dp := builtDatapath(b, "tseng1", false)
	d, err := elab.Build(dp, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(verilog.Gates(d.Net, "t")) == 0 || len(verilog.RTL(dp)) == 0 {
			b.Fatal("empty emission")
		}
	}
}

func BenchmarkForceDirectedSchedule(b *testing.B) {
	bench := benchdata.Paulin()
	g := bench.Graph.Clone()
	for _, o := range g.Ops() {
		o.Step = 0
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.ForceDirected(g, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// Exhaustive binder-optimality sweep on ex1 (36 minimum bindings, full
// pipeline each).
func BenchmarkOptimalitySweepEx1(b *testing.B) {
	bench := benchdata.ByName("ex1")
	mb, err := bench.Modules()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parts, complete, err := regassign.EnumerateMinimumBindings(bench.Graph, 0)
		if err != nil || !complete {
			b.Fatal(err)
		}
		for _, p := range parts {
			rb, err := regassign.BindingFromPartition(bench.Graph, p)
			if err != nil {
				b.Fatal(err)
			}
			ib, err := interconnect.Bind(bench.Graph, mb, rb, nil)
			if err != nil {
				b.Fatal(err)
			}
			dp, err := datapath.Build(bench.Graph, mb, rb, ib, 8)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := bist.Optimize(dp, bist.DefaultOptions(8)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// COP testability prediction for every module of tseng1.
func BenchmarkCOPPrediction(b *testing.B) {
	dp := builtDatapath(b, "tseng1", false)
	plan, err := bist.Optimize(dp, bist.DefaultOptions(8))
	if err != nil {
		b.Fatal(err)
	}
	d, err := elab.Build(dp, plan)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range dp.Modules {
			if _, _, err := d.PredictCoverage(m.Name, 250); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// Expression-language compilation of the HAL benchmark.
func BenchmarkLangCompile(b *testing.B) {
	src := `
		x1 = x + dx
		u1 = u - 3*x*u*dx - 3*y*dx
		y1 = y + u*dx
		c  = x1 < a
	`
	for i := 0; i < b.N; i++ {
		if _, err := Compile("hal", src, false); err != nil {
			b.Fatal(err)
		}
	}
}

// Behavioral optimization passes on a long reduction chain.
func BenchmarkOptBalance(b *testing.B) {
	d, err := Compile("chain", "y = a+b+c+e+f+g+h+i+j+k+l+m\n", false)
	if err != nil {
		b.Fatal(err)
	}
	_ = d
	g, err := lang.Compile("chain", "y = a+b+c+e+f+g+h+i+j+k+l+m\n", lang.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := opt.Balance(g); err != nil {
			b.Fatal(err)
		}
	}
}

// Scan-vs-BIST comparison across the benchmark set.
func BenchmarkScanComparison(b *testing.B) {
	type built struct {
		dp   *datapath.Datapath
		plan *bist.Plan
	}
	var all []built
	for _, name := range BenchmarkNames() {
		dp := builtDatapath(b, name, false)
		plan, err := bist.Optimize(dp, bist.DefaultOptions(8))
		if err != nil {
			b.Fatal(err)
		}
		all = append(all, built{dp, plan})
	}
	m := area.Default(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, x := range all {
			c := scan.Compare(x.dp, x.plan, m, 250)
			if c.SpeedUp() <= 1 {
				b.Fatal("speedup must exceed 1")
			}
		}
	}
}

// --- result cache benchmarks ---

// Canonical cache-key fingerprinting of the largest paper benchmark —
// the fixed cost every cache-enabled synthesis pays, hit or miss.
func BenchmarkCacheKey(b *testing.B) {
	d, mods, err := Benchmark("paulin")
	if err != nil {
		b.Fatal(err)
	}
	mb, err := d.moduleBinding(mods)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cacheKey(d.g, mb, cfg)
	}
}

// Serving paulin from the in-memory layer: key + LRU lookup + the
// per-caller deep copy of the exported Result fields.
func BenchmarkCacheHitMemory(b *testing.B) {
	c, err := NewCache(CacheOptions{})
	if err != nil {
		b.Fatal(err)
	}
	d, mods, err := Benchmark("paulin")
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Cache = c
	if _, err := d.Synthesize(mods, cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := d.Synthesize(mods, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Stats.CacheHit {
			b.Fatal("memory layer missed")
		}
	}
}

// Serving paulin from the persistent layer: a fresh cache per iteration
// forces the disk read, plan reconstruction and the cheap deterministic
// phases that revalidate it.
func BenchmarkCacheHitDisk(b *testing.B) {
	dir := b.TempDir()
	seed, err := NewCache(CacheOptions{Dir: dir})
	if err != nil {
		b.Fatal(err)
	}
	d, mods, err := Benchmark("paulin")
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Cache = seed
	if _, err := d.Synthesize(mods, cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := NewCache(CacheOptions{Dir: dir})
		if err != nil {
			b.Fatal(err)
		}
		cfg.Cache = c
		res, err := d.Synthesize(mods, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Stats.CacheHit {
			b.Fatal("disk layer missed")
		}
	}
}

// Fault-efficiency study: random grading + exhaustive top-up of a 4-bit
// divider.
func BenchmarkATPGTopUp(b *testing.B) {
	cone, err := atpg.ConeForKind(func(n *gates.Netlist, x, y []gates.Sig) []gates.Sig {
		return n.DivBus(x, y)
	}, 4)
	if err != nil {
		b.Fatal(err)
	}
	var faults []gates.StuckAt
	for _, g := range cone.Net.Gates {
		faults = append(faults, gates.StuckAt{Sig: g.Out, Value: false}, gates.StuckAt{Sig: g.Out, Value: true})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := atpg.TopUp(cone, faults, 0)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Aborted != 0 {
			b.Fatal("aborted with unlimited budget")
		}
	}
}
