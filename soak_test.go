package bistpath

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"bistpath/internal/benchdata"
)

// TestStochasticSoak is the nightly endurance run: it keeps generating
// seeded preset designs (m/l/xl round-robin), synthesizes each with the
// stochastic search, and pushes every plan through the full verification
// harness until the BISTPATH_SOAK duration expires. Any violation is
// written to BISTPATH_SOAK_OUT as a replayable (preset, seed, DFG text)
// record, which the nightly workflow uploads as an artifact.
//
// The test is skipped unless BISTPATH_SOAK is set — it exists for the
// scheduled workflow, not the per-PR pipeline.
func TestStochasticSoak(t *testing.T) {
	spec := os.Getenv("BISTPATH_SOAK")
	if spec == "" {
		t.Skip("set BISTPATH_SOAK to a duration (e.g. 10m) to run the stochastic soak")
	}
	dur, err := time.ParseDuration(spec)
	if err != nil {
		t.Fatalf("bad BISTPATH_SOAK %q: %v", spec, err)
	}
	outDir := os.Getenv("BISTPATH_SOAK_OUT")

	record := func(preset string, seed int64, detail string) {
		if outDir == "" {
			return
		}
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			t.Errorf("soak: mkdir %s: %v", outDir, err)
			return
		}
		name := filepath.Join(outDir, fmt.Sprintf("%s-seed%d.txt", preset, seed))
		if err := os.WriteFile(name, []byte(detail), 0o644); err != nil {
			t.Errorf("soak: write %s: %v", name, err)
		}
	}

	presets := []string{"m", "l", "xl"}
	deadline := time.Now().Add(dur)
	verified, skipped := 0, 0
	for seed := int64(1); time.Now().Before(deadline); seed++ {
		preset := presets[int(seed)%len(presets)]
		cfg, ok := benchdata.Preset(preset, seed)
		if !ok {
			t.Fatalf("unknown preset %q", preset)
		}
		g, mb, err := benchdata.RandomWithModules(cfg)
		if err != nil {
			skipped++ // degenerate shape for this seed; the next one differs
			continue
		}
		mods := make(map[string]string)
		for _, m := range mb.Modules {
			for _, op := range m.Ops {
				mods[op] = m.Name
			}
		}
		d := &DFG{g: g}
		scfg := DefaultConfig()
		scfg.Search = SearchStochastic
		scfg.Seed = seed
		res, err := d.Synthesize(mods, scfg)
		if err != nil {
			if errors.Is(err, ErrNoEmbedding) {
				skipped++ // a bounded fraction of random designs has no I-path
				continue
			}
			record(preset, seed, fmt.Sprintf("preset %s seed %d: synthesize: %v\n\n%s", preset, seed, err, g.Text()))
			t.Errorf("preset %s seed %d: synthesize: %v", preset, seed, err)
			continue
		}
		// Full harness minus the binding oracle (its enumeration is not
		// meaningful at these sizes): invariants, functional cross-check,
		// and the worker-count conformance re-run of the stochastic search.
		rep, err := res.Verify(context.Background(), VerifyOptions{BindingLimit: -1})
		if err != nil {
			t.Fatalf("preset %s seed %d: verify: %v", preset, seed, err)
		}
		if !rep.OK() {
			record(preset, seed, fmt.Sprintf("preset %s seed %d\n\n%s\n%s", preset, seed, rep.Summary(), g.Text()))
			t.Errorf("preset %s seed %d:\n%s", preset, seed, rep.Summary())
		}
		verified++
	}
	if verified == 0 {
		t.Fatalf("soak verified no designs in %s (%d skipped)", dur, skipped)
	}
	t.Logf("soak: %d stochastic plans verified, %d seeds skipped", verified, skipped)
}
