package bistpath

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"
)

// randomProgram emits a random single-assignment expression program: a
// pool of inputs, a few statements reusing earlier results, constants
// sprinkled in.
func randomProgram(rng *rand.Rand) string {
	inputs := []string{"a", "b", "c", "d", "e"}
	avail := append([]string(nil), inputs...)
	ops := []string{"+", "-", "*", "&", "|", "^"}
	var expr func(depth int) string
	expr = func(depth int) string {
		if depth <= 0 || rng.Intn(3) == 0 {
			if rng.Intn(6) == 0 {
				return fmt.Sprint(1 + rng.Intn(7))
			}
			return avail[rng.Intn(len(avail))]
		}
		return "(" + expr(depth-1) + " " + ops[rng.Intn(len(ops))] + " " + expr(depth-1) + ")"
	}
	var sb strings.Builder
	n := 2 + rng.Intn(4)
	for i := 0; i < n; i++ {
		target := fmt.Sprintf("t%d", i)
		// Guarantee at least one operator on the right-hand side.
		rhs := avail[rng.Intn(len(avail))] + " " + ops[rng.Intn(len(ops))] + " " + expr(2)
		fmt.Fprintf(&sb, "%s = %s\n", target, rhs)
		avail = append(avail, target)
	}
	return sb.String()
}

// TestEndToEndFuzz drives the whole public pipeline on random programs:
// compile (with and without CSE), optimize, balance, schedule under
// random resource limits, synthesize in both modes, and check that the
// RTL-level simulator AND the gate-level netlist agree with direct
// evaluation on random vectors.
func TestEndToEndFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rng := rand.New(rand.NewSource(20260708))
	skips := 0
	for trial := 0; trial < 25; trial++ {
		src := randomProgram(rng)
		d, err := Compile(fmt.Sprintf("fuzz%d", trial), src, rng.Intn(2) == 0)
		if err != nil {
			t.Fatalf("trial %d: compile: %v\n%s", trial, err, src)
		}
		if rng.Intn(2) == 0 {
			if _, err := d.Optimize(); err != nil {
				t.Fatalf("trial %d: optimize: %v\n%s", trial, err, src)
			}
		}
		if rng.Intn(2) == 0 {
			if _, err := d.Balance(); err != nil {
				t.Fatalf("trial %d: balance: %v\n%s", trial, err, src)
			}
		}
		limits := map[string]int{"*": 1 + rng.Intn(2), "+": 1 + rng.Intn(2)}
		if err := d.AutoSchedule(limits); err != nil {
			t.Fatalf("trial %d: schedule: %v\n%s", trial, err, src)
		}
		cfg := DefaultConfig()
		if rng.Intn(2) == 0 {
			cfg.Mode = TraditionalHLS
		}
		res, err := d.SynthesizeAuto(cfg)
		if err != nil {
			// A module can legitimately end up untestable when a binding
			// merges all of its operand variables into one register (no
			// distinct heads). Rare; tolerate a bounded number.
			if strings.Contains(err.Error(), "no BIST embedding") {
				skips++
				if skips > 5 {
					t.Fatalf("too many untestable designs (%d); last: %v\n%s", skips, err, src)
				}
				continue
			}
			t.Fatalf("trial %d: synthesize: %v\n%s", trial, err, src)
		}
		if err := res.SelfCheck(10, int64(trial)); err != nil {
			t.Fatalf("trial %d: RTL self-check: %v\n%s", trial, err, src)
		}
		// Gate level once per trial: DumpVCD runs the gate simulator and
		// returns the outputs; they must match the RTL simulator's.
		in := make(map[string]uint64)
		for _, name := range []string{"a", "b", "c", "d", "e"} {
			in[name] = uint64(rng.Intn(251))
		}
		for k := uint64(1); k <= 7; k++ {
			in[fmt.Sprintf("k%d", k)] = k
		}
		rtl, err := res.Simulate(in)
		if err != nil {
			t.Fatalf("trial %d: simulate: %v", trial, err)
		}
		gate, err := res.DumpVCD(in, io.Discard)
		if err != nil {
			t.Fatalf("trial %d: gate sim: %v", trial, err)
		}
		for o, v := range rtl {
			if gate[o] != v {
				t.Fatalf("trial %d: output %s: gate %d vs RTL %d\n%s", trial, o, gate[o], v, src)
			}
		}
	}
}

// TestFuzzProgramsCompile pins the generator itself: every emitted
// program is parseable and references only declared names.
func TestFuzzProgramsCompile(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		src := randomProgram(rng)
		if _, err := Compile("p", src, true); err != nil {
			t.Fatalf("generator produced invalid program: %v\n%s", err, src)
		}
	}
}
