package bistpath

import (
	"context"
	"fmt"
	"strings"

	"bistpath/internal/area"
	"bistpath/internal/benchdata"
	"bistpath/internal/bist"
	"bistpath/internal/datapath"
	"bistpath/internal/verify"
)

// VerifyOptions configures Result.Verify. The zero value selects the
// defaults noted on each field.
type VerifyOptions struct {
	// Vectors is the number of random input vectors simulated against
	// direct DFG evaluation (default 100; negative disables).
	Vectors int
	// Seed seeds the vector generator; the stream is a pure function of
	// it, so failures replay exactly (default 1).
	Seed int64
	// Workers lists the BIST-search worker counts that must all
	// reproduce the plan byte for byte (default {1, 2, 8}).
	Workers []int
	// EmbeddingCap bounds the exhaustive embedding oracle; above it the
	// oracle is skipped (default 4<<20 combinations).
	EmbeddingCap int64
	// BindingLimit bounds the exhaustive register-binding oracle
	// (default 20000 bindings; negative disables it).
	BindingLimit int
	// SkipOracles runs only the invariants and the functional
	// cross-check — the fast path for large sweeps.
	SkipOracles bool
}

// VerifyReport is the outcome of one verification run; see the field
// comments on the internal verify.Report for the exact semantics.
// Violations is empty iff every executed check passed.
type VerifyReport struct {
	Design     string   `json:"design"`
	Violations []string `json:"violations"`
	Vectors    int      `json:"vectors"`

	PlanCost        int   `json:"plan_cost"`
	PlanExact       bool  `json:"plan_exact"`
	EmbeddingCombos int64 `json:"embedding_combos"`
	EmbeddingMin    int   `json:"embedding_min"`
	EmbeddingRan    bool  `json:"embedding_oracle_ran"`

	WorkersChecked []int `json:"workers_checked,omitempty"`

	BindingRan      bool `json:"binding_oracle_ran"`
	BindingCount    int  `json:"binding_count"`
	BindingFeasible int  `json:"binding_feasible"`
	BindingBest     int  `json:"binding_best"`
	BindingWorst    int  `json:"binding_worst"`
	BindingComplete bool `json:"binding_complete"`

	inner *verify.Report
}

// OK reports whether every executed check passed.
func (r *VerifyReport) OK() bool { return len(r.Violations) == 0 }

// Err returns nil when the report is clean, or an error summarizing
// the violations.
func (r *VerifyReport) Err() error { return r.inner.Err() }

// Summary renders the report as an indented human-readable block.
func (r *VerifyReport) Summary() string { return r.inner.Summary() }

// Verify runs the differential verification harness against this
// result: structural plan invariants, a functional cross-check of the
// synthesized data path against direct DFG evaluation, and — unless
// opts.SkipOracles is set — brute-force oracles (exhaustive embedding
// enumeration, worker-count conformance, exhaustive minimum-register
// binding sweep). The returned error reports infrastructure failures
// only (context cancellation); verification failures are collected in
// VerifyReport.Violations.
//
// The harness re-derives every property independently of the synthesis
// pipeline, so a clean report is evidence the heuristics behaved, not
// an echo of their own bookkeeping.
func (r *Result) Verify(ctx context.Context, opts VerifyOptions) (*VerifyReport, error) {
	vo := verify.Options{
		Model:            area.Default(r.Width),
		AllowPadTPG:      r.cfg.AllowPadTPG,
		MinimizeSessions: r.cfg.MinimizeSessions,
		Vectors:          opts.Vectors,
		Seed:             opts.Seed,
		Workers:          opts.Workers,
		EmbeddingCap:     opts.EmbeddingCap,
		BindingLimit:     opts.BindingLimit,
		SkipOracles:      opts.SkipOracles,
	}
	if vo.Seed == 0 {
		vo.Seed = 1
	}
	if vo.Workers == nil && !vo.SkipOracles {
		vo.Workers = []int{1, 2, 8}
	}
	if r.Stats.SearchStrategy == "stochastic" {
		if r.cfg.TimeBudget > 0 {
			// A wall-clock-truncated run is not reproducible, so the
			// parallel-match oracle has nothing to conform against.
			vo.Workers = nil
		} else {
			// Conformance must re-run the strategy that produced the plan:
			// the stochastic search with this result's seed and budgets,
			// which is deterministic at any worker count.
			cfg := r.cfg
			model := vo.Model
			vo.Search = func(ctx context.Context, dp *datapath.Datapath, workers int) (*bist.Plan, error) {
				return bist.OptimizeStochasticCtx(ctx, dp, bist.Options{
					Model:            model,
					AllowPadHeads:    cfg.AllowPadTPG,
					MinimizeSessions: cfg.MinimizeSessions,
					Workers:          workers,
					Seed:             cfg.Seed,
					MaxGenerations:   cfg.MaxGenerations,
				})
			}
		}
	}
	rep, err := verify.Run(ctx, r.dp.Graph(), r.mb, r.dp, r.plan, vo)
	if rep == nil {
		return nil, err
	}
	out := &VerifyReport{
		Design:          rep.Design,
		Violations:      rep.Violations,
		Vectors:         rep.Vectors,
		PlanCost:        rep.PlanCost,
		PlanExact:       rep.PlanExact,
		EmbeddingCombos: rep.EmbeddingCombos,
		EmbeddingMin:    rep.EmbeddingMin,
		EmbeddingRan:    rep.EmbeddingRan,
		WorkersChecked:  rep.WorkersChecked,
		BindingRan:      rep.BindingRan,
		BindingCount:    rep.BindingCount,
		BindingFeasible: rep.BindingFeasible,
		BindingBest:     rep.BindingBest,
		BindingWorst:    rep.BindingWorst,
		BindingComplete: rep.BindingComplete,
		inner:           rep,
	}
	return out, err
}

// ParetoVerifyReport is the outcome of Result.VerifyPareto. Violations
// is empty iff every executed check passed.
type ParetoVerifyReport struct {
	Design     string   `json:"design"`
	Violations []string `json:"violations"`
	FrontSize  int      `json:"front_size"`

	// OracleRan reports whether the exhaustive enumeration ran; when it
	// did, OracleCombos is the combination count it walked and
	// OracleFront the size of the ground-truth non-dominated set.
	OracleRan    bool  `json:"oracle_ran"`
	OracleCombos int64 `json:"oracle_combos"`
	OracleFront  int   `json:"oracle_front"`
}

// OK reports whether every executed check passed.
func (r *ParetoVerifyReport) OK() bool { return len(r.Violations) == 0 }

// Err returns nil when the report is clean, or an error summarizing the
// violations.
func (r *ParetoVerifyReport) Err() error {
	if r.OK() {
		return nil
	}
	return fmt.Errorf("bistpath: pareto verification of %s found %d violations:\n  %s",
		r.Design, len(r.Violations), strings.Join(r.Violations, "\n  "))
}

// VerifyPareto runs the multi-objective verification harness against a
// ParetoFront result: every front member must pass the full structural
// invariants and carry the cost vector the harness independently
// recomputes (styles from raw duties, a re-implemented session
// scheduler, peak power from the weight map), the front must be mutually
// non-dominated in canonical order — and, when the embedding space fits
// under opts.EmbeddingCap and every member is Exact, an exhaustive
// enumeration must reproduce the front's vector set exactly.
//
// Results without a front (any other objective, or a cache-served copy)
// fail with ErrNoPareto; other errors report infrastructure failures
// (context cancellation). Verification failures are collected in
// ParetoVerifyReport.Violations.
func (r *Result) VerifyPareto(ctx context.Context, opts VerifyOptions) (*ParetoVerifyReport, error) {
	if len(r.paretoPlans) == 0 {
		return nil, fmt.Errorf("%w (objective %s)", ErrNoPareto, r.cfg.Objective)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	model := area.Default(r.Width)
	power := bist.PowerWeights(model, r.dp, r.cfg.Power)
	rep := &ParetoVerifyReport{Design: r.Name, FrontSize: len(r.paretoPlans)}
	rep.Violations = verify.CheckFront(r.dp.Graph(), r.mb, r.dp, r.paretoPlans, power, model, r.cfg.AllowPadTPG)

	// The published Pareto points must mirror the underlying plans.
	if len(r.Pareto) != len(r.paretoPlans) {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("pareto: result publishes %d points for %d plans", len(r.Pareto), len(r.paretoPlans)))
	} else {
		for i, pt := range r.Pareto {
			if bist.CostVector(pt.Cost) != r.paretoPlans[i].Cost {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("pareto: point %d publishes %v, plan has %v", i, pt.Cost, r.paretoPlans[i].Cost))
			}
		}
	}

	exact := true
	for _, p := range r.paretoPlans {
		if !p.Exact {
			exact = false
			break
		}
	}
	comboCap := opts.EmbeddingCap
	if comboCap == 0 {
		comboCap = 1 << 16 // each oracle leaf schedules sessions, so the default cap is tighter than Verify's
	}
	if exact && comboCap > 0 {
		oracle, err := verify.ParetoOracle(ctx, r.dp, model, power, r.cfg.AllowPadTPG, comboCap)
		if err != nil {
			return nil, err
		}
		if oracle.Feasible {
			rep.OracleRan = true
			rep.OracleCombos = oracle.Combos
			rep.OracleFront = len(oracle.Front)
			rep.Violations = append(rep.Violations, verify.CheckFrontAgainstOracle(r.paretoPlans, oracle)...)
		}
	}
	return rep, ctx.Err()
}

// RandomDesign generates a deterministic random scheduled DFG and
// module assignment for conformance sweeps. The seed fully determines
// the design shape (steps, parallelism, operator mix) via
// benchdata.SweepConfig, so sweeps are reproducible by seed range
// alone. The second return value is the op→module map accepted by
// SynthesizeCtx.
func RandomDesign(seed int64) (*DFG, map[string]string, error) {
	g, mb, err := benchdata.RandomWithModules(benchdata.SweepConfig(seed))
	if err != nil {
		return nil, nil, err
	}
	mods := make(map[string]string)
	for _, m := range mb.Modules {
		for _, op := range m.Ops {
			mods[op] = m.Name
		}
	}
	return &DFG{g: g}, mods, nil
}
