package bistpath

import (
	"context"

	"bistpath/internal/area"
	"bistpath/internal/benchdata"
	"bistpath/internal/verify"
)

// VerifyOptions configures Result.Verify. The zero value selects the
// defaults noted on each field.
type VerifyOptions struct {
	// Vectors is the number of random input vectors simulated against
	// direct DFG evaluation (default 100; negative disables).
	Vectors int
	// Seed seeds the vector generator; the stream is a pure function of
	// it, so failures replay exactly (default 1).
	Seed int64
	// Workers lists the BIST-search worker counts that must all
	// reproduce the plan byte for byte (default {1, 2, 8}).
	Workers []int
	// EmbeddingCap bounds the exhaustive embedding oracle; above it the
	// oracle is skipped (default 4<<20 combinations).
	EmbeddingCap int64
	// BindingLimit bounds the exhaustive register-binding oracle
	// (default 20000 bindings; negative disables it).
	BindingLimit int
	// SkipOracles runs only the invariants and the functional
	// cross-check — the fast path for large sweeps.
	SkipOracles bool
}

// VerifyReport is the outcome of one verification run; see the field
// comments on the internal verify.Report for the exact semantics.
// Violations is empty iff every executed check passed.
type VerifyReport struct {
	Design     string   `json:"design"`
	Violations []string `json:"violations"`
	Vectors    int      `json:"vectors"`

	PlanCost        int   `json:"plan_cost"`
	PlanExact       bool  `json:"plan_exact"`
	EmbeddingCombos int64 `json:"embedding_combos"`
	EmbeddingMin    int   `json:"embedding_min"`
	EmbeddingRan    bool  `json:"embedding_oracle_ran"`

	WorkersChecked []int `json:"workers_checked,omitempty"`

	BindingRan      bool `json:"binding_oracle_ran"`
	BindingCount    int  `json:"binding_count"`
	BindingFeasible int  `json:"binding_feasible"`
	BindingBest     int  `json:"binding_best"`
	BindingWorst    int  `json:"binding_worst"`
	BindingComplete bool `json:"binding_complete"`

	inner *verify.Report
}

// OK reports whether every executed check passed.
func (r *VerifyReport) OK() bool { return len(r.Violations) == 0 }

// Err returns nil when the report is clean, or an error summarizing
// the violations.
func (r *VerifyReport) Err() error { return r.inner.Err() }

// Summary renders the report as an indented human-readable block.
func (r *VerifyReport) Summary() string { return r.inner.Summary() }

// Verify runs the differential verification harness against this
// result: structural plan invariants, a functional cross-check of the
// synthesized data path against direct DFG evaluation, and — unless
// opts.SkipOracles is set — brute-force oracles (exhaustive embedding
// enumeration, worker-count conformance, exhaustive minimum-register
// binding sweep). The returned error reports infrastructure failures
// only (context cancellation); verification failures are collected in
// VerifyReport.Violations.
//
// The harness re-derives every property independently of the synthesis
// pipeline, so a clean report is evidence the heuristics behaved, not
// an echo of their own bookkeeping.
func (r *Result) Verify(ctx context.Context, opts VerifyOptions) (*VerifyReport, error) {
	vo := verify.Options{
		Model:            area.Default(r.Width),
		AllowPadTPG:      r.cfg.AllowPadTPG,
		MinimizeSessions: r.cfg.MinimizeSessions,
		Vectors:          opts.Vectors,
		Seed:             opts.Seed,
		Workers:          opts.Workers,
		EmbeddingCap:     opts.EmbeddingCap,
		BindingLimit:     opts.BindingLimit,
		SkipOracles:      opts.SkipOracles,
	}
	if vo.Seed == 0 {
		vo.Seed = 1
	}
	if vo.Workers == nil && !vo.SkipOracles {
		vo.Workers = []int{1, 2, 8}
	}
	rep, err := verify.Run(ctx, r.dp.Graph(), r.mb, r.dp, r.plan, vo)
	if rep == nil {
		return nil, err
	}
	out := &VerifyReport{
		Design:          rep.Design,
		Violations:      rep.Violations,
		Vectors:         rep.Vectors,
		PlanCost:        rep.PlanCost,
		PlanExact:       rep.PlanExact,
		EmbeddingCombos: rep.EmbeddingCombos,
		EmbeddingMin:    rep.EmbeddingMin,
		EmbeddingRan:    rep.EmbeddingRan,
		WorkersChecked:  rep.WorkersChecked,
		BindingRan:      rep.BindingRan,
		BindingCount:    rep.BindingCount,
		BindingFeasible: rep.BindingFeasible,
		BindingBest:     rep.BindingBest,
		BindingWorst:    rep.BindingWorst,
		BindingComplete: rep.BindingComplete,
		inner:           rep,
	}
	return out, err
}

// RandomDesign generates a deterministic random scheduled DFG and
// module assignment for conformance sweeps. The seed fully determines
// the design shape (steps, parallelism, operator mix) via
// benchdata.SweepConfig, so sweeps are reproducible by seed range
// alone. The second return value is the op→module map accepted by
// SynthesizeCtx.
func RandomDesign(seed int64) (*DFG, map[string]string, error) {
	g, mb, err := benchdata.RandomWithModules(benchdata.SweepConfig(seed))
	if err != nil {
		return nil, nil, err
	}
	mods := make(map[string]string)
	for _, m := range mb.Modules {
		for _, op := range m.Ops {
			mods[op] = m.Name
		}
	}
	return &DFG{g: g}, mods, nil
}
