package bistpath

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
)

// synthPareto synthesizes one benchmark under the ParetoFront objective.
func synthPareto(t *testing.T, name string, cfg Config) *Result {
	t.Helper()
	d, mods, err := Benchmark(name)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.SynthesizePareto(mods, cfg)
	if err != nil {
		t.Fatalf("%s: SynthesizePareto: %v", name, err)
	}
	return res
}

// The pinned ground truth: the exact non-dominated (area, sessions,
// peak power) vectors of the five paper benchmarks under the default
// configuration and power model. All five spaces fit under the
// exhaustive oracle's cap, so these fronts are enumeration-verified,
// not search echoes.
var goldenFronts = map[string][]CostVector{
	"ex1":    {{96, 2, 576}, {208, 1, 648}},
	"ex2":    {{208, 6, 768}, {304, 5, 1344}},
	"tseng1": {{208, 7, 768}, {224, 6, 768}},
	"tseng2": {{176, 4, 784}, {208, 3, 784}, {272, 2, 800}, {384, 2, 784}},
	"paulin": {{64, 4, 576}, {80, 3, 1152}, {96, 2, 672}, {96, 3, 576}, {240, 1, 1320}},
}

func TestSynthesizeParetoGoldenFronts(t *testing.T) {
	for name, want := range goldenFronts {
		res := synthPareto(t, name, DefaultConfig())
		got := make([]CostVector, len(res.Pareto))
		for i, pt := range res.Pareto {
			got[i] = pt.Cost
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: front %v, want %v", name, got, want)
		}
	}
}

// Every benchmark front passes the full verification harness: member
// invariants, independent cost recomputation, mutual non-domination —
// and the exhaustive enumerated oracle, which runs on all five designs.
func TestSynthesizeParetoVerifies(t *testing.T) {
	for _, name := range BenchmarkNames() {
		res := synthPareto(t, name, DefaultConfig())
		rep, err := res.VerifyPareto(context.Background(), VerifyOptions{})
		if err != nil {
			t.Fatalf("%s: VerifyPareto: %v", name, err)
		}
		if !rep.OK() {
			t.Errorf("%s: %v", name, rep.Err())
		}
		if !rep.OracleRan {
			t.Errorf("%s: oracle declined (%d combos) — the paper benchmarks must stay under the cap",
				name, rep.OracleCombos)
		}
		if rep.OracleFront != len(res.Pareto) {
			t.Errorf("%s: oracle front has %d vectors, search reported %d",
				name, rep.OracleFront, len(res.Pareto))
		}
	}
}

// The area-minimal front member IS the single-objective result: a
// Pareto run's primary plan must match plain synthesis in every
// observable (registers, styles, sessions, area), keeping the two
// entry points mutually consistent.
func TestParetoPrimaryPlanMatchesMinArea(t *testing.T) {
	for _, name := range BenchmarkNames() {
		pareto := synthPareto(t, name, DefaultConfig())
		d, mods, err := Benchmark(name)
		if err != nil {
			t.Fatal(err)
		}
		single, err := d.Synthesize(mods, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if pareto.BISTArea != single.BISTArea {
			t.Errorf("%s: pareto primary area %d, single-objective %d", name, pareto.BISTArea, single.BISTArea)
		}
		if !reflect.DeepEqual(pareto.Registers, single.Registers) {
			t.Errorf("%s: pareto primary registers diverge from single-objective synthesis", name)
		}
		if !reflect.DeepEqual(pareto.Sessions, single.Sessions) {
			t.Errorf("%s: pareto primary sessions %v, single-objective %v", name, pareto.Sessions, single.Sessions)
		}
		if !reflect.DeepEqual(pareto.StyleCounts, single.StyleCounts) {
			t.Errorf("%s: pareto primary styles %v, single-objective %v", name, pareto.StyleCounts, single.StyleCounts)
		}
	}
}

// WeightedSum picks the argmin of the weighted scalarization over the
// front, carries the cost vector on the Result, and publishes objective
// and weights in the JSON document.
func TestSynthesizeWeighted(t *testing.T) {
	front := synthPareto(t, "paulin", DefaultConfig())

	d, mods, err := Benchmark("paulin")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Objective = WeightedSum
	cfg.Weights = Weights{Area: 1, TestTime: 200, PeakPower: 0}
	res, err := d.Synthesize(mods, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost == nil {
		t.Fatal("weighted result has no cost vector")
	}
	if len(res.Pareto) != 0 {
		t.Error("weighted result must not publish a front")
	}
	score := func(c CostVector) int {
		return cfg.Weights.Area*c.Area + cfg.Weights.TestTime*c.TestTime + cfg.Weights.PeakPower*c.PeakPower
	}
	for _, pt := range front.Pareto {
		if score(pt.Cost) < score(*res.Cost) {
			t.Errorf("front member %v beats the weighted winner %v", pt.Cost, *res.Cost)
		}
	}
	doc, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"objective": "weighted"`, `"cost"`, `"weights"`} {
		if !strings.Contains(string(doc), want) {
			t.Errorf("weighted JSON lacks %s", want)
		}
	}
	// Zero weights normalize to the balanced default rather than
	// degenerating into "everything costs nothing".
	balanced := DefaultConfig()
	balanced.Objective = WeightedSum
	bres, err := d.Synthesize(mods, balanced)
	if err != nil {
		t.Fatal(err)
	}
	if bres.Cost == nil {
		t.Fatal("balanced weighted result has no cost vector")
	}
}

// A MinArea run must stay exactly as it always was: no cost vector, no
// front, and no multi-objective keys in its JSON — the byte-identity
// contract with pre-multi-objective releases.
func TestMinAreaResultHasNoObjectiveFields(t *testing.T) {
	d, mods, err := Benchmark("ex1")
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Synthesize(mods, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != nil || len(res.Pareto) != 0 {
		t.Fatal("pure-area result carries multi-objective state")
	}
	doc, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, banned := range []string{`"objective"`, `"weights"`, `"cost"`, `"pareto"`} {
		if strings.Contains(string(doc), banned) {
			t.Errorf("pure-area JSON contains %s", banned)
		}
	}
	if _, err := res.VerifyPareto(context.Background(), VerifyOptions{}); !errors.Is(err, ErrNoPareto) {
		t.Errorf("VerifyPareto on a MinArea result returned %v, want ErrNoPareto", err)
	}
}

// Malformed multi-objective configurations fail in the validate phase
// with ErrBadObjective.
func TestBadObjectiveConfigs(t *testing.T) {
	d, mods, err := Benchmark("ex1")
	if err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Objective = Objective(99) },
		func(c *Config) { c.Objective = WeightedSum; c.Weights = Weights{Area: -1} },
		func(c *Config) { c.Objective = ParetoFront; c.Power = map[string]int{"m1": -5} },
	}
	for i, mut := range bad {
		cfg := DefaultConfig()
		mut(&cfg)
		if _, err := d.Synthesize(mods, cfg); !errors.Is(err, ErrBadObjective) {
			t.Errorf("bad config %d returned %v, want ErrBadObjective", i, err)
		}
	}
	if _, err := ParseObjective("fastest"); !errors.Is(err, ErrBadObjective) {
		t.Errorf("ParseObjective(fastest) = %v, want ErrBadObjective", err)
	}
	for _, ok := range []string{"", "area", "weighted", "pareto"} {
		if _, err := ParseObjective(ok); err != nil {
			t.Errorf("ParseObjective(%q): %v", ok, err)
		}
	}
}

// Random-design conformance sweep: the search front must match the
// exhaustive oracle on every design whose space fits under the cap.
func TestParetoRandomSweepOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is oracle-bound")
	}
	checked := 0
	for seed := int64(1); seed <= 15; seed++ {
		d, mods, err := RandomDesign(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := d.SynthesizePareto(mods, DefaultConfig())
		if err != nil {
			if errors.Is(err, ErrNoEmbedding) {
				continue
			}
			t.Fatalf("seed %d: %v", seed, err)
		}
		rep, err := res.VerifyPareto(context.Background(), VerifyOptions{EmbeddingCap: 1 << 14})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !rep.OK() {
			t.Errorf("seed %d: %v", seed, rep.Err())
		}
		if rep.OracleRan {
			checked++
		}
	}
	if checked == 0 {
		t.Error("no random design fit under the oracle cap; the sweep verified nothing")
	}
}
