package bistpath

import (
	"context"
	"errors"
	"testing"
)

// FuzzParetoOracle drives the multi-objective pipeline from a
// (seed, flags) pair: a random design is synthesized under the
// ParetoFront objective and the reported front is checked against the
// harness's independent recomputation — and, whenever the embedding
// space is small enough, against the exhaustive enumerated oracle, which
// must reproduce the front's vector set exactly. The flags byte toggles
// mode and pad-TPG legality so the fuzzer explores both embedding
// universes.
func FuzzParetoOracle(f *testing.F) {
	f.Add(int64(1), byte(0))
	f.Add(int64(7), byte(1))
	f.Add(int64(23), byte(2))
	f.Add(int64(42), byte(3))
	f.Add(int64(124), byte(1))
	f.Fuzz(func(t *testing.T, seed int64, flags byte) {
		d, mods, err := RandomDesign(seed)
		if err != nil {
			t.Fatalf("seed %d: design generation failed: %v", seed, err)
		}
		cfg := DefaultConfig()
		if flags&1 != 0 {
			cfg.Mode = TraditionalHLS
		}
		if flags&2 != 0 {
			cfg.AllowPadTPG = false
		}
		res, err := d.SynthesizePareto(mods, cfg)
		if err != nil {
			if errors.Is(err, ErrNoEmbedding) {
				t.Skip()
			}
			t.Fatalf("seed %d flags %#x: %v", seed, flags, err)
		}
		rep, err := res.VerifyPareto(context.Background(), VerifyOptions{
			EmbeddingCap: 1 << 14, // keep each oracle walk sub-second
		})
		if err != nil {
			t.Fatalf("seed %d flags %#x: %v", seed, flags, err)
		}
		if !rep.OK() {
			t.Fatalf("seed %d flags %#x: %v", seed, flags, rep.Err())
		}
	})
}
