package bistpath

import (
	"fmt"
	"io"
	"math/rand"

	"bistpath/internal/elab"
	"bistpath/internal/verilog"
)

// GateModuleCoverage is the gate-level stuck-at coverage of one module
// under the synthesized BIST plan, alongside the COP-predicted coverage
// and the number of random-pattern-resistant faults the prediction
// flagged in advance.
type GateModuleCoverage struct {
	Module     string
	Faults     int
	Detected   int
	Predicted  float64 // COP expected coverage (%), computed before simulation
	HardFaults int     // faults with single-pattern detection probability < 1/patterns
}

// Pct returns the coverage percentage.
func (g GateModuleCoverage) Pct() float64 {
	if g.Faults == 0 {
		return 100
	}
	return float64(g.Detected) / float64(g.Faults) * 100
}

// GateLevelReport is the result of elaborating a synthesis result to
// gates and fault-simulating its BIST plan.
type GateLevelReport struct {
	TotalGates int
	DFFs       int
	Functional int // gates in functional units
	PortMuxes  int // gates in module port multiplexers
	RegMuxes   int // gates in register input multiplexers
	RegCells   int // gates in register/BIST cells
	Patterns   int
	PerModule  []GateModuleCoverage
}

// Totals sums faults and detections.
func (g *GateLevelReport) Totals() (faults, detected int) {
	for _, m := range g.PerModule {
		faults += m.Faults
		detected += m.Detected
	}
	return
}

// Pct returns the overall gate-level coverage percentage.
func (g *GateLevelReport) Pct() float64 {
	f, d := g.Totals()
	if f == 0 {
		return 100
	}
	return float64(d) / float64(f) * 100
}

// GateLevel elaborates the synthesized data path (with its BIST plan)
// into a gate-level netlist, verifies gate-level functional equivalence
// against the behavioral model on random vectors, and fault-simulates
// each module's BIST session: every stuck-at fault on the module's gates
// is graded against the fault-free signature.
func (r *Result) GateLevel(patterns int, seed uint64) (*GateLevelReport, error) {
	d, err := elab.Build(r.dp, r.plan)
	if err != nil {
		return nil, err
	}
	// Equivalence spot-check before trusting coverage numbers.
	rng := rand.New(rand.NewSource(int64(seed)))
	g := r.dp.Graph()
	for i := 0; i < 3; i++ {
		in := make(map[string]uint64)
		for _, name := range g.Inputs() {
			in[name] = uint64(rng.Int63())
		}
		if err := d.CheckAgainstDFG(in); err != nil {
			return nil, fmt.Errorf("gate-level equivalence failed: %w", err)
		}
	}
	ar := d.MeasureArea()
	rep := &GateLevelReport{
		TotalGates: ar.TotalGates,
		DFFs:       ar.DFFs,
		Functional: ar.Functional,
		PortMuxes:  ar.PortMuxes,
		RegMuxes:   ar.RegMuxes,
		RegCells:   ar.RegCells,
		Patterns:   patterns,
	}
	for _, m := range r.dp.Modules {
		predicted, hard, err := d.PredictCoverage(m.Name, patterns)
		if err != nil {
			return nil, err
		}
		faults, detected, err := d.GateCoverage(m.Name, patterns, seed)
		if err != nil {
			return nil, err
		}
		rep.PerModule = append(rep.PerModule, GateModuleCoverage{
			Module: m.Name, Faults: faults, Detected: detected,
			Predicted: predicted, HardFaults: len(hard),
		})
	}
	return rep, nil
}

// VerilogRTL emits behavioral Verilog for the bound data path (one reg
// per allocated register, a case-per-step control block).
func (r *Result) VerilogRTL() string {
	return verilog.RTL(r.dp)
}

// VerilogGates elaborates the design (including its BIST registers) to
// gates and emits a structural Verilog module.
func (r *Result) VerilogGates(moduleName string) (string, error) {
	d, err := elab.Build(r.dp, r.plan)
	if err != nil {
		return "", err
	}
	return verilog.Gates(d.Net, moduleName), nil
}

// VerilogGatesSelfTimed elaborates the design with an on-chip microcode
// controller (step counter + decoded control signals) and emits a
// structural Verilog module that executes its schedule autonomously: the
// only inputs are the clock, the data pads and — when a BIST plan is
// present — the test mode pins.
func (r *Result) VerilogGatesSelfTimed(moduleName string) (string, error) {
	d, err := elab.BuildWithOptions(r.dp, r.plan, elab.BuildOptions{Controller: true})
	if err != nil {
		return "", err
	}
	return verilog.Gates(d.Net, moduleName), nil
}

// DumpVCD elaborates the design to gates, runs the schedule on the given
// inputs, and writes a VCD waveform of every named bus (registers,
// module outputs, pads, control signals) to w. The returned map holds
// the primary output values, which match Simulate's.
func (r *Result) DumpVCD(inputs map[string]uint64, w io.Writer) (map[string]uint64, error) {
	d, err := elab.Build(r.dp, r.plan)
	if err != nil {
		return nil, err
	}
	return d.RunNormalVCD(inputs, w)
}

// VerilogTestbench emits a self-checking Verilog testbench for the
// behavioral RTL module (VerilogRTL): the given inputs are driven, every
// primary output is sampled at the step that produces it, and the
// expected values — computed from the behavioral model — are checked
// with $display PASS/FAIL.
func (r *Result) VerilogTestbench(inputs map[string]uint64) (string, error) {
	expected, err := r.dp.Graph().Eval(inputs, r.Width)
	if err != nil {
		return "", err
	}
	return verilog.Testbench(r.dp, inputs, expected)
}
