package bistpath

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
)

// The public Verify API must come back clean on every paper benchmark
// under the default configuration, with all three layers engaged.
func TestResultVerifyCleanOnBenchmarks(t *testing.T) {
	for _, name := range BenchmarkNames() {
		d, mods, err := Benchmark(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := d.Synthesize(mods, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		rep, err := res.Verify(context.Background(), VerifyOptions{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !rep.OK() {
			t.Errorf("%s:\n%s", name, rep.Summary())
		}
		if rep.Vectors < 100 {
			t.Errorf("%s: only %d vectors simulated", name, rep.Vectors)
		}
		if !rep.EmbeddingRan {
			t.Errorf("%s: embedding oracle did not run (%d combos)", name, rep.EmbeddingCombos)
		}
		if len(rep.WorkersChecked) == 0 {
			t.Errorf("%s: no worker counts cross-checked", name)
		}
		if !rep.BindingRan {
			t.Errorf("%s: binding oracle did not run", name)
		}
	}
}

// VerifyReport must marshal to JSON (the CLI's -json path) without
// losing the violation list.
func TestVerifyReportJSON(t *testing.T) {
	d, mods, err := Benchmark("paulin")
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Synthesize(mods, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := res.Verify(context.Background(), VerifyOptions{SkipOracles: true, Vectors: 10})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"design", "violations", "vectors", "plan_cost"} {
		if _, ok := back[key]; !ok {
			t.Errorf("marshalled report missing %q: %s", key, raw)
		}
	}
}

// RandomDesign must produce synthesizable, verifiable designs keyed by
// seed alone — the contract the sweep tooling builds on.
func TestRandomDesignSynthesizeVerify(t *testing.T) {
	verified := 0
	for seed := int64(1); seed <= 8; seed++ {
		d, mods, err := RandomDesign(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := d.Synthesize(mods, DefaultConfig())
		if err != nil {
			if errors.Is(err, ErrNoEmbedding) {
				continue
			}
			t.Fatalf("seed %d: %v", seed, err)
		}
		rep, err := res.Verify(context.Background(), VerifyOptions{SkipOracles: true, Vectors: 25, Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !rep.OK() {
			t.Errorf("seed %d:\n%s", seed, rep.Summary())
		}
		verified++
	}
	if verified == 0 {
		t.Error("no random design survived synthesis")
	}
}

// RandomDesign is deterministic: one seed, one design.
func TestRandomDesignDeterministic(t *testing.T) {
	a, _, err := RandomDesign(7)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := RandomDesign(7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Text() != b.Text() {
		t.Error("same seed produced different designs")
	}
}
