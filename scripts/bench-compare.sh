#!/usr/bin/env sh
# Compare benchmarks/latest.txt against benchmarks/baseline.txt and fail
# when a benchmark regressed:
#
#   - ns/op       by more than BENCH_MAX_REGRESSION_PCT       (default: 5)
#   - allocs/op   by more than BENCH_MAX_ALLOC_REGRESSION_PCT (default: 5)
#   - B/op        by more than BENCH_MAX_ALLOC_REGRESSION_PCT (default: 5)
#
# ns/op is machine-dependent, so keep baseline and compare runs on the
# same goos/goarch; allocs/op and B/op are deterministic per Go version
# and gate reliably across machines. Tiny benchmarks get an absolute
# floor (BENCH_ALLOC_ABS_FLOOR allocs, default 8): a change within the
# floor never fails, so a one-alloc wobble on a 5-alloc benchmark does
# not read as a 20% regression.
#
# Benchmarks present in only one of the two files are reported per
# benchmark and recapped in explicit "ADDED"/"REMOVED" summary lines.
# A REMOVED benchmark additionally warns on stderr — a benchmark
# vanishing from latest.txt is usually a broken build tag or an
# accidental rename, not an intended drop — and fails the comparison
# when BENCH_FAIL_ON_REMOVED is set to a non-zero value (CI sets it).
set -eu

cd "$(dirname "$0")/.."

BASELINE=benchmarks/baseline.txt
LATEST=benchmarks/latest.txt
MAX_PCT="${BENCH_MAX_REGRESSION_PCT:-5}"
MAX_ALLOC_PCT="${BENCH_MAX_ALLOC_REGRESSION_PCT:-5}"
ALLOC_FLOOR="${BENCH_ALLOC_ABS_FLOOR:-8}"
FAIL_ON_REMOVED="${BENCH_FAIL_ON_REMOVED:-0}"

if [ ! -f "$BASELINE" ]; then
    echo "no $BASELINE - nothing to compare (run scripts/bench-update.sh to create one)"
    exit 0
fi
if [ ! -f "$LATEST" ]; then
    echo "no $LATEST - run scripts/bench.sh first" >&2
    exit 1
fi

awk -v max_pct="$MAX_PCT" -v max_alloc_pct="$MAX_ALLOC_PCT" -v alloc_floor="$ALLOC_FLOOR" \
    -v fail_removed="$FAIL_ON_REMOVED" '
    # Benchmark result lines look like:
    #   BenchmarkSynthesizeAll/workers=4-8   123   456789 ns/op   2048 B/op   35 allocs/op
    /^Benchmark/ && / ns\/op/ {
        name = $1
        # Drop the -GOMAXPROCS suffix so baselines compare across
        # machines with different core counts (Go omits it when 1).
        sub(/-[0-9]+$/, "", name)
        nsop = ""; bop = ""; allocs = ""
        for (i = 2; i <= NF; i++) {
            if ($i == "ns/op")     nsop   = $(i - 1)
            if ($i == "B/op")      bop    = $(i - 1)
            if ($i == "allocs/op") allocs = $(i - 1)
        }
        if (FNR == NR) {
            # First file: accumulate the baseline (average over -count runs).
            base_ns[name] += nsop; base_n[name]++
            if (bop != "")    { base_b[name] += bop;    base_bn[name]++ }
            if (allocs != "") { base_a[name] += allocs; base_an[name]++ }
        } else {
            lat_ns[name] += nsop; lat_n[name]++
            if (bop != "")    { lat_b[name] += bop;    lat_bn[name]++ }
            if (allocs != "") { lat_a[name] += allocs; lat_an[name]++ }
        }
    }
    function pct(base, latest) { return base > 0 ? (latest - base) * 100 / base : 0 }
    END {
        fail = 0; added = 0; removed = 0
        for (name in lat_ns) {
            latest = lat_ns[name] / lat_n[name]
            if (!(name in base_ns)) {
                printf "ADDED     %-60s %12.0f ns/op\n", name, latest
                added++
                continue
            }
            base = base_ns[name] / base_n[name]
            dns = pct(base, latest)
            why = ""
            if (dns > max_pct) why = "ns/op"
            metrics = sprintf("%12.0f -> %12.0f ns/op  (%+.1f%%)", base, latest, dns)
            if ((name in base_an) && (name in lat_an)) {
                ab = base_a[name] / base_an[name]
                al = lat_a[name] / lat_an[name]
                da = pct(ab, al)
                if (da > max_alloc_pct && al - ab > alloc_floor)
                    why = why == "" ? "allocs/op" : why ",allocs/op"
                metrics = metrics sprintf("  %8.0f -> %8.0f allocs/op (%+.1f%%)", ab, al, da)
            }
            if ((name in base_bn) && (name in lat_bn)) {
                bb = base_b[name] / base_bn[name]
                bl = lat_b[name] / lat_bn[name]
                db = pct(bb, bl)
                # Scale the alloc floor to bytes (16 B per allowed alloc)
                # so byte-sized wobble on tiny benchmarks passes too.
                if (db > max_alloc_pct && bl - bb > alloc_floor * 16)
                    why = why == "" ? "B/op" : why ",B/op"
                metrics = metrics sprintf("  %10.0f -> %10.0f B/op (%+.1f%%)", bb, bl, db)
            }
            if (why != "") {
                fail = 1
                printf "%-9s %-60s %s  [%s]\n", "REGRESSED", name, metrics, why
            } else {
                printf "%-9s %-60s %s\n", "ok", name, metrics
            }
        }
        for (name in base_ns) {
            if (!(name in lat_ns)) {
                printf "REMOVED   %-60s (in baseline, not in latest)\n", name
                removed++
            }
        }
        if (added)   printf "\nADDED: %d benchmark(s) present only in latest (no baseline to compare)\n", added
        if (removed) {
            printf "%sREMOVED: %d benchmark(s) present only in baseline (dropped or renamed in latest)\n", added ? "" : "\n", removed
            printf "WARNING: %d benchmark(s) vanished from latest.txt:\n", removed > "/dev/stderr"
            for (name in base_ns)
                if (!(name in lat_ns))
                    printf "  %s\n", name > "/dev/stderr"
            printf "  (intended? update the baseline with scripts/bench-update.sh)\n" > "/dev/stderr"
            if (fail_removed != "0" && fail_removed != "") {
                printf "\nFAIL: removed benchmark(s) with BENCH_FAIL_ON_REMOVED=%s\n", fail_removed
                exit 1
            }
        }
        if (fail) {
            printf "\nFAIL: regression beyond %s%% ns/op or %s%% allocs/op, B/op\n", max_pct, max_alloc_pct
            exit 1
        }
        printf "\nPASS: no benchmark regressed beyond %s%% ns/op or %s%% allocs/op, B/op\n", max_pct, max_alloc_pct
    }
' "$BASELINE" "$LATEST"
