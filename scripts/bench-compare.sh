#!/usr/bin/env sh
# Compare benchmarks/latest.txt against benchmarks/baseline.txt and fail
# if any benchmark regressed by more than BENCH_MAX_REGRESSION_PCT
# percent (default: 5) in ns/op.
#
# Benchmarks present in only one of the two files are reported but do
# not fail the comparison; keep baseline and compare runs on the same
# goos/goarch to avoid false regressions.
set -eu

cd "$(dirname "$0")/.."

BASELINE=benchmarks/baseline.txt
LATEST=benchmarks/latest.txt
MAX_PCT="${BENCH_MAX_REGRESSION_PCT:-5}"

if [ ! -f "$BASELINE" ]; then
    echo "no $BASELINE - nothing to compare (run scripts/bench-update.sh to create one)"
    exit 0
fi
if [ ! -f "$LATEST" ]; then
    echo "no $LATEST - run scripts/bench.sh first" >&2
    exit 1
fi

awk -v max_pct="$MAX_PCT" '
    # Benchmark result lines look like:
    #   BenchmarkSynthesizeAll/workers=4-8   123   456789 ns/op   ...
    /^Benchmark/ && / ns\/op/ {
        name = $1
        # Drop the -GOMAXPROCS suffix so baselines compare across
        # machines with different core counts (Go omits it when 1).
        sub(/-[0-9]+$/, "", name)
        for (i = 2; i <= NF; i++) {
            if ($i == "ns/op") { nsop = $(i - 1); break }
        }
        if (FNR == NR) {
            # First file: accumulate the baseline (average over -count runs).
            base_sum[name] += nsop
            base_n[name]++
        } else {
            lat_sum[name] += nsop
            lat_n[name]++
        }
    }
    END {
        fail = 0
        for (name in lat_sum) {
            latest = lat_sum[name] / lat_n[name]
            if (!(name in base_sum)) {
                printf "NEW       %-60s %12.0f ns/op\n", name, latest
                continue
            }
            base = base_sum[name] / base_n[name]
            delta = base > 0 ? (latest - base) * 100 / base : 0
            status = "ok"
            if (delta > max_pct) { status = "REGRESSED"; fail = 1 }
            printf "%-9s %-60s %12.0f -> %12.0f ns/op  (%+.1f%%)\n", status, name, base, latest, delta
        }
        for (name in base_sum) {
            if (!(name in lat_sum)) printf "MISSING   %-60s (in baseline, not in latest)\n", name
        }
        if (fail) {
            printf "\nFAIL: at least one benchmark regressed by more than %s%%\n", max_pct
            exit 1
        }
        printf "\nPASS: no benchmark regressed by more than %s%%\n", max_pct
    }
' "$BASELINE" "$LATEST"
