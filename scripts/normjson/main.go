// normjson normalizes a bistpath Result.JSON() document for comparison
// against the checked-in goldens in testdata/: timing fields (every
// stats key ending in _ns) are zeroed and the document is re-marshaled
// with Go's sorted-key indentation — the same transform the
// TestResultJSONGolden test applies. CI uses it to diff a result fetched
// over the bistpathd HTTP API against the golden file:
//
//	curl -s $URL/v1/jobs/$ID/result | normjson | diff testdata/ex1.golden.json -
//
// Accepts a single document or an array of them. Exits non-zero with a
// diagnostic on malformed input.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

func main() {
	data, err := io.ReadAll(os.Stdin)
	if err != nil {
		fatal("read stdin: %v", err)
	}
	var docs []map[string]any
	single := false
	if err := json.Unmarshal(data, &docs); err != nil {
		var one map[string]any
		if err2 := json.Unmarshal(data, &one); err2 != nil {
			fatal("not valid JSON (neither array nor object): %v", err)
		}
		docs = []map[string]any{one}
		single = true
	}
	for i, doc := range docs {
		stats, ok := doc["stats"].(map[string]any)
		if !ok {
			fatal("document %d: missing stats object", i)
		}
		for k := range stats {
			if strings.HasSuffix(k, "_ns") {
				stats[k] = 0
			}
		}
	}
	var v any = docs
	if single {
		v = docs[0]
	}
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fatal("marshal: %v", err)
	}
	os.Stdout.Write(append(out, '\n'))
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "normjson: "+format+"\n", args...)
	os.Exit(1)
}
