// jsoncheck validates that stdin is well-formed JSON and, for bistpath
// result documents, that the schema essentials are present. CI pipes
// `bistpath synth -bench all -json` through it so a schema regression
// fails the build rather than a downstream consumer.
//
// Accepts either a single result object or an array of them (the
// -bench all form). Exits non-zero with a diagnostic on any problem.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

func main() {
	data, err := io.ReadAll(os.Stdin)
	if err != nil {
		fatal("read stdin: %v", err)
	}
	var docs []map[string]any
	if err := json.Unmarshal(data, &docs); err != nil {
		var one map[string]any
		if err2 := json.Unmarshal(data, &one); err2 != nil {
			fatal("not valid JSON (neither array nor object): %v", err)
		}
		docs = []map[string]any{one}
	}
	if len(docs) == 0 {
		fatal("empty result set")
	}
	required := []string{"schema", "name", "mode", "width", "registers", "modules",
		"base_area", "bist_area", "overhead_pct", "sessions", "stats"}
	for i, doc := range docs {
		for _, key := range required {
			if _, ok := doc[key]; !ok {
				fatal("result %d: missing key %q", i, key)
			}
		}
		stats, ok := doc["stats"].(map[string]any)
		if !ok {
			fatal("result %d (%v): stats is not an object", i, doc["name"])
		}
		if v, _ := stats["search_nodes"].(float64); v <= 0 {
			fatal("result %d (%v): stats.search_nodes = %v, want > 0", i, doc["name"], stats["search_nodes"])
		}
	}
	fmt.Printf("jsoncheck: %d result document(s) ok\n", len(docs))
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "jsoncheck: "+format+"\n", args...)
	os.Exit(1)
}
