// jsoncheck validates that stdin is well-formed JSON and that the
// bistpath schema essentials are present. CI pipes the machine-readable
// CLI outputs through it so a schema regression fails the build rather
// than a downstream consumer:
//
//	bistpath synth  -bench all -json | jsoncheck
//	bistpath verify -bench all -json | jsoncheck -kind verify
//
// Accepts either a single document or an array of them (the -bench all
// form). Exits non-zero with a diagnostic on any problem.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	kind := flag.String("kind", "synth", "document schema to enforce: synth (Result.JSON), verify (VerifyReport) or scaling (scalingbench)")
	flag.Parse()

	data, err := io.ReadAll(os.Stdin)
	if err != nil {
		fatal("read stdin: %v", err)
	}
	var docs []map[string]any
	if err := json.Unmarshal(data, &docs); err != nil {
		var one map[string]any
		if err2 := json.Unmarshal(data, &one); err2 != nil {
			fatal("not valid JSON (neither array nor object): %v", err)
		}
		docs = []map[string]any{one}
	}
	if len(docs) == 0 {
		fatal("empty result set")
	}
	switch *kind {
	case "synth":
		checkSynth(docs)
	case "verify":
		checkVerify(docs)
	case "scaling":
		checkScaling(docs)
	default:
		fatal("unknown -kind %q (want synth, verify or scaling)", *kind)
	}
	fmt.Printf("jsoncheck: %d %s document(s) ok\n", len(docs), *kind)
}

func checkSynth(docs []map[string]any) {
	required := []string{"schema", "name", "mode", "width", "registers", "modules",
		"base_area", "bist_area", "overhead_pct", "sessions", "stats"}
	for i, doc := range docs {
		for _, key := range required {
			if _, ok := doc[key]; !ok {
				fatal("result %d: missing key %q", i, key)
			}
		}
		stats, ok := doc["stats"].(map[string]any)
		if !ok {
			fatal("result %d (%v): stats is not an object", i, doc["name"])
		}
		if v, _ := stats["search_nodes"].(float64); v <= 0 {
			fatal("result %d (%v): stats.search_nodes = %v, want > 0", i, doc["name"], stats["search_nodes"])
		}
	}
}

func checkVerify(docs []map[string]any) {
	required := []string{"design", "violations", "vectors", "plan_cost", "plan_exact",
		"embedding_oracle_ran", "binding_oracle_ran"}
	for i, doc := range docs {
		for _, key := range required {
			if _, ok := doc[key]; !ok {
				fatal("report %d: missing key %q", i, key)
			}
		}
		// violations must be an array (empty on a pass, and a CI run
		// validating schema expects passes — a violation here means the
		// pipeline should already have failed upstream).
		if _, ok := doc["violations"].([]any); !ok && doc["violations"] != nil {
			fatal("report %d (%v): violations is not an array", i, doc["design"])
		}
		if v, _ := doc["vectors"].(float64); v <= 0 {
			fatal("report %d (%v): vectors = %v, want > 0", i, doc["design"], doc["vectors"])
		}
	}
}

func checkScaling(docs []map[string]any) {
	if len(docs) != 1 {
		fatal("scaling: expected a single document, got %d", len(docs))
	}
	doc := docs[0]
	for _, key := range []string{"schema", "kind", "quick", "bound", "rows"} {
		if _, ok := doc[key]; !ok {
			fatal("scaling: missing key %q", key)
		}
	}
	if k, _ := doc["kind"].(string); k != "scaling" {
		fatal("scaling: kind = %v, want \"scaling\"", doc["kind"])
	}
	if b, _ := doc["bound"].(float64); b < 1 {
		fatal("scaling: bound = %v, want >= 1", doc["bound"])
	}
	rows, ok := doc["rows"].([]any)
	if !ok || len(rows) == 0 {
		fatal("scaling: rows missing or empty")
	}
	required := []string{"name", "design", "seed", "ops", "modules", "registers",
		"exact_area", "exact_ms", "exact_provable", "stoch_area", "stoch_ms",
		"generations", "evaluations", "ratio"}
	papers := 0
	for i, rv := range rows {
		r, ok := rv.(map[string]any)
		if !ok {
			fatal("scaling: row %d is not an object", i)
		}
		for _, key := range required {
			if _, ok := r[key]; !ok {
				fatal("scaling: row %d (%v): missing key %q", i, r["name"], key)
			}
		}
		if v, _ := r["exact_area"].(float64); v <= 0 {
			fatal("scaling: row %d (%v): exact_area = %v, want > 0", i, r["name"], r["exact_area"])
		}
		if v, _ := r["stoch_area"].(float64); v <= 0 {
			fatal("scaling: row %d (%v): stoch_area = %v, want > 0", i, r["name"], r["stoch_area"])
		}
		if d, _ := r["design"].(string); d == "paper" {
			papers++
		}
	}
	if papers != 5 {
		fatal("scaling: %d paper benchmark rows, want 5", papers)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "jsoncheck: "+format+"\n", args...)
	os.Exit(1)
}
