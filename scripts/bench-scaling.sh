#!/usr/bin/env sh
# Run the exact-vs-stochastic scaling suite and write the comparison to
# benchmarks/BENCH_scaling.json, schema-checked by scripts/jsoncheck.
#
#   scripts/bench-scaling.sh          full grid (all presets, 2 seeds each)
#   scripts/bench-scaling.sh -quick   CI grid (presets s/m/l, 1 seed)
#
# The underlying tool (scripts/scalingbench) enforces two quality gates
# and exits non-zero on violation: stochastic must recover the known
# optimum on every paper benchmark, and must stay within its overhead
# bound of the exact run on every preset instance. The JSON document is
# written either way so CI can upload it as an artifact.
set -eu

cd "$(dirname "$0")/.."

OUT=benchmarks/BENCH_scaling.json
mkdir -p benchmarks

ARGS=""
for arg in "$@"; do
    case "$arg" in
        -quick) ARGS="-quick" ;;
        *) echo "usage: $0 [-quick]" >&2; exit 2 ;;
    esac
done

status=0
go run ./scripts/scalingbench $ARGS > "$OUT" || status=$?

go run ./scripts/jsoncheck -kind scaling < "$OUT"
echo "wrote $OUT"
exit $status
