// scalingbench runs the exact-vs-stochastic scaling suite and emits a
// machine-readable comparison as JSON on stdout:
//
//	{"schema": 1, "kind": "scaling", "quick": ..., "bound": ..., "rows": [...]}
//
// Each row synthesizes one design twice — once with the default exact
// search and once with the stochastic search — and records the BIST
// area and search time of both. Two quality gates fail the run (exit 1,
// diagnostics on stderr) while still printing the document:
//
//   - on the five paper benchmarks the stochastic search must recover
//     the exact search's provably optimal area, and
//   - on every generated preset instance the stochastic area must stay
//     within `bound` (default 1.10) of the exact run's area (which
//     degrades to the greedy-fallback incumbent once the branch and
//     bound exhausts its node budget — the stochastic search normally
//     beats that, so the bound is a regression tripwire, not a target).
//
// The document carries no timestamps; the *_ms fields are the only
// run-varying values. scripts/bench-scaling.sh wraps this tool and
// schema-checks the output with scripts/jsoncheck -kind scaling.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"bistpath"
	"bistpath/internal/benchdata"
)

type row struct {
	Name        string  `json:"name"`
	Design      string  `json:"design"` // "paper" | "preset"
	Seed        int64   `json:"seed"`
	Ops         int     `json:"ops"`
	Modules     int     `json:"modules"`
	Registers   int     `json:"registers"`
	ExactArea   int     `json:"exact_area"`
	ExactMS     float64 `json:"exact_ms"` // exact BIST search time
	ExactProved bool    `json:"exact_provable"`
	StochArea   int     `json:"stoch_area"`
	StochMS     float64 `json:"stoch_ms"` // stochastic BIST search time
	Generations int64   `json:"generations"`
	Evaluations int64   `json:"evaluations"`
	Ratio       float64 `json:"ratio"` // stoch_area / exact_area
}

type document struct {
	Schema int     `json:"schema"`
	Kind   string  `json:"kind"`
	Quick  bool    `json:"quick"`
	Bound  float64 `json:"bound"`
	Rows   []row   `json:"rows"`
}

func main() {
	quick := flag.Bool("quick", false, "smaller grid for CI: all paper benchmarks, presets s/m/l at one seed")
	bound := flag.Float64("bound", 1.10, "maximum stoch_area/exact_area ratio on preset instances")
	seedN := flag.Int("seeds", 2, "seeds per preset in the full grid (quick mode always uses 1)")
	flag.Parse()

	doc := document{Schema: 1, Kind: "scaling", Quick: *quick, Bound: *bound}
	var violations []string

	exactCfg := bistpath.DefaultConfig()
	stochCfg := bistpath.DefaultConfig()
	stochCfg.Search = bistpath.SearchStochastic
	stochCfg.Seed = 1

	for _, name := range bistpath.BenchmarkNames() {
		d, mods, err := bistpath.Benchmark(name)
		if err != nil {
			fatal("%s: %v", name, err)
		}
		r, err := compare(name, "paper", 0, d, mods, exactCfg, stochCfg)
		if err != nil {
			fatal("%s: %v", name, err)
		}
		if !r.ExactProved {
			violations = append(violations, fmt.Sprintf(
				"%s: exact search no longer proves optimality on a paper benchmark", name))
		}
		if r.StochArea != r.ExactArea {
			violations = append(violations, fmt.Sprintf(
				"%s: stochastic area %d != known optimum %d", name, r.StochArea, r.ExactArea))
		}
		doc.Rows = append(doc.Rows, r)
	}

	presets := benchdata.PresetNames()
	seeds := *seedN
	if *quick {
		presets = []string{"s", "m", "l"}
		seeds = 1
	}
	for _, preset := range presets {
		for seed := int64(1); seed <= int64(seeds); seed++ {
			cfg, _ := benchdata.Preset(preset, seed)
			g, mb, err := benchdata.RandomWithModules(cfg)
			if err != nil {
				fatal("preset %s seed %d: %v", preset, seed, err)
			}
			d, err := bistpath.ParseDFG(g.Text())
			if err != nil {
				fatal("preset %s seed %d: %v", preset, seed, err)
			}
			mods := make(map[string]string)
			for _, m := range mb.Modules {
				for _, op := range m.Ops {
					mods[op] = m.Name
				}
			}
			r, err := compare(preset, "preset", seed, d, mods, exactCfg, stochCfg)
			if err != nil {
				fatal("preset %s seed %d: %v", preset, seed, err)
			}
			if r.Ratio > *bound {
				violations = append(violations, fmt.Sprintf(
					"preset %s seed %d: stochastic area %d is %.3fx the exact run's %d (bound %.2f)",
					preset, seed, r.StochArea, r.Ratio, r.ExactArea, *bound))
			}
			doc.Rows = append(doc.Rows, r)
		}
	}

	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal("%v", err)
	}
	fmt.Println(string(out))
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "scalingbench: VIOLATION:", v)
		}
		os.Exit(1)
	}
}

func compare(name, design string, seed int64, d *bistpath.DFG, mods map[string]string, exactCfg, stochCfg bistpath.Config) (row, error) {
	exact, err := d.Synthesize(mods, exactCfg)
	if err != nil {
		return row{}, fmt.Errorf("exact: %w", err)
	}
	stoch, err := d.Synthesize(mods, stochCfg)
	if err != nil {
		return row{}, fmt.Errorf("stochastic: %w", err)
	}
	ops := 0
	for _, m := range exact.Modules {
		ops += len(m.Ops)
	}
	// The ratio gates the BIST *overhead* (area added over the base data
	// path), the paper's figure of merit — total area would dilute a bad
	// search result behind the base area.
	exactExtra := exact.BISTArea - exact.BaseArea
	stochExtra := stoch.BISTArea - stoch.BaseArea
	ratio := 1.0
	switch {
	case exactExtra > 0:
		ratio = float64(stochExtra) / float64(exactExtra)
	case stochExtra > 0:
		ratio = 99 // exact needed no upgrades at all; any overhead is a violation
	}
	return row{
		Name:        name,
		Design:      design,
		Seed:        seed,
		Ops:         ops,
		Modules:     len(exact.Modules),
		Registers:   len(exact.Registers),
		ExactArea:   exact.BISTArea,
		ExactMS:     float64(exact.Stats.BISTSearch.Microseconds()) / 1000,
		ExactProved: exact.PlanExact(),
		StochArea:   stoch.BISTArea,
		StochMS:     float64(stoch.Stats.BISTSearch.Microseconds()) / 1000,
		Generations: stoch.Stats.Generations,
		Evaluations: stoch.Stats.Evaluations,
		Ratio:       ratio,
	}, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "scalingbench: "+format+"\n", args...)
	os.Exit(1)
}
