#!/usr/bin/env sh
# Run the benchmark suite and record results in benchmarks/latest.txt.
#
# Environment:
#   BENCH_PATTERN  regexp of benchmarks to run   (default: all)
#   BENCH_TIME     -benchtime value              (default: 1s)
#   BENCH_COUNT    -count value                  (default: 1)
set -eu

cd "$(dirname "$0")/.."

PATTERN="${BENCH_PATTERN:-.}"
TIME="${BENCH_TIME:-1s}"
COUNT="${BENCH_COUNT:-1}"

mkdir -p benchmarks
OUT=benchmarks/latest.txt

echo "running benchmarks (pattern=$PATTERN benchtime=$TIME count=$COUNT)..."
go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$TIME" -count "$COUNT" \
    ./... | tee "$OUT"

echo ""
echo "wrote $OUT"
echo "review, then run scripts/bench-update.sh to promote as the baseline"
