#!/usr/bin/env bash
# service-smoke.sh boots a real bistpathd and exercises the service
# contracts end to end over actual HTTP:
#
#   1. readiness   — /healthz answers once the daemon is up
#   2. lifecycle   — submit a benchmark job, stream its SSE events to the
#                    terminal `done`, poll the status to done
#   3. identity    — the served result document is byte-identical to what
#                    `bistpath synth -json` prints against the same cache
#                    directory, and normalizes to the checked-in golden
#   4. drain       — SIGTERM drains cleanly (exit 0, "drained cleanly" in
#                    the log) within the deadline
#
# Run from anywhere; builds into a temp dir and cleans up after itself.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
pid=""
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

addr="127.0.0.1:${BISTPATHD_PORT:-18157}"
base="http://$addr"
cache="$workdir/cache"

go build -o "$workdir/bistpathd" ./cmd/bistpathd
go build -o "$workdir/bistpath" ./cmd/bistpath
go build -o "$workdir/normjson" ./scripts/normjson

"$workdir/bistpathd" -addr "$addr" -cache-dir "$cache" \
  >"$workdir/daemon.log" 2>&1 &
pid=$!

# 1. readiness
up=""
for _ in $(seq 1 100); do
  if curl -fsS "$base/healthz" >/dev/null 2>&1; then up=1; break; fi
  if ! kill -0 "$pid" 2>/dev/null; then
    echo "service-smoke: daemon died during startup" >&2
    cat "$workdir/daemon.log" >&2
    exit 1
  fi
  sleep 0.1
done
[ -n "$up" ] || { echo "service-smoke: daemon never became ready" >&2; exit 1; }

# 2. lifecycle: submit, stream SSE to the terminal event, poll to done
id=$(curl -fsS -X POST "$base/v1/jobs" -H 'Content-Type: application/json' \
  -d '{"benchmark":"ex1"}' | grep -o '"id": "[^"]*"' | head -1 | cut -d'"' -f4)
[ -n "$id" ] || { echo "service-smoke: no job id in submit response" >&2; exit 1; }
echo "service-smoke: submitted $id"

curl -fsSN --max-time 30 "$base/v1/jobs/$id/events" >"$workdir/events.sse"
grep -q '^event: done$' "$workdir/events.sse" || {
  echo "service-smoke: SSE stream missing the done event" >&2
  cat "$workdir/events.sse" >&2
  exit 1
}
terminals=$(grep -cE '^event: (done|failed|canceled)$' "$workdir/events.sse")
[ "$terminals" = 1 ] || {
  echo "service-smoke: $terminals terminal SSE events, want 1" >&2; exit 1
}

status=""
for _ in $(seq 1 300); do
  status=$(curl -fsS "$base/v1/jobs/$id" | grep -o '"status": "[^"]*"' | cut -d'"' -f4)
  [ "$status" = done ] && break
  sleep 0.1
done
[ "$status" = done ] || {
  echo "service-smoke: job status $status, want done" >&2; exit 1
}

# 3. byte-identity over the wire, and golden conformance
curl -fsS "$base/v1/jobs/$id/result" >"$workdir/served.json"
"$workdir/bistpath" synth -bench ex1 -json -cache-dir "$cache" >"$workdir/cli.json"
cmp "$workdir/served.json" "$workdir/cli.json"
echo "service-smoke: served result byte-identical to CLI output"
"$workdir/normjson" <"$workdir/served.json" | diff testdata/ex1.golden.json -
echo "service-smoke: served result matches the checked-in golden"

# 4. graceful drain on SIGTERM
kill -TERM "$pid"
gone=""
for _ in $(seq 1 100); do
  if ! kill -0 "$pid" 2>/dev/null; then gone=1; break; fi
  sleep 0.1
done
[ -n "$gone" ] || {
  echo "service-smoke: daemon still running 10s after SIGTERM" >&2
  cat "$workdir/daemon.log" >&2
  exit 1
}
set +e
wait "$pid"
code=$?
set -e
pid=""
[ "$code" = 0 ] || {
  echo "service-smoke: daemon exited $code after SIGTERM" >&2
  cat "$workdir/daemon.log" >&2
  exit 1
}
grep -q "drained cleanly" "$workdir/daemon.log" || {
  echo "service-smoke: daemon log missing the clean-drain marker" >&2
  cat "$workdir/daemon.log" >&2
  exit 1
}
echo "service-smoke: drained cleanly on SIGTERM"
echo "service-smoke: ok"
