#!/usr/bin/env sh
# Promote benchmarks/latest.txt to the committed regression baseline.
set -eu

cd "$(dirname "$0")/.."

if [ ! -f benchmarks/latest.txt ]; then
    echo "no benchmarks/latest.txt - run scripts/bench.sh first" >&2
    exit 1
fi

cp benchmarks/latest.txt benchmarks/baseline.txt
echo "promoted benchmarks/latest.txt -> benchmarks/baseline.txt"
echo "commit benchmarks/baseline.txt to pin the new reference"
