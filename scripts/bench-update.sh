#!/usr/bin/env sh
# Promote benchmarks/latest.txt to the committed regression baseline,
# first showing the per-benchmark allocs/op movement the promotion bakes
# in (allocs are deterministic per Go version, so this is the part of
# the baseline change worth reviewing line by line).
set -eu

cd "$(dirname "$0")/.."

if [ ! -f benchmarks/latest.txt ]; then
    echo "no benchmarks/latest.txt - run scripts/bench.sh first" >&2
    exit 1
fi

if [ -f benchmarks/baseline.txt ]; then
    echo "allocs/op movement baked into the new baseline:"
    awk '
        /^Benchmark/ && / allocs\/op/ {
            name = $1
            sub(/-[0-9]+$/, "", name)
            for (i = 2; i <= NF; i++) if ($i == "allocs/op") allocs = $(i - 1)
            if (FNR == NR) { base[name] += allocs; basen[name]++ }
            else           { lat[name]  += allocs; latn[name]++ }
        }
        END {
            for (name in lat) {
                l = lat[name] / latn[name]
                if (!(name in base)) { printf "  %-60s %38.0f allocs/op (new)\n", name, l; continue }
                b = base[name] / basen[name]
                d = b > 0 ? (l - b) * 100 / b : 0
                printf "  %-60s %12.0f -> %12.0f allocs/op (%+.1f%%)\n", name, b, l, d
            }
        }
    ' benchmarks/baseline.txt benchmarks/latest.txt
    echo ""
fi

cp benchmarks/latest.txt benchmarks/baseline.txt
echo "promoted benchmarks/latest.txt -> benchmarks/baseline.txt"
echo "commit benchmarks/baseline.txt to pin the new reference"
