package bistpath

import (
	"fmt"
	"testing"
	"time"
)

// TestCacheKeyPinned pins the canonical fingerprint for representative
// benchmark/config pairs. The hex values were captured before cacheKey
// was refactored into named sections (keySections), so these tests
// prove the sectioning reproduces the historical pre-image byte for
// byte — no persisted cache entry is invalidated by the refactor.
func TestCacheKeyPinned(t *testing.T) {
	weighted := DefaultConfig()
	weighted.Objective = WeightedSum
	weighted.Weights = Weights{Area: 1, TestTime: 2, PeakPower: 3}
	weighted.Power = map[string]int{"m1": 4, "a1": 2}

	stoch := DefaultConfig()
	stoch.Search = SearchStochastic
	stoch.Seed = 7

	pins := []struct {
		bench string
		cfg   Config
		want  string
	}{
		{"ex1", DefaultConfig(), "e593ddba5d63cc0c89c5dd178c3dd1372182690a3d2edd4b3bc057e928c6f6c4"},
		{"ex1", weighted, "a5365a6466bded5857eb5ae3090497bb28d5b0873e5ba5b9dbde735bec209999"},
		{"ex1", stoch, "de020217e8fb7e597ce1e6d315a9cd7bf298f0d89c54949259414df608dbe82c"},
		{"paulin", DefaultConfig(), "9e4ef9193acde91ff11eb12847a71aede6edcad17a11b22cfc131c9cbdd846e9"},
		{"paulin", weighted, "e3c7d60050bd6abfef7d07e7cb081b4f50059bfb5057925090378f6775402c0d"},
		{"paulin", stoch, "17f7f1e3dbf2a684b0aad432225cada660e346beb340c98acd4f2d8236304562"},
	}
	for _, p := range pins {
		d, mods, err := Benchmark(p.bench)
		if err != nil {
			t.Fatalf("Benchmark(%s): %v", p.bench, err)
		}
		mb, err := d.moduleBinding(mods)
		if err != nil {
			t.Fatalf("moduleBinding(%s): %v", p.bench, err)
		}
		got := fmt.Sprintf("%x", cacheKey(d.g, mb, p.cfg))
		if got != p.want {
			t.Errorf("cacheKey(%s, %+v) = %s, want %s", p.bench, p.cfg, got, p.want)
		}
	}
}

// TestCacheKeySections checks the structural contract the incremental
// Session layer depends on: section order and names are fixed, the
// conditional sections are empty at their defaults, and an edit to one
// semantic input perturbs exactly the sections it should.
func TestCacheKeySections(t *testing.T) {
	d, mods, err := Benchmark("ex1")
	if err != nil {
		t.Fatal(err)
	}
	mb, err := d.moduleBinding(mods)
	if err != nil {
		t.Fatal(err)
	}
	base := keySections(d.g, mb, DefaultConfig())

	wantOrder := []string{
		keySectionHeader, keySectionConfig, keySectionObjective,
		keySectionSearch, keySectionModules, keySectionPorts, keySectionDFG,
	}
	if len(base) != len(wantOrder) {
		t.Fatalf("keySections returned %d sections, want %d", len(base), len(wantOrder))
	}
	for i, name := range wantOrder {
		if base[i].name != name {
			t.Errorf("section %d = %q, want %q", i, base[i].name, name)
		}
	}
	if p := sectionPayload(base, keySectionObjective); p != "" {
		t.Errorf("objective section non-empty at MinArea: %q", p)
	}
	if p := sectionPayload(base, keySectionSearch); p != "" {
		t.Errorf("search section non-empty at SearchExact: %q", p)
	}
	if p := sectionPayload(base, keySectionDFG); p == "" {
		t.Error("dfg section empty")
	}

	// A step edit must perturb only the dfg section.
	edited, _, err := Benchmark("ex1")
	if err != nil {
		t.Fatal(err)
	}
	edited.g.Op("mul2").Step = 5
	after := keySections(edited.g, mb, DefaultConfig())
	for i := range base {
		same := base[i].payload == after[i].payload
		if base[i].name == keySectionDFG {
			if same {
				t.Error("step edit did not perturb the dfg section")
			}
		} else if !same {
			t.Errorf("step edit perturbed section %q", base[i].name)
		}
	}

	// A search-config change must perturb only the search section.
	stoch := DefaultConfig()
	stoch.Search = SearchStochastic
	stoch.Seed = 3
	stoch.TimeBudget = 0 * time.Second
	ss := keySections(d.g, mb, stoch)
	for i := range base {
		same := base[i].payload == ss[i].payload
		if base[i].name == keySectionSearch {
			if same {
				t.Error("search change did not perturb the search section")
			}
		} else if !same {
			t.Errorf("search change perturbed section %q", base[i].name)
		}
	}
}
